module opprentice

go 1.22
