package labelsim

import (
	"testing"

	"opprentice/internal/timeseries"
)

func mkTruth(n int, windows ...timeseries.Window) timeseries.Labels {
	return timeseries.FromWindows(n, windows)
}

func TestLabelPreservesWindowCountRoughly(t *testing.T) {
	truth := mkTruth(1000,
		timeseries.Window{Start: 100, End: 120},
		timeseries.Window{Start: 300, End: 330},
		timeseries.Window{Start: 600, End: 650},
	)
	op := Operator{BoundaryJitter: 2, Seed: 42}
	labeled := op.Label(truth)
	if got := len(labeled.Windows()); got != 3 {
		t.Errorf("labeled windows = %d, want 3", got)
	}
	// Long windows overlap heavily with the truth.
	overlap := 0
	for i := range truth {
		if truth[i] && labeled[i] {
			overlap++
		}
	}
	if float64(overlap) < 0.8*float64(truth.Count()) {
		t.Errorf("overlap = %d of %d anomalous points", overlap, truth.Count())
	}
}

func TestLabelJitterMovesBoundaries(t *testing.T) {
	truth := mkTruth(500, timeseries.Window{Start: 200, End: 260})
	moved := false
	for seed := int64(0); seed < 10 && !moved; seed++ {
		op := Operator{BoundaryJitter: 3, Seed: seed}
		w := op.Label(truth).Windows()
		if len(w) == 1 && (w[0].Start != 200 || w[0].End != 260) {
			moved = true
		}
	}
	if !moved {
		t.Error("jitter never moved a boundary in 10 seeds")
	}
}

func TestLabelMissesShortWindows(t *testing.T) {
	var windows []timeseries.Window
	for i := 0; i < 100; i++ {
		windows = append(windows, timeseries.Window{Start: i * 10, End: i*10 + 1})
	}
	truth := mkTruth(1001, windows...)
	op := Operator{MissBelow: 3, MissProb: 0.5, Seed: 7}
	labeled := op.Label(truth)
	got := len(labeled.Windows())
	if got < 25 || got > 75 {
		t.Errorf("kept %d of 100 short windows, want ≈ 50", got)
	}
}

func TestLabelZeroNoiseIsIdentity(t *testing.T) {
	truth := mkTruth(300, timeseries.Window{Start: 10, End: 30}, timeseries.Window{Start: 200, End: 210})
	labeled := Operator{Seed: 1}.Label(truth)
	for i := range truth {
		if truth[i] != labeled[i] {
			t.Fatalf("zero-noise operator changed label at %d", i)
		}
	}
}

func TestLabelNeverProducesEmptyWindowFromKept(t *testing.T) {
	truth := mkTruth(100, timeseries.Window{Start: 50, End: 52})
	op := Operator{BoundaryJitter: 5, Seed: 3}
	labeled := op.Label(truth)
	if len(labeled.Windows()) == 0 {
		t.Error("kept window vanished after jitter")
	}
}

func TestTimeModelAffine(t *testing.T) {
	m := TimeModel{BaseMinutes: 1, MinutesPerWindow: 0.2}
	if got := m.MonthMinutes(0); got != 1 {
		t.Errorf("MonthMinutes(0) = %v, want 1", got)
	}
	if got := m.MonthMinutes(25); got != 6 {
		t.Errorf("MonthMinutes(25) = %v, want 6", got)
	}
}

func TestDefaultTimeModelUnderSixMinutes(t *testing.T) {
	// Fig. 14: typical months (≤ 25 windows) stay under 6 minutes.
	m := DefaultTimeModel()
	if got := m.MonthMinutes(24); got > 6 {
		t.Errorf("24-window month = %v minutes, want ≤ 6", got)
	}
}

func TestMonthsSplitsAndCounts(t *testing.T) {
	ppw := 100 // 400 points per month
	truth := mkTruth(1200,
		timeseries.Window{Start: 10, End: 20},     // month 1
		timeseries.Window{Start: 350, End: 420},   // starts in month 1
		timeseries.Window{Start: 500, End: 520},   // month 2
		timeseries.Window{Start: 900, End: 910},   // month 3
		timeseries.Window{Start: 1100, End: 1110}, // month 3
	)
	m := DefaultTimeModel()
	months := m.Months(truth, ppw)
	if len(months) != 3 {
		t.Fatalf("months = %d, want 3", len(months))
	}
	wantWindows := []int{2, 1, 2}
	for i, ms := range months {
		if ms.Windows != wantWindows[i] {
			t.Errorf("month %d windows = %d, want %d", ms.Month, ms.Windows, wantWindows[i])
		}
		if ms.Minutes != m.MonthMinutes(ms.Windows) {
			t.Errorf("month %d minutes inconsistent", ms.Month)
		}
	}
	total := m.TotalMinutes(truth, ppw)
	want := months[0].Minutes + months[1].Minutes + months[2].Minutes
	if total != want {
		t.Errorf("TotalMinutes = %v, want %v", total, want)
	}
}

func TestMonthsDegenerate(t *testing.T) {
	if got := DefaultTimeModel().Months(nil, 0); got != nil {
		t.Errorf("Months with ppw=0 = %v, want nil", got)
	}
}
