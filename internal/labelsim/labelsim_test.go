package labelsim

import (
	"testing"

	"opprentice/internal/timeseries"
)

func mkTruth(n int, windows ...timeseries.Window) timeseries.Labels {
	return timeseries.FromWindows(n, windows)
}

func TestLabelPreservesWindowCountRoughly(t *testing.T) {
	truth := mkTruth(1000,
		timeseries.Window{Start: 100, End: 120},
		timeseries.Window{Start: 300, End: 330},
		timeseries.Window{Start: 600, End: 650},
	)
	op := Operator{BoundaryJitter: 2, Seed: 42}
	labeled := op.Label(truth)
	if got := len(labeled.Windows()); got != 3 {
		t.Errorf("labeled windows = %d, want 3", got)
	}
	// Long windows overlap heavily with the truth.
	overlap := 0
	for i := range truth {
		if truth[i] && labeled[i] {
			overlap++
		}
	}
	if float64(overlap) < 0.8*float64(truth.Count()) {
		t.Errorf("overlap = %d of %d anomalous points", overlap, truth.Count())
	}
}

func TestLabelJitterMovesBoundaries(t *testing.T) {
	truth := mkTruth(500, timeseries.Window{Start: 200, End: 260})
	moved := false
	for seed := int64(0); seed < 10 && !moved; seed++ {
		op := Operator{BoundaryJitter: 3, Seed: seed}
		w := op.Label(truth).Windows()
		if len(w) == 1 && (w[0].Start != 200 || w[0].End != 260) {
			moved = true
		}
	}
	if !moved {
		t.Error("jitter never moved a boundary in 10 seeds")
	}
}

func TestLabelMissesShortWindows(t *testing.T) {
	var windows []timeseries.Window
	for i := 0; i < 100; i++ {
		windows = append(windows, timeseries.Window{Start: i * 10, End: i*10 + 1})
	}
	truth := mkTruth(1001, windows...)
	op := Operator{MissBelow: 3, MissProb: 0.5, Seed: 7}
	labeled := op.Label(truth)
	got := len(labeled.Windows())
	if got < 25 || got > 75 {
		t.Errorf("kept %d of 100 short windows, want ≈ 50", got)
	}
}

func TestLabelZeroNoiseIsIdentity(t *testing.T) {
	truth := mkTruth(300, timeseries.Window{Start: 10, End: 30}, timeseries.Window{Start: 200, End: 210})
	labeled := Operator{Seed: 1}.Label(truth)
	for i := range truth {
		if truth[i] != labeled[i] {
			t.Fatalf("zero-noise operator changed label at %d", i)
		}
	}
}

func TestLabelNeverProducesEmptyWindowFromKept(t *testing.T) {
	truth := mkTruth(100, timeseries.Window{Start: 50, End: 52})
	op := Operator{BoundaryJitter: 5, Seed: 3}
	labeled := op.Label(truth)
	if len(labeled.Windows()) == 0 {
		t.Error("kept window vanished after jitter")
	}
}

func TestTimeModelAffine(t *testing.T) {
	m := TimeModel{BaseMinutes: 1, MinutesPerWindow: 0.2}
	if got := m.MonthMinutes(0); got != 1 {
		t.Errorf("MonthMinutes(0) = %v, want 1", got)
	}
	if got := m.MonthMinutes(25); got != 6 {
		t.Errorf("MonthMinutes(25) = %v, want 6", got)
	}
}

func TestDefaultTimeModelUnderSixMinutes(t *testing.T) {
	// Fig. 14: typical months (≤ 25 windows) stay under 6 minutes.
	m := DefaultTimeModel()
	if got := m.MonthMinutes(24); got > 6 {
		t.Errorf("24-window month = %v minutes, want ≤ 6", got)
	}
}

func TestMonthsSplitsAndCounts(t *testing.T) {
	ppw := 100 // 400 points per month
	truth := mkTruth(1200,
		timeseries.Window{Start: 10, End: 20},     // month 1
		timeseries.Window{Start: 350, End: 420},   // starts in month 1
		timeseries.Window{Start: 500, End: 520},   // month 2
		timeseries.Window{Start: 900, End: 910},   // month 3
		timeseries.Window{Start: 1100, End: 1110}, // month 3
	)
	m := DefaultTimeModel()
	months := m.Months(truth, ppw)
	if len(months) != 3 {
		t.Fatalf("months = %d, want 3", len(months))
	}
	wantWindows := []int{2, 1, 2}
	for i, ms := range months {
		if ms.Windows != wantWindows[i] {
			t.Errorf("month %d windows = %d, want %d", ms.Month, ms.Windows, wantWindows[i])
		}
		if ms.Minutes != m.MonthMinutes(ms.Windows) {
			t.Errorf("month %d minutes inconsistent", ms.Month)
		}
	}
	total := m.TotalMinutes(truth, ppw)
	want := months[0].Minutes + months[1].Minutes + months[2].Minutes
	if total != want {
		t.Errorf("TotalMinutes = %v, want %v", total, want)
	}
}

func TestMonthsDegenerate(t *testing.T) {
	if got := DefaultTimeModel().Months(nil, 0); got != nil {
		t.Errorf("Months with ppw=0 = %v, want nil", got)
	}
}

// TestQueryOracleChargesPerWindowNotPerPoint is the Fig. 14 property: the
// modeled cost of answering queries depends only on sittings and answered
// windows, never on how many points those windows span. Two oracles
// answering the same number of windows — one with 1-point windows, one with
// 500-point windows — must spend the identical number of minutes.
func TestQueryOracleChargesPerWindowNotPerPoint(t *testing.T) {
	truth := mkTruth(10000, timeseries.Window{Start: 0, End: 10000})
	model := TimeModel{BaseMinutes: 1, MinutesPerWindow: 0.2}
	widths := []int{1, 7, 500}
	var spends []float64
	for _, width := range widths {
		o := NewQueryOracle(truth, model, 0, 1)
		if !o.BeginSitting() {
			t.Fatal("BeginSitting refused with unlimited budget")
		}
		for i := 0; i < 12; i++ {
			start := i * width
			if _, ok := o.Answer(start, start+width); !ok {
				t.Fatalf("width %d answer %d refused", width, i)
			}
		}
		spends = append(spends, o.SpentMinutes())
	}
	want := model.BaseMinutes + 12*model.MinutesPerWindow
	for i, s := range spends {
		if diff := s - want; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("width %d: spent %v minutes, want %v (cost must not depend on points)", widths[i], s, want)
		}
	}
}

func TestQueryOracleBudgetRefusal(t *testing.T) {
	truth := mkTruth(100, timeseries.Window{Start: 10, End: 20})
	model := TimeModel{BaseMinutes: 1, MinutesPerWindow: 0.2}
	// Budget covers the base plus exactly two answers.
	o := NewQueryOracle(truth, model, 1.4, 1)
	if !o.BeginSitting() {
		t.Fatal("BeginSitting refused")
	}
	for i := 0; i < 2; i++ {
		if _, ok := o.Answer(i*10, i*10+5); !ok {
			t.Fatalf("answer %d refused within budget", i)
		}
	}
	if _, ok := o.Answer(50, 55); ok {
		t.Error("answer beyond budget accepted")
	}
	if got := o.Answered(); got != 2 {
		t.Errorf("answered = %d, want 2", got)
	}
	// A fresh sitting cannot open either: base + one answer exceeds what is
	// left.
	o.EndSitting()
	if o.BeginSitting() {
		t.Error("sitting opened with exhausted budget")
	}
	// Answers without an open sitting are refused and never charged.
	spent := o.SpentMinutes()
	if _, ok := o.Answer(10, 12); ok {
		t.Error("answer without sitting accepted")
	}
	if o.SpentMinutes() != spent {
		t.Error("refused answer was charged")
	}
}

func TestQueryOracleAnswersFromTruth(t *testing.T) {
	truth := mkTruth(200, timeseries.Window{Start: 50, End: 60})
	o := NewQueryOracle(truth, DefaultTimeModel(), 0, 1)
	o.BeginSitting()
	if anom, ok := o.Answer(55, 58); !ok || !anom {
		t.Errorf("overlapping window: anomalous=%v ok=%v, want true,true", anom, ok)
	}
	if anom, ok := o.Answer(100, 110); !ok || anom {
		t.Errorf("normal window: anomalous=%v ok=%v, want false,true", anom, ok)
	}
	// Out-of-range indices are tolerated (the queue may outlive a truncation).
	if anom, ok := o.Answer(190, 300); !ok || anom {
		t.Errorf("clipped window: anomalous=%v ok=%v, want false,true", anom, ok)
	}
}

// TestQueryOracleDeterministic: identical seeds and call sequences produce
// identical answers and identical spend, even with misses enabled.
func TestQueryOracleDeterministic(t *testing.T) {
	var windows []timeseries.Window
	for i := 0; i < 50; i++ {
		windows = append(windows, timeseries.Window{Start: i * 20, End: i*20 + 3})
	}
	truth := mkTruth(1000, windows...)
	run := func() ([]bool, float64) {
		o := NewQueryOracle(truth, DefaultTimeModel(), 0, 42)
		o.Miss = 0.3
		o.BeginSitting()
		var answers []bool
		for i := 0; i < 50; i++ {
			anom, ok := o.Answer(i*20, i*20+3)
			if !ok {
				t.Fatalf("answer %d refused", i)
			}
			answers = append(answers, anom)
		}
		return answers, o.SpentMinutes()
	}
	a1, s1 := run()
	a2, s2 := run()
	if s1 != s2 {
		t.Errorf("spend differs across identical runs: %v vs %v", s1, s2)
	}
	missed := 0
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("answer %d differs across identical runs", i)
		}
		if !a1[i] {
			missed++
		}
	}
	if missed == 0 || missed == 50 {
		t.Errorf("missed %d of 50 with Miss=0.3, want some but not all", missed)
	}
}
