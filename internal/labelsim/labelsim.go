// Package labelsim models the operators who label anomalies with the tool of
// §4.2. Two aspects matter for the reproduction: (1) labels are imperfect —
// window boundaries get extended or narrowed and short windows are
// occasionally missed, the noise §4.2 argues machine learning tolerates;
// (2) labeling is fast — the time grows with the number of anomalous
// *windows*, not anomalous points, which is Fig. 14's result.
package labelsim

import (
	"math/rand"

	"opprentice/internal/timeseries"
)

// Operator simulates one labeling operator.
type Operator struct {
	// BoundaryJitter is the maximum number of points each window boundary
	// is moved outward or inward.
	BoundaryJitter int
	// MissBelow and MissProb: windows shorter than MissBelow points are
	// missed entirely with probability MissProb.
	MissBelow int
	MissProb  float64
	// Seed makes the labeling pass deterministic.
	Seed int64
}

// DefaultOperator returns a careful but human operator: boundaries off by up
// to 2 points, 10 % of 1–2 point blips missed.
func DefaultOperator() Operator {
	return Operator{BoundaryJitter: 2, MissBelow: 3, MissProb: 0.1, Seed: 1}
}

// Label converts ground-truth labels into what the operator would actually
// produce with the labeling tool: one label action per anomalous window,
// with noisy boundaries.
func (o Operator) Label(truth timeseries.Labels) timeseries.Labels {
	rng := rand.New(rand.NewSource(o.Seed))
	var out []timeseries.Window
	for _, w := range truth.Windows() {
		if w.Len() < o.MissBelow && rng.Float64() < o.MissProb {
			continue
		}
		j := o.BoundaryJitter
		if j > 0 {
			w.Start += rng.Intn(2*j+1) - j
			w.End += rng.Intn(2*j+1) - j
		}
		if w.End <= w.Start {
			w.End = w.Start + 1
		}
		out = append(out, w)
	}
	return timeseries.FromWindows(len(truth), out)
}

// TimeModel maps a month's anomalous-window count to labeling minutes.
// Fig. 14 shows an affine relationship with every month under six minutes.
type TimeModel struct {
	BaseMinutes      float64 // loading, navigating, zooming
	MinutesPerWindow float64 // one click-and-drag per window
}

// DefaultTimeModel matches Fig. 14: ≈1 minute of navigation plus ≈12 seconds
// per anomalous window, keeping a typical month under 6 minutes.
func DefaultTimeModel() TimeModel {
	return TimeModel{BaseMinutes: 1.0, MinutesPerWindow: 0.2}
}

// MonthMinutes returns the modeled labeling time for one month of data with
// the given number of anomalous windows.
func (m TimeModel) MonthMinutes(windows int) float64 {
	return m.BaseMinutes + m.MinutesPerWindow*float64(windows)
}

// MonthStat describes one month of labeling work.
type MonthStat struct {
	Month   int
	Windows int
	Minutes float64
}

// Months splits the labels into calendar months (4-week blocks, as the
// paper's weekly cadence implies), counts anomalous windows per month, and
// applies the time model. Windows spanning a boundary count toward the month
// they start in.
func (m TimeModel) Months(labels timeseries.Labels, pointsPerWeek int) []MonthStat {
	ppm := 4 * pointsPerWeek
	if ppm <= 0 {
		return nil
	}
	nMonths := (len(labels) + ppm - 1) / ppm
	counts := make([]int, nMonths)
	for _, w := range labels.Windows() {
		counts[w.Start/ppm]++
	}
	out := make([]MonthStat, nMonths)
	for i, c := range counts {
		out[i] = MonthStat{Month: i + 1, Windows: c, Minutes: m.MonthMinutes(c)}
	}
	return out
}

// TotalMinutes sums the modeled labeling time over all months.
func (m TimeModel) TotalMinutes(labels timeseries.Labels, pointsPerWeek int) float64 {
	total := 0.0
	for _, ms := range m.Months(labels, pointsPerWeek) {
		total += ms.Minutes
	}
	return total
}

// QueryOracle answers the label queries raised by the active-learning
// subsystem (internal/active) against ground truth, within a labeling-time
// budget priced by the Fig. 14 model: each sitting costs BaseMinutes of
// loading and navigation, and each answered query costs MinutesPerWindow —
// per *window*, never per point, exactly like the labeling tool of §4.2.
//
// The zero value is not usable; construct with NewQueryOracle. Not safe for
// concurrent use.
type QueryOracle struct {
	// Miss is the probability a truly-anomalous query window is answered
	// "normal" anyway — the operator glances at the chart and misses the
	// blip. Zero for a perfect oracle.
	Miss float64

	truth  timeseries.Labels
	model  TimeModel
	budget float64 // total minutes; <= 0 means unlimited
	rng    *rand.Rand

	spent    float64
	answered int
	sitting  bool
}

// NewQueryOracle builds an oracle over ground-truth labels. budgetMinutes
// caps the total modeled labeling time (<= 0 = unlimited); seed makes miss
// decisions deterministic.
func NewQueryOracle(truth timeseries.Labels, model TimeModel, budgetMinutes float64, seed int64) *QueryOracle {
	return &QueryOracle{
		truth:  truth,
		model:  model,
		budget: budgetMinutes,
		rng:    rand.New(rand.NewSource(seed)),
	}
}

// affords reports whether the budget covers cost more minutes.
func (o *QueryOracle) affords(cost float64) bool {
	return o.budget <= 0 || o.spent+cost <= o.budget+1e-9
}

// BeginSitting opens one labeling sitting (e.g. a week's query review),
// charging the base navigation cost. Returns false — charging nothing — when
// the remaining budget cannot cover the base cost plus at least one answer;
// a sitting that could answer nothing would waste the operator's time.
func (o *QueryOracle) BeginSitting() bool {
	if o.sitting {
		return true
	}
	if !o.affords(o.model.BaseMinutes + o.model.MinutesPerWindow) {
		return false
	}
	o.spent += o.model.BaseMinutes
	o.sitting = true
	return true
}

// EndSitting closes the current sitting; the next BeginSitting charges the
// base cost again.
func (o *QueryOracle) EndSitting() { o.sitting = false }

// Answer resolves one query window [start, end) against ground truth,
// charging MinutesPerWindow regardless of how many points the window spans.
// ok is false — and nothing is charged — when no sitting is open or the
// budget is exhausted. anomalous is true when the window overlaps any
// ground-truth anomalous point, subject to Miss.
func (o *QueryOracle) Answer(start, end int) (anomalous, ok bool) {
	if !o.sitting || !o.affords(o.model.MinutesPerWindow) {
		return false, false
	}
	o.spent += o.model.MinutesPerWindow
	o.answered++
	truth := false
	for i := start; i < end && i < len(o.truth); i++ {
		if i >= 0 && o.truth[i] {
			truth = true
			break
		}
	}
	if truth && o.Miss > 0 && o.rng.Float64() < o.Miss {
		truth = false
	}
	return truth, true
}

// SpentMinutes returns the modeled labeling time consumed so far.
func (o *QueryOracle) SpentMinutes() float64 { return o.spent }

// Answered returns how many queries have been answered.
func (o *QueryOracle) Answered() int { return o.answered }
