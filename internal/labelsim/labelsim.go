// Package labelsim models the operators who label anomalies with the tool of
// §4.2. Two aspects matter for the reproduction: (1) labels are imperfect —
// window boundaries get extended or narrowed and short windows are
// occasionally missed, the noise §4.2 argues machine learning tolerates;
// (2) labeling is fast — the time grows with the number of anomalous
// *windows*, not anomalous points, which is Fig. 14's result.
package labelsim

import (
	"math/rand"

	"opprentice/internal/timeseries"
)

// Operator simulates one labeling operator.
type Operator struct {
	// BoundaryJitter is the maximum number of points each window boundary
	// is moved outward or inward.
	BoundaryJitter int
	// MissBelow and MissProb: windows shorter than MissBelow points are
	// missed entirely with probability MissProb.
	MissBelow int
	MissProb  float64
	// Seed makes the labeling pass deterministic.
	Seed int64
}

// DefaultOperator returns a careful but human operator: boundaries off by up
// to 2 points, 10 % of 1–2 point blips missed.
func DefaultOperator() Operator {
	return Operator{BoundaryJitter: 2, MissBelow: 3, MissProb: 0.1, Seed: 1}
}

// Label converts ground-truth labels into what the operator would actually
// produce with the labeling tool: one label action per anomalous window,
// with noisy boundaries.
func (o Operator) Label(truth timeseries.Labels) timeseries.Labels {
	rng := rand.New(rand.NewSource(o.Seed))
	var out []timeseries.Window
	for _, w := range truth.Windows() {
		if w.Len() < o.MissBelow && rng.Float64() < o.MissProb {
			continue
		}
		j := o.BoundaryJitter
		if j > 0 {
			w.Start += rng.Intn(2*j+1) - j
			w.End += rng.Intn(2*j+1) - j
		}
		if w.End <= w.Start {
			w.End = w.Start + 1
		}
		out = append(out, w)
	}
	return timeseries.FromWindows(len(truth), out)
}

// TimeModel maps a month's anomalous-window count to labeling minutes.
// Fig. 14 shows an affine relationship with every month under six minutes.
type TimeModel struct {
	BaseMinutes      float64 // loading, navigating, zooming
	MinutesPerWindow float64 // one click-and-drag per window
}

// DefaultTimeModel matches Fig. 14: ≈1 minute of navigation plus ≈12 seconds
// per anomalous window, keeping a typical month under 6 minutes.
func DefaultTimeModel() TimeModel {
	return TimeModel{BaseMinutes: 1.0, MinutesPerWindow: 0.2}
}

// MonthMinutes returns the modeled labeling time for one month of data with
// the given number of anomalous windows.
func (m TimeModel) MonthMinutes(windows int) float64 {
	return m.BaseMinutes + m.MinutesPerWindow*float64(windows)
}

// MonthStat describes one month of labeling work.
type MonthStat struct {
	Month   int
	Windows int
	Minutes float64
}

// Months splits the labels into calendar months (4-week blocks, as the
// paper's weekly cadence implies), counts anomalous windows per month, and
// applies the time model. Windows spanning a boundary count toward the month
// they start in.
func (m TimeModel) Months(labels timeseries.Labels, pointsPerWeek int) []MonthStat {
	ppm := 4 * pointsPerWeek
	if ppm <= 0 {
		return nil
	}
	nMonths := (len(labels) + ppm - 1) / ppm
	counts := make([]int, nMonths)
	for _, w := range labels.Windows() {
		counts[w.Start/ppm]++
	}
	out := make([]MonthStat, nMonths)
	for i, c := range counts {
		out[i] = MonthStat{Month: i + 1, Windows: c, Minutes: m.MonthMinutes(c)}
	}
	return out
}

// TotalMinutes sums the modeled labeling time over all months.
func (m TimeModel) TotalMinutes(labels timeseries.Labels, pointsPerWeek int) float64 {
	total := 0.0
	for _, ms := range m.Months(labels, pointsPerWeek) {
		total += ms.Minutes
	}
	return total
}
