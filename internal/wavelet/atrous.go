// Package wavelet implements an undecimated ("à trous") Haar
// multi-resolution analysis, the signal-analysis substrate of the wavelet
// basic detector [Barford et al., IMW 2002]. The transform is computed
// incrementally: each new point costs O(levels), so the detector meets the
// paper's online requirement (§4.3.2) even with windows of several days.
//
// With A_0 = x, the analysis maintains for each level j ≥ 1
//
//	A_j[t] = (A_{j-1}[t] + A_{j-1}[t-2^{j-1}]) / 2   (smooth)
//	D_j[t] = A_{j-1}[t] - A_j[t]                      (detail)
//
// so that x[t] = D_1[t] + D_2[t] + … + D_L[t] + A_L[t]: the details
// partition the signal into frequency bands from high (D_1, fast jitter) to
// low (A_L, long-term level).
package wavelet

import "fmt"

// MRA is an incremental à-trous Haar multi-resolution analysis.
// Create it with NewMRA; the zero value is unusable.
type MRA struct {
	levels  int
	rings   [][]float64 // rings[j] holds the lag buffer of A_j (lag 2^j)
	pos     []int
	filled  []int
	n       int       // points consumed
	details []float64 // reused Push output buffer
}

// NewMRA returns an analysis with the given number of detail levels
// (1 ≤ levels ≤ 30).
func NewMRA(levels int) *MRA {
	if levels < 1 || levels > 30 {
		panic(fmt.Sprintf("wavelet: levels %d out of range [1,30]", levels))
	}
	m := &MRA{
		levels: levels,
		rings:  make([][]float64, levels),
		pos:    make([]int, levels),
		filled: make([]int, levels),
	}
	for j := 0; j < levels; j++ {
		m.rings[j] = make([]float64, 1<<j)
	}
	return m
}

// Levels returns the number of detail levels.
func (m *MRA) Levels() int { return m.levels }

// WarmUp returns the number of points needed before Push reports ready:
// the largest lag chain, 2^levels - 1.
func (m *MRA) WarmUp() int { return 1<<m.levels - 1 }

// Push consumes the next point and returns the detail coefficients
// D_1..D_levels and the final approximation A_levels at this time index.
// ready is false until the warm-up window has been seen; during warm-up the
// transform substitutes the current value for missing lagged ones, so the
// outputs are defined but not yet trustworthy.
//
// The returned details slice is owned by the analysis and overwritten by the
// next Push; callers that retain coefficients across points must copy them.
func (m *MRA) Push(x float64) (details []float64, approx float64, ready bool) {
	if m.details == nil {
		m.details = make([]float64, m.levels)
	}
	details = m.details
	a := x // A_{j-1}[t], starting at A_0 = x
	for j := 0; j < m.levels; j++ {
		ring := m.rings[j]
		lagged := a
		if m.filled[j] == len(ring) {
			lagged = ring[m.pos[j]]
		}
		ring[m.pos[j]] = a
		m.pos[j] = (m.pos[j] + 1) % len(ring)
		if m.filled[j] < len(ring) {
			m.filled[j]++
		}
		next := (a + lagged) / 2 // A_j[t]
		details[j] = a - next    // D_j[t]
		a = next
	}
	m.n++
	return details, a, m.n > m.WarmUp()
}

// Clone returns an independent analysis at the same stream position:
// pushing the same future points into the clone and the original yields
// bit-identical coefficients.
func (m *MRA) Clone() *MRA {
	c := &MRA{
		levels: m.levels,
		rings:  make([][]float64, len(m.rings)),
		pos:    append([]int(nil), m.pos...),
		filled: append([]int(nil), m.filled...),
		n:      m.n,
	}
	for j, r := range m.rings {
		c.rings[j] = append([]float64(nil), r...)
	}
	return c
}

// Reset returns the analysis to its initial state.
func (m *MRA) Reset() {
	for j := range m.rings {
		for i := range m.rings[j] {
			m.rings[j][i] = 0
		}
		m.pos[j], m.filled[j] = 0, 0
	}
	m.n = 0
}

// Band identifies a frequency band of the analysis, as sampled by the
// wavelet detector configurations in Table 3.
type Band int

// The three bands of Table 3's wavelet detector.
const (
	High Band = iota // finest scales: jitter, spikes
	Mid              // intermediate scales
	Low              // coarsest scales plus the residual approximation
)

// String returns the Table-3 name of the band.
func (b Band) String() string {
	switch b {
	case High:
		return "high"
	case Mid:
		return "mid"
	case Low:
		return "low"
	default:
		return fmt.Sprintf("Band(%d)", int(b))
	}
}

// BandSplit partitions detail levels 1..levels into the three bands,
// returning for each band the (inclusive) level range [lo, hi]; Low also
// owns the final approximation. Levels are split as evenly as thirds allow,
// with high frequencies getting the finest levels.
func BandSplit(levels int) (ranges [3][2]int) {
	third := levels / 3
	if third == 0 {
		third = 1
	}
	hiEnd := third
	midEnd := 2 * third
	if midEnd >= levels {
		midEnd = levels - 1
	}
	if hiEnd > midEnd {
		hiEnd = midEnd
	}
	ranges[High] = [2]int{1, hiEnd}
	ranges[Mid] = [2]int{hiEnd + 1, midEnd}
	ranges[Low] = [2]int{midEnd + 1, levels}
	return ranges
}

// BandValue sums the detail coefficients of the band; for Low it also adds
// the deviation of the approximation from zero-mean (the caller typically
// feeds mean-removed data or tracks the approximation's own drift).
func BandValue(b Band, details []float64, approxDelta float64) float64 {
	ranges := BandSplit(len(details))
	lo, hi := ranges[b][0], ranges[b][1]
	sum := 0.0
	for lvl := lo; lvl <= hi && lvl <= len(details); lvl++ {
		sum += details[lvl-1]
	}
	if b == Low {
		sum += approxDelta
	}
	return sum
}
