package wavelet

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewMRAPanics(t *testing.T) {
	for _, levels := range []int{0, -1, 31} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewMRA(%d) should panic", levels)
				}
			}()
			NewMRA(levels)
		}()
	}
}

func TestWarmUp(t *testing.T) {
	if got := NewMRA(3).WarmUp(); got != 7 {
		t.Errorf("WarmUp(3 levels) = %d, want 7", got)
	}
	if got := NewMRA(1).WarmUp(); got != 1 {
		t.Errorf("WarmUp(1 level) = %d, want 1", got)
	}
}

// Perfect reconstruction: x = ΣD_j + A_L at every step, warm or not.
func TestPerfectReconstruction(t *testing.T) {
	m := NewMRA(4)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		x := rng.NormFloat64()*3 + 10
		details, approx, _ := m.Push(x)
		sum := approx
		for _, d := range details {
			sum += d
		}
		if math.Abs(sum-x) > 1e-9 {
			t.Fatalf("point %d: ΣD+A = %v, want %v", i, sum, x)
		}
	}
}

func TestReadyAfterWarmUp(t *testing.T) {
	m := NewMRA(3)
	for i := 0; i < m.WarmUp(); i++ {
		if _, _, ready := m.Push(1); ready {
			t.Fatalf("ready at point %d, warm-up is %d", i, m.WarmUp())
		}
	}
	if _, _, ready := m.Push(1); !ready {
		t.Error("should be ready after warm-up")
	}
}

// A constant signal has zero details and approximation equal to the signal.
func TestConstantSignal(t *testing.T) {
	m := NewMRA(4)
	var details []float64
	var approx float64
	for i := 0; i < 50; i++ {
		details, approx, _ = m.Push(5)
	}
	for j, d := range details {
		if math.Abs(d) > 1e-12 {
			t.Errorf("detail[%d] = %v, want 0", j, d)
		}
	}
	if math.Abs(approx-5) > 1e-12 {
		t.Errorf("approx = %v, want 5", approx)
	}
}

// An alternating signal concentrates energy in the finest detail level.
func TestAlternatingSignalHitsHighBand(t *testing.T) {
	m := NewMRA(4)
	var energy []float64
	for i := 0; i < 64; i++ {
		x := float64(i%2)*2 - 1 // -1, +1, -1, ...
		details, _, ready := m.Push(x)
		if !ready {
			continue
		}
		if energy == nil {
			energy = make([]float64, len(details))
		}
		for j, d := range details {
			energy[j] += d * d
		}
	}
	for j := 1; j < len(energy); j++ {
		if energy[0] <= energy[j] {
			t.Errorf("level 1 energy %v should dominate level %d energy %v",
				energy[0], j+1, energy[j])
		}
	}
}

// A slow level shift shows up in the coarse levels, not the finest.
func TestLevelShiftHitsLowBand(t *testing.T) {
	m := NewMRA(5)
	var fine, coarse float64
	for i := 0; i < 256; i++ {
		x := 0.0
		if i >= 128 {
			x = 10
		}
		details, _, ready := m.Push(x)
		if !ready || i < 128 || i > 160 {
			continue
		}
		fine += math.Abs(details[0])
		coarse += math.Abs(details[len(details)-1])
	}
	if coarse <= fine {
		t.Errorf("level shift: coarse |D| %v should exceed fine |D| %v", coarse, fine)
	}
}

func TestReset(t *testing.T) {
	m := NewMRA(3)
	for i := 0; i < 20; i++ {
		m.Push(float64(i))
	}
	m.Reset()
	if _, _, ready := m.Push(1); ready {
		t.Error("ready right after Reset")
	}
	// And reconstruction still holds.
	details, approx, _ := m.Push(4)
	sum := approx
	for _, d := range details {
		sum += d
	}
	if math.Abs(sum-4) > 1e-9 {
		t.Errorf("post-reset reconstruction = %v, want 4", sum)
	}
}

func TestBandSplitCoversAllLevels(t *testing.T) {
	f := func(raw uint8) bool {
		levels := 1 + int(raw)%12
		r := BandSplit(levels)
		covered := make([]bool, levels+1)
		for _, band := range r {
			for l := band[0]; l <= band[1]; l++ {
				if l < 1 || l > levels || covered[l] {
					return false
				}
				covered[l] = true
			}
		}
		for l := 1; l <= levels; l++ {
			if !covered[l] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestBandString(t *testing.T) {
	if High.String() != "high" || Mid.String() != "mid" || Low.String() != "low" {
		t.Error("band names wrong")
	}
	if Band(9).String() != "Band(9)" {
		t.Error("unknown band name wrong")
	}
}

func TestBandValueSumsToSignal(t *testing.T) {
	// High+Mid+Low band values (with approxDelta = approx) must equal x.
	m := NewMRA(6)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		x := rng.NormFloat64()
		details, approx, _ := m.Push(x)
		sum := BandValue(High, details, 0) + BandValue(Mid, details, 0) + BandValue(Low, details, approx)
		if math.Abs(sum-x) > 1e-9 {
			t.Fatalf("band sum = %v, want %v", sum, x)
		}
	}
}
