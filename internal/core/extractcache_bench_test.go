package core

// Retrain extraction cost, cold vs incremental — the PR's headline number.
// Both arms run the full paper-scale detector registry (§4.3, 14 detectors /
// 100+ configurations) over hourly data:
//
//   - cold:        re-extracts 13 weeks of history from scratch, the way
//                  every weekly retrain worked before the cache (includes the
//                  Trainable ARIMA refit).
//   - incremental: appends one week onto 12 weeks of already-cached history
//                  and extracts only the new tail (the cache grows across
//                  iterations, so every iteration is a realistic
//                  week-over-week retrain).
//
// The speedup ratio cold/incremental is what cmd/benchjson records in
// BENCH_retrain.json and checks against BENCH_baseline.json (the ratio, not
// the absolute ns/op, so the check is machine-independent).

import (
	"testing"
	"time"

	"opprentice/internal/detectors"
	"opprentice/internal/kpigen"
	"opprentice/internal/timeseries"
)

// benchDataSeed pins the kpigen RNG for every series this benchmark
// generates. Seed policy (see DESIGN.md "Seeds and reproducibility"): bench
// fixtures feeding BENCH_baseline.json must use a fixed, named seed so the
// cold/incremental ratio is comparable across runs and machines; changing
// the seed is a baseline change and requires regenerating the baseline.
const benchDataSeed int64 = 17

// benchSeries generates `weeks` of hourly PV data from the pinned seed.
func benchSeries(b *testing.B, weeks int) *timeseries.Series {
	b.Helper()
	p := kpigen.PV(kpigen.Small)
	p.Interval = time.Hour
	p.Weeks = weeks
	return kpigen.Generate(p, benchDataSeed).Series
}

// benchRegistry returns a fresh full paper registry for hourly data.
func benchRegistry(b *testing.B) []detectors.Detector {
	b.Helper()
	ds, err := detectors.Registry(time.Hour)
	if err != nil {
		b.Fatal(err)
	}
	return ds
}

func BenchmarkRetrainColdVsIncremental(b *testing.B) {
	const (
		ppw       = 168 // hourly points per week
		histWeeks = 13
	)

	b.Run("cold", func(b *testing.B) {
		full := benchSeries(b, histWeeks)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := Extract(full, benchRegistry(b), ExtractConfig{}); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("incremental", func(b *testing.B) {
		full := benchSeries(b, histWeeks)
		// Seed the cache with all but the last week (one cold round, untimed).
		s := timeseries.New(full.Name, full.Start, full.Interval)
		for _, v := range full.Values[:(histWeeks-1)*ppw] {
			s.Append(v)
		}
		cache := NewFeatureCache(nil)
		if _, _, err := ExtractIncremental(cache, s, benchRegistry(b), ExtractConfig{}); err != nil {
			b.Fatal(err)
		}
		week := full.Values[(histWeeks-1)*ppw:] // cycled tail for the appended weeks
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, v := range week {
				s.Append(v)
			}
			if _, _, err := ExtractIncremental(cache, s, benchRegistry(b), ExtractConfig{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
