package core

import (
	"opprentice/internal/ml/forest"
	"opprentice/internal/stats"
)

// Metric identifies a cThld-selection metric of §4.5.1 / Fig. 12.
type Metric int

// The four compared metrics.
const (
	// DefaultCThld always uses 0.5 — the random-forest default.
	DefaultCThld Metric = iota
	// FScoreMetric maximizes the F-Score.
	FScoreMetric
	// SD11Metric minimizes the distance to perfect (1, 1).
	SD11Metric
	// PCScoreMetric maximizes the paper's preference-centric score.
	PCScoreMetric
)

// String names the metric as Fig. 12 labels it.
func (m Metric) String() string {
	switch m {
	case DefaultCThld:
		return "default_cthld"
	case FScoreMetric:
		return "f_score"
	case SD11Metric:
		return "sd(1,1)"
	case PCScoreMetric:
		return "pc_score"
	default:
		return "unknown"
	}
}

// Metrics lists all four in Fig. 12's order.
func Metrics() []Metric {
	return []Metric{PCScoreMetric, FScoreMetric, DefaultCThld, SD11Metric}
}

// SelectCThld picks the cThld for scored data under the metric, returning
// the operating point it expects. The preference only matters for
// PCScoreMetric.
func SelectCThld(scores []float64, truth []bool, m Metric, pref stats.Preference) stats.PRPoint {
	switch m {
	case DefaultCThld:
		r, p := stats.AtThreshold(scores, truth, 0.5)
		return stats.PRPoint{Threshold: 0.5, Recall: r, Precision: p}
	case FScoreMetric:
		return stats.BestByFScore(stats.PRCurve(scores, truth))
	case SD11Metric:
		return stats.BestBySD11(stats.PRCurve(scores, truth))
	default:
		best, _ := stats.BestByPCScore(stats.PRCurve(scores, truth), pref)
		return best
	}
}

// cThldCandidates returns the candidate grid of §4.5.2: numCandidates+1
// evenly spaced thresholds spanning [0, 1].
func cThldCandidates(numCandidates int) []float64 {
	if numCandidates < 1 {
		numCandidates = 1000
	}
	out := make([]float64, numCandidates+1)
	for i := range out {
		out[i] = float64(i) / float64(numCandidates)
	}
	return out
}

// CrossValidateCThld predicts a cThld from a training set alone by k-fold
// cross-validation (§4.5.2): the set is cut into k contiguous subsets; each
// fold is scored by a forest trained on the others, and the candidate with
// the best average PC-Score across folds wins. cols are column-major
// NaN-free features.
func CrossValidateCThld(cols [][]float64, labels []bool, folds, numCandidates int, fcfg forest.Config, pref stats.Preference) float64 {
	n := len(labels)
	if folds < 2 {
		folds = 5
	}
	if n < 2*folds {
		return 0.5
	}
	candidates := cThldCandidates(numCandidates)
	sums := make([]float64, len(candidates))
	for fold := 0; fold < folds; fold++ {
		lo := fold * n / folds
		hi := (fold + 1) * n / folds
		trainCols := make([][]float64, len(cols))
		trainLabels := make([]bool, 0, n-(hi-lo))
		for j, col := range cols {
			tc := make([]float64, 0, n-(hi-lo))
			tc = append(tc, col[:lo]...)
			tc = append(tc, col[hi:]...)
			trainCols[j] = tc
		}
		trainLabels = append(trainLabels, labels[:lo]...)
		trainLabels = append(trainLabels, labels[hi:]...)
		if !bothClasses(trainLabels) {
			continue
		}
		f := forest.Train(trainCols, trainLabels, fcfg)
		testCols := make([][]float64, len(cols))
		for j, col := range cols {
			testCols[j] = col[lo:hi]
		}
		scores := f.ProbAll(testCols)
		pts := stats.AtThresholds(scores, labels[lo:hi], candidates)
		for i, pt := range pts {
			sums[i] += stats.PCScore(pt.Recall, pt.Precision, pref)
		}
	}
	best, bestSum := 0.5, -1.0
	for i, s := range sums {
		if s > bestSum {
			best, bestSum = candidates[i], s
		}
	}
	return best
}

// bothClasses reports whether labels contain at least one anomaly and one
// normal point.
func bothClasses(labels []bool) bool {
	var pos, neg bool
	for _, l := range labels {
		if l {
			pos = true
		} else {
			neg = true
		}
		if pos && neg {
			return true
		}
	}
	return false
}

// CThldPredictor predicts next week's cThld with EWMA over historical best
// cThlds (§4.5.2): pred_i = α·best_{i-1} + (1-α)·pred_{i-1}, seeded by
// cross-validation for the first week.
type CThldPredictor struct {
	ewma stats.EWMA
}

// NewCThldPredictor returns a predictor with the paper's α = 0.8 when alpha
// is 0.
func NewCThldPredictor(alpha float64) *CThldPredictor {
	if alpha <= 0 {
		alpha = 0.8
	}
	return &CThldPredictor{ewma: stats.EWMA{Alpha: alpha}}
}

// Seed initializes the prediction (the paper seeds with 5-fold CV).
func (p *CThldPredictor) Seed(cthld float64) { p.ewma.Update(cthld) }

// Predict returns the cThld to use for the coming week.
func (p *CThldPredictor) Predict() float64 {
	v, ok := p.ewma.Value()
	if !ok {
		return 0.5
	}
	return v
}

// Observe folds in the best cThld of the week that just completed.
func (p *CThldPredictor) Observe(best float64) { p.ewma.Update(best) }

// ObserveScore is a no-op: the EWMA prediction is static between retrains.
func (p *CThldPredictor) ObserveScore(float64) {}

// Refit is a no-op: the EWMA prediction depends only on weekly bests.
func (p *CThldPredictor) Refit([]float64, []bool) {}

// Kind identifies the strategy.
func (p *CThldPredictor) Kind() PredictorKind { return PredictEWMA }

// Clone returns an independent copy of the predictor. An asynchronous
// retrain folds the latest weekly observation into the clone and only
// publishes it when the new monitor is swapped in, so a failed or abandoned
// training round never disturbs the live predictor's EWMA state.
func (p *CThldPredictor) Clone() Predictor {
	c := *p
	return &c
}
