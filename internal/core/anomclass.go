package core

// AnomalyClass is the typed-anomaly taxonomy the multi-class head predicts
// (ROADMAP item 2): operators want to know not just that a KPI misbehaved
// but how. Class codes are stable wire values — they ride typed label ops in
// the tsdb log and the multi-model type artifact, so existing codes must
// never be renumbered.
type AnomalyClass uint8

// The classes, in wire order. ClassNone is both "not anomalous" and the
// head's abstain target.
const (
	ClassNone AnomalyClass = iota
	ClassSpike
	ClassDrop
	ClassRamp
	ClassLevelShift
	ClassJitter
)

// classNames are the String/ParseClass constant names; indexing by class
// code keeps String allocation-free on the alarm hot path.
var classNames = [...]string{"none", "spike", "drop", "ramp", "level_shift", "jitter"}

// String names the class for wire fields and operator tooling.
func (c AnomalyClass) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return "unknown"
}

// Wire is the JSON wire form: empty for ClassNone (so omitempty drops the
// field on non-anomalous verdicts), the class name otherwise.
func (c AnomalyClass) Wire() string {
	if c == ClassNone {
		return ""
	}
	return c.String()
}

// ParseClass parses a class name (as produced by String; "" also maps to
// ClassNone). ok is false for unknown names.
func ParseClass(s string) (AnomalyClass, bool) {
	if s == "" {
		return ClassNone, true
	}
	for i, name := range classNames {
		if s == name {
			return AnomalyClass(i), true
		}
	}
	return ClassNone, false
}
