package core

import (
	"math"

	"opprentice/internal/stats"
)

// PredictorKind selects the cThld prediction strategy for a series.
type PredictorKind uint8

const (
	// PredictEWMA is the paper's §4.5.2 predictor: EWMA over weekly best
	// cThlds, seeded by cross-validation. The threshold is constant between
	// retrains.
	PredictEWMA PredictorKind = iota
	// PredictEVT is the POT/GPD dynamic predictor: a generalized Pareto tail
	// is fit to the vote fractions of the trailing training window at each
	// retrain, and the threshold is re-evaluated per point from the fitted
	// tail as the observation counters advance.
	PredictEVT
)

// String names the kind as the -cthld-predictor flag spells it.
func (k PredictorKind) String() string {
	if k == PredictEVT {
		return "evt"
	}
	return "ewma"
}

// ParsePredictorKind parses a -cthld-predictor flag value ("" and "ewma"
// select the paper's predictor, "evt" the POT/GPD one). ok is false for
// unknown names.
func ParsePredictorKind(s string) (PredictorKind, bool) {
	switch s {
	case "", "ewma":
		return PredictEWMA, true
	case "evt":
		return PredictEVT, true
	}
	return PredictEWMA, false
}

// Predictor is the cThld-predictor seam: the monitor consults it for the
// threshold in force, feeds it weekly best thresholds at retrain (Observe),
// and — for dynamic kinds — feeds it every online vote fraction
// (ObserveScore) and the trailing training-window scores at each retrain
// (Refit). Static kinds implement ObserveScore and Refit as no-ops, so the
// paper's EWMA path is bit-identical to the pre-seam code.
type Predictor interface {
	// Seed initializes the prediction (the paper seeds with 5-fold CV).
	Seed(cthld float64)
	// Predict returns the cThld currently in force.
	Predict() float64
	// Observe folds in the best cThld of the week that just completed.
	Observe(best float64)
	// ObserveScore feeds one online vote fraction from the trained hot path.
	// Implementations must not allocate: this runs once per scored point.
	ObserveScore(p float64)
	// Refit re-derives the predictor's model at a retrain boundary from the
	// trailing window's out-of-sample vote fractions and their operator
	// labels (anomalous may be nil when no labels are known: the whole
	// sample is then treated as normal).
	Refit(scores []float64, anomalous []bool)
	// Clone returns an independent copy for asynchronous retrains: the clone
	// absorbs the round's observations and only replaces the live predictor
	// when the new monitor is swapped in.
	Clone() Predictor
	// Kind identifies the strategy for serialization and status surfaces.
	Kind() PredictorKind
}

// Default EVT tuning. Vote fractions are discrete multiples of 1/trees in
// [0, 1], so both the peaks quantile and the target risk are far coarser
// than the raw-value SPOT settings in the EVT literature.
const (
	// DefaultEVTQ is the starting target exceedance risk: the score level
	// exceeded with probability 1% on normal data. An auto-calibrating
	// predictor (the default) re-selects the risk from evtQGrid at every
	// refit; a configured q pins it.
	DefaultEVTQ = 0.01
	// evtPeaksQuantile is the empirical quantile defining the peaks
	// threshold u: the top 2% of training scores are the tail sample.
	evtPeaksQuantile = 0.98
	// evtFloor / evtCeil clamp the predicted cThld into (0, 1): a fitted
	// tail can extrapolate past 1 (no alarm would ever fire) or collapse
	// toward 0 (every point would alarm); both are capped to sane vote
	// fractions.
	evtFloor = 0.01
	evtCeil  = 0.99
)

// evtQGrid is the candidate risk grid for auto-calibration: log-spaced and
// deliberately coarse, so the weekly supervised choice is regularized to a
// handful of operating regimes instead of chasing the window's noise.
var evtQGrid = [...]float64{0.0001, 0.0002, 0.0005, 0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1}

// EVTPredictor predicts the cThld by peaks-over-threshold extreme value
// theory over the classifier's own vote fractions: at each retrain, normal-
// labeled scores above the empirical evtPeaksQuantile are excesses fit to a
// GPD(ξ, σ), and the threshold is the POT zq quantile for risk q. By default
// the risk itself is auto-calibrated per refit: each candidate in evtQGrid is
// pushed through the fitted tail and judged by the PC-Score of the resulting
// alarms against the window's labels — the labels pick the operating regime,
// the tail supplies the threshold family and the between-retrain dynamics. A
// configured q pins the risk instead (the SPOT deployment style). Between
// retrains, ObserveScore advances the observation and peak counters and
// re-evaluates zq arithmetically from the fitted tail — per-point dynamics
// with zero allocations. A degenerate tail (constant scores, too few peaks)
// falls back deterministically to the best labeled threshold of the window,
// or the empirical 1−q quantile when unlabeled, until the next refit.
type EVTPredictor struct {
	q    float64 // target exceedance risk in force (0, 1)
	auto bool    // re-select q from evtQGrid at each refit
	u0   float64 // peaks quantile defining u
	pref stats.Preference

	u      float64   // peaks threshold of the current fit window
	gpd    stats.GPD // fitted tail (valid only when fitted)
	fitted bool
	n      int     // observations since the fit window opened (includes it)
	nu     int     // excesses over u among them
	z      float64 // threshold in force, clamped into [evtFloor, evtCeil]
	seeded bool
}

// NewEVTPredictor returns an EVT predictor. A q inside (0, 1) pins the
// exceedance risk; anything else selects auto-calibration starting from
// DefaultEVTQ. pref is the preference auto-calibration optimizes (zero value:
// the paper's 0.66/0.66).
func NewEVTPredictor(q float64, pref stats.Preference) *EVTPredictor {
	if pref == (stats.Preference{}) {
		pref = stats.Preference{Recall: 0.66, Precision: 0.66}
	}
	p := &EVTPredictor{q: q, u0: evtPeaksQuantile, pref: pref}
	if !(q > 0 && q < 1) {
		p.q, p.auto = DefaultEVTQ, true
	}
	return p
}

// Q returns the configured exceedance risk: 0 for an auto-calibrating
// predictor (so a snapshot round-trip restores auto-calibration, not the
// risk it happened to hold), the pinned q otherwise.
func (p *EVTPredictor) Q() float64 {
	if p.auto {
		return 0
	}
	return p.q
}

// clampCThld caps a threshold into the sane vote-fraction band, mapping NaN
// to the ceiling (an unusable tail must fail alarm-quiet, not alarm-always).
func clampCThld(z float64) float64 {
	switch {
	case math.IsNaN(z):
		return evtCeil
	case z < evtFloor:
		return evtFloor
	case z > evtCeil:
		return evtCeil
	}
	return z
}

// Seed initializes the threshold (cross-validation, or a restored
// snapshot's cThld). It never disturbs an established fit.
func (p *EVTPredictor) Seed(cthld float64) {
	if p.fitted {
		return
	}
	p.z = clampCThld(cthld)
	p.seeded = true
}

// Predict returns the threshold in force (0.5 before any seed or fit).
func (p *EVTPredictor) Predict() float64 {
	if !p.seeded && !p.fitted {
		return 0.5
	}
	return p.z
}

// Observe is a no-op: the EVT predictor derives its threshold from the score
// tail, not from weekly supervised best thresholds.
func (p *EVTPredictor) Observe(float64) {}

// ObserveScore feeds one online vote fraction: the observation counter
// advances, scores over u extend the peak count, and the threshold is
// re-evaluated from the fitted tail. Following SPOT, scores at or above the
// threshold in force are alarms, not evidence about the normal tail, and are
// excluded — an anomalous run must not inflate the exceedance counters and
// drag the threshold up behind it. Pure arithmetic — no allocations.
func (p *EVTPredictor) ObserveScore(s float64) {
	if !p.fitted || s >= p.z {
		return // unfitted: empirical fallback holds until the next Refit
	}
	p.n++
	if s > p.u {
		p.nu++
	}
	if z := stats.POTThreshold(p.u, p.gpd, p.n, p.nu, p.q); !math.IsNaN(z) {
		p.z = clampCThld(z)
	}
}

// Refit re-derives the tail from the trailing window's out-of-sample vote
// fractions: u is the empirical evtPeaksQuantile of the normal-labeled
// scores, the excesses over u are fit to a GPD, and the threshold restarts
// at the POT zq quantile for the risk in force — re-selected from evtQGrid
// by labeled PC-Score first when auto-calibrating. When the tail is
// degenerate (constant scores, too few peaks, failed fit) the predictor
// falls back to the best labeled threshold of the window (or the empirical
// 1−q quantile when unlabeled) — a deterministic threshold that holds static
// until the next refit.
func (p *EVTPredictor) Refit(scores []float64, anomalous []bool) {
	if len(scores) == 0 {
		return
	}
	if len(anomalous) != len(scores) {
		anomalous = nil
	}
	// The POT tail models the score distribution on normal data (the risk q
	// is a false-alarm budget); labeled anomalies — which a forest scores
	// near 1 — would collapse the tail to a point mass at the ceiling.
	normal := scores
	if anomalous != nil {
		normal = make([]float64, 0, len(scores))
		for i, s := range scores {
			if !anomalous[i] {
				normal = append(normal, s)
			}
		}
		if len(normal) == 0 {
			return
		}
	}
	p.fitted = false
	u := stats.Quantile(normal, p.u0)
	if !math.IsNaN(u) {
		excesses := make([]float64, 0, len(normal)/8)
		for _, s := range normal {
			if s > u {
				excesses = append(excesses, s-u)
			}
		}
		if g, ok := stats.FitGPD(excesses); ok {
			if p.auto {
				p.q = p.calibrateQ(u, g, len(normal), len(excesses), scores, anomalous)
			}
			if z := stats.POTThreshold(u, g, len(normal), len(excesses), p.q); !math.IsNaN(z) {
				p.u, p.gpd, p.fitted = u, g, true
				p.n, p.nu = len(normal), len(excesses)
				p.z = clampCThld(z)
				return
			}
		}
	}
	if anomalous != nil && bothClasses(anomalous) {
		best, _ := stats.BestByPCScore(stats.PRCurve(scores, anomalous), p.pref)
		p.z = clampCThld(best.Threshold)
		p.seeded = true
		return
	}
	if z := stats.Quantile(normal, 1-p.q); !math.IsNaN(z) {
		p.z = clampCThld(z)
		p.seeded = true
	}
}

// calibrateQ selects the exceedance risk from evtQGrid: each candidate's POT
// threshold (through the just-fitted tail with the fit window's counters) is
// scored by the PC-Score of the alarms it would have raised over the labeled
// window. Unlabeled or single-class windows keep the risk in force. Ties go
// to the smaller risk (the quieter alarm budget).
func (p *EVTPredictor) calibrateQ(u float64, g stats.GPD, n, nu int, scores []float64, anomalous []bool) float64 {
	if anomalous == nil || !bothClasses(anomalous) {
		return p.q
	}
	bestQ, bestScore := p.q, math.Inf(-1)
	for _, q := range evtQGrid {
		z := stats.POTThreshold(u, g, n, nu, q)
		if math.IsNaN(z) {
			continue
		}
		z = clampCThld(z)
		var c stats.Confusion
		for i, s := range scores {
			switch {
			case s >= z && anomalous[i]:
				c.TP++
			case s >= z:
				c.FP++
			case anomalous[i]:
				c.FN++
			default:
				c.TN++
			}
		}
		if sc := stats.PCScore(c.Recall(), c.Precision(), p.pref); sc > bestScore {
			bestQ, bestScore = q, sc
		}
	}
	return bestQ
}

// Clone returns an independent copy (value semantics: all fields are plain).
func (p *EVTPredictor) Clone() Predictor {
	c := *p
	return &c
}

// Kind identifies the strategy.
func (p *EVTPredictor) Kind() PredictorKind { return PredictEVT }

// newPredictor builds the predictor for a kind: the paper's EWMA predictor
// (with its α) or the EVT predictor (with its risk q and the preference its
// auto-calibration optimizes).
func newPredictor(kind PredictorKind, alpha, q float64, pref stats.Preference) Predictor {
	if kind == PredictEVT {
		return NewEVTPredictor(q, pref)
	}
	return NewCThldPredictor(alpha)
}
