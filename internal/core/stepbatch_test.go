package core

// StepBatch is the batched form of the online hot path; these tests pin it
// to the sequential contract: for any chunking of the input stream, the
// verdict sequence must be bit-identical to per-point Step calls — including
// under a duration filter (whose state advances point by point) and when a
// detector panics mid-batch (degradation must land on the same point).

import (
	"testing"
	"time"

	"opprentice/internal/detectors"
	"opprentice/internal/faultinject"
	"opprentice/internal/kpigen"
	"opprentice/internal/ml/forest"
)

// twinMonitors builds two identical monitors over the same generated KPI
// (deterministic training) plus a continuation stream to score.
func twinMonitors(t *testing.T, cfg MonitorConfig, extra func() detectors.Detector) (a, b *Monitor, future []float64) {
	t.Helper()
	p := kpigen.PV(kpigen.Small)
	p.Interval = time.Hour
	p.Weeks = 10
	d := kpigen.Generate(p, 77)
	build := func() *Monitor {
		dets := smallRegistry(t)
		if extra != nil {
			dets = append(dets, extra())
		}
		mon, err := NewMonitor(d.Series, d.Labels, dets, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return mon
	}
	a, b = build(), build()
	cont := kpigen.Generate(p, 78)
	return a, b, cont.Series.Values[:300]
}

// chunked feeds values through StepBatch in uneven chunks and returns the
// concatenated verdicts.
func chunked(m *Monitor, values []float64) []Verdict {
	sizes := []int{1, 2, 7, 32, 3, 64, 5}
	var out []Verdict
	for i, s := 0, 0; i < len(values); s++ {
		n := sizes[s%len(sizes)]
		if i+n > len(values) {
			n = len(values) - i
		}
		out = m.StepBatch(values[i:i+n], out)
		i += n
	}
	return out
}

func TestStepBatchMatchesStep(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  MonitorConfig
	}{
		{"plain", MonitorConfig{Forest: forest.Config{Trees: 12, Seed: 3}, SkipInitialCV: true}},
		{"duration-filter", MonitorConfig{Forest: forest.Config{Trees: 12, Seed: 3}, SkipInitialCV: true, MinDuration: 3}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			seq, bat, future := twinMonitors(t, tc.cfg, nil)
			want := make([]Verdict, 0, len(future))
			for _, v := range future {
				want = append(want, seq.Step(v))
			}
			got := chunked(bat, future)
			if len(got) != len(want) {
				t.Fatalf("got %d verdicts, want %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("verdict %d: StepBatch %+v, Step %+v", i, got[i], want[i])
				}
			}
		})
	}
}

func TestStepBatchSandboxesMidBatchPanic(t *testing.T) {
	cfg := MonitorConfig{Forest: forest.Config{Trees: 12, Seed: 3}, SkipInitialCV: true}
	// The faulty configuration survives training extraction and the first
	// 150 online points, then panics mid-stream — inside a StepBatch chunk.
	histLen := 10 * 168 // 10 weeks of hourly points
	mk := func() detectors.Detector {
		return &faultinject.PanickingDetector{ConfigName: "boom(batch)", PanicAfter: histLen + 150}
	}
	seq, bat, future := twinMonitors(t, cfg, mk)
	want := make([]Verdict, 0, len(future))
	for _, v := range future {
		want = append(want, seq.Step(v))
	}
	got := chunked(bat, future)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("verdict %d: StepBatch %+v, Step %+v", i, got[i], want[i])
		}
	}
	if seq.DetectorPanics() != 1 || bat.DetectorPanics() != seq.DetectorPanics() {
		t.Fatalf("panics: sequential %d, batched %d, want 1 each", seq.DetectorPanics(), bat.DetectorPanics())
	}
	if bat.DegradedDetectors() != 1 {
		t.Fatalf("batched monitor degraded %d detectors, want 1", bat.DegradedDetectors())
	}
}
