package core

import (
	"math"
	"testing"

	"opprentice/internal/stats"
)

// TestCThldPredictorGoldenEWMA pins the §4.5.2 EWMA prediction to
// hand-computed values of the paper's formula
//
//	pred_i = α·best_{i-1} + (1−α)·pred_{i-1},  α = 0.8,
//
// seeded by cross-validation for the first week. Bitwise comparison: the
// formula is three multiply-adds, and any representable deviation means the
// implementation drifted from the paper.
func TestCThldPredictorGoldenEWMA(t *testing.T) {
	p := NewCThldPredictor(0) // 0 selects the paper's α = 0.8

	// Before any seed the predictor must fall back to the random-forest
	// default of 0.5 (§4.5.1).
	if got := p.Predict(); got != 0.5 {
		t.Fatalf("unseeded prediction = %v, want the 0.5 default", got)
	}

	// Week 0: seeded with the cross-validated cThld.
	p.Seed(0.5)
	if got := p.Predict(); got != 0.5 {
		t.Fatalf("seeded prediction = %v, want exactly the seed 0.5", got)
	}

	// The hand computation mirrors the formula over runtime float64 values
	// (Go constant expressions evaluate exactly and would round differently
	// than the implementation's float64 multiply-adds).
	var alpha float64 = 0.8

	// Week 1: best cThld of the completed week was 0.7.
	// pred = 0.8·0.7 + 0.2·0.5 = 0.66
	p.Observe(0.7)
	want := alpha*0.7 + (1-alpha)*0.5
	if got := p.Predict(); math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("after Observe(0.7): prediction = %v, hand-computed %v", got, want)
	}

	// Week 2: best cThld was 0.3.
	// pred = 0.8·0.3 + 0.2·0.66 = 0.372
	p.Observe(0.3)
	want = alpha*0.3 + (1-alpha)*want
	if got := p.Predict(); math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("after Observe(0.3): prediction = %v, hand-computed %v", got, want)
	}

	// A clone must carry the state forward without aliasing the original
	// (the async-retrain contract: a failed round never disturbs the live
	// predictor).
	c := p.Clone()
	c.Observe(0.9)
	if got := p.Predict(); math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("observing on a clone changed the original: %v, want %v", got, want)
	}
	cloneWant := 0.8*0.9 + 0.2*want
	if got := c.Predict(); math.Float64bits(got) != math.Float64bits(cloneWant) {
		t.Fatalf("clone prediction = %v, hand-computed %v", got, cloneWant)
	}
}

// TestPCScoreGolden pins the preference-centric score (§4.5.1) to
// hand-computed values: PC-Score = F-Score(r, p), plus an incentive constant
// of 1 iff the point satisfies the operator's preference box.
func TestPCScoreGolden(t *testing.T) {
	pref := stats.Preference{Recall: 0.66, Precision: 0.66}
	// f1 is the paper's F-Score formula over runtime float64 values (Go
	// constant expressions evaluate in exact arithmetic and would round
	// differently than the implementation's float64 operations).
	f1 := func(r, p float64) float64 { return 2 * r * p / (r + p) }
	cases := []struct {
		name string
		r, p float64
		want float64
	}{
		// Inside the box: 2·0.8·0.7/(0.8+0.7) + 1 ≈ 1.7466666666666666.
		{"inside box", 0.8, 0.7, f1(0.8, 0.7) + 1},
		// Recall below the bound: F-Score only, 2·0.5·0.9/(0.5+0.9).
		{"recall misses", 0.5, 0.9, f1(0.5, 0.9)},
		// Precision below the bound: 2·0.9·0.5/(0.9+0.5).
		{"precision misses", 0.9, 0.5, f1(0.9, 0.5)},
		// Exactly on the corner: the bound is inclusive (≥), so the
		// incentive applies: 0.66 + 1.
		{"on the corner", 0.66, 0.66, f1(0.66, 0.66) + 1},
		// Degenerate: nothing found, nothing flagged wrongly.
		{"zero point", 0, 0, 0},
		// Perfect detector: 1 + 1.
		{"perfect", 1, 1, 2},
	}
	for _, tc := range cases {
		got := stats.PCScore(tc.r, tc.p, pref)
		if math.Float64bits(got) != math.Float64bits(tc.want) {
			t.Errorf("%s: PCScore(%v, %v) = %v, hand-computed %v", tc.name, tc.r, tc.p, got, tc.want)
		}
	}
	// The incentive property the metric exists for: any point inside the
	// box outranks every point outside it, whatever their F-Scores.
	inside := stats.PCScore(0.66, 0.66, pref)
	outside := stats.PCScore(1, 0.65, pref)
	if inside <= outside {
		t.Fatalf("point inside the preference box scored %v, below %v outside — the incentive constant is broken", inside, outside)
	}
}
