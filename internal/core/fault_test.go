package core

// Fault-injection tests for the detector sandboxing layer: a panicking
// detector configuration must degrade to an all-NaN feature column, never
// crash extraction or the online monitor.

import (
	"math"
	"testing"

	"opprentice/internal/detectors"
	"opprentice/internal/faultinject"
	"opprentice/internal/ml/forest"
)

func TestFaultExtractSandboxesPanickingDetector(t *testing.T) {
	s, _ := testKPI(t, 9, 7)
	ds := append(smallRegistry(t),
		detectors.Detector(&faultinject.PanickingDetector{ConfigName: "boom(now)"}))

	f, err := Extract(s, ds, ExtractConfig{})
	if err != nil {
		t.Fatalf("Extract with panicking detector: %v", err)
	}
	if got := f.DegradedCount(); got != 1 {
		t.Fatalf("DegradedCount = %d, want 1 (degraded: %v)", got, f.Degraded)
	}
	if f.Degraded[0] != "boom(now)" {
		t.Errorf("Degraded = %v, want [boom(now)]", f.Degraded)
	}
	// The faulty column is all-NaN ("never ready").
	col, err := f.ColumnByName("boom(now)")
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range col {
		if !math.IsNaN(v) {
			t.Fatalf("degraded column has non-NaN %v at %d", v, i)
		}
	}
	// Healthy columns are unharmed.
	ewma, err := f.ColumnByName("ewma(alpha=0.50)")
	if err != nil {
		// Name formatting may differ; fall back to any healthy column.
		ewma = f.Cols[2]
	}
	if math.IsNaN(ewma[len(ewma)-1]) {
		t.Error("healthy column should be warm at the end")
	}
}

func TestFaultExtractSandboxesMidStreamPanic(t *testing.T) {
	s, _ := testKPI(t, 9, 8)
	ds := append(smallRegistry(t),
		detectors.Detector(&faultinject.PanickingDetector{ConfigName: "boom(later)", PanicAfter: 100}))
	f, err := Extract(s, ds, ExtractConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if got := f.DegradedCount(); got != 1 {
		t.Fatalf("DegradedCount = %d, want 1", got)
	}
	col, err := f.ColumnByName("boom(later)")
	if err != nil {
		t.Fatal(err)
	}
	// Even the points stepped before the panic read NaN: a configuration
	// that panicked mid-stream is wholly untrustworthy.
	for i, v := range col {
		if !math.IsNaN(v) {
			t.Fatalf("degraded column has non-NaN %v at %d", v, i)
		}
	}
}

func TestFaultMonitorStepSurvivesPanickingDetector(t *testing.T) {
	s, labels := testKPI(t, 9, 9)
	var panicked []string
	ds := append(smallRegistry(t),
		// Survives training extraction (Reset doesn't clear the budget, so
		// give it enough for training, then let it blow up online).
		detectors.Detector(&faultinject.PanickingDetector{ConfigName: "boom(online)", PanicAfter: s.Len() + 1}))
	mon, err := NewMonitor(s, labels, ds, MonitorConfig{
		Forest:        forest.Config{Trees: 10, Seed: 1},
		SkipInitialCV: true,
		OnDetectorPanic: func(name string, _ any) {
			panicked = append(panicked, name)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if mon.DegradedDetectors() != 0 {
		t.Fatalf("degraded before online panic: %d", mon.DegradedDetectors())
	}
	// Step enough points that the faulty detector panics on the 2nd step;
	// every point must still get a verdict.
	for i := 0; i < 10; i++ {
		v := mon.Step(s.Values[i])
		if v.Decided != 1 {
			t.Fatalf("step %d: no verdict (Decided=%d)", i, v.Decided)
		}
		if math.IsNaN(v.Probability) {
			t.Fatalf("step %d: NaN probability", i)
		}
	}
	if mon.DetectorPanics() == 0 {
		t.Error("DetectorPanics = 0, want > 0")
	}
	if mon.DegradedDetectors() != 1 {
		t.Errorf("DegradedDetectors = %d, want 1", mon.DegradedDetectors())
	}
	if len(panicked) == 0 || panicked[0] != "boom(online)" {
		t.Errorf("OnDetectorPanic calls = %v, want [boom(online)]", panicked)
	}
}

func TestFaultNewMonitorMarksTrainingPanicDegraded(t *testing.T) {
	s, labels := testKPI(t, 9, 10)
	ds := append(smallRegistry(t),
		detectors.Detector(&faultinject.PanickingDetector{ConfigName: "boom(train)"}))
	mon, err := NewMonitor(s, labels, ds, MonitorConfig{Forest: forest.Config{Trees: 10, Seed: 1}, SkipInitialCV: true})
	if err != nil {
		t.Fatalf("NewMonitor with panicking detector: %v", err)
	}
	if mon.DegradedDetectors() != 1 {
		t.Errorf("DegradedDetectors = %d, want 1", mon.DegradedDetectors())
	}
	if mon.DetectorPanics() != 1 {
		t.Errorf("DetectorPanics = %d, want 1", mon.DetectorPanics())
	}
	// The degraded detector is never stepped again, so Step stays safe.
	for i := 0; i < 5; i++ {
		mon.Step(s.Values[i])
	}
	if mon.DetectorPanics() != 1 {
		t.Errorf("dead detector was re-stepped: panics = %d", mon.DetectorPanics())
	}
}
