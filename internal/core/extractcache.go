package core

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"opprentice/internal/detectors"
	"opprentice/internal/timeseries"
)

// This file implements the incremental feature-extraction cache that turns
// weekly retrain extraction from O(full history) into O(new points), the
// amortization §7 of the paper relies on ("the feature extraction ... is
// computed incrementally for only the new data"). A FeatureCache checkpoints,
// per detector configuration, the severity column extracted so far plus a
// clone of the detector's streaming state positioned after the last extracted
// point. The next extraction validates that the cached prefix is unchanged
// (append-only check via a content hash), resumes every checkpointed detector
// over just the new tail, and re-extracts cold only the columns for which
// resumption is impossible:
//
//   - a configuration that is not a detectors.Cloner (cannot checkpoint),
//   - a configuration that was degraded (panicked) last time — re-attempted
//     cold, which for a deterministic panic reproduces the all-NaN column,
//   - a Trainable configuration whose fit window changed (its severities
//     depend on the fitted parameters, so the whole column must be re-derived
//     — the only recompute the paper's semantics force).
//
// Incremental output is guaranteed bit-identical to a cold Extract over the
// same series (asserted property-style in TestExtractIncrementalMatchesCold):
// Clone is a faithful deep copy and detectors are deterministic, so resuming
// from the checkpoint replays exactly the severities a cold run would reach.

// FNV-1a 64-bit parameters for the append-only prefix hash.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// hashValues extends an FNV-1a hash over the bit patterns of vals. FNV is a
// running hash, so the cache can extend its prefix hash with just the new
// tail while validation re-hashes the prefix it claims to cover.
func hashValues(h uint64, vals []float64) uint64 {
	for _, v := range vals {
		b := math.Float64bits(v)
		for k := 0; k < 8; k++ {
			h ^= b & 0xff
			h *= fnvPrime64
			b >>= 8
		}
	}
	return h
}

// stateBytesEstimate approximates the heap footprint of one checkpointed
// detector state (rings, seasonal profiles, MRA lag buffers). The dominant
// cache cost is the severity columns, which are accounted exactly; states are
// O(detector window), bounded by the wavelet MRA's ~64 KiB worst case, and
// this flat estimate keeps the accounting conservative without a per-detector
// sizing protocol.
const stateBytesEstimate = 16 << 10

// CacheBudget is the shared memory accounting and metrics sink for one or
// more FeatureCaches (the engine gives all series one budget). All methods
// are safe for concurrent use.
type CacheBudget struct {
	capBytes          int64
	bytes             atomic.Int64
	invalidations     atomic.Int64
	coldPoints        atomic.Int64
	incrementalPoints atomic.Int64
}

// NewCacheBudget returns a budget capped at capBytes; capBytes <= 0 means
// unlimited.
func NewCacheBudget(capBytes int64) *CacheBudget {
	return &CacheBudget{capBytes: capBytes}
}

// CacheStats is a point-in-time snapshot of a budget's accounting.
type CacheStats struct {
	// Bytes is the current accounted cache footprint; CapBytes the configured
	// cap (0 = unlimited).
	Bytes, CapBytes int64
	// Invalidations counts whole-cache invalidations (prefix mismatch,
	// configuration change, cap overflow, explicit Invalidate).
	Invalidations int64
	// ColdPoints / IncrementalPoints count (point × configuration) severity
	// computations by extraction mode.
	ColdPoints, IncrementalPoints int64
}

// Stats returns the budget's current counters.
func (b *CacheBudget) Stats() CacheStats {
	return CacheStats{
		Bytes:             b.bytes.Load(),
		CapBytes:          b.capBytes,
		Invalidations:     b.invalidations.Load(),
		ColdPoints:        b.coldPoints.Load(),
		IncrementalPoints: b.incrementalPoints.Load(),
	}
}

// FeatureCache checkpoints one series' extraction state across retrain
// rounds: the raw severity columns, their NaN→0 imputed twins (maintained
// incrementally so retraining never materializes a fresh imputed matrix), and
// one cloned detector per configuration positioned after the last extracted
// point. Safe for concurrent use; extraction rounds against the same cache
// serialize on its mutex.
type FeatureCache struct {
	budget *CacheBudget

	mu       sync.Mutex
	valid    bool
	names    []string
	n        int    // points covered
	fitN     int    // Trainable fit window used for the cached columns
	hash     uint64 // FNV-1a over Values[:n] bit patterns
	cols     [][]float64
	imp      [][]float64
	states   []detectors.Detector // advanced checkpoint clone; nil = cold next time
	degraded []bool
	bytes    int64 // currently accounted against budget
}

// NewFeatureCache returns an empty cache accounting against budget (nil gets
// a private unlimited budget).
func NewFeatureCache(budget *CacheBudget) *FeatureCache {
	if budget == nil {
		budget = NewCacheBudget(0)
	}
	return &FeatureCache{budget: budget}
}

// Len returns how many points the cache currently covers (0 when invalid).
func (c *FeatureCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.valid {
		return 0
	}
	return c.n
}

// Bytes returns the cache's currently accounted footprint.
func (c *FeatureCache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Invalidate drops all cached state; the next extraction runs cold.
func (c *FeatureCache) Invalidate() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.invalidateLocked()
}

// invalidateLocked releases the cache's budget share and clears it. Callers
// hold c.mu.
func (c *FeatureCache) invalidateLocked() {
	if c.valid {
		c.budget.invalidations.Add(1)
	}
	c.budget.bytes.Add(-c.bytes)
	c.bytes = 0
	c.valid = false
	c.names, c.cols, c.imp, c.states, c.degraded = nil, nil, nil, nil, nil
	c.n, c.fitN, c.hash = 0, 0, 0
}

// namesEqual reports whether two configuration name lists are identical.
func namesEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ExtractIncremental is Extract with an O(new points) fast path: columns
// whose streaming state was checkpointed in cache resume over only the tail
// appended since the last extraction, and the cache is re-checkpointed after
// the new last point. A nil cache degrades to a plain cold Extract.
//
// The second return value is a detector set positioned after the series' last
// point — cold-extracted columns return the caller's own (now advanced)
// instance, resumed columns return a fresh clone of the advanced checkpoint —
// which is exactly what a replacement Monitor needs as its live detector set.
// Degraded columns return the caller's instance untouched (the monitor marks
// them dead and never steps them).
//
// Incremental output is bit-identical to a cold Extract over the same series
// and config. The cache validates its prefix by content hash before reuse and
// invalidates itself wholesale on any mismatch (series truncated or rewritten,
// configuration set changed) or when the shared budget cap is exceeded after
// an update — the fallback is always a correct cold extraction.
func ExtractIncremental(cache *FeatureCache, s *timeseries.Series, ds []detectors.Detector, cfg ExtractConfig) (*Features, []detectors.Detector, error) {
	if cache == nil {
		f, err := Extract(s, ds, cfg)
		return f, ds, err
	}
	fitN, workers, err := extractParams(s, cfg)
	if err != nil {
		return nil, nil, err
	}

	cache.mu.Lock()
	defer cache.mu.Unlock()

	names := detectors.Names(ds)
	n := s.Len()

	// Prefix validation: same configurations, a prefix no longer than the
	// series, and matching content hash (the engine is append-only, so any
	// other history mutation must invalidate).
	reuse := cache.valid && cache.n <= n && namesEqual(cache.names, names)
	prefixHash := uint64(fnvOffset64)
	if reuse {
		prefixHash = hashValues(fnvOffset64, s.Values[:cache.n])
		reuse = prefixHash == cache.hash
		if !reuse {
			prefixHash = fnvOffset64
		}
	}
	if cache.valid && !reuse {
		cache.invalidateLocked()
	}

	tail := s.Values
	if reuse {
		tail = s.Values[cache.n:]
	}

	type colResult struct {
		col, imp []float64
		state    detectors.Detector
		ok       bool
		cold     bool
	}
	results := make([]colResult, len(ds))
	outDets := make([]detectors.Detector, len(ds))

	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for j, d := range ds {
		wg.Add(1)
		sem <- struct{}{}
		go func(j int, d detectors.Detector) {
			defer wg.Done()
			defer func() { <-sem }()
			r := &results[j]
			_, isTrainable := d.(detectors.Trainable)
			cold := !reuse || cache.states[j] == nil || (isTrainable && cache.fitN != fitN)
			if cold {
				r.cold = true
				r.col, r.ok = extractColumn(s, d, fitN)
				r.imp = imputeCopy(r.col)
				outDets[j] = d
				if r.ok {
					if cl, can := d.(detectors.Cloner); can {
						r.state = cl.Clone()
					}
				}
				return
			}
			// Resume the checkpointed state over the new tail only.
			r.col, r.imp, r.ok = extendColumn(cache.cols[j], cache.imp[j], cache.states[j], tail, n)
			if r.ok {
				r.state = cache.states[j]
				outDets[j] = r.state.(detectors.Cloner).Clone()
			} else {
				outDets[j] = d
			}
		}(j, d)
	}
	wg.Wait()

	// Commit the round into the cache and assemble the caller's view (the
	// Features columns alias the cache's storage; the monitor paths only read
	// them).
	if !cache.valid {
		cache.valid = true
		cache.names = names
		cache.cols = make([][]float64, len(ds))
		cache.imp = make([][]float64, len(ds))
		cache.states = make([]detectors.Detector, len(ds))
		cache.degraded = make([]bool, len(ds))
	}
	f := &Features{Names: names, Cols: make([][]float64, len(ds))}
	var coldPts, incPts int64
	for j := range ds {
		r := &results[j]
		cache.cols[j] = r.col
		cache.imp[j] = r.imp
		cache.states[j] = r.state
		cache.degraded[j] = !r.ok
		f.Cols[j] = r.col
		if !r.ok {
			f.Degraded = append(f.Degraded, names[j])
		}
		if r.cold {
			coldPts += int64(n)
		} else {
			incPts += int64(len(tail))
		}
	}
	sort.Strings(f.Degraded)
	f.imp = cache.imp
	cache.n = n
	cache.fitN = fitN
	cache.hash = hashValues(prefixHash, tail)

	// Budget accounting, then the whole-cache invalidation fallback when the
	// shared cap is exceeded: the extraction results stay valid (f keeps the
	// slices alive), but the next round runs cold instead of growing past the
	// cap.
	var bytes int64
	for j := range cache.cols {
		bytes += int64(cap(cache.cols[j])+cap(cache.imp[j])) * 8
		if cache.states[j] != nil {
			bytes += stateBytesEstimate
		}
	}
	cache.budget.bytes.Add(bytes - cache.bytes)
	cache.bytes = bytes
	cache.budget.coldPoints.Add(coldPts)
	cache.budget.incrementalPoints.Add(incPts)
	if limit := cache.budget.capBytes; limit > 0 && cache.budget.bytes.Load() > limit {
		cache.invalidateLocked()
	}
	return f, outDets, nil
}

// imputeCopy returns col with NaN replaced by 0, as a fresh slice.
func imputeCopy(col []float64) []float64 {
	out := make([]float64, len(col))
	for i, v := range col {
		if !math.IsNaN(v) {
			out[i] = v
		}
	}
	return out
}

// extendColumn appends the tail's severities to a cached column (and its
// imputed twin) by resuming the checkpointed detector state, inside the same
// panic sandbox as extractColumn: a panic anywhere degrades the whole column
// to all-NaN — exactly what a cold re-extraction of a deterministically
// panicking detector would produce — and ok is false. total is the final
// column length (len(col) + len(tail)).
func extendColumn(col, imp []float64, d detectors.Detector, tail []float64, total int) (outCol, outImp []float64, ok bool) {
	outCol, outImp = col, imp
	defer func() {
		if r := recover(); r != nil {
			outCol = make([]float64, total)
			for i := range outCol {
				outCol[i] = math.NaN()
			}
			outImp = make([]float64, total) // all zeros: "no evidence"
			ok = false
		}
	}()
	for _, v := range tail {
		sev, ready := d.Step(v)
		if !ready {
			outCol = append(outCol, math.NaN())
			outImp = append(outImp, 0)
			continue
		}
		outCol = append(outCol, sev)
		if math.IsNaN(sev) {
			outImp = append(outImp, 0)
		} else {
			outImp = append(outImp, sev)
		}
	}
	return outCol, outImp, true
}
