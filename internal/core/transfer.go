package core

import (
	"fmt"
	"math"

	"opprentice/internal/stats"
)

// FeatureScaler normalizes detector severities so that a classifier trained
// on one KPI can detect on other KPIs of the same type but different scale —
// the §6 "detection across the same types of KPIs" extension ("the anomaly
// features extracted by basic detectors should be normalized"). Each
// configuration's severities are divided by a robust per-KPI scale statistic
// (a high quantile of that KPI's own severities), so "3× the typical
// severity" means the same thing on a 10k-QPS ISP and a 50k-QPS one.
type FeatureScaler struct {
	scale []float64
}

// DefaultScaleQuantile is the severity quantile used as the per-
// configuration unit. A high-but-not-extreme quantile tracks the bulk of
// normal severities without being dominated by the anomalies themselves.
const DefaultScaleQuantile = 0.95

// NewFeatureScaler calibrates per-configuration units on column-major
// severities (typically the KPI's own initial training weeks). NaN
// severities are ignored; an all-NaN or all-zero configuration gets unit
// scale.
func NewFeatureScaler(cols [][]float64, quantile float64) *FeatureScaler {
	if quantile <= 0 || quantile >= 1 {
		quantile = DefaultScaleQuantile
	}
	fs := &FeatureScaler{scale: make([]float64, len(cols))}
	for j, col := range cols {
		finite := make([]float64, 0, len(col))
		for _, v := range col {
			if !math.IsNaN(v) {
				finite = append(finite, v)
			}
		}
		s := 0.0
		if len(finite) > 0 {
			s = stats.Quantile(finite, quantile)
		}
		if s <= 0 {
			s = 1
		}
		fs.scale[j] = s
	}
	return fs
}

// Apply returns a normalized copy of the column-major severities: each
// configuration divided by its calibrated unit, NaN imputed to 0.
func (fs *FeatureScaler) Apply(cols [][]float64) [][]float64 {
	if len(cols) != len(fs.scale) {
		panic(fmt.Sprintf("core: scaler calibrated for %d configurations, got %d", len(fs.scale), len(cols)))
	}
	out := make([][]float64, len(cols))
	for j, col := range cols {
		inv := 1 / fs.scale[j]
		dst := make([]float64, len(col))
		for i, v := range col {
			if !math.IsNaN(v) {
				dst[i] = v * inv
			}
		}
		out[j] = dst
	}
	return out
}

// Scale returns configuration j's calibrated unit (for inspection and
// tests).
func (fs *FeatureScaler) Scale(j int) float64 { return fs.scale[j] }
