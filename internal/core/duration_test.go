package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFilterByDurationClearsShortRuns(t *testing.T) {
	pred := []bool{true, false, true, true, false, true, true, true, false, true}
	got := FilterByDuration(pred, 2)
	want := []bool{false, false, true, true, false, true, true, true, false, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestFilterByDurationMinOne(t *testing.T) {
	pred := []bool{true, false, true}
	got := FilterByDuration(pred, 0) // clamped to 1: identity
	for i := range pred {
		if got[i] != pred[i] {
			t.Fatalf("minPoints<=1 should be identity: %v", got)
		}
	}
}

func TestFilterByDurationRunAtEnd(t *testing.T) {
	pred := []bool{false, true, true, true}
	got := FilterByDuration(pred, 3)
	if !got[1] || !got[2] || !got[3] {
		t.Errorf("trailing long run should survive: %v", got)
	}
	got = FilterByDuration(pred, 4)
	if got[1] || got[2] || got[3] {
		t.Errorf("trailing short run should be cleared: %v", got)
	}
}

// replay runs the streaming filter over verdicts and reconstructs the
// decided labels in order.
func replay(verdicts []bool, min int) []bool {
	f := &DurationFilter{MinPoints: min}
	var out []bool
	for _, v := range verdicts {
		for _, d := range f.Step(v) {
			for k := 0; k < d.Count; k++ {
				out = append(out, d.Anomalous)
			}
		}
	}
	// Flush: a pending run at stream end never reached min, so it is
	// normal by the batch convention.
	for k := 0; k < f.Pending(); k++ {
		out = append(out, false)
	}
	return out
}

// The streaming filter must agree exactly with the batch filter.
func TestDurationFilterStreamingMatchesBatch(t *testing.T) {
	f := func(seed int64, minRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		min := 1 + int(minRaw)%5
		verdicts := make([]bool, 50+rng.Intn(100))
		for i := range verdicts {
			verdicts[i] = rng.Intn(3) == 0
		}
		want := FilterByDuration(verdicts, min)
		got := replay(verdicts, min)
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDurationFilterLatencyBounded(t *testing.T) {
	f := &DurationFilter{MinPoints: 5}
	for i := 0; i < 4; i++ {
		f.Step(true)
	}
	if f.Pending() != 4 {
		t.Errorf("pending = %d, want 4", f.Pending())
	}
	// Latency never exceeds MinPoints-1.
	if f.Pending() >= 5 {
		t.Error("latency bound violated")
	}
	out := f.Step(true)
	if len(out) != 1 || !out[0].Anomalous || out[0].Count != 5 {
		t.Errorf("confirmation = %+v", out)
	}
	// Continuation of a confirmed run is decided immediately.
	out = f.Step(true)
	if len(out) != 1 || !out[0].Anomalous || out[0].Count != 1 {
		t.Errorf("continuation = %+v", out)
	}
}

func TestDurationFilterReset(t *testing.T) {
	f := &DurationFilter{MinPoints: 3}
	f.Step(true)
	f.Step(true)
	f.Reset()
	if f.Pending() != 0 {
		t.Error("pending after Reset")
	}
	out := f.Step(false)
	if len(out) != 1 || out[0].Anomalous {
		t.Errorf("post-reset step = %+v", out)
	}
}

func TestFilterByDurationDoesNotMutate(t *testing.T) {
	pred := []bool{true, false}
	FilterByDuration(pred, 2)
	if !pred[0] {
		t.Error("input mutated")
	}
}
