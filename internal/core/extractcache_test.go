package core

// Tests for the incremental feature-extraction cache: the contract is that
// ExtractIncremental is BIT-identical to a cold Extract over the same series
// and configuration set, no matter how the history was split into appends,
// which detectors can checkpoint, which ones panic, and whether the Trainable
// fit window moved between rounds.

import (
	"math"
	"math/rand"
	"testing"

	"opprentice/internal/detectors"
	"opprentice/internal/faultinject"
	"opprentice/internal/timeseries"
)

// cacheRegistry is smallRegistry plus the two interesting extremes: a
// Trainable detector (ARIMA — recomputed cold whenever its fit window
// changes) and a deterministically panicking one (degraded to all-NaN on
// both paths).
func cacheRegistry(t *testing.T) []detectors.Detector {
	t.Helper()
	return append(smallRegistry(t),
		detectors.NewARIMA(1, 1, 1),
		detectors.Detector(&faultinject.PanickingDetector{ConfigName: "boom(mid)", PanicAfter: 60}),
	)
}

// prefix returns a fresh series holding the first n points of full.
func prefix(full *timeseries.Series, n int) *timeseries.Series {
	s := timeseries.New(full.Name, full.Start, full.Interval)
	for _, v := range full.Values[:n] {
		s.Append(v)
	}
	return s
}

// sameBits fails the test unless a and b match bit for bit (NaNs produced by
// math.NaN() share a payload, so Float64bits equality covers them too).
func sameBits(t *testing.T, context string, a, b []float64) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: length %d vs %d", context, len(a), len(b))
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			t.Fatalf("%s: point %d: incremental %v (bits %x) vs cold %v (bits %x)",
				context, i, a[i], math.Float64bits(a[i]), b[i], math.Float64bits(b[i]))
		}
	}
}

// TestExtractIncrementalMatchesCold is the property test: a series revealed
// in random append-sized chunks and extracted incrementally must yield, at
// every step, exactly the matrix a cold extraction of the same prefix
// produces. The splits deliberately start below the 8-week fit cap so the
// ARIMA fit window changes across rounds (forcing its cold-recompute path)
// and include a mid-stream panicking configuration (degraded on both paths).
func TestExtractIncrementalMatchesCold(t *testing.T) {
	full, _ := testKPI(t, 12, 42)
	rng := rand.New(rand.NewSource(9))

	// Random cumulative lengths from 5 complete weeks to the full series.
	ppw := 168
	cuts := []int{5 * ppw}
	for cuts[len(cuts)-1] < full.Len() {
		next := cuts[len(cuts)-1] + 1 + rng.Intn(2*ppw)
		if next > full.Len() {
			next = full.Len()
		}
		cuts = append(cuts, next)
	}

	cache := NewFeatureCache(nil)
	for _, n := range cuts {
		s := prefix(full, n)
		inc, outDets, err := ExtractIncremental(cache, s, cacheRegistry(t), ExtractConfig{})
		if err != nil {
			t.Fatalf("ExtractIncremental at n=%d: %v", n, err)
		}
		cold, err := Extract(prefix(full, n), cacheRegistry(t), ExtractConfig{})
		if err != nil {
			t.Fatalf("Extract at n=%d: %v", n, err)
		}
		if len(inc.Cols) != len(cold.Cols) {
			t.Fatalf("n=%d: %d vs %d columns", n, len(inc.Cols), len(cold.Cols))
		}
		for j := range inc.Cols {
			sameBits(t, inc.Names[j]+" raw", inc.Cols[j], cold.Cols[j])
		}
		// Degraded sets agree: the panicking configuration degrades on both
		// paths, every round.
		if len(inc.Degraded) != 1 || inc.Degraded[0] != "boom(mid)" {
			t.Fatalf("n=%d: incremental Degraded = %v", n, inc.Degraded)
		}
		if len(cold.Degraded) != 1 || cold.Degraded[0] != "boom(mid)" {
			t.Fatalf("n=%d: cold Degraded = %v", n, cold.Degraded)
		}
		// The cache's imputed twins are the NaN→0 view of the raw columns.
		imp := inc.ImputedFull()
		for j, col := range inc.Cols {
			for i, v := range col {
				want := v
				if math.IsNaN(v) {
					want = 0
				}
				if math.Float64bits(imp[j][i]) != math.Float64bits(want) {
					t.Fatalf("n=%d: imputed[%d][%d] = %v, want %v", n, j, i, imp[j][i], want)
				}
			}
		}
		if outDets == nil || len(outDets) != len(inc.Cols) {
			t.Fatalf("n=%d: outDets length %d", n, len(outDets))
		}
		if cache.Len() != n {
			t.Fatalf("n=%d: cache covers %d points", n, cache.Len())
		}
	}

	// The rounds after the first must have actually taken the fast path.
	st := cache.budget.Stats()
	if st.IncrementalPoints == 0 {
		t.Fatal("no incremental points: every round ran cold")
	}
	if st.ColdPoints == 0 {
		t.Fatal("no cold points: the first round must seed the cache cold")
	}
}

// TestExtractIncrementalReturnedDetectorsAreLive checks outDets: each
// non-degraded returned detector must be positioned exactly after the last
// extracted point, so stepping it over the next value reproduces what a
// cold extraction of the longer series computes at that index.
func TestExtractIncrementalReturnedDetectorsAreLive(t *testing.T) {
	full, _ := testKPI(t, 10, 7)
	n := full.Len() - 1 // one spare point to step; week count unchanged

	cache := NewFeatureCache(nil)
	ds := smallRegistry(t)
	if _, _, err := ExtractIncremental(cache, prefix(full, n-200), ds, ExtractConfig{}); err != nil {
		t.Fatal(err)
	}
	_, outDets, err := ExtractIncremental(cache, prefix(full, n), ds, ExtractConfig{})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Extract(prefix(full, n+1), smallRegistry(t), ExtractConfig{})
	if err != nil {
		t.Fatal(err)
	}
	next := full.Values[n]
	for j, d := range outDets {
		sev, ready := d.Step(next)
		want := cold.Cols[j][n]
		if !ready {
			if !math.IsNaN(want) {
				t.Errorf("%s: live detector not ready but cold severity %v", cold.Names[j], want)
			}
			continue
		}
		if math.Float64bits(sev) != math.Float64bits(want) {
			t.Errorf("%s: live step %v, cold %v", cold.Names[j], sev, want)
		}
	}
}

// TestExtractIncrementalInvalidatesOnPrefixChange: rewriting or truncating
// history (anything but an append) must be caught by the content hash and
// fall back to a correct cold extraction.
func TestExtractIncrementalInvalidatesOnPrefixChange(t *testing.T) {
	full, _ := testKPI(t, 9, 3)
	cache := NewFeatureCache(nil)
	ds := smallRegistry(t)
	if _, _, err := ExtractIncremental(cache, full, ds, ExtractConfig{}); err != nil {
		t.Fatal(err)
	}

	// Rewrite one mid-series value.
	mutated := prefix(full, full.Len())
	mutated.Values[500] += 1
	inc, _, err := ExtractIncremental(cache, mutated, smallRegistry(t), ExtractConfig{})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Extract(prefix(mutated, mutated.Len()), smallRegistry(t), ExtractConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for j := range inc.Cols {
		sameBits(t, inc.Names[j]+" after rewrite", inc.Cols[j], cold.Cols[j])
	}
	if inv := cache.budget.Stats().Invalidations; inv != 1 {
		t.Fatalf("invalidations after rewrite = %d, want 1", inv)
	}

	// Truncation (shorter series than the cached prefix) must also invalidate.
	short := prefix(full, full.Len()-300)
	inc, _, err = ExtractIncremental(cache, short, smallRegistry(t), ExtractConfig{})
	if err != nil {
		t.Fatal(err)
	}
	cold, err = Extract(prefix(full, full.Len()-300), smallRegistry(t), ExtractConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for j := range inc.Cols {
		sameBits(t, inc.Names[j]+" after truncation", inc.Cols[j], cold.Cols[j])
	}
	if inv := cache.budget.Stats().Invalidations; inv != 2 {
		t.Fatalf("invalidations after truncation = %d, want 2", inv)
	}
}

// TestExtractIncrementalInvalidatesOnConfigChange: a different configuration
// set cannot reuse the cached columns.
func TestExtractIncrementalInvalidatesOnConfigChange(t *testing.T) {
	full, _ := testKPI(t, 9, 4)
	cache := NewFeatureCache(nil)
	if _, _, err := ExtractIncremental(cache, full, smallRegistry(t), ExtractConfig{}); err != nil {
		t.Fatal(err)
	}
	ds := append(smallRegistry(t), detectors.NewEWMA(0.1))
	inc, _, err := ExtractIncremental(cache, full, ds, ExtractConfig{})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Extract(full, append(smallRegistry(t), detectors.NewEWMA(0.1)), ExtractConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for j := range inc.Cols {
		sameBits(t, inc.Names[j]+" after config change", inc.Cols[j], cold.Cols[j])
	}
	if inv := cache.budget.Stats().Invalidations; inv != 1 {
		t.Fatalf("invalidations = %d, want 1", inv)
	}
}

// TestExtractCacheCapFallback: exceeding the shared budget cap invalidates
// the cache wholesale — the round's results stay correct, the next round
// simply runs cold — and accounting returns to zero.
func TestExtractCacheCapFallback(t *testing.T) {
	full, _ := testKPI(t, 9, 5)
	budget := NewCacheBudget(1 << 10) // 1 KiB: any real series overflows
	cache := NewFeatureCache(budget)

	inc, _, err := ExtractIncremental(cache, full, smallRegistry(t), ExtractConfig{})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Extract(prefix(full, full.Len()), smallRegistry(t), ExtractConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for j := range inc.Cols {
		sameBits(t, inc.Names[j]+" over cap", inc.Cols[j], cold.Cols[j])
	}
	if cache.Len() != 0 {
		t.Fatalf("cache still covers %d points after cap overflow", cache.Len())
	}
	st := budget.Stats()
	if st.Invalidations == 0 {
		t.Fatal("cap overflow did not count as an invalidation")
	}
	if st.Bytes != 0 {
		t.Fatalf("accounted bytes after invalidation = %d, want 0", st.Bytes)
	}
	if st.IncrementalPoints != 0 {
		t.Fatalf("incremental points with an always-overflowing cap = %d, want 0", st.IncrementalPoints)
	}
}

// TestExtractIncrementalNilCache: a nil cache must behave exactly like a
// cold Extract and return the caller's own detector instances.
func TestExtractIncrementalNilCache(t *testing.T) {
	full, _ := testKPI(t, 9, 6)
	ds := smallRegistry(t)
	inc, outDets, err := ExtractIncremental(nil, full, ds, ExtractConfig{})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Extract(full, smallRegistry(t), ExtractConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for j := range inc.Cols {
		sameBits(t, inc.Names[j]+" nil cache", inc.Cols[j], cold.Cols[j])
	}
	for j := range ds {
		if outDets[j] != ds[j] {
			t.Fatalf("nil cache returned a different detector instance at %d", j)
		}
	}
}
