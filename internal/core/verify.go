package core

import (
	"fmt"
	"math"

	"opprentice/internal/detectors"
	"opprentice/internal/timeseries"
)

// VerifyAgainstCold cross-checks the cache's incremental extraction state
// against a from-scratch cold Extract over the same prefix: the incremental
// path's core guarantee is that its output is bit-identical to a cold run, and
// this method is the machine-checkable form of that guarantee (the simulation
// harness calls it after every retrain). It re-derives the severity matrix for
// the first Len() points of s with fresh detectors ds and compares every cell
// by bit pattern (so NaN placement is compared exactly), plus the degraded
// sets and the append-only prefix hash.
//
// It returns nil when the cache is empty/invalid (nothing to verify) and a
// descriptive error naming the first mismatching configuration and row
// otherwise. ds must be a freshly built detector set for s's interval; Extract
// resets it, so the caller's instances are consumed.
func (c *FeatureCache) VerifyAgainstCold(s *timeseries.Series, ds []detectors.Detector, cfg ExtractConfig) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.valid {
		return nil
	}
	if c.n > s.Len() {
		return fmt.Errorf("core: cache covers %d points but series has only %d", c.n, s.Len())
	}
	names := detectors.Names(ds)
	if !namesEqual(c.names, names) {
		return fmt.Errorf("core: cache configuration set (%d configs) differs from detector set (%d configs)", len(c.names), len(names))
	}
	if got := hashValues(fnvOffset64, s.Values[:c.n]); got != c.hash {
		return fmt.Errorf("core: cache prefix hash %016x does not match series prefix %016x over %d points", c.hash, got, c.n)
	}

	prefix := s.Slice(0, c.n)
	fitN, _, err := extractParams(prefix, cfg)
	if err != nil {
		return fmt.Errorf("core: cold verification extract: %w", err)
	}
	if fitN != c.fitN {
		return fmt.Errorf("core: cold fit window %d points differs from cached %d", fitN, c.fitN)
	}
	cold, err := Extract(prefix, ds, cfg)
	if err != nil {
		return fmt.Errorf("core: cold verification extract: %w", err)
	}

	coldDegraded := make(map[string]bool, len(cold.Degraded))
	for _, name := range cold.Degraded {
		coldDegraded[name] = true
	}
	for j, name := range c.names {
		if c.degraded[j] != coldDegraded[name] {
			return fmt.Errorf("core: configuration %q degraded=%v incrementally but %v cold", name, c.degraded[j], coldDegraded[name])
		}
		cachedCol, coldCol := c.cols[j], cold.Cols[j]
		if len(cachedCol) != c.n || len(coldCol) != c.n {
			return fmt.Errorf("core: configuration %q column length cached=%d cold=%d want %d", name, len(cachedCol), len(coldCol), c.n)
		}
		for i := 0; i < c.n; i++ {
			if math.Float64bits(cachedCol[i]) != math.Float64bits(coldCol[i]) {
				return fmt.Errorf("core: configuration %q severity diverges at row %d: incremental %v vs cold %v",
					name, i, cachedCol[i], coldCol[i])
			}
		}
		imp := c.imp[j]
		for i := 0; i < c.n; i++ {
			want := coldCol[i]
			if math.IsNaN(want) {
				want = 0
			}
			if math.Float64bits(imp[i]) != math.Float64bits(want) {
				return fmt.Errorf("core: configuration %q imputed twin diverges at row %d: %v vs %v", name, i, imp[i], want)
			}
		}
	}
	return nil
}
