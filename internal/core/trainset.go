package core

import "fmt"

// InitWeeks is the initial training period: the paper uses the first 8 weeks
// and starts every test set at the 9th week (Table 2).
const InitWeeks = 8

// Policy is a training-set generation strategy of Table 2.
type Policy int

// The four policies of Table 2.
const (
	// I1 trains on all historical data and tests a 1-week moving window —
	// the incremental-retraining fashion Opprentice itself uses.
	I1 Policy = iota
	// I4 trains on all historical data, testing a 4-week moving window.
	I4
	// R4 trains on the most recent 8 weeks before the 4-week test window.
	R4
	// F4 always trains on the first 8 weeks.
	F4
)

// String returns the Table-2 identifier.
func (p Policy) String() string {
	switch p {
	case I1:
		return "I1"
	case I4:
		return "I4"
	case R4:
		return "R4"
	case F4:
		return "F4"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// TestWeeks returns the test-window length in weeks.
func (p Policy) TestWeeks() int {
	if p == I1 {
		return 1
	}
	return 4
}

// Split returns the train and test point ranges of the k-th moving test set
// (k = 0 is the window starting at the 9th week; each step moves one week).
// ok is false when the test window no longer fits in total points.
func (p Policy) Split(k, ppw, total int) (trainLo, trainHi, testLo, testHi int, ok bool) {
	testLo = (InitWeeks + k) * ppw
	testHi = testLo + p.TestWeeks()*ppw
	if k < 0 || testHi > total {
		return 0, 0, 0, 0, false
	}
	switch p {
	case R4:
		trainLo, trainHi = testLo-InitWeeks*ppw, testLo
	case F4:
		trainLo, trainHi = 0, InitWeeks*ppw
	default: // I1, I4: all historical data
		trainLo, trainHi = 0, testLo
	}
	return trainLo, trainHi, testLo, testHi, true
}

// NumSplits returns how many moving test sets fit in total points.
func (p Policy) NumSplits(ppw, total int) int {
	n := 0
	for {
		if _, _, _, _, ok := p.Split(n, ppw, total); !ok {
			return n
		}
		n++
	}
}
