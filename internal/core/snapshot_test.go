package core

import (
	"bytes"
	"testing"
	"time"

	"opprentice/internal/kpigen"
	"opprentice/internal/ml/forest"
)

func TestMonitorSaveLoadRoundTrip(t *testing.T) {
	p := kpigen.PV(kpigen.Small)
	p.Interval = time.Hour
	p.Weeks = 10
	d := kpigen.Generate(p, 41)

	mon, err := NewMonitor(d.Series, d.Labels, smallRegistry(t), MonitorConfig{
		Forest:        forest.Config{Trees: 12, Seed: 1},
		SkipInitialCV: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var snap bytes.Buffer
	if err := mon.SaveModel(&snap); err != nil {
		t.Fatal(err)
	}

	restored, err := LoadMonitor(&snap, d.Series, smallRegistry(t))
	if err != nil {
		t.Fatal(err)
	}
	if restored.CThld() != mon.CThld() {
		t.Errorf("cThld = %v, want %v", restored.CThld(), mon.CThld())
	}
	// Both monitors stream the same future points and must agree exactly:
	// same model, same detector state (original kept streaming in Extract;
	// restored replayed the same history).
	future := kpigen.Generate(p, 42)
	for i := 0; i < 200; i++ {
		v := future.Series.Values[i]
		a, b := mon.Step(v), restored.Step(v)
		if a.Probability != b.Probability || a.Anomalous != b.Anomalous {
			t.Fatalf("point %d: original %+v vs restored %+v", i, a, b)
		}
	}
}

func TestLoadMonitorRejectsGarbage(t *testing.T) {
	p := kpigen.PV(kpigen.Small)
	p.Interval = time.Hour
	p.Weeks = 9
	d := kpigen.Generate(p, 43)
	if _, err := LoadMonitor(bytes.NewReader([]byte("nonsense")), d.Series, smallRegistry(t)); err == nil {
		t.Error("want error for garbage snapshot")
	}
}

func TestForestSaveLoadRoundTrip(t *testing.T) {
	cols := [][]float64{make([]float64, 400), make([]float64, 400)}
	labels := make([]bool, 400)
	for i := range labels {
		labels[i] = i%9 == 0
		if labels[i] {
			cols[0][i] = 5
		} else {
			cols[0][i] = float64(i % 3)
		}
		cols[1][i] = float64(i % 7)
	}
	f := forest.Train(cols, labels, forest.Config{Trees: 9, Seed: 3})
	var buf bytes.Buffer
	if err := f.Save(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := forest.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumTrees() != f.NumTrees() {
		t.Fatalf("trees = %d, want %d", g.NumTrees(), f.NumTrees())
	}
	a, b := f.ProbAll(cols), g.ProbAll(cols)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("prediction %d diverges: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestForestLoadRejectsGarbage(t *testing.T) {
	if _, err := forest.Load(bytes.NewReader([]byte{1, 2, 3})); err == nil {
		t.Error("want error")
	}
}
