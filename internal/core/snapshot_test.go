package core

import (
	"bytes"
	"encoding/gob"
	"errors"
	"testing"
	"time"

	"opprentice/internal/kpigen"
	"opprentice/internal/ml/forest"
	"opprentice/internal/stats"
)

func TestMonitorSaveLoadRoundTrip(t *testing.T) {
	p := kpigen.PV(kpigen.Small)
	p.Interval = time.Hour
	p.Weeks = 10
	d := kpigen.Generate(p, 41)

	mon, err := NewMonitor(d.Series, d.Labels, smallRegistry(t), MonitorConfig{
		Forest:        forest.Config{Trees: 12, Seed: 1},
		SkipInitialCV: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var snap bytes.Buffer
	if err := mon.SaveModel(&snap); err != nil {
		t.Fatal(err)
	}

	restored, err := LoadMonitor(&snap, d.Series, smallRegistry(t), LoadConfig{Trees: 12})
	if err != nil {
		t.Fatal(err)
	}
	if restored.CThld() != mon.CThld() {
		t.Errorf("cThld = %v, want %v", restored.CThld(), mon.CThld())
	}
	if restored.Fingerprint() != mon.Fingerprint() {
		t.Errorf("fingerprint = %016x, want %016x", restored.Fingerprint(), mon.Fingerprint())
	}
	// Both monitors stream the same future points and must agree exactly:
	// same model, same detector state (original kept streaming in Extract;
	// restored replayed the same history).
	future := kpigen.Generate(p, 42)
	for i := 0; i < 200; i++ {
		v := future.Series.Values[i]
		a, b := mon.Step(v), restored.Step(v)
		if a.Probability != b.Probability || a.Anomalous != b.Anomalous {
			t.Fatalf("point %d: original %+v vs restored %+v", i, a, b)
		}
	}
}

func TestLoadMonitorRejectsGarbage(t *testing.T) {
	p := kpigen.PV(kpigen.Small)
	p.Interval = time.Hour
	p.Weeks = 9
	d := kpigen.Generate(p, 43)
	_, err := LoadMonitor(bytes.NewReader([]byte("nonsense")), d.Series, smallRegistry(t), LoadConfig{})
	if err == nil {
		t.Fatal("want error for garbage snapshot")
	}
	if !errors.Is(err, ErrSnapshotVersion) {
		t.Errorf("garbage snapshot error = %v, want ErrSnapshotVersion", err)
	}
}

// trainedSnapshot builds a small trained monitor and returns its serialized
// snapshot plus the generating data.
func trainedSnapshot(t *testing.T, trees int) ([]byte, *kpigen.Dataset) {
	t.Helper()
	p := kpigen.PV(kpigen.Small)
	p.Interval = time.Hour
	p.Weeks = 9
	d := kpigen.Generate(p, 47)
	mon, err := NewMonitor(d.Series, d.Labels, smallRegistry(t), MonitorConfig{
		Forest:        forest.Config{Trees: trees, Seed: 1},
		SkipInitialCV: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var snap bytes.Buffer
	if err := mon.SaveModel(&snap); err != nil {
		t.Fatal(err)
	}
	return snap.Bytes(), d
}

// TestLoadMonitorVersionSkew is the satellite regression test for the
// version half of the latent snapshot bug: a snapshot from a different
// SaveModel format version must fail with the typed ErrSnapshotVersion, not
// load into a silently wrong monitor.
func TestLoadMonitorVersionSkew(t *testing.T) {
	snap, d := trainedSnapshot(t, 12)

	// Re-encode the DTO with a bumped version, as a future format would.
	var dto snapshotDTO
	if err := gob.NewDecoder(bytes.NewReader(snap)).Decode(&dto); err != nil {
		t.Fatal(err)
	}
	dto.Version = snapshotVersion + 1
	var skewed bytes.Buffer
	if err := gob.NewEncoder(&skewed).Encode(dto); err != nil {
		t.Fatal(err)
	}
	_, err := LoadMonitor(&skewed, d.Series, smallRegistry(t), LoadConfig{Trees: 12})
	if !errors.Is(err, ErrSnapshotVersion) {
		t.Fatalf("version-skewed snapshot: err = %v, want ErrSnapshotVersion", err)
	}
	if errors.Is(err, ErrSnapshotFingerprint) {
		t.Fatalf("version skew misreported as fingerprint mismatch: %v", err)
	}
}

// TestLoadMonitorFingerprintMismatch is the satellite regression test for
// the registry half of the latent snapshot bug: before the fingerprint,
// LoadMonitor accepted a snapshot trained under a different detector
// registry or tree count with no detection, silently misclassifying because
// the forest's feature indices no longer matched the detector columns.
func TestLoadMonitorFingerprintMismatch(t *testing.T) {
	snap, d := trainedSnapshot(t, 12)

	// Different tree count.
	_, err := LoadMonitor(bytes.NewReader(snap), d.Series, smallRegistry(t), LoadConfig{Trees: 13})
	if !errors.Is(err, ErrSnapshotFingerprint) {
		t.Fatalf("tree-count skew: err = %v, want ErrSnapshotFingerprint", err)
	}

	// Different detector registry (one configuration dropped).
	dets := smallRegistry(t)
	_, err = LoadMonitor(bytes.NewReader(snap), d.Series, dets[:len(dets)-1], LoadConfig{Trees: 12})
	if !errors.Is(err, ErrSnapshotFingerprint) {
		t.Fatalf("detector-registry skew: err = %v, want ErrSnapshotFingerprint", err)
	}

	// Different accuracy preference.
	_, err = LoadMonitor(bytes.NewReader(snap), d.Series, smallRegistry(t), LoadConfig{
		Trees:      12,
		Preference: stats.Preference{Recall: 0.9, Precision: 0.5},
	})
	if !errors.Is(err, ErrSnapshotFingerprint) {
		t.Fatalf("preference skew: err = %v, want ErrSnapshotFingerprint", err)
	}

	// The matching deployment still loads.
	if _, err := LoadMonitor(bytes.NewReader(snap), d.Series, smallRegistry(t), LoadConfig{Trees: 12}); err != nil {
		t.Fatalf("matching deployment failed to load: %v", err)
	}
}

func TestForestSaveLoadRoundTrip(t *testing.T) {
	cols := [][]float64{make([]float64, 400), make([]float64, 400)}
	labels := make([]bool, 400)
	for i := range labels {
		labels[i] = i%9 == 0
		if labels[i] {
			cols[0][i] = 5
		} else {
			cols[0][i] = float64(i % 3)
		}
		cols[1][i] = float64(i % 7)
	}
	f := forest.Train(cols, labels, forest.Config{Trees: 9, Seed: 3})
	var buf bytes.Buffer
	if err := f.Save(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := forest.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumTrees() != f.NumTrees() {
		t.Fatalf("trees = %d, want %d", g.NumTrees(), f.NumTrees())
	}
	a, b := f.ProbAll(cols), g.ProbAll(cols)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("prediction %d diverges: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestForestLoadRejectsGarbage(t *testing.T) {
	if _, err := forest.Load(bytes.NewReader([]byte{1, 2, 3})); err == nil {
		t.Error("want error")
	}
}
