package core

import (
	"math"
	"testing"
	"time"

	"opprentice/internal/kpigen"
	"opprentice/internal/ml/forest"
	"opprentice/internal/stats"
)

func TestFeatureScalerUnits(t *testing.T) {
	cols := [][]float64{
		{1, 2, 3, 4, 5, 6, 7, 8, 9, 10},
		{10, 20, 30, 40, 50, 60, 70, 80, 90, 100},
	}
	fs := NewFeatureScaler(cols, 0.95)
	// Column 2 is 10× column 1: after normalization they must coincide.
	norm := fs.Apply(cols)
	for i := range norm[0] {
		if math.Abs(norm[0][i]-norm[1][i]) > 1e-12 {
			t.Fatalf("normalized columns diverge at %d: %v vs %v", i, norm[0][i], norm[1][i])
		}
	}
	if math.Abs(fs.Scale(1)-10*fs.Scale(0)) > 1e-9 {
		t.Errorf("scales = %v, %v; want 10× ratio", fs.Scale(0), fs.Scale(1))
	}
}

func TestFeatureScalerDegenerateColumns(t *testing.T) {
	cols := [][]float64{
		{math.NaN(), math.NaN()},
		{0, 0},
	}
	fs := NewFeatureScaler(cols, 0.95)
	norm := fs.Apply(cols)
	for j := range norm {
		for i, v := range norm[j] {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("col %d point %d: %v", j, i, v)
			}
		}
	}
}

func TestFeatureScalerPanicsOnShape(t *testing.T) {
	fs := NewFeatureScaler([][]float64{{1}}, 0.95)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	fs.Apply([][]float64{{1}, {2}})
}

// The §6 transfer claim: a forest trained on one KPI detects on a same-type
// KPI at a different scale, provided features are normalized — and
// normalization is what makes the difference.
func TestTransferAcrossScalesNeedsNormalization(t *testing.T) {
	mk := func(base float64, seed int64) (*Features, []bool, int) {
		p := kpigen.PV(kpigen.Small)
		p.Interval = time.Hour
		p.Weeks = 10
		p.Base = base
		d := kpigen.Generate(p, seed)
		f, err := Extract(d.Series, smallRegistry(t), ExtractConfig{})
		if err != nil {
			t.Fatal(err)
		}
		ppw, _ := d.Series.PointsPerWeek()
		return f, d.Labels, ppw
	}
	srcF, srcLabels, ppw := mk(10000, 31) // ISP A
	dstF, dstLabels, _ := mk(500, 32)     // ISP B: 20× smaller volume

	trainHi := InitWeeks * ppw
	testLo := trainHi
	n := dstF.NumPoints()

	// Normalized transfer: calibrate each KPI on its own training weeks.
	srcScaler := NewFeatureScaler(srcF.Slice(0, trainHi), DefaultScaleQuantile)
	dstScaler := NewFeatureScaler(dstF.Slice(0, trainHi), DefaultScaleQuantile)
	model := forest.Train(srcScaler.Apply(srcF.Slice(0, trainHi)), srcLabels[:trainHi],
		forest.Config{Trees: 20, Seed: 1})
	aucNorm := stats.AUCPR(model.ProbAll(dstScaler.Apply(dstF.Slice(testLo, n))), dstLabels[testLo:n])

	// Raw transfer: same forest trained on raw severities.
	rawModel := forest.Train(srcF.Imputed(0, trainHi), srcLabels[:trainHi],
		forest.Config{Trees: 20, Seed: 1})
	aucRaw := stats.AUCPR(rawModel.ProbAll(dstF.Imputed(testLo, n)), dstLabels[testLo:n])

	if aucNorm < 0.5 {
		t.Errorf("normalized transfer AUCPR = %v, want usable (≥ 0.5)", aucNorm)
	}
	if aucNorm <= aucRaw {
		t.Errorf("normalization should help transfer: normalized %v vs raw %v", aucNorm, aucRaw)
	}
}
