package core

import (
	"fmt"

	"opprentice/internal/detectors"
	"opprentice/internal/ml/forest"
	"opprentice/internal/stats"
	"opprentice/internal/timeseries"
)

// Monitor is the online detection path of Fig. 3(b): incoming points flow
// through the basic detectors (feature extraction) and the latest anomaly
// classifier, and the cThld turns the vote fraction into an alarm. It is
// built from labeled history with NewMonitor and then fed one point at a
// time; Retrain folds in newly labeled data without disturbing the
// detectors' streaming state.
type Monitor struct {
	dets   []detectors.Detector
	model  *forest.Forest
	cthld  float64
	pred   Predictor
	fcfg   forest.Config
	pref   stats.Preference
	row    []float64
	points int
	filter *DurationFilter

	// dynamic marks a per-point predictor (EVT): finalize feeds it every
	// vote fraction and refreshes the threshold. False for EWMA, whose
	// threshold only moves at retrain — that path is bit-identical to the
	// pre-seam code.
	dynamic bool

	// typeModel, when non-nil, is the multi-class anomaly-type head trained
	// on the same feature matrix. Anomalous verdicts are classified; nil
	// leaves Verdict.Class at ClassNone.
	typeModel *forest.MultiClass

	// StepBatch scratch, grown on demand and reused across batches: a
	// row-major feature matrix (batch × detectors) and a probability
	// buffer. Never serialized; contents are dead between calls.
	rowsBuf []float64
	probBuf []float64

	// Detector sandboxing: a configuration that panics is permanently
	// degraded — its feature becomes 0 ("no evidence") and it is never
	// stepped again — so one faulty configuration cannot take down the
	// online detection path.
	dead    []bool
	panics  int
	onPanic func(name string, recovered any)
}

// MonitorConfig configures NewMonitor. Zero values choose the paper's
// defaults.
type MonitorConfig struct {
	Preference stats.Preference
	Forest     forest.Config
	// EWMAAlpha smooths cThld updates across retrains (default 0.8).
	EWMAAlpha float64
	// Predictor selects the cThld prediction strategy (default PredictEWMA,
	// the paper's §4.5.2 predictor; PredictEVT is the POT/GPD dynamic one).
	Predictor PredictorKind
	// EVTQ pins the EVT predictor's target exceedance risk (0 < q < 1);
	// 0 selects auto-calibration: the risk is re-selected from a coarse
	// grid at every refit by the PC-Score of its alarms against the
	// labeled trailing window. Ignored for PredictEWMA.
	EVTQ float64
	// TypeLabels, when non-nil, holds one AnomalyClass code per history
	// point and trains the multi-class anomaly-type head alongside the
	// verdict forest. Must match the history length when set.
	TypeLabels []uint8
	// Folds for the initial cross-validated cThld (default 5; set
	// SkipInitialCV to start from 0.5 instead).
	Folds         int
	SkipInitialCV bool
	// MinDuration, when > 1, applies the §6 duration filter: an alarm is
	// raised only once MinDuration consecutive points classify anomalous.
	// Verdicts for withheld points are then delayed (see Verdict.Decided).
	MinDuration int
	// OnDetectorPanic, when set, is invoked every time a detector
	// configuration panics (during training extraction or online Step) and
	// is sandboxed. recovered is the panic value, or nil when the panic was
	// observed indirectly (a degraded extraction column). Callbacks run on
	// the goroutine that observed the panic and must be cheap.
	OnDetectorPanic func(name string, recovered any)
	// Cache, when set, makes training extraction incremental: the initial
	// extraction seeds the cache (cold) and every later
	// RetrainCached/RetrainSnapshotCached against the same cache extracts
	// only the points appended since (see ExtractIncremental).
	Cache *FeatureCache
}

// NewMonitor trains a monitor on labeled history: detectors are fitted and
// warmed over the history, a forest is trained on the extracted features,
// and the initial cThld comes from 5-fold cross-validation (§4.5.2). The
// detector instances end positioned after the last history point, so Step
// continues the stream seamlessly.
func NewMonitor(history *timeseries.Series, labels timeseries.Labels, dets []detectors.Detector, cfg MonitorConfig) (*Monitor, error) {
	if len(labels) != history.Len() {
		return nil, fmt.Errorf("core: %d labels for %d points", len(labels), history.Len())
	}
	if cfg.TypeLabels != nil && len(cfg.TypeLabels) != history.Len() {
		return nil, fmt.Errorf("core: %d type labels for %d points", len(cfg.TypeLabels), history.Len())
	}
	if cfg.Preference == (stats.Preference{}) {
		cfg.Preference = stats.Preference{Recall: 0.66, Precision: 0.66}
	}
	if cfg.Folds <= 0 {
		cfg.Folds = 5
	}
	feats, liveDets, err := ExtractIncremental(cfg.Cache, history, dets, ExtractConfig{})
	if err != nil {
		return nil, err
	}
	// ImputedFull avoids materializing a second matrix: without a cache the
	// raw columns are imputed in place (this extraction is private to us);
	// with one, the cache's incrementally maintained imputed view is used.
	cols := feats.ImputedFull()
	if !bothClasses(labels) {
		return nil, fmt.Errorf("core: history must contain labeled anomalies and normal data")
	}
	model := forest.Train(cols, labels, cfg.Forest)

	cthld := 0.5
	if !cfg.SkipInitialCV {
		cthld = CrossValidateCThld(cols, labels, cfg.Folds, 1000, cfg.Forest, cfg.Preference)
	}
	pred := newPredictor(cfg.Predictor, cfg.EWMAAlpha, cfg.EVTQ, cfg.Preference)
	pred.Seed(cthld)
	if pred.Kind() == PredictEVT {
		// Initial POT fit over held-out vote fractions: each half of the
		// training window is scored by a forest trained on the other half.
		// In-sample scores would not do — a forest scores its own normal
		// training points near 0, understating the served score distribution
		// and biasing the tail (and so the threshold) far too low.
		pred.Refit(heldOutScores(model, cols, labels, cfg.Forest), labels)
	}
	m := &Monitor{
		dets:    liveDets,
		model:   model,
		cthld:   pred.Predict(),
		pred:    pred,
		dynamic: pred.Kind() != PredictEWMA,
		fcfg:    cfg.Forest,
		pref:    cfg.Preference,
		row:     make([]float64, len(dets)),
		points:  history.Len(),
		dead:    make([]bool, len(dets)),
		onPanic: cfg.OnDetectorPanic,
	}
	if cfg.TypeLabels != nil {
		m.typeModel = forest.TrainMulti(cols, cfg.TypeLabels, cfg.Forest)
	}
	if cfg.MinDuration > 1 {
		m.filter = &DurationFilter{MinPoints: cfg.MinDuration}
	}
	// Configurations that panicked during training extraction are the same
	// live instances Step would call: mark them degraded up front.
	m.markDegraded(feats.Degraded)
	return m, nil
}

// markDegraded flags the named configurations as dead and accounts for their
// panics.
func (m *Monitor) markDegraded(names []string) {
	for _, name := range names {
		for j, d := range m.dets {
			if d.Name() == name && !m.dead[j] {
				m.dead[j] = true
				m.panics++
				if m.onPanic != nil {
					m.onPanic(name, nil)
				}
			}
		}
	}
}

// Verdict is the monitor's judgment of one point.
type Verdict struct {
	// Probability is the forest vote fraction.
	Probability float64
	// Anomalous is Probability ≥ the current cThld; when a duration filter
	// is configured, it is the filtered alarm decision instead.
	Anomalous bool
	// CThld is the threshold applied.
	CThld float64
	// Decided is how many points this verdict finalizes: always 1 without a
	// duration filter; with one, 0 while a short anomalous run is pending
	// and > 1 when a pending run resolves.
	Decided int
	// Class is the anomaly-type head's prediction for an anomalous verdict
	// (ClassNone when the point is normal, the head abstains, or no head is
	// trained).
	Class AnomalyClass
}

// Step consumes the next incoming point and classifies it online. A
// detector that panics is sandboxed: its feature reads 0 ("no evidence of
// anomaly") for this and all subsequent points, and the verdict is still
// produced from the remaining configurations.
func (m *Monitor) Step(v float64) Verdict {
	for j, d := range m.dets {
		if m.dead[j] {
			m.row[j] = 0
			continue
		}
		m.row[j] = m.stepDetector(j, d, v)
	}
	m.points++
	return m.finalize(m.model.Prob(m.row), m.row)
}

// StepBatch consumes a batch of incoming points and appends one verdict per
// point to out, returning the extended slice. It is the batched form of
// Step: detectors are stepped per point (with the same panic sandboxing and
// mid-batch degradation semantics), but the forest runs once over the whole
// batch via ProbRowsInto instead of once per point. The verdict sequence is
// bit-identical to calling Step on each value in order — detector stepping
// never depends on forest output, and the duration filter still advances
// point by point.
func (m *Monitor) StepBatch(values []float64, out []Verdict) []Verdict {
	n := len(values)
	if n == 0 {
		return out
	}
	d := len(m.dets)
	if need := n * d; cap(m.rowsBuf) < need {
		m.rowsBuf = make([]float64, need)
	}
	rows := m.rowsBuf[:n*d]
	for k, v := range values {
		row := rows[k*d : (k+1)*d]
		for j, det := range m.dets {
			if m.dead[j] {
				row[j] = 0
				continue
			}
			row[j] = m.stepDetector(j, det, v)
		}
		m.points++
	}
	if cap(m.probBuf) < n {
		m.probBuf = make([]float64, n)
	}
	probs := m.probBuf[:n]
	m.model.ProbRowsInto(rows, d, probs)
	for k, p := range probs {
		out = append(out, m.finalize(p, rows[k*d:(k+1)*d]))
	}
	return out
}

// finalize turns a vote fraction into a Verdict, applying the cThld, the
// optional duration filter, and the optional anomaly-type head (row is the
// point's feature row, consulted only for anomalous verdicts). A dynamic
// predictor then absorbs the score and refreshes the threshold for the next
// point — the point is judged against the threshold established before it
// arrived, streaming-POT style.
func (m *Monitor) finalize(p float64, row []float64) Verdict {
	verdict := Verdict{Probability: p, Anomalous: p >= m.cthld, CThld: m.cthld, Decided: 1}
	if m.filter != nil {
		decisions := m.filter.Step(verdict.Anomalous)
		verdict.Anomalous = false
		verdict.Decided = 0
		for _, d := range decisions {
			verdict.Decided += d.Count
			verdict.Anomalous = verdict.Anomalous || d.Anomalous
		}
	}
	if verdict.Anomalous && m.typeModel != nil {
		c, _ := m.typeModel.PredictRow(row)
		verdict.Class = AnomalyClass(c)
	}
	if m.dynamic {
		m.pred.ObserveScore(p)
		m.cthld = m.pred.Predict()
	}
	return verdict
}

// stepDetector runs one detector for one point inside a panic sandbox. On
// panic the configuration is marked dead and contributes a 0 severity.
func (m *Monitor) stepDetector(j int, d detectors.Detector, v float64) (sev float64) {
	defer func() {
		if r := recover(); r != nil {
			m.dead[j] = true
			m.panics++
			sev = 0
			if m.onPanic != nil {
				m.onPanic(d.Name(), r)
			}
		}
	}()
	s, ready := d.Step(v)
	if !ready {
		return 0
	}
	return s
}

// CThld returns the threshold currently in force.
func (m *Monitor) CThld() float64 { return m.cthld }

// PredictorKind reports the cThld prediction strategy in use.
func (m *Monitor) PredictorKind() PredictorKind { return m.pred.Kind() }

// HasTypeModel reports whether an anomaly-type head is trained.
func (m *Monitor) HasTypeModel() bool { return m.typeModel != nil }

// DetectorPanics returns how many detector panics this monitor has sandboxed
// (training extraction and online Steps combined). Not safe for concurrent
// use with Step; serialize as you would Step itself.
func (m *Monitor) DetectorPanics() int { return m.panics }

// DegradedDetectors returns how many configurations are currently degraded
// (dead) and contributing no features.
func (m *Monitor) DegradedDetectors() int {
	n := 0
	for _, d := range m.dead {
		if d {
			n++
		}
	}
	return n
}

// Retrain replaces the classifier with one trained on the full labeled
// history (incremental retraining, §3.2) and folds the period's best cThld
// into the EWMA prediction. history must cover everything up to the present,
// including the points already Stepped; detector streaming state is left
// untouched. Extraction is cold; use RetrainCached with a FeatureCache to
// make it O(new points).
func (m *Monitor) Retrain(history *timeseries.Series, labels timeseries.Labels, dets []detectors.Detector) error {
	return m.RetrainCached(history, labels, dets, nil)
}

// RetrainCached is Retrain with incremental feature extraction: with a
// non-nil cache, only the points appended since the cache's last extraction
// are run through the detectors (see ExtractIncremental); a nil cache
// extracts cold.
func (m *Monitor) RetrainCached(history *timeseries.Series, labels timeseries.Labels, dets []detectors.Detector, cache *FeatureCache) error {
	if len(labels) != history.Len() {
		return fmt.Errorf("core: %d labels for %d points", len(labels), history.Len())
	}
	if !bothClasses(labels) {
		return fmt.Errorf("core: history must contain labeled anomalies and normal data")
	}
	// Extract with a fresh detector set so the live ones keep streaming.
	feats, _, err := ExtractIncremental(cache, history, dets, ExtractConfig{})
	if err != nil {
		return err
	}
	// Account for configurations that panicked during this extraction; the
	// fresh instances are discarded afterwards, so the live detectors keep
	// streaming (they are sandboxed separately by Step).
	for _, name := range feats.Degraded {
		m.panics++
		if m.onPanic != nil {
			m.onPanic(name, nil)
		}
	}
	cols := feats.ImputedFull()
	ppw, err := history.PointsPerWeek()
	if err != nil {
		return err
	}
	// Threshold update: a dynamic (EVT) predictor re-fits its tail on the
	// trailing week scored by the OUTGOING model — that week arrived after
	// the model's last training cut, so these are out-of-sample vote
	// fractions, the distribution the monitor actually served online. The
	// incoming model's in-sample scores would sit near 0 on normal points
	// and collapse the tail.
	if m.dynamic {
		lo := history.Len() - ppw
		if lo < 0 {
			lo = 0
		}
		m.pred.Refit(m.model.ProbAll(featsSlice(cols, lo, history.Len())), labels[lo:])
	}
	m.model = forest.Train(cols, labels, m.fcfg)
	if lo := history.Len() - ppw; !m.dynamic && lo > 0 && bothClasses(labels[lo:]) {
		// EWMA observes the week's best cThld under the fresh model, as
		// before. Anomaly-free weeks carry no cThld information; skip them.
		scores := m.model.ProbAll(featsSlice(cols, lo, history.Len()))
		best, _ := stats.BestByPCScore(stats.PRCurve(scores, labels[lo:]), m.pref)
		m.pred.Observe(best.Threshold)
	}
	m.cthld = m.pred.Predict()
	return nil
}

// RetrainSnapshot builds a replacement monitor from a snapshot of the
// labeled history without mutating m. The returned monitor carries m's
// tuning forward — preference, forest configuration, the cThld predictor's
// EWMA state (cloned, with the snapshot's most recent week observed into
// it), duration-filter configuration and panic callback — but has a freshly
// trained model and a fresh detector set fitted over the snapshot and
// positioned after its last point.
//
// It is the training half of an asynchronous retrain: while it runs, the
// live monitor keeps Stepping newly arriving points; the caller then replays
// the points that arrived mid-train through the returned monitor (to advance
// its detectors and duration filter to the stream head) and atomically swaps
// it in. Concurrent Step on m is safe — RetrainSnapshot only reads fields
// Step never writes — but concurrent Retrain/RetrainSnapshot calls on the
// same monitor must be serialized by the caller.
func (m *Monitor) RetrainSnapshot(history *timeseries.Series, labels timeseries.Labels, dets []detectors.Detector) (*Monitor, error) {
	return m.RetrainSnapshotCached(history, labels, dets, nil)
}

// RetrainSnapshotCached is RetrainSnapshot with incremental feature
// extraction: with a non-nil cache only the points appended since the cache's
// last extraction are stepped, and the returned monitor's live detector set
// is built from the cache's advanced checkpoints instead of replaying the
// whole history (a nil cache extracts cold, exactly like RetrainSnapshot).
// Rounds against the same cache must be serialized by the caller — the
// engine's per-series train mutex already does.
func (m *Monitor) RetrainSnapshotCached(history *timeseries.Series, labels timeseries.Labels, dets []detectors.Detector, cache *FeatureCache) (*Monitor, error) {
	return m.RetrainSnapshotTyped(history, labels, nil, dets, cache)
}

// RetrainSnapshotTyped is RetrainSnapshotCached with anomaly-type labels:
// types, when non-nil, holds one AnomalyClass code per history point and the
// returned monitor carries a freshly trained multi-class type head. A nil or
// untrainable types slice (no typed anomalies yet) carries m's existing type
// head forward unchanged, so typing never regresses across a retrain that
// gained no new typed windows.
func (m *Monitor) RetrainSnapshotTyped(history *timeseries.Series, labels timeseries.Labels, types []uint8, dets []detectors.Detector, cache *FeatureCache) (*Monitor, error) {
	if len(labels) != history.Len() {
		return nil, fmt.Errorf("core: %d labels for %d points", len(labels), history.Len())
	}
	if types != nil && len(types) != history.Len() {
		return nil, fmt.Errorf("core: %d type labels for %d points", len(types), history.Len())
	}
	if !bothClasses(labels) {
		return nil, fmt.Errorf("core: history must contain labeled anomalies and normal data")
	}
	feats, liveDets, err := ExtractIncremental(cache, history, dets, ExtractConfig{})
	if err != nil {
		return nil, err
	}
	cols := feats.ImputedFull()
	model := forest.Train(cols, labels, m.fcfg)

	// Threshold update into a cloned predictor so the live monitor is
	// untouched until the swap: the EVT clone re-fits its tail on the
	// trailing week scored by the live (outgoing) model — out-of-sample
	// vote fractions, the distribution served online (see RetrainCached) —
	// while the EWMA clone observes the week's best cThld under the fresh
	// model.
	pred := m.pred.Clone()
	ppw, err := history.PointsPerWeek()
	if err != nil {
		return nil, err
	}
	if m.dynamic {
		lo := history.Len() - ppw
		if lo < 0 {
			lo = 0
		}
		pred.Refit(m.model.ProbAll(featsSlice(cols, lo, history.Len())), labels[lo:])
	} else if lo := history.Len() - ppw; lo > 0 && bothClasses(labels[lo:]) {
		scores := model.ProbAll(featsSlice(cols, lo, history.Len()))
		best, _ := stats.BestByPCScore(stats.PRCurve(scores, labels[lo:]), m.pref)
		pred.Observe(best.Threshold)
	}
	n := &Monitor{
		dets:      liveDets,
		model:     model,
		cthld:     pred.Predict(),
		pred:      pred,
		dynamic:   m.dynamic,
		typeModel: m.typeModel,
		fcfg:      m.fcfg,
		pref:      m.pref,
		row:       make([]float64, len(liveDets)),
		points:    history.Len(),
		dead:      make([]bool, len(liveDets)),
		onPanic:   m.onPanic,
	}
	if types != nil {
		if tm := forest.TrainMulti(cols, types, m.fcfg); tm != nil {
			n.typeModel = tm
		}
	}
	if m.filter != nil {
		n.filter = &DurationFilter{MinPoints: m.filter.MinPoints}
	}
	n.markDegraded(feats.Degraded)
	return n, nil
}

// heldOutScores scores the training window out-of-sample for the initial POT
// fit: the window is cut in half and each half is scored by a forest trained
// on the other half, approximating the score distribution a deployed model
// produces on data it was not trained on. A half whose complement lacks both
// label classes (untrainable) falls back to the in-sample model for those
// rows, keeping the output aligned with labels.
func heldOutScores(model *forest.Forest, cols [][]float64, labels timeseries.Labels, fcfg forest.Config) []float64 {
	n := len(labels)
	out := make([]float64, n)
	score := func(lo, hi, clo, chi int) {
		if hi <= lo {
			return
		}
		cl := []bool(labels[clo:chi])
		if chi <= clo || !bothClasses(cl) {
			copy(out[lo:hi], model.ProbAll(featsSlice(cols, lo, hi)))
			return
		}
		f := forest.Train(featsSlice(cols, clo, chi), cl, fcfg)
		copy(out[lo:hi], f.ProbAll(featsSlice(cols, lo, hi)))
	}
	mid := n / 2
	score(0, mid, mid, n)
	score(mid, n, 0, mid)
	return out
}

// featsSlice slices a column-major matrix by rows.
func featsSlice(cols [][]float64, lo, hi int) [][]float64 {
	out := make([][]float64, len(cols))
	for j, col := range cols {
		out[j] = col[lo:hi]
	}
	return out
}
