// Package core assembles the Opprentice framework (§4): parallel feature
// extraction by the basic-detector configurations, training-set policies
// (Table 2), random-forest training with incremental weekly retraining,
// cThld configuration by PC-Score, and online cThld prediction by EWMA —
// the full train-and-detect loop of Fig. 3.
package core

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"opprentice/internal/detectors"
	"opprentice/internal/timeseries"
)

// Features is the severity matrix the detectors extract from one series:
// one column per configuration, one row per point. Warm-up points hold NaN
// ("feature absent"); Imputed returns the NaN-free view the learners use.
//
// A detector configuration that panics during extraction is sandboxed: its
// column becomes all-NaN ("never ready") and the configuration is listed in
// Degraded, so one faulty configuration cannot take down the whole
// extraction (§6 "dirty data": Opprentice keeps working when some detectors
// are unusable).
type Features struct {
	Names []string
	Cols  [][]float64 // Cols[j][i] = severity of configuration j at point i
	// Degraded lists the configuration names whose extraction panicked and
	// was sandboxed into an all-NaN column.
	Degraded []string

	// imp, when non-nil, is the incrementally maintained NaN→0 view of Cols,
	// sharing storage with the FeatureCache this Features came from. See
	// ImputedFull.
	imp [][]float64
}

// DegradedCount returns how many configurations were sandboxed during
// extraction.
func (f *Features) DegradedCount() int { return len(f.Degraded) }

// ExtractConfig controls feature extraction.
type ExtractConfig struct {
	// FitWeeks is how many leading weeks Trainable detectors (ARIMA) see
	// for parameter estimation; 0 means min(8, all complete weeks).
	FitWeeks int
	// Workers bounds extraction parallelism (default GOMAXPROCS).
	Workers int
}

// Extract runs every detector configuration over the series in parallel and
// returns the severity matrix. Detectors are Reset first, and Trainable ones
// are fitted on the leading FitWeeks of data (§4.3.3). A Trainable detector
// whose fit fails simply stays not-ready (all-NaN column): Opprentice is
// explicitly designed to keep working when some detectors are unusable (§6
// "dirty data").
func Extract(s *timeseries.Series, ds []detectors.Detector, cfg ExtractConfig) (*Features, error) {
	fitN, workers, err := extractParams(s, cfg)
	if err != nil {
		return nil, err
	}

	f := &Features{
		Names: detectors.Names(ds),
		Cols:  make([][]float64, len(ds)),
	}
	var (
		wg         sync.WaitGroup
		degradedMu sync.Mutex
	)
	sem := make(chan struct{}, workers)
	for j, d := range ds {
		wg.Add(1)
		sem <- struct{}{}
		go func(j int, d detectors.Detector) {
			defer wg.Done()
			defer func() { <-sem }()
			col, ok := extractColumn(s, d, fitN)
			if !ok {
				degradedMu.Lock()
				f.Degraded = append(f.Degraded, f.Names[j])
				degradedMu.Unlock()
			}
			f.Cols[j] = col
		}(j, d)
	}
	wg.Wait()
	sort.Strings(f.Degraded)
	return f, nil
}

// extractParams resolves the Trainable fit window (in points) and the worker
// bound for an extraction over s — shared by Extract and ExtractIncremental
// so both derive bit-identical fit windows.
func extractParams(s *timeseries.Series, cfg ExtractConfig) (fitN, workers int, err error) {
	ppw, err := s.PointsPerWeek()
	if err != nil {
		return 0, 0, err
	}
	fitWeeks := cfg.FitWeeks
	if fitWeeks <= 0 {
		fitWeeks = 8
	}
	if max := s.Len() / ppw; fitWeeks > max {
		fitWeeks = max
	}
	workers = cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return fitWeeks * ppw, workers, nil
}

// extractColumn runs one detector over the series, sandboxing panics: if the
// detector panics anywhere (Reset, Fit or Step), the whole column is returned
// as all-NaN — "this configuration was never ready" — and ok is false. The
// learners already impute NaN to "no evidence of anomaly", so a faulty
// configuration degrades to a silent feature rather than a crashed request.
func extractColumn(s *timeseries.Series, d detectors.Detector, fitN int) (col []float64, ok bool) {
	col = make([]float64, s.Len())
	defer func() {
		if r := recover(); r != nil {
			for i := range col {
				col[i] = math.NaN()
			}
			ok = false
		}
	}()
	d.Reset()
	if tr, isTrainable := d.(detectors.Trainable); isTrainable && fitN > 0 {
		// Best effort: an unfittable detector contributes no
		// features rather than failing the whole extraction.
		_ = tr.Fit(s.Values[:fitN])
	}
	for i, v := range s.Values {
		sev, ready := d.Step(v)
		if ready {
			col[i] = sev
		} else {
			col[i] = math.NaN()
		}
	}
	return col, true
}

// NumPoints returns the number of rows in the matrix.
func (f *Features) NumPoints() int {
	if len(f.Cols) == 0 {
		return 0
	}
	return len(f.Cols[0])
}

// Slice returns a column-major view of rows [lo, hi). The returned slices
// share storage with f.
func (f *Features) Slice(lo, hi int) [][]float64 {
	out := make([][]float64, len(f.Cols))
	for j, col := range f.Cols {
		out[j] = col[lo:hi]
	}
	return out
}

// imputedParallelThreshold is the matrix-cell count above which Imputed
// parallelizes its column work; below it the goroutine overhead dominates.
const imputedParallelThreshold = 1 << 16

// Imputed returns a copy of rows [lo, hi) with NaN severities replaced by 0
// — "no evidence of anomaly" — which is what the learners and the static
// combination baselines consume. Large matrices are imputed with one worker
// per column (bounded by GOMAXPROCS).
func (f *Features) Imputed(lo, hi int) [][]float64 {
	out := make([][]float64, len(f.Cols))
	imputeInto := func(j int) {
		col := f.Cols[j]
		dst := make([]float64, hi-lo)
		for i, v := range col[lo:hi] {
			if math.IsNaN(v) {
				dst[i] = 0
			} else {
				dst[i] = v
			}
		}
		out[j] = dst
	}
	workers := runtime.GOMAXPROCS(0)
	if (hi-lo)*len(f.Cols) < imputedParallelThreshold || workers < 2 {
		for j := range f.Cols {
			imputeInto(j)
		}
		return out
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for j := range f.Cols {
		wg.Add(1)
		sem <- struct{}{}
		go func(j int) {
			defer wg.Done()
			defer func() { <-sem }()
			imputeInto(j)
		}(j)
	}
	wg.Wait()
	return out
}

// ImputedFull returns the full-length NaN→0 matrix in the cheapest way
// available. When this Features came from a FeatureCache, the cache's
// incrementally maintained imputed columns are returned (shared storage —
// treat as read-only). Otherwise the raw columns are imputed *in place* —
// destroying the NaN warm-up markers — and Cols itself is returned, so no
// second matrix is materialized; callers that still need raw severities must
// copy them first.
func (f *Features) ImputedFull() [][]float64 {
	if f.imp != nil {
		return f.imp
	}
	for _, col := range f.Cols {
		for i, v := range col {
			if math.IsNaN(v) {
				col[i] = 0
			}
		}
	}
	return f.Cols
}

// Column returns the full severity series of configuration j (shared
// storage, NaN for warm-up points).
func (f *Features) Column(j int) []float64 { return f.Cols[j] }

// ColumnByName returns the severity column with the given configuration
// name.
func (f *Features) ColumnByName(name string) ([]float64, error) {
	for j, n := range f.Names {
		if n == name {
			return f.Cols[j], nil
		}
	}
	return nil, fmt.Errorf("core: no configuration named %q", name)
}
