package core

import (
	"testing"
	"time"

	"opprentice/internal/kpigen"
	"opprentice/internal/ml/forest"
)

func TestMonitorEndToEnd(t *testing.T) {
	p := kpigen.PV(kpigen.Small)
	p.Interval = time.Hour
	p.Weeks = 10
	d := kpigen.Generate(p, 21)

	dets := smallRegistry(t)
	mon, err := NewMonitor(d.Series, d.Labels, dets, MonitorConfig{
		Forest:        forest.Config{Trees: 15, Seed: 1},
		SkipInitialCV: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if mon.CThld() != 0.5 {
		t.Errorf("initial cThld = %v, want 0.5 with SkipInitialCV", mon.CThld())
	}

	// Stream a normal-looking continuation, then a blatant dip.
	future := kpigen.Generate(p, 22) // same profile, fresh noise
	alarms := 0
	n := 200
	for i := 0; i < n; i++ {
		v := future.Series.Values[i]
		if future.Labels[i] {
			continue // keep the continuation anomaly-free
		}
		if mon.Step(v).Anomalous {
			alarms++
		}
	}
	if alarms > n/4 {
		t.Errorf("%d alarms on mostly-normal stream of %d", alarms, n)
	}
	verdict := mon.Step(future.Series.Values[n] * 0.2) // 80% drop
	if !verdict.Anomalous {
		t.Errorf("blatant drop not flagged: %+v", verdict)
	}
	if verdict.Probability < 0 || verdict.Probability > 1 {
		t.Errorf("probability %v out of range", verdict.Probability)
	}
}

func TestMonitorRejectsBadInputs(t *testing.T) {
	p := kpigen.PV(kpigen.Small)
	p.Interval = time.Hour
	p.Weeks = 9
	d := kpigen.Generate(p, 23)
	dets := smallRegistry(t)
	if _, err := NewMonitor(d.Series, d.Labels[:10], dets, MonitorConfig{}); err == nil {
		t.Error("want error for label mismatch")
	}
	allNormal := make([]bool, d.Series.Len())
	if _, err := NewMonitor(d.Series, allNormal, dets, MonitorConfig{SkipInitialCV: true}); err == nil {
		t.Error("want error for single-class history")
	}
}

func TestMonitorRetrainUpdatesCThld(t *testing.T) {
	p := kpigen.PV(kpigen.Small)
	p.Interval = time.Hour
	p.Weeks = 10
	d := kpigen.Generate(p, 25)
	dets := smallRegistry(t)
	mon, err := NewMonitor(d.Series, d.Labels, dets, MonitorConfig{
		Forest:        forest.Config{Trees: 10, Seed: 2},
		SkipInitialCV: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	before := mon.CThld()
	// Retrain on an extended history (one more generated week).
	p2 := p
	p2.Weeks = 11
	d2 := kpigen.Generate(p2, 25)
	if err := mon.Retrain(d2.Series, d2.Labels, smallRegistry(t)); err != nil {
		t.Fatal(err)
	}
	after := mon.CThld()
	if after < 0 || after > 1.01 {
		t.Errorf("cThld after retrain = %v", after)
	}
	_ = before // the threshold may legitimately stay put; bounds checked above

	if err := mon.Retrain(d2.Series, d2.Labels[:5], smallRegistry(t)); err == nil {
		t.Error("want error for label mismatch on retrain")
	}
}

func TestMonitorDurationFilterSuppressesBlips(t *testing.T) {
	p := kpigen.PV(kpigen.Small)
	p.Interval = time.Hour
	p.Weeks = 10
	d := kpigen.Generate(p, 61)
	mon, err := NewMonitor(d.Series, d.Labels, smallRegistry(t), MonitorConfig{
		Forest:        forest.Config{Trees: 12, Seed: 2},
		SkipInitialCV: true,
		MinDuration:   3,
	})
	if err != nil {
		t.Fatal(err)
	}
	base := d.Series.Values[d.Series.Len()-1]
	// A single-point blip must not alarm immediately: with MinDuration 3 the
	// filter withholds judgment on the first anomalous point.
	v1 := mon.Step(base * 0.1)
	if v1.Anomalous {
		t.Errorf("1-point blip alarmed immediately: %+v", v1)
	}
	// A sustained drop must eventually alarm, and the per-step Decided
	// counts must account for every point (minus at most MinDuration-1
	// still pending).
	steps := 1 // the blip
	decided := v1.Decided
	alarmed := false
	for i := 0; i < 6; i++ {
		v := mon.Step(base * 0.1)
		steps++
		decided += v.Decided
		alarmed = alarmed || v.Anomalous
	}
	if !alarmed {
		t.Error("sustained drop never alarmed")
	}
	if decided > steps || decided < steps-2 {
		t.Errorf("decided %d of %d steps (pending may hold at most 2)", decided, steps)
	}
}
