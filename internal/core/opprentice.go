package core

import (
	"fmt"

	"opprentice/internal/ml/forest"
	"opprentice/internal/stats"
	"opprentice/internal/timeseries"
)

// Config parameterizes an Opprentice run. Zero values select the paper's
// setup: preference (0.66, 0.66), 8 initial weeks, EWMA α = 0.8, 5 folds,
// 1000 cThld candidates.
type Config struct {
	Preference stats.Preference
	Forest     forest.Config
	// InitWeeks is the initial training period (default 8, Table 2).
	InitWeeks int
	// EWMAAlpha is the cThld-prediction smoothing constant (default 0.8).
	EWMAAlpha float64
	// Folds for the cross-validation cThld baseline (default 5).
	Folds int
	// CThldCandidates is the threshold grid resolution (default 1000).
	CThldCandidates int
	// SkipWeeklyCV disables the per-week 5-fold baseline (it is the
	// expensive part); the EWMA predictor is then seeded with 0.5.
	SkipWeeklyCV bool
}

func (c Config) withDefaults() Config {
	if c.Preference == (stats.Preference{}) {
		c.Preference = stats.Preference{Recall: 0.66, Precision: 0.66}
	}
	if c.InitWeeks <= 0 {
		c.InitWeeks = InitWeeks
	}
	if c.EWMAAlpha <= 0 {
		c.EWMAAlpha = 0.8
	}
	if c.Folds <= 0 {
		c.Folds = 5
	}
	if c.CThldCandidates <= 0 {
		c.CThldCandidates = 1000
	}
	return c
}

// WeekResult is one detection week of the online loop: the classifier was
// trained on all data before the week, predicted a cThld, detected the
// week's points, and was then given the week's labels.
type WeekResult struct {
	// Week is the 0-based week index in the series.
	Week int
	// Scores are the forest vote fractions of the week's points; Truth are
	// the operators' labels (available for evaluation after the week).
	Scores []float64
	Truth  []bool
	// BestCThld is the oracle threshold (PC-Score on the week itself);
	// EWMACThld is Opprentice's online prediction; CV5CThld is the 5-fold
	// cross-validation baseline (NaN when SkipWeeklyCV).
	BestCThld, EWMACThld, CV5CThld float64
	// Confusions of the week at the three thresholds.
	Best, EWMA, CV5 stats.Confusion
}

// Result is a full online run over one KPI.
type Result struct {
	Config Config
	Weeks  []WeekResult
}

// Run executes the Opprentice online loop of Fig. 3 over an extracted
// feature matrix: for every week after the initial training period, train
// on all labeled history (incremental retraining, I1), predict the cThld,
// classify the week, then reveal the week's labels and update the cThld
// predictor.
func Run(f *Features, labels timeseries.Labels, ppw int, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	n := f.NumPoints()
	if len(labels) != n {
		return nil, fmt.Errorf("core: %d labels for %d points", len(labels), n)
	}
	weeks := n / ppw
	if weeks <= cfg.InitWeeks {
		return nil, fmt.Errorf("core: %d weeks of data, need more than %d", weeks, cfg.InitWeeks)
	}
	res := &Result{Config: cfg}
	pred := NewCThldPredictor(cfg.EWMAAlpha)

	for w := cfg.InitWeeks; w < weeks; w++ {
		trainHi := w * ppw
		trainCols := f.Imputed(0, trainHi)
		trainLabels := []bool(labels[:trainHi])
		if !bothClasses(trainLabels) {
			return nil, fmt.Errorf("core: training data before week %d has a single class", w)
		}
		model := forest.Train(trainCols, trainLabels, cfg.Forest)

		testLo, testHi := trainHi, trainHi+ppw
		scores := model.ProbAll(f.Imputed(testLo, testHi))
		truth := []bool(labels[testLo:testHi])

		// Oracle: the best cThld for this week, knowable only afterwards.
		best, _ := stats.BestByPCScore(stats.PRCurve(scores, truth), cfg.Preference)

		// Online EWMA prediction, seeded by cross-validation (§4.5.2).
		var cv5 float64
		runCV := !cfg.SkipWeeklyCV
		if w == cfg.InitWeeks {
			if runCV {
				cv5 = CrossValidateCThld(trainCols, trainLabels, cfg.Folds, cfg.CThldCandidates, cfg.Forest, cfg.Preference)
			} else {
				cv5 = 0.5
			}
			pred.Seed(cv5)
		} else if runCV {
			cv5 = CrossValidateCThld(trainCols, trainLabels, cfg.Folds, cfg.CThldCandidates, cfg.Forest, cfg.Preference)
		}
		ewmaCThld := pred.Predict()

		wr := WeekResult{
			Week:      w,
			Scores:    scores,
			Truth:     truth,
			BestCThld: best.Threshold,
			EWMACThld: ewmaCThld,
			CV5CThld:  cv5,
			Best:      confusionAt(scores, truth, best.Threshold),
			EWMA:      confusionAt(scores, truth, ewmaCThld),
		}
		if runCV {
			wr.CV5 = confusionAt(scores, truth, cv5)
		}
		res.Weeks = append(res.Weeks, wr)

		// The operators label the week; fold its best cThld into the
		// predictor for next week. A week with no labeled anomalies carries
		// no information about where the threshold should sit (its "best"
		// is the degenerate flag-nothing point), so it is skipped.
		if bothClasses(truth) {
			pred.Observe(best.Threshold)
		}
	}
	return res, nil
}

// confusionAt evaluates predictions "score ≥ thr" against the truth.
func confusionAt(scores []float64, truth []bool, thr float64) stats.Confusion {
	pred := make([]bool, len(scores))
	for i, s := range scores {
		pred[i] = s >= thr
	}
	return stats.Confuse(pred, truth)
}

// MovingWindow aggregates consecutive weekly confusions into the paper's
// 4-week moving windows (Fig. 13): window k covers weeks [k, k+size).
type MovingWindow struct {
	ID                int
	Recall, Precision float64
}

// MovingWindows sums per-week confusions selected by pick over windows of
// the given size.
func MovingWindows(weeks []WeekResult, size int, pick func(WeekResult) stats.Confusion) []MovingWindow {
	if size < 1 {
		size = 4
	}
	var out []MovingWindow
	for k := 0; k+size <= len(weeks); k++ {
		var c stats.Confusion
		for _, wr := range weeks[k : k+size] {
			w := pick(wr)
			c.TP += w.TP
			c.FP += w.FP
			c.FN += w.FN
			c.TN += w.TN
		}
		out = append(out, MovingWindow{ID: k + 1, Recall: c.Recall(), Precision: c.Precision()})
	}
	return out
}

// RunPolicy evaluates one Table-2 training-set policy: for each moving test
// window it trains a forest on the policy's training range and reports the
// test window's AUCPR (Fig. 11, and the random-forest rows of Fig. 9).
func RunPolicy(f *Features, labels timeseries.Labels, ppw int, p Policy, fcfg forest.Config) ([]float64, error) {
	n := f.NumPoints()
	if len(labels) != n {
		return nil, fmt.Errorf("core: %d labels for %d points", len(labels), n)
	}
	var aucs []float64
	for k := 0; ; k++ {
		trainLo, trainHi, testLo, testHi, ok := p.Split(k, ppw, n)
		if !ok {
			break
		}
		trainLabels := []bool(labels[trainLo:trainHi])
		if !bothClasses(trainLabels) {
			aucs = append(aucs, 0)
			continue
		}
		model := forest.Train(f.Imputed(trainLo, trainHi), trainLabels, fcfg)
		scores := model.ProbAll(f.Imputed(testLo, testHi))
		aucs = append(aucs, stats.AUCPR(scores, labels[testLo:testHi]))
	}
	return aucs, nil
}
