package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"

	"opprentice/internal/detectors"
	"opprentice/internal/ml/forest"
	"opprentice/internal/stats"
	"opprentice/internal/timeseries"
)

// snapshotDTO is the gob wire form of a monitor's model state. Detector
// streaming state is deliberately not serialized: detectors re-warm by
// replaying recent history, which is simpler and correct by construction.
type snapshotDTO struct {
	Version    int
	Forest     []byte
	CThld      float64
	EWMAAlpha  float64
	Preference stats.Preference
}

const snapshotVersion = 1

// SaveModel writes the monitor's trained model (forest, cThld state,
// preference) to w. Pair it with LoadMonitor on restart.
func (m *Monitor) SaveModel(w io.Writer) error {
	var fbuf bytes.Buffer
	if err := m.model.Save(&fbuf); err != nil {
		return err
	}
	dto := snapshotDTO{
		Version:    snapshotVersion,
		Forest:     fbuf.Bytes(),
		CThld:      m.cthld,
		EWMAAlpha:  m.pred.ewma.Alpha,
		Preference: m.pref,
	}
	return gob.NewEncoder(w).Encode(dto)
}

// LoadMonitor restores a monitor from a SaveModel snapshot. recent must hold
// enough trailing history to re-warm the detectors (a few weeks: the longest
// warm-up in the default registry is 5 weeks); dets are fresh detector
// instances matching the ones the model was trained with.
func LoadMonitor(r io.Reader, recent *timeseries.Series, dets []detectors.Detector) (*Monitor, error) {
	var dto snapshotDTO
	if err := gob.NewDecoder(r).Decode(&dto); err != nil {
		return nil, fmt.Errorf("core: decode snapshot: %w", err)
	}
	if dto.Version != snapshotVersion {
		return nil, fmt.Errorf("core: snapshot version %d, want %d", dto.Version, snapshotVersion)
	}
	model, err := forest.Load(bytes.NewReader(dto.Forest))
	if err != nil {
		return nil, err
	}
	// Re-warm the detectors by replaying the recent history. A detector
	// that panics while re-warming is sandboxed (marked dead) like in
	// Monitor.Step, instead of failing the whole restore.
	m := &Monitor{
		dets:   dets,
		model:  model,
		pref:   dto.Preference,
		row:    make([]float64, len(dets)),
		points: recent.Len(),
		dead:   make([]bool, len(dets)),
	}
	fitN := recent.Len()
	for j, d := range dets {
		if !rewarm(d, recent.Values, fitN) {
			m.dead[j] = true
			m.panics++
		}
	}
	pred := NewCThldPredictor(dto.EWMAAlpha)
	pred.Seed(dto.CThld)
	m.pred = pred
	m.cthld = dto.CThld
	return m, nil
}

// rewarm replays history through one detector inside a panic sandbox,
// reporting false when the detector panicked.
func rewarm(d detectors.Detector, values []float64, fitN int) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			ok = false
		}
	}()
	d.Reset()
	if tr, isTrainable := d.(detectors.Trainable); isTrainable && fitN > 0 {
		_ = tr.Fit(values)
	}
	for _, v := range values {
		d.Step(v)
	}
	return true
}
