package core

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/fnv"
	"io"

	"opprentice/internal/detectors"
	"opprentice/internal/ml/forest"
	"opprentice/internal/stats"
	"opprentice/internal/timeseries"
)

// Typed snapshot errors. LoadMonitor wraps exactly one of these so callers
// (the engine's warm-restart path, operator tooling) can distinguish "this
// artifact can never load" from "this artifact was trained under a different
// deployment" without string matching.
var (
	// ErrSnapshotVersion: the snapshot was written by an incompatible
	// SaveModel version (or is not a snapshot at all).
	ErrSnapshotVersion = errors.New("snapshot version mismatch")
	// ErrSnapshotFingerprint: the snapshot decodes fine but was trained under
	// a different detector registry, forest size, or accuracy preference than
	// the one it is being loaded into. Loading it anyway would silently
	// misclassify: the forest's feature indices would no longer line up with
	// the live detector columns.
	ErrSnapshotFingerprint = errors.New("snapshot fingerprint mismatch")
)

// snapshotDTO is the gob wire form of a monitor's model state. Detector
// streaming state is deliberately not serialized: detectors re-warm by
// replaying recent history, which is simpler and correct by construction.
type snapshotDTO struct {
	Version     int
	Fingerprint uint64
	Forest      []byte
	ForestCfg   forest.Config
	CThld       float64
	EWMAAlpha   float64
	Preference  stats.Preference
	MinDuration int
	// PredKind and EVTQ (added with the EVT predictor) ride without a
	// version bump: gob decodes a legacy snapshot with both zero, which is
	// exactly PredictEWMA, and a legacy binary ignores the new fields. The
	// EVT fit state itself is never serialized — a restored EVT monitor
	// starts from the saved CThld and re-establishes its tail at the next
	// retrain, which keeps twin restores bit-identical.
	PredKind uint8
	EVTQ     float64
}

const snapshotVersion = 2

// FingerprintNames hashes an ordered detector-configuration name list plus
// the forest size and accuracy preference into a deployment fingerprint
// (FNV-1a 64). Two monitors have the same fingerprint exactly when their
// feature columns line up and their threshold tuning is comparable, so a
// saved model from one can serve as the other.
func FingerprintNames(names []string, trees int, pref stats.Preference) uint64 {
	if pref == (stats.Preference{}) {
		pref = stats.Preference{Recall: 0.66, Precision: 0.66}
	}
	if trees <= 0 {
		trees = 60
	}
	h := fnv.New64a()
	for _, name := range names {
		io.WriteString(h, name)
		h.Write([]byte{0})
	}
	fmt.Fprintf(h, "trees=%d|recall=%g|precision=%g", trees, pref.Recall, pref.Precision)
	return h.Sum64()
}

// ModelFingerprint is FingerprintNames over live detector instances.
func ModelFingerprint(dets []detectors.Detector, trees int, pref stats.Preference) uint64 {
	return FingerprintNames(detectors.Names(dets), trees, pref)
}

// Fingerprint returns the monitor's own deployment fingerprint — the value
// SaveModel embeds and LoadMonitor verifies.
func (m *Monitor) Fingerprint() uint64 {
	return ModelFingerprint(m.dets, m.fcfg.Trees, m.pref)
}

// SaveModel writes the monitor's trained model (forest, cThld state,
// preference, forest configuration) to w, stamped with the deployment
// fingerprint. Pair it with LoadMonitor on restart.
func (m *Monitor) SaveModel(w io.Writer) error {
	var fbuf bytes.Buffer
	if err := m.model.Save(&fbuf); err != nil {
		return err
	}
	dto := snapshotDTO{
		Version:     snapshotVersion,
		Fingerprint: m.Fingerprint(),
		Forest:      fbuf.Bytes(),
		ForestCfg:   m.fcfg,
		CThld:       m.cthld,
		Preference:  m.pref,
		PredKind:    uint8(m.pred.Kind()),
	}
	switch p := m.pred.(type) {
	case *CThldPredictor:
		dto.EWMAAlpha = p.ewma.Alpha
	case *EVTPredictor:
		dto.EVTQ = p.Q()
	}
	if m.filter != nil {
		dto.MinDuration = m.filter.MinPoints
	}
	return gob.NewEncoder(w).Encode(dto)
}

// LoadConfig tells LoadMonitor what deployment the snapshot is being loaded
// into, so version skew and fingerprint drift are detected instead of
// silently misclassifying.
type LoadConfig struct {
	// Trees is the forest size the series is configured with (default 60).
	Trees int
	// Preference is the series' accuracy preference (default 0.66 / 0.66).
	Preference stats.Preference
	// OnDetectorPanic mirrors MonitorConfig.OnDetectorPanic for the restored
	// monitor's sandboxing.
	OnDetectorPanic func(name string, recovered any)
}

// LoadMonitor restores a monitor from a SaveModel snapshot. recent must hold
// enough trailing history to re-warm the detectors (a few weeks: the longest
// warm-up in the default registry is 5 weeks); dets are fresh detector
// instances matching the ones the model was trained with.
//
// The snapshot's embedded fingerprint is checked against the fingerprint of
// (dets, cfg.Trees, cfg.Preference): a snapshot trained under a different
// detector registry, tree count, or preference returns an error wrapping
// ErrSnapshotFingerprint; an incompatible snapshot format returns one
// wrapping ErrSnapshotVersion. Both are detected before any model state is
// used.
func LoadMonitor(r io.Reader, recent *timeseries.Series, dets []detectors.Detector, cfg LoadConfig) (*Monitor, error) {
	var dto snapshotDTO
	if err := gob.NewDecoder(r).Decode(&dto); err != nil {
		return nil, fmt.Errorf("core: decode snapshot: %v (%w)", err, ErrSnapshotVersion)
	}
	if dto.Version != snapshotVersion {
		return nil, fmt.Errorf("core: snapshot version %d, want %d (%w)", dto.Version, snapshotVersion, ErrSnapshotVersion)
	}
	if want := ModelFingerprint(dets, cfg.Trees, cfg.Preference); dto.Fingerprint != want {
		return nil, fmt.Errorf("core: snapshot fingerprint %016x, deployment is %016x: trained under a different detector registry, tree count, or preference (%w)",
			dto.Fingerprint, want, ErrSnapshotFingerprint)
	}
	model, err := forest.Load(bytes.NewReader(dto.Forest))
	if err != nil {
		return nil, fmt.Errorf("core: %v (%w)", err, ErrSnapshotVersion)
	}
	// Re-warm the detectors by replaying the recent history. A detector
	// that panics while re-warming is sandboxed (marked dead) like in
	// Monitor.Step, instead of failing the whole restore.
	m := &Monitor{
		dets:    dets,
		model:   model,
		fcfg:    dto.ForestCfg,
		pref:    dto.Preference,
		row:     make([]float64, len(dets)),
		points:  recent.Len(),
		dead:    make([]bool, len(dets)),
		onPanic: cfg.OnDetectorPanic,
	}
	fitN := recent.Len()
	for j, d := range dets {
		if !rewarm(d, recent.Values, fitN) {
			m.dead[j] = true
			m.panics++
			if m.onPanic != nil {
				m.onPanic(d.Name(), nil)
			}
		}
	}
	pred := newPredictor(PredictorKind(dto.PredKind), dto.EWMAAlpha, dto.EVTQ, dto.Preference)
	pred.Seed(dto.CThld)
	m.pred = pred
	m.dynamic = pred.Kind() != PredictEWMA
	m.cthld = dto.CThld
	if dto.MinDuration > 1 {
		m.filter = &DurationFilter{MinPoints: dto.MinDuration}
	}
	return m, nil
}

// typeDTO is the gob wire form of the anomaly-type head: its own artifact
// kind in the multi-model manifest, serialized and fingerprint-checked
// separately from the verdict snapshot so a corrupt type artifact can be
// quarantined without touching the verdict path.
type typeDTO struct {
	Version     int
	Fingerprint uint64
	Model       []byte
}

const typeSnapshotVersion = 1

// SaveTypeModel writes the trained anomaly-type head to w, stamped with the
// same deployment fingerprint as the verdict snapshot. It errors when no
// type head is trained; callers gate on HasTypeModel.
func (m *Monitor) SaveTypeModel(w io.Writer) error {
	if m.typeModel == nil {
		return errors.New("core: no anomaly-type head trained")
	}
	var buf bytes.Buffer
	if err := m.typeModel.Save(&buf); err != nil {
		return err
	}
	return gob.NewEncoder(w).Encode(typeDTO{
		Version:     typeSnapshotVersion,
		Fingerprint: m.Fingerprint(),
		Model:       buf.Bytes(),
	})
}

// RestoreTypeModel attaches a SaveTypeModel artifact to a restored monitor.
// Version and fingerprint mismatches fail with the same typed errors as
// LoadMonitor, leaving the monitor's existing type head (usually nil)
// untouched — the verdict path never degrades on the type head's account.
func (m *Monitor) RestoreTypeModel(r io.Reader) error {
	var dto typeDTO
	if err := gob.NewDecoder(r).Decode(&dto); err != nil {
		return fmt.Errorf("core: decode type snapshot: %v (%w)", err, ErrSnapshotVersion)
	}
	if dto.Version != typeSnapshotVersion {
		return fmt.Errorf("core: type snapshot version %d, want %d (%w)", dto.Version, typeSnapshotVersion, ErrSnapshotVersion)
	}
	if want := m.Fingerprint(); dto.Fingerprint != want {
		return fmt.Errorf("core: type snapshot fingerprint %016x, deployment is %016x (%w)", dto.Fingerprint, want, ErrSnapshotFingerprint)
	}
	tm, err := forest.LoadMulti(bytes.NewReader(dto.Model))
	if err != nil {
		return fmt.Errorf("core: %v (%w)", err, ErrSnapshotVersion)
	}
	m.typeModel = tm
	return nil
}

// rewarm replays history through one detector inside a panic sandbox,
// reporting false when the detector panicked.
func rewarm(d detectors.Detector, values []float64, fitN int) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			ok = false
		}
	}()
	d.Reset()
	if tr, isTrainable := d.(detectors.Trainable); isTrainable && fitN > 0 {
		_ = tr.Fit(values)
	}
	for _, v := range values {
		d.Step(v)
	}
	return true
}
