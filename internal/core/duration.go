package core

// DurationFilter implements the §6 "anomaly duration" post-processor: raise
// an alarm only when at least MinPoints consecutive points are classified
// anomalous. The paper deliberately keeps duration out of the learning model
// and notes that "it is relatively easy to implement a duration filter based
// upon the point-level anomalies" — this is that filter, in both streaming
// and batch form.
//
// The streaming form is conservative about latency: it withholds judgment
// on a point until the run it belongs to either reaches MinPoints (the whole
// pending run is then released as anomalous) or ends early (released as
// normal). Feed it one point-level verdict at a time and act on the emitted
// decisions.
type DurationFilter struct {
	// MinPoints is the minimum run length that counts as an alarm (≥ 1).
	MinPoints int
	run       int
	confirmed bool
}

// Decision is the filter's judgment for one or more earlier points.
type Decision struct {
	// Anomalous applies to Count consecutive points ending at the filter's
	// current position minus Lag.
	Anomalous bool
	Count     int
}

// Step consumes the next point-level verdict and returns the decisions that
// became final with it (zero, one or two — a rejected pending run followed
// by the current normal point).
func (f *DurationFilter) Step(anomalous bool) []Decision {
	min := f.MinPoints
	if min < 1 {
		min = 1
	}
	var out []Decision
	switch {
	case anomalous && f.confirmed:
		out = append(out, Decision{Anomalous: true, Count: 1})
	case anomalous:
		f.run++
		if f.run >= min {
			out = append(out, Decision{Anomalous: true, Count: f.run})
			f.run = 0
			f.confirmed = true
		}
	default:
		if f.run > 0 {
			// Pending run died before reaching the minimum duration.
			out = append(out, Decision{Anomalous: false, Count: f.run})
			f.run = 0
		}
		f.confirmed = false
		out = append(out, Decision{Anomalous: false, Count: 1})
	}
	return out
}

// Pending returns how many points are currently withheld awaiting a
// duration decision.
func (f *DurationFilter) Pending() int { return f.run }

// Reset clears the filter state.
func (f *DurationFilter) Reset() {
	f.run = 0
	f.confirmed = false
}

// FilterByDuration is the batch form: it returns a copy of the point-level
// predictions with every anomalous run shorter than minPoints cleared.
func FilterByDuration(pred []bool, minPoints int) []bool {
	out := make([]bool, len(pred))
	if minPoints < 1 {
		minPoints = 1
	}
	i := 0
	for i < len(pred) {
		if !pred[i] {
			i++
			continue
		}
		j := i
		for j < len(pred) && pred[j] {
			j++
		}
		if j-i >= minPoints {
			for k := i; k < j; k++ {
				out[k] = true
			}
		}
		i = j
	}
	return out
}
