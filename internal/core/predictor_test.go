package core

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"opprentice/internal/kpigen"
	"opprentice/internal/ml/forest"
	"opprentice/internal/stats"
)

// evtSeed pins the RNG of the EVT predictor tests (PR 5 seed policy).
const evtSeed int64 = 20260811

func TestPredictorKindRoundTrip(t *testing.T) {
	cases := []struct {
		in   string
		kind PredictorKind
		ok   bool
	}{
		{"", PredictEWMA, true},
		{"ewma", PredictEWMA, true},
		{"evt", PredictEVT, true},
		{"EVT", PredictEWMA, false},
		{"pot", PredictEWMA, false},
	}
	for _, c := range cases {
		kind, ok := ParsePredictorKind(c.in)
		if kind != c.kind || ok != c.ok {
			t.Errorf("ParsePredictorKind(%q) = (%v, %v), want (%v, %v)", c.in, kind, ok, c.kind, c.ok)
		}
	}
	for _, kind := range []PredictorKind{PredictEWMA, PredictEVT} {
		got, ok := ParsePredictorKind(kind.String())
		if !ok || got != kind {
			t.Errorf("String round trip broke for %v: got (%v, %v)", kind, got, ok)
		}
	}
}

func TestAnomalyClassRoundTrip(t *testing.T) {
	all := []AnomalyClass{ClassNone, ClassSpike, ClassDrop, ClassRamp, ClassLevelShift, ClassJitter}
	for _, c := range all {
		got, ok := ParseClass(c.String())
		if !ok || got != c {
			t.Errorf("ParseClass(%q) = (%v, %v), want (%v, true)", c.String(), got, ok, c)
		}
	}
	if ClassNone.Wire() != "" {
		t.Errorf("ClassNone.Wire() = %q, want empty", ClassNone.Wire())
	}
	if ClassDrop.Wire() != "drop" {
		t.Errorf("ClassDrop.Wire() = %q", ClassDrop.Wire())
	}
	if got, ok := ParseClass(""); !ok || got != ClassNone {
		t.Errorf("ParseClass(\"\") = (%v, %v)", got, ok)
	}
	if _, ok := ParseClass("meltdown"); ok {
		t.Error("unknown class name accepted")
	}
	if AnomalyClass(200).String() != "unknown" {
		t.Errorf("out-of-range String = %q", AnomalyClass(200).String())
	}
	if allocs := testing.AllocsPerRun(100, func() { _ = ClassSpike.String() }); allocs != 0 {
		t.Fatalf("AnomalyClass.String allocates %.1f/op, want 0", allocs)
	}
}

// evtScores draws a right-skewed vote-fraction sample: mostly low scores
// with an exponential-ish tail, the shape a trained forest produces.
func evtScores(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		s := 0.05 + 0.1*math.Abs(rng.NormFloat64()) + 0.3*rng.ExpFloat64()*0.2
		if s > 1 {
			s = 1
		}
		out[i] = s
	}
	return out
}

func TestEVTPredictorDefaults(t *testing.T) {
	p := NewEVTPredictor(0, stats.Preference{})
	if p.Q() != 0 {
		t.Errorf("Q() = %v, want 0 (auto-calibration must round-trip through snapshots)", p.Q())
	}
	if !p.auto {
		t.Error("q = 0 did not select auto-calibration")
	}
	if NewEVTPredictor(1.5, stats.Preference{}).Q() != 0 {
		t.Error("out-of-range q not treated as auto")
	}
	if fixed := NewEVTPredictor(0.02, stats.Preference{}); fixed.Q() != 0.02 || fixed.auto {
		t.Errorf("configured q not pinned: Q() = %v, auto = %v", fixed.Q(), fixed.auto)
	}
	if got := p.Predict(); got != 0.5 {
		t.Errorf("unseeded Predict = %v, want 0.5", got)
	}
	p.Seed(0.7)
	if got := p.Predict(); got != 0.7 {
		t.Errorf("seeded Predict = %v, want 0.7", got)
	}
	p.Seed(math.NaN())
	if got := p.Predict(); math.IsNaN(got) || got < 0.01 || got > 0.99 {
		t.Errorf("NaN seed produced Predict = %v", got)
	}
}

// TestEVTPredictorRefitObserve: after a refit on a realistic score sample,
// the threshold stays inside the clamp band point after point, and two
// predictors fed the identical stream agree bitwise (determinism).
func TestEVTPredictorRefitObserve(t *testing.T) {
	rng := rand.New(rand.NewSource(evtSeed))
	scores := evtScores(rng, 2000)
	a := NewEVTPredictor(0.01, stats.Preference{})
	b := NewEVTPredictor(0.01, stats.Preference{})
	a.Refit(scores, nil)
	b.Refit(scores, nil)
	if a.Predict() != b.Predict() {
		t.Fatalf("refit not deterministic: %v vs %v", a.Predict(), b.Predict())
	}
	online := evtScores(rng, 3000)
	for i, s := range online {
		a.ObserveScore(s)
		b.ObserveScore(s)
		z := a.Predict()
		if math.IsNaN(z) || math.IsInf(z, 0) || z < 0.01 || z > 0.99 {
			t.Fatalf("point %d: threshold %v escaped [0.01, 0.99]", i, z)
		}
		if z != b.Predict() {
			t.Fatalf("point %d: identical streams diverged: %v vs %v", i, z, b.Predict())
		}
	}
}

// TestEVTPredictorDegenerate: constant and tiny samples must never produce a
// NaN/Inf threshold — the empirical fallback holds the clamp band.
func TestEVTPredictorDegenerate(t *testing.T) {
	samples := [][]float64{
		{},
		{0.2},
		{0.3, 0.3, 0.3, 0.3, 0.3},
		make([]float64, 500), // all zero
	}
	for i, s := range samples {
		p := NewEVTPredictor(0.01, stats.Preference{})
		p.Seed(0.5)
		p.Refit(s, nil)
		for _, x := range []float64{0, 0.3, 0.9, 1} {
			p.ObserveScore(x)
			z := p.Predict()
			if math.IsNaN(z) || math.IsInf(z, 0) || z < 0.01 || z > 0.99 {
				t.Fatalf("sample %d: degenerate refit produced threshold %v", i, z)
			}
		}
	}
}

func TestEVTPredictorCloneIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(evtSeed + 1))
	p := NewEVTPredictor(0.01, stats.Preference{})
	p.Refit(evtScores(rng, 1500), nil)
	c := p.Clone()
	if c.Kind() != PredictEVT {
		t.Fatalf("clone kind = %v", c.Kind())
	}
	if c.Predict() != p.Predict() {
		t.Fatalf("clone diverged at birth: %v vs %v", c.Predict(), p.Predict())
	}
	// Feeding only the clone must not move the original.
	before := p.Predict()
	for i := 0; i < 500; i++ {
		c.ObserveScore(0.95)
	}
	if p.Predict() != before {
		t.Error("observing the clone moved the original")
	}
}

func TestEVTPredictorObserveScoreZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(evtSeed + 2))
	p := NewEVTPredictor(0.01, stats.Preference{})
	p.Refit(evtScores(rng, 1500), nil)
	if allocs := testing.AllocsPerRun(200, func() { p.ObserveScore(0.4) }); allocs != 0 {
		t.Fatalf("ObserveScore allocates %.1f/op, want 0", allocs)
	}
}

// TestMonitorEVTEndToEnd trains an EVT-predictor monitor on seeded KPI data
// and streams the held-out tail: the per-point threshold must stay in the
// clamp band throughout and actually move (it is dynamic, unlike EWMA).
func TestMonitorEVTEndToEnd(t *testing.T) {
	p := kpigen.PV(kpigen.Small)
	p.Interval = time.Hour
	p.Weeks = 10
	d := kpigen.Generate(p, evtSeed)
	ppw, err := d.Series.PointsPerWeek()
	if err != nil {
		t.Fatal(err)
	}
	boot := d.Series.Len() - ppw
	mon, err := NewMonitor(d.Series.Slice(0, boot), d.Labels[:boot], smallRegistry(t), MonitorConfig{
		Forest:        forest.Config{Trees: 10, Seed: 1},
		Predictor:     PredictEVT,
		EVTQ:          0.02,
		SkipInitialCV: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if mon.PredictorKind() != PredictEVT {
		t.Fatalf("PredictorKind = %v", mon.PredictorKind())
	}
	seen := map[float64]bool{}
	for _, v := range d.Series.Values[boot:] {
		verdict := mon.Step(v)
		if math.IsNaN(verdict.CThld) || verdict.CThld < 0.01 || verdict.CThld > 0.99 {
			t.Fatalf("EVT threshold %v escaped the clamp band", verdict.CThld)
		}
		seen[verdict.CThld] = true
	}
	if len(seen) < 2 {
		t.Errorf("EVT threshold never moved across %d held-out points", ppw)
	}
}

// TestMonitorTypeHeadAccuracy is the type-head accuracy floor on a seeded
// medium KPI: train verdict + type heads on all but the trailing two weeks,
// stream the rest, and require that among alarmed points inside typed
// injection windows at least 60% of the head's non-abstaining predictions
// name the injected class.
func TestMonitorTypeHeadAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("trains on a medium KPI")
	}
	p := kpigen.PV(kpigen.Medium)
	d := kpigen.Generate(p, evtSeed)
	types := kpigen.TypedLabels(d)
	ppw, err := d.Series.PointsPerWeek()
	if err != nil {
		t.Fatal(err)
	}
	boot := d.Series.Len() - 2*ppw
	mon, err := NewMonitor(d.Series.Slice(0, boot), d.Labels[:boot], smallRegistry(t), MonitorConfig{
		Forest:        forest.Config{Trees: 20, Seed: 1},
		TypeLabels:    types[:boot],
		SkipInitialCV: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !mon.HasTypeModel() {
		t.Fatal("typed labels did not train a head")
	}
	classified, correct := 0, 0
	for i, v := range d.Series.Values[boot:] {
		verdict := mon.Step(v)
		truth := types[boot+i]
		if !verdict.Anomalous || truth == 0 || verdict.Class == ClassNone {
			continue
		}
		classified++
		if uint8(verdict.Class) == truth {
			correct++
		}
	}
	if classified == 0 {
		t.Fatal("no alarmed typed points were classified; head always abstained")
	}
	acc := float64(correct) / float64(classified)
	t.Logf("type head: %d classified, accuracy %.3f", classified, acc)
	if acc < 0.6 {
		t.Fatalf("type-head accuracy %.3f below the 0.6 floor (%d/%d)", acc, correct, classified)
	}
}
