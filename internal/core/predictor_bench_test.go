package core

// EVT predictor hot- and cold-path costs. ObserveScore runs once per scored
// point on the trained hot path (must stay allocation-free — the zero-alloc
// pin lives in predictor_test.go; this benchmark tracks the ns/op). Refit
// runs once per weekly retrain off the hot path.
//
// Seed policy (see DESIGN.md "Seeds and reproducibility"): bench fixtures use
// the package's pinned named seed (evtSeed) so runs are comparable across
// machines; changing the seed is a baseline change.

import (
	"math/rand"
	"testing"

	"opprentice/internal/stats"
)

func BenchmarkEVTObserveScore(b *testing.B) {
	rng := rand.New(rand.NewSource(evtSeed + 10))
	p := NewEVTPredictor(0.01, stats.Preference{})
	p.Refit(evtScores(rng, 1500), nil)
	// Pre-generate the score stream so the RNG is off the measured path.
	scores := make([]float64, 4096)
	for i := range scores {
		scores[i] = rng.Float64() * 0.6
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.ObserveScore(scores[i&4095])
	}
}

func BenchmarkEVTRefit(b *testing.B) {
	rng := rand.New(rand.NewSource(evtSeed + 11))
	scores := evtScores(rng, 1500)
	anomalous := make([]bool, len(scores))
	for i := range anomalous {
		anomalous[i] = scores[i] > 0.9
	}
	p := NewEVTPredictor(0, stats.Preference{}) // auto-calibrating: the expensive mode
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Refit(scores, anomalous)
	}
}
