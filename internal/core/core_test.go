package core

import (
	"math"
	"testing"
	"time"

	"opprentice/internal/detectors"
	"opprentice/internal/kpigen"
	"opprentice/internal/ml/forest"
	"opprentice/internal/stats"
	"opprentice/internal/timeseries"
)

// testKPI generates a small hourly KPI with the given weeks for fast tests.
func testKPI(t *testing.T, weeks int, seed int64) (*timeseries.Series, timeseries.Labels) {
	t.Helper()
	p := kpigen.PV(kpigen.Small)
	p.Interval = time.Hour
	p.Weeks = weeks
	d := kpigen.Generate(p, seed)
	return d.Series, d.Labels
}

// smallRegistry returns a cheap subset of configurations for pipeline tests.
func smallRegistry(t *testing.T) []detectors.Detector {
	t.Helper()
	return []detectors.Detector{
		detectors.NewSimpleThreshold(),
		detectors.NewDiff("last-slot", 1),
		detectors.NewEWMA(0.5),
		detectors.NewSimpleMA(20),
		detectors.NewHistoricalAverage(1, 24),
		detectors.NewTSD(1, 168, 24),
		detectors.NewHoltWinters(0.4, 0.2, 0.4, 24),
	}
}

func TestExtractShapesAndWarmUp(t *testing.T) {
	s, _ := testKPI(t, 10, 1)
	ds := smallRegistry(t)
	f, err := Extract(s, ds, ExtractConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Cols) != len(ds) || f.NumPoints() != s.Len() {
		t.Fatalf("shape = %d×%d, want %d×%d", len(f.Cols), f.NumPoints(), len(ds), s.Len())
	}
	// The Diff(last-slot) column must be NaN exactly at point 0.
	col, err := f.ColumnByName("diff(last-slot)")
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(col[0]) {
		t.Error("warm-up point should be NaN")
	}
	if math.IsNaN(col[1]) {
		t.Error("post-warm-up point should be a severity")
	}
	// TSD(1w) warm-up spans at least a week.
	tsd, err := f.ColumnByName("tsd(win=1w)")
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(tsd[100]) {
		t.Error("TSD should still be warming up at point 100")
	}
	if math.IsNaN(tsd[len(tsd)-1]) {
		t.Error("TSD should be warm at the end")
	}
}

func TestExtractDeterministicAcrossWorkerCounts(t *testing.T) {
	s, _ := testKPI(t, 9, 2)
	a, err := Extract(s, smallRegistry(t), ExtractConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Extract(s, smallRegistry(t), ExtractConfig{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	for j := range a.Cols {
		for i := range a.Cols[j] {
			av, bv := a.Cols[j][i], b.Cols[j][i]
			if av != bv && !(math.IsNaN(av) && math.IsNaN(bv)) {
				t.Fatalf("col %d point %d: %v vs %v", j, i, av, bv)
			}
		}
	}
}

func TestExtractRejectsBadInterval(t *testing.T) {
	s := timeseries.New("x", time.Now(), 11*time.Minute)
	if _, err := Extract(s, smallRegistry(t), ExtractConfig{}); err == nil {
		t.Error("want error for non-week-divisible interval")
	}
}

func TestImputedReplacesNaN(t *testing.T) {
	s, _ := testKPI(t, 9, 3)
	f, err := Extract(s, smallRegistry(t), ExtractConfig{})
	if err != nil {
		t.Fatal(err)
	}
	cols := f.Imputed(0, f.NumPoints())
	for j := range cols {
		for i, v := range cols[j] {
			if math.IsNaN(v) {
				t.Fatalf("Imputed leaked NaN at col %d point %d", j, i)
			}
		}
	}
	// Slice, by contrast, preserves NaN.
	raw := f.Slice(0, 10)
	if !math.IsNaN(raw[1][0]) {
		t.Error("Slice should preserve NaN")
	}
}

func TestColumnByNameUnknown(t *testing.T) {
	f := &Features{Names: []string{"a"}, Cols: [][]float64{{1}}}
	if _, err := f.ColumnByName("nope"); err == nil {
		t.Error("want error for unknown name")
	}
}

func TestPolicySplits(t *testing.T) {
	const ppw, total = 100, 1500 // 15 weeks
	cases := []struct {
		p                                Policy
		k                                int
		trainLo, trainHi, testLo, testHi int
	}{
		{I1, 0, 0, 800, 800, 900},
		{I1, 3, 0, 1100, 1100, 1200},
		{I4, 0, 0, 800, 800, 1200},
		{R4, 1, 100, 900, 900, 1300},
		{F4, 2, 0, 800, 1000, 1400},
	}
	for _, c := range cases {
		lo, hi, tlo, thi, ok := c.p.Split(c.k, ppw, total)
		if !ok {
			t.Fatalf("%v split %d not ok", c.p, c.k)
		}
		if lo != c.trainLo || hi != c.trainHi || tlo != c.testLo || thi != c.testHi {
			t.Errorf("%v split %d = (%d,%d,%d,%d), want (%d,%d,%d,%d)",
				c.p, c.k, lo, hi, tlo, thi, c.trainLo, c.trainHi, c.testLo, c.testHi)
		}
	}
	if _, _, _, _, ok := I4.Split(4, ppw, total); ok {
		t.Error("I4 split 4 should not fit in 15 weeks")
	}
	if got := I1.NumSplits(ppw, total); got != 7 {
		t.Errorf("I1 NumSplits = %d, want 7", got)
	}
	if got := I4.NumSplits(ppw, total); got != 4 {
		t.Errorf("I4 NumSplits = %d, want 4", got)
	}
}

func TestPolicyStrings(t *testing.T) {
	if I1.String() != "I1" || I4.String() != "I4" || R4.String() != "R4" || F4.String() != "F4" {
		t.Error("policy names wrong")
	}
}

func TestSelectCThldMetrics(t *testing.T) {
	// Scores cleanly separate: any reasonable metric finds a good point.
	scores := []float64{0.9, 0.8, 0.2, 0.1}
	truth := []bool{true, true, false, false}
	pref := stats.Preference{Recall: 0.66, Precision: 0.66}
	for _, m := range Metrics() {
		pt := SelectCThld(scores, truth, m, pref)
		if m == DefaultCThld && pt.Threshold != 0.5 {
			t.Errorf("default metric moved the threshold: %v", pt.Threshold)
		}
		if pt.Recall < 0 || pt.Precision < 0 {
			t.Errorf("%v: bad point %+v", m, pt)
		}
	}
	if got := SelectCThld(scores, truth, PCScoreMetric, pref); got.Recall < 0.66 {
		t.Errorf("PC-Score point %+v should satisfy the preference here", got)
	}
}

func TestMetricStrings(t *testing.T) {
	if PCScoreMetric.String() != "pc_score" || Metric(99).String() != "unknown" {
		t.Error("metric names wrong")
	}
}

func TestCThldPredictorEWMAFormula(t *testing.T) {
	p := NewCThldPredictor(0.8)
	if got := p.Predict(); got != 0.5 {
		t.Errorf("unseeded Predict = %v, want 0.5", got)
	}
	p.Seed(0.4)
	if got := p.Predict(); got != 0.4 {
		t.Errorf("after Seed, Predict = %v, want 0.4", got)
	}
	p.Observe(0.9)
	want := 0.8*0.9 + 0.2*0.4
	if got := p.Predict(); math.Abs(got-want) > 1e-12 {
		t.Errorf("Predict = %v, want %v", got, want)
	}
}

func TestCrossValidateCThldOnSeparableData(t *testing.T) {
	// Feature 0 is a perfect score in [0,1]; the CV search should pick a
	// threshold that separates (between the class score levels).
	n := 500
	cols := [][]float64{make([]float64, n)}
	labels := make([]bool, n)
	for i := range labels {
		labels[i] = i%10 == 0
		if labels[i] {
			cols[0][i] = 0.9
		} else {
			cols[0][i] = 0.1
		}
	}
	got := CrossValidateCThld(cols, labels, 5, 100, forest.Config{Trees: 5, Seed: 1},
		stats.Preference{Recall: 0.66, Precision: 0.66})
	if got <= 0 || got > 1 {
		t.Errorf("cv cThld = %v, want in (0,1]", got)
	}
	r, p := stats.AtThreshold(predictWith(cols, labels, got), labels, got)
	if r < 0.9 || p < 0.9 {
		t.Errorf("cv threshold %v gives (r=%v, p=%v) in-sample", got, r, p)
	}
}

// predictWith trains a forest on all data and returns scores (test helper).
func predictWith(cols [][]float64, labels []bool, thr float64) []float64 {
	f := forest.Train(cols, labels, forest.Config{Trees: 5, Seed: 1})
	return f.ProbAll(cols)
}

func TestCrossValidateCThldTinyData(t *testing.T) {
	got := CrossValidateCThld([][]float64{{1, 2}}, []bool{true, false}, 5, 10,
		forest.Config{Trees: 3}, stats.Preference{})
	if got != 0.5 {
		t.Errorf("tiny-data CV = %v, want fallback 0.5", got)
	}
}

func TestRunEndToEnd(t *testing.T) {
	s, labels := testKPI(t, 11, 5)
	f, err := Extract(s, smallRegistry(t), ExtractConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ppw, _ := s.PointsPerWeek()
	res, err := Run(f, labels, ppw, Config{
		Forest:       forest.Config{Trees: 15, Seed: 3},
		SkipWeeklyCV: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Weeks) != 3 { // weeks 8, 9, 10
		t.Fatalf("weeks = %d, want 3", len(res.Weeks))
	}
	for _, w := range res.Weeks {
		if len(w.Scores) != ppw || len(w.Truth) != ppw {
			t.Fatalf("week %d: %d scores, %d truths", w.Week, len(w.Scores), len(w.Truth))
		}
		if w.BestCThld < 0 || w.BestCThld > 1 {
			t.Errorf("week %d: best cThld %v", w.Week, w.BestCThld)
		}
		// The oracle can never lose to the online prediction on PC-Score.
		pref := res.Config.Preference
		bestScore := stats.PCScore(w.Best.Recall(), w.Best.Precision(), pref)
		ewmaScore := stats.PCScore(w.EWMA.Recall(), w.EWMA.Precision(), pref)
		if ewmaScore > bestScore+1e-9 {
			t.Errorf("week %d: EWMA outperformed the oracle (%v > %v)", w.Week, ewmaScore, bestScore)
		}
	}
	// The forest should detect most of the injected anomalies offline.
	if r := res.Weeks[0].Best.Recall(); r < 0.5 {
		t.Errorf("oracle recall in week 8 = %v, want ≥ 0.5", r)
	}
}

func TestRunErrors(t *testing.T) {
	s, labels := testKPI(t, 9, 6)
	f, err := Extract(s, smallRegistry(t), ExtractConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ppw, _ := s.PointsPerWeek()
	if _, err := Run(f, labels[:10], ppw, Config{}); err == nil {
		t.Error("want error for label length mismatch")
	}
	if _, err := Run(f, labels, ppw, Config{InitWeeks: 20}); err == nil {
		t.Error("want error when data shorter than InitWeeks")
	}
}

func TestMovingWindows(t *testing.T) {
	weeks := []WeekResult{
		{Best: stats.Confusion{TP: 1, FN: 1}},
		{Best: stats.Confusion{TP: 2, FP: 2}},
		{Best: stats.Confusion{TP: 3}},
		{Best: stats.Confusion{FN: 2}},
	}
	ws := MovingWindows(weeks, 2, func(w WeekResult) stats.Confusion { return w.Best })
	if len(ws) != 3 {
		t.Fatalf("windows = %d, want 3", len(ws))
	}
	// Window 1: TP=3, FP=2, FN=1 → r=0.75, p=0.6.
	if math.Abs(ws[0].Recall-0.75) > 1e-12 || math.Abs(ws[0].Precision-0.6) > 1e-12 {
		t.Errorf("window 1 = %+v", ws[0])
	}
}

func TestRunPolicyOrdering(t *testing.T) {
	s, labels := testKPI(t, 13, 7)
	f, err := Extract(s, smallRegistry(t), ExtractConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ppw, _ := s.PointsPerWeek()
	fcfg := forest.Config{Trees: 15, Seed: 4}
	for _, p := range []Policy{I4, R4, F4} {
		aucs, err := RunPolicy(f, labels, ppw, p, fcfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(aucs) != I4.NumSplits(ppw, f.NumPoints()) {
			t.Fatalf("%v: %d aucs", p, len(aucs))
		}
		for _, a := range aucs {
			if a < 0 || a > 1 {
				t.Fatalf("%v: AUCPR %v out of range", p, a)
			}
		}
	}
}
