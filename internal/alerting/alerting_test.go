package alerting

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// recorder captures notified events.
type recorder struct {
	mu     sync.Mutex
	events []Event
	err    error
}

func (r *recorder) Notify(_ context.Context, e Event) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = append(r.events, e)
	return r.err
}

func (r *recorder) all() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events...)
}

var t0 = time.Date(2015, 1, 5, 0, 0, 0, 0, time.UTC)

func at(i int) time.Time { return t0.Add(time.Duration(i) * time.Minute) }

func TestManagerCoalescesIncident(t *testing.T) {
	rec := &recorder{}
	m := &Manager{Series: "pv", Notifier: rec}
	ctx := context.Background()
	verdicts := []bool{false, true, true, true, false, false}
	probs := []float64{0.1, 0.7, 0.9, 0.8, 0.2, 0.1}
	for i, v := range verdicts {
		if err := m.Observe(ctx, at(i), v, probs[i]); err != nil {
			t.Fatal(err)
		}
	}
	events := rec.all()
	if len(events) != 2 {
		t.Fatalf("events = %+v, want open+resolved", events)
	}
	open, resolved := events[0], events[1]
	if open.State != "open" || !open.Start.Equal(at(1)) {
		t.Errorf("open = %+v", open)
	}
	if resolved.State != "resolved" || resolved.Points != 3 || resolved.PeakProbability != 0.9 {
		t.Errorf("resolved = %+v", resolved)
	}
	if !resolved.End.Equal(at(4)) {
		t.Errorf("resolved end = %v, want %v", resolved.End, at(4))
	}
}

func TestManagerResolveAfter(t *testing.T) {
	rec := &recorder{}
	m := &Manager{Series: "pv", Notifier: rec, ResolveAfter: 3}
	ctx := context.Background()
	// Anomaly, then 2 normals (not resolved), anomaly continues, then 3
	// normals (resolved).
	seq := []bool{true, false, false, true, false, false, false}
	for i, v := range seq {
		m.Observe(ctx, at(i), v, 0.9)
	}
	events := rec.all()
	if len(events) != 2 {
		t.Fatalf("events = %+v", events)
	}
	if events[1].State != "resolved" || events[1].Points != 2 {
		t.Errorf("resolved = %+v (gap should not split the incident)", events[1])
	}
	if m.Open() {
		t.Error("incident should be closed")
	}
}

func TestManagerRateLimit(t *testing.T) {
	rec := &recorder{}
	m := &Manager{Series: "pv", Notifier: rec, MinInterval: 10 * time.Minute}
	ctx := context.Background()
	m.Observe(ctx, at(0), true, 0.9) // notified
	m.Observe(ctx, at(1), false, 0.1)
	m.Observe(ctx, at(2), true, 0.9) // suppressed (2 min later)
	m.Observe(ctx, at(3), false, 0.1)
	m.Observe(ctx, at(20), true, 0.9) // notified again
	opens := 0
	for _, e := range rec.all() {
		if e.State == "open" {
			opens++
		}
	}
	if opens != 2 {
		t.Errorf("open notifications = %d, want 2", opens)
	}
	if m.Suppressed() != 1 {
		t.Errorf("suppressed = %d, want 1", m.Suppressed())
	}
}

func TestManagerNotifierErrorDoesNotCorruptState(t *testing.T) {
	rec := &recorder{err: errors.New("boom")}
	m := &Manager{Series: "pv", Notifier: rec}
	ctx := context.Background()
	if err := m.Observe(ctx, at(0), true, 0.9); err == nil {
		t.Error("notifier error should propagate")
	}
	if !m.Open() {
		t.Error("incident should still be open despite notify failure")
	}
}

func TestWebhookNotifier(t *testing.T) {
	var got Event
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost || r.Header.Get("Content-Type") != "application/json" {
			t.Errorf("bad request: %s %s", r.Method, r.Header.Get("Content-Type"))
		}
		body, _ := io.ReadAll(r.Body)
		_ = json.Unmarshal(body, &got)
		w.WriteHeader(http.StatusNoContent)
	}))
	defer ts.Close()
	n := WebhookNotifier{URL: ts.URL, Client: ts.Client()}
	e := Event{Series: "pv", State: "open", Start: t0, Points: 3, PeakProbability: 0.8}
	if err := n.Notify(context.Background(), e); err != nil {
		t.Fatal(err)
	}
	if got.Series != "pv" || got.Points != 3 {
		t.Errorf("delivered = %+v", got)
	}
}

func TestWebhookNotifierErrors(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusBadGateway)
	}))
	defer ts.Close()
	n := WebhookNotifier{URL: ts.URL, Client: ts.Client()}
	if err := n.Notify(context.Background(), Event{}); err == nil {
		t.Error("5xx should be an error")
	}
	down := WebhookNotifier{URL: "http://127.0.0.1:1"}
	if err := down.Notify(context.Background(), Event{}); err == nil {
		t.Error("unreachable webhook should be an error")
	}
}

func TestMultiNotifier(t *testing.T) {
	a, b := &recorder{}, &recorder{err: errors.New("b failed")}
	m := Multi{b, a}
	err := m.Notify(context.Background(), Event{Series: "x"})
	if err == nil || err.Error() != "b failed" {
		t.Errorf("err = %v", err)
	}
	if len(a.all()) != 1 {
		t.Error("healthy notifier should still receive the event")
	}
}

func TestLogNotifier(t *testing.T) {
	// Must not panic with a nil logger.
	if err := (LogNotifier{}).Notify(context.Background(), Event{Series: "x"}); err != nil {
		t.Fatal(err)
	}
}
