package alerting

import (
	"context"
	"fmt"
	"log/slog"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Pipeline is an asynchronous, retrying delivery queue in front of a
// Notifier. Notify never blocks: events are appended to a bounded queue and
// a background worker delivers them with exponential backoff, jitter and a
// max-attempts bound; a circuit breaker trips after a run of consecutive
// failures so a dead endpoint is probed instead of hammered. When the queue
// is full the newest event is dropped (and counted) rather than stalling the
// caller — in the service this is what keeps a slow or dead webhook off the
// ingest hot path.
//
// A panicking inner notifier is sandboxed: the panic is recovered and
// treated as a delivery failure.
type Pipeline struct {
	inner Notifier
	cfg   PipelineConfig

	ch       chan Event
	quit     chan struct{}
	done     chan struct{}
	closing  atomic.Bool
	closeOne sync.Once
	// lifeCtx is canceled by Close so an in-flight Notify attempt (e.g. a
	// hung webhook) unblocks promptly instead of running out its timeout.
	lifeCtx    context.Context
	lifeCancel context.CancelFunc

	enqueued  atomic.Int64
	delivered atomic.Int64
	retried   atomic.Int64
	dropped   atomic.Int64
	inflight  atomic.Int64 // events dequeued by the worker, not yet resolved

	brMu        sync.Mutex
	brFailures  int
	brOpenUntil time.Time
	brTripped   atomic.Int64
}

// PipelineConfig tunes a Pipeline. Zero values pick production-ish defaults;
// tests shrink the delays to keep fault injection fast.
type PipelineConfig struct {
	// QueueSize bounds the number of undelivered events (default 256).
	QueueSize int
	// MaxAttempts is the delivery attempts per event, including the first
	// (default 5). After that the event is dropped and counted.
	MaxAttempts int
	// BaseDelay is the first retry's backoff (default 100ms); it doubles per
	// attempt up to MaxDelay (default 30s).
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Jitter is the random fraction added to each backoff delay, in [0, 1]
	// (default 0.2), decorrelating retry storms across series.
	Jitter float64
	// AttemptTimeout bounds one Notify call (default 10s).
	AttemptTimeout time.Duration
	// BreakerThreshold is how many consecutive failures trip the circuit
	// breaker (default 8); while open, delivery waits out BreakerCooldown
	// (default 30s) before the next probe instead of burning attempts.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Log receives drop and breaker transitions (default slog.Default).
	Log *slog.Logger
	// OnResult, when set, is invoked after each accepted event resolves:
	// err is nil on delivery, otherwise the reason the event was abandoned
	// (max attempts exhausted, or ErrPipelineClosed when Close drained it).
	// It runs on the worker goroutine, so it must be cheap and must not call
	// back into the pipeline. Events rejected by Notify itself (queue full,
	// already closing) never reach OnResult — the caller saw that error.
	// Intended for tests and simulation harnesses that need delivery
	// completion without polling.
	OnResult func(e Event, err error)
}

func (cfg *PipelineConfig) applyDefaults() {
	if cfg.QueueSize <= 0 {
		cfg.QueueSize = 256
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 5
	}
	if cfg.BaseDelay <= 0 {
		cfg.BaseDelay = 100 * time.Millisecond
	}
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 30 * time.Second
	}
	if cfg.Jitter < 0 || cfg.Jitter > 1 {
		cfg.Jitter = 0.2
	}
	if cfg.AttemptTimeout <= 0 {
		cfg.AttemptTimeout = 10 * time.Second
	}
	if cfg.BreakerThreshold <= 0 {
		cfg.BreakerThreshold = 8
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 30 * time.Second
	}
	if cfg.Log == nil {
		cfg.Log = slog.Default()
	}
}

// NewPipeline wraps inner and starts the delivery worker. Close it to stop.
func NewPipeline(inner Notifier, cfg PipelineConfig) *Pipeline {
	cfg.applyDefaults()
	p := &Pipeline{
		inner: inner,
		cfg:   cfg,
		ch:    make(chan Event, cfg.QueueSize),
		quit:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	p.lifeCtx, p.lifeCancel = context.WithCancel(context.Background())
	go p.run()
	return p
}

// Notify implements Notifier by enqueueing the event; it returns immediately.
// ErrQueueFull is returned (and the event counted dropped) when the queue is
// saturated or the pipeline is closed.
func (p *Pipeline) Notify(_ context.Context, e Event) error {
	if p.closing.Load() {
		p.dropped.Add(1)
		return ErrPipelineClosed
	}
	select {
	case p.ch <- e:
		p.enqueued.Add(1)
		return nil
	default:
		p.dropped.Add(1)
		p.cfg.Log.Warn("alerting: queue full, event dropped",
			"series", e.Series, "state", e.State)
		return ErrQueueFull
	}
}

// Sentinel errors Notify can return.
var (
	ErrQueueFull      = fmt.Errorf("alerting: delivery queue full")
	ErrPipelineClosed = fmt.Errorf("alerting: pipeline closed")
)

// Close stops accepting events, lets the worker finish the event it is
// working on, counts everything still queued as dropped, and waits for the
// worker to exit. Safe to call more than once.
func (p *Pipeline) Close() {
	p.closeOne.Do(func() {
		p.closing.Store(true)
		close(p.quit)
		p.lifeCancel()
	})
	<-p.done
}

// Drain blocks until the queue is empty and the in-flight event (if any) is
// resolved, or ctx expires. Useful in tests and graceful shutdown when
// pending notifications should still go out.
func (p *Pipeline) Drain(ctx context.Context) error {
	tick := time.NewTicker(time.Millisecond)
	defer tick.Stop()
	for {
		if len(p.ch) == 0 && p.inflight.Load() == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
}

// Stats is a point-in-time snapshot of the pipeline's counters.
type Stats struct {
	// Enqueued is how many events were accepted into the queue.
	Enqueued int64
	// Delivered is how many events the inner notifier acknowledged.
	Delivered int64
	// Retried is how many delivery attempts beyond each event's first were
	// made.
	Retried int64
	// Dropped is how many events were abandoned: queue full, max attempts
	// exhausted, or pipeline closed with work outstanding.
	Dropped int64
	// BreakerTrips is how many times the circuit breaker opened.
	BreakerTrips int64
}

// Stats returns the current counters.
func (p *Pipeline) Stats() Stats {
	return Stats{
		Enqueued:     p.enqueued.Load(),
		Delivered:    p.delivered.Load(),
		Retried:      p.retried.Load(),
		Dropped:      p.dropped.Load(),
		BreakerTrips: p.brTripped.Load(),
	}
}

// BreakerOpen reports whether the circuit breaker is currently open.
func (p *Pipeline) BreakerOpen() bool {
	p.brMu.Lock()
	defer p.brMu.Unlock()
	return time.Now().Before(p.brOpenUntil)
}

// run is the delivery worker.
func (p *Pipeline) run() {
	defer close(p.done)
	for {
		select {
		case <-p.quit:
			// Count everything still queued as dropped and exit.
			for {
				select {
				case e := <-p.ch:
					p.dropped.Add(1)
					p.result(e, ErrPipelineClosed)
				default:
					return
				}
			}
		case e := <-p.ch:
			p.inflight.Add(1)
			p.deliver(e)
			p.inflight.Add(-1)
		}
	}
}

// deliver attempts one event with backoff until success, max attempts, or
// close.
func (p *Pipeline) deliver(e Event) {
	delay := p.cfg.BaseDelay
	for attempt := 1; ; attempt++ {
		if wait := p.breakerWait(); wait > 0 {
			if !p.sleep(wait) {
				p.dropped.Add(1)
				p.result(e, ErrPipelineClosed)
				return
			}
		}
		err := p.attempt(e)
		if err == nil {
			p.breakerSuccess()
			p.delivered.Add(1)
			p.result(e, nil)
			return
		}
		p.breakerFailure()
		if attempt >= p.cfg.MaxAttempts {
			p.dropped.Add(1)
			p.cfg.Log.Warn("alerting: event dropped after max attempts",
				"series", e.Series, "state", e.State,
				"attempts", attempt, "err", err)
			p.result(e, fmt.Errorf("alerting: dropped after %d attempts: %w", attempt, err))
			return
		}
		p.retried.Add(1)
		jittered := delay + time.Duration(p.cfg.Jitter*rand.Float64()*float64(delay))
		if !p.sleep(jittered) {
			p.dropped.Add(1)
			p.result(e, ErrPipelineClosed)
			return
		}
		if delay *= 2; delay > p.cfg.MaxDelay {
			delay = p.cfg.MaxDelay
		}
	}
}

// result fires the OnResult hook, if configured.
func (p *Pipeline) result(e Event, err error) {
	if p.cfg.OnResult != nil {
		p.cfg.OnResult(e, err)
	}
}

// attempt runs one Notify call under the attempt timeout, converting a panic
// in the inner notifier into an error.
func (p *Pipeline) attempt(e Event) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("alerting: notifier panicked: %v", r)
		}
	}()
	ctx, cancel := context.WithTimeout(p.lifeCtx, p.cfg.AttemptTimeout)
	defer cancel()
	return p.inner.Notify(ctx, e)
}

// sleep waits for d unless the pipeline is closed first; it reports whether
// the full wait elapsed.
func (p *Pipeline) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-p.quit:
		return false
	}
}

// breakerWait returns how long delivery must wait for the breaker's cooldown
// (0 when closed or already expired).
func (p *Pipeline) breakerWait() time.Duration {
	p.brMu.Lock()
	defer p.brMu.Unlock()
	if wait := time.Until(p.brOpenUntil); wait > 0 {
		return wait
	}
	return 0
}

// breakerSuccess closes the breaker.
func (p *Pipeline) breakerSuccess() {
	p.brMu.Lock()
	defer p.brMu.Unlock()
	p.brFailures = 0
	p.brOpenUntil = time.Time{}
}

// breakerFailure records one failure, tripping the breaker at the threshold.
func (p *Pipeline) breakerFailure() {
	p.brMu.Lock()
	defer p.brMu.Unlock()
	p.brFailures++
	if p.brFailures >= p.cfg.BreakerThreshold {
		p.brOpenUntil = time.Now().Add(p.cfg.BreakerCooldown)
		p.brFailures = 0
		p.brTripped.Add(1)
		p.cfg.Log.Warn("alerting: circuit breaker open",
			"cooldown", p.cfg.BreakerCooldown)
	}
}
