// Package alerting turns point-level anomaly verdicts into operator-facing
// incidents: consecutive anomalous points coalesce into one incident (the
// window semantics operators think in, §4.2), notifications are rate
// limited, and delivery is pluggable (log, webhook). This is the "report to
// operators and let them decide" hand-off the paper's §6 prescribes.
package alerting

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sync"
	"time"
)

// Event is one notification about an incident.
type Event struct {
	// Series is the KPI name.
	Series string `json:"series"`
	// State is "open" when an incident starts and "resolved" when it ends.
	State string `json:"state"`
	// Start is the first anomalous point's timestamp; End (resolved only)
	// is the first normal point after the incident.
	Start time.Time `json:"start"`
	End   time.Time `json:"end,omitempty"`
	// Points is the number of anomalous points so far.
	Points int `json:"points"`
	// PeakProbability is the largest classifier probability in the incident.
	PeakProbability float64 `json:"peak_probability"`
}

// Notifier delivers events. Implementations must be safe for concurrent
// use.
type Notifier interface {
	Notify(ctx context.Context, e Event) error
}

// LogNotifier writes events to a slog logger.
type LogNotifier struct {
	Log *slog.Logger
}

// Notify implements Notifier.
func (n LogNotifier) Notify(_ context.Context, e Event) error {
	log := n.Log
	if log == nil {
		log = slog.Default()
	}
	log.Info("incident", "series", e.Series, "state", e.State,
		"start", e.Start, "points", e.Points, "peak", e.PeakProbability)
	return nil
}

// WebhookNotifier POSTs events as JSON to a URL.
type WebhookNotifier struct {
	URL string
	// Client may be nil for a 10-second-timeout default.
	Client *http.Client
}

// Notify implements Notifier.
func (n WebhookNotifier) Notify(ctx context.Context, e Event) error {
	body, err := json.Marshal(e)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, n.URL, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	client := n.Client
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("alerting: webhook %s returned %d", n.URL, resp.StatusCode)
	}
	return nil
}

// Multi fans an event out to several notifiers. Every notifier is attempted
// even when earlier ones fail; the returned error aggregates all failures
// with errors.Join, so no delivery problem is silently swallowed.
type Multi []Notifier

// Notify implements Notifier.
func (m Multi) Notify(ctx context.Context, e Event) error {
	var errs []error
	for _, n := range m {
		if err := n.Notify(ctx, e); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// Manager coalesces verdicts into incidents and notifies on transitions.
// One Manager watches one series; it is safe for concurrent use.
type Manager struct {
	// Series names the KPI in events.
	Series string
	// Notifier receives open/resolved events (required).
	Notifier Notifier
	// ResolveAfter is how many consecutive normal points end an incident
	// (default 1).
	ResolveAfter int
	// MinInterval rate-limits "open" notifications: a new incident within
	// MinInterval of the previous notification is tracked but not announced.
	MinInterval time.Duration

	mu           sync.Mutex
	open         bool
	start        time.Time
	points       int
	peak         float64
	normalStreak int
	lastNotify   time.Time
	suppressed   int
}

// Observe feeds one classified point. ts is the point's timestamp,
// anomalous the (possibly duration-filtered) verdict, probability the
// classifier score. Notification errors are returned but do not disturb the
// incident state.
func (m *Manager) Observe(ctx context.Context, ts time.Time, anomalous bool, probability float64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	resolveAfter := m.ResolveAfter
	if resolveAfter < 1 {
		resolveAfter = 1
	}
	switch {
	case anomalous && !m.open:
		m.open = true
		m.start = ts
		m.points = 1
		m.peak = probability
		m.normalStreak = 0
		if m.MinInterval > 0 && ts.Sub(m.lastNotify) < m.MinInterval {
			m.suppressed++
			return nil
		}
		m.lastNotify = ts
		return m.notify(ctx, Event{
			Series: m.Series, State: "open", Start: m.start,
			Points: m.points, PeakProbability: m.peak,
		})
	case anomalous:
		m.points++
		m.normalStreak = 0
		if probability > m.peak {
			m.peak = probability
		}
	case m.open:
		m.normalStreak++
		if m.normalStreak >= resolveAfter {
			e := Event{
				Series: m.Series, State: "resolved", Start: m.start, End: ts,
				Points: m.points, PeakProbability: m.peak,
			}
			m.open = false
			m.points = 0
			m.normalStreak = 0
			return m.notify(ctx, e)
		}
	}
	return nil
}

// notify must be called with the mutex held; the notifier itself runs
// synchronously so callers control the delivery context.
func (m *Manager) notify(ctx context.Context, e Event) error {
	if m.Notifier == nil {
		return nil
	}
	return m.Notifier.Notify(ctx, e)
}

// Open reports whether an incident is currently open.
func (m *Manager) Open() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.open
}

// Suppressed returns how many incident-open notifications were rate limited.
func (m *Manager) Suppressed() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.suppressed
}
