package alerting_test

// Fault-injection tests for the asynchronous notification pipeline. The
// tests live in an external test package so they can use the shared
// internal/faultinject harness (which itself imports alerting).
//
// Synchronization policy: no fixed sleeps and no poll loops. Every test
// waits on a channel — the pipeline's OnResult hook (fired once per
// accepted event when it resolves) or BlockingNotifier.Started — so the
// suite is deterministic under -race and -count=2.

import (
	"context"
	"errors"
	"io"
	"log/slog"
	"testing"
	"time"

	"opprentice/internal/alerting"
	"opprentice/internal/faultinject"
)

func quietCfg() alerting.PipelineConfig {
	return alerting.PipelineConfig{
		BaseDelay:       time.Millisecond,
		MaxDelay:        4 * time.Millisecond,
		BreakerCooldown: 5 * time.Millisecond,
		Log:             slog.New(slog.NewTextHandler(io.Discard, nil)),
	}
}

// hookResults installs an OnResult hook on cfg that forwards every resolved
// event's error to the returned channel.
func hookResults(cfg *alerting.PipelineConfig) <-chan error {
	ch := make(chan error, 64)
	cfg.OnResult = func(_ alerting.Event, err error) { ch <- err }
	return ch
}

// awaitResult blocks until one accepted event resolves, returning its
// delivery error (nil = delivered).
func awaitResult(t *testing.T, ch <-chan error) error {
	t.Helper()
	select {
	case err := <-ch:
		return err
	case <-time.After(10 * time.Second):
		t.Fatal("timed out waiting for a delivery result")
		return nil
	}
}

func event(series string) alerting.Event {
	return alerting.Event{Series: series, State: "open", Start: time.Now(), Points: 1}
}

func TestFaultPipelineRetriesFlakyNotifier(t *testing.T) {
	n := &faultinject.FlakyNotifier{FailFirst: 3}
	cfg := quietCfg()
	results := hookResults(&cfg)
	p := alerting.NewPipeline(n, cfg)
	defer p.Close()

	start := time.Now()
	if err := p.Notify(context.Background(), event("pv")); err != nil {
		t.Fatalf("Notify: %v", err)
	}
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Errorf("Notify blocked for %v; must be non-blocking", d)
	}
	if err := awaitResult(t, results); err != nil {
		t.Fatalf("delivery result = %v, want nil", err)
	}
	if got := n.Attempts(); got != 4 {
		t.Errorf("attempts = %d, want 4 (3 failures + 1 success)", got)
	}
	st := p.Stats()
	if st.Delivered != 1 || st.Retried != 3 || st.Dropped != 0 {
		t.Errorf("stats = %+v, want delivered=1 retried=3 dropped=0", st)
	}
	// Exactly once: the event resolved, so no further delivery may happen and
	// no second result may be pending.
	if got := len(n.Delivered()); got != 1 {
		t.Errorf("delivered %d times, want exactly 1", got)
	}
	select {
	case err := <-results:
		t.Errorf("unexpected second result %v for a single event", err)
	default:
	}
}

func TestFaultPipelineDropsAfterMaxAttempts(t *testing.T) {
	n := &faultinject.FailingNotifier{Err: errors.New("permanently down")}
	cfg := quietCfg()
	cfg.MaxAttempts = 3
	results := hookResults(&cfg)
	p := alerting.NewPipeline(n, cfg)
	defer p.Close()

	p.Notify(context.Background(), event("pv"))
	if err := awaitResult(t, results); err == nil {
		t.Fatal("delivery result = nil, want a max-attempts error")
	}
	st := p.Stats()
	if st.Delivered != 0 || st.Retried != 2 || st.Dropped != 1 {
		t.Errorf("stats = %+v, want delivered=0 retried=2 dropped=1", st)
	}
	if n.Attempts() != 3 {
		t.Errorf("attempts = %d, want 3", n.Attempts())
	}
}

func TestFaultPipelineQueueFullDropsNewest(t *testing.T) {
	n := faultinject.NewBlockingNotifier()
	defer n.Unblock()
	cfg := quietCfg()
	cfg.QueueSize = 1
	cfg.AttemptTimeout = time.Minute
	p := alerting.NewPipeline(n, cfg)
	defer p.Close()

	ctx := context.Background()
	// First event is picked up by the worker and blocks inside Notify.
	p.Notify(ctx, event("a"))
	select {
	case <-n.Started():
	case <-time.After(10 * time.Second):
		t.Fatal("timed out waiting for the worker to block in Notify")
	}
	// Second fills the queue; third must be rejected without blocking.
	if err := p.Notify(ctx, event("b")); err != nil {
		t.Fatalf("queued Notify: %v", err)
	}
	start := time.Now()
	err := p.Notify(ctx, event("c"))
	if !errors.Is(err, alerting.ErrQueueFull) {
		t.Errorf("err = %v, want ErrQueueFull", err)
	}
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Errorf("overflow Notify took %v; must not block", d)
	}
	if st := p.Stats(); st.Dropped != 1 {
		t.Errorf("dropped = %d, want 1", st.Dropped)
	}
}

func TestFaultPipelineCircuitBreakerTrips(t *testing.T) {
	n := &faultinject.FailingNotifier{}
	cfg := quietCfg()
	cfg.MaxAttempts = 4
	cfg.BreakerThreshold = 4
	cfg.BreakerCooldown = time.Hour // long enough to observe open state
	results := hookResults(&cfg)
	p := alerting.NewPipeline(n, cfg)
	defer p.Close()

	p.Notify(context.Background(), event("pv"))
	// The 4th consecutive failure trips the breaker and exhausts the attempt
	// budget, so the event resolves (dropped) with the breaker open.
	if err := awaitResult(t, results); err == nil {
		t.Fatal("delivery result = nil, want a max-attempts error")
	}
	if got := p.Stats().BreakerTrips; got < 1 {
		t.Errorf("breaker trips = %d, want >= 1", got)
	}
	if !p.BreakerOpen() {
		t.Error("breaker should be open after threshold consecutive failures")
	}
}

func TestFaultPipelineSandboxesPanickingNotifier(t *testing.T) {
	cfg := quietCfg()
	cfg.MaxAttempts = 2
	results := hookResults(&cfg)
	p := alerting.NewPipeline(faultinject.PanickingNotifier{}, cfg)
	defer p.Close()

	p.Notify(context.Background(), event("pv"))
	if err := awaitResult(t, results); err == nil {
		t.Fatal("delivery result = nil, want panic-as-failure drop")
	}
	if st := p.Stats(); st.Dropped != 1 || st.Retried != 1 {
		t.Errorf("stats = %+v, want dropped=1 retried=1 (panic treated as failure)", st)
	}
}

func TestFaultPipelineCloseDropsQueued(t *testing.T) {
	n := faultinject.NewBlockingNotifier()
	defer n.Unblock()
	cfg := quietCfg()
	cfg.QueueSize = 8
	cfg.AttemptTimeout = 10 * time.Millisecond
	results := hookResults(&cfg)
	p := alerting.NewPipeline(n, cfg)

	ctx := context.Background()
	for i := 0; i < 5; i++ {
		p.Notify(ctx, event("pv"))
	}
	p.Close() // must not hang; queued events become drops
	st := p.Stats()
	if st.Delivered+st.Dropped != st.Enqueued {
		t.Errorf("accounting leak: %+v", st)
	}
	// Every accepted event resolved exactly once, all as closed-drops.
	for i := int64(0); i < st.Enqueued; i++ {
		if err := awaitResult(t, results); err == nil {
			t.Error("result = nil after Close, want ErrPipelineClosed")
		}
	}
	select {
	case err := <-results:
		t.Errorf("more results than enqueued events: %v", err)
	default:
	}
	if err := p.Notify(ctx, event("pv")); !errors.Is(err, alerting.ErrPipelineClosed) {
		t.Errorf("Notify after Close = %v, want ErrPipelineClosed", err)
	}
}

func TestFaultPipelineDrain(t *testing.T) {
	n := &faultinject.FlakyNotifier{FailFirst: 2}
	p := alerting.NewPipeline(n, quietCfg())
	defer p.Close()
	p.Notify(context.Background(), event("pv"))
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := p.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if got := len(n.Delivered()); got != 1 {
		t.Errorf("delivered = %d after Drain, want 1", got)
	}
}
