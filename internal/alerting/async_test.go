package alerting_test

// Fault-injection tests for the asynchronous notification pipeline. The
// tests live in an external test package so they can use the shared
// internal/faultinject harness (which itself imports alerting).

import (
	"context"
	"errors"
	"io"
	"log/slog"
	"testing"
	"time"

	"opprentice/internal/alerting"
	"opprentice/internal/faultinject"
)

func quietCfg() alerting.PipelineConfig {
	return alerting.PipelineConfig{
		BaseDelay:       time.Millisecond,
		MaxDelay:        4 * time.Millisecond,
		BreakerCooldown: 5 * time.Millisecond,
		Log:             slog.New(slog.NewTextHandler(io.Discard, nil)),
	}
}

func event(series string) alerting.Event {
	return alerting.Event{Series: series, State: "open", Start: time.Now(), Points: 1}
}

// waitFor polls cond until true or the deadline.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestFaultPipelineRetriesFlakyNotifier(t *testing.T) {
	n := &faultinject.FlakyNotifier{FailFirst: 3}
	p := alerting.NewPipeline(n, quietCfg())
	defer p.Close()

	start := time.Now()
	if err := p.Notify(context.Background(), event("pv")); err != nil {
		t.Fatalf("Notify: %v", err)
	}
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Errorf("Notify blocked for %v; must be non-blocking", d)
	}
	waitFor(t, "delivery", func() bool { return len(n.Delivered()) == 1 })
	if got := n.Attempts(); got != 4 {
		t.Errorf("attempts = %d, want 4 (3 failures + 1 success)", got)
	}
	st := p.Stats()
	if st.Delivered != 1 || st.Retried != 3 || st.Dropped != 0 {
		t.Errorf("stats = %+v, want delivered=1 retried=3 dropped=0", st)
	}
	// Exactly once: no duplicate delivery after success.
	time.Sleep(20 * time.Millisecond)
	if got := len(n.Delivered()); got != 1 {
		t.Errorf("delivered %d times, want exactly 1", got)
	}
}

func TestFaultPipelineDropsAfterMaxAttempts(t *testing.T) {
	n := &faultinject.FailingNotifier{Err: errors.New("permanently down")}
	cfg := quietCfg()
	cfg.MaxAttempts = 3
	p := alerting.NewPipeline(n, cfg)
	defer p.Close()

	p.Notify(context.Background(), event("pv"))
	waitFor(t, "drop", func() bool { return p.Stats().Dropped == 1 })
	st := p.Stats()
	if st.Delivered != 0 || st.Retried != 2 {
		t.Errorf("stats = %+v, want delivered=0 retried=2", st)
	}
	if n.Attempts() != 3 {
		t.Errorf("attempts = %d, want 3", n.Attempts())
	}
}

func TestFaultPipelineQueueFullDropsNewest(t *testing.T) {
	n := faultinject.NewBlockingNotifier()
	defer n.Unblock()
	cfg := quietCfg()
	cfg.QueueSize = 1
	cfg.AttemptTimeout = time.Minute
	p := alerting.NewPipeline(n, cfg)
	defer p.Close()

	ctx := context.Background()
	// First event is picked up by the worker and blocks inside Notify.
	p.Notify(ctx, event("a"))
	waitFor(t, "worker blocked", func() bool { return n.Blocked() == 1 })
	// Second fills the queue; third must be rejected without blocking.
	if err := p.Notify(ctx, event("b")); err != nil {
		t.Fatalf("queued Notify: %v", err)
	}
	start := time.Now()
	err := p.Notify(ctx, event("c"))
	if !errors.Is(err, alerting.ErrQueueFull) {
		t.Errorf("err = %v, want ErrQueueFull", err)
	}
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Errorf("overflow Notify took %v; must not block", d)
	}
	if st := p.Stats(); st.Dropped != 1 {
		t.Errorf("dropped = %d, want 1", st.Dropped)
	}
}

func TestFaultPipelineCircuitBreakerTrips(t *testing.T) {
	n := &faultinject.FailingNotifier{}
	cfg := quietCfg()
	cfg.MaxAttempts = 4
	cfg.BreakerThreshold = 4
	cfg.BreakerCooldown = time.Hour // long enough to observe open state
	p := alerting.NewPipeline(n, cfg)
	defer p.Close()

	p.Notify(context.Background(), event("pv"))
	waitFor(t, "breaker trip", func() bool { return p.Stats().BreakerTrips >= 1 })
	if !p.BreakerOpen() {
		t.Error("breaker should be open after threshold consecutive failures")
	}
}

func TestFaultPipelineSandboxesPanickingNotifier(t *testing.T) {
	cfg := quietCfg()
	cfg.MaxAttempts = 2
	p := alerting.NewPipeline(faultinject.PanickingNotifier{}, cfg)
	defer p.Close()

	p.Notify(context.Background(), event("pv"))
	waitFor(t, "drop after panics", func() bool { return p.Stats().Dropped == 1 })
	if st := p.Stats(); st.Retried != 1 {
		t.Errorf("retried = %d, want 1 (panic treated as failure)", st.Retried)
	}
}

func TestFaultPipelineCloseDropsQueued(t *testing.T) {
	n := faultinject.NewBlockingNotifier()
	defer n.Unblock()
	cfg := quietCfg()
	cfg.QueueSize = 8
	cfg.AttemptTimeout = 10 * time.Millisecond
	p := alerting.NewPipeline(n, cfg)

	ctx := context.Background()
	for i := 0; i < 5; i++ {
		p.Notify(ctx, event("pv"))
	}
	p.Close() // must not hang; queued events become drops
	st := p.Stats()
	if st.Delivered+st.Dropped != st.Enqueued {
		t.Errorf("accounting leak: %+v", st)
	}
	if err := p.Notify(ctx, event("pv")); !errors.Is(err, alerting.ErrPipelineClosed) {
		t.Errorf("Notify after Close = %v, want ErrPipelineClosed", err)
	}
}

func TestFaultPipelineDrain(t *testing.T) {
	n := &faultinject.FlakyNotifier{FailFirst: 2}
	p := alerting.NewPipeline(n, quietCfg())
	defer p.Close()
	p.Notify(context.Background(), event("pv"))
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := p.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if got := len(n.Delivered()); got != 1 {
		t.Errorf("delivered = %d after Drain, want 1", got)
	}
}
