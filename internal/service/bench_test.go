package service

// Handler-level ingest benchmarks: points POSTs served straight through
// http.Handler.ServeHTTP (no TCP), isolating decode + series mutation +
// verdict cost. Together with the engine-level BenchmarkEngineAppend at the
// repo root these quantify the ingest hot path before/after the sharded
// engine refactor (numbers in EXPERIMENTS.md).

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// benchServer builds a server with nSeries untrained hourly series and
// returns its handler plus a pre-marshaled points body of batch values.
func benchServer(b *testing.B, nSeries, batch int) (http.Handler, [][]byte, []string) {
	b.Helper()
	s := NewServer(slog.New(slog.NewTextHandler(io.Discard, nil)))
	h := s.Handler()
	start := time.Date(2015, 1, 5, 0, 0, 0, 0, time.UTC)
	names := make([]string, nSeries)
	bodies := make([][]byte, nSeries)
	pts := make([]Point, batch)
	for i := range pts {
		pts[i] = Point{Value: float64(i % 97)}
	}
	body, err := json.Marshal(PointsRequest{Points: pts})
	if err != nil {
		b.Fatal(err)
	}
	for i := range names {
		names[i] = fmt.Sprintf("kpi%03d", i)
		cr, _ := json.Marshal(CreateRequest{IntervalSeconds: 3600, Start: start})
		req := httptest.NewRequest(http.MethodPut, "/v1/series/"+names[i], bytes.NewReader(cr))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != http.StatusCreated {
			b.Fatalf("create %s: %d %s", names[i], w.Code, w.Body.String())
		}
		bodies[i] = body
	}
	return h, bodies, names
}

// BenchmarkHandlePoints/serial-1series measures one client streaming batches
// into one series; parallel-64series measures 64 series ingesting from
// parallel clients (the multi-tenant contention shape).
func BenchmarkHandlePoints(b *testing.B) {
	const batch = 256
	b.Run("serial-1series", func(b *testing.B) {
		h, bodies, names := benchServer(b, 1, batch)
		url := "/v1/series/" + names[0] + "/points"
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			req := httptest.NewRequest(http.MethodPost, url, bytes.NewReader(bodies[0]))
			w := httptest.NewRecorder()
			h.ServeHTTP(w, req)
			if w.Code != http.StatusOK {
				b.Fatalf("points: %d %s", w.Code, w.Body.String())
			}
		}
		b.SetBytes(int64(batch))
	})
	b.Run("parallel-64series", func(b *testing.B) {
		h, bodies, names := benchServer(b, 64, batch)
		var next atomic.Int64
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := int(next.Add(1)-1) % len(names)
			url := "/v1/series/" + names[i] + "/points"
			for pb.Next() {
				req := httptest.NewRequest(http.MethodPost, url, bytes.NewReader(bodies[i]))
				w := httptest.NewRecorder()
				h.ServeHTTP(w, req)
				if w.Code != http.StatusOK {
					b.Fatalf("points: %d %s", w.Code, w.Body.String())
				}
			}
		})
		b.SetBytes(int64(batch))
	})
}
