package service

import (
	"fmt"
	"net/http"
	"sort"
	"sync/atomic"
	"time"

	"opprentice/internal/alerting"
)

// metrics are the service's operational counters, exposed in the Prometheus
// text format at GET /v1/metrics so a fleet of opprenticed instances can be
// monitored by the usual scrapers (fittingly, perhaps by Opprentice itself).
type metrics struct {
	pointsIngested  atomic.Int64
	alarmsRaised    atomic.Int64
	trainingsRun    atomic.Int64
	trainingSeconds atomic.Int64 // milliseconds, summed (named for the metric)
	requestErrors   atomic.Int64
	detectorPanics  atomic.Int64 // sandboxed detector panics (training + online)
	walQuarantined  atomic.Int64 // corrupt series logs set aside during Restore
}

// handleMetrics renders the Prometheus text exposition format. Only
// first-party counters and per-series gauges are exposed; no external
// client library is needed for this subset of the format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")

	writeCounter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	writeCounter("opprenticed_points_ingested_total", "Points appended across all series.", s.metrics.pointsIngested.Load())
	writeCounter("opprenticed_alarms_raised_total", "Anomalous verdicts across all series.", s.metrics.alarmsRaised.Load())
	writeCounter("opprenticed_trainings_total", "Classifier (re)trainings across all series.", s.metrics.trainingsRun.Load())
	writeCounter("opprenticed_request_errors_total", "Requests answered with a non-2xx status.", s.metrics.requestErrors.Load())
	writeCounter("opprenticed_detector_panics_total", "Detector configuration panics sandboxed into degraded features.", s.metrics.detectorPanics.Load())
	writeCounter("opprenticed_wal_quarantined_total", "Corrupt series logs quarantined during restore.", s.metrics.walQuarantined.Load())
	fmt.Fprintf(w, "# HELP opprenticed_training_seconds_total Cumulative training wall time.\n# TYPE opprenticed_training_seconds_total counter\nopprenticed_training_seconds_total %.3f\n",
		float64(s.metrics.trainingSeconds.Load())/1000)

	// Per-series gauges + notification pipeline counters.
	s.mu.RLock()
	names := make([]string, 0, len(s.series))
	for name := range s.series {
		names = append(names, name)
	}
	s.mu.RUnlock()
	sort.Strings(names)
	type snap struct {
		name            string
		points, windows int
		trained         bool
		cthld           float64
		degraded        int
		notify          alerting.Stats
	}
	snaps := make([]snap, 0, len(names))
	var notify alerting.Stats
	for _, name := range names {
		s.mu.RLock()
		m := s.series[name]
		s.mu.RUnlock()
		if m == nil {
			continue
		}
		m.mu.Lock()
		sn := snap{name: name, points: m.series.Len(), windows: len(m.labels.Windows()), trained: m.monitor != nil}
		if sn.trained {
			sn.cthld = m.monitor.CThld()
			sn.degraded = m.monitor.DegradedDetectors()
		}
		if m.pipeline != nil {
			sn.notify = m.pipeline.Stats()
		}
		m.mu.Unlock()
		notify.Enqueued += sn.notify.Enqueued
		notify.Delivered += sn.notify.Delivered
		notify.Retried += sn.notify.Retried
		notify.Dropped += sn.notify.Dropped
		snaps = append(snaps, sn)
	}
	writeCounter("opprenticed_notify_delivered_total", "Incident events acknowledged by notifiers.", notify.Delivered)
	writeCounter("opprenticed_notify_retries_total", "Incident delivery attempts beyond each event's first.", notify.Retried)
	writeCounter("opprenticed_notify_dropped_total", "Incident events dropped (queue full, max attempts, shutdown).", notify.Dropped)
	fmt.Fprintf(w, "# HELP opprenticed_series_points Points stored per series.\n# TYPE opprenticed_series_points gauge\n")
	for _, sn := range snaps {
		fmt.Fprintf(w, "opprenticed_series_points{series=%q} %d\n", sn.name, sn.points)
	}
	fmt.Fprintf(w, "# HELP opprenticed_series_labeled_windows Labeled anomalous windows per series.\n# TYPE opprenticed_series_labeled_windows gauge\n")
	for _, sn := range snaps {
		fmt.Fprintf(w, "opprenticed_series_labeled_windows{series=%q} %d\n", sn.name, sn.windows)
	}
	fmt.Fprintf(w, "# HELP opprenticed_series_cthld Current classification threshold per trained series.\n# TYPE opprenticed_series_cthld gauge\n")
	for _, sn := range snaps {
		if sn.trained {
			fmt.Fprintf(w, "opprenticed_series_cthld{series=%q} %.4f\n", sn.name, sn.cthld)
		}
	}
	fmt.Fprintf(w, "# HELP opprenticed_series_degraded_detectors Detector configurations currently sandboxed (dead) per trained series.\n# TYPE opprenticed_series_degraded_detectors gauge\n")
	for _, sn := range snaps {
		if sn.trained {
			fmt.Fprintf(w, "opprenticed_series_degraded_detectors{series=%q} %d\n", sn.name, sn.degraded)
		}
	}
}

// observeTraining records one training round's wall time.
func (m *metrics) observeTraining(d time.Duration) {
	m.trainingsRun.Add(1)
	m.trainingSeconds.Add(d.Milliseconds())
}
