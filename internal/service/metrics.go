package service

import (
	"fmt"
	"net/http"
	"sync/atomic"

	"opprentice/internal/alerting"
)

// metrics are the transport layer's own counters. Everything else — ingest,
// training, alarms, WAL health, per-series gauges — lives in the engine and
// is read via engine.Counters / engine.MetricsSnapshot at scrape time.
type metrics struct {
	requestErrors atomic.Int64
}

// handleMetrics renders the Prometheus text exposition format. Only
// first-party counters and per-series gauges are exposed; no external
// client library is needed for this subset of the format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")

	writeCounter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	c := s.eng.Counters()
	writeCounter("opprenticed_points_ingested_total", "Points appended across all series.", c.PointsIngested)
	writeCounter("opprenticed_alarms_raised_total", "Anomalous verdicts across all series.", c.AlarmsRaised)
	writeCounter("opprenticed_trainings_total", "Classifier (re)trainings across all series.", c.TrainingsRun)
	writeCounter("opprenticed_request_errors_total", "Requests answered with a non-2xx status.", s.metrics.requestErrors.Load())
	writeCounter("opprenticed_detector_panics_total", "Detector configuration panics sandboxed into degraded features.", c.DetectorPanics)
	writeCounter("opprenticed_wal_quarantined_total", "Corrupt series logs quarantined during restore.", c.WALQuarantined)
	writeCounter("opprenticed_wal_append_errors_total", "Durable appends that failed; the affected points are live in memory only.", c.WALAppendErrors)
	fmt.Fprintf(w, "# HELP opprenticed_training_seconds_total Cumulative training wall time.\n# TYPE opprenticed_training_seconds_total counter\nopprenticed_training_seconds_total %.3f\n",
		c.TrainingSeconds)

	// Model registry: publish/restore/rollback outcomes and restart cost.
	writeCounter("opprenticed_model_publish_total", "Model artifacts published to the registry.", c.ModelPublishes)
	writeCounter("opprenticed_model_publish_errors_total", "Model artifact publications that failed.", c.ModelPublishErrors)
	fmt.Fprintf(w, "# HELP opprenticed_model_restore_total Series restored at startup, by mode (warm = published artifact, cold = synchronous retrain).\n# TYPE opprenticed_model_restore_total counter\n")
	fmt.Fprintf(w, "opprenticed_model_restore_total{mode=\"warm\"} %d\n", c.ModelRestoreWarm)
	fmt.Fprintf(w, "opprenticed_model_restore_total{mode=\"cold\"} %d\n", c.ModelRestoreCold)
	writeCounter("opprenticed_model_checksum_failures_total", "Model artifacts or manifests that failed validation and were quarantined.", c.ModelChecksumFailures)
	writeCounter("opprenticed_model_rollbacks_total", "Explicit model rollbacks.", c.ModelRollbacks)
	fmt.Fprintf(w, "# HELP opprenticed_restore_seconds Wall time of the last restore pass.\n# TYPE opprenticed_restore_seconds gauge\nopprenticed_restore_seconds %.3f\n",
		c.RestoreSeconds)

	// Overload and supervision (DESIGN.md §11): admission sheds,
	// degraded-mode transitions, buffered/lost WAL points, and watchdog
	// activity on the training workers.
	writeCounter("opprenticed_ingest_sheds_total", "Point batches shed whole by admission control (HTTP 429).", c.IngestSheds)
	writeCounter("opprenticed_degraded_entered_total", "Series transitions into degraded (threshold-only) serving.", c.DegradedEntered)
	writeCounter("opprenticed_degraded_recovered_total", "Series recoveries out of degraded serving.", c.DegradedRecovered)
	writeCounter("opprenticed_wal_buffered_points_total", "Points buffered by degraded background WAL writers.", c.WALBufferedPoints)
	writeCounter("opprenticed_wal_lost_points_total", "Points dropped from the log because a degraded buffer overflowed.", c.WALLostPoints)
	writeCounter("opprenticed_train_stalls_total", "Training/publish rounds abandoned by the watchdog.", c.TrainStalls)
	writeCounter("opprenticed_train_retries_total", "Watchdog-driven retrain retries.", c.TrainRetries)
	writeCounter("opprenticed_series_quarantined_total", "Series whose training was quarantined after repeated failures.", c.SeriesQuarantined)
	writeCounter("opprenticed_worker_panics_total", "Recovered panics in supervised background workers.", c.WorkerPanics)
	ready := s.eng.Ready()
	fmt.Fprintf(w, "# HELP opprenticed_series_degraded Series currently in degraded (threshold-only) serving.\n# TYPE opprenticed_series_degraded gauge\nopprenticed_series_degraded %d\n", len(ready.Degraded))
	fmt.Fprintf(w, "# HELP opprenticed_series_quarantined Series whose training is currently quarantined.\n# TYPE opprenticed_series_quarantined gauge\nopprenticed_series_quarantined %d\n", len(ready.Quarantined))

	// Incremental feature-extraction cache: work done per mode, current
	// footprint, and whole-cache invalidations.
	fmt.Fprintf(w, "# HELP opprenticed_extract_points_total Point-by-configuration severity computations during training extraction, by mode.\n# TYPE opprenticed_extract_points_total counter\n")
	fmt.Fprintf(w, "opprenticed_extract_points_total{mode=\"cold\"} %d\n", c.ExtractPointsCold)
	fmt.Fprintf(w, "opprenticed_extract_points_total{mode=\"incremental\"} %d\n", c.ExtractPointsIncremental)
	fmt.Fprintf(w, "# HELP opprenticed_extract_cache_bytes Current feature-extraction cache footprint across all series.\n# TYPE opprenticed_extract_cache_bytes gauge\nopprenticed_extract_cache_bytes %d\n", c.ExtractCacheBytes)
	writeCounter("opprenticed_extract_cache_invalidations_total", "Whole-cache invalidations (prefix mismatch, configuration change, cap overflow).", c.ExtractCacheInvalidated)

	// Active learning (DESIGN.md §14): answered label queries and retrains
	// armed by the concept-drift detector ahead of the fixed tick.
	writeCounter("opprenticed_queries_answered_total", "Label queries answered via POST /v1/queries/{series}/answer.", c.QueriesAnswered)
	writeCounter("opprenticed_drift_retrains_total", "Retrains armed by the concept-drift detector before the retrain tick.", c.DriftRetrains)

	// Per-series gauges + notification pipeline counters.
	snaps := s.eng.MetricsSnapshot()
	var notify alerting.Stats
	for _, sn := range snaps {
		notify.Enqueued += sn.Notify.Enqueued
		notify.Delivered += sn.Notify.Delivered
		notify.Retried += sn.Notify.Retried
		notify.Dropped += sn.Notify.Dropped
	}
	writeCounter("opprenticed_notify_delivered_total", "Incident events acknowledged by notifiers.", notify.Delivered)
	writeCounter("opprenticed_notify_retries_total", "Incident delivery attempts beyond each event's first.", notify.Retried)
	writeCounter("opprenticed_notify_dropped_total", "Incident events dropped (queue full, max attempts, shutdown).", notify.Dropped)
	fmt.Fprintf(w, "# HELP opprenticed_series_points Points stored per series.\n# TYPE opprenticed_series_points gauge\n")
	for _, sn := range snaps {
		fmt.Fprintf(w, "opprenticed_series_points{series=%q} %d\n", sn.Name, sn.Points)
	}
	fmt.Fprintf(w, "# HELP opprenticed_series_labeled_windows Labeled anomalous windows per series.\n# TYPE opprenticed_series_labeled_windows gauge\n")
	for _, sn := range snaps {
		fmt.Fprintf(w, "opprenticed_series_labeled_windows{series=%q} %d\n", sn.Name, sn.LabeledWindows)
	}
	fmt.Fprintf(w, "# HELP opprenticed_series_cthld Current classification threshold per trained series.\n# TYPE opprenticed_series_cthld gauge\n")
	for _, sn := range snaps {
		if sn.Trained {
			fmt.Fprintf(w, "opprenticed_series_cthld{series=%q} %.4f\n", sn.Name, sn.CThld)
		}
	}
	fmt.Fprintf(w, "# HELP opprenticed_series_degraded_detectors Detector configurations currently sandboxed (dead) per trained series.\n# TYPE opprenticed_series_degraded_detectors gauge\n")
	for _, sn := range snaps {
		if sn.Trained {
			fmt.Fprintf(w, "opprenticed_series_degraded_detectors{series=%q} %d\n", sn.Name, sn.DegradedDetectors)
		}
	}
	fmt.Fprintf(w, "# HELP opprenticed_query_queue_depth Pending label queries per series.\n# TYPE opprenticed_query_queue_depth gauge\n")
	for _, sn := range snaps {
		fmt.Fprintf(w, "opprenticed_query_queue_depth{series=%q} %d\n", sn.Name, sn.PendingQueries)
	}
	fmt.Fprintf(w, "# HELP opprenticed_drift_score PSI of the last completed drift comparison window per series.\n# TYPE opprenticed_drift_score gauge\n")
	for _, sn := range snaps {
		fmt.Fprintf(w, "opprenticed_drift_score{series=%q} %.4f\n", sn.Name, sn.DriftScore)
	}
}
