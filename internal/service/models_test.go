package service

import (
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"opprentice/internal/kpigen"
	modelreg "opprentice/internal/registry"
)

// TestModelRoutesWithoutRegistry: the /v1/models routes answer 400 when the
// daemon runs without -model-dir, instead of pretending an empty registry.
func TestModelRoutesWithoutRegistry(t *testing.T) {
	ts := newTestServer(t)
	for _, c := range []struct{ method, path string }{
		{http.MethodGet, "/v1/models"},
		{http.MethodGet, "/v1/models/pv"},
		{http.MethodPost, "/v1/models/pv/rollback"},
	} {
		resp, body := doJSON(t, c.method, ts.URL+c.path, nil)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s %s without registry: %d %s, want 400", c.method, c.path, resp.StatusCode, body)
		}
	}
}

// TestModelLifecycleOverHTTP drives publish → list → inspect → rollback over
// the wire, including the typed client, and checks the Prometheus exposition
// of the model counters.
func TestModelLifecycleOverHTTP(t *testing.T) {
	s := NewServer(slog.New(slog.NewTextHandler(io.Discard, nil)))
	models, err := modelreg.Open(modelreg.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	s.SetModels(models)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })

	createSeries(t, ts, "pv", 3600)
	p := kpigen.PV(kpigen.Small)
	p.Interval = time.Hour
	p.Weeks = 9
	d := kpigen.Generate(p, 61)
	pts := make([]Point, len(d.Series.Values))
	for i, v := range d.Series.Values {
		pts[i] = Point{Value: v}
	}
	if resp, body := doJSON(t, http.MethodPost, ts.URL+"/v1/series/pv/points", PointsRequest{Points: pts}); resp.StatusCode != http.StatusOK {
		t.Fatalf("points: %d %s", resp.StatusCode, body)
	}
	var windows []LabelWindow
	for _, win := range d.Labels.Windows() {
		windows = append(windows, LabelWindow{Start: win.Start, End: win.End, Anomalous: true})
	}
	if resp, body := doJSON(t, http.MethodPost, ts.URL+"/v1/series/pv/labels", LabelsRequest{Windows: windows}); resp.StatusCode != http.StatusOK {
		t.Fatalf("labels: %d %s", resp.StatusCode, body)
	}

	// Two trainings → two published generations (flushed deterministically).
	for i := 0; i < 2; i++ {
		if resp, body := doJSON(t, http.MethodPost, ts.URL+"/v1/series/pv/train", nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("train %d: %d %s", i, resp.StatusCode, body)
		}
		s.Engine().PublishModels()
	}

	client := NewClient(ts.URL, nil)
	ctx := context.Background()

	names, err := client.Models(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "pv" {
		t.Fatalf("models list = %v, want [pv]", names)
	}

	man, err := client.ModelManifest(ctx, "pv")
	if err != nil {
		t.Fatal(err)
	}
	if man.Series != "pv" || man.Current != 2 || len(man.Generations) != 2 {
		t.Fatalf("manifest = %+v, want series pv current 2 over 2 generations", man)
	}
	if man.Generations[0].Fingerprint == 0 || man.Generations[0].Size == 0 {
		t.Fatalf("generation entry incomplete: %+v", man.Generations[0])
	}

	// Unknown series → 404 through the error-kind mapping.
	if _, err := client.ModelManifest(ctx, "nope"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("manifest of unknown series: %v, want 404", err)
	}

	man, err = client.RollbackModel(ctx, "pv")
	if err != nil {
		t.Fatal(err)
	}
	if man.Current != 1 {
		t.Fatalf("current = %d after rollback, want 1", man.Current)
	}
	// No older generation left → 422.
	if _, err := client.RollbackModel(ctx, "pv"); err == nil || !strings.Contains(err.Error(), "422") {
		t.Fatalf("rollback past oldest: %v, want 422", err)
	}

	// The wire shape is the registry's JSON: round-trip a raw GET.
	resp, body := doJSON(t, http.MethodGet, ts.URL+"/v1/models/pv", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("manifest GET: %d %s", resp.StatusCode, body)
	}
	var raw modelreg.Manifest
	if err := json.Unmarshal(body, &raw); err != nil {
		t.Fatalf("manifest wire shape: %v in %s", err, body)
	}

	// Prometheus exposition carries the model counters.
	resp, body = doJSON(t, http.MethodGet, ts.URL+"/v1/metrics", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", resp.StatusCode)
	}
	text := string(body)
	for _, want := range []string{
		"opprenticed_model_publish_total 2",
		`opprenticed_model_restore_total{mode="warm"} 0`,
		`opprenticed_model_restore_total{mode="cold"} 0`,
		"opprenticed_model_rollbacks_total 1",
		"opprenticed_model_checksum_failures_total 0",
		"opprenticed_restore_seconds",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
}
