package service

// Streaming ingest racing concurrent retrains. The engine's snapshot → fit →
// replay+swap protocol promises exactly one verdict per appended point even
// when the monitor is swapped mid-stream; this drives that seam over the
// binary /v1/ingest path while synchronous retrains fire from another
// goroutine. Run under -race via make engine-race, where the interleaving
// between the ingest flush groups and the swap is varied across -count runs.

import (
	"context"
	"net/http"
	"testing"
	"time"

	"opprentice/internal/kpigen"
)

func TestIngestStreamConcurrentRetrain(t *testing.T) {
	if testing.Short() {
		t.Skip("trains models")
	}
	ts := newTestServer(t)
	createSeries(t, ts, "pv", 3600)

	// Bootstrap 9 labeled weeks and train once, as in TestFullLifecycle.
	p := kpigen.PV(kpigen.Small)
	p.Interval = time.Hour
	p.Weeks = 9
	d := kpigen.Generate(p, 52)
	c := NewClient(ts.URL, nil)
	boot, err := c.StreamPoints(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := boot.Send("pv", d.Series.Values); err != nil {
		t.Fatal(err)
	}
	if _, err := boot.Close(); err != nil {
		t.Fatal(err)
	}
	var windows []LabelWindow
	for _, win := range d.Labels.Windows() {
		windows = append(windows, LabelWindow{Start: win.Start, End: win.End, Anomalous: true})
	}
	if resp, body := doJSON(t, http.MethodPost, ts.URL+"/v1/series/pv/labels", LabelsRequest{Windows: windows}); resp.StatusCode != http.StatusOK {
		t.Fatalf("labels: %d %s", resp.StatusCode, body)
	}
	if resp, body := doJSON(t, http.MethodPost, ts.URL+"/v1/series/pv/train", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("train: %d %s", resp.StatusCode, body)
	}

	// Stream a continuation in small batches while retrains fire
	// concurrently: every batch lands either on the old monitor, the new
	// one, or in the mid-train replay window — and must be verdicted
	// exactly once either way.
	cont := kpigen.Generate(p, 53).Series.Values[:240]
	retrains := make(chan error, 1)
	go func() {
		defer close(retrains)
		for i := 0; i < 3; i++ {
			req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/series/pv/train", nil)
			if err != nil {
				retrains <- err
				return
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				retrains <- err
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				retrains <- &APIError{StatusCode: resp.StatusCode, Message: "concurrent retrain failed"}
				return
			}
		}
	}()

	st, err := c.StreamPoints(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	sent, batches := 0, 0
	for lo := 0; lo < len(cont); lo += 8 {
		hi := lo + 8
		if hi > len(cont) {
			hi = len(cont)
		}
		if err := st.Send("pv", cont[lo:hi]); err != nil {
			t.Fatal(err)
		}
		sent += hi - lo
		batches++
	}
	sum, err := st.Close()
	if err != nil {
		t.Fatal(err)
	}
	if err := <-retrains; err != nil {
		t.Fatal(err)
	}
	if sum.Appended != sent || sum.Batches != batches {
		t.Fatalf("summary = %+v, want %d points / %d batches: a mid-swap batch was lost or double-applied", sum, sent, batches)
	}
	status, err := c.Status(context.Background(), "pv")
	if err != nil {
		t.Fatal(err)
	}
	if want := d.Series.Len() + sent; status.Points != want {
		t.Fatalf("series has %d points, want %d", status.Points, want)
	}
	if !status.Trained {
		t.Fatal("series lost its trained monitor across concurrent retrains")
	}
}
