package service

import (
	"context"
	"errors"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"opprentice/internal/engine"
	"opprentice/internal/kpigen"
)

// TestQueryEndpoints drives the query lifecycle over HTTP with the typed
// client: surface → answer → consumed, plus the Prometheus gauges. A query
// band of 1.0 makes every trained verdict a candidate so the test is
// deterministic.
func TestQueryEndpoints(t *testing.T) {
	log := slog.New(slog.NewTextHandler(io.Discard, nil))
	s := NewServerWithEngine(engine.New(engine.Config{
		Log:       log,
		QueryBand: 1, QueryDepth: 4, DriftThreshold: -1,
	}), log)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(s.Close)
	c := NewClient(ts.URL, nil)
	ctx := context.Background()

	if err := c.Create(ctx, "pv", CreateRequest{IntervalSeconds: 3600, Start: testStart, Trees: 10}); err != nil {
		t.Fatal(err)
	}
	p := kpigen.PV(kpigen.Small)
	p.Interval = time.Hour
	p.Weeks = 9
	d := kpigen.Generate(p, 51)
	ppw, err := d.Series.PointsPerWeek()
	if err != nil {
		t.Fatal(err)
	}
	boot := 8 * ppw
	pts := make([]Point, boot)
	for i := range pts {
		pts[i] = Point{Value: d.Series.Values[i]}
	}
	if _, err := c.Append(ctx, "pv", pts); err != nil {
		t.Fatal(err)
	}
	var windows []LabelWindow
	for _, w := range d.Labels.Windows() {
		if w.End <= boot {
			windows = append(windows, LabelWindow{Start: w.Start, End: w.End, Anomalous: true})
		}
	}
	if err := c.Label(ctx, "pv", windows); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Train(ctx, "pv"); err != nil {
		t.Fatal(err)
	}

	// No trained verdicts yet: the queue is empty but the route works.
	qs, err := c.Queries(ctx, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 0 {
		t.Fatalf("queries before trained appends: %+v", qs)
	}

	stream := make([]Point, 24)
	for i := range stream {
		stream[i] = Point{Value: d.Series.Values[boot+i]}
	}
	if _, err := c.Append(ctx, "pv", stream); err != nil {
		t.Fatal(err)
	}

	qs, err = c.Queries(ctx, "pv")
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) == 0 {
		t.Fatal("no queries surfaced with band 1.0")
	}
	q := qs[0]
	if q.Series != "pv" || q.End <= q.Start || q.Score <= 0 {
		t.Fatalf("malformed query %+v", q)
	}

	// Filtering by an unknown series is a 404, mapped like every lookup.
	if _, err := c.Queries(ctx, "nope"); err == nil {
		t.Fatal("unknown series filter succeeded")
	} else {
		var apiErr *APIError
		if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusNotFound {
			t.Fatalf("unknown series filter: %v, want 404", err)
		}
	}

	if err := c.AnswerQuery(ctx, "pv", q.Start, q.End, true); err != nil {
		t.Fatalf("AnswerQuery: %v", err)
	}
	// The answer landed as labels.
	st, err := c.Status(ctx, "pv")
	if err != nil {
		t.Fatal(err)
	}
	if st.AnomalousPoints < q.End-q.Start {
		t.Fatalf("answer did not label: status %+v", st)
	}
	// Re-answering the consumed query is a 422.
	if err := c.AnswerQuery(ctx, "pv", q.Start, q.End, true); err == nil {
		t.Fatal("re-answer succeeded")
	} else {
		var apiErr *APIError
		if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusUnprocessableEntity {
			t.Fatalf("re-answer: %v, want 422", err)
		}
	}

	// The new metrics are exposed.
	resp, body := doJSON(t, http.MethodGet, ts.URL+"/v1/metrics", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", resp.StatusCode)
	}
	text := string(body)
	for _, want := range []string{
		"opprenticed_queries_answered_total 1",
		"opprenticed_drift_retrains_total 0",
		`opprenticed_query_queue_depth{series="pv"}`,
		`opprenticed_drift_score{series="pv"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
}
