package service

import (
	"html/template"
	"net/http"
	"time"

	"opprentice/internal/report"
)

// dashboard is the daemon's human-facing front page (GET /): one card per
// monitored series with a sparkline of the most recent points, labeling and
// training state, and the latest alarms — the at-a-glance view an on-call
// operator wants before deciding to open the labeling tool.

// dashboardWindow is how many trailing points each sparkline shows.
const dashboardWindow = 500

type dashboardSeries struct {
	Name       string
	Points     int
	Windows    int
	Trained    bool
	CThld      float64
	Spark      template.HTML
	LastAlarms []Alarm
}

type dashboardData struct {
	Generated time.Time
	Series    []dashboardSeries
}

func (s *Server) handleDashboard(w http.ResponseWriter, r *http.Request) {
	data := dashboardData{Generated: time.Now().UTC()}
	for _, name := range s.eng.Names() {
		ins, ok := s.eng.Inspect(name, dashboardWindow, 5)
		if !ok {
			continue // deleted between Names and here
		}
		data.Series = append(data.Series, dashboardSeries{
			Name:       name,
			Points:     ins.Points,
			Windows:    ins.LabeledWindows,
			Trained:    ins.Trained,
			CThld:      ins.CThld,
			Spark:      report.Sparkline(ins.Recent, 420, 64),
			LastAlarms: ins.LastAlarms,
		})
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_ = dashboardTemplate.Execute(w, data)
}

var dashboardTemplate = template.Must(template.New("dash").Parse(`<!DOCTYPE html>
<html lang="en"><head><meta charset="utf-8"><title>opprenticed</title>
<meta http-equiv="refresh" content="30">
<style>
body { font: 14px/1.5 system-ui, sans-serif; margin: 2rem auto; max-width: 64rem; color: #222; }
.card { border: 1px solid #ddd; border-radius: 6px; padding: 1rem; margin: 1rem 0; }
.card h2 { margin: 0 0 .4rem; }
.meta { color: #555; font-size: 13px; }
.alarm { color: #b3261e; font-variant-numeric: tabular-nums; }
.empty { color: #777; }
</style></head><body>
<h1>opprenticed</h1>
<p class="meta">generated {{.Generated.Format "2006-01-02 15:04:05 MST"}} · auto-refreshes every 30 s</p>
{{if not .Series}}<p class="empty">No series yet. Create one:
<code>curl -X PUT .../v1/series/pv -d '{"interval_seconds":60,"start":"..."}'</code></p>{{end}}
{{range .Series}}
<div class="card">
<h2>{{.Name}}</h2>
<div>{{.Spark}}</div>
<p class="meta">{{.Points}} points · {{.Windows}} labeled windows ·
{{if .Trained}}trained, cThld {{printf "%.3f" .CThld}}{{else}}not trained yet{{end}}</p>
{{if .LastAlarms}}<p>recent alarms:</p><ul>
{{range .LastAlarms}}<li class="alarm">{{.Time.Format "2006-01-02 15:04"}} — value {{printf "%.4g" .Value}} (p={{printf "%.2f" .Probability}})</li>{{end}}
</ul>{{else}}<p class="empty">no alarms</p>{{end}}
</div>
{{end}}
</body></html>
`))
