package service

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"testing"
)

// FuzzHandlePoints throws arbitrary request bodies at the points endpoint and
// checks the handler's contract under garbage: it never panics, always answers
// JSON, only uses the documented status codes, keeps rejected batches atomic
// (the stored point count must not move on a non-2xx), and reports an accepted
// count consistent with the stored point count on a 2xx.
func FuzzHandlePoints(f *testing.F) {
	s := NewServer(slog.New(slog.NewTextHandler(io.Discard, nil)))
	h := s.Handler()

	create, err := json.Marshal(CreateRequest{IntervalSeconds: 60, Start: testStart, Trees: 10})
	if err != nil {
		f.Fatal(err)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPut, "/v1/series/pv", bytes.NewReader(create)))
	if rec.Code != http.StatusCreated {
		f.Fatalf("create series: %d %s", rec.Code, rec.Body)
	}

	points := func(t *testing.T) int {
		t.Helper()
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/series/pv", nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("status: %d %s", rec.Code, rec.Body)
		}
		var st Status
		if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
			t.Fatalf("status body: %v", err)
		}
		return st.Points
	}

	f.Add([]byte(`{"points":[{"value":1},{"value":2}]}`))
	f.Add([]byte(`{"points":[{"timestamp":"2015-01-05T00:00:00Z","value":3}]}`))
	f.Add([]byte(`{"points":[{"timestamp":"1999-01-01T00:00:00Z","value":3}]}`))
	f.Add([]byte(`{"points":[]}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`garbage`))
	f.Add([]byte(`{"points":[{"value":1e308},{"value":-1e308}]}`))
	f.Add([]byte(`{"points":null}`))
	f.Add([]byte(`{"points":[{"value":null}]}`))
	f.Add([]byte(`[{"value":1}]`))

	f.Fuzz(func(t *testing.T, raw []byte) {
		before := points(t)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/series/pv/points", bytes.NewReader(raw)))
		switch rec.Code {
		case http.StatusOK:
			var pr PointsResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &pr); err != nil {
				t.Fatalf("200 with unparseable body %q: %v", rec.Body, err)
			}
			if after := points(t); after != before+pr.Appended {
				t.Fatalf("appended=%d but stored points went %d -> %d", pr.Appended, before, after)
			}
		case http.StatusBadRequest, http.StatusUnprocessableEntity,
			http.StatusTooManyRequests, http.StatusServiceUnavailable:
			var er errorResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil || er.Error == "" {
				t.Fatalf("%d without an error body: %q", rec.Code, rec.Body)
			}
			if after := points(t); after != before {
				t.Fatalf("rejected batch partially appended: %d -> %d", before, after)
			}
		default:
			t.Fatalf("undocumented status %d: %q", rec.Code, rec.Body)
		}
	})
}
