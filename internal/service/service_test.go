package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"opprentice/internal/engine"
	"opprentice/internal/kpigen"
	"opprentice/internal/tsdb"
)

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	s := NewServer(slog.New(slog.NewTextHandler(io.Discard, nil)))
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func doJSON(t *testing.T, method, url string, body any) (*http.Response, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

var testStart = time.Date(2015, 1, 5, 0, 0, 0, 0, time.UTC)

func createSeries(t *testing.T, ts *httptest.Server, name string, intervalSec int) {
	t.Helper()
	resp, body := doJSON(t, http.MethodPut, ts.URL+"/v1/series/"+name, CreateRequest{
		IntervalSeconds: intervalSec,
		Start:           testStart,
		Trees:           10,
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d %s", resp.StatusCode, body)
	}
}

func TestHealthz(t *testing.T) {
	ts := newTestServer(t)
	resp, body := doJSON(t, http.MethodGet, ts.URL+"/v1/healthz", nil)
	if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte("ok")) {
		t.Fatalf("healthz: %d %s", resp.StatusCode, body)
	}
}

func TestCreateValidation(t *testing.T) {
	ts := newTestServer(t)
	cases := []struct {
		name string
		req  CreateRequest
		want int
	}{
		{"bad-interval", CreateRequest{IntervalSeconds: 7, Start: testStart}, http.StatusBadRequest},
		{"no-start", CreateRequest{IntervalSeconds: 3600}, http.StatusBadRequest},
		{"good", CreateRequest{IntervalSeconds: 3600, Start: testStart}, http.StatusCreated},
	}
	for _, c := range cases {
		resp, body := doJSON(t, http.MethodPut, ts.URL+"/v1/series/"+c.name, c.req)
		if resp.StatusCode != c.want {
			t.Errorf("%s: got %d (%s), want %d", c.name, resp.StatusCode, body, c.want)
		}
	}
	// Duplicate name conflicts.
	resp, _ := doJSON(t, http.MethodPut, ts.URL+"/v1/series/good",
		CreateRequest{IntervalSeconds: 3600, Start: testStart})
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("duplicate: got %d, want 409", resp.StatusCode)
	}
}

func TestUnknownSeries404(t *testing.T) {
	ts := newTestServer(t)
	for _, ep := range []string{"/v1/series/none", "/v1/series/none/alarms"} {
		resp, _ := doJSON(t, http.MethodGet, ts.URL+ep, nil)
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s: got %d, want 404", ep, resp.StatusCode)
		}
	}
}

func TestPointsAndLabelsValidation(t *testing.T) {
	ts := newTestServer(t)
	createSeries(t, ts, "kpi", 3600)

	// Empty points rejected.
	resp, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/series/kpi/points", PointsRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty points: %d", resp.StatusCode)
	}
	// Append two points.
	resp, body := doJSON(t, http.MethodPost, ts.URL+"/v1/series/kpi/points", PointsRequest{
		Points: []Point{{Value: 1}, {Value: 2}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("points: %d %s", resp.StatusCode, body)
	}
	var pr PointsResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Appended != 2 || pr.Total != 2 {
		t.Errorf("points response = %+v", pr)
	}
	// Out-of-order timestamp rejected.
	resp, _ = doJSON(t, http.MethodPost, ts.URL+"/v1/series/kpi/points", PointsRequest{
		Points: []Point{{Timestamp: testStart, Value: 3}},
	})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("out-of-order: %d", resp.StatusCode)
	}
	// Correct next timestamp accepted.
	resp, _ = doJSON(t, http.MethodPost, ts.URL+"/v1/series/kpi/points", PointsRequest{
		Points: []Point{{Timestamp: testStart.Add(2 * time.Hour), Value: 3}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Errorf("in-order: %d", resp.StatusCode)
	}
	// Label out of range rejected.
	resp, _ = doJSON(t, http.MethodPost, ts.URL+"/v1/series/kpi/labels", LabelsRequest{
		Windows: []LabelWindow{{Start: 0, End: 99, Anomalous: true}},
	})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("bad window: %d", resp.StatusCode)
	}
	// Valid label applied.
	resp, body = doJSON(t, http.MethodPost, ts.URL+"/v1/series/kpi/labels", LabelsRequest{
		Windows: []LabelWindow{{Start: 0, End: 2, Anomalous: true}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("label: %d %s", resp.StatusCode, body)
	}
	var lr map[string]int
	if err := json.Unmarshal(body, &lr); err != nil {
		t.Fatal(err)
	}
	if lr["anomalous_points"] != 2 || lr["labeled_windows"] != 1 {
		t.Errorf("label response = %v", lr)
	}
}

// TestFullLifecycle drives the whole operational loop over HTTP: bootstrap
// history, label, train, stream points with verdicts, check alarms, retrain.
func TestFullLifecycle(t *testing.T) {
	ts := newTestServer(t)
	createSeries(t, ts, "pv", 3600)

	// Bootstrap with 9 weeks of hourly synthetic PV and its labels.
	p := kpigen.PV(kpigen.Small)
	p.Interval = time.Hour
	p.Weeks = 9
	d := kpigen.Generate(p, 51)

	batch := make([]Point, 0, 500)
	flush := func() {
		if len(batch) == 0 {
			return
		}
		resp, body := doJSON(t, http.MethodPost, ts.URL+"/v1/series/pv/points", PointsRequest{Points: batch})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("points: %d %s", resp.StatusCode, body)
		}
		batch = batch[:0]
	}
	for _, v := range d.Series.Values {
		batch = append(batch, Point{Value: v})
		if len(batch) == 500 {
			flush()
		}
	}
	flush()

	var windows []LabelWindow
	for _, win := range d.Labels.Windows() {
		windows = append(windows, LabelWindow{Start: win.Start, End: win.End, Anomalous: true})
	}
	resp, body := doJSON(t, http.MethodPost, ts.URL+"/v1/series/pv/labels", LabelsRequest{Windows: windows})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("labels: %d %s", resp.StatusCode, body)
	}

	// Train.
	resp, body = doJSON(t, http.MethodPost, ts.URL+"/v1/series/pv/train", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("train: %d %s", resp.StatusCode, body)
	}

	// Status shows a trained monitor.
	resp, body = doJSON(t, http.MethodGet, ts.URL+"/v1/series/pv", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status: %d", resp.StatusCode)
	}
	var st Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if !st.Trained || st.Points != d.Series.Len() {
		t.Fatalf("status = %+v", st)
	}

	// Stream a blatant anomaly: verdicts should flag it and an alarm appear.
	next := d.Series.Values[d.Series.Len()-1]
	resp, body = doJSON(t, http.MethodPost, ts.URL+"/v1/series/pv/points", PointsRequest{
		Points: []Point{{Value: next * 0.1}, {Value: next * 0.1}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream: %d %s", resp.StatusCode, body)
	}
	var pr PointsResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if len(pr.Verdicts) != 2 {
		t.Fatalf("verdicts = %+v", pr.Verdicts)
	}
	if !pr.Verdicts[0].Anomalous && !pr.Verdicts[1].Anomalous {
		t.Errorf("90%% drop not flagged: %+v", pr.Verdicts)
	}

	resp, body = doJSON(t, http.MethodGet, ts.URL+"/v1/series/pv/alarms", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("alarms: %d", resp.StatusCode)
	}
	var ar map[string][]Alarm
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatal(err)
	}
	if len(ar["alarms"]) == 0 {
		t.Error("no alarms recorded")
	}

	// Alarms with a future 'since' filter are empty.
	future := time.Now().Add(100 * 24 * time.Hour).UTC().Format(time.RFC3339)
	resp, body = doJSON(t, http.MethodGet, ts.URL+"/v1/series/pv/alarms?since="+future, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("alarms since: %d", resp.StatusCode)
	}
	_ = json.Unmarshal(body, &ar)
	if len(ar["alarms"]) != 0 {
		t.Errorf("future since returned %d alarms", len(ar["alarms"]))
	}

	// Retrain (now includes the streamed points).
	resp, body = doJSON(t, http.MethodPost, ts.URL+"/v1/series/pv/train", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("retrain: %d %s", resp.StatusCode, body)
	}

	// List shows the series.
	resp, body = doJSON(t, http.MethodGet, ts.URL+"/v1/series", nil)
	if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte(`"pv"`)) {
		t.Errorf("list: %d %s", resp.StatusCode, body)
	}
}

func TestTrainWithoutAnomaliesFails(t *testing.T) {
	ts := newTestServer(t)
	createSeries(t, ts, "flat", 3600)
	pts := make([]Point, 0, 24*7*9)
	for i := 0; i < 24*7*9; i++ {
		pts = append(pts, Point{Value: float64(i % 24)})
	}
	resp, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/series/flat/points", PointsRequest{Points: pts})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("points: %d", resp.StatusCode)
	}
	resp, body := doJSON(t, http.MethodPost, ts.URL+"/v1/series/flat/train", nil)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("train without labels: %d %s", resp.StatusCode, body)
	}
}

func TestBadSinceParam(t *testing.T) {
	ts := newTestServer(t)
	createSeries(t, ts, "x", 3600)
	resp, _ := doJSON(t, http.MethodGet, ts.URL+"/v1/series/x/alarms?since=yesterday", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad since: %d", resp.StatusCode)
	}
}

func TestConcurrentIngest(t *testing.T) {
	ts := newTestServer(t)
	// Ten series ingesting concurrently must not race (run with -race).
	done := make(chan error, 10)
	for g := 0; g < 10; g++ {
		name := fmt.Sprintf("kpi%d", g)
		createSeries(t, ts, name, 3600)
		go func(name string) {
			for i := 0; i < 50; i++ {
				resp, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/series/"+name+"/points",
					PointsRequest{Points: []Point{{Value: float64(i)}}})
				if resp.StatusCode != http.StatusOK {
					done <- fmt.Errorf("%s: %d", name, resp.StatusCode)
					return
				}
			}
			done <- nil
		}(name)
	}
	for g := 0; g < 10; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestWebhookIncidentNotifications(t *testing.T) {
	// A receiver that records incident events.
	var mu sync.Mutex
	var events []map[string]any
	arrived := make(chan struct{}, 64)
	receiver := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		var e map[string]any
		if err := json.Unmarshal(body, &e); err == nil {
			mu.Lock()
			events = append(events, e)
			mu.Unlock()
			select {
			case arrived <- struct{}{}:
			default:
			}
		}
		w.WriteHeader(http.StatusNoContent)
	}))
	defer receiver.Close()

	ts := newTestServer(t)
	resp, body := doJSON(t, http.MethodPut, ts.URL+"/v1/series/pv", CreateRequest{
		IntervalSeconds: 3600,
		Start:           testStart,
		Trees:           10,
		WebhookURL:      receiver.URL,
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d %s", resp.StatusCode, body)
	}

	// Bootstrap, label, train (as in TestFullLifecycle but condensed).
	p := kpigen.PV(kpigen.Small)
	p.Interval = time.Hour
	p.Weeks = 9
	d := kpigen.Generate(p, 81)
	pts := make([]Point, len(d.Series.Values))
	for i, v := range d.Series.Values {
		pts[i] = Point{Value: v}
	}
	if resp, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/series/pv/points", PointsRequest{Points: pts}); resp.StatusCode != http.StatusOK {
		t.Fatal("bootstrap failed")
	}
	var windows []LabelWindow
	for _, w := range d.Labels.Windows() {
		windows = append(windows, LabelWindow{Start: w.Start, End: w.End, Anomalous: true})
	}
	doJSON(t, http.MethodPost, ts.URL+"/v1/series/pv/labels", LabelsRequest{Windows: windows})
	if resp, b := doJSON(t, http.MethodPost, ts.URL+"/v1/series/pv/train", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("train: %d %s", resp.StatusCode, b)
	}

	// Sustained drop opens an incident; recovery resolves it.
	last := d.Series.Values[len(d.Series.Values)-1]
	stream := []Point{{Value: last * 0.05}, {Value: last * 0.05}, {Value: last * 0.05}}
	doJSON(t, http.MethodPost, ts.URL+"/v1/series/pv/points", PointsRequest{Points: stream})
	recovery := make([]Point, 30)
	for i := range recovery {
		recovery[i] = Point{Value: d.Series.Values[i]}
	}
	doJSON(t, http.MethodPost, ts.URL+"/v1/series/pv/points", PointsRequest{Points: recovery})

	// Delivery is asynchronous (alerting.Pipeline): the receiver signals
	// each arrival on a channel, so the wait is event-driven, not a sleep
	// poll.
	timeout := time.After(5 * time.Second)
	for {
		mu.Lock()
		var open, resolved int
		for _, e := range events {
			switch e["state"] {
			case "open":
				open++
			case "resolved":
				resolved++
			}
		}
		snapshot := fmt.Sprintf("%v", events)
		mu.Unlock()
		if open > 0 && resolved > 0 {
			return
		}
		select {
		case <-arrived:
		case <-timeout:
			t.Fatalf("open=%d resolved=%d webhooks delivered (events: %s)", open, resolved, snapshot)
		}
	}
}

func TestAutoRetrain(t *testing.T) {
	s := NewServer(slog.New(slog.NewTextHandler(io.Discard, nil)))
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	p := kpigen.PV(kpigen.Small)
	p.Interval = time.Hour
	p.Weeks = 10
	d := kpigen.Generate(p, 91)
	ppw, _ := d.Series.PointsPerWeek()

	resp, body := doJSON(t, http.MethodPut, ts.URL+"/v1/series/pv", CreateRequest{
		IntervalSeconds: 3600,
		Start:           testStart,
		Trees:           10,
		RetrainEvery:    ppw,
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d %s", resp.StatusCode, body)
	}
	// Bootstrap 9 weeks + labels, train once.
	boot := 9 * ppw
	pts := make([]Point, boot)
	for i := 0; i < boot; i++ {
		pts[i] = Point{Value: d.Series.Values[i]}
	}
	doJSON(t, http.MethodPost, ts.URL+"/v1/series/pv/points", PointsRequest{Points: pts})
	var windows []LabelWindow
	for _, w := range d.Labels.Windows() {
		if w.End <= boot {
			windows = append(windows, LabelWindow{Start: w.Start, End: w.End, Anomalous: true})
		}
	}
	doJSON(t, http.MethodPost, ts.URL+"/v1/series/pv/labels", LabelsRequest{Windows: windows})
	if resp, b := doJSON(t, http.MethodPost, ts.URL+"/v1/series/pv/train", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("train: %d %s", resp.StatusCode, b)
	}
	resp, body = doJSON(t, http.MethodGet, ts.URL+"/v1/series/pv", nil)
	var before Status
	json.Unmarshal(body, &before)

	// Retraining is asynchronous (ingest never blocks on a training round):
	// take the completion edge from the engine's TrainDone hook instead of
	// polling the status endpoint.
	retrained := make(chan struct{}, 1)
	s.Engine().SetHooks(engine.Hooks{TrainDone: func(name string, res engine.TrainResult, err error) {
		if err != nil {
			t.Errorf("auto-retrain failed: %v", err)
		}
		select {
		case retrained <- struct{}{}:
		default:
		}
	}})

	// Stream one more week: the auto-retrain should fire.
	week := make([]Point, ppw)
	for i := 0; i < ppw; i++ {
		week[i] = Point{Value: d.Series.Values[boot+i]}
	}
	if resp, b := doJSON(t, http.MethodPost, ts.URL+"/v1/series/pv/points", PointsRequest{Points: week}); resp.StatusCode != http.StatusOK {
		t.Fatalf("stream: %d %s", resp.StatusCode, b)
	}
	select {
	case <-retrained:
	case <-time.After(15 * time.Second):
		t.Fatal("auto-retrain did not fire")
	}
	var after Status
	resp, body = doJSON(t, http.MethodGet, ts.URL+"/v1/series/pv", nil)
	json.Unmarshal(body, &after)
	if !after.TrainedAt.After(before.TrainedAt) {
		t.Fatalf("auto-retrain did not swap the monitor: before %v, after %v", before.TrainedAt, after.TrainedAt)
	}
}

func TestDurableRestoreAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	store, err := tsdb.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))

	// First server generation: create, ingest, label, train.
	s1 := NewServer(logger)
	s1.SetStore(store)
	ts1 := httptest.NewServer(s1.Handler())
	p := kpigen.PV(kpigen.Small)
	p.Interval = time.Hour
	p.Weeks = 9
	d := kpigen.Generate(p, 101)
	resp, body := doJSON(t, http.MethodPut, ts1.URL+"/v1/series/pv", CreateRequest{
		IntervalSeconds: 3600, Start: testStart, Trees: 10,
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d %s", resp.StatusCode, body)
	}
	pts := make([]Point, len(d.Series.Values))
	for i, v := range d.Series.Values {
		pts[i] = Point{Value: v}
	}
	doJSON(t, http.MethodPost, ts1.URL+"/v1/series/pv/points", PointsRequest{Points: pts})
	var windows []LabelWindow
	for _, w := range d.Labels.Windows() {
		windows = append(windows, LabelWindow{Start: w.Start, End: w.End, Anomalous: true})
	}
	doJSON(t, http.MethodPost, ts1.URL+"/v1/series/pv/labels", LabelsRequest{Windows: windows})
	if resp, b := doJSON(t, http.MethodPost, ts1.URL+"/v1/series/pv/train", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("train: %d %s", resp.StatusCode, b)
	}
	ts1.Close()
	store.Close()

	// Second generation: reopen the store and restore.
	store2, err := tsdb.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	s2 := NewServer(logger)
	s2.SetStore(store2)
	restored, err := s2.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if restored != 1 {
		t.Fatalf("restored = %d, want 1", restored)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()

	resp, body = doJSON(t, http.MethodGet, ts2.URL+"/v1/series/pv", nil)
	var st Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Points != d.Series.Len() {
		t.Errorf("points = %d, want %d", st.Points, d.Series.Len())
	}
	if st.AnomalousPoints != timeseriesCount(d.Labels) {
		t.Errorf("anomalous = %d, want %d", st.AnomalousPoints, timeseriesCount(d.Labels))
	}
	if !st.Trained {
		t.Error("restore should retrain a labeled series")
	}
	// Detection still works after restart.
	last := d.Series.Values[len(d.Series.Values)-1]
	resp, body = doJSON(t, http.MethodPost, ts2.URL+"/v1/series/pv/points", PointsRequest{
		Points: []Point{{Value: last * 0.05}},
	})
	var pr PointsResponse
	json.Unmarshal(body, &pr)
	if len(pr.Verdicts) != 1 || !pr.Verdicts[0].Anomalous {
		t.Errorf("post-restore verdicts = %+v", pr.Verdicts)
	}
}

func timeseriesCount(labels []bool) int {
	n := 0
	for _, l := range labels {
		if l {
			n++
		}
	}
	return n
}

func TestMetricsEndpoint(t *testing.T) {
	ts := newTestServer(t)
	createSeries(t, ts, "kpi", 3600)
	doJSON(t, http.MethodPost, ts.URL+"/v1/series/kpi/points", PointsRequest{
		Points: []Point{{Value: 1}, {Value: 2}, {Value: 3}},
	})
	doJSON(t, http.MethodGet, ts.URL+"/v1/series/ghost", nil) // bump error counter

	resp, body := doJSON(t, http.MethodGet, ts.URL+"/v1/metrics", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", resp.StatusCode)
	}
	out := string(body)
	for _, want := range []string{
		"opprenticed_points_ingested_total 3",
		`opprenticed_series_points{series="kpi"} 3`,
		"opprenticed_request_errors_total 1",
		"# TYPE opprenticed_alarms_raised_total counter",
	} {
		if !bytes.Contains(body, []byte(want)) {
			t.Errorf("metrics missing %q in:\n%s", want, out)
		}
	}
}

func TestDashboard(t *testing.T) {
	ts := newTestServer(t)
	resp, body := doJSON(t, http.MethodGet, ts.URL+"/", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("empty dashboard: %d", resp.StatusCode)
	}
	if !bytes.Contains(body, []byte("No series yet")) {
		t.Error("empty state missing")
	}
	createSeries(t, ts, "pv", 3600)
	pts := make([]Point, 50)
	for i := range pts {
		pts[i] = Point{Value: float64(i)}
	}
	doJSON(t, http.MethodPost, ts.URL+"/v1/series/pv/points", PointsRequest{Points: pts})
	resp, body = doJSON(t, http.MethodGet, ts.URL+"/", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("dashboard: %d", resp.StatusCode)
	}
	for _, want := range []string{"<h2>pv</h2>", "<svg", "50 points", "not trained yet"} {
		if !bytes.Contains(body, []byte(want)) {
			t.Errorf("dashboard missing %q", want)
		}
	}
}
