package service

import (
	"context"
	"errors"
	"io"
	"log/slog"
	"net/http/httptest"
	"testing"
	"time"

	"opprentice/internal/kpigen"
)

func newClientPair(t *testing.T) *Client {
	t.Helper()
	s := NewServer(slog.New(slog.NewTextHandler(io.Discard, nil)))
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return NewClient(ts.URL, ts.Client())
}

func TestClientHealthAndList(t *testing.T) {
	c := newClientPair(t)
	ctx := context.Background()
	if err := c.Health(ctx); err != nil {
		t.Fatal(err)
	}
	names, err := c.List(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 0 {
		t.Errorf("fresh service lists %v", names)
	}
}

func TestClientErrorsAreTyped(t *testing.T) {
	c := newClientPair(t)
	ctx := context.Background()
	_, err := c.Status(ctx, "ghost")
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("want *APIError, got %T: %v", err, err)
	}
	if apiErr.StatusCode != 404 {
		t.Errorf("status = %d, want 404", apiErr.StatusCode)
	}
	if apiErr.Error() == "" {
		t.Error("empty error text")
	}
}

func TestClientLifecycle(t *testing.T) {
	c := newClientPair(t)
	ctx := context.Background()

	if err := c.Create(ctx, "pv", CreateRequest{
		IntervalSeconds: 3600,
		Start:           testStart,
		Trees:           10,
	}); err != nil {
		t.Fatal(err)
	}
	// Conflict is surfaced.
	if err := c.Create(ctx, "pv", CreateRequest{IntervalSeconds: 3600, Start: testStart}); err == nil {
		t.Error("duplicate create should fail")
	}

	p := kpigen.PV(kpigen.Small)
	p.Interval = time.Hour
	p.Weeks = 9
	d := kpigen.Generate(p, 71)
	pts := make([]Point, len(d.Series.Values))
	for i, v := range d.Series.Values {
		pts[i] = Point{Value: v}
	}
	resp, err := c.Append(ctx, "pv", pts)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Total != len(pts) {
		t.Fatalf("total = %d, want %d", resp.Total, len(pts))
	}
	var windows []LabelWindow
	for _, w := range d.Labels.Windows() {
		windows = append(windows, LabelWindow{Start: w.Start, End: w.End, Anomalous: true})
	}
	if err := c.Label(ctx, "pv", windows); err != nil {
		t.Fatal(err)
	}
	cthld, err := c.Train(ctx, "pv")
	if err != nil {
		t.Fatal(err)
	}
	if cthld <= 0 || cthld > 1.01 {
		t.Errorf("cthld = %v", cthld)
	}
	st, err := c.Status(ctx, "pv")
	if err != nil {
		t.Fatal(err)
	}
	if !st.Trained {
		t.Error("status should show trained")
	}
	// Drive an alarm and read it back.
	last := d.Series.Values[len(d.Series.Values)-1]
	if _, err := c.Append(ctx, "pv", []Point{{Value: last * 0.05}, {Value: last * 0.05}}); err != nil {
		t.Fatal(err)
	}
	alarms, err := c.Alarms(ctx, "pv", time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if len(alarms) == 0 {
		t.Error("no alarms after a 95% drop")
	}
	names, err := c.List(ctx)
	if err != nil || len(names) != 1 || names[0] != "pv" {
		t.Errorf("List = %v, %v", names, err)
	}
}

func TestClientContextCancellation(t *testing.T) {
	c := newClientPair(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := c.Health(ctx); err == nil {
		t.Error("cancelled context should fail")
	}
}
