// Package service exposes Opprentice as an HTTP/JSON anomaly-detection
// service: clients create monitored series, stream points, label anomalous
// windows with the same window semantics as the labeling tool (§4.2), and
// trigger (re)training — the weekly operational loop of Fig. 3 over the
// network.
//
// The package is a thin transport adapter: all series state, the ingest hot
// path, and the asynchronous retrain scheduler live in internal/engine
// (sharded, single-writer per series; see that package and DESIGN.md's
// "Engine layering"). Handlers only decode JSON, call one engine method, and
// encode the result; cmd/opprenticed adds durable storage via the engine's
// Store seam.
//
// API (all JSON):
//
//	GET  /v1/healthz                    liveness
//	GET  /v1/readyz                     readiness (degraded/quarantined series)
//	GET  /v1/series                     list series
//	PUT  /v1/series/{name}              create a series
//	GET  /v1/series/{name}              status
//	POST /v1/series/{name}/points       append points, get verdicts
//	POST /v1/ingest                     streaming bulk ingest (binary frames;
//	                                    see ingest.go and Client.StreamPoints)
//	POST /v1/series/{name}/labels       label/unlabel windows
//	POST /v1/series/{name}/train        (re)train the classifier
//	GET  /v1/series/{name}/alarms       recent alarms
//	GET  /v1/models                     series with published model artifacts
//	GET  /v1/models/{name}              a series' model manifest (generations)
//	POST /v1/models/{name}/rollback     roll the served model back one generation
//	GET  /v1/queries                    pending label queries, most uncertain
//	                                    first (?series= filters to one series)
//	POST /v1/queries/{name}/answer      answer one query ({start, end,
//	                                    anomalous}); applied as a durable label
//	GET  /v1/metrics                    Prometheus text exposition
//
// The /v1/models routes require a model registry (opprenticed -model-dir);
// without one they answer 400.
//
// # Operational metrics
//
// GET /v1/metrics exposes counters in the Prometheus text format (no client
// library needed). Besides the throughput counters
// (opprenticed_points_ingested_total, opprenticed_alarms_raised_total,
// opprenticed_trainings_total, opprenticed_training_seconds_total,
// opprenticed_request_errors_total) and per-series gauges
// (opprenticed_series_points, opprenticed_series_labeled_windows,
// opprenticed_series_cthld), the fault-tolerance layer reports:
//
//   - opprenticed_detector_panics_total — detector-configuration panics that
//     were sandboxed into degraded features instead of crashing the server.
//   - opprenticed_series_degraded_detectors{series=...} — configurations
//     currently dead (sandboxed) per trained series.
//   - opprenticed_notify_delivered_total / opprenticed_notify_retries_total /
//     opprenticed_notify_dropped_total — asynchronous webhook delivery
//     outcomes, summed over the per-series alerting pipelines.
//   - opprenticed_wal_quarantined_total — corrupt series tombstoned out of
//     the segmented WAL during Restore (legacy JSON-lines logs are renamed
//     to *.wal.corrupt instead).
//   - opprenticed_wal_append_errors_total — durable appends (points or
//     labels) that failed; the affected points responses also carry
//     "persisted": false.
//
// The overload and supervision layer (DESIGN.md §11) adds:
//
//   - opprenticed_ingest_sheds_total — point batches rejected whole by
//     admission control (HTTP 429).
//   - opprenticed_degraded_entered_total / opprenticed_degraded_recovered_total
//     and the opprenticed_series_degraded gauge — degraded-mode transitions
//     and the number of series currently degraded.
//   - opprenticed_wal_buffered_points_total / opprenticed_wal_lost_points_total
//     — points buffered by degraded WAL writers, and points dropped from the
//     log when that buffer overflowed.
//   - opprenticed_train_stalls_total / opprenticed_train_retries_total /
//     opprenticed_series_quarantined_total / opprenticed_worker_panics_total
//     — watchdog activity on the training/publish workers.
//
// The active-learning subsystem (DESIGN.md §14) adds:
//
//   - opprenticed_queries_answered_total — label queries resolved via
//     POST /v1/queries/{name}/answer.
//   - opprenticed_drift_retrains_total — retrains the concept-drift detector
//     armed ahead of the fixed retrain tick.
//   - opprenticed_query_queue_depth{series=...} — pending label queries.
//   - opprenticed_drift_score{series=...} — the PSI of the last completed
//     drift comparison window.
//
// A non-zero rate on any of these means a dependency is degrading while the
// service keeps running; see DESIGN.md's "Failure modes & degradation".
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"time"

	"opprentice/internal/alerting"
	"opprentice/internal/detectors"
	"opprentice/internal/engine"
	modelreg "opprentice/internal/registry"
	"opprentice/internal/tsdb"
)

// Server is the HTTP adapter over an engine.Engine. Create it with NewServer
// (which builds its own engine) or NewServerWithEngine, and mount Handler on
// an http.Server.
type Server struct {
	eng      *engine.Engine
	log      *slog.Logger
	metrics  metrics
	timeouts Timeouts

	// vbufs pools verdict buffers for the points hot path; the engine
	// appends verdicts into a pooled buffer instead of allocating per
	// request.
	vbufs sync.Pool
}

// Timeouts are the per-endpoint deadlines the server attaches to each
// request's context before calling into the engine; the engine propagates
// them through its own budgets (WAL deadline, training watchdog). Zero
// fields pick the defaults; negative disables that endpoint's deadline.
type Timeouts struct {
	// Append bounds POST points (default 30s).
	Append time.Duration
	// Label bounds POST labels (default 30s).
	Label time.Duration
	// Train bounds POST train (default 10m) — synchronous training is the
	// slowest endpoint by far.
	Train time.Duration
	// Status bounds the cheap read endpoints (default 5s).
	Status time.Duration
	// Rollback bounds POST rollback, which hot-swaps a monitor (default 2m).
	Rollback time.Duration
}

// resolveTimeouts fills zero fields with the defaults.
func resolveTimeouts(t Timeouts) Timeouts {
	def := func(v *time.Duration, d time.Duration) {
		if *v == 0 {
			*v = d
		} else if *v < 0 {
			*v = 0
		}
	}
	def(&t.Append, 30*time.Second)
	def(&t.Label, 30*time.Second)
	def(&t.Train, 10*time.Minute)
	def(&t.Status, 5*time.Second)
	def(&t.Rollback, 2*time.Minute)
	return t
}

// SetTimeouts replaces the per-endpoint deadlines. Call it before serving.
func (s *Server) SetTimeouts(t Timeouts) { s.timeouts = resolveTimeouts(t) }

// opCtx derives the handler's working context: the request context plus
// the endpoint's deadline (when enabled).
func opCtx(r *http.Request, d time.Duration) (context.Context, context.CancelFunc) {
	if d <= 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), d)
}

// NewServer returns a service over a fresh default engine.
func NewServer(log *slog.Logger) *Server {
	if log == nil {
		log = slog.Default()
	}
	return NewServerWithEngine(engine.New(engine.Config{Log: log}), log)
}

// NewServerWithEngine returns a service over an engine the caller
// constructed (and owns the configuration of).
func NewServerWithEngine(eng *engine.Engine, log *slog.Logger) *Server {
	if log == nil {
		log = slog.Default()
	}
	s := &Server{eng: eng, log: log, timeouts: resolveTimeouts(Timeouts{})}
	s.vbufs.New = func() any {
		buf := make([]engine.Verdict, 0, 256)
		return &buf
	}
	return s
}

// Engine returns the underlying engine, for construction-time configuration
// and tests.
func (s *Server) Engine() *engine.Engine { return s.eng }

// SetStore makes the service durable: every create/points/labels mutation is
// appended to the store's per-series write-ahead log. Call Restore after it
// to reload existing logs.
func (s *Server) SetStore(store *tsdb.Store) {
	if store == nil {
		s.eng.SetStore(nil)
		return
	}
	s.eng.SetStore(store)
}

// SetDetectorRegistry replaces the detector-set factory used by training.
// Intended for tests and fault injection (e.g. wrapping the default registry
// with a panicking configuration); call it before any series is trained.
func (s *Server) SetDetectorRegistry(fn func(time.Duration) ([]detectors.Detector, error)) {
	s.eng.SetDetectorRegistry(fn)
}

// SetNotifyConfig tunes the asynchronous webhook delivery pipelines created
// for series from then on (queue size, backoff, circuit breaker). Call it
// before creating or restoring series.
func (s *Server) SetNotifyConfig(cfg alerting.PipelineConfig) {
	s.eng.SetNotifyConfig(cfg)
}

// SetModels attaches a model-artifact registry: trained models are published
// to it and Restore prefers warm starts from its artifacts. Call it before
// Restore and before traffic; see engine.SetModels.
func (s *Server) SetModels(r *modelreg.Registry) { s.eng.SetModels(r) }

// Restore replays every series in the engine's store; see engine.Restore.
// It keeps its context-free signature for callers that restore during boot
// with no deadline to propagate.
func (s *Server) Restore() (int, error) { return s.eng.Restore(context.Background()) }

// Close shuts down the engine: retrain workers stop and pending webhook
// deliveries are given grace before being dropped; call it after
// http.Server.Shutdown so no new events can arrive.
func (s *Server) Close() { s.eng.Close() }

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", s.handleHealth)
	mux.HandleFunc("GET /v1/readyz", s.handleReady)
	mux.HandleFunc("GET /v1/series", s.handleList)
	mux.HandleFunc("PUT /v1/series/{name}", s.handleCreate)
	mux.HandleFunc("GET /v1/series/{name}", s.handleStatus)
	mux.HandleFunc("POST /v1/series/{name}/points", s.handlePoints)
	mux.HandleFunc("POST /v1/ingest", s.handleIngest)
	mux.HandleFunc("POST /v1/series/{name}/labels", s.handleLabels)
	mux.HandleFunc("POST /v1/series/{name}/train", s.handleTrain)
	mux.HandleFunc("GET /v1/series/{name}/alarms", s.handleAlarms)
	mux.HandleFunc("GET /v1/models", s.handleModels)
	mux.HandleFunc("GET /v1/models/{name}", s.handleModelManifest)
	mux.HandleFunc("POST /v1/models/{name}/rollback", s.handleModelRollback)
	mux.HandleFunc("GET /v1/queries", s.handleQueries)
	mux.HandleFunc("POST /v1/queries/{name}/answer", s.handleAnswerQuery)
	mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	mux.HandleFunc("GET /{$}", s.handleDashboard)
	return mux
}

// Wire types. The point/verdict/alarm/status/window shapes are aliases of
// the engine's value types (whose JSON tags are the wire format), so the hot
// path moves data engine→encoder with no conversion copies and the HTTP
// shapes provably cannot drift from the engine's.

// CreateRequest is the body of PUT /v1/series/{name}.
type CreateRequest struct {
	// IntervalSeconds is the sampling interval; it must divide a day.
	IntervalSeconds int `json:"interval_seconds"`
	// Start is the timestamp of the first point (RFC 3339).
	Start time.Time `json:"start"`
	// Recall and Precision form the accuracy preference (default 0.66 each).
	Recall    float64 `json:"recall,omitempty"`
	Precision float64 `json:"precision,omitempty"`
	// Trees is the forest size (default 60).
	Trees int `json:"trees,omitempty"`
	// WebhookURL, when set, receives incident open/resolved events as JSON
	// POSTs (see the alerting package for the payload).
	WebhookURL string `json:"webhook_url,omitempty"`
	// RetrainEvery, when > 0, retrains the classifier automatically after
	// that many new points have been appended since the last training —
	// the paper's weekly incremental retraining, without a cron job. The
	// retrain runs asynchronously on the engine's background workers; the
	// triggering points request returns immediately.
	RetrainEvery int `json:"retrain_every,omitempty"`
	// CThldPredictor selects the dynamic-threshold predictor: "ewma" (the
	// paper's default, also the empty string) or "evt" (POT/GPD extreme-value
	// thresholds).
	CThldPredictor string `json:"cthld_predictor,omitempty"`
	// EVTQ pins the EVT predictor's target exceedance probability per
	// point (0 < q < 1); 0 selects weekly auto-calibration of the risk
	// against the labeled trailing window. Ignored for "ewma".
	EVTQ float64 `json:"evt_q,omitempty"`
}

// Point is one (timestamp, value) observation; Timestamp is optional and,
// when zero, the point is appended at the next slot.
type Point = engine.Point

// PointsRequest is the body of POST points.
type PointsRequest struct {
	Points []Point `json:"points"`
}

// VerdictResponse echoes one classified point.
type VerdictResponse = engine.Verdict

// PointsResponse is the response of POST points.
type PointsResponse struct {
	Appended int               `json:"appended"`
	Total    int               `json:"total"`
	Verdicts []VerdictResponse `json:"verdicts,omitempty"`
	// Persisted is present (and false) only when a durable store is attached
	// and its append failed or is still buffered behind a degraded WAL
	// writer: the points are live in memory and were classified, but a
	// restart right now would lose them.
	Persisted *bool `json:"persisted,omitempty"`
	// Degraded is present (and true) only when the series answered in
	// degraded mode: the verdicts are threshold-only, not the full model's.
	Degraded *bool `json:"degraded,omitempty"`
}

// LabelWindow labels (or clears) the half-open index range [Start, End).
type LabelWindow = engine.Window

// LabelsRequest is the body of POST labels.
type LabelsRequest struct {
	Windows []LabelWindow `json:"windows"`
}

// Status describes one monitored series.
type Status = engine.Status

// ModelManifest is a series' model-registry generation index; the registry
// package's JSON tags are the wire format of GET /v1/models/{name}.
type ModelManifest = modelreg.Manifest

// ModelGeneration is one published artifact's manifest entry.
type ModelGeneration = modelreg.Generation

// Alarm is one anomalous verdict the service raised.
type Alarm = engine.Alarm

// Query is one pending label query: a window the live forest was least
// certain about (engine.Query's JSON tags are the wire format).
type Query = engine.Query

// AnswerRequest is the body of POST /v1/queries/{name}/answer: the queried
// window being answered (it must exactly match a pending query) and the
// operator's verdict.
type AnswerRequest struct {
	Start     int  `json:"start"`
	End       int  `json:"end"`
	Anomalous bool `json:"anomalous"`
}

// errorResponse is the uniform error body.
type errorResponse struct {
	Error string `json:"error"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReady is the load-balancer readiness probe: 200 while every series
// serves full-fidelity verdicts, 503 (with Retry-After) while any series is
// degraded or quarantined — the body names them either way.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	ready := s.eng.Ready()
	code := http.StatusOK
	if !ready.Ready {
		code = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", "5")
	}
	writeJSON(w, code, ready)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]string{"series": s.eng.Names()})
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req CreateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.countError(w, http.StatusBadRequest, fmt.Errorf("bad body: %w", err))
		return
	}
	if err := s.eng.Create(name, engine.SeriesConfig{
		IntervalSeconds: req.IntervalSeconds,
		Start:           req.Start,
		Recall:          req.Recall,
		Precision:       req.Precision,
		Trees:           req.Trees,
		WebhookURL:      req.WebhookURL,
		RetrainEvery:    req.RetrainEvery,
		CThldPredictor:  req.CThldPredictor,
		EVTQ:            req.EVTQ,
	}); err != nil {
		s.fail(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"name": name})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := opCtx(r, s.timeouts.Status)
	defer cancel()
	st, err := s.eng.Status(ctx, r.PathValue("name"))
	if err != nil {
		s.fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handlePoints(w http.ResponseWriter, r *http.Request) {
	var req PointsRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.countError(w, http.StatusBadRequest, fmt.Errorf("bad body: %w", err))
		return
	}
	ctx, cancel := opCtx(r, s.timeouts.Append)
	defer cancel()
	bufp := s.vbufs.Get().(*[]engine.Verdict)
	res, err := s.eng.Append(ctx, r.PathValue("name"), req.Points, *bufp)
	if err != nil {
		s.vbufs.Put(bufp)
		s.fail(w, err)
		return
	}
	resp := PointsResponse{
		Appended: res.Appended,
		Total:    res.Total,
		Verdicts: res.Verdicts,
	}
	if !res.Persisted {
		f := false
		resp.Persisted = &f
	}
	if res.Degraded {
		t := true
		resp.Degraded = &t
	}
	writeJSON(w, http.StatusOK, resp)
	// Return the (possibly grown) buffer to the pool only after encoding.
	*bufp = res.Verdicts
	s.vbufs.Put(bufp)
}

func (s *Server) handleLabels(w http.ResponseWriter, r *http.Request) {
	var req LabelsRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.countError(w, http.StatusBadRequest, fmt.Errorf("bad body: %w", err))
		return
	}
	ctx, cancel := opCtx(r, s.timeouts.Label)
	defer cancel()
	res, err := s.eng.Label(ctx, r.PathValue("name"), req.Windows)
	if err != nil {
		s.fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{
		"anomalous_points": res.AnomalousPoints,
		"labeled_windows":  res.LabeledWindows,
	})
}

func (s *Server) handleTrain(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := opCtx(r, s.timeouts.Train)
	defer cancel()
	res, err := s.eng.Train(ctx, r.PathValue("name"))
	if err != nil {
		s.fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"trained_at": res.TrainedAt,
		"cthld":      res.CThld,
		"points":     res.Points,
	})
}

func (s *Server) handleAlarms(w http.ResponseWriter, r *http.Request) {
	var since time.Time
	if q := r.URL.Query().Get("since"); q != "" {
		t, err := time.Parse(time.RFC3339, q)
		if err != nil {
			s.countError(w, http.StatusBadRequest, fmt.Errorf("bad since: %w", err))
			return
		}
		since = t
	}
	alarms, err := s.eng.Alarms(r.PathValue("name"), since)
	if err != nil {
		s.fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string][]Alarm{"alarms": alarms})
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	names, err := s.eng.ModelSeries()
	if err != nil {
		s.fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string][]string{"series": names})
}

func (s *Server) handleModelManifest(w http.ResponseWriter, r *http.Request) {
	man, err := s.eng.ModelManifest(r.PathValue("name"))
	if err != nil {
		s.fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, man)
}

func (s *Server) handleModelRollback(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := opCtx(r, s.timeouts.Rollback)
	defer cancel()
	man, err := s.eng.RollbackModel(ctx, r.PathValue("name"))
	if err != nil {
		s.fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, man)
}

// handleQueries lists pending label queries, most uncertain first; the
// optional ?series= parameter narrows to one series (404 if unknown).
func (s *Server) handleQueries(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := opCtx(r, s.timeouts.Status)
	defer cancel()
	qs, err := s.eng.Queries(ctx, r.URL.Query().Get("series"))
	if err != nil {
		s.fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string][]Query{"queries": qs})
}

// handleAnswerQuery resolves one pending query as a durable label action; a
// window that does not exactly match a pending query answers 422.
func (s *Server) handleAnswerQuery(w http.ResponseWriter, r *http.Request) {
	var req AnswerRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.countError(w, http.StatusBadRequest, fmt.Errorf("bad body: %w", err))
		return
	}
	ctx, cancel := opCtx(r, s.timeouts.Label)
	defer cancel()
	res, err := s.eng.AnswerQuery(ctx, r.PathValue("name"), req.Start, req.End, req.Anomalous)
	if err != nil {
		s.fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{
		"anomalous_points": res.AnomalousPoints,
		"labeled_windows":  res.LabeledWindows,
	})
}

// Retry-After guidance, in seconds, for the two transient failure classes:
// an overload shed clears as soon as in-flight work drains (retry quickly),
// a stall or timeout means something is wedged (give it longer).
const (
	retryAfterOverload = 1
	retryAfterStall    = 5
)

// fail maps an engine error kind to its HTTP status and writes the uniform
// error body. Overload sheds answer 429 and stalls/timeouts 503, both with
// a Retry-After so well-behaved clients (service.Client included) back off
// instead of hammering a struggling node.
func (s *Server) fail(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, engine.ErrNotFound):
		code = http.StatusNotFound
	case errors.Is(err, engine.ErrExists):
		code = http.StatusConflict
	case errors.Is(err, engine.ErrInvalid):
		code = http.StatusBadRequest
	case errors.Is(err, engine.ErrRejected):
		code = http.StatusUnprocessableEntity
	case errors.Is(err, engine.ErrOverloaded):
		code = http.StatusTooManyRequests
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterOverload))
	case errors.Is(err, engine.ErrStalled),
		errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, context.Canceled):
		code = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterStall))
	}
	s.countError(w, code, err)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorResponse{Error: err.Error()})
}

// countError bumps the error counter; handlers call writeError via the
// server when they want accounting.
func (s *Server) countError(w http.ResponseWriter, code int, err error) {
	s.metrics.requestErrors.Add(1)
	writeError(w, code, err)
}
