// Package service exposes Opprentice as an HTTP/JSON anomaly-detection
// service: clients create monitored series, stream points, label anomalous
// windows with the same window semantics as the labeling tool (§4.2), and
// trigger (re)training — the weekly operational loop of Fig. 3 over the
// network. All state is in memory; cmd/opprenticed adds snapshotting.
//
// API (all JSON):
//
//	GET  /v1/healthz                    liveness
//	GET  /v1/series                     list series
//	PUT  /v1/series/{name}              create a series
//	GET  /v1/series/{name}              status
//	POST /v1/series/{name}/points       append points, get verdicts
//	POST /v1/series/{name}/labels       label/unlabel windows
//	POST /v1/series/{name}/train        (re)train the classifier
//	GET  /v1/series/{name}/alarms       recent alarms
//	GET  /v1/metrics                    Prometheus text exposition
//
// # Operational metrics
//
// GET /v1/metrics exposes counters in the Prometheus text format (no client
// library needed). Besides the throughput counters
// (opprenticed_points_ingested_total, opprenticed_alarms_raised_total,
// opprenticed_trainings_total, opprenticed_training_seconds_total,
// opprenticed_request_errors_total) and per-series gauges
// (opprenticed_series_points, opprenticed_series_labeled_windows,
// opprenticed_series_cthld), the fault-tolerance layer reports:
//
//   - opprenticed_detector_panics_total — detector-configuration panics that
//     were sandboxed into degraded features instead of crashing the server.
//   - opprenticed_series_degraded_detectors{series=...} — configurations
//     currently dead (sandboxed) per trained series.
//   - opprenticed_notify_delivered_total / opprenticed_notify_retries_total /
//     opprenticed_notify_dropped_total — asynchronous webhook delivery
//     outcomes, summed over the per-series alerting pipelines.
//   - opprenticed_wal_quarantined_total — corrupt series logs set aside
//     (renamed to *.wal.corrupt) during Restore.
//
// A non-zero rate on any of these means a dependency is degrading while the
// service keeps running; see DESIGN.md's "Failure modes & degradation".
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"sync"
	"time"

	"opprentice/internal/alerting"
	"opprentice/internal/core"
	"opprentice/internal/detectors"
	"opprentice/internal/ml/forest"
	"opprentice/internal/stats"
	"opprentice/internal/timeseries"
	"opprentice/internal/tsdb"
)

// Server is the HTTP anomaly-detection service. Create it with NewServer
// and mount Handler on an http.Server.
type Server struct {
	mu     sync.RWMutex
	series map[string]*monitored
	log    *slog.Logger
	store  *tsdb.Store // nil = memory only
	// MaxAlarms bounds the per-series alarm history (default 1024).
	maxAlarms int
	metrics   metrics
	// registry builds the detector set for (re)training; overridable for
	// fault injection (see SetDetectorRegistry).
	registry func(time.Duration) ([]detectors.Detector, error)
	// notifyCfg tunes the per-series async delivery pipelines; overridable
	// for fault injection (see SetNotifyConfig).
	notifyCfg alerting.PipelineConfig
}

// monitored is one KPI under management.
type monitored struct {
	mu       sync.Mutex
	series   *timeseries.Series
	labels   timeseries.Labels
	pref     stats.Preference
	trees    int
	monitor  *core.Monitor
	alarms   []Alarm
	trained  time.Time
	incident *alerting.Manager  // nil without a webhook
	pipeline *alerting.Pipeline // nil without a webhook; async delivery

	retrainEvery  int
	pointsAtTrain int
}

// Alarm is one anomalous verdict the service raised.
type Alarm struct {
	Time        time.Time `json:"time"`
	Value       float64   `json:"value"`
	Probability float64   `json:"probability"`
	CThld       float64   `json:"cthld"`
}

// NewServer returns an empty service.
func NewServer(log *slog.Logger) *Server {
	if log == nil {
		log = slog.Default()
	}
	return &Server{
		series:    make(map[string]*monitored),
		log:       log,
		maxAlarms: 1024,
		registry:  detectors.Registry,
		notifyCfg: alerting.PipelineConfig{Log: log},
	}
}

// SetStore makes the service durable: every create/points/labels mutation is
// appended to the store's per-series write-ahead log. Call Restore after it
// to reload existing logs.
func (s *Server) SetStore(store *tsdb.Store) { s.store = store }

// SetDetectorRegistry replaces the detector-set factory used by training.
// Intended for tests and fault injection (e.g. wrapping the default registry
// with a panicking configuration); call it before any series is trained.
func (s *Server) SetDetectorRegistry(fn func(time.Duration) ([]detectors.Detector, error)) {
	if fn != nil {
		s.registry = fn
	}
}

// SetNotifyConfig tunes the asynchronous webhook delivery pipelines created
// for series from then on (queue size, backoff, circuit breaker). Call it
// before creating or restoring series.
func (s *Server) SetNotifyConfig(cfg alerting.PipelineConfig) {
	if cfg.Log == nil {
		cfg.Log = s.log
	}
	s.notifyCfg = cfg
}

// Close shuts down the per-series notification pipelines. Pending webhook
// deliveries are given grace (a short drain window) before being dropped;
// call it after http.Server.Shutdown so no new events can arrive.
func (s *Server) Close() {
	s.mu.RLock()
	pipelines := make([]*alerting.Pipeline, 0, len(s.series))
	for _, m := range s.series {
		if m.pipeline != nil {
			pipelines = append(pipelines, m.pipeline)
		}
	}
	s.mu.RUnlock()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	for _, p := range pipelines {
		_ = p.Drain(ctx)
		p.Close()
	}
}

// newIncident wires a webhook URL to an incident manager whose notifier is
// an asynchronous retrying pipeline, so webhook trouble never blocks ingest.
func (s *Server) newIncident(m *monitored, name, webhookURL string) {
	m.pipeline = alerting.NewPipeline(alerting.WebhookNotifier{URL: webhookURL}, s.notifyCfg)
	m.incident = &alerting.Manager{Series: name, Notifier: m.pipeline}
}

// Restore replays every series in the store and, when a series has labeled
// anomalies and enough data, retrains its classifier so detection resumes
// immediately. It returns the number of series restored.
//
// A series whose log is damaged (checksum mismatch, malformed records) is
// quarantined — the log is renamed to "<name>.wal.corrupt", logged, and
// counted in opprenticed_wal_quarantined_total — and restore continues with
// the remaining series: one corrupt log must not take down the daemon.
func (s *Server) Restore() (int, error) {
	if s.store == nil {
		return 0, nil
	}
	names, err := s.store.List()
	if err != nil {
		return 0, err
	}
	restored := 0
	for _, name := range names {
		loaded, err := s.store.Load(name)
		if err != nil {
			quarantined, qErr := s.store.Quarantine(name)
			if qErr != nil {
				s.log.Error("series unrestorable and quarantine failed",
					"series", name, "load_err", err, "quarantine_err", qErr)
				continue
			}
			s.metrics.walQuarantined.Add(1)
			s.log.Warn("corrupt series log quarantined",
				"series", name, "err", err, "quarantined_to", quarantined)
			continue
		}
		meta := loaded.Meta
		m := &monitored{
			series:       timeseries.New(meta.Name, meta.Start.UTC(), time.Duration(meta.IntervalSeconds)*time.Second),
			pref:         stats.Preference{Recall: meta.Recall, Precision: meta.Precision},
			trees:        meta.Trees,
			retrainEvery: meta.RetrainEvery,
		}
		m.series.Values = loaded.Values
		m.labels = timeseries.Labels(loaded.Labels)
		if meta.WebhookURL != "" {
			s.newIncident(m, meta.Name, meta.WebhookURL)
		}
		if err := s.retrainLocked(m); err != nil {
			// Not trainable yet (no labels or too little data): restore the
			// data anyway and let the operator train later.
			s.log.Info("restored without classifier", "series", meta.Name, "reason", err)
		}
		s.mu.Lock()
		s.series[meta.Name] = m
		s.mu.Unlock()
		restored++
	}
	return restored, nil
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", s.handleHealth)
	mux.HandleFunc("GET /v1/series", s.handleList)
	mux.HandleFunc("PUT /v1/series/{name}", s.handleCreate)
	mux.HandleFunc("GET /v1/series/{name}", s.handleStatus)
	mux.HandleFunc("POST /v1/series/{name}/points", s.handlePoints)
	mux.HandleFunc("POST /v1/series/{name}/labels", s.handleLabels)
	mux.HandleFunc("POST /v1/series/{name}/train", s.handleTrain)
	mux.HandleFunc("GET /v1/series/{name}/alarms", s.handleAlarms)
	mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	mux.HandleFunc("GET /{$}", s.handleDashboard)
	return mux
}

// Wire types.

// CreateRequest is the body of PUT /v1/series/{name}.
type CreateRequest struct {
	// IntervalSeconds is the sampling interval; it must divide a day.
	IntervalSeconds int `json:"interval_seconds"`
	// Start is the timestamp of the first point (RFC 3339).
	Start time.Time `json:"start"`
	// Recall and Precision form the accuracy preference (default 0.66 each).
	Recall    float64 `json:"recall,omitempty"`
	Precision float64 `json:"precision,omitempty"`
	// Trees is the forest size (default 60).
	Trees int `json:"trees,omitempty"`
	// WebhookURL, when set, receives incident open/resolved events as JSON
	// POSTs (see the alerting package for the payload).
	WebhookURL string `json:"webhook_url,omitempty"`
	// RetrainEvery, when > 0, retrains the classifier automatically after
	// that many new points have been appended since the last training —
	// the paper's weekly incremental retraining, without a cron job. The
	// retrain runs inline with the triggering points request.
	RetrainEvery int `json:"retrain_every,omitempty"`
}

// Point is one (timestamp, value) observation; Timestamp is optional and,
// when zero, the point is appended at the next slot.
type Point struct {
	Timestamp time.Time `json:"timestamp,omitempty"`
	Value     float64   `json:"value"`
}

// PointsRequest is the body of POST points.
type PointsRequest struct {
	Points []Point `json:"points"`
}

// VerdictResponse echoes one classified point.
type VerdictResponse struct {
	Index       int     `json:"index"`
	Probability float64 `json:"probability"`
	Anomalous   bool    `json:"anomalous"`
}

// PointsResponse is the response of POST points.
type PointsResponse struct {
	Appended int               `json:"appended"`
	Total    int               `json:"total"`
	Verdicts []VerdictResponse `json:"verdicts,omitempty"`
}

// LabelWindow labels (or clears) the half-open index range [Start, End).
type LabelWindow struct {
	Start     int  `json:"start"`
	End       int  `json:"end"`
	Anomalous bool `json:"anomalous"`
}

// LabelsRequest is the body of POST labels.
type LabelsRequest struct {
	Windows []LabelWindow `json:"windows"`
}

// Status describes one monitored series.
type Status struct {
	Name            string    `json:"name"`
	Points          int       `json:"points"`
	AnomalousPoints int       `json:"anomalous_points"`
	LabeledWindows  int       `json:"labeled_windows"`
	Trained         bool      `json:"trained"`
	TrainedAt       time.Time `json:"trained_at,omitempty"`
	CThld           float64   `json:"cthld,omitempty"`
	Recall          float64   `json:"recall"`
	Precision       float64   `json:"precision"`
	IntervalSeconds int       `json:"interval_seconds"`
}

// errorResponse is the uniform error body.
type errorResponse struct {
	Error string `json:"error"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	names := make([]string, 0, len(s.series))
	for name := range s.series {
		names = append(names, name)
	}
	s.mu.RUnlock()
	sort.Strings(names)
	writeJSON(w, http.StatusOK, map[string][]string{"series": names})
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req CreateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.countError(w, http.StatusBadRequest, fmt.Errorf("bad body: %w", err))
		return
	}
	interval := time.Duration(req.IntervalSeconds) * time.Second
	if interval <= 0 || timeseries.Day%interval != 0 {
		s.countError(w, http.StatusBadRequest, fmt.Errorf("interval %v must divide a day", interval))
		return
	}
	if req.Start.IsZero() {
		s.countError(w, http.StatusBadRequest, errors.New("start timestamp required"))
		return
	}
	pref := stats.Preference{Recall: req.Recall, Precision: req.Precision}
	if pref == (stats.Preference{}) {
		pref = stats.Preference{Recall: 0.66, Precision: 0.66}
	}
	trees := req.Trees
	if trees <= 0 {
		trees = 60
	}
	m := &monitored{
		series:       timeseries.New(name, req.Start.UTC(), interval),
		pref:         pref,
		trees:        trees,
		retrainEvery: req.RetrainEvery,
	}
	if req.WebhookURL != "" {
		s.newIncident(m, name, req.WebhookURL)
	}
	s.mu.Lock()
	_, exists := s.series[name]
	if !exists {
		s.series[name] = m
	}
	s.mu.Unlock()
	if exists {
		if m.pipeline != nil {
			m.pipeline.Close() // don't leak the losing candidate's worker
		}
		s.countError(w, http.StatusConflict, fmt.Errorf("series %q already exists", name))
		return
	}
	if s.store != nil {
		if err := s.store.CreateSeries(tsdb.Meta{
			Name:            name,
			Start:           req.Start.UTC(),
			IntervalSeconds: req.IntervalSeconds,
			Recall:          pref.Recall,
			Precision:       pref.Precision,
			Trees:           trees,
			WebhookURL:      req.WebhookURL,
			RetrainEvery:    req.RetrainEvery,
		}); err != nil {
			s.countError(w, http.StatusInternalServerError, err)
			return
		}
	}
	s.log.Info("series created", "name", name, "interval", interval)
	writeJSON(w, http.StatusCreated, map[string]string{"name": name})
}

// get returns the monitored series or writes a 404.
func (s *Server) get(w http.ResponseWriter, r *http.Request) *monitored {
	name := r.PathValue("name")
	s.mu.RLock()
	m := s.series[name]
	s.mu.RUnlock()
	if m == nil {
		s.countError(w, http.StatusNotFound, fmt.Errorf("no series %q", name))
	}
	return m
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	m := s.get(w, r)
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	st := Status{
		Name:            m.series.Name,
		Points:          m.series.Len(),
		AnomalousPoints: m.labels.Count(),
		LabeledWindows:  len(m.labels.Windows()),
		Trained:         m.monitor != nil,
		Recall:          m.pref.Recall,
		Precision:       m.pref.Precision,
		IntervalSeconds: int(m.series.Interval / time.Second),
	}
	if m.monitor != nil {
		st.CThld = m.monitor.CThld()
		st.TrainedAt = m.trained
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handlePoints(w http.ResponseWriter, r *http.Request) {
	m := s.get(w, r)
	if m == nil {
		return
	}
	var req PointsRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.countError(w, http.StatusBadRequest, fmt.Errorf("bad body: %w", err))
		return
	}
	if len(req.Points) == 0 {
		s.countError(w, http.StatusBadRequest, errors.New("no points"))
		return
	}
	m.mu.Lock()
	type observed struct {
		ts        time.Time
		anomalous bool
		prob      float64
	}
	var observations []observed
	resp := PointsResponse{}
	for _, p := range req.Points {
		if !p.Timestamp.IsZero() {
			// Points must arrive in order, one per slot.
			want := m.series.TimeAt(m.series.Len())
			if !p.Timestamp.UTC().Equal(want) {
				m.mu.Unlock()
				s.countError(w, http.StatusUnprocessableEntity,
					fmt.Errorf("out-of-order point: got %v, next slot is %v", p.Timestamp.UTC(), want))
				return
			}
		}
		idx := m.series.Len()
		m.series.Append(p.Value)
		m.labels = append(m.labels, false)
		resp.Appended++
		s.metrics.pointsIngested.Add(1)
		if m.monitor != nil {
			v := m.monitor.Step(p.Value)
			resp.Verdicts = append(resp.Verdicts, VerdictResponse{
				Index: idx, Probability: v.Probability, Anomalous: v.Anomalous,
			})
			if v.Anomalous {
				s.metrics.alarmsRaised.Add(1)
				m.alarms = append(m.alarms, Alarm{
					Time:        m.series.TimeAt(idx),
					Value:       p.Value,
					Probability: v.Probability,
					CThld:       v.CThld,
				})
				if len(m.alarms) > s.maxAlarms {
					m.alarms = m.alarms[len(m.alarms)-s.maxAlarms:]
				}
			}
			if m.incident != nil {
				observations = append(observations, observed{
					ts: m.series.TimeAt(idx), anomalous: v.Anomalous, prob: v.Probability,
				})
			}
		}
	}
	resp.Total = m.series.Len()
	if s.store != nil && resp.Appended > 0 {
		values := m.series.Values[m.series.Len()-resp.Appended:]
		if err := s.store.AppendPoints(m.series.Name, values); err != nil {
			s.log.Error("wal append failed", "series", m.series.Name, "err", err)
		}
	}
	// Weekly-style automatic incremental retraining (§3.2).
	if m.retrainEvery > 0 && m.monitor != nil &&
		m.series.Len()-m.pointsAtTrain >= m.retrainEvery {
		if err := s.retrainLocked(m); err != nil {
			s.log.Warn("auto-retrain failed", "series", m.series.Name, "err", err)
		}
	}
	incident := m.incident
	m.mu.Unlock()

	// Fold observations into the incident state outside the series lock.
	// Delivery itself is asynchronous (alerting.Pipeline), so Observe only
	// enqueues: a slow or dead webhook can never stall the ingest hot path.
	// The only error surface here is a saturated queue, which is counted by
	// the pipeline and logged.
	if incident != nil {
		for _, o := range observations {
			if err := incident.Observe(context.Background(), o.ts, o.anomalous, o.prob); err != nil {
				s.log.Warn("incident notification not queued", "series", r.PathValue("name"), "err", err)
			}
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleLabels(w http.ResponseWriter, r *http.Request) {
	m := s.get(w, r)
	if m == nil {
		return
	}
	var req LabelsRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.countError(w, http.StatusBadRequest, fmt.Errorf("bad body: %w", err))
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, lw := range req.Windows {
		if lw.Start < 0 || lw.End > m.series.Len() || lw.Start >= lw.End {
			s.countError(w, http.StatusUnprocessableEntity,
				fmt.Errorf("window [%d, %d) out of range 0..%d", lw.Start, lw.End, m.series.Len()))
			return
		}
	}
	for _, lw := range req.Windows {
		for i := lw.Start; i < lw.End; i++ {
			m.labels[i] = lw.Anomalous
		}
		if s.store != nil {
			if err := s.store.AppendLabel(m.series.Name, lw.Start, lw.End, lw.Anomalous); err != nil {
				s.log.Error("wal label failed", "series", m.series.Name, "err", err)
			}
		}
	}
	writeJSON(w, http.StatusOK, map[string]int{
		"anomalous_points": m.labels.Count(),
		"labeled_windows":  len(m.labels.Windows()),
	})
}

func (s *Server) handleTrain(w http.ResponseWriter, r *http.Request) {
	m := s.get(w, r)
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := s.retrainLocked(m); err != nil {
		s.countError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"trained_at": m.trained,
		"cthld":      m.monitor.CThld(),
		"points":     m.series.Len(),
	})
}

// retrainLocked (re)trains m's classifier; callers hold m.mu.
func (s *Server) retrainLocked(m *monitored) error {
	started := time.Now()
	defer func() { s.metrics.observeTraining(time.Since(started)) }()
	dets, err := s.registry(m.series.Interval)
	if err != nil {
		return err
	}
	name := m.series.Name
	cfg := core.MonitorConfig{
		Preference:    m.pref,
		Forest:        forest.Config{Trees: m.trees, Seed: 1},
		SkipInitialCV: m.monitor != nil, // CV once; EWMA carries after that
		OnDetectorPanic: func(detName string, recovered any) {
			s.metrics.detectorPanics.Add(1)
			s.log.Warn("detector panic sandboxed", "series", name,
				"detector", detName, "panic", recovered)
		},
	}
	if m.monitor == nil {
		mon, err := core.NewMonitor(m.series, m.labels, dets, cfg)
		if err != nil {
			return err
		}
		m.monitor = mon
	} else if err := m.monitor.Retrain(m.series, m.labels, dets); err != nil {
		return err
	}
	m.trained = time.Now().UTC()
	m.pointsAtTrain = m.series.Len()
	s.log.Info("series trained", "name", m.series.Name, "points", m.series.Len(), "cthld", m.monitor.CThld())
	return nil
}

func (s *Server) handleAlarms(w http.ResponseWriter, r *http.Request) {
	m := s.get(w, r)
	if m == nil {
		return
	}
	var since time.Time
	if q := r.URL.Query().Get("since"); q != "" {
		t, err := time.Parse(time.RFC3339, q)
		if err != nil {
			s.countError(w, http.StatusBadRequest, fmt.Errorf("bad since: %w", err))
			return
		}
		since = t
	}
	m.mu.Lock()
	out := make([]Alarm, 0, len(m.alarms))
	for _, a := range m.alarms {
		if a.Time.After(since) {
			out = append(out, a)
		}
	}
	m.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string][]Alarm{"alarms": out})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorResponse{Error: err.Error()})
}

// countError bumps the error counter; handlers call writeError via the
// server when they want accounting.
func (s *Server) countError(w http.ResponseWriter, code int, err error) {
	s.metrics.requestErrors.Add(1)
	writeError(w, code, err)
}
