package service

import (
	"context"
	"testing"
	"time"

	"opprentice/internal/core"
	"opprentice/internal/kpigen"
)

// TestClientTypedLifecycle drives the EVT predictor and the anomaly-type head
// through the HTTP wire: a series created with cthld_predictor=evt, labeled
// with typed windows, trained, and hit with a blatant sustained drop must
// surface the predicted type on /v1/alarms — and the label/alarm Type fields
// must survive the client round trip verbatim.
func TestClientTypedLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	c := newClientPair(t)
	ctx := context.Background()

	if err := c.Create(ctx, "pv", CreateRequest{
		IntervalSeconds: 3600,
		Start:           testStart,
		Trees:           10,
		CThldPredictor:  "evt",
		EVTQ:            0.02,
	}); err != nil {
		t.Fatal(err)
	}
	// Unknown predictor names are rejected at create time.
	if err := c.Create(ctx, "bad", CreateRequest{
		IntervalSeconds: 3600, Start: testStart, CThldPredictor: "pot",
	}); err == nil {
		t.Error("unknown cthld_predictor accepted")
	}

	p := kpigen.PV(kpigen.Small)
	p.Interval = time.Hour
	p.Weeks = 9
	d := kpigen.Generate(p, 71)
	pts := make([]Point, len(d.Series.Values))
	for i, v := range d.Series.Values {
		pts[i] = Point{Value: v}
	}
	if _, err := c.Append(ctx, "pv", pts); err != nil {
		t.Fatal(err)
	}
	var windows []LabelWindow
	for _, a := range d.Anomalies {
		windows = append(windows, LabelWindow{
			Start:     a.Window.Start,
			End:       a.Window.End,
			Anomalous: true,
			Type:      core.AnomalyClass(kpigen.ClassOf(a.Type)).Wire(),
		})
	}
	if err := c.Label(ctx, "pv", windows); err != nil {
		t.Fatal(err)
	}
	// An unknown type name is rejected wholesale.
	if err := c.Label(ctx, "pv", []LabelWindow{{Start: 0, End: 1, Anomalous: true, Type: "meltdown"}}); err == nil {
		t.Error("unknown anomaly type accepted")
	}
	if _, err := c.Train(ctx, "pv"); err != nil {
		t.Fatal(err)
	}
	st, err := c.Status(ctx, "pv")
	if err != nil {
		t.Fatal(err)
	}
	if st.CThldPredictor != "evt" {
		t.Errorf("status cthld_predictor = %q, want evt", st.CThldPredictor)
	}
	if !st.TypedModel {
		t.Error("status should report a trained type head")
	}

	// A sustained 95% drop must alarm, and the alarms must carry a valid
	// predicted type through JSON and back.
	last := d.Series.Values[len(d.Series.Values)-1]
	drop := make([]Point, 6)
	for i := range drop {
		drop[i] = Point{Value: last * 0.05}
	}
	if _, err := c.Append(ctx, "pv", drop); err != nil {
		t.Fatal(err)
	}
	alarms, err := c.Alarms(ctx, "pv", time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if len(alarms) == 0 {
		t.Fatal("no alarms after a 95% drop")
	}
	typedSeen := false
	for _, a := range alarms {
		cls, ok := core.ParseClass(a.Type)
		if !ok {
			t.Fatalf("alarm carries unparsable type %q", a.Type)
		}
		if cls != core.ClassNone {
			typedSeen = true
		}
	}
	if !typedSeen {
		t.Error("no alarm carried a predicted type; head abstained on a blatant drop")
	}
}
