package service

// Fault-injection and degradation tests for the service layer: corrupt WALs
// are quarantined on restore, panicking detector configurations degrade
// instead of crashing, webhook trouble never slows ingest, graceful shutdown
// completes in-flight requests and flushes the WAL, and the typed client
// retries idempotent requests.

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"opprentice/internal/alerting"
	"opprentice/internal/detectors"
	"opprentice/internal/faultinject"
	"opprentice/internal/kpigen"
	"opprentice/internal/tsdb"
)

func discardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// waitUntil polls cond until it holds or a 5s deadline passes.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// metricValue scrapes /v1/metrics and returns the named sample's value.
func metricValue(t *testing.T, ts *httptest.Server, name string) float64 {
	t.Helper()
	_, body := doJSON(t, http.MethodGet, ts.URL+"/v1/metrics", nil)
	for _, line := range strings.Split(string(body), "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				t.Fatalf("parse metric %s: %v", name, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not exposed", name)
	return 0
}

// trainOn bootstraps nine weeks of hourly PV data onto an existing series,
// labels the known anomalies, trains, and returns the dataset so the test
// can stream continuations.
func trainOn(t *testing.T, ts *httptest.Server, name string, seed int64) *kpigen.Dataset {
	t.Helper()
	p := kpigen.PV(kpigen.Small)
	p.Interval = time.Hour
	p.Weeks = 9
	d := kpigen.Generate(p, seed)
	pts := make([]Point, len(d.Series.Values))
	for i, v := range d.Series.Values {
		pts[i] = Point{Value: v}
	}
	if resp, b := doJSON(t, http.MethodPost, ts.URL+"/v1/series/"+name+"/points", PointsRequest{Points: pts}); resp.StatusCode != http.StatusOK {
		t.Fatalf("bootstrap: %d %s", resp.StatusCode, b)
	}
	var windows []LabelWindow
	for _, w := range d.Labels.Windows() {
		windows = append(windows, LabelWindow{Start: w.Start, End: w.End, Anomalous: true})
	}
	doJSON(t, http.MethodPost, ts.URL+"/v1/series/"+name+"/labels", LabelsRequest{Windows: windows})
	if resp, b := doJSON(t, http.MethodPost, ts.URL+"/v1/series/"+name+"/train", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("train: %d %s", resp.StatusCode, b)
	}
	return d
}

// TestFaultRestoreQuarantinesCorruptLog is the regression for "one corrupt
// log of three": restore must quarantine the damaged series and keep serving
// the other two.
func TestFaultRestoreQuarantinesCorruptLog(t *testing.T) {
	dir := t.TempDir()
	store, err := tsdb.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s1 := NewServer(discardLogger())
	s1.SetStore(store)
	ts1 := httptest.NewServer(s1.Handler())
	for _, name := range []string{"a", "b", "c"} {
		createSeries(t, ts1, name, 3600)
		doJSON(t, http.MethodPost, ts1.URL+"/v1/series/"+name+"/points", PointsRequest{
			Points: []Point{{Value: 1}, {Value: 2}, {Value: 3}},
		})
		doJSON(t, http.MethodPost, ts1.URL+"/v1/series/"+name+"/labels", LabelsRequest{
			Windows: []LabelWindow{{Start: 0, End: 1, Anomalous: true}},
		})
	}
	ts1.Close()
	store.Close()

	// Rot one byte inside b's newest points frame. The label frame behind it
	// makes this mid-segment corruption, not a forgivable torn tail.
	if err := tsdb.CorruptPointsFrame(dir, "b"); err != nil {
		t.Fatal(err)
	}

	store2, err := tsdb.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	s2 := NewServer(discardLogger())
	s2.SetStore(store2)
	restored, err := s2.Restore()
	if err != nil {
		t.Fatalf("Restore must survive one corrupt log: %v", err)
	}
	if restored != 2 {
		t.Fatalf("restored = %d, want 2", restored)
	}
	// The quarantine tombstones the series but keeps the damaged frames on
	// disk for inspection until compaction.
	if _, err := store2.Load("b"); err == nil || errors.Is(err, tsdb.ErrCorrupt) {
		t.Errorf("Load(b) after quarantine = %v, want a not-found error", err)
	}
	if stats, err := tsdb.Dump(dir, io.Discard, tsdb.DumpOptions{Series: "b"}); err != nil || stats.CorruptFrames == 0 {
		t.Errorf("damaged frames not preserved (stats %+v, err %v)", stats, err)
	}

	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	for _, name := range []string{"a", "c"} {
		resp, body := doJSON(t, http.MethodGet, ts2.URL+"/v1/series/"+name, nil)
		var st Status
		if resp.StatusCode != http.StatusOK || json.Unmarshal(body, &st) != nil || st.Points != 3 {
			t.Errorf("healthy series %s: %d %s", name, resp.StatusCode, body)
		}
	}
	if resp, _ := doJSON(t, http.MethodGet, ts2.URL+"/v1/series/b", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("quarantined series b = %d, want 404", resp.StatusCode)
	}
	if v := metricValue(t, ts2, "opprenticed_wal_quarantined_total"); v != 1 {
		t.Errorf("wal_quarantined_total = %v, want 1", v)
	}
	// The name is usable again for a fresh series.
	createSeries(t, ts2, "b", 3600)
}

// TestFaultPanickingDetectorConfigDegrades proves the acceptance criterion:
// with a panicking detector configuration in the registry, the service still
// trains, still answers every /points request with a verdict, and surfaces
// the sandboxed panic through /v1/metrics.
func TestFaultPanickingDetectorConfigDegrades(t *testing.T) {
	srv := NewServer(discardLogger())
	srv.SetDetectorRegistry(func(iv time.Duration) ([]detectors.Detector, error) {
		ds, err := detectors.Registry(iv)
		if err != nil {
			return nil, err
		}
		return append(ds, &faultinject.PanickingDetector{ConfigName: "boom(cfg)"}), nil
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, body := doJSON(t, http.MethodPut, ts.URL+"/v1/series/pv", CreateRequest{
		IntervalSeconds: 3600, Start: testStart, Trees: 10,
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d %s", resp.StatusCode, body)
	}
	d := trainOn(t, ts, "pv", 81)

	// Every streamed point still gets a verdict despite the dead detector.
	stream := make([]Point, 10)
	for i := range stream {
		stream[i] = Point{Value: d.Series.Values[i]}
	}
	resp, body = doJSON(t, http.MethodPost, ts.URL+"/v1/series/pv/points", PointsRequest{Points: stream})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("points: %d %s", resp.StatusCode, body)
	}
	var pr PointsResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if len(pr.Verdicts) != len(stream) {
		t.Errorf("verdicts = %d, want %d (every point must be classified)", len(pr.Verdicts), len(stream))
	}
	if v := metricValue(t, ts, "opprenticed_detector_panics_total"); v < 1 {
		t.Errorf("detector_panics_total = %v, want >= 1", v)
	}
	_, body = doJSON(t, http.MethodGet, ts.URL+"/v1/metrics", nil)
	if !strings.Contains(string(body), `opprenticed_series_degraded_detectors{series="pv"} 1`) {
		t.Errorf("degraded gauge missing from metrics:\n%s", body)
	}
}

// TestFaultWebhookRetryKeepsIngestFast proves the acceptance criterion: a
// webhook endpoint that fails three times and then succeeds neither slows
// /points nor causes duplicate delivery.
func TestFaultWebhookRetryKeepsIngestFast(t *testing.T) {
	var failuresLeft atomic.Int64
	failuresLeft.Store(3)
	var mu sync.Mutex
	var delivered []map[string]any
	receiver := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if failuresLeft.Add(-1) >= 0 {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		body, _ := io.ReadAll(r.Body)
		var e map[string]any
		if json.Unmarshal(body, &e) == nil {
			mu.Lock()
			delivered = append(delivered, e)
			mu.Unlock()
		}
		w.WriteHeader(http.StatusNoContent)
	}))
	defer receiver.Close()

	srv := NewServer(discardLogger())
	srv.SetNotifyConfig(alerting.PipelineConfig{
		BaseDelay: time.Millisecond,
		MaxDelay:  4 * time.Millisecond,
		Log:       discardLogger(),
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(srv.Close)

	resp, body := doJSON(t, http.MethodPut, ts.URL+"/v1/series/pv", CreateRequest{
		IntervalSeconds: 3600, Start: testStart, Trees: 10, WebhookURL: receiver.URL,
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d %s", resp.StatusCode, body)
	}
	d := trainOn(t, ts, "pv", 81)

	// A sustained drop opens an incident while the webhook is refusing
	// deliveries; the ingest request must not feel any of it.
	last := d.Series.Values[len(d.Series.Values)-1]
	start := time.Now()
	resp, body = doJSON(t, http.MethodPost, ts.URL+"/v1/series/pv/points", PointsRequest{
		Points: []Point{{Value: last * 0.05}, {Value: last * 0.05}, {Value: last * 0.05}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("points: %d %s", resp.StatusCode, body)
	}
	if el := time.Since(start); el > time.Second {
		t.Errorf("ingest took %v against a failing webhook; delivery must be asynchronous", el)
	}

	waitUntil(t, "eventual webhook delivery", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(delivered) >= 1
	})
	time.Sleep(50 * time.Millisecond) // give a hypothetical duplicate time to appear
	mu.Lock()
	opens := 0
	for _, e := range delivered {
		if e["state"] == "open" {
			opens++
		}
	}
	mu.Unlock()
	if opens != 1 {
		t.Errorf("incident-open delivered %d times, want exactly once", opens)
	}
	if v := metricValue(t, ts, "opprenticed_notify_retries_total"); v < 3 {
		t.Errorf("notify_retries_total = %v, want >= 3", v)
	}
	if v := metricValue(t, ts, "opprenticed_notify_delivered_total"); v < 1 {
		t.Errorf("notify_delivered_total = %v, want >= 1", v)
	}
}

// TestFaultGracefulShutdownCompletesInflight exercises the satellite: an
// in-flight /points request completes during http.Server.Shutdown and its
// writes are durable in the WAL afterwards.
func TestFaultGracefulShutdownCompletesInflight(t *testing.T) {
	dir := t.TempDir()
	store, err := tsdb.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(discardLogger())
	srv.SetStore(store)
	httpSrv := &http.Server{Handler: srv.Handler()}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go httpSrv.Serve(ln)
	base := "http://" + ln.Addr().String()

	resp, body := doJSON(t, http.MethodPut, base+"/v1/series/pv", CreateRequest{
		IntervalSeconds: 3600, Start: testStart, Trees: 10,
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d %s", resp.StatusCode, body)
	}

	// Start a /points request whose body arrives slowly, so it is mid-flight
	// when Shutdown begins.
	pr, pw := io.Pipe()
	req, err := http.NewRequest(http.MethodPost, base+"/v1/series/pv/points", pr)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	type result struct {
		resp *http.Response
		body []byte
		err  error
	}
	resCh := make(chan result, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			resCh <- result{err: err}
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		resCh <- result{resp: resp, body: b}
	}()
	if _, err := pw.Write([]byte(`{"points":[{"value":1}`)); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // let the handler start decoding

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownDone <- httpSrv.Shutdown(ctx)
	}()
	time.Sleep(50 * time.Millisecond) // let Shutdown close the listener

	// Finish the body: graceful shutdown must let this request complete.
	if _, err := pw.Write([]byte(`,{"value":2},{"value":3}]}`)); err != nil {
		t.Fatal(err)
	}
	pw.Close()

	res := <-resCh
	if res.err != nil {
		t.Fatalf("in-flight request failed during shutdown: %v", res.err)
	}
	if res.resp.StatusCode != http.StatusOK {
		t.Fatalf("in-flight request: %d %s", res.resp.StatusCode, res.body)
	}
	var ptsResp PointsResponse
	if err := json.Unmarshal(res.body, &ptsResp); err != nil {
		t.Fatal(err)
	}
	if ptsResp.Appended != 3 {
		t.Errorf("appended = %d, want 3", ptsResp.Appended)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	// The daemon's shutdown order: HTTP drained, then pipelines, then store.
	srv.Close()
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	// Everything the acknowledged request wrote is in the WAL.
	store2, err := tsdb.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	got, err := store2.Load("pv")
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Values) != 3 {
		t.Errorf("WAL replay = %v, want the 3 acknowledged points", got.Values)
	}
}

// TestFaultMetricsExposeFaultCounters pins the names of the fault-layer
// metrics so dashboards can rely on them from day one.
func TestFaultMetricsExposeFaultCounters(t *testing.T) {
	ts := newTestServer(t)
	for _, name := range []string{
		"opprenticed_detector_panics_total",
		"opprenticed_notify_retries_total",
		"opprenticed_notify_dropped_total",
		"opprenticed_notify_delivered_total",
		"opprenticed_wal_quarantined_total",
	} {
		if v := metricValue(t, ts, name); v != 0 {
			t.Errorf("%s = %v on a fresh server, want 0", name, v)
		}
	}
}

// Client retry fault tests.

func TestFaultClientRetriesIdempotentOn5xx(t *testing.T) {
	var calls atomic.Int64
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			writeError(w, http.StatusBadGateway, errors.New("flaky proxy"))
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	}))
	defer backend.Close()
	c := NewClient(backend.URL, backend.Client())
	c.Retry = RetryConfig{MaxAttempts: 4, BaseDelay: time.Millisecond}
	if err := c.Health(context.Background()); err != nil {
		t.Fatalf("Health should succeed after retries: %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("attempts = %d, want 3 (2 failures + 1 success)", got)
	}
}

func TestFaultClientNeverRetriesNonIdempotent(t *testing.T) {
	var calls atomic.Int64
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		writeError(w, http.StatusInternalServerError, errors.New("down"))
	}))
	defer backend.Close()
	c := NewClient(backend.URL, backend.Client())
	c.Retry = RetryConfig{MaxAttempts: 5, BaseDelay: time.Millisecond}
	if _, err := c.Train(context.Background(), "pv"); err == nil {
		t.Fatal("Train against a dead backend should fail")
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("POST attempts = %d, want exactly 1 (a retried POST could double-apply)", got)
	}
}

func TestFaultClientStopsRetryingOn4xx(t *testing.T) {
	var calls atomic.Int64
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		writeError(w, http.StatusNotFound, errors.New("no such series"))
	}))
	defer backend.Close()
	c := NewClient(backend.URL, backend.Client())
	c.Retry = RetryConfig{MaxAttempts: 5, BaseDelay: time.Millisecond}
	_, err := c.Status(context.Background(), "ghost")
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusNotFound {
		t.Fatalf("err = %v, want 404 APIError", err)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("attempts = %d, want 1 (4xx will not improve by retrying)", got)
	}
}

func TestFaultClientGivesUpAfterMaxAttempts(t *testing.T) {
	var calls atomic.Int64
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		writeError(w, http.StatusServiceUnavailable, errors.New("still down"))
	}))
	defer backend.Close()
	c := NewClient(backend.URL, backend.Client())
	c.Retry = RetryConfig{MaxAttempts: 3, BaseDelay: time.Millisecond}
	if _, err := c.List(context.Background()); err == nil {
		t.Fatal("List against a dead backend should fail")
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("attempts = %d, want 3", got)
	}
}

// Regression: 429 admission sheds used to fall through the generic "4xx is
// final" arm, so an idempotent request was never retried even though the
// server explicitly said when to come back.
func TestFaultClientRetriesIdempotentOn429(t *testing.T) {
	var calls atomic.Int64
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, errors.New("overloaded"))
			return
		}
		writeJSON(w, http.StatusOK, map[string][]string{"series": {}})
	}))
	defer backend.Close()
	c := NewClient(backend.URL, backend.Client())
	c.Retry = RetryConfig{MaxAttempts: 3, BaseDelay: time.Millisecond}
	start := time.Now()
	if _, err := c.List(context.Background()); err != nil {
		t.Fatalf("List should succeed after the shed clears: %v", err)
	}
	if got := calls.Load(); got != 2 {
		t.Errorf("attempts = %d, want 2 (one shed, one success)", got)
	}
	// The 1s Retry-After hint must replace the 1ms computed backoff.
	if elapsed := time.Since(start); elapsed < 900*time.Millisecond {
		t.Errorf("retried after %v, want >= ~1s (Retry-After honored)", elapsed)
	}
}

func TestFaultClientNeverRetriesPointsOn429(t *testing.T) {
	var calls atomic.Int64
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, errors.New("overloaded"))
	}))
	defer backend.Close()
	c := NewClient(backend.URL, backend.Client())
	c.Retry = RetryConfig{MaxAttempts: 5, BaseDelay: time.Millisecond}
	_, err := c.Append(context.Background(), "pv", []Point{{Timestamp: time.Unix(0, 0), Value: 1}})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("err = %v, want 429 APIError", err)
	}
	if apiErr.RetryAfter != time.Second {
		t.Errorf("RetryAfter = %v, want 1s parsed from the header", apiErr.RetryAfter)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("POST attempts = %d, want exactly 1 (a blind resend could double-append)", got)
	}
}
