package service

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"net/http"
	"testing"
)

// TestStreamPointsBulkIngest drives the binary bulk path end to end: one
// persistent stream carrying interleaved batches for two series, verified
// against the JSON status endpoint afterwards.
func TestStreamPointsBulkIngest(t *testing.T) {
	ts := newTestServer(t)
	defer ts.Close()
	createSeries(t, ts, "pv", 60)
	createSeries(t, ts, "sr", 60)

	c := NewClient(ts.URL, nil)
	st, err := c.StreamPoints(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var wantPV, wantSR int
	for i := 0; i < 10; i++ {
		if err := st.Send("pv", []float64{1, 2, 3}); err != nil {
			t.Fatal(err)
		}
		wantPV += 3
		if err := st.Send("sr", []float64{0.5}); err != nil {
			t.Fatal(err)
		}
		wantSR++
	}
	sum, err := st.Close()
	if err != nil {
		t.Fatal(err)
	}
	if sum.Appended != wantPV+wantSR || sum.Batches != 20 {
		t.Errorf("summary = %+v, want appended %d over 20 batches", sum, wantPV+wantSR)
	}
	for name, want := range map[string]int{"pv": wantPV, "sr": wantSR} {
		status, err := c.Status(context.Background(), name)
		if err != nil {
			t.Fatal(err)
		}
		if status.Points != want {
			t.Errorf("%s: %d points, want %d", name, status.Points, want)
		}
	}
}

// TestStreamPointsUnknownSeries checks mid-stream failure: the server aborts
// on the bad batch and the close error carries the status and the partial
// summary of what committed first.
func TestStreamPointsUnknownSeries(t *testing.T) {
	ts := newTestServer(t)
	defer ts.Close()
	createSeries(t, ts, "pv", 60)

	c := NewClient(ts.URL, nil)
	st, err := c.StreamPoints(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Send("pv", []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	// Sends may start failing as soon as the server aborts; the definitive
	// outcome comes from Close.
	_ = st.Send("ghost", []float64{3})
	sum, err := st.Close()
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusNotFound {
		t.Fatalf("close err = %v, want a 404 APIError", err)
	}
	if sum.Appended != 2 || sum.Batches != 1 {
		t.Errorf("partial summary = %+v, want the first committed batch reported", sum)
	}
}

// TestIngestRejectsMalformedFrames posts raw garbage shapes at the endpoint
// and expects 400s, never a hang or a 500.
func TestIngestRejectsMalformedFrames(t *testing.T) {
	ts := newTestServer(t)
	defer ts.Close()

	frame := func(payload []byte) []byte {
		var b []byte
		b = binary.AppendUvarint(b, uint64(len(payload)))
		return append(b, payload...)
	}
	cases := map[string][]byte{
		"oversized length": binary.AppendUvarint(nil, 1<<40),
		"zero length":      {0x00},
		"truncated body":   {0x10, 0x01},
		"unknown op":       frame([]byte{0x7F, 0x01}),
		"unbound stream":   frame(append([]byte{ingestOpPoints, 0x09, 0x01}, make([]byte, 8)...)),
		"count mismatch":   frame([]byte{ingestOpPoints, 0x01, 0x05}),
		"empty bind name":  frame([]byte{ingestOpBind, 0x01}),
	}
	for name, body := range cases {
		resp, err := http.Post(ts.URL+"/v1/ingest", ingestContentType, bytes.NewReader(body))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
}

// TestIngestEmptyStreamOK: opening and closing a stream without sending
// anything is a clean zero summary, mirroring an empty JSON batch being
// invalid but an empty session being fine.
func TestIngestEmptyStreamOK(t *testing.T) {
	ts := newTestServer(t)
	defer ts.Close()
	c := NewClient(ts.URL, nil)
	st, err := c.StreamPoints(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	sum, err := st.Close()
	if err != nil || sum.Appended != 0 || sum.Batches != 0 {
		t.Fatalf("empty stream: %+v, %v", sum, err)
	}
}
