package service

// Streaming bulk ingest: a binary, length-delimited alternative to POST
// points for high-volume feeds. One persistent POST /v1/ingest request
// carries any number of point batches for any number of series, so the
// per-request JSON and HTTP overhead is paid once per connection instead of
// once per batch.
//
// The body is a sequence of length-delimited frames:
//
//	stream  := frame*
//	frame   := uvarint(len(payload)) | payload
//	payload := op(1B) | ...
//
//	op 0x01 bind:   uvarint(streamID) | name bytes (rest of the payload)
//	op 0x02 points: uvarint(streamID) | uvarint(count) | count × float64 LE
//
// A bind declares a small integer handle for a series name; subsequent
// points frames reference the handle, so a million-point session does not
// resend the name a million times — mirroring the WAL's interned series
// dictionary. Values are raw little-endian float64s appended at the series'
// next slots (the implicit-timestamp fast path of the JSON API).
//
// Batches apply in stream order with the same semantics as POST points
// (admission control, WAL append, verdicts). The first failing batch aborts
// the stream: the response then reports the error plus how much committed,
// and nothing after the failing frame is applied. Verdicts are not streamed
// back — bulk ingest is for backfill and relay feeds; the response
// summarizes how many points were appended and how many alarms they raised.

import (
	"bufio"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"

	"opprentice/internal/engine"
)

const (
	ingestOpBind   = 0x01
	ingestOpPoints = 0x02

	// maxIngestFrame bounds one frame's payload; bigger batches must be
	// split by the sender (Client.StreamPoints does).
	maxIngestFrame = 8 << 20
	// ingestContentType identifies the binary framing.
	ingestContentType = "application/x-opprentice-ingest"
)

// IngestSummary is the response of POST /v1/ingest.
type IngestSummary struct {
	// Appended is the total number of points committed across all batches.
	Appended int `json:"appended"`
	// Batches is how many points frames were applied.
	Batches int `json:"batches"`
	// Alarms is how many of the appended points were judged anomalous.
	Alarms int `json:"alarms"`
}

// Flush-group bounds for frame coalescing: a group never exceeds
// maxIngestGroupBatches points frames or maxIngestGroupPoints decoded points
// (one maximum-size frame's worth), keeping the arena memory bounded.
const (
	maxIngestGroupBatches = 64
	maxIngestGroupPoints  = 1 << 20
)

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	br := bufio.NewReaderSize(r.Body, 64<<10)
	names := make(map[uint64]string)
	var sum IngestSummary
	bufp := s.vbufs.Get().(*[]engine.Verdict)
	defer s.vbufs.Put(bufp)
	var (
		payload []byte
		arena   []engine.Point       // decoded points of the pending group
		group   []engine.SeriesBatch // pending batches, aliasing arena
	)

	// flush applies the pending group through the engine's bulk path — one
	// striped admission handshake and one deadline per group instead of per
	// frame. Pipelined senders coalesce up to maxIngestGroupBatches frames
	// per flush; a trickling sender flushes after every frame (the Buffered
	// check below), so its per-point latency is unchanged. On failure it
	// writes the error response (everything before the failing batch is
	// committed and summarized) and reports false.
	flush := func() bool {
		if len(group) == 0 {
			return true
		}
		ctx, cancel := opCtx(r, s.timeouts.Append)
		bsum, vbuf, err := s.eng.AppendBulk(ctx, group, *bufp)
		cancel()
		*bufp = vbuf
		sum.Appended += bsum.Appended
		sum.Batches += bsum.Batches
		sum.Alarms += bsum.Alarms
		group = group[:0]
		arena = arena[:0]
		if err != nil {
			s.failIngest(w, sum, statusOf(err), err)
			return false
		}
		return true
	}
	// abort reports a malformed stream: pending complete frames still apply
	// first, so the summary reflects everything committed.
	abort := func(code int, err error) {
		if flush() {
			s.failIngest(w, sum, code, err)
		}
	}

	for {
		n, err := binary.ReadUvarint(br)
		if err == io.EOF {
			break // clean end of stream
		}
		if err != nil || n == 0 || n > maxIngestFrame {
			abort(http.StatusBadRequest, fmt.Errorf("bad ingest frame length (%v)", err))
			return
		}
		if uint64(cap(payload)) < n {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(br, payload); err != nil {
			abort(http.StatusBadRequest, fmt.Errorf("truncated ingest frame: %w", err))
			return
		}
		op := payload[0]
		id, vn := binary.Uvarint(payload[1:])
		if vn <= 0 {
			abort(http.StatusBadRequest, errors.New("bad ingest stream id"))
			return
		}
		body := payload[1+vn:]
		switch op {
		case ingestOpBind:
			if len(body) == 0 {
				abort(http.StatusBadRequest, errors.New("bind frame without a name"))
				return
			}
			names[id] = string(body)
		case ingestOpPoints:
			name, ok := names[id]
			if !ok {
				abort(http.StatusBadRequest, fmt.Errorf("points frame for unbound stream id %d", id))
				return
			}
			count, cn := binary.Uvarint(body)
			if cn <= 0 || uint64(len(body)-cn) != count*8 {
				abort(http.StatusBadRequest,
					fmt.Errorf("points frame for %q: count %d does not match payload", name, count))
				return
			}
			if len(group) >= maxIngestGroupBatches || len(arena)+int(count) > maxIngestGroupPoints {
				if !flush() {
					return
				}
			}
			body = body[cn:]
			lo := len(arena)
			for len(body) > 0 {
				arena = append(arena, engine.Point{
					Value: math.Float64frombits(binary.LittleEndian.Uint64(body)),
				})
				body = body[8:]
			}
			group = append(group, engine.SeriesBatch{Name: name, Points: arena[lo:]})
		default:
			abort(http.StatusBadRequest, fmt.Errorf("unknown ingest op %#x", op))
			return
		}
		// Nothing more buffered: the next read would block on the network,
		// so apply what we have instead of sitting on committed-but-unacked
		// points while the sender trickles.
		if br.Buffered() == 0 && !flush() {
			return
		}
	}
	if !flush() {
		return
	}
	writeJSON(w, http.StatusOK, sum)
}

// failIngest reports a mid-stream failure: the uniform error body plus the
// partial summary, so the sender knows exactly how much committed before the
// stream died.
func (s *Server) failIngest(w http.ResponseWriter, sum IngestSummary, code int, err error) {
	s.metrics.requestErrors.Add(1)
	writeJSON(w, code, struct {
		errorResponse
		IngestSummary
	}{errorResponse{Error: err.Error()}, sum})
}

// statusOf maps an engine error to its HTTP status, mirroring Server.fail
// (which also writes; this one only classifies).
func statusOf(err error) int {
	switch {
	case errors.Is(err, engine.ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, engine.ErrExists):
		return http.StatusConflict
	case errors.Is(err, engine.ErrInvalid):
		return http.StatusBadRequest
	case errors.Is(err, engine.ErrRejected):
		return http.StatusUnprocessableEntity
	case errors.Is(err, engine.ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, engine.ErrStalled),
		errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}

// PointStream is one live bulk-ingest session opened by Client.StreamPoints.
// Send and Close must be called from one goroutine.
type PointStream struct {
	pw      *io.PipeWriter
	bw      *bufio.Writer
	ids     map[string]uint64
	nextID  uint64
	scratch []byte
	done    chan streamResult
	err     error
}

type streamResult struct {
	sum IngestSummary
	err error
}

// StreamPoints opens a streaming bulk-ingest session: one persistent POST
// /v1/ingest request whose body is fed by subsequent Send calls. The
// returned stream must be Closed to learn the outcome; ctx cancellation
// aborts the request. Bulk ingest is not retried (a replayed stream would
// double-append), so it bypasses the client's Retry policy.
func (c *Client) StreamPoints(ctx context.Context) (*PointStream, error) {
	pr, pw := io.Pipe()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/ingest", pr)
	if err != nil {
		pw.Close()
		return nil, err
	}
	req.Header.Set("Content-Type", ingestContentType)
	st := &PointStream{
		pw:   pw,
		bw:   bufio.NewWriterSize(pw, 64<<10),
		ids:  make(map[string]uint64),
		done: make(chan streamResult, 1),
	}
	go func() {
		resp, err := c.http.Do(req)
		if err != nil {
			// Unblock a Send stuck writing into the abandoned pipe.
			pr.CloseWithError(err)
			st.done <- streamResult{err: err}
			return
		}
		defer resp.Body.Close()
		data, rerr := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		var res streamResult
		if resp.StatusCode/100 != 2 {
			apiErr := &APIError{StatusCode: resp.StatusCode, Message: string(data)}
			var er errorResponse
			if jsonUnmarshal(data, &er) && er.Error != "" {
				apiErr.Message = er.Error
			}
			res.err = apiErr
			// A mid-stream failure means the server stopped reading; release
			// the writer side so Send fails fast instead of blocking forever.
			pr.CloseWithError(apiErr)
		} else if rerr != nil {
			res.err = rerr
		}
		_ = jsonUnmarshal(data, &res.sum)
		st.done <- res
	}()
	return st, nil
}

// Send appends one batch of values to the named series at its next slots.
// Batches larger than the server's frame cap are split transparently. The
// first transport or server failure sticks: every later Send reports it, and
// Close returns the definitive outcome.
func (st *PointStream) Send(name string, values []float64) error {
	if st.err != nil {
		return st.err
	}
	id, ok := st.ids[name]
	if !ok {
		st.nextID++
		id = st.nextID
		st.ids[name] = id
		st.scratch = st.scratch[:0]
		st.scratch = append(st.scratch, ingestOpBind)
		st.scratch = binary.AppendUvarint(st.scratch, id)
		st.scratch = append(st.scratch, name...)
		if err := st.writeFrame(); err != nil {
			return err
		}
	}
	const maxPer = (maxIngestFrame - 64) / 8
	for len(values) > 0 {
		batch := values
		if len(batch) > maxPer {
			batch = batch[:maxPer]
		}
		values = values[len(batch):]
		st.scratch = st.scratch[:0]
		st.scratch = append(st.scratch, ingestOpPoints)
		st.scratch = binary.AppendUvarint(st.scratch, id)
		st.scratch = binary.AppendUvarint(st.scratch, uint64(len(batch)))
		for _, v := range batch {
			st.scratch = binary.LittleEndian.AppendUint64(st.scratch, math.Float64bits(v))
		}
		if err := st.writeFrame(); err != nil {
			return err
		}
	}
	return nil
}

// writeFrame emits st.scratch as one length-delimited frame.
func (st *PointStream) writeFrame() error {
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(st.scratch)))
	if _, err := st.bw.Write(hdr[:n]); err == nil {
		_, err = st.bw.Write(st.scratch)
		if err == nil {
			return nil
		}
		st.err = err
	} else {
		st.err = err
	}
	return st.err
}

// Close flushes the stream, ends the request, and returns the server's
// summary of everything committed. It must be called exactly once; after an
// error it still returns the partial summary the server reported.
func (st *PointStream) Close() (IngestSummary, error) {
	flushErr := st.bw.Flush()
	st.pw.Close()
	res := <-st.done
	if res.err == nil && flushErr != nil && st.err == nil {
		res.err = flushErr
	}
	return res.sum, res.err
}

// jsonUnmarshal reports whether data parsed into v (tolerating empty
// bodies), keeping the call sites above readable.
func jsonUnmarshal(data []byte, v any) bool {
	return len(data) > 0 && json.Unmarshal(data, v) == nil
}
