package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"opprentice/internal/engine"
)

// Client is a typed Go client for the opprenticed HTTP API. The zero value
// is not usable; construct it with NewClient.
type Client struct {
	base string
	http *http.Client

	// Retry configures automatic retry with exponential backoff for
	// idempotent requests (GET, PUT, HEAD, DELETE) that fail with a
	// transport error, a 5xx status, or a 429 overload shed — for 429 and
	// 503 the server's Retry-After header, when present, replaces the
	// computed backoff. The zero value disables retry, so existing callers
	// keep single-attempt semantics. Non-idempotent requests (POST
	// points/labels/train/rollback) are never retried, not even on 429: a
	// retried points POST could double-append and a retried rollback would
	// walk back two generations.
	Retry RetryConfig
}

// RetryConfig tunes Client retry behaviour.
type RetryConfig struct {
	// MaxAttempts is the total number of attempts including the first;
	// values <= 1 mean no retry.
	MaxAttempts int
	// BaseDelay is the first backoff (default 100ms); it doubles per
	// attempt up to MaxDelay (default 2s), with up to 20% random jitter.
	BaseDelay time.Duration
	MaxDelay  time.Duration
}

// NewClient returns a client for the service at baseURL (e.g.
// "http://localhost:8080"). httpClient may be nil for sane defaults.
func NewClient(baseURL string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = &http.Client{Timeout: 5 * time.Minute}
	}
	return &Client{base: baseURL, http: httpClient}
}

// retryable reports whether a request with this method may be safely
// re-sent.
func retryable(method string) bool {
	switch method {
	case http.MethodGet, http.MethodHead, http.MethodPut, http.MethodDelete:
		return true
	}
	return false
}

// APIError is a non-2xx response from the service.
type APIError struct {
	StatusCode int
	Message    string
	// RetryAfter is the server's Retry-After hint (zero when absent). The
	// service sends it on 429 admission sheds and 503 stalls.
	RetryAfter time.Duration
}

// Error implements error.
func (e *APIError) Error() string {
	return fmt.Sprintf("opprenticed: %d: %s", e.StatusCode, e.Message)
}

// do performs one JSON round trip (with retry for idempotent methods when
// configured); out may be nil.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var payload []byte
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return err
		}
		payload = b
	}
	attempts := 1
	if c.Retry.MaxAttempts > 1 && retryable(method) {
		attempts = c.Retry.MaxAttempts
	}
	delay := c.Retry.BaseDelay
	if delay <= 0 {
		delay = 100 * time.Millisecond
	}
	maxDelay := c.Retry.MaxDelay
	if maxDelay <= 0 {
		maxDelay = 2 * time.Second
	}
	var lastErr error
	var serverWait time.Duration // Retry-After from the previous response
	for attempt := 1; attempt <= attempts; attempt++ {
		if attempt > 1 {
			wait := delay + time.Duration(0.2*rand.Float64()*float64(delay))
			if serverWait > 0 {
				wait = serverWait
			}
			t := time.NewTimer(wait)
			select {
			case <-ctx.Done():
				t.Stop()
				return ctx.Err()
			case <-t.C:
			}
			if delay *= 2; delay > maxDelay {
				delay = maxDelay
			}
		}
		err := c.doOnce(ctx, method, path, payload, out)
		if err == nil {
			return nil
		}
		lastErr = err
		serverWait = 0
		// Transport errors, 5xx responses, and 429 admission sheds are worth
		// retrying (the method is already known idempotent here); any other
		// 4xx will not improve on its own. A Retry-After hint overrides the
		// computed backoff for the next attempt.
		var apiErr *APIError
		if errors.As(err, &apiErr) {
			switch {
			case apiErr.StatusCode >= 500:
			case apiErr.StatusCode == http.StatusTooManyRequests:
			default:
				return err
			}
			if apiErr.RetryAfter > 0 {
				serverWait = apiErr.RetryAfter
			}
		}
		if ctx.Err() != nil {
			return err
		}
	}
	return lastErr
}

// doOnce performs exactly one HTTP round trip.
func (c *Client) doOnce(ctx context.Context, method, path string, payload []byte, out any) error {
	var body io.Reader
	if payload != nil {
		body = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		apiErr := &APIError{StatusCode: resp.StatusCode, Message: string(data)}
		var er errorResponse
		if json.Unmarshal(data, &er) == nil && er.Error != "" {
			apiErr.Message = er.Error
		}
		// Only the delta-seconds Retry-After form is parsed (the service
		// sends nothing else); an HTTP-date or garbage leaves the hint zero
		// and the computed backoff applies. The hint is capped so a
		// misconfigured server cannot park the client for minutes.
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			if secs, err := strconv.Atoi(ra); err == nil && secs > 0 {
				apiErr.RetryAfter = min(time.Duration(secs)*time.Second, 30*time.Second)
			}
		}
		return apiErr
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// Health checks service liveness.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/v1/healthz", nil, nil)
}

// Ready fetches the readiness probe: whether every series serves
// full-fidelity verdicts, and the degraded/quarantined ones by name. A
// not-ready service answers 503; the readiness body is still parsed and
// returned alongside the error so callers can name the offenders.
func (c *Client) Ready(ctx context.Context) (engine.Readiness, error) {
	var r engine.Readiness
	err := c.do(ctx, http.MethodGet, "/v1/readyz", nil, &r)
	if err != nil {
		var apiErr *APIError
		if errors.As(err, &apiErr) && apiErr.StatusCode == http.StatusServiceUnavailable {
			_ = json.Unmarshal([]byte(apiErr.Message), &r)
		}
	}
	return r, err
}

// List returns the managed series names.
func (c *Client) List(ctx context.Context) ([]string, error) {
	var out map[string][]string
	if err := c.do(ctx, http.MethodGet, "/v1/series", nil, &out); err != nil {
		return nil, err
	}
	return out["series"], nil
}

// Create registers a new series.
func (c *Client) Create(ctx context.Context, name string, req CreateRequest) error {
	return c.do(ctx, http.MethodPut, "/v1/series/"+url.PathEscape(name), req, nil)
}

// Status fetches one series' status.
func (c *Client) Status(ctx context.Context, name string) (Status, error) {
	var st Status
	err := c.do(ctx, http.MethodGet, "/v1/series/"+url.PathEscape(name), nil, &st)
	return st, err
}

// Append streams points and returns the verdicts (empty until trained).
func (c *Client) Append(ctx context.Context, name string, points []Point) (PointsResponse, error) {
	var out PointsResponse
	err := c.do(ctx, http.MethodPost, "/v1/series/"+url.PathEscape(name)+"/points",
		PointsRequest{Points: points}, &out)
	return out, err
}

// Label marks or clears anomalous windows.
func (c *Client) Label(ctx context.Context, name string, windows []LabelWindow) error {
	return c.do(ctx, http.MethodPost, "/v1/series/"+url.PathEscape(name)+"/labels",
		LabelsRequest{Windows: windows}, nil)
}

// Train (re)trains the series' classifier and returns the resulting cThld.
func (c *Client) Train(ctx context.Context, name string) (float64, error) {
	var out struct {
		CThld float64 `json:"cthld"`
	}
	err := c.do(ctx, http.MethodPost, "/v1/series/"+url.PathEscape(name)+"/train", nil, &out)
	return out.CThld, err
}

// Models lists the series with published model artifacts.
func (c *Client) Models(ctx context.Context) ([]string, error) {
	var out map[string][]string
	if err := c.do(ctx, http.MethodGet, "/v1/models", nil, &out); err != nil {
		return nil, err
	}
	return out["series"], nil
}

// ModelManifest fetches one series' model generation index.
func (c *Client) ModelManifest(ctx context.Context, name string) (ModelManifest, error) {
	var man ModelManifest
	err := c.do(ctx, http.MethodGet, "/v1/models/"+url.PathEscape(name), nil, &man)
	return man, err
}

// RollbackModel rolls the series' served model back one generation and
// returns the updated manifest. Not retried: a retried rollback would walk
// back two generations.
func (c *Client) RollbackModel(ctx context.Context, name string) (ModelManifest, error) {
	var man ModelManifest
	err := c.do(ctx, http.MethodPost, "/v1/models/"+url.PathEscape(name)+"/rollback", nil, &man)
	return man, err
}

// Queries fetches the pending label queries, most uncertain first; a
// non-empty series narrows to that series.
func (c *Client) Queries(ctx context.Context, series string) ([]Query, error) {
	path := "/v1/queries"
	if series != "" {
		path += "?series=" + url.QueryEscape(series)
	}
	var out map[string][]Query
	if err := c.do(ctx, http.MethodGet, path, nil, &out); err != nil {
		return nil, err
	}
	return out["queries"], nil
}

// AnswerQuery resolves one pending query as a durable label action. Not
// retried (POST): the first answer consumes the query, so a duplicate would
// fail with 422 anyway.
func (c *Client) AnswerQuery(ctx context.Context, series string, start, end int, anomalous bool) error {
	return c.do(ctx, http.MethodPost, "/v1/queries/"+url.PathEscape(series)+"/answer",
		AnswerRequest{Start: start, End: end, Anomalous: anomalous}, nil)
}

// Alarms fetches the alarms raised after since (zero time = all retained).
func (c *Client) Alarms(ctx context.Context, name string, since time.Time) ([]Alarm, error) {
	path := "/v1/series/" + url.PathEscape(name) + "/alarms"
	if !since.IsZero() {
		path += "?since=" + url.QueryEscape(since.UTC().Format(time.RFC3339))
	}
	var out map[string][]Alarm
	if err := c.do(ctx, http.MethodGet, path, nil, &out); err != nil {
		return nil, err
	}
	return out["alarms"], nil
}
