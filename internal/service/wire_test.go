package service

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"opprentice/internal/tsdb"
)

// Tests in this file pin the HTTP wire behavior of the engine-backed server:
// batch-append atomicity as seen by a client, and the persisted field that
// surfaces WAL append failures.

// TestPointsBatchRejectedAtomicallyOverHTTP is the transport-level regression
// test for the partial-append bug: an out-of-order timestamp mid-batch must
// answer 422 with zero points appended. The old handler appended the points
// preceding the bad one before failing.
func TestPointsBatchRejectedAtomicallyOverHTTP(t *testing.T) {
	ts := newTestServer(t)
	createSeries(t, ts, "pv", 60)

	resp, body := doJSON(t, http.MethodPost, ts.URL+"/v1/series/pv/points", PointsRequest{
		Points: []Point{{Value: 1}, {Value: 2}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("seed points: %d %s", resp.StatusCode, body)
	}

	batch := PointsRequest{Points: []Point{
		{Timestamp: testStart.Add(2 * time.Minute), Value: 3}, // correct next slot
		{Timestamp: testStart, Value: 4},                      // out of order
		{Value: 5},
	}}
	resp, body = doJSON(t, http.MethodPost, ts.URL+"/v1/series/pv/points", batch)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("mid-batch out-of-order: %d %s, want 422", resp.StatusCode, body)
	}

	resp, body = doJSON(t, http.MethodGet, ts.URL+"/v1/series/pv", nil)
	var st Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Points != 2 {
		t.Fatalf("rejected batch partially appended: %d points, want 2", st.Points)
	}
}

// failingStore wraps a real tsdb.Store but fails every durable append once
// armed; the engine must keep serving and surface the failure.
type failingStore struct {
	*tsdb.Store
	fail bool
}

func (f *failingStore) AppendPoints(ctx context.Context, name string, values []float64) error {
	if f.fail {
		return errors.New("disk full")
	}
	return f.Store.AppendPoints(ctx, name, values)
}

// TestPersistedFieldSurfacesWALFailure checks the wire contract of the
// durability satellite: on a WAL append failure the response still succeeds
// (points are live in memory) but carries "persisted": false, and the
// opprenticed_wal_append_errors_total counter increments. Healthy appends
// omit the field entirely, keeping the response bytes identical to the
// pre-engine format.
func TestPersistedFieldSurfacesWALFailure(t *testing.T) {
	store, err := tsdb.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	fs := &failingStore{Store: store}

	s := NewServer(discardLogger())
	s.Engine().SetStore(fs)
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	createSeries(t, ts, "pv", 60)

	// Healthy append: no "persisted" key on the wire.
	resp, body := doJSON(t, http.MethodPost, ts.URL+"/v1/series/pv/points", PointsRequest{
		Points: []Point{{Value: 1}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy append: %d %s", resp.StatusCode, body)
	}
	if strings.Contains(string(body), "persisted") {
		t.Fatalf("healthy append leaked the persisted field: %s", body)
	}

	// Failing WAL: 200 with "persisted": false and the counter bumped.
	fs.fail = true
	resp, body = doJSON(t, http.MethodPost, ts.URL+"/v1/series/pv/points", PointsRequest{
		Points: []Point{{Value: 2}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("append with failing WAL must stay 200: %d %s", resp.StatusCode, body)
	}
	var pr struct {
		Appended  int   `json:"appended"`
		Total     int   `json:"total"`
		Persisted *bool `json:"persisted"`
	}
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Persisted == nil || *pr.Persisted {
		t.Fatalf("response did not carry persisted=false: %s", body)
	}
	if pr.Total != 2 {
		t.Fatalf("points not live in memory: total=%d, want 2", pr.Total)
	}
	if v := metricValue(t, ts, "opprenticed_wal_append_errors_total"); v != 1 {
		t.Fatalf("opprenticed_wal_append_errors_total = %v, want 1", v)
	}

	// Recovery: the field disappears again.
	fs.fail = false
	resp, body = doJSON(t, http.MethodPost, ts.URL+"/v1/series/pv/points", PointsRequest{
		Points: []Point{{Value: 3}},
	})
	if resp.StatusCode != http.StatusOK || strings.Contains(string(body), "persisted") {
		t.Fatalf("recovered append: %d %s", resp.StatusCode, body)
	}
}

// TestWireShapesUnchanged pins a few response bodies' exact key sets so the
// refactor provably did not move the API (the engine types' JSON tags are the
// wire format now).
func TestWireShapesUnchanged(t *testing.T) {
	ts := newTestServer(t)
	createSeries(t, ts, "pv", 60)

	_, body := doJSON(t, http.MethodPost, ts.URL+"/v1/series/pv/points", PointsRequest{
		Points: []Point{{Value: 1}},
	})
	var pts map[string]json.RawMessage
	if err := json.Unmarshal(body, &pts); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"appended", "total"} {
		if _, ok := pts[k]; !ok {
			t.Errorf("points response lost key %q: %s", k, body)
		}
	}
	if len(pts) != 2 {
		t.Errorf("points response key set changed: %s", body)
	}

	_, body = doJSON(t, http.MethodGet, ts.URL+"/v1/series/pv", nil)
	var st map[string]json.RawMessage
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"name", "points", "anomalous_points", "labeled_windows",
		"trained", "recall", "precision", "interval_seconds"} {
		if _, ok := st[k]; !ok {
			t.Errorf("status response lost key %q: %s", k, body)
		}
	}
}
