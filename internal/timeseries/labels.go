package timeseries

// Labels marks, for each point of a series, whether the operators consider it
// anomalous. Labels[i] corresponds to Series.Values[i].
type Labels []bool

// Count returns the number of anomalous points.
func (l Labels) Count() int {
	n := 0
	for _, b := range l {
		if b {
			n++
		}
	}
	return n
}

// Fraction returns the fraction of anomalous points (0 for empty labels).
func (l Labels) Fraction() float64 {
	if len(l) == 0 {
		return 0
	}
	return float64(l.Count()) / float64(len(l))
}

// Window is a half-open index range [Start, End) of consecutive anomalous
// points — what one label action with the labeling tool produces.
type Window struct {
	Start, End int
}

// Len returns the number of points in the window.
func (w Window) Len() int { return w.End - w.Start }

// Windows returns the maximal runs of consecutive anomalous points, in order.
func (l Labels) Windows() []Window {
	var ws []Window
	in := false
	start := 0
	for i, b := range l {
		switch {
		case b && !in:
			in, start = true, i
		case !b && in:
			in = false
			ws = append(ws, Window{start, i})
		}
	}
	if in {
		ws = append(ws, Window{start, len(l)})
	}
	return ws
}

// FromWindows builds labels of length n with the given windows marked
// anomalous. Windows may overlap and are clipped to [0, n).
func FromWindows(n int, ws []Window) Labels {
	l := make(Labels, n)
	for _, w := range ws {
		start, end := max(w.Start, 0), min(w.End, n)
		for i := start; i < end; i++ {
			l[i] = true
		}
	}
	return l
}

// Slice returns the labels for points [i, j).
func (l Labels) Slice(i, j int) Labels { return l[i:j] }

// Clone returns a copy of the labels.
func (l Labels) Clone() Labels { return append(Labels(nil), l...) }
