// Package timeseries provides the KPI time-series data model used throughout
// the Opprentice reproduction: fixed-interval (timestamp, value) series,
// seasonal indexing, point labels, anomaly windows, and descriptive
// statistics such as the coefficient of variation reported in Table 1 of the
// paper.
package timeseries

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// Day and Week are the seasonal periods used by the seasonal detectors.
const (
	Day  = 24 * time.Hour
	Week = 7 * Day
)

// Series is a fixed-interval KPI time series. The point i carries the value
// Values[i] observed at Start + i*Interval. Missing, when non-nil, marks
// points that were not observed ("dirty data" in the paper); such points keep
// a placeholder value (usually the previous observation) so that detectors
// can stream over them.
type Series struct {
	Name     string
	Start    time.Time
	Interval time.Duration
	Values   []float64
	Missing  []bool
}

// New returns an empty series with the given name, origin and interval.
// It panics if interval is not positive, since every index computation
// divides by it.
func New(name string, start time.Time, interval time.Duration) *Series {
	if interval <= 0 {
		panic("timeseries: non-positive interval")
	}
	return &Series{Name: name, Start: start, Interval: interval}
}

// Len returns the number of points in the series.
func (s *Series) Len() int { return len(s.Values) }

// TimeAt returns the timestamp of point i.
func (s *Series) TimeAt(i int) time.Time {
	return s.Start.Add(time.Duration(i) * s.Interval)
}

// Append adds a point observed at the next interval.
func (s *Series) Append(v float64) {
	s.Values = append(s.Values, v)
	if s.Missing != nil {
		s.Missing = append(s.Missing, false)
	}
}

// AppendMissing adds a placeholder for an unobserved point. The placeholder
// value repeats the previous observation (or 0 for the first point) so that
// windowed detectors stay numerically well-behaved.
func (s *Series) AppendMissing() {
	v := 0.0
	if n := len(s.Values); n > 0 {
		v = s.Values[n-1]
	}
	if s.Missing == nil {
		s.Missing = make([]bool, len(s.Values))
	}
	s.Values = append(s.Values, v)
	s.Missing = append(s.Missing, true)
}

// IsMissing reports whether point i was unobserved.
func (s *Series) IsMissing(i int) bool {
	return s.Missing != nil && s.Missing[i]
}

// PointsPerDay returns the number of points in one day, or an error if the
// interval does not divide a day evenly.
func (s *Series) PointsPerDay() (int, error) {
	if s.Interval <= 0 || Day%s.Interval != 0 {
		return 0, fmt.Errorf("timeseries: interval %v does not divide a day", s.Interval)
	}
	return int(Day / s.Interval), nil
}

// PointsPerWeek returns the number of points in one week, or an error if the
// interval does not divide a week evenly.
func (s *Series) PointsPerWeek() (int, error) {
	if s.Interval <= 0 || Week%s.Interval != 0 {
		return 0, fmt.Errorf("timeseries: interval %v does not divide a week", s.Interval)
	}
	return int(Week / s.Interval), nil
}

// Weeks returns the number of complete weeks in the series.
func (s *Series) Weeks() int {
	ppw, err := s.PointsPerWeek()
	if err != nil {
		return 0
	}
	return s.Len() / ppw
}

// Slice returns a view of points [i, j). The returned series shares the
// underlying storage with s; its Start is shifted accordingly.
func (s *Series) Slice(i, j int) *Series {
	if i < 0 || j > s.Len() || i > j {
		panic(fmt.Sprintf("timeseries: slice [%d,%d) out of range 0..%d", i, j, s.Len()))
	}
	out := &Series{
		Name:     s.Name,
		Start:    s.TimeAt(i),
		Interval: s.Interval,
		Values:   s.Values[i:j],
	}
	if s.Missing != nil {
		out.Missing = s.Missing[i:j]
	}
	return out
}

// Clone returns a deep copy of the series.
func (s *Series) Clone() *Series {
	out := &Series{Name: s.Name, Start: s.Start, Interval: s.Interval}
	out.Values = append([]float64(nil), s.Values...)
	if s.Missing != nil {
		out.Missing = append([]bool(nil), s.Missing...)
	}
	return out
}

// ErrEmpty is returned by statistics that are undefined on empty series.
var ErrEmpty = errors.New("timeseries: empty series")

// Mean returns the arithmetic mean of the observed values.
func (s *Series) Mean() float64 { return Mean(s.Values) }

// Std returns the population standard deviation of the observed values.
func (s *Series) Std() float64 { return Std(s.Values) }

// Cv returns the coefficient of variation (std / mean), the dispersion
// measure used in Table 1. It returns NaN when the mean is zero.
func (s *Series) Cv() float64 {
	m := s.Mean()
	if m == 0 {
		return math.NaN()
	}
	return s.Std() / m
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Std returns the population standard deviation of xs (0 for empty input).
func Std(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// Median returns the median of xs without modifying it.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	tmp := append([]float64(nil), xs...)
	return medianInPlace(tmp)
}

// MAD returns the median absolute deviation around the median, the robust
// dispersion measure used by the TSD MAD and historical MAD detectors.
func MAD(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	med := Median(xs)
	dev := make([]float64, len(xs))
	for i, x := range xs {
		dev[i] = math.Abs(x - med)
	}
	return medianInPlace(dev)
}

// MedianInPlace returns the median of xs, reordering xs in the process. It
// exists for hot paths that own a scratch buffer and cannot afford Median's
// defensive copy; the result is identical to Median(xs).
func MedianInPlace(xs []float64) float64 { return medianInPlace(xs) }

// MedianMADInPlace returns the median of xs and the median absolute
// deviation around it without allocating: xs is reordered by the median
// selection and then overwritten with the absolute deviations. The results
// are identical to (Median(xs), MAD(xs)); use it only on scratch buffers
// whose contents are disposable.
func MedianMADInPlace(xs []float64) (med, mad float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	med = medianInPlace(xs)
	for i, x := range xs {
		xs[i] = math.Abs(x - med)
	}
	return med, medianInPlace(xs)
}

// medianInPlace selects the median of xs using quickselect, reordering xs.
func medianInPlace(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return quickselect(xs, n/2)
	}
	lo := quickselect(xs, n/2-1)
	// After quickselect, elements right of k are >= xs[k]; find the min of
	// the upper half for the even-length median.
	hi := xs[n/2]
	for _, x := range xs[n/2:] {
		if x < hi {
			hi = x
		}
	}
	return (lo + hi) / 2
}

// quickselect returns the k-th smallest element of xs, reordering xs.
func quickselect(xs []float64, k int) float64 {
	lo, hi := 0, len(xs)-1
	for lo < hi {
		p := partition(xs, lo, hi)
		switch {
		case k == p:
			return xs[k]
		case k < p:
			hi = p - 1
		default:
			lo = p + 1
		}
	}
	return xs[k]
}

func partition(xs []float64, lo, hi int) int {
	mid := lo + (hi-lo)/2
	// Median-of-three pivot to avoid quadratic behaviour on sorted data.
	if xs[mid] < xs[lo] {
		xs[mid], xs[lo] = xs[lo], xs[mid]
	}
	if xs[hi] < xs[lo] {
		xs[hi], xs[lo] = xs[lo], xs[hi]
	}
	if xs[hi] < xs[mid] {
		xs[hi], xs[mid] = xs[mid], xs[hi]
	}
	pivot := xs[mid]
	xs[mid], xs[hi] = xs[hi], xs[mid]
	i := lo
	for j := lo; j < hi; j++ {
		if xs[j] < pivot {
			xs[i], xs[j] = xs[j], xs[i]
			i++
		}
	}
	xs[i], xs[hi] = xs[hi], xs[i]
	return i
}
