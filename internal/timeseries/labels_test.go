package timeseries

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLabelsCountFraction(t *testing.T) {
	l := Labels{false, true, true, false}
	if l.Count() != 2 {
		t.Errorf("Count = %d, want 2", l.Count())
	}
	if l.Fraction() != 0.5 {
		t.Errorf("Fraction = %v, want 0.5", l.Fraction())
	}
	if (Labels{}).Fraction() != 0 {
		t.Error("empty Fraction should be 0")
	}
}

func TestWindowsBasic(t *testing.T) {
	l := Labels{false, true, true, false, true, false, false, true}
	ws := l.Windows()
	want := []Window{{1, 3}, {4, 5}, {7, 8}}
	if len(ws) != len(want) {
		t.Fatalf("Windows = %v, want %v", ws, want)
	}
	for i := range ws {
		if ws[i] != want[i] {
			t.Errorf("Windows[%d] = %v, want %v", i, ws[i], want[i])
		}
	}
}

func TestWindowsAllAnomalous(t *testing.T) {
	l := Labels{true, true, true}
	ws := l.Windows()
	if len(ws) != 1 || ws[0] != (Window{0, 3}) {
		t.Errorf("Windows = %v, want [{0 3}]", ws)
	}
}

func TestWindowsNone(t *testing.T) {
	if ws := (Labels{false, false}).Windows(); ws != nil {
		t.Errorf("Windows = %v, want nil", ws)
	}
}

func TestFromWindowsClipsAndOverlaps(t *testing.T) {
	l := FromWindows(5, []Window{{-2, 2}, {1, 3}, {4, 99}})
	want := Labels{true, true, true, false, true}
	for i := range want {
		if l[i] != want[i] {
			t.Fatalf("FromWindows = %v, want %v", l, want)
		}
	}
}

func TestWindowsRoundTripQuick(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		l := make(Labels, int(n))
		for i := range l {
			l[i] = rng.Intn(4) == 0
		}
		back := FromWindows(len(l), l.Windows())
		for i := range l {
			if back[i] != l[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWindowLen(t *testing.T) {
	if (Window{3, 8}).Len() != 5 {
		t.Error("Window{3,8}.Len() should be 5")
	}
}
