package timeseries

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

var epoch = time.Date(2015, 1, 5, 0, 0, 0, 0, time.UTC) // a Monday

func TestNewPanicsOnBadInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with zero interval did not panic")
		}
	}()
	New("x", epoch, 0)
}

func TestAppendAndTimeAt(t *testing.T) {
	s := New("pv", epoch, time.Minute)
	for i := 0; i < 5; i++ {
		s.Append(float64(i))
	}
	if s.Len() != 5 {
		t.Fatalf("Len = %d, want 5", s.Len())
	}
	if got := s.TimeAt(3); !got.Equal(epoch.Add(3 * time.Minute)) {
		t.Errorf("TimeAt(3) = %v, want %v", got, epoch.Add(3*time.Minute))
	}
}

func TestAppendMissing(t *testing.T) {
	s := New("pv", epoch, time.Minute)
	s.Append(7)
	s.AppendMissing()
	s.Append(9)
	if !s.IsMissing(1) || s.IsMissing(0) || s.IsMissing(2) {
		t.Errorf("missing mask wrong: %v", s.Missing)
	}
	if s.Values[1] != 7 {
		t.Errorf("missing placeholder = %v, want previous value 7", s.Values[1])
	}
}

func TestAppendMissingFirstPoint(t *testing.T) {
	s := New("pv", epoch, time.Minute)
	s.AppendMissing()
	if s.Values[0] != 0 || !s.IsMissing(0) {
		t.Errorf("first missing point: value=%v missing=%v", s.Values[0], s.IsMissing(0))
	}
}

func TestPointsPerDayWeek(t *testing.T) {
	s := New("pv", epoch, 10*time.Minute)
	ppd, err := s.PointsPerDay()
	if err != nil || ppd != 144 {
		t.Errorf("PointsPerDay = %d, %v; want 144, nil", ppd, err)
	}
	ppw, err := s.PointsPerWeek()
	if err != nil || ppw != 1008 {
		t.Errorf("PointsPerWeek = %d, %v; want 1008, nil", ppw, err)
	}
	bad := New("x", epoch, 7*time.Minute)
	if _, err := bad.PointsPerDay(); err == nil {
		t.Error("7-minute interval should not divide a day")
	}
}

func TestWeeks(t *testing.T) {
	s := New("pv", epoch, time.Hour)
	for i := 0; i < 168*2+10; i++ {
		s.Append(1)
	}
	if got := s.Weeks(); got != 2 {
		t.Errorf("Weeks = %d, want 2", got)
	}
}

func TestSliceSharesStorageAndShiftsStart(t *testing.T) {
	s := New("pv", epoch, time.Minute)
	for i := 0; i < 10; i++ {
		s.Append(float64(i))
	}
	sub := s.Slice(2, 6)
	if sub.Len() != 4 {
		t.Fatalf("sub.Len = %d, want 4", sub.Len())
	}
	if !sub.Start.Equal(epoch.Add(2 * time.Minute)) {
		t.Errorf("sub.Start = %v", sub.Start)
	}
	sub.Values[0] = 99
	if s.Values[2] != 99 {
		t.Error("Slice should share storage")
	}
}

func TestSlicePanicsOutOfRange(t *testing.T) {
	s := New("pv", epoch, time.Minute)
	s.Append(1)
	defer func() {
		if recover() == nil {
			t.Fatal("Slice(0,2) on len-1 series did not panic")
		}
	}()
	s.Slice(0, 2)
}

func TestCloneIndependent(t *testing.T) {
	s := New("pv", epoch, time.Minute)
	s.Append(1)
	s.AppendMissing()
	c := s.Clone()
	c.Values[0] = 42
	c.Missing[1] = false
	if s.Values[0] != 1 || !s.IsMissing(1) {
		t.Error("Clone should be independent")
	}
}

func TestStats(t *testing.T) {
	s := New("x", epoch, time.Minute)
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Append(v)
	}
	if got := s.Mean(); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := s.Std(); got != 2 {
		t.Errorf("Std = %v, want 2", got)
	}
	if got := s.Cv(); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("Cv = %v, want 0.4", got)
	}
}

func TestCvZeroMean(t *testing.T) {
	s := New("x", epoch, time.Minute)
	s.Append(1)
	s.Append(-1)
	if !math.IsNaN(s.Cv()) {
		t.Error("Cv of zero-mean series should be NaN")
	}
}

func TestMedianOddEven(t *testing.T) {
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("Median odd = %v, want 2", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Errorf("Median even = %v, want 2.5", got)
	}
	if got := Median(nil); got != 0 {
		t.Errorf("Median empty = %v, want 0", got)
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	Median(xs)
	want := []float64{5, 1, 4, 2, 3}
	for i := range xs {
		if xs[i] != want[i] {
			t.Fatalf("Median mutated input: %v", xs)
		}
	}
}

func TestMAD(t *testing.T) {
	// median = 3, |dev| = {2,1,0,1,2}, MAD = 1.
	if got := MAD([]float64{1, 2, 3, 4, 5}); got != 1 {
		t.Errorf("MAD = %v, want 1", got)
	}
	if got := MAD(nil); got != 0 {
		t.Errorf("MAD empty = %v, want 0", got)
	}
}

func TestMedianMatchesSortQuick(t *testing.T) {
	f := func(xs []float64) bool {
		if len(xs) == 0 {
			return Median(xs) == 0
		}
		for i, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				xs[i] = float64(i) // keep the property about finite data
			}
		}
		got := Median(xs)
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		var want float64
		n := len(sorted)
		if n%2 == 1 {
			want = sorted[n/2]
		} else {
			want = (sorted[n/2-1] + sorted[n/2]) / 2
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickselectRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(100)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		k := rng.Intn(n)
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		if got := quickselect(xs, k); got != sorted[k] {
			t.Fatalf("quickselect(k=%d) = %v, want %v", k, got, sorted[k])
		}
	}
}
