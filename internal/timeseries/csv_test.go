package timeseries

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestCSVRoundTrip(t *testing.T) {
	s := New("pv", epoch, 5*time.Minute)
	for _, v := range []float64{1.5, 2, 3.25, 0} {
		s.Append(v)
	}
	labels := Labels{false, true, false, true}

	var buf bytes.Buffer
	if err := WriteCSV(&buf, s, labels); err != nil {
		t.Fatal(err)
	}
	got, gotLabels, err := ReadCSV(&buf, "pv")
	if err != nil {
		t.Fatal(err)
	}
	if got.Interval != 5*time.Minute {
		t.Errorf("interval = %v, want 5m", got.Interval)
	}
	if !got.Start.Equal(epoch) {
		t.Errorf("start = %v, want %v", got.Start, epoch)
	}
	if got.Len() != s.Len() {
		t.Fatalf("len = %d, want %d", got.Len(), s.Len())
	}
	for i := range s.Values {
		if got.Values[i] != s.Values[i] {
			t.Errorf("value[%d] = %v, want %v", i, got.Values[i], s.Values[i])
		}
		if gotLabels[i] != labels[i] {
			t.Errorf("label[%d] = %v, want %v", i, gotLabels[i], labels[i])
		}
	}
}

func TestCSVNoLabels(t *testing.T) {
	s := New("pv", epoch, time.Minute)
	s.Append(1)
	s.Append(2)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, s, nil); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(strings.SplitN(buf.String(), "\n", 2)[0], "label") {
		t.Error("header should not contain label column")
	}
	_, labels, err := ReadCSV(&buf, "pv")
	if err != nil {
		t.Fatal(err)
	}
	if labels != nil {
		t.Errorf("labels = %v, want nil", labels)
	}
}

func TestWriteCSVLabelMismatch(t *testing.T) {
	s := New("pv", epoch, time.Minute)
	s.Append(1)
	if err := WriteCSV(&bytes.Buffer{}, s, Labels{true, false}); err == nil {
		t.Error("want error for label length mismatch")
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := map[string]string{
		"too short":      "timestamp,value\n2015-01-05T00:00:00Z,1\n",
		"bad timestamp":  "timestamp,value\nnope,1\n2015-01-05T00:01:00Z,2\n",
		"bad value":      "timestamp,value\n2015-01-05T00:00:00Z,x\n2015-01-05T00:01:00Z,2\n",
		"non-increasing": "timestamp,value\n2015-01-05T00:01:00Z,1\n2015-01-05T00:00:00Z,2\n",
	}
	for name, in := range cases {
		if _, _, err := ReadCSV(strings.NewReader(in), "x"); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}
