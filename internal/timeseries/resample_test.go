package timeseries

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestResampleMean(t *testing.T) {
	s := New("x", epoch, time.Minute)
	for _, v := range []float64{1, 3, 5, 7, 9, 11, 100} { // 7th drops (partial)
		s.Append(v)
	}
	labels := Labels{false, true, false, false, false, false, true}
	out, outLabels, err := Resample(s, 2*time.Minute, AggMean, labels)
	if err != nil {
		t.Fatal(err)
	}
	wantVals := []float64{2, 6, 10}
	wantLabels := Labels{true, false, false}
	if out.Len() != 3 {
		t.Fatalf("len = %d, want 3", out.Len())
	}
	for i := range wantVals {
		if out.Values[i] != wantVals[i] {
			t.Errorf("value[%d] = %v, want %v", i, out.Values[i], wantVals[i])
		}
		if outLabels[i] != wantLabels[i] {
			t.Errorf("label[%d] = %v, want %v", i, outLabels[i], wantLabels[i])
		}
	}
	if out.Interval != 2*time.Minute {
		t.Errorf("interval = %v", out.Interval)
	}
}

func TestResampleAggregations(t *testing.T) {
	s := New("x", epoch, time.Minute)
	for _, v := range []float64{1, 5, 2, 8} {
		s.Append(v)
	}
	cases := []struct {
		agg  AggFunc
		want []float64
	}{
		{AggSum, []float64{6, 10}},
		{AggMax, []float64{5, 8}},
		{AggLast, []float64{5, 8}},
		{AggMean, []float64{3, 5}},
	}
	for _, c := range cases {
		out, _, err := Resample(s, 2*time.Minute, c.agg, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := range c.want {
			if out.Values[i] != c.want[i] {
				t.Errorf("%v: value[%d] = %v, want %v", c.agg, i, out.Values[i], c.want[i])
			}
		}
	}
}

func TestResampleErrors(t *testing.T) {
	s := New("x", epoch, 2*time.Minute)
	s.Append(1)
	if _, _, err := Resample(s, 3*time.Minute, AggMean, nil); err == nil {
		t.Error("non-multiple interval should error")
	}
	if _, _, err := Resample(s, 4*time.Minute, AggMean, Labels{true, false}); err == nil {
		t.Error("label mismatch should error")
	}
}

func TestResampleIdentityFactor(t *testing.T) {
	s := New("x", epoch, time.Minute)
	s.Append(1)
	s.Append(2)
	out, labels, err := Resample(s, time.Minute, AggMean, Labels{true, false})
	if err != nil {
		t.Fatal(err)
	}
	out.Values[0] = 99 // must be a copy
	if s.Values[0] != 1 {
		t.Error("factor-1 resample should copy")
	}
	if !labels[0] || labels[1] {
		t.Errorf("labels = %v", labels)
	}
}

func TestResampleMissingMask(t *testing.T) {
	s := New("x", epoch, time.Minute)
	s.Append(1)
	s.AppendMissing()
	s.AppendMissing()
	s.AppendMissing()
	out, _, err := Resample(s, 2*time.Minute, AggMean, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.IsMissing(0) {
		t.Error("half-observed bucket should not be missing")
	}
	if !out.IsMissing(1) {
		t.Error("fully-missing bucket should be missing")
	}
}

func TestAggFuncString(t *testing.T) {
	if AggMean.String() != "mean" || AggSum.String() != "sum" ||
		AggMax.String() != "max" || AggLast.String() != "last" {
		t.Error("agg names wrong")
	}
	if AggFunc(9).String() != "AggFunc(9)" {
		t.Error("unknown agg name wrong")
	}
}

func TestFillGapsInterpolates(t *testing.T) {
	s := New("x", epoch, time.Minute)
	s.Append(10)
	s.AppendMissing()
	s.AppendMissing()
	s.Append(40) // carried placeholder would be 10; actual observation 40
	s.Values[3] = 40
	filled := FillGaps(s)
	want := []float64{10, 20, 30, 40}
	for i := range want {
		if math.Abs(filled.Values[i]-want[i]) > 1e-9 {
			t.Fatalf("filled = %v, want %v", filled.Values, want)
		}
	}
	if filled.Missing != nil {
		t.Error("mask should be cleared")
	}
	if s.IsMissing(1) != true {
		t.Error("input must not be mutated")
	}
}

func TestFillGapsEdges(t *testing.T) {
	s := New("x", epoch, time.Minute)
	s.AppendMissing() // leading gap
	s.Append(5)
	s.AppendMissing() // trailing gap
	filled := FillGaps(s)
	if filled.Values[0] != 5 || filled.Values[2] != 5 {
		t.Errorf("edge fill = %v", filled.Values)
	}
	// All-missing series unchanged.
	allGone := New("x", epoch, time.Minute)
	allGone.AppendMissing()
	allGone.AppendMissing()
	out := FillGaps(allGone)
	if out.Missing == nil {
		t.Error("all-missing series cannot be filled")
	}
	// No mask at all: plain copy.
	plain := New("x", epoch, time.Minute)
	plain.Append(1)
	if FillGaps(plain).Values[0] != 1 {
		t.Error("mask-free series should copy through")
	}
}

func TestTrimToWholeWeeks(t *testing.T) {
	s := New("x", epoch, time.Hour)
	for i := 0; i < 168+10; i++ {
		s.Append(float64(i))
	}
	labels := make(Labels, s.Len())
	out, outLabels, err := TrimToWholeWeeks(s, labels)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 168 || len(outLabels) != 168 {
		t.Errorf("trimmed to %d/%d, want 168", out.Len(), len(outLabels))
	}
	if _, _, err := TrimToWholeWeeks(s, labels[:5]); err == nil {
		t.Error("label mismatch should error")
	}
	if _, _, err := TrimToWholeWeeks(New("y", epoch, 11*time.Minute), nil); err == nil {
		t.Error("bad interval should error")
	}
}

// Resampling preserves the total for AggSum (up to the dropped tail) — the
// invariant count KPIs care about.
func TestResampleSumConservationQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New("x", epoch, time.Minute)
		n := 10 + rng.Intn(200)
		for i := 0; i < n; i++ {
			s.Append(rng.Float64() * 100)
		}
		factor := 2 + rng.Intn(5)
		out, _, err := Resample(s, time.Duration(factor)*time.Minute, AggSum, nil)
		if err != nil {
			return false
		}
		whole := (n / factor) * factor
		var want, got float64
		for _, v := range s.Values[:whole] {
			want += v
		}
		for _, v := range out.Values {
			got += v
		}
		return math.Abs(want-got) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
