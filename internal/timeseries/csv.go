package timeseries

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"
)

// WriteCSV writes the series (and optional labels) as CSV rows of
// "timestamp,value[,label]" with a header, using RFC 3339 timestamps.
// labels may be nil; otherwise it must match the series length.
func WriteCSV(w io.Writer, s *Series, labels Labels) error {
	if labels != nil && len(labels) != s.Len() {
		return fmt.Errorf("timeseries: %d labels for %d points", len(labels), s.Len())
	}
	cw := csv.NewWriter(w)
	header := []string{"timestamp", "value"}
	if labels != nil {
		header = append(header, "label")
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, len(header))
	for i, v := range s.Values {
		row[0] = s.TimeAt(i).UTC().Format(time.RFC3339)
		row[1] = strconv.FormatFloat(v, 'g', -1, 64)
		if labels != nil {
			if labels[i] {
				row[2] = "1"
			} else {
				row[2] = "0"
			}
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a series written by WriteCSV. It infers the interval from
// the first two timestamps and returns the labels column when present
// (nil otherwise).
func ReadCSV(r io.Reader, name string) (*Series, Labels, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, nil, err
	}
	if len(records) < 3 {
		return nil, nil, fmt.Errorf("timeseries: need a header and at least 2 points, got %d rows", len(records))
	}
	hasLabels := len(records[0]) >= 3
	t0, err := time.Parse(time.RFC3339, records[1][0])
	if err != nil {
		return nil, nil, fmt.Errorf("timeseries: row 1: %w", err)
	}
	t1, err := time.Parse(time.RFC3339, records[2][0])
	if err != nil {
		return nil, nil, fmt.Errorf("timeseries: row 2: %w", err)
	}
	interval := t1.Sub(t0)
	if interval <= 0 {
		return nil, nil, fmt.Errorf("timeseries: non-increasing timestamps %v, %v", t0, t1)
	}
	s := New(name, t0, interval)
	var labels Labels
	if hasLabels {
		labels = make(Labels, 0, len(records)-1)
	}
	for i, rec := range records[1:] {
		if len(rec) < 2 {
			return nil, nil, fmt.Errorf("timeseries: row %d: need at least 2 fields", i+1)
		}
		v, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			return nil, nil, fmt.Errorf("timeseries: row %d: %w", i+1, err)
		}
		s.Append(v)
		if hasLabels {
			labels = append(labels, rec[2] == "1" || rec[2] == "true")
		}
	}
	return s, labels, nil
}
