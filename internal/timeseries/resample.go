package timeseries

import (
	"fmt"
	"math"
	"time"
)

// AggFunc selects how Resample combines the fine-grained points inside one
// coarse bucket.
type AggFunc int

// The supported bucket aggregations.
const (
	// AggMean averages the bucket — the natural choice for volumes and
	// latencies.
	AggMean AggFunc = iota
	// AggSum totals the bucket — the natural choice for counts like #SR.
	AggSum
	// AggMax keeps the bucket maximum — conservative for alert-worthy
	// latencies.
	AggMax
	// AggLast keeps the newest point — sampling without aggregation.
	AggLast
)

// String names the aggregation.
func (a AggFunc) String() string {
	switch a {
	case AggMean:
		return "mean"
	case AggSum:
		return "sum"
	case AggMax:
		return "max"
	case AggLast:
		return "last"
	default:
		return fmt.Sprintf("AggFunc(%d)", int(a))
	}
}

// Resample converts the series to a coarser interval that must be a multiple
// of the current one, aggregating each bucket with agg. Labels, when given,
// are carried over: a coarse point is anomalous if any fine point in its
// bucket is. A trailing partial bucket is dropped. Missing masks aggregate
// the same way: a coarse point is missing only if its whole bucket is.
func Resample(s *Series, interval time.Duration, agg AggFunc, labels Labels) (*Series, Labels, error) {
	if interval <= 0 || s.Interval <= 0 || interval%s.Interval != 0 {
		return nil, nil, fmt.Errorf("timeseries: %v is not a multiple of %v", interval, s.Interval)
	}
	if labels != nil && len(labels) != s.Len() {
		return nil, nil, fmt.Errorf("timeseries: %d labels for %d points", len(labels), s.Len())
	}
	factor := int(interval / s.Interval)
	if factor == 1 {
		out := s.Clone()
		var outLabels Labels
		if labels != nil {
			outLabels = labels.Clone()
		}
		return out, outLabels, nil
	}
	n := s.Len() / factor
	out := New(s.Name, s.Start, interval)
	out.Values = make([]float64, n)
	if s.Missing != nil {
		out.Missing = make([]bool, n)
	}
	var outLabels Labels
	if labels != nil {
		outLabels = make(Labels, n)
	}
	for b := 0; b < n; b++ {
		lo, hi := b*factor, (b+1)*factor
		var acc float64
		switch agg {
		case AggSum, AggMean:
			for i := lo; i < hi; i++ {
				acc += s.Values[i]
			}
			if agg == AggMean {
				acc /= float64(factor)
			}
		case AggMax:
			acc = math.Inf(-1)
			for i := lo; i < hi; i++ {
				acc = math.Max(acc, s.Values[i])
			}
		default: // AggLast
			acc = s.Values[hi-1]
		}
		out.Values[b] = acc
		if labels != nil {
			for i := lo; i < hi; i++ {
				if labels[i] {
					outLabels[b] = true
					break
				}
			}
		}
		if s.Missing != nil {
			allMissing := true
			for i := lo; i < hi; i++ {
				if !s.Missing[i] {
					allMissing = false
					break
				}
			}
			out.Missing[b] = allMissing
		}
	}
	return out, outLabels, nil
}

// FillGaps returns a copy of the series with any missing points (per the
// Missing mask) replaced by linear interpolation between the nearest
// observed neighbors; leading and trailing gaps repeat the nearest
// observation. It clears the Missing mask. A series with no observed points
// is returned unchanged.
func FillGaps(s *Series) *Series {
	out := s.Clone()
	if out.Missing == nil {
		return out
	}
	n := out.Len()
	i := 0
	for i < n {
		if !out.Missing[i] {
			i++
			continue
		}
		// Gap [i, j).
		j := i
		for j < n && out.Missing[j] {
			j++
		}
		switch {
		case i == 0 && j == n:
			return out // nothing observed at all
		case i == 0:
			for k := i; k < j; k++ {
				out.Values[k] = out.Values[j]
			}
		case j == n:
			for k := i; k < j; k++ {
				out.Values[k] = out.Values[i-1]
			}
		default:
			lo, hi := out.Values[i-1], out.Values[j]
			span := float64(j - i + 1)
			for k := i; k < j; k++ {
				frac := float64(k-i+1) / span
				out.Values[k] = lo + (hi-lo)*frac
			}
		}
		i = j
	}
	out.Missing = nil
	return out
}

// TrimToWholeWeeks returns the series (and labels, when non-nil) truncated
// to a whole number of weeks, which the training-set policies require.
func TrimToWholeWeeks(s *Series, labels Labels) (*Series, Labels, error) {
	ppw, err := s.PointsPerWeek()
	if err != nil {
		return nil, nil, err
	}
	n := (s.Len() / ppw) * ppw
	out := s.Slice(0, n)
	if labels == nil {
		return out, nil, nil
	}
	if len(labels) != s.Len() {
		return nil, nil, fmt.Errorf("timeseries: %d labels for %d points", len(labels), s.Len())
	}
	return out, labels.Slice(0, n), nil
}
