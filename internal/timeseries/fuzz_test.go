package timeseries

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV checks the CSV reader never panics and that everything it
// accepts round-trips through WriteCSV.
func FuzzReadCSV(f *testing.F) {
	f.Add("timestamp,value\n2015-01-05T00:00:00Z,1\n2015-01-05T00:01:00Z,2\n")
	f.Add("timestamp,value,label\n2015-01-05T00:00:00Z,1,1\n2015-01-05T00:01:00Z,2,0\n")
	f.Add("garbage")
	f.Add("timestamp,value\nbad,1\nworse,2\n")
	f.Add("timestamp,value\n2015-01-05T00:00:00Z,NaN\n2015-01-05T00:01:00Z,Inf\n")
	f.Add("a,b\n\"unclosed")
	f.Fuzz(func(t *testing.T, in string) {
		s, labels, err := ReadCSV(strings.NewReader(in), "fuzz")
		if err != nil {
			return
		}
		if s.Len() < 2 {
			t.Fatalf("accepted a series with %d points", s.Len())
		}
		if labels != nil && len(labels) != s.Len() {
			t.Fatalf("labels/points mismatch: %d vs %d", len(labels), s.Len())
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, s, labels); err != nil {
			t.Fatalf("WriteCSV of accepted input: %v", err)
		}
		back, backLabels, err := ReadCSV(&buf, "fuzz")
		if err != nil {
			t.Fatalf("re-read of written CSV: %v", err)
		}
		if back.Len() != s.Len() {
			t.Fatalf("round trip changed length: %d vs %d", back.Len(), s.Len())
		}
		if (labels == nil) != (backLabels == nil) {
			t.Fatal("round trip changed label presence")
		}
	})
}
