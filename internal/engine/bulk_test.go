package engine

// AppendBulk semantics: in-order prefix application with deferred
// validation errors (the ingest stream contract), striped all-or-nothing
// admission, and summary accounting.

import (
	"context"
	"errors"
	"io"
	"log/slog"
	"testing"
)

func bulkEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	cfg.Log = slog.New(slog.NewTextHandler(io.Discard, nil))
	e := New(cfg)
	t.Cleanup(e.Close)
	return e
}

func TestAppendBulkAppliesInOrder(t *testing.T) {
	e := newTestEngine(t)
	for _, name := range []string{"a", "b"} {
		if err := e.Create(name, SeriesConfig{IntervalSeconds: 60, Start: testStart}); err != nil {
			t.Fatal(err)
		}
	}
	batches := []SeriesBatch{
		{Name: "a", Points: []Point{{Value: 1}, {Value: 2}}},
		{Name: "b", Points: []Point{{Value: 3}}},
		{Name: "a", Points: []Point{{Value: 4}}},
	}
	sum, _, err := e.AppendBulk(context.Background(), batches, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Appended != 4 || sum.Batches != 3 {
		t.Fatalf("summary = %+v, want 4 points / 3 batches", sum)
	}
	st, err := e.Status(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	if st.Points != 3 {
		t.Fatalf("series a has %d points, want 3 (duplicate-series batches must chain)", st.Points)
	}
}

func TestAppendBulkUnknownSeriesAppliesPrefix(t *testing.T) {
	e := newTestEngine(t)
	if err := e.Create("a", SeriesConfig{IntervalSeconds: 60, Start: testStart}); err != nil {
		t.Fatal(err)
	}
	batches := []SeriesBatch{
		{Name: "a", Points: []Point{{Value: 1}}},
		{Name: "ghost", Points: []Point{{Value: 2}}},
		{Name: "a", Points: []Point{{Value: 3}}},
	}
	sum, _, err := e.AppendBulk(context.Background(), batches, nil)
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	if sum.Appended != 1 || sum.Batches != 1 {
		t.Fatalf("summary = %+v, want exactly the prefix before the unknown series", sum)
	}
	st, _ := e.Status(context.Background(), "a")
	if st.Points != 1 {
		t.Fatalf("series a has %d points, want 1 (nothing after the failing batch)", st.Points)
	}
}

func TestAppendBulkShedsGroupWhole(t *testing.T) {
	e := bulkEngine(t, Config{IngestInflight: 3})
	if err := e.Create("a", SeriesConfig{IntervalSeconds: 60, Start: testStart}); err != nil {
		t.Fatal(err)
	}
	batches := []SeriesBatch{
		{Name: "a", Points: []Point{{Value: 1}, {Value: 2}}},
		{Name: "a", Points: []Point{{Value: 3}, {Value: 4}}},
	}
	sum, _, err := e.AppendBulk(context.Background(), batches, nil)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	if sum.Appended != 0 {
		t.Fatalf("shed group committed %d points, want 0 (admission is all-or-nothing)", sum.Appended)
	}
	st, _ := e.Status(context.Background(), "a")
	if st.Points != 0 {
		t.Fatalf("series a has %d points after shed, want 0", st.Points)
	}
	// The reservation must be fully returned: a fitting group now succeeds.
	if _, _, err := e.AppendBulk(context.Background(), batches[:1], nil); err != nil {
		t.Fatalf("append after shed: %v (leaked admission budget?)", err)
	}
}
