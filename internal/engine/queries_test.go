package engine

import (
	"context"
	"errors"
	"io"
	"log/slog"
	"testing"
	"time"

	"opprentice/internal/kpigen"
)

// trainableSeriesCfg is trainableSeries with a custom engine Config: a
// trained hourly PV series with the last week of generated values held back
// for the caller to stream.
func trainableSeriesCfg(t *testing.T, weeks int, cfg Config) (*Engine, []float64, int) {
	t.Helper()
	cfg.Log = slog.New(slog.NewTextHandler(io.Discard, nil))
	p := kpigen.PV(kpigen.Small)
	p.Interval = time.Hour
	p.Weeks = weeks
	d := kpigen.Generate(p, 91)
	ppw, err := d.Series.PointsPerWeek()
	if err != nil {
		t.Fatal(err)
	}
	e := New(cfg)
	t.Cleanup(e.Close)
	if err := e.Create("pv", SeriesConfig{IntervalSeconds: 3600, Start: testStart, Trees: 10}); err != nil {
		t.Fatal(err)
	}
	boot := (weeks - 1) * ppw
	pts := make([]Point, boot)
	for i := range pts {
		pts[i] = Point{Value: d.Series.Values[i]}
	}
	if _, err := e.Append(context.Background(), "pv", pts, nil); err != nil {
		t.Fatal(err)
	}
	var windows []Window
	for _, w := range d.Labels.Windows() {
		if w.End <= boot {
			windows = append(windows, Window{Start: w.Start, End: w.End, Anomalous: true})
		}
	}
	if _, err := e.Label(context.Background(), "pv", windows); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Train(context.Background(), "pv"); err != nil {
		t.Fatal(err)
	}
	return e, d.Series.Values[boot:], boot
}

// TestQueriesSurfaceAndAnswer drives the full query lifecycle: a band of 1.0
// makes every trained verdict a query candidate, so streaming points after
// training deterministically fills the queue.
func TestQueriesSurfaceAndAnswer(t *testing.T) {
	e, rest, boot := trainableSeriesCfg(t, 9, Config{QueryBand: 1, QueryDepth: 4, DriftThreshold: -1})
	pts := make([]Point, 24)
	for i := range pts {
		pts[i] = Point{Value: rest[i]}
	}
	if _, err := e.Append(context.Background(), "pv", pts, nil); err != nil {
		t.Fatal(err)
	}

	qs, err := e.Queries(context.Background(), "pv")
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) == 0 {
		t.Fatal("no queries surfaced with band 1.0 after trained appends")
	}
	q := qs[0]
	if q.Series != "pv" || q.Start < boot || q.End <= q.Start {
		t.Fatalf("malformed query %+v", q)
	}
	if q.Score <= 0 || q.Score > 1 {
		t.Fatalf("query score %v outside (0, 1]", q.Score)
	}
	if !q.EndTime.After(q.StartTime) {
		t.Fatalf("query times not ordered: %v .. %v", q.StartTime, q.EndTime)
	}

	// The engine-wide listing includes the series' queries.
	all, err := e.Queries(context.Background(), "")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(qs) {
		t.Fatalf("engine-wide listing has %d queries, per-series %d", len(all), len(qs))
	}

	before, err := e.Status(context.Background(), "pv")
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.AnswerQuery(context.Background(), "pv", q.Start, q.End, true)
	if err != nil {
		t.Fatalf("AnswerQuery: %v", err)
	}
	if res.AnomalousPoints < before.AnomalousPoints+(q.End-q.Start) {
		t.Fatalf("answered labels not applied: %d anomalous points, had %d and answered %d more",
			res.AnomalousPoints, before.AnomalousPoints, q.End-q.Start)
	}
	if got := e.Counters().QueriesAnswered; got != 1 {
		t.Fatalf("QueriesAnswered = %d, want 1", got)
	}

	// Answering twice (or answering a never-queued window) is rejected.
	if _, err := e.AnswerQuery(context.Background(), "pv", q.Start, q.End, true); !errors.Is(err, ErrRejected) {
		t.Fatalf("re-answer: got %v, want ErrRejected", err)
	}
	if _, err := e.AnswerQuery(context.Background(), "nope", 0, 1, true); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown series: got %v, want ErrNotFound", err)
	}

	qs, err = e.Queries(context.Background(), "pv")
	if err != nil {
		t.Fatal(err)
	}
	for _, left := range qs {
		if left.Start == q.Start && left.End == q.End {
			t.Fatalf("answered query still listed: %+v", left)
		}
	}

	// The per-series gauges reflect the queue.
	for _, sm := range e.MetricsSnapshot() {
		if sm.Name == "pv" && sm.PendingQueries != len(qs) {
			t.Fatalf("PendingQueries gauge = %d, want %d", sm.PendingQueries, len(qs))
		}
	}
}

// TestQueriesDisabled pins the negative-config convention: with both halves
// disabled the hot path carries no active state and query ops degrade
// gracefully.
func TestQueriesDisabled(t *testing.T) {
	e, rest, _ := trainableSeriesCfg(t, 9, Config{QueryBand: -1, QueryDepth: -1, DriftThreshold: -1})
	if _, err := e.Append(context.Background(), "pv", []Point{{Value: rest[0]}}, nil); err != nil {
		t.Fatal(err)
	}
	qs, err := e.Queries(context.Background(), "pv")
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 0 {
		t.Fatalf("disabled queue surfaced %d queries", len(qs))
	}
	if _, err := e.AnswerQuery(context.Background(), "pv", 0, 1, true); !errors.Is(err, ErrRejected) {
		t.Fatalf("answer with disabled queue: got %v, want ErrRejected", err)
	}
}

// TestRetrainClearsQueries pins the generation contract: pending queries
// were scored by the outgoing model, so a retrain swap empties the queue
// and drift-triggered retrains never fire on a stationary stream.
func TestRetrainClearsQueries(t *testing.T) {
	e, rest, _ := trainableSeriesCfg(t, 9, Config{QueryBand: 1, QueryDepth: 4})
	pts := make([]Point, len(rest))
	for i := range pts {
		pts[i] = Point{Value: rest[i]}
	}
	if _, err := e.Append(context.Background(), "pv", pts, nil); err != nil {
		t.Fatal(err)
	}
	qs, err := e.Queries(context.Background(), "pv")
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) == 0 {
		t.Fatal("no queries queued before retrain")
	}
	if _, err := e.Train(context.Background(), "pv"); err != nil {
		t.Fatal(err)
	}
	qs, err = e.Queries(context.Background(), "pv")
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 0 {
		t.Fatalf("retrain left %d stale queries", len(qs))
	}
	// A full held-back week of in-regime PV data is as stationary as this
	// stream gets: the drift detector must not have armed anything.
	if got := e.Counters().DriftRetrains; got != 0 {
		t.Fatalf("stationary stream armed %d drift retrains", got)
	}
}
