package engine

import (
	"sync/atomic"
	"time"

	"opprentice/internal/alerting"
)

// counters are the engine's operational counters. They are updated once per
// batch/event (never per point) and exported via Counters for whatever
// exposition format the transport layer speaks.
type counters struct {
	pointsIngested  atomic.Int64
	alarmsRaised    atomic.Int64
	trainingsRun    atomic.Int64
	trainingMillis  atomic.Int64
	detectorPanics  atomic.Int64 // sandboxed detector panics (training + online)
	walQuarantined  atomic.Int64 // corrupt series logs set aside during Restore
	walAppendErrors atomic.Int64 // failed durable appends (points + labels)

	modelPublishes     atomic.Int64 // artifacts published to the model registry
	modelPublishErrors atomic.Int64 // failed publish attempts
	modelRestoreWarm   atomic.Int64 // series restored from a published artifact
	modelRestoreCold   atomic.Int64 // series cold-retrained during Restore
	modelRollbacks     atomic.Int64 // explicit model rollbacks
	restoreMillis      atomic.Int64 // wall time of the last Restore pass

	// Overload and supervision accounting.
	ingestSheds       atomic.Int64 // batches shed by admission control
	degradedEntered   atomic.Int64 // series transitions into degraded mode
	degradedRecovered atomic.Int64 // series transitions back to healthy
	walBufferedPoints atomic.Int64 // points buffered by degraded WAL writers
	walLostPoints     atomic.Int64 // points dropped from the log (buffer full)
	trainStalls       atomic.Int64 // training/publish rounds abandoned by the watchdog
	trainRetriesRun   atomic.Int64 // watchdog-driven retrain retries
	seriesQuarantined atomic.Int64 // series whose training was quarantined
	workerPanics      atomic.Int64 // recovered panics in supervised workers

	// Active-learning accounting (see internal/active).
	queriesAnswered atomic.Int64 // label queries answered via AnswerQuery
	driftRetrains   atomic.Int64 // retrains armed by the drift detector
}

// observeTraining records one training round's wall time (failed rounds
// count too, as before the engine split).
func (c *counters) observeTraining(d time.Duration) {
	c.trainingsRun.Add(1)
	c.trainingMillis.Add(d.Milliseconds())
}

// Counters is a point-in-time snapshot of the engine-wide counters.
type Counters struct {
	PointsIngested  int64
	AlarmsRaised    int64
	TrainingsRun    int64
	TrainingSeconds float64
	DetectorPanics  int64
	WALQuarantined  int64
	WALAppendErrors int64

	// Model-registry accounting (all zero without a registry).
	// ModelRestoreWarm/Cold split the last Restore pass by mode;
	// RestoreSeconds is that pass's wall time.
	ModelPublishes        int64
	ModelPublishErrors    int64
	ModelRestoreWarm      int64
	ModelRestoreCold      int64
	ModelRollbacks        int64
	ModelChecksumFailures int64
	RestoreSeconds        float64

	// Incremental feature-extraction cache accounting (all zero when the
	// cache is disabled). ExtractPointsCold/Incremental count
	// (point × configuration) severity computations by extraction mode —
	// the ratio is the retrain amortization actually achieved.
	ExtractPointsCold        int64
	ExtractPointsIncremental int64
	ExtractCacheBytes        int64
	ExtractCacheCapBytes     int64
	ExtractCacheInvalidated  int64

	// Overload and supervision accounting (see the resilience layer).
	IngestSheds       int64
	DegradedEntered   int64
	DegradedRecovered int64
	WALBufferedPoints int64
	WALLostPoints     int64
	TrainStalls       int64
	TrainRetries      int64
	SeriesQuarantined int64
	WorkerPanics      int64

	// Active-learning accounting: answered label queries and retrains the
	// drift detector armed ahead of the weekly tick.
	QueriesAnswered int64
	DriftRetrains   int64
}

// Counters returns the current engine-wide counters.
func (e *Engine) Counters() Counters {
	c := Counters{
		PointsIngested:  e.counters.pointsIngested.Load(),
		AlarmsRaised:    e.counters.alarmsRaised.Load(),
		TrainingsRun:    e.counters.trainingsRun.Load(),
		TrainingSeconds: float64(e.counters.trainingMillis.Load()) / 1000,
		DetectorPanics:  e.counters.detectorPanics.Load(),
		WALQuarantined:  e.counters.walQuarantined.Load(),
		WALAppendErrors: e.counters.walAppendErrors.Load(),

		ModelPublishes:     e.counters.modelPublishes.Load(),
		ModelPublishErrors: e.counters.modelPublishErrors.Load(),
		ModelRestoreWarm:   e.counters.modelRestoreWarm.Load(),
		ModelRestoreCold:   e.counters.modelRestoreCold.Load(),
		ModelRollbacks:     e.counters.modelRollbacks.Load(),
		RestoreSeconds:     float64(e.counters.restoreMillis.Load()) / 1000,

		IngestSheds:       e.counters.ingestSheds.Load(),
		DegradedEntered:   e.counters.degradedEntered.Load(),
		DegradedRecovered: e.counters.degradedRecovered.Load(),
		WALBufferedPoints: e.counters.walBufferedPoints.Load(),
		WALLostPoints:     e.counters.walLostPoints.Load(),
		TrainStalls:       e.counters.trainStalls.Load(),
		TrainRetries:      e.counters.trainRetriesRun.Load(),
		SeriesQuarantined: e.counters.seriesQuarantined.Load(),
		WorkerPanics:      e.counters.workerPanics.Load(),

		QueriesAnswered: e.counters.queriesAnswered.Load(),
		DriftRetrains:   e.counters.driftRetrains.Load(),
	}
	if e.models != nil {
		c.ModelChecksumFailures = e.models.Stats().ChecksumFailures
	}
	if e.cacheBudget != nil {
		cs := e.cacheBudget.Stats()
		c.ExtractPointsCold = cs.ColdPoints
		c.ExtractPointsIncremental = cs.IncrementalPoints
		c.ExtractCacheBytes = cs.Bytes
		c.ExtractCacheCapBytes = cs.CapBytes
		c.ExtractCacheInvalidated = cs.Invalidations
	}
	return c
}

// SeriesMetrics is one series' gauge snapshot for metric exposition.
type SeriesMetrics struct {
	Name              string
	Points            int
	LabeledWindows    int
	Trained           bool
	CThld             float64
	DegradedDetectors int
	// PendingQueries is the label-query queue depth; DriftScore the PSI of
	// the last completed drift comparison window (both zero when the
	// active-learning subsystem is disabled).
	PendingQueries int
	DriftScore     float64
	Notify         alerting.Stats
}

// MetricsSnapshot returns per-series gauges sorted by name. Each series is
// locked only briefly.
func (e *Engine) MetricsSnapshot() []SeriesMetrics {
	names := e.Names()
	out := make([]SeriesMetrics, 0, len(names))
	for _, name := range names {
		m, err := e.lookup(name)
		if err != nil {
			continue // deleted between Names and here
		}
		m.mu.Lock()
		sm := SeriesMetrics{
			Name:           name,
			Points:         m.series.Len(),
			LabeledWindows: len(m.labels.Windows()),
			Trained:        m.monitor != nil,
		}
		if sm.Trained {
			sm.CThld = m.monitor.CThld()
			sm.DegradedDetectors = m.monitor.DegradedDetectors()
		}
		if m.active != nil {
			sm.PendingQueries = m.active.Depth()
			sm.DriftScore = m.active.DriftScore()
		}
		if m.pipeline != nil {
			sm.Notify = m.pipeline.Stats()
		}
		m.mu.Unlock()
		out = append(out, sm)
	}
	return out
}

// Inspection is the dashboard's view of one series: copies of the trailing
// values and most recent alarms plus the headline gauges.
type Inspection struct {
	Points         int
	LabeledWindows int
	Trained        bool
	CThld          float64
	Recent         []float64
	LastAlarms     []Alarm
}

// Inspect returns a dashboard snapshot of one series with up to lastValues
// trailing points and lastAlarms recent alarms. The returned slices are
// copies.
func (e *Engine) Inspect(name string, lastValues, lastAlarms int) (Inspection, bool) {
	m, err := e.lookup(name)
	if err != nil {
		return Inspection{}, false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	ins := Inspection{
		Points:         m.series.Len(),
		LabeledWindows: len(m.labels.Windows()),
		Trained:        m.monitor != nil,
	}
	if ins.Trained {
		ins.CThld = m.monitor.CThld()
	}
	lo := m.series.Len() - lastValues
	if lo < 0 {
		lo = 0
	}
	ins.Recent = append([]float64(nil), m.series.Values[lo:]...)
	ins.LastAlarms = m.alarms.last(lastAlarms)
	return ins, true
}
