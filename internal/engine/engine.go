// Package engine is the transport-agnostic heart of the anomaly-detection
// service: a sharded registry of monitored KPI series, the single-writer
// ingest path (append → Monitor.Step → alarm ring → WAL → incident fan-out),
// label management, and an asynchronous retrain scheduler implementing the
// paper's weekly incremental loop (§3.2, Fig. 3) without ever blocking
// ingest.
//
// internal/service is a thin HTTP/JSON adapter over this package; the engine
// itself knows nothing about HTTP and is fully exercisable (and benchmarked)
// in-process. Persistence is behind the small Store interface, satisfied by
// *tsdb.Store, so storage faults are injectable in tests.
//
// # Concurrency model
//
//   - The registry is split into N shards keyed by FNV-1a of the series
//     name; a shard's RWMutex only guards its map, so lookups from parallel
//     clients touch disjoint locks.
//   - Each series has one mutex and a single-writer discipline: every
//     mutation of the series data, labels, monitor pointer, or alarm ring
//     happens under that mutex, and WAL appends are issued under it too, so
//     the log order always matches the in-memory order.
//   - Retraining never runs under the series mutex. A training round clones
//     the series and labels (a cheap memcpy snapshot), fits a replacement
//     core.Monitor off to the side, then re-acquires the mutex only to
//     replay the points that arrived mid-train and swap the monitor pointer.
//     Ingest therefore proceeds at full speed during a retrain, and every
//     appended point receives exactly one verdict — from whichever monitor
//     was live at append time.
package engine

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"log/slog"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"opprentice/internal/active"
	"opprentice/internal/alerting"
	"opprentice/internal/core"
	"opprentice/internal/detectors"
	modelreg "opprentice/internal/registry"
	"opprentice/internal/stats"
	"opprentice/internal/timeseries"
	"opprentice/internal/tsdb"
)

// Store is the persistence seam between the engine and the write-ahead log.
// *tsdb.Store satisfies it; tests substitute failing or recording fakes.
type Store interface {
	CreateSeries(meta tsdb.Meta) error
	AppendPoints(ctx context.Context, name string, values []float64) error
	AppendLabel(ctx context.Context, name string, start, end int, anomalous bool) error
	List() ([]string, error)
	Load(name string) (*tsdb.Loaded, error)
	Quarantine(name string) (string, error)
}

var _ Store = (*tsdb.Store)(nil)

// Sentinel error kinds. Engine errors wrap exactly one of these so
// transports can map them to status codes without string matching; the
// human-readable message is unchanged by the wrapping.
var (
	// ErrNotFound: the named series does not exist.
	ErrNotFound = errors.New("series not found")
	// ErrExists: create collided with an existing series.
	ErrExists = errors.New("series already exists")
	// ErrInvalid: the request itself is malformed (HTTP 400 class).
	ErrInvalid = errors.New("invalid request")
	// ErrRejected: the request is well-formed but inapplicable to the
	// series' current state (HTTP 422 class): out-of-order timestamps,
	// out-of-range label windows, untrainable history.
	ErrRejected = errors.New("request rejected")
	// ErrOverloaded: admission control shed the request because the
	// per-shard in-flight ingest budget is exhausted (HTTP 429 class). The
	// shed is atomic — nothing was appended, no verdict was issued — so the
	// client can simply retry after backing off.
	ErrOverloaded = errors.New("engine overloaded")
	// ErrStalled: a supervised worker (training, publish) blew its deadline
	// and was abandoned by the watchdog (HTTP 503 class). The previous model
	// keeps serving; the operation is retried in the background.
	ErrStalled = errors.New("operation stalled past its deadline")
)

// kindError tags an error with a sentinel kind while keeping the original
// message (errors.Is sees both; Error() shows only the cause).
type kindError struct {
	kind  error
	cause error
}

func (e *kindError) Error() string   { return e.cause.Error() }
func (e *kindError) Unwrap() []error { return []error{e.kind, e.cause} }

func invalidf(format string, args ...any) error {
	return &kindError{kind: ErrInvalid, cause: fmt.Errorf(format, args...)}
}

func rejectedf(format string, args ...any) error {
	return &kindError{kind: ErrRejected, cause: fmt.Errorf(format, args...)}
}

func rejected(err error) error { return &kindError{kind: ErrRejected, cause: err} }

func notFound(name string) error {
	return &kindError{kind: ErrNotFound, cause: fmt.Errorf("no series %q", name)}
}

func overloadedf(format string, args ...any) error {
	return &kindError{kind: ErrOverloaded, cause: fmt.Errorf(format, args...)}
}

func stalledf(format string, args ...any) error {
	return &kindError{kind: ErrStalled, cause: fmt.Errorf(format, args...)}
}

// Config configures New. Zero values pick production defaults.
type Config struct {
	// Log receives operational events (default slog.Default).
	Log *slog.Logger
	// Shards is the series-registry shard count (default 16, rounded up to a
	// power of two).
	Shards int
	// MaxAlarms bounds each series' in-memory alarm ring (default 1024).
	MaxAlarms int
	// Registry builds the detector set for (re)training; overridable for
	// fault injection (default detectors.Registry).
	Registry func(time.Duration) ([]detectors.Detector, error)
	// Notify tunes the per-series async webhook delivery pipelines.
	Notify alerting.PipelineConfig
	// Store, when non-nil, makes the engine durable (see SetStore).
	Store Store
	// RetrainWorkers is the number of background training workers shared by
	// all series (default 2).
	RetrainWorkers int
	// RetrainQueue bounds the pending automatic-retrain queue (default 64).
	// When it is full a trigger is dropped and re-armed by the next append.
	RetrainQueue int
	// ExtractCacheMB caps the engine-wide incremental feature-extraction
	// cache, in MiB, shared by all series (default 256). A series' cache
	// makes its weekly retrain extraction O(new points) instead of O(full
	// history); when the shared cap is exceeded the overflowing cache is
	// invalidated wholesale and that series retrains cold. Negative disables
	// caching entirely.
	ExtractCacheMB int
	// Models, when non-nil, is the model-artifact registry (see SetModels):
	// trained models are published to it asynchronously and Restore prefers
	// warm starts from its artifacts over cold retraining.
	Models *modelreg.Registry
	// RestoreWorkers bounds the parallelism of Restore's per-series pass
	// (default min(8, GOMAXPROCS)).
	RestoreWorkers int
	// Notifier, when non-nil, builds the per-series incident notifier from the
	// series' webhook URL; the default is an HTTP alerting.WebhookNotifier.
	// Tests and the simulation harness substitute in-process recorders here so
	// the whole alert path runs without a network.
	Notifier func(series, webhookURL string) alerting.Notifier
	// Hooks receive lifecycle completion callbacks (see Hooks). All fields are
	// optional.
	Hooks Hooks

	// IngestInflight bounds the points concurrently inside Append per shard
	// (default 65536). A batch that would exceed the budget is shed whole
	// with an ErrOverloaded-wrapped error before any mutation. Negative
	// disables admission control.
	IngestInflight int
	// WALDeadline bounds how long an Append or Label waits for its durable
	// write (default 2s). A write that blows the budget flips the series
	// into degraded mode: verdicts become threshold-only, WAL ops are
	// buffered in the background writer, and the append reports
	// Persisted=false. Negative disables the deadline (waits forever).
	WALDeadline time.Duration
	// TrainDeadline bounds one training/publish round (default 5m). A round
	// that blows it is abandoned by the watchdog with an ErrStalled-wrapped
	// error; the live monitor is untouched and automatic retrains back off
	// and retry. Negative disables the watchdog.
	TrainDeadline time.Duration
	// DegradedRecovery is the hysteresis window for leaving degraded mode
	// (default 30s): a series recovers only after its WAL writer has been
	// quiet — no slow or failed write — for this long and its queue has
	// drained. Negative makes degraded mode sticky until restart.
	DegradedRecovery time.Duration
	// WALBufferPoints bounds the points buffered per series in the
	// background WAL writer while degraded (default 65536). Beyond it,
	// batches are dropped from the log (never from memory) and counted in
	// Counters().WALLostPoints.
	WALBufferPoints int
	// TrainRetries is how many times an automatic retrain that stalled or
	// failed is retried with exponential backoff before giving up for that
	// trigger (default 3).
	TrainRetries int
	// TrainFailLimit quarantines a series' training after this many
	// consecutive failed automatic rounds (default 5): the old model keeps
	// serving, automatic retrains stop, and a successful manual Train
	// lifts the quarantine.
	TrainFailLimit int

	// Active-learning knobs (see internal/active). QueryBand is the
	// uncertainty band around the live cThld within which a trained verdict
	// becomes a label-query candidate (default 0.1); QueryDepth is the
	// per-series queue capacity in windows (default 8). Negative values
	// disable the query queue.
	QueryBand  float64
	QueryDepth int
	// DriftThreshold is the PSI level at which a vote-fraction distribution
	// window counts toward drift (default 0.25; two consecutive windows at
	// or above it arm an early retrain). Negative disables drift detection.
	DriftThreshold float64
	// DriftWindow is the histogram window in points (default: one day of
	// the series' points, floored at active.MinDriftWindow).
	DriftWindow int
}

// Hooks are optional lifecycle callbacks for observers that need completion
// edges rather than polling: tests, the simulation harness, and metrics
// exporters. Callbacks run on engine worker goroutines (or the caller's for
// synchronous entry points) and must be cheap and non-blocking; they must not
// call back into the engine.
type Hooks struct {
	// TrainDone fires after every training round — synchronous Train calls,
	// automatic retrains, and cold restores alike — with the round's result
	// (zero on failure) and error.
	TrainDone func(series string, res TrainResult, err error)
	// PublishDone fires after every model-publication attempt that wrote an
	// artifact (err == nil, gen is its generation) or failed (err != nil).
	// No-op publish checks (nothing new to publish) do not fire.
	PublishDone func(series string, gen uint64, err error)
}

// Engine owns all monitored series and the ingest/train/label/status
// operations over them. Create it with New; Close it to stop the retrain
// workers and drain the notification pipelines.
type Engine struct {
	shards    []shard
	shardMask uint32

	log       *slog.Logger
	store     Store
	maxAlarms int
	registry  func(time.Duration) ([]detectors.Detector, error)
	notifyCfg alerting.PipelineConfig
	notifier  func(series, webhookURL string) alerting.Notifier
	hooks     Hooks

	// models is the model-artifact registry; nil when checkpointing is
	// disabled. restoreWorkers bounds Restore's parallel per-series pass.
	models         *modelreg.Registry
	restoreWorkers int

	// cacheBudget is the shared accounting for all series' feature caches;
	// nil when caching is disabled.
	cacheBudget *core.CacheBudget

	// activeCfg templates each series' active-learning state; the per-series
	// DriftWindow default (one day of points) is resolved at attach time.
	activeCfg active.Config

	// Resilience knobs. The deadlines are atomic nanosecond values so tests
	// and operators can retune them at runtime (Set* methods); zero means
	// disabled after New's resolution.
	ingestInflight   int64 // per-shard admission budget in points; 0 = unlimited
	walDeadline      atomic.Int64
	trainDeadline    atomic.Int64
	degradedRecovery atomic.Int64
	walBufferPoints  int
	trainRetries     int
	trainFailLimit   int

	counters counters

	trainQ    chan *managed
	pubQ      chan *managed
	stop      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
}

type shard struct {
	mu     sync.RWMutex
	series map[string]*managed

	// inflight is the admission-control gauge: points currently inside
	// Append for this shard's series. Reserved before any mutation,
	// released when the call returns.
	inflight atomic.Int64
}

// managed is one KPI under management. All fields after mu are guarded by
// it; trainMu serializes training rounds and is never acquired while mu is
// held.
type managed struct {
	name string

	mu     sync.Mutex
	series *timeseries.Series
	labels timeseries.Labels
	// typed is the per-point anomaly-class channel parallel to labels
	// (core.AnomalyClass wire codes). It stays nil until the first typed
	// label arrives — mirroring tsdb.Loaded.Types — so untyped series pay
	// nothing for the feature.
	typed         []uint8
	pref          stats.Preference
	trees         int
	predKind      core.PredictorKind
	evtQ          float64
	monitor       *core.Monitor
	vbatch        []core.Verdict // reusable StepBatch output (guarded by mu)
	alarms        alarmRing
	trained       time.Time
	pointsAtTrain int
	retrainEvery  int
	incident      *alerting.Manager  // nil without a webhook
	pipeline      *alerting.Pipeline // nil without a webhook; async delivery

	trainMu  sync.Mutex  // serializes snapshot→fit→swap rounds
	training atomic.Bool // an automatic retrain is queued or in flight

	// publishedAt is the trained-at time of the last model published to the
	// registry (guarded by mu); pubMu serializes publish rounds and
	// publishArmed coalesces queued publish triggers like training does.
	publishedAt  time.Time
	pubMu        sync.Mutex
	publishArmed atomic.Bool

	// active is the series' label-query queue and drift detector (guarded
	// by mu; nil when both are disabled). Its Observe call rides the
	// trained append path and must stay allocation-free.
	active *active.State

	// featCache checkpoints extraction state across training rounds so
	// retrains extract only newly appended points (nil when caching is
	// disabled). Only touched inside training rounds, serialized by trainMu;
	// the cache carries its own mutex besides.
	featCache *core.FeatureCache

	// walw is the background WAL writer (nil without a store). Ops are
	// enqueued under mu so log order matches append order; the healthy path
	// waits for completion up to the WAL deadline and a blown deadline
	// flips the series degraded.
	walw *walWriter

	// Degraded-mode state (guarded by mu). While degraded the monitor is
	// not stepped: verdicts come from the threshold-only scorer, appended
	// values accumulate in pending, and recovery replays pending through
	// the real monitor (verdicts discarded, exactly like the retrain
	// replay) so the monitor state converges bit-identically with a
	// never-degraded run.
	degraded      bool
	degradedSince time.Time
	degradedCThld float64
	scorer        degradeScorer
	pending       []float64

	// lastViolation is the unix-nano time of the last slow or failed WAL
	// write, stamped by the writer goroutine; recovery hysteresis keys off
	// it.
	lastViolation atomic.Int64

	// Training supervision: consecutive failed automatic rounds, and the
	// quarantine latch that stops automatic retrains after too many (the
	// old model keeps serving; a successful manual Train clears it).
	trainFails  atomic.Int32
	quarantined atomic.Bool
}

// New returns an engine with no series and its retrain workers running.
func New(cfg Config) *Engine {
	if cfg.Log == nil {
		cfg.Log = slog.Default()
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 16
	}
	n := 1
	for n < cfg.Shards {
		n <<= 1
	}
	if cfg.MaxAlarms <= 0 {
		cfg.MaxAlarms = 1024
	}
	if cfg.Registry == nil {
		cfg.Registry = detectors.Registry
	}
	if cfg.Notify.Log == nil {
		cfg.Notify.Log = cfg.Log
	}
	if cfg.RetrainWorkers <= 0 {
		cfg.RetrainWorkers = 2
	}
	if cfg.RetrainQueue <= 0 {
		cfg.RetrainQueue = 64
	}
	if cfg.ExtractCacheMB == 0 {
		cfg.ExtractCacheMB = 256
	}
	if cfg.RestoreWorkers <= 0 {
		cfg.RestoreWorkers = runtime.GOMAXPROCS(0)
		if cfg.RestoreWorkers > 8 {
			cfg.RestoreWorkers = 8
		}
	}
	var budget *core.CacheBudget
	if cfg.ExtractCacheMB > 0 {
		budget = core.NewCacheBudget(int64(cfg.ExtractCacheMB) << 20)
	}
	// Resilience knobs: zero picks the default, negative disables.
	resolve := func(v, def time.Duration) time.Duration {
		if v == 0 {
			return def
		}
		if v < 0 {
			return 0
		}
		return v
	}
	if cfg.IngestInflight == 0 {
		cfg.IngestInflight = 1 << 16
	}
	if cfg.IngestInflight < 0 {
		cfg.IngestInflight = 0
	}
	if cfg.WALBufferPoints == 0 {
		cfg.WALBufferPoints = 1 << 16
	}
	if cfg.WALBufferPoints < 0 {
		cfg.WALBufferPoints = 0
	}
	if cfg.TrainRetries == 0 {
		cfg.TrainRetries = 3
	}
	if cfg.TrainRetries < 0 {
		cfg.TrainRetries = 0
	}
	if cfg.TrainFailLimit == 0 {
		cfg.TrainFailLimit = 5
	}
	if cfg.TrainFailLimit < 0 {
		cfg.TrainFailLimit = 0
	}
	if cfg.Notifier == nil {
		cfg.Notifier = func(_, webhookURL string) alerting.Notifier {
			return alerting.WebhookNotifier{URL: webhookURL}
		}
	}
	e := &Engine{
		shards:          make([]shard, n),
		shardMask:       uint32(n - 1),
		log:             cfg.Log,
		store:           cfg.Store,
		maxAlarms:       cfg.MaxAlarms,
		registry:        cfg.Registry,
		notifyCfg:       cfg.Notify,
		notifier:        cfg.Notifier,
		hooks:           cfg.Hooks,
		models:          cfg.Models,
		restoreWorkers:  cfg.RestoreWorkers,
		cacheBudget:     budget,
		ingestInflight:  int64(cfg.IngestInflight),
		walBufferPoints: cfg.WALBufferPoints,
		trainRetries:    cfg.TrainRetries,
		trainFailLimit:  cfg.TrainFailLimit,
		trainQ:          make(chan *managed, cfg.RetrainQueue),
		pubQ:            make(chan *managed, cfg.RetrainQueue),
		stop:            make(chan struct{}),
	}
	e.activeCfg = active.Config{
		Band:           cfg.QueryBand,
		Depth:          cfg.QueryDepth,
		DriftThreshold: cfg.DriftThreshold,
		DriftWindow:    cfg.DriftWindow,
	}
	e.walDeadline.Store(int64(resolve(cfg.WALDeadline, 2*time.Second)))
	e.trainDeadline.Store(int64(resolve(cfg.TrainDeadline, 5*time.Minute)))
	e.degradedRecovery.Store(int64(resolve(cfg.DegradedRecovery, 30*time.Second)))
	for i := range e.shards {
		e.shards[i].series = make(map[string]*managed)
	}
	e.wg.Add(cfg.RetrainWorkers)
	for i := 0; i < cfg.RetrainWorkers; i++ {
		go e.retrainWorker()
	}
	e.wg.Add(1)
	go e.publishWorker()
	return e
}

// shardFor hashes a series name onto its shard (FNV-1a).
func (e *Engine) shardFor(name string) *shard {
	h := fnv.New32a()
	h.Write([]byte(name))
	return &e.shards[h.Sum32()&e.shardMask]
}

// lookup returns the managed series or a not-found error.
func (e *Engine) lookup(name string) (*managed, error) {
	sh := e.shardFor(name)
	sh.mu.RLock()
	m := sh.series[name]
	sh.mu.RUnlock()
	if m == nil {
		return nil, notFound(name)
	}
	return m, nil
}

// SetStore makes the engine durable: every create/points/labels mutation is
// appended to the store's per-series write-ahead log. Call Restore after it
// to reload existing logs. Must be called before traffic.
func (e *Engine) SetStore(store Store) { e.store = store }

// SetDetectorRegistry replaces the detector-set factory used by training.
// Intended for tests and fault injection; call it before any series is
// trained.
func (e *Engine) SetDetectorRegistry(fn func(time.Duration) ([]detectors.Detector, error)) {
	if fn != nil {
		e.registry = fn
	}
}

// SetNotifyConfig tunes the asynchronous webhook delivery pipelines created
// for series from then on. Call it before creating or restoring series.
func (e *Engine) SetNotifyConfig(cfg alerting.PipelineConfig) {
	if cfg.Log == nil {
		cfg.Log = e.log
	}
	e.notifyCfg = cfg
}

// SetHooks installs lifecycle callbacks (see Hooks). Call it before traffic;
// it is not safe to change hooks while workers are running.
func (e *Engine) SetHooks(h Hooks) { e.hooks = h }

// SeriesConfig describes a series to create.
type SeriesConfig struct {
	// IntervalSeconds is the sampling interval; it must divide a day.
	IntervalSeconds int
	// Start is the timestamp of the first point.
	Start time.Time
	// Recall and Precision form the accuracy preference (default 0.66 each).
	Recall, Precision float64
	// Trees is the forest size (default 60).
	Trees int
	// WebhookURL, when set, receives incident open/resolved events.
	WebhookURL string
	// RetrainEvery, when > 0, schedules an asynchronous retrain after that
	// many new points since the last training.
	RetrainEvery int
	// CThldPredictor selects the cThld prediction strategy: "" or "ewma"
	// for the paper's EWMA predictor (§4.5.2), "evt" for the POT/GPD
	// dynamic predictor re-fitted at every retrain.
	CThldPredictor string
	// EVTQ pins the EVT predictor's target exceedance risk (0 < q < 1);
	// 0 selects weekly auto-calibration of the risk against the labeled
	// trailing window. Ignored for the EWMA predictor.
	EVTQ float64
}

// Create registers a new series. It returns an ErrInvalid-wrapped error for
// malformed parameters and an ErrExists-wrapped error on name collision.
func (e *Engine) Create(name string, cfg SeriesConfig) error {
	interval := time.Duration(cfg.IntervalSeconds) * time.Second
	if interval <= 0 || timeseries.Day%interval != 0 {
		return invalidf("interval %v must divide a day", interval)
	}
	if cfg.Start.IsZero() {
		return invalidf("start timestamp required")
	}
	pref := stats.Preference{Recall: cfg.Recall, Precision: cfg.Precision}
	if pref == (stats.Preference{}) {
		pref = stats.Preference{Recall: 0.66, Precision: 0.66}
	}
	trees := cfg.Trees
	if trees <= 0 {
		trees = 60
	}
	predKind, ok := core.ParsePredictorKind(cfg.CThldPredictor)
	if !ok {
		return invalidf("unknown cthld predictor %q (want ewma or evt)", cfg.CThldPredictor)
	}
	if cfg.EVTQ < 0 || cfg.EVTQ >= 1 {
		return invalidf("evt q %g out of range (0, 1)", cfg.EVTQ)
	}
	m := &managed{
		name:         name,
		series:       timeseries.New(name, cfg.Start.UTC(), interval),
		pref:         pref,
		trees:        trees,
		predKind:     predKind,
		evtQ:         cfg.EVTQ,
		retrainEvery: cfg.RetrainEvery,
		alarms:       alarmRing{max: e.maxAlarms},
	}
	if e.cacheBudget != nil {
		m.featCache = core.NewFeatureCache(e.cacheBudget)
	}
	e.attachActive(m)
	if cfg.WebhookURL != "" {
		e.attachIncident(m, cfg.WebhookURL)
	}
	if e.store != nil {
		e.attachWAL(m)
	}
	sh := e.shardFor(name)
	sh.mu.Lock()
	_, exists := sh.series[name]
	if !exists {
		sh.series[name] = m
	}
	sh.mu.Unlock()
	if exists {
		if m.pipeline != nil {
			m.pipeline.Close() // don't leak the losing candidate's worker
		}
		if m.walw != nil {
			m.walw.shutdown(time.Second)
		}
		return &kindError{kind: ErrExists, cause: fmt.Errorf("series %q already exists", name)}
	}
	if m.walw != nil {
		// The meta record goes through the series' WAL writer like every
		// other record, so it is ordered strictly before any points a racing
		// Append could enqueue. Create still waits for it: a creation that
		// cannot reach disk fails synchronously.
		if err := m.walw.createSeries(tsdb.Meta{
			Name:            name,
			Start:           cfg.Start.UTC(),
			IntervalSeconds: cfg.IntervalSeconds,
			Recall:          pref.Recall,
			Precision:       pref.Precision,
			Trees:           trees,
			WebhookURL:      cfg.WebhookURL,
			RetrainEvery:    cfg.RetrainEvery,
			Predictor:       uint8(predKind),
			EVTQ:            cfg.EVTQ,
		}); err != nil {
			return err
		}
	}
	e.log.Info("series created", "name", name, "interval", interval)
	return nil
}

// attachActive builds the series' active-learning state from the engine
// template, defaulting the drift histogram window to one day of the series'
// points so the statistic compares like-for-like across sampling intervals.
func (e *Engine) attachActive(m *managed) {
	cfg := e.activeCfg
	if cfg.DriftWindow == 0 {
		if ppd, err := m.series.PointsPerDay(); err == nil {
			cfg.DriftWindow = ppd
		}
	}
	m.active = active.NewState(cfg)
}

// attachIncident wires a webhook URL to an incident manager whose notifier
// is an asynchronous retrying pipeline, so webhook trouble never blocks
// ingest.
func (e *Engine) attachIncident(m *managed, webhookURL string) {
	m.pipeline = alerting.NewPipeline(e.notifier(m.name, webhookURL), e.notifyCfg)
	m.incident = &alerting.Manager{Series: m.name, Notifier: m.pipeline}
}

// Names returns the managed series names, sorted.
func (e *Engine) Names() []string {
	var names []string
	for i := range e.shards {
		sh := &e.shards[i]
		sh.mu.RLock()
		for name := range sh.series {
			names = append(names, name)
		}
		sh.mu.RUnlock()
	}
	if names == nil {
		names = []string{}
	}
	sort.Strings(names)
	return names
}

// Status describes one monitored series. Field tags double as the service's
// wire format so the HTTP layer can return it verbatim.
type Status struct {
	Name            string    `json:"name"`
	Points          int       `json:"points"`
	AnomalousPoints int       `json:"anomalous_points"`
	LabeledWindows  int       `json:"labeled_windows"`
	Trained         bool      `json:"trained"`
	TrainedAt       time.Time `json:"trained_at,omitempty"`
	CThld           float64   `json:"cthld,omitempty"`
	Recall          float64   `json:"recall"`
	Precision       float64   `json:"precision"`
	IntervalSeconds int       `json:"interval_seconds"`
	// Degraded reports the series is serving threshold-only verdicts while
	// its WAL writer catches up (see the degraded-mode state machine).
	Degraded bool `json:"degraded,omitempty"`
	// Quarantined reports automatic retraining is suspended after repeated
	// failures; the last good model keeps serving.
	Quarantined bool `json:"quarantined,omitempty"`
	// CThldPredictor names the series' cThld prediction strategy ("ewma"
	// or "evt").
	CThldPredictor string `json:"cthld_predictor,omitempty"`
	// TypedModel reports a trained multi-class anomaly-type head is live.
	TypedModel bool `json:"typed_model,omitempty"`
}

// Status reports one series' state.
func (e *Engine) Status(ctx context.Context, name string) (Status, error) {
	if err := ctx.Err(); err != nil {
		return Status{}, err
	}
	m, err := e.lookup(name)
	if err != nil {
		return Status{}, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	st := Status{
		Name:            m.name,
		Points:          m.series.Len(),
		AnomalousPoints: m.labels.Count(),
		LabeledWindows:  len(m.labels.Windows()),
		Trained:         m.monitor != nil,
		Recall:          m.pref.Recall,
		Precision:       m.pref.Precision,
		IntervalSeconds: int(m.series.Interval / time.Second),
		Degraded:        m.degraded,
		Quarantined:     m.quarantined.Load(),
		CThldPredictor:  m.predKind.String(),
	}
	if m.monitor != nil {
		st.CThld = m.monitor.CThld()
		st.TrainedAt = m.trained
		st.CThldPredictor = m.monitor.PredictorKind().String()
		st.TypedModel = m.monitor.HasTypeModel()
	}
	return st, nil
}

// Alarms returns the retained alarms raised after since, oldest first.
func (e *Engine) Alarms(name string, since time.Time) ([]Alarm, error) {
	m, err := e.lookup(name)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.alarms.since(since), nil
}

// Window is one label action over the half-open index range [Start, End).
// Field tags double as the service's wire format.
type Window struct {
	Start     int  `json:"start"`
	End       int  `json:"end"`
	Anomalous bool `json:"anomalous"`
	// Type optionally names the anomaly class of an anomalous window
	// ("spike", "drop", "ramp", "level_shift", "jitter"); typed windows
	// train the multi-class anomaly-type head at the next retrain. Empty
	// leaves the window untyped.
	Type string `json:"type,omitempty"`
}

// LabelResult summarizes a series' labels after a Label call.
type LabelResult struct {
	AnomalousPoints int
	LabeledWindows  int
}

// Label applies label actions to a series. The whole batch is validated
// before anything is applied: an out-of-range window rejects the entire
// request with an ErrRejected-wrapped error and no labels changed.
func (e *Engine) Label(ctx context.Context, name string, windows []Window) (LabelResult, error) {
	if err := ctx.Err(); err != nil {
		return LabelResult{}, err
	}
	m, err := e.lookup(name)
	if err != nil {
		return LabelResult{}, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	classes := make([]core.AnomalyClass, len(windows))
	for wi, lw := range windows {
		if lw.Start < 0 || lw.End > m.series.Len() || lw.Start >= lw.End {
			return LabelResult{}, rejectedf("window [%d, %d) out of range 0..%d", lw.Start, lw.End, m.series.Len())
		}
		class, ok := core.ParseClass(lw.Type)
		if !ok {
			return LabelResult{}, rejectedf("unknown anomaly type %q", lw.Type)
		}
		classes[wi] = class
	}
	for wi, lw := range windows {
		class := classes[wi]
		typed := lw.Type != ""
		if typed && m.typed == nil {
			m.typed = make([]uint8, len(m.labels))
		}
		for i := lw.Start; i < lw.End; i++ {
			m.labels[i] = lw.Anomalous
			if m.typed != nil {
				// Keep the channels consistent: an untyped or un-labeling
				// action clears the class over its range.
				code := uint8(0)
				if lw.Anomalous && typed {
					code = uint8(class)
				}
				m.typed[i] = code
			}
		}
		if m.walw != nil {
			// The writer owns failure accounting and logging; a write that
			// blows its deadline flips the series degraded inside.
			m.walw.appendLabel(ctx, lw.Start, lw.End, lw.Anomalous, uint8(class), typed)
		}
	}
	return LabelResult{
		AnomalousPoints: m.labels.Count(),
		LabeledWindows:  len(m.labels.Windows()),
	}, nil
}

// Restore reloads every series in the store with a bounded pool of parallel
// workers and returns the number of series restored. Per series the fallback
// ladder is warm → cold → data-only: if a model registry is attached and
// holds a valid artifact (CRC and deployment fingerprint both verified), the
// published monitor is loaded and its detectors re-warmed from trailing
// history with no training at all; if the warm rung fails for any reason —
// no artifact, corrupt frame, snapshot version or fingerprint skew — only
// that series falls back to the pre-registry behavior of a synchronous cold
// retrain; a series that is not trainable either restores its data and waits
// for the operator.
//
// A series whose log is damaged is quarantined — renamed to
// "<name>.wal.corrupt", logged, and counted — and restore continues with the
// remaining series: one corrupt log must not take down the daemon. An
// artifact that decodes to garbage is likewise quarantined (*.corrupt inside
// the registry) before the cold fallback.
func (e *Engine) Restore(ctx context.Context) (int, error) {
	if e.store == nil {
		return 0, nil
	}
	started := time.Now()
	names, err := e.store.List()
	if err != nil {
		return 0, err
	}
	workers := e.restoreWorkers
	if workers < 1 {
		workers = 1
	}
	if workers > len(names) {
		workers = len(names)
	}
	var restored atomic.Int64
	work := make(chan string)
	var wg sync.WaitGroup
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer wg.Done()
			for name := range work {
				if e.restoreOne(ctx, name) {
					restored.Add(1)
				}
			}
		}()
	}
	var aborted error
	for _, name := range names {
		// Deadline checks sit between series, the natural cancellation
		// points: a series mid-restore finishes, the rest are skipped.
		if err := ctx.Err(); err != nil {
			aborted = err
			break
		}
		work <- name
	}
	close(work)
	wg.Wait()
	e.observeRestore(time.Since(started))
	return int(restored.Load()), aborted
}

// restoreOne rebuilds one series from its log, walks the warm→cold→data-only
// ladder, and registers the series in its shard. It reports whether the
// series was restored (false only when the log itself is unreadable).
func (e *Engine) restoreOne(ctx context.Context, name string) bool {
	loaded, err := e.store.Load(name)
	if err != nil {
		quarantined, qErr := e.store.Quarantine(name)
		if qErr != nil {
			e.log.Error("series unrestorable and quarantine failed",
				"series", name, "load_err", err, "quarantine_err", qErr)
			return false
		}
		e.counters.walQuarantined.Add(1)
		e.log.Warn("corrupt series log quarantined",
			"series", name, "err", err, "quarantined_to", quarantined)
		return false
	}
	meta := loaded.Meta
	m := &managed{
		name:         meta.Name,
		series:       timeseries.New(meta.Name, meta.Start.UTC(), time.Duration(meta.IntervalSeconds)*time.Second),
		pref:         stats.Preference{Recall: meta.Recall, Precision: meta.Precision},
		trees:        meta.Trees,
		predKind:     core.PredictorKind(meta.Predictor),
		evtQ:         meta.EVTQ,
		retrainEvery: meta.RetrainEvery,
		alarms:       alarmRing{max: e.maxAlarms},
	}
	if e.cacheBudget != nil {
		m.featCache = core.NewFeatureCache(e.cacheBudget)
	}
	e.attachActive(m)
	m.series.Values = loaded.Values
	m.labels = timeseries.Labels(loaded.Labels)
	m.typed = loaded.Types
	if meta.WebhookURL != "" {
		e.attachIncident(m, meta.WebhookURL)
	}
	e.attachWAL(m)

	warm := false
	if e.models != nil {
		if err := e.warmRestore(m); err == nil {
			warm = true
			e.counters.modelRestoreWarm.Add(1)
			e.log.Info("series restored warm", "series", meta.Name,
				"trained_at", m.trained, "points", m.series.Len())
		} else if !errors.Is(err, modelreg.ErrUnknownSeries) && !errors.Is(err, modelreg.ErrNoArtifact) {
			e.log.Warn("warm restore failed, falling back to cold retrain",
				"series", meta.Name, "err", err)
		}
	}
	if !warm {
		if _, err := e.train(ctx, m); err != nil {
			// Not trainable yet (no labels or too little data): restore the
			// data anyway and let the operator train later.
			e.log.Info("restored without classifier", "series", meta.Name, "reason", err)
		} else {
			e.counters.modelRestoreCold.Add(1)
		}
	}

	sh := e.shardFor(meta.Name)
	sh.mu.Lock()
	sh.series[meta.Name] = m
	sh.mu.Unlock()
	return true
}

// Close stops the retrain and publish workers (waiting out a round already
// in flight), publishes any trained model newer than its last artifact so a
// retrain finished moments before shutdown is not lost, and shuts down the
// per-series notification pipelines, giving pending webhook deliveries a
// short drain window. Call it after the serving transport has stopped so no
// new work can arrive.
func (e *Engine) Close() {
	e.closeOnce.Do(func() { close(e.stop) })
	e.wg.Wait()
	e.PublishModels()
	var pipelines []*alerting.Pipeline
	var writers []*walWriter
	for i := range e.shards {
		sh := &e.shards[i]
		sh.mu.RLock()
		for _, m := range sh.series {
			if m.pipeline != nil {
				pipelines = append(pipelines, m.pipeline)
			}
			if m.walw != nil {
				writers = append(writers, m.walw)
			}
		}
		sh.mu.RUnlock()
	}
	ctx, cancel := drainContext()
	defer cancel()
	for _, p := range pipelines {
		_ = p.Drain(ctx)
		p.Close()
	}
	// Drain the WAL writers last so everything buffered during a degraded
	// window reaches disk before the store is closed; a writer wedged on a
	// stuck store is abandoned after its timeout (logged, not waited out).
	for _, w := range writers {
		if !w.shutdown(5 * time.Second) {
			e.log.Error("wal writer did not drain before close", "series", w.series)
		}
	}
}
