package engine

import (
	"context"
	"sync"
	"time"
)

// Point is one (timestamp, value) observation. Timestamp is optional: when
// zero, the point lands at the series' next slot. Field tags double as the
// service's wire format.
type Point struct {
	Timestamp time.Time `json:"timestamp,omitempty"`
	Value     float64   `json:"value"`
}

// Verdict is one classified point. Field tags double as the service's wire
// format. Degraded marks a threshold-only verdict issued while the series
// was in degraded mode: the full model did not judge the point.
type Verdict struct {
	Index       int     `json:"index"`
	Probability float64 `json:"probability"`
	Anomalous   bool    `json:"anomalous"`
	Degraded    bool    `json:"degraded,omitempty"`
	// Type is the anomaly-type head's prediction for an anomalous verdict
	// ("spike", "drop", ...); empty when the point is normal, the head
	// abstains, or no head is trained.
	Type string `json:"type,omitempty"`
}

// Alarm is one anomalous verdict the engine raised. Field tags double as
// the service's wire format.
type Alarm struct {
	Time        time.Time `json:"time"`
	Value       float64   `json:"value"`
	Probability float64   `json:"probability"`
	CThld       float64   `json:"cthld"`
	// Type is the predicted anomaly class, when a type head is trained and
	// did not abstain.
	Type string `json:"type,omitempty"`
}

// AppendResult reports one Append call.
type AppendResult struct {
	// Appended is how many points were added (all of them, or none on error).
	Appended int
	// Total is the series length afterwards.
	Total int
	// Verdicts holds one verdict per appended point once the series is
	// trained. It aliases the buffer passed to Append (or a fresh slice when
	// none was given): it is valid until the caller reuses that buffer.
	Verdicts []Verdict
	// Persisted is false when a durable store is attached and the batch's
	// append either failed (counted in Counters().WALAppendErrors) or has
	// not yet reached disk — the series is degraded and the write is
	// buffered in the background WAL writer. The points are live in memory
	// either way; a crash before the writer drains would lose them.
	Persisted bool
	// Degraded reports the series was in degraded mode when the call
	// returned: the batch's verdicts are threshold-only (or, when the
	// degradation happened on this very batch's WAL write, the write is
	// still buffered).
	Degraded bool
}

// Append is the ingest hot path: it validates the whole batch's timestamps
// up front (an out-of-order timestamp anywhere rejects the entire batch with
// an ErrRejected-wrapped error and appends nothing), then under the series'
// single-writer mutex appends each point, steps the live monitor for a
// verdict, records alarms in the bounded ring, enqueues incident
// observations (delivery is asynchronous), and issues one WAL append for the
// batch. Metrics are updated once per batch, not per point.
//
// Resilience semantics: the batch is first admitted against the shard's
// in-flight budget — over budget it is shed whole with an
// ErrOverloaded-wrapped error before any mutation. The WAL append goes
// through the series' background writer; the healthy path waits for it up
// to the WAL deadline, and a miss flips the series into degraded mode
// (threshold-only verdicts, buffered writes, Persisted=false) until the
// recovery hysteresis clears. Degraded verdicts are advisory: they are
// returned to the caller but never enter the alarm ring or the incident
// pipeline, so a half-blind scorer cannot page an operator.
//
// vbuf, when non-nil, is reused for the verdicts (grown as needed) so a
// serving layer can pool allocations; pass nil for a fresh slice.
func (e *Engine) Append(ctx context.Context, name string, pts []Point, vbuf []Verdict) (AppendResult, error) {
	if len(pts) == 0 {
		return AppendResult{}, invalidf("no points")
	}
	if err := ctx.Err(); err != nil {
		return AppendResult{}, err
	}
	sh := e.shardFor(name)
	sh.mu.RLock()
	m := sh.series[name]
	sh.mu.RUnlock()
	if m == nil {
		return AppendResult{}, notFound(name)
	}
	tok, err := e.admit(sh, len(pts))
	if err != nil {
		return AppendResult{}, err
	}
	defer tok.release()
	return e.appendSeries(ctx, m, pts, vbuf)
}

// appendSeries is Append after lookup and admission: the per-series locked
// ingest body shared by Append and AppendBulk. The caller has already
// reserved len(pts) against the shard's in-flight budget.
func (e *Engine) appendSeries(ctx context.Context, m *managed, pts []Point, vbuf []Verdict) (AppendResult, error) {
	vbuf = vbuf[:0]

	m.mu.Lock()
	e.maybeRecover(m)
	// Whole-batch timestamp validation before any mutation: a rejected batch
	// must leave the series exactly as it was (the pre-engine service
	// appended the points preceding the bad one — see the regression test).
	base := m.series.Len()
	for i, p := range pts {
		if p.Timestamp.IsZero() {
			continue
		}
		want := m.series.TimeAt(base + i)
		if !p.Timestamp.UTC().Equal(want) {
			m.mu.Unlock()
			return AppendResult{}, rejectedf("out-of-order point: got %v, next slot is %v", p.Timestamp.UTC(), want)
		}
	}

	for _, p := range pts {
		m.series.Append(p.Value)
		m.labels = append(m.labels, false)
		if m.typed != nil {
			m.typed = append(m.typed, 0)
		}
	}
	alarmsRaised := 0
	switch {
	case m.monitor == nil:
	case m.degraded:
		// Threshold-only verdicts: the monitor is not stepped — values are
		// parked in pending and replayed through it at recovery, so the
		// model converges with a run that never degraded. Degraded state
		// cannot flip mid-batch (enterDegraded runs only after this loop),
		// so the batch is wholly degraded or wholly healthy.
		for i, p := range pts {
			prob := m.scorer.score(p.Value)
			vbuf = append(vbuf, Verdict{
				Index:       base + i,
				Probability: prob,
				Anomalous:   prob >= m.degradedCThld,
				Degraded:    true,
			})
			m.pending = append(m.pending, p.Value)
		}
	default:
		// Batched scoring: the just-appended tail of the series is scored
		// with one monitor call — one forest inference for the whole batch
		// instead of one per point — into a per-series reusable verdict
		// buffer. Bit-identical to stepping each point individually.
		m.vbatch = m.monitor.StepBatch(m.series.Values[base:m.series.Len()], m.vbatch[:0])
		for i, v := range m.vbatch {
			idx := base + i
			// Class.Wire returns a constant string ("" for none), so the
			// verdict stays allocation-free.
			vbuf = append(vbuf, Verdict{Index: idx, Probability: v.Probability, Anomalous: v.Anomalous, Type: v.Class.Wire()})
			if m.active != nil {
				// Allocation-free by contract: uncertainty sampling and the
				// drift histogram ride every trained verdict.
				m.active.Observe(idx, v.Probability, v.CThld)
			}
			if v.Anomalous {
				alarmsRaised++
				m.alarms.push(Alarm{
					Time:        m.series.TimeAt(idx),
					Value:       pts[i].Value,
					Probability: v.Probability,
					CThld:       v.CThld,
					Type:        v.Class.Wire(),
				})
			}
			if m.incident != nil {
				// Observe only folds state and enqueues on the async pipeline —
				// it cannot block on delivery. The one error surface is a
				// saturated queue, which the pipeline counts and we log.
				if err := m.incident.Observe(context.Background(), m.series.TimeAt(idx), v.Anomalous, v.Probability); err != nil {
					e.log.Warn("incident notification not queued", "series", m.name, "err", err)
				}
			}
		}
	}
	res := AppendResult{
		Appended:  len(pts),
		Total:     m.series.Len(),
		Verdicts:  vbuf,
		Persisted: true,
	}
	if m.walw != nil {
		e.walAppend(ctx, m, &res)
	}
	// Weekly-style automatic incremental retraining (§3.2), scheduled on the
	// background workers: ingest never blocks on a training round. The drift
	// detector arms the same trigger early — before the weekly tick — when
	// the vote-fraction distribution has shifted against the live model's
	// reference (see internal/active).
	if m.retrainEvery > 0 && m.monitor != nil && !m.degraded {
		// Both triggers hold off while degraded: the batch is buffered, not
		// yet durable, so a retrain here could publish a model claiming
		// points the WAL would not hold after a crash. The watermark is
		// untouched, so the first healthy batch after recovery re-arms.
		switch {
		case m.series.Len()-m.pointsAtTrain >= m.retrainEvery:
			e.scheduleRetrain(m)
		case m.active != nil && m.active.TakeDrift():
			if e.scheduleRetrain(m) {
				e.counters.driftRetrains.Add(1)
				e.log.Info("drift-triggered retrain scheduled",
					"series", m.name, "psi", m.active.DriftScore())
			}
		}
	}
	res.Degraded = m.degraded
	m.mu.Unlock()

	// Per-batch metric updates keep hot-path atomics off the per-point loop.
	e.counters.pointsIngested.Add(int64(res.Appended))
	if alarmsRaised > 0 {
		e.counters.alarmsRaised.Add(int64(alarmsRaised))
	}
	return res, nil
}

// walAppend routes the batch's durable write through the background
// writer (caller holds m.mu). The op aliases the committed range of the
// series' value slice instead of copying it: the series is append-only, so
// [Total-Appended, Total) is immutable once this call runs — later appends
// either write past Total or reallocate the backing array, never touching
// the committed range — and the channel send to the writer is the
// happens-before edge for its reads. Healthy path: wait up to the WAL
// deadline, flipping the series degraded on a miss. Degraded path: enqueue
// without waiting; a full buffer drops the batch from the log (never from
// memory) with loss accounting.
func (e *Engine) walAppend(ctx context.Context, m *managed, res *AppendResult) {
	values := m.series.Values[res.Total-res.Appended : res.Total : res.Total]
	if m.degraded {
		res.Persisted = false
		if !m.walw.enqueue(walOp{kind: opPoints, values: values}) {
			e.counters.walLostPoints.Add(int64(len(values)))
			e.log.Error("wal batch dropped: degraded buffer full",
				"series", m.name, "points", len(values))
			return
		}
		e.counters.walBufferedPoints.Add(int64(len(values)))
		return
	}
	done := donePool.Get().(chan error)
	if !m.walw.enqueue(walOp{kind: opPoints, values: values, done: done}) {
		donePool.Put(done)
		res.Persisted = false
		e.counters.walLostPoints.Add(int64(len(values)))
		e.enterDegraded(m, "wal writer saturated")
		return
	}
	err, completed := m.walw.await(ctx, done, time.Duration(e.walDeadline.Load()))
	switch {
	case completed && err == nil:
		// Durable before the call returns: the healthy contract.
		donePool.Put(done)
	case completed:
		// The store failed fast; the writer already counted and logged it.
		donePool.Put(done)
		res.Persisted = false
	default:
		res.Persisted = false
		if ctx.Err() == nil {
			// A real deadline miss, not the client hanging up: the series
			// flips degraded and the write keeps draining in the background.
			m.lastViolation.Store(time.Now().UnixNano())
			e.enterDegraded(m, "wal append blew its deadline")
		}
	}
}

// donePool recycles WAL completion channels. A channel goes back to the
// pool only after its result was received (or it was never enqueued): a
// channel abandoned by an await timeout still has a pending writer send and
// is left to the garbage collector instead.
var donePool = sync.Pool{New: func() any { return make(chan error, 1) }}

// alarmRing is a bounded buffer of the most recent alarms: O(1) push with no
// growth beyond max, unlike the slice-trim approach it replaces.
type alarmRing struct {
	max  int
	buf  []Alarm
	next int // index of the oldest element once saturated
}

// push records one alarm, evicting the oldest when full.
func (r *alarmRing) push(a Alarm) {
	if len(r.buf) < r.max {
		r.buf = append(r.buf, a)
		return
	}
	if r.max == 0 {
		return
	}
	r.buf[r.next] = a
	r.next++
	if r.next == r.max {
		r.next = 0
	}
}

// len returns how many alarms are retained.
func (r *alarmRing) len() int { return len(r.buf) }

// since returns the retained alarms strictly after t, oldest first, as a
// fresh slice (never nil).
func (r *alarmRing) since(t time.Time) []Alarm {
	out := make([]Alarm, 0, len(r.buf))
	emit := func(as []Alarm) {
		for _, a := range as {
			if a.Time.After(t) {
				out = append(out, a)
			}
		}
	}
	if len(r.buf) < r.max || r.next == 0 {
		emit(r.buf)
	} else {
		emit(r.buf[r.next:])
		emit(r.buf[:r.next])
	}
	return out
}

// last returns up to n of the most recent alarms, oldest first.
func (r *alarmRing) last(n int) []Alarm {
	all := r.since(time.Time{})
	if len(all) > n {
		all = all[len(all)-n:]
	}
	return all
}

// drainContext bounds the pipeline drain during Close.
func drainContext() (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), 2*time.Second)
}
