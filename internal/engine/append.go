package engine

import (
	"context"
	"time"
)

// Point is one (timestamp, value) observation. Timestamp is optional: when
// zero, the point lands at the series' next slot. Field tags double as the
// service's wire format.
type Point struct {
	Timestamp time.Time `json:"timestamp,omitempty"`
	Value     float64   `json:"value"`
}

// Verdict is one classified point. Field tags double as the service's wire
// format.
type Verdict struct {
	Index       int     `json:"index"`
	Probability float64 `json:"probability"`
	Anomalous   bool    `json:"anomalous"`
}

// Alarm is one anomalous verdict the engine raised. Field tags double as
// the service's wire format.
type Alarm struct {
	Time        time.Time `json:"time"`
	Value       float64   `json:"value"`
	Probability float64   `json:"probability"`
	CThld       float64   `json:"cthld"`
}

// AppendResult reports one Append call.
type AppendResult struct {
	// Appended is how many points were added (all of them, or none on error).
	Appended int
	// Total is the series length afterwards.
	Total int
	// Verdicts holds one verdict per appended point once the series is
	// trained. It aliases the buffer passed to Append (or a fresh slice when
	// none was given): it is valid until the caller reuses that buffer.
	Verdicts []Verdict
	// Persisted is false only when a durable store is attached and its
	// append failed: the points are live in memory but a restart would lose
	// them. The failure is also counted in Counters().WALAppendErrors.
	Persisted bool
}

// Append is the ingest hot path: it validates the whole batch's timestamps
// up front (an out-of-order timestamp anywhere rejects the entire batch with
// an ErrRejected-wrapped error and appends nothing), then under the series'
// single-writer mutex appends each point, steps the live monitor for a
// verdict, records alarms in the bounded ring, enqueues incident
// observations (delivery is asynchronous), and issues one WAL append for the
// batch. Metrics are updated once per batch, not per point.
//
// vbuf, when non-nil, is reused for the verdicts (grown as needed) so a
// serving layer can pool allocations; pass nil for a fresh slice.
func (e *Engine) Append(name string, pts []Point, vbuf []Verdict) (AppendResult, error) {
	if len(pts) == 0 {
		return AppendResult{}, invalidf("no points")
	}
	m, err := e.lookup(name)
	if err != nil {
		return AppendResult{}, err
	}
	vbuf = vbuf[:0]

	m.mu.Lock()
	// Whole-batch timestamp validation before any mutation: a rejected batch
	// must leave the series exactly as it was (the pre-engine service
	// appended the points preceding the bad one — see the regression test).
	base := m.series.Len()
	for i, p := range pts {
		if p.Timestamp.IsZero() {
			continue
		}
		want := m.series.TimeAt(base + i)
		if !p.Timestamp.UTC().Equal(want) {
			m.mu.Unlock()
			return AppendResult{}, rejectedf("out-of-order point: got %v, next slot is %v", p.Timestamp.UTC(), want)
		}
	}

	alarmsRaised := 0
	for i, p := range pts {
		idx := base + i
		m.series.Append(p.Value)
		m.labels = append(m.labels, false)
		if m.monitor == nil {
			continue
		}
		v := m.monitor.Step(p.Value)
		vbuf = append(vbuf, Verdict{Index: idx, Probability: v.Probability, Anomalous: v.Anomalous})
		if v.Anomalous {
			alarmsRaised++
			m.alarms.push(Alarm{
				Time:        m.series.TimeAt(idx),
				Value:       p.Value,
				Probability: v.Probability,
				CThld:       v.CThld,
			})
		}
		if m.incident != nil {
			// Observe only folds state and enqueues on the async pipeline —
			// it cannot block on delivery. The one error surface is a
			// saturated queue, which the pipeline counts and we log.
			if err := m.incident.Observe(context.Background(), m.series.TimeAt(idx), v.Anomalous, v.Probability); err != nil {
				e.log.Warn("incident notification not queued", "series", m.name, "err", err)
			}
		}
	}
	res := AppendResult{
		Appended:  len(pts),
		Total:     m.series.Len(),
		Verdicts:  vbuf,
		Persisted: true,
	}
	if e.store != nil {
		// Issued under the series mutex so WAL order matches append order
		// (single-writer discipline).
		values := m.series.Values[res.Total-res.Appended:]
		if err := e.store.AppendPoints(m.name, values); err != nil {
			res.Persisted = false
			e.counters.walAppendErrors.Add(1)
			e.log.Error("wal append failed", "series", m.name, "err", err)
		}
	}
	// Weekly-style automatic incremental retraining (§3.2), scheduled on the
	// background workers: ingest never blocks on a training round.
	if m.retrainEvery > 0 && m.monitor != nil &&
		m.series.Len()-m.pointsAtTrain >= m.retrainEvery {
		e.scheduleRetrain(m)
	}
	m.mu.Unlock()

	// Per-batch metric updates keep hot-path atomics off the per-point loop.
	e.counters.pointsIngested.Add(int64(res.Appended))
	if alarmsRaised > 0 {
		e.counters.alarmsRaised.Add(int64(alarmsRaised))
	}
	return res, nil
}

// alarmRing is a bounded buffer of the most recent alarms: O(1) push with no
// growth beyond max, unlike the slice-trim approach it replaces.
type alarmRing struct {
	max  int
	buf  []Alarm
	next int // index of the oldest element once saturated
}

// push records one alarm, evicting the oldest when full.
func (r *alarmRing) push(a Alarm) {
	if len(r.buf) < r.max {
		r.buf = append(r.buf, a)
		return
	}
	if r.max == 0 {
		return
	}
	r.buf[r.next] = a
	r.next++
	if r.next == r.max {
		r.next = 0
	}
}

// len returns how many alarms are retained.
func (r *alarmRing) len() int { return len(r.buf) }

// since returns the retained alarms strictly after t, oldest first, as a
// fresh slice (never nil).
func (r *alarmRing) since(t time.Time) []Alarm {
	out := make([]Alarm, 0, len(r.buf))
	emit := func(as []Alarm) {
		for _, a := range as {
			if a.Time.After(t) {
				out = append(out, a)
			}
		}
	}
	if len(r.buf) < r.max || r.next == 0 {
		emit(r.buf)
	} else {
		emit(r.buf[r.next:])
		emit(r.buf[:r.next])
	}
	return out
}

// last returns up to n of the most recent alarms, oldest first.
func (r *alarmRing) last(n int) []Alarm {
	all := r.since(time.Time{})
	if len(all) > n {
		all = all[len(all)-n:]
	}
	return all
}

// drainContext bounds the pipeline drain during Close.
func drainContext() (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), 2*time.Second)
}
