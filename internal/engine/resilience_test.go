package engine

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"sync"
	"testing"
	"time"

	"opprentice/internal/kpigen"
	"opprentice/internal/tsdb"
)

// TestAdmissionShedsWholeBatch pins the admission-control contract: a batch
// over the shard's in-flight budget is shed atomically with ErrOverloaded —
// no partial append, no verdicts, no series mutation — and the very next
// batch within budget goes through, because the budget counts in-flight
// points, not a rate.
func TestAdmissionShedsWholeBatch(t *testing.T) {
	e := New(Config{
		Log:            slog.New(slog.NewTextHandler(io.Discard, nil)),
		IngestInflight: 8,
	})
	t.Cleanup(e.Close)
	if err := e.Create("pv", SeriesConfig{IntervalSeconds: 60, Start: testStart}); err != nil {
		t.Fatal(err)
	}
	if res, err := e.Append(context.Background(), "pv", make([]Point, 4), nil); err != nil || res.Appended != 4 {
		t.Fatalf("in-budget batch: res=%+v err=%v", res, err)
	}

	res, err := e.Append(context.Background(), "pv", make([]Point, 9), nil)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("oversized batch: got %v, want ErrOverloaded", err)
	}
	if res.Appended != 0 || len(res.Verdicts) != 0 {
		t.Fatalf("shed batch leaked state: res=%+v", res)
	}
	st, err := e.Status(context.Background(), "pv")
	if err != nil {
		t.Fatal(err)
	}
	if st.Points != 4 {
		t.Fatalf("shed batch mutated the series: %d points, want 4", st.Points)
	}
	if c := e.Counters(); c.IngestSheds != 1 {
		t.Fatalf("IngestSheds = %d, want 1", c.IngestSheds)
	}

	// Admission is per-call in-flight budget, not a rate limit: a full-budget
	// batch right after the shed is admitted.
	if res, err := e.Append(context.Background(), "pv", make([]Point, 8), nil); err != nil || res.Appended != 8 {
		t.Fatalf("post-shed batch: res=%+v err=%v", res, err)
	}
	if st, _ := e.Status(context.Background(), "pv"); st.Points != 12 {
		t.Fatalf("series length %d, want 12", st.Points)
	}
}

// stallStore is an in-memory engine.Store whose writes block while the gate
// is armed — a deterministic stand-in for a stalling disk.
type stallStore struct {
	mu   sync.Mutex
	gate chan struct{}
}

func (s *stallStore) arm() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.gate == nil {
		s.gate = make(chan struct{})
	}
}

func (s *stallStore) release() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.gate != nil {
		close(s.gate)
		s.gate = nil
	}
}

func (s *stallStore) wait() {
	s.mu.Lock()
	g := s.gate
	s.mu.Unlock()
	if g != nil {
		<-g
	}
}

func (s *stallStore) CreateSeries(tsdb.Meta) error { return nil }
func (s *stallStore) AppendPoints(context.Context, string, []float64) error {
	s.wait()
	return nil
}
func (s *stallStore) AppendLabel(context.Context, string, int, int, bool) error {
	s.wait()
	return nil
}
func (s *stallStore) List() ([]string, error)           { return nil, nil }
func (s *stallStore) Load(string) (*tsdb.Loaded, error) { return nil, fmt.Errorf("not stored") }
func (s *stallStore) Quarantine(string) (string, error) { return "", fmt.Errorf("not stored") }

// TestDegradedRecoveryConverges is the degraded-mode convergence test: engine
// A (behind a stalling store) and twin B (memory only) receive identical
// traffic and training. A's WAL deadline miss flips it to threshold-only
// serving; after the stall clears and the hysteresis window passes, A must
// recover and serve verdicts bit-identical to B, which never degraded — the
// recovery replay leaves the monitor in exactly the state of an uninterrupted
// run.
func TestDegradedRecoveryConverges(t *testing.T) {
	p := kpigen.PV(kpigen.Small)
	p.Interval = time.Hour
	p.Weeks = 10
	d := kpigen.Generate(p, 91)
	ppw, err := d.Series.PointsPerWeek()
	if err != nil {
		t.Fatal(err)
	}

	const (
		walDeadline = 50 * time.Millisecond
		recovery    = 100 * time.Millisecond
	)
	store := &stallStore{}
	a := New(Config{
		Log:              slog.New(slog.NewTextHandler(io.Discard, nil)),
		Store:            store,
		WALDeadline:      walDeadline,
		DegradedRecovery: recovery,
	})
	t.Cleanup(a.Close)
	b := newTestEngine(t)

	// Identical boot: history, labels, one training round each.
	boot := 9 * ppw
	for _, e := range []*Engine{a, b} {
		if err := e.Create("pv", SeriesConfig{IntervalSeconds: 3600, Start: testStart, Trees: 10}); err != nil {
			t.Fatal(err)
		}
		pts := make([]Point, boot)
		for i := range pts {
			pts[i] = Point{Value: d.Series.Values[i]}
		}
		if _, err := e.Append(context.Background(), "pv", pts, nil); err != nil {
			t.Fatal(err)
		}
		var windows []Window
		for _, w := range d.Labels.Windows() {
			if w.End <= boot {
				windows = append(windows, Window{Start: w.Start, End: w.End, Anomalous: true})
			}
		}
		if _, err := e.Label(context.Background(), "pv", windows); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Train(context.Background(), "pv"); err != nil {
			t.Fatal(err)
		}
	}

	rest := d.Series.Values[boot:]
	const batch = 40 // 4 batches fit the one spare week of generated data
	feed := func(e *Engine, off int) AppendResult {
		t.Helper()
		pts := make([]Point, batch)
		for i := range pts {
			pts[i] = Point{Value: rest[off+i]}
		}
		res, err := e.Append(context.Background(), "pv", pts, nil)
		if err != nil {
			t.Fatalf("append at offset %d: %v", off, err)
		}
		return res
	}
	sameVerdicts := func(what string, got, want []Verdict) {
		t.Helper()
		if len(got) != len(want) {
			t.Fatalf("%s: %d verdicts vs twin's %d", what, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: verdict %d diverged from the never-degraded twin: %+v vs %+v", what, i, got[i], want[i])
			}
		}
	}

	// Batch 1 rides the stall in: verdicts are computed by the full model
	// before the WAL wait, so they still match the twin, but the deadline
	// miss flips A degraded.
	store.arm()
	resA := feed(a, 0)
	resB := feed(b, 0)
	if resA.Persisted || !resA.Degraded {
		t.Fatalf("stalled batch: Persisted=%v Degraded=%v, want false/true", resA.Persisted, resA.Degraded)
	}
	sameVerdicts("degrading batch", resA.Verdicts, resB.Verdicts)

	// Batch 2 is served threshold-only while degraded; the twin keeps full
	// fidelity, so the two streams intentionally diverge here.
	resA = feed(a, batch)
	resB = feed(b, batch)
	if !resA.Degraded {
		t.Fatal("second batch under a stalled store was not served degraded")
	}
	for i, v := range resA.Verdicts {
		if !v.Degraded {
			t.Fatalf("degraded-mode verdict %d not flagged Degraded: %+v", i, v)
		}
		if v.Probability < 0 || v.Probability > 1 {
			t.Fatalf("degraded-mode verdict %d probability %v outside [0,1]", i, v.Probability)
		}
	}
	if r := a.Ready(); r.Ready || len(r.Degraded) != 1 || r.Degraded[0] != "pv" {
		t.Fatalf("degraded series missing from readiness: %+v", r)
	}

	// Clear the stall, drain the writer, and let the hysteresis window pass.
	store.release()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	if err := a.SyncWAL(ctx, "pv"); err != nil {
		t.Fatalf("SyncWAL: %v", err)
	}
	cancel()
	time.Sleep(recovery + 100*time.Millisecond)

	// Batch 3 triggers recovery: the buffered values replay through the real
	// monitor first, so from here on A is bit-identical to the twin again.
	resA = feed(a, 2*batch)
	resB = feed(b, 2*batch)
	if resA.Degraded || !resA.Persisted {
		t.Fatalf("post-recovery batch: Persisted=%v Degraded=%v, want true/false", resA.Persisted, resA.Degraded)
	}
	sameVerdicts("post-recovery batch", resA.Verdicts, resB.Verdicts)
	resA = feed(a, 3*batch)
	resB = feed(b, 3*batch)
	sameVerdicts("steady-state batch", resA.Verdicts, resB.Verdicts)

	c := a.Counters()
	if c.DegradedEntered != 1 || c.DegradedRecovered != 1 {
		t.Fatalf("degraded transitions: entered=%d recovered=%d, want 1/1", c.DegradedEntered, c.DegradedRecovered)
	}
	if c.WALLostPoints != 0 {
		t.Fatalf("lost %d WAL points across a bounded stall", c.WALLostPoints)
	}
	if r := a.Ready(); !r.Ready {
		t.Fatalf("recovered engine still not ready: %+v", r)
	}
}
