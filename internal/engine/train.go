package engine

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"opprentice/internal/core"
	"opprentice/internal/detectors"
	"opprentice/internal/ml/forest"
	"opprentice/internal/timeseries"
)

// TrainResult reports one completed training round.
type TrainResult struct {
	TrainedAt time.Time
	CThld     float64
	Points    int
}

// Train (re)trains the named series' classifier and blocks until the new
// monitor is live. The caller waits, but ingest does not: training runs
// against a snapshot and only briefly re-acquires the series mutex to replay
// mid-train points and swap the monitor in (see train). Untrainable history
// returns an ErrRejected-wrapped error; a round that blows the training
// deadline (or ctx's, whichever is sooner) is abandoned by the watchdog
// with an ErrStalled-wrapped error and the live monitor untouched. A
// successful manual Train also lifts a training quarantine.
func (e *Engine) Train(ctx context.Context, name string) (TrainResult, error) {
	m, err := e.lookup(name)
	if err != nil {
		return TrainResult{}, err
	}
	return e.train(ctx, m)
}

// train runs one snapshot → fit → replay+swap round. The retrain-swap
// protocol:
//
//  1. Under m.mu: clone the series and labels (cheap memcpy) and note the
//     live monitor. Release m.mu — ingest continues against the live
//     monitor throughout the expensive part.
//  2. Off-lock: fit a replacement monitor, supervised by the training
//     watchdog (see fitSupervised). First-ever training builds it with
//     core.NewMonitor (cross-validated initial cThld); afterwards
//     Monitor.RetrainSnapshot carries the EWMA cThld state forward without
//     touching the live monitor.
//  3. Under m.mu again: replay the points appended since the snapshot
//     through the new monitor — their client-facing verdicts were already
//     issued by the old monitor, so replay verdicts are discarded; the
//     replay only advances detector and duration-filter state to the stream
//     head — then swap the monitor pointer. Every point thus receives
//     exactly one verdict across the swap. The replay covers any values
//     parked in the degraded-mode pending buffer too (they are ordinary
//     series values by now), so pending is cleared at the swap.
//
// m.trainMu serializes rounds so two trains cannot interleave their swaps.
// On any error the live monitor is left untouched.
func (e *Engine) train(ctx context.Context, m *managed) (res TrainResult, err error) {
	m.trainMu.Lock()
	defer m.trainMu.Unlock()

	started := time.Now()
	defer func() { e.counters.observeTraining(time.Since(started)) }()
	if e.hooks.TrainDone != nil {
		defer func() { e.hooks.TrainDone(m.name, res, err) }()
	}
	if err = ctx.Err(); err != nil {
		return TrainResult{}, err
	}

	// 1. Snapshot.
	m.mu.Lock()
	snap := m.series.Clone()
	labels := m.labels.Clone()
	var typed []uint8
	if m.typed != nil {
		typed = append([]uint8(nil), m.typed...)
	}
	cur := m.monitor
	m.mu.Unlock()

	// 2. Fit off-lock, supervised.
	dets, err := e.registry(snap.Interval)
	if err != nil {
		return TrainResult{}, rejected(err)
	}
	next, err := e.fitSupervised(ctx, m, snap, labels, typed, cur, dets)
	if err != nil {
		return TrainResult{}, err
	}

	// 3. Replay and swap.
	m.mu.Lock()
	for _, v := range m.series.Values[snap.Len():] {
		next.Step(v)
	}
	m.monitor = next
	m.trained = time.Now().UTC()
	m.pointsAtTrain = m.series.Len()
	m.pending = m.pending[:0]
	if m.active != nil {
		// New model generation: pending queries were scored by the outgoing
		// monitor and the drift detector needs a fresh reference.
		m.active.Reset()
	}
	res = TrainResult{TrainedAt: m.trained, CThld: next.CThld(), Points: m.series.Len()}
	m.mu.Unlock()

	// A successful round resets the failure streak and lifts quarantine.
	m.trainFails.Store(0)
	if m.quarantined.CompareAndSwap(true, false) {
		e.log.Info("series left training quarantine", "series", m.name)
	}

	e.log.Info("series trained", "name", m.name, "points", res.Points,
		"cthld", res.CThld, "replayed", res.Points-snap.Len(), "took", time.Since(started))
	// Checkpoint the new model off the training path (no-op without a model
	// registry); Close runs a final synchronous sweep for anything unflushed.
	e.schedulePublish(m)
	return res, nil
}

// fitSupervised runs the expensive fit under the training watchdog: the
// fit executes on its own goroutine (panics recovered and counted, never
// crashing the engine) while this one waits out the effective deadline —
// the smaller of the engine's training deadline and ctx's. On a miss the
// round is abandoned with an ErrStalled-wrapped error and the zombie fit
// is detached: the series gets a fresh feature cache immediately (the next
// round extracts cold), and the old cache is invalidated once the zombie
// finishes so its budget is returned and its result can never be swapped
// in. Caller holds m.trainMu, so m.featCache is stable here.
func (e *Engine) fitSupervised(ctx context.Context, m *managed, snap *timeseries.Series,
	labels timeseries.Labels, typed []uint8, cur *core.Monitor, dets []detectors.Detector) (*core.Monitor, error) {

	deadline := time.Duration(e.trainDeadline.Load())
	if dl, ok := ctx.Deadline(); ok {
		if rem := time.Until(dl); deadline <= 0 || rem < deadline {
			deadline = rem
		}
	}
	cache := m.featCache
	fit := func() (*core.Monitor, error) {
		if cur == nil {
			cfg := core.MonitorConfig{
				Preference:      m.pref,
				Forest:          forest.Config{Trees: m.trees, Seed: 1},
				Predictor:       m.predKind,
				EVTQ:            m.evtQ,
				TypeLabels:      typed,
				OnDetectorPanic: e.panicHook(m.name),
				Cache:           cache,
			}
			return core.NewMonitor(snap, labels, dets, cfg)
		}
		return cur.RetrainSnapshotTyped(snap, labels, typed, dets, cache)
	}
	if deadline <= 0 && ctx.Done() == nil {
		// Watchdog disabled and nothing to cancel on: fit inline.
		next, err := fit()
		if err != nil {
			return nil, rejected(err)
		}
		return next, nil
	}

	type fitResult struct {
		mon *core.Monitor
		err error
	}
	done := make(chan fitResult, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				e.counters.workerPanics.Add(1)
				done <- fitResult{err: fmt.Errorf("training panicked: %v", r)}
			}
		}()
		mon, err := fit()
		done <- fitResult{mon, err}
	}()
	var timer <-chan time.Time
	if deadline > 0 {
		t := time.NewTimer(deadline)
		defer t.Stop()
		timer = t.C
	}
	select {
	case r := <-done:
		if r.err != nil {
			return nil, rejected(r.err)
		}
		return r.mon, nil
	case <-timer:
	case <-ctx.Done():
	}
	e.counters.trainStalls.Add(1)
	if cache != nil {
		m.featCache = core.NewFeatureCache(e.cacheBudget)
		go func() {
			<-done
			cache.Invalidate()
		}()
	} else {
		go func() { <-done }()
	}
	return nil, stalledf("training round for %q exceeded its %v deadline", m.name, deadline)
}

// VerifyFeatureCache cross-checks the named series' incremental
// feature-extraction cache against a from-scratch cold extraction (see
// core.FeatureCache.VerifyAgainstCold): the caches must be bit-identical or
// the incremental retrain path is producing different training data than a
// cold one would. It returns nil when caching is disabled or the cache is
// empty. It holds the series' trainMu for the (expensive) cold extraction, so
// it competes with training rounds but never with ingest.
func (e *Engine) VerifyFeatureCache(name string) error {
	m, err := e.lookup(name)
	if err != nil {
		return err
	}
	if m.featCache == nil {
		return nil
	}
	m.trainMu.Lock()
	defer m.trainMu.Unlock()
	m.mu.Lock()
	snap := m.series.Clone()
	m.mu.Unlock()
	dets, err := e.registry(snap.Interval)
	if err != nil {
		return err
	}
	return m.featCache.VerifyAgainstCold(snap, dets, core.ExtractConfig{})
}

// panicHook builds the per-series detector-panic callback: count and log,
// never crash (see core's sandboxing).
func (e *Engine) panicHook(name string) func(string, any) {
	return func(detName string, recovered any) {
		e.counters.detectorPanics.Add(1)
		e.log.Warn("detector panic sandboxed", "series", name,
			"detector", detName, "panic", recovered)
	}
}

// scheduleRetrain arms one asynchronous retrain for m and reports whether a
// round was actually queued. Callers hold m.mu; only the CAS and a
// non-blocking channel send happen here. If the queue is saturated the
// trigger is dropped and re-armed by the next append. A quarantined series
// is skipped: its old model keeps serving until a manual Train succeeds.
func (e *Engine) scheduleRetrain(m *managed) bool {
	if m.quarantined.Load() {
		return false
	}
	if !m.training.CompareAndSwap(false, true) {
		return false // already queued or running
	}
	select {
	case e.trainQ <- m:
		return true
	default:
		m.training.Store(false)
		e.log.Warn("retrain queue full, trigger dropped", "series", m.name)
		return false
	}
}

// retrainWorker consumes scheduled retrains until Close.
func (e *Engine) retrainWorker() {
	defer e.wg.Done()
	for {
		select {
		case <-e.stop:
			return
		case m := <-e.trainQ:
			e.autoRetrain(m)
			m.training.Store(false)
		}
	}
}

// autoRetrain runs one automatic round under the watchdog's retry policy:
// a stalled round is retried with exponential backoff and jitter (bounded
// by the retry budget and engine shutdown); any failure advances the
// series' consecutive-failure streak, and crossing the limit quarantines
// its training — the last good model keeps serving, automatic retrains
// stop, and a successful manual Train lifts it.
func (e *Engine) autoRetrain(m *managed) {
	backoff := 100 * time.Millisecond
	const maxBackoff = 10 * time.Second
	for attempt := 0; ; attempt++ {
		_, err := e.train(context.Background(), m)
		if err == nil {
			return
		}
		fails := int(m.trainFails.Add(1))
		e.log.Warn("auto-retrain failed", "series", m.name,
			"attempt", attempt, "consecutive_failures", fails, "err", err)
		if e.trainFailLimit > 0 && fails >= e.trainFailLimit {
			if m.quarantined.CompareAndSwap(false, true) {
				e.counters.seriesQuarantined.Add(1)
				e.log.Error("series training quarantined after repeated failures",
					"series", m.name, "failures", fails)
			}
			return
		}
		// Only stalls are worth retrying: a rejected round (untrainable
		// history, bad registry) fails identically on every attempt.
		if !errors.Is(err, ErrStalled) || attempt >= e.trainRetries {
			return
		}
		e.counters.trainRetriesRun.Add(1)
		delay := backoff + time.Duration(rand.Int63n(int64(backoff/2)+1))
		backoff *= 2
		if backoff > maxBackoff {
			backoff = maxBackoff
		}
		select {
		case <-e.stop:
			return
		case <-time.After(delay):
		}
	}
}
