package engine

import (
	"time"

	"opprentice/internal/core"
	"opprentice/internal/ml/forest"
)

// TrainResult reports one completed training round.
type TrainResult struct {
	TrainedAt time.Time
	CThld     float64
	Points    int
}

// Train (re)trains the named series' classifier and blocks until the new
// monitor is live. The caller waits, but ingest does not: training runs
// against a snapshot and only briefly re-acquires the series mutex to replay
// mid-train points and swap the monitor in (see train). Untrainable history
// returns an ErrRejected-wrapped error.
func (e *Engine) Train(name string) (TrainResult, error) {
	m, err := e.lookup(name)
	if err != nil {
		return TrainResult{}, err
	}
	return e.train(m)
}

// train runs one snapshot → fit → replay+swap round. The retrain-swap
// protocol:
//
//  1. Under m.mu: clone the series and labels (cheap memcpy) and note the
//     live monitor. Release m.mu — ingest continues against the live
//     monitor throughout the expensive part.
//  2. Off-lock: fit a replacement monitor. First-ever training builds it
//     with core.NewMonitor (cross-validated initial cThld); afterwards
//     Monitor.RetrainSnapshot carries the EWMA cThld state forward without
//     touching the live monitor.
//  3. Under m.mu again: replay the points appended since the snapshot
//     through the new monitor — their client-facing verdicts were already
//     issued by the old monitor, so replay verdicts are discarded; the
//     replay only advances detector and duration-filter state to the stream
//     head — then swap the monitor pointer. Every point thus receives
//     exactly one verdict across the swap.
//
// m.trainMu serializes rounds so two trains cannot interleave their swaps.
// On any error the live monitor is left untouched.
func (e *Engine) train(m *managed) (res TrainResult, err error) {
	m.trainMu.Lock()
	defer m.trainMu.Unlock()

	started := time.Now()
	defer func() { e.counters.observeTraining(time.Since(started)) }()
	if e.hooks.TrainDone != nil {
		defer func() { e.hooks.TrainDone(m.name, res, err) }()
	}

	// 1. Snapshot.
	m.mu.Lock()
	snap := m.series.Clone()
	labels := m.labels.Clone()
	cur := m.monitor
	m.mu.Unlock()

	// 2. Fit off-lock.
	dets, err := e.registry(snap.Interval)
	if err != nil {
		return TrainResult{}, rejected(err)
	}
	// m.featCache (nil when caching is disabled) makes this extraction
	// incremental: only the points appended since the previous round are run
	// through the detectors, and the cache's checkpoints advance to the
	// snapshot head. It is only ever touched here, under m.trainMu.
	var next *core.Monitor
	if cur == nil {
		cfg := core.MonitorConfig{
			Preference:      m.pref,
			Forest:          forest.Config{Trees: m.trees, Seed: 1},
			OnDetectorPanic: e.panicHook(m.name),
			Cache:           m.featCache,
		}
		next, err = core.NewMonitor(snap, labels, dets, cfg)
	} else {
		next, err = cur.RetrainSnapshotCached(snap, labels, dets, m.featCache)
	}
	if err != nil {
		return TrainResult{}, rejected(err)
	}

	// 3. Replay and swap.
	m.mu.Lock()
	for _, v := range m.series.Values[snap.Len():] {
		next.Step(v)
	}
	m.monitor = next
	m.trained = time.Now().UTC()
	m.pointsAtTrain = m.series.Len()
	res = TrainResult{TrainedAt: m.trained, CThld: next.CThld(), Points: m.series.Len()}
	m.mu.Unlock()

	e.log.Info("series trained", "name", m.name, "points", res.Points,
		"cthld", res.CThld, "replayed", res.Points-snap.Len(), "took", time.Since(started))
	// Checkpoint the new model off the training path (no-op without a model
	// registry); Close runs a final synchronous sweep for anything unflushed.
	e.schedulePublish(m)
	return res, nil
}

// VerifyFeatureCache cross-checks the named series' incremental
// feature-extraction cache against a from-scratch cold extraction (see
// core.FeatureCache.VerifyAgainstCold): the caches must be bit-identical or
// the incremental retrain path is producing different training data than a
// cold one would. It returns nil when caching is disabled or the cache is
// empty. It holds the series' trainMu for the (expensive) cold extraction, so
// it competes with training rounds but never with ingest.
func (e *Engine) VerifyFeatureCache(name string) error {
	m, err := e.lookup(name)
	if err != nil {
		return err
	}
	if m.featCache == nil {
		return nil
	}
	m.trainMu.Lock()
	defer m.trainMu.Unlock()
	m.mu.Lock()
	snap := m.series.Clone()
	m.mu.Unlock()
	dets, err := e.registry(snap.Interval)
	if err != nil {
		return err
	}
	return m.featCache.VerifyAgainstCold(snap, dets, core.ExtractConfig{})
}

// panicHook builds the per-series detector-panic callback: count and log,
// never crash (see core's sandboxing).
func (e *Engine) panicHook(name string) func(string, any) {
	return func(detName string, recovered any) {
		e.counters.detectorPanics.Add(1)
		e.log.Warn("detector panic sandboxed", "series", name,
			"detector", detName, "panic", recovered)
	}
}

// scheduleRetrain arms one asynchronous retrain for m. Callers hold m.mu;
// only the CAS and a non-blocking channel send happen here. If the queue is
// saturated the trigger is dropped and re-armed by the next append.
func (e *Engine) scheduleRetrain(m *managed) {
	if !m.training.CompareAndSwap(false, true) {
		return // already queued or running
	}
	select {
	case e.trainQ <- m:
	default:
		m.training.Store(false)
		e.log.Warn("retrain queue full, trigger dropped", "series", m.name)
	}
}

// retrainWorker consumes scheduled retrains until Close.
func (e *Engine) retrainWorker() {
	defer e.wg.Done()
	for {
		select {
		case <-e.stop:
			return
		case m := <-e.trainQ:
			if _, err := e.train(m); err != nil {
				e.log.Warn("auto-retrain failed", "series", m.name, "err", err)
			}
			m.training.Store(false)
		}
	}
}
