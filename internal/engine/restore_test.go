package engine

import (
	"context"
	"errors"
	"io"
	"log/slog"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"opprentice/internal/detectors"
	"opprentice/internal/faultinject"
	"opprentice/internal/kpigen"
	modelreg "opprentice/internal/registry"
	"opprentice/internal/tsdb"
)

// openModels opens a model registry rooted in a fresh temp dir (or the given
// dir when non-empty).
func openModels(t testing.TB, dir string) *modelreg.Registry {
	t.Helper()
	if dir == "" {
		dir = t.TempDir()
	}
	r, err := modelreg.Open(modelreg.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// restoreDataSeed pins the kpigen RNG base for the trained stores these
// tests and BenchmarkRestoreWarmVsCold restart against (series i uses
// restoreDataSeed+i). Seed policy (DESIGN.md "Seeds and reproducibility"):
// fixtures feeding BENCH_baseline.json use fixed, named seeds so the
// warm/cold restart ratio is comparable across runs; changing the seed is a
// baseline change.
const restoreDataSeed int64 = 91

// seedTrainedStore builds a durable deployment: a tsdb store holding the
// named series (9 weeks of hourly synthetic PV data, labels, one training
// each) and a model registry holding each series' published artifact. The
// engine used for seeding is closed; the returned dirs are ready for a
// "daemon restart".
func seedTrainedStore(t testing.TB, names ...string) (dataDir, modelDir string) {
	t.Helper()
	dataDir, modelDir = t.TempDir(), t.TempDir()
	store, err := tsdb.Open(dataDir)
	if err != nil {
		t.Fatal(err)
	}
	e := New(Config{
		Log:    slog.New(slog.NewTextHandler(io.Discard, nil)),
		Store:  store,
		Models: openModels(t, modelDir),
	})
	for i, name := range names {
		p := kpigen.PV(kpigen.Small)
		p.Interval = time.Hour
		p.Weeks = 9
		d := kpigen.Generate(p, restoreDataSeed+int64(i))
		ppw, err := d.Series.PointsPerWeek()
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Create(name, SeriesConfig{IntervalSeconds: 3600, Start: testStart, Trees: 10}); err != nil {
			t.Fatal(err)
		}
		boot := 8 * ppw
		pts := make([]Point, boot)
		for j := range pts {
			pts[j] = Point{Value: d.Series.Values[j]}
		}
		if _, err := e.Append(context.Background(), name, pts, nil); err != nil {
			t.Fatal(err)
		}
		var windows []Window
		for _, w := range d.Labels.Windows() {
			if w.End <= boot {
				windows = append(windows, Window{Start: w.Start, End: w.End, Anomalous: true})
			}
		}
		if _, err := e.Label(context.Background(), name, windows); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Train(context.Background(), name); err != nil {
			t.Fatal(err)
		}
	}
	e.Close() // flushes any unpublished trained state via PublishModels
	store.Close()
	return dataDir, modelDir
}

// restartEngine opens a fresh engine over an existing deployment, as the
// daemon would after a restart. modelDir may be empty (no registry).
func restartEngine(t testing.TB, dataDir, modelDir string, cfg Config) (*Engine, *tsdb.Store) {
	t.Helper()
	store, err := tsdb.Open(dataDir)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Log = slog.New(slog.NewTextHandler(io.Discard, nil))
	cfg.Store = store
	if modelDir != "" {
		cfg.Models = openModels(t, modelDir)
	}
	e := New(cfg)
	t.Cleanup(func() { e.Close(); store.Close() })
	return e, store
}

// TestRestoreWarmNoRetrain is the headline acceptance test: restarting
// against a trained multi-series store resumes detection from published
// artifacts with zero training rounds, and the restored monitors serve
// verdicts immediately.
func TestRestoreWarmNoRetrain(t *testing.T) {
	dataDir, modelDir := seedTrainedStore(t, "pv-a", "pv-b", "pv-c")

	e, _ := restartEngine(t, dataDir, modelDir, Config{})
	restored, err := e.Restore(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if restored != 3 {
		t.Fatalf("restored %d series, want 3", restored)
	}
	c := e.Counters()
	if c.TrainingsRun != 0 {
		t.Errorf("warm restore ran %d trainings, want 0", c.TrainingsRun)
	}
	if c.ModelRestoreWarm != 3 || c.ModelRestoreCold != 0 {
		t.Errorf("restore modes warm=%d cold=%d, want 3/0", c.ModelRestoreWarm, c.ModelRestoreCold)
	}
	if c.RestoreSeconds < 0 {
		t.Errorf("RestoreSeconds = %v, want >= 0", c.RestoreSeconds)
	}
	for _, name := range []string{"pv-a", "pv-b", "pv-c"} {
		st, err := e.Status(context.Background(), name)
		if err != nil {
			t.Fatal(err)
		}
		if !st.Trained {
			t.Fatalf("%s restored untrained", name)
		}
		res, err := e.Append(context.Background(), name, []Point{{Value: 1}, {Value: 2}}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Verdicts) != 2 {
			t.Fatalf("%s: %d verdicts after warm restore, want 2", name, len(res.Verdicts))
		}
	}
}

// TestRestoreWarmMatchesColdVerdicts cross-checks the two restore modes: a
// warm-restored monitor must agree with the monitor that was live before the
// restart. The engine publishes the exact forest and threshold it serves, so
// the published CThld must match the restored Status.
func TestRestoreWarmMatchesColdVerdicts(t *testing.T) {
	dataDir, modelDir := seedTrainedStore(t, "pv")
	models := openModels(t, modelDir)
	man, err := models.Manifest("pv")
	if err != nil {
		t.Fatal(err)
	}
	if len(man.Generations) != 1 {
		t.Fatalf("seed published %d generations, want 1", len(man.Generations))
	}
	want := man.Generations[0].CThld

	e, _ := restartEngine(t, dataDir, modelDir, Config{})
	if _, err := e.Restore(context.Background()); err != nil {
		t.Fatal(err)
	}
	st, err := e.Status(context.Background(), "pv")
	if err != nil {
		t.Fatal(err)
	}
	if st.CThld != want {
		t.Errorf("restored cThld = %v, published %v", st.CThld, want)
	}
}

// TestRestoreCorruptArtifactFallsBackCold: a flipped bit in one series'
// artifact must cost only that series its warm start — it cold-retrains,
// its neighbors restore warm, and the damaged artifact is quarantined with a
// checksum-failure count.
func TestRestoreCorruptArtifactFallsBackCold(t *testing.T) {
	dataDir, modelDir := seedTrainedStore(t, "pv-a", "pv-b")
	if err := faultinject.FlipByte(filepath.Join(modelDir, "pv-a", "000000000001.model"), -2); err != nil {
		t.Fatal(err)
	}

	e, _ := restartEngine(t, dataDir, modelDir, Config{})
	restored, err := e.Restore(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if restored != 2 {
		t.Fatalf("restored %d series, want 2", restored)
	}
	c := e.Counters()
	if c.ModelRestoreWarm != 1 || c.ModelRestoreCold != 1 {
		t.Errorf("restore modes warm=%d cold=%d, want 1/1", c.ModelRestoreWarm, c.ModelRestoreCold)
	}
	if c.TrainingsRun != 1 {
		t.Errorf("trainings = %d, want exactly 1 (the corrupt series)", c.TrainingsRun)
	}
	if c.ModelChecksumFailures == 0 {
		t.Error("corrupt artifact not counted as a checksum failure")
	}
	// Both series serve verdicts regardless of which rung restored them.
	for _, name := range []string{"pv-a", "pv-b"} {
		res, err := e.Append(context.Background(), name, []Point{{Value: 1}}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Verdicts) != 1 {
			t.Fatalf("%s: no verdict after restore", name)
		}
	}
}

// TestRestoreFingerprintMismatchFallsBackCold: an artifact trained under a
// different detector registry must not load (it would silently misclassify:
// the forest's feature indices no longer line up) — the series cold-retrains
// under the new registry, and the artifact is NOT quarantined, because the
// operator may yet revert the deployment change.
func TestRestoreFingerprintMismatchFallsBackCold(t *testing.T) {
	dataDir, modelDir := seedTrainedStore(t, "pv")

	subset := func(iv time.Duration) ([]detectors.Detector, error) {
		ds, err := detectors.Registry(iv)
		if err != nil {
			return nil, err
		}
		return ds[:len(ds)-1], nil
	}
	e, _ := restartEngine(t, dataDir, modelDir, Config{Registry: subset})
	if _, err := e.Restore(context.Background()); err != nil {
		t.Fatal(err)
	}
	c := e.Counters()
	if c.ModelRestoreWarm != 0 || c.ModelRestoreCold != 1 {
		t.Errorf("restore modes warm=%d cold=%d, want 0/1", c.ModelRestoreWarm, c.ModelRestoreCold)
	}
	// The mismatched artifact is still loadable for a reverted deployment.
	models := openModels(t, modelDir)
	if _, err := models.Load("pv"); err != nil {
		t.Errorf("fingerprint-mismatched artifact was damaged or quarantined: %v", err)
	}
}

// TestRestoreWarmConcurrentIngest runs the parallel warm-restore pass while
// clients are already appending (a rolling restart under traffic): every
// pre-restart point must survive, and every point appended concurrently with
// the restore must receive exactly one verdict. Run under -race (make
// engine-race) to check the restore workers' locking against ingest.
func TestRestoreWarmConcurrentIngest(t *testing.T) {
	names := []string{"pv-a", "pv-b", "pv-c", "pv-d"}
	dataDir, modelDir := seedTrainedStore(t, names...)

	// Note the pre-restart state so survival is checkable after.
	preStore, err := tsdb.Open(dataDir)
	if err != nil {
		t.Fatal(err)
	}
	prePoints := make(map[string]int, len(names))
	for _, name := range names {
		loaded, err := preStore.Load(name)
		if err != nil {
			t.Fatal(err)
		}
		prePoints[name] = len(loaded.Values)
	}
	preStore.Close()

	e, _ := restartEngine(t, dataDir, modelDir, Config{RestoreWorkers: 4})

	const perSeries = 40
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		verdicts = make(map[string]int, len(names))
	)
	start := make(chan struct{})
	for _, name := range names {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			<-start
			sent := 0
			for sent < perSeries {
				res, err := e.Append(context.Background(), name, []Point{{Value: float64(sent)}}, nil)
				if errors.Is(err, ErrNotFound) {
					continue // series not yet through the restore pass
				}
				if err != nil {
					t.Errorf("%s: append during restore: %v", name, err)
					return
				}
				sent += res.Appended
				mu.Lock()
				verdicts[name] += len(res.Verdicts)
				mu.Unlock()
			}
		}(name)
	}

	close(start)
	restored, err := e.Restore(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if restored != len(names) {
		t.Fatalf("restored %d series, want %d", restored, len(names))
	}
	c := e.Counters()
	if c.TrainingsRun != 0 {
		t.Errorf("warm restore under ingest ran %d trainings, want 0", c.TrainingsRun)
	}
	if int(c.ModelRestoreWarm) != len(names) {
		t.Errorf("warm restores = %d, want %d", c.ModelRestoreWarm, len(names))
	}
	for _, name := range names {
		st, err := e.Status(context.Background(), name)
		if err != nil {
			t.Fatal(err)
		}
		if want := prePoints[name] + perSeries; st.Points != want {
			t.Errorf("%s: %d points after restart, want %d (pre-restart %d + %d appended)",
				name, st.Points, want, prePoints[name], perSeries)
		}
		if verdicts[name] != perSeries {
			t.Errorf("%s: %d verdicts for %d concurrently appended points", name, verdicts[name], perSeries)
		}
	}
}

// TestPublishAsyncAfterTrain: a training round publishes its model to the
// registry off the training path; PublishModels flushes deterministically.
func TestPublishAsyncAfterTrain(t *testing.T) {
	e, _, _ := trainableSeries(t, 9)
	models := openModels(t, "")
	e.SetModels(models)

	// The first Train predates SetModels, so flush publishes it now.
	if n := e.PublishModels(); n != 1 {
		t.Fatalf("PublishModels flushed %d artifacts, want 1", n)
	}
	if n := e.PublishModels(); n != 0 {
		t.Fatalf("second flush republished %d artifacts, want 0 (nothing new)", n)
	}
	man, err := models.Manifest("pv")
	if err != nil {
		t.Fatal(err)
	}
	if man.Current != 1 || len(man.Generations) != 1 {
		t.Fatalf("manifest = current %d over %d generations, want 1/1", man.Current, len(man.Generations))
	}

	// A retrain publishes a new generation asynchronously; the completion
	// edge comes from the PublishDone hook instead of polling the manifest.
	published := make(chan uint64, 1)
	e.SetHooks(Hooks{PublishDone: func(series string, gen uint64, err error) {
		if err != nil {
			t.Errorf("async publish failed: %v", err)
		}
		select {
		case published <- gen:
		default:
		}
	}})
	if _, err := e.Train(context.Background(), "pv"); err != nil {
		t.Fatal(err)
	}
	select {
	case gen := <-published:
		if gen != 2 {
			t.Fatalf("async publish produced generation %d, want 2", gen)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("async publish of generation 2 never landed")
	}
	if man, err = models.Manifest("pv"); err != nil || man.Current != 2 {
		t.Fatalf("manifest after async publish: current %d, err %v; want 2", man.Current, err)
	}
	if got := e.Counters().ModelPublishes; got != 2 {
		t.Errorf("ModelPublishes = %d, want 2", got)
	}
}

// TestRollbackModelLiveSwap: rolling back swaps the served monitor to the
// previous generation without a restart, and the rolled-back model is not
// immediately republished over.
func TestRollbackModelLiveSwap(t *testing.T) {
	e, _, _ := trainableSeries(t, 9)
	models := openModels(t, "")
	e.SetModels(models)
	if n := e.PublishModels(); n != 1 {
		t.Fatalf("flush published %d, want 1", n)
	}
	if _, err := e.Train(context.Background(), "pv"); err != nil {
		t.Fatal(err)
	}
	e.PublishModels() // deterministic gen 2 (async publish may have raced it)
	man, err := models.Manifest("pv")
	if err != nil {
		t.Fatal(err)
	}
	if man.Current != 2 {
		t.Fatalf("current = %d after two trainings, want 2", man.Current)
	}
	gen1 := man.Generations[0]

	man, err = e.RollbackModel(context.Background(), "pv")
	if err != nil {
		t.Fatal(err)
	}
	if man.Current != 1 {
		t.Fatalf("current = %d after rollback, want 1", man.Current)
	}
	st, err := e.Status(context.Background(), "pv")
	if err != nil {
		t.Fatal(err)
	}
	if st.CThld != gen1.CThld {
		t.Errorf("live cThld = %v after rollback, want generation 1's %v", st.CThld, gen1.CThld)
	}
	if got := e.Counters().ModelRollbacks; got != 1 {
		t.Errorf("ModelRollbacks = %d, want 1", got)
	}
	// The sweep must not republish the rolled-back model as a new generation.
	if n := e.PublishModels(); n != 0 {
		t.Errorf("PublishModels republished %d artifacts after rollback, want 0", n)
	}
	// Rolling back past the oldest generation is rejected, not silent.
	if _, err := e.RollbackModel(context.Background(), "pv"); !errors.Is(err, ErrRejected) {
		t.Errorf("rollback past oldest: err = %v, want ErrRejected", err)
	}
	if _, err := e.RollbackModel(context.Background(), "nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("rollback of unknown series: err = %v, want ErrNotFound", err)
	}
}

// BenchmarkRestoreWarmVsCold measures daemon startup against a trained
// two-series store with and without the model registry. The warm/cold ratio
// is the restart speedup the registry buys; make bench-check gates it at 3×
// via cmd/benchjson.
func BenchmarkRestoreWarmVsCold(b *testing.B) {
	dataDir, modelDir := seedTrainedStore(b, "pv-a", "pv-b")

	// Sanity outside the timer: the warm path must actually be warm.
	{
		e, store := benchRestartEngine(b, dataDir, modelDir)
		if _, err := e.Restore(context.Background()); err != nil {
			b.Fatal(err)
		}
		c := e.Counters()
		e.Close()
		store.Close()
		if c.TrainingsRun != 0 || c.ModelRestoreWarm != 2 {
			b.Fatalf("warm sanity: trainings=%d warm=%d, want 0/2", c.TrainingsRun, c.ModelRestoreWarm)
		}
	}

	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e, store := benchRestartEngine(b, dataDir, "")
			if _, err := e.Restore(context.Background()); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			e.Close()
			store.Close()
			b.StartTimer()
		}
	})
	b.Run("warm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e, store := benchRestartEngine(b, dataDir, modelDir)
			if _, err := e.Restore(context.Background()); err != nil {
				b.Fatal(err)
			}
			if c := e.Counters(); c.TrainingsRun != 0 {
				b.Fatalf("warm leg trained %d times", c.TrainingsRun)
			}
			b.StopTimer()
			e.Close()
			store.Close()
			b.StartTimer()
		}
	})
}

// benchRestartEngine is restartEngine without t.Cleanup (benchmarks close
// eagerly to keep the measured section tight).
func benchRestartEngine(b *testing.B, dataDir, modelDir string) (*Engine, *tsdb.Store) {
	b.Helper()
	store, err := tsdb.Open(dataDir)
	if err != nil {
		b.Fatal(err)
	}
	cfg := Config{
		Log:   slog.New(slog.NewTextHandler(io.Discard, nil)),
		Store: store,
	}
	if modelDir != "" {
		models, err := modelreg.Open(modelreg.Config{Dir: modelDir})
		if err != nil {
			b.Fatal(err)
		}
		cfg.Models = models
	}
	return New(cfg), store
}
