package engine

import (
	"bytes"
	"context"
	"errors"
	"time"

	"opprentice/internal/core"
	modelreg "opprentice/internal/registry"
	"opprentice/internal/timeseries"
)

// This file wires the model registry (internal/registry) into the engine:
// asynchronous artifact publication after every successful training round,
// warm restart from published artifacts, explicit rollback with a live
// monitor hot-swap, and the read-side accessors the service exposes.
//
// The fallback ladder on restore is warm → cold → data-only:
//
//	warm  load the newest valid artifact, verify its CRC (registry) and
//	      deployment fingerprint (core.LoadMonitor), re-warm detectors from
//	      trailing history — no training.
//	cold  anything on the warm rung failed (no artifact, corrupt, version or
//	      fingerprint skew): synchronously retrain from the WAL like before
//	      the registry existed. Only this series pays; its neighbors still
//	      restore warm.
//	data  the series is not trainable either (no labels yet): restore the
//	      data and let the operator train later.

// warmWeeks is how much trailing history detectors replay when a monitor is
// restored from an artifact. The longest warm-up in the default detector
// registry is 5 weeks (weekly diffs over a 4-week window), so 6 gives one
// full week of settled state beyond it.
const warmWeeks = 6

// SetModels attaches a model registry: every successful training round is
// then published asynchronously, and Restore prefers warm starts from
// published artifacts. Call it before Restore and before traffic.
func (e *Engine) SetModels(r *modelreg.Registry) { e.models = r }

// schedulePublish arms one asynchronous artifact publication for m. Like
// scheduleRetrain it is a CAS plus a non-blocking send; a drop is harmless
// because the next training round re-arms it and Close runs a final sweep.
func (e *Engine) schedulePublish(m *managed) {
	if e.models == nil {
		return
	}
	if !m.publishArmed.CompareAndSwap(false, true) {
		return // already queued
	}
	select {
	case e.pubQ <- m:
	default:
		m.publishArmed.Store(false)
		e.log.Warn("publish queue full, trigger dropped", "series", m.name)
	}
}

// publishWorker consumes scheduled publications until Close.
func (e *Engine) publishWorker() {
	defer e.wg.Done()
	for {
		select {
		case <-e.stop:
			return
		case m := <-e.pubQ:
			m.publishArmed.Store(false)
			if _, err := e.publishNow(m); err != nil {
				e.log.Warn("model publish failed", "series", m.name, "err", err)
			}
		}
	}
}

// publishNow publishes m's trained model if it is newer than the last
// published artifact, reporting whether an artifact was written. It is safe
// against concurrent ingest: the engine never mutates a live monitor's model
// state in place (retraining swaps in a freshly built monitor), so
// SaveModel on the grabbed pointer reads only immutable fields.
func (e *Engine) publishNow(m *managed) (bool, error) {
	if e.models == nil {
		return false, nil
	}
	m.pubMu.Lock()
	defer m.pubMu.Unlock()

	m.mu.Lock()
	mon := m.monitor
	trained := m.trained
	points := m.pointsAtTrain
	published := m.publishedAt
	m.mu.Unlock()
	if mon == nil || !trained.After(published) {
		return false, nil // nothing new to publish
	}

	// The serialize-and-publish round runs under the same watchdog as
	// training: a registry wedged on bad storage cannot pin the publish
	// worker forever, and a panic in serialization is recovered and counted.
	var g modelreg.Generation
	err := e.supervise("model publish", m.name, func() error {
		var buf bytes.Buffer
		if err := mon.SaveModel(&buf); err != nil {
			return err
		}
		payloads := map[string][]byte{modelreg.KindVerdict: buf.Bytes()}
		if mon.HasTypeModel() {
			var tbuf bytes.Buffer
			if err := mon.SaveTypeModel(&tbuf); err != nil {
				return err
			}
			payloads[modelreg.KindType] = tbuf.Bytes()
		}
		var err error
		g, err = e.models.PublishSet(m.name, modelreg.Info{
			Fingerprint: mon.Fingerprint(),
			Points:      points,
			CThld:       mon.CThld(),
			TrainedAt:   trained,
		}, payloads)
		return err
	})
	if err != nil {
		e.counters.modelPublishErrors.Add(1)
		e.publishDone(m.name, 0, err)
		return false, err
	}
	e.counters.modelPublishes.Add(1)

	m.mu.Lock()
	if trained.After(m.publishedAt) {
		m.publishedAt = trained
	}
	m.mu.Unlock()
	e.log.Info("model published", "series", m.name, "gen", g.Gen,
		"points", g.Points, "bytes", g.Size)
	e.publishDone(m.name, g.Gen, nil)
	return true, nil
}

// publishDone fires the PublishDone hook, if configured.
func (e *Engine) publishDone(series string, gen uint64, err error) {
	if e.hooks.PublishDone != nil {
		e.hooks.PublishDone(series, gen, err)
	}
}

// PublishModels synchronously publishes every series whose trained model is
// newer than its last published artifact, returning how many artifacts were
// written. Close calls it after the workers stop so a model trained moments
// before shutdown is not lost; tests use it to flush without timing games.
func (e *Engine) PublishModels() int {
	if e.models == nil {
		return 0
	}
	n := 0
	for i := range e.shards {
		sh := &e.shards[i]
		sh.mu.RLock()
		ms := make([]*managed, 0, len(sh.series))
		for _, m := range sh.series {
			ms = append(ms, m)
		}
		sh.mu.RUnlock()
		for _, m := range ms {
			published, err := e.publishNow(m)
			if err != nil {
				e.log.Warn("model publish failed", "series", m.name, "err", err)
				continue
			}
			if published {
				n++
			}
		}
	}
	return n
}

// warmWindow returns the trailing warmWeeks of s (or all of it when shorter):
// the history replayed through fresh detectors when loading an artifact.
func warmWindow(s *timeseries.Series) *timeseries.Series {
	ppw, err := s.PointsPerWeek()
	if err != nil {
		return s
	}
	if n := warmWeeks * ppw; s.Len() > n {
		return s.Slice(s.Len()-n, s.Len())
	}
	return s
}

// loadMonitorFromArtifact loads series' newest valid artifact set into a
// monitor, re-warming detectors from the trailing window of snap. An artifact
// that can never load (snapshot format skew, gob garbage behind a valid CRC)
// is quarantined; a fingerprint mismatch (trained under a different detector
// registry, tree count, or preference) is left in place — the operator may
// revert the deployment change — but still fails the warm rung. The verdict
// head decides the rung: a type-head payload that fails its own restore is
// quarantined by kind and the monitor serves without it (verdicts keep
// flowing, predicted types stop until the next publish).
func (e *Engine) loadMonitorFromArtifact(m *managed, snap *timeseries.Series) (*core.Monitor, *modelreg.LoadedSet, error) {
	set, err := e.models.LoadSet(m.name)
	if err != nil {
		return nil, nil, err
	}
	dets, err := e.registry(snap.Interval)
	if err != nil {
		return nil, nil, err
	}
	mon, err := core.LoadMonitor(bytes.NewReader(set.Payloads[modelreg.KindVerdict]), warmWindow(snap), dets, core.LoadConfig{
		Trees:           m.trees,
		Preference:      m.pref,
		OnDetectorPanic: e.panicHook(m.name),
	})
	if err != nil {
		if errors.Is(err, core.ErrSnapshotVersion) {
			if qErr := e.models.Quarantine(m.name, set.Gen); qErr != nil {
				e.log.Error("artifact unloadable and quarantine failed",
					"series", m.name, "gen", set.Gen, "err", qErr)
			}
		}
		return nil, nil, err
	}
	if tp, ok := set.Payloads[modelreg.KindType]; ok {
		if terr := mon.RestoreTypeModel(bytes.NewReader(tp)); terr != nil {
			e.log.Warn("type head unloadable; serving verdict head only",
				"series", m.name, "gen", set.Gen, "err", terr)
			if qErr := e.models.QuarantineKind(m.name, set.Gen, modelreg.KindType); qErr != nil {
				e.log.Error("type-head quarantine failed", "series", m.name, "gen", set.Gen, "err", qErr)
			}
		}
	}
	for _, kind := range set.Unavailable {
		e.log.Warn("secondary model artifact unavailable", "series", m.name,
			"gen", set.Gen, "kind", kind)
	}
	return mon, set, nil
}

// warmRestore is the warm rung of the restore ladder for a series not yet
// registered in any shard (Restore builds m privately, so no locks are
// needed). On success m serves the published model with its detectors warmed
// to the stream head.
func (e *Engine) warmRestore(m *managed) error {
	mon, art, err := e.loadMonitorFromArtifact(m, m.series)
	if err != nil {
		return err
	}
	m.monitor = mon
	m.trained = art.TrainedAt
	m.pointsAtTrain = art.Points
	m.publishedAt = art.TrainedAt
	return nil
}

// warmSwap hot-swaps a live series' monitor to the registry's current
// generation, following the retrain-swap protocol (snapshot under mu, load
// off-lock, replay mid-load points and swap under mu). RollbackModel uses it
// so a rollback takes effect without a restart.
func (e *Engine) warmSwap(m *managed) error {
	m.trainMu.Lock()
	defer m.trainMu.Unlock()

	m.mu.Lock()
	snap := m.series.Clone()
	m.mu.Unlock()

	mon, art, err := e.loadMonitorFromArtifact(m, snap)
	if err != nil {
		return err
	}

	m.mu.Lock()
	for _, v := range m.series.Values[snap.Len():] {
		mon.Step(v)
	}
	m.monitor = mon
	m.trained = art.TrainedAt
	// Like the retrain swap, the replay covered everything appended so far,
	// including values parked while degraded.
	m.pending = m.pending[:0]
	// The swapped-in model is deliberately old: pin pointsAtTrain to the
	// stream head so the auto-retrain trigger counts from now instead of
	// immediately republishing over the rollback, and mark it published so
	// Close's sweep does not re-publish generation N-1 as generation N+1.
	m.pointsAtTrain = m.series.Len()
	m.publishedAt = art.TrainedAt
	if m.active != nil {
		// The monitor changed hands: queries and drift reference belong to
		// the outgoing generation.
		m.active.Reset()
	}
	m.mu.Unlock()
	return nil
}

// ModelSeries lists the series with published artifacts.
func (e *Engine) ModelSeries() ([]string, error) {
	if e.models == nil {
		return nil, invalidf("no model registry configured")
	}
	names, err := e.models.List()
	if err != nil {
		return nil, err
	}
	if names == nil {
		names = []string{}
	}
	return names, nil
}

// ModelManifest returns the named series' generation index.
func (e *Engine) ModelManifest(name string) (modelreg.Manifest, error) {
	if e.models == nil {
		return modelreg.Manifest{}, invalidf("no model registry configured")
	}
	man, err := e.models.Manifest(name)
	if err != nil {
		if errors.Is(err, modelreg.ErrUnknownSeries) {
			return modelreg.Manifest{}, notFound(name)
		}
		return modelreg.Manifest{}, rejected(err)
	}
	return man, nil
}

// RollbackModel moves the named series' current generation one loadable step
// backwards and, if the series is live, hot-swaps its monitor to the
// rolled-back model. The registry change is durable even when the live swap
// fails (the operator is told; the next restart serves the rollback).
func (e *Engine) RollbackModel(ctx context.Context, name string) (modelreg.Manifest, error) {
	if err := ctx.Err(); err != nil {
		return modelreg.Manifest{}, err
	}
	if e.models == nil {
		return modelreg.Manifest{}, invalidf("no model registry configured")
	}
	man, err := e.models.Rollback(name)
	if err != nil {
		if errors.Is(err, modelreg.ErrUnknownSeries) {
			return modelreg.Manifest{}, notFound(name)
		}
		return modelreg.Manifest{}, rejected(err)
	}
	e.counters.modelRollbacks.Add(1)
	if m, lookupErr := e.lookup(name); lookupErr == nil {
		if swapErr := e.warmSwap(m); swapErr != nil {
			e.log.Warn("rollback recorded but live swap failed; old model serves until restart or retrain",
				"series", name, "err", swapErr)
		} else {
			e.log.Info("model rolled back", "series", name, "gen", man.Current)
		}
	}
	return man, nil
}

// observeRestore records the wall time of one Restore pass in the
// restore-time gauge.
func (e *Engine) observeRestore(took time.Duration) {
	e.counters.restoreMillis.Store(took.Milliseconds())
}
