package engine

// Allocation regression gates for the ingest hot path. The serving claim
// rests on Append staying allocation-free per point: feature rows, verdict
// buffers, WAL ops, and scoring scratch are all pooled or reused, so any
// new per-point allocation is a regression that should fail go test, not
// only show up in benchmarks.
//
// AllocsPerRun's result is the integer mean over many runs, so the rare
// amortized slice growth of the append-only series arrays (a handful of
// doublings across hundreds of runs) rounds to zero, while a real per-point
// allocation reads >= 1.

import (
	"context"
	"testing"
)

func TestAppendUntrainedZeroAllocs(t *testing.T) {
	e := newTestEngine(t)
	if err := e.Create("pv", SeriesConfig{IntervalSeconds: 60, Start: testStart}); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	pts := []Point{{Value: 1}}
	var vbuf []Verdict
	// Warm-up establishes slice capacity and the admission fast path.
	for i := 0; i < 64; i++ {
		if _, err := e.Append(ctx, "pv", pts, vbuf); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(500, func() {
		if _, err := e.Append(ctx, "pv", pts, vbuf); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("untrained Append allocates %.1f objects per batch, want 0", allocs)
	}
}

func TestAppendTrainedZeroAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	e, rest, _ := trainableSeries(t, 9)
	ctx := context.Background()
	// The verdict buffer is recycled from the result like the service layer's
	// sync.Pool does; a fresh nil buffer per call would cost one allocation.
	vbuf := make([]Verdict, 0, 4)
	pts := make([]Point, 1)
	next := 0
	step := func() {
		pts[0].Value = rest[next%len(rest)]
		res, err := e.Append(ctx, "pv", pts, vbuf)
		if err != nil {
			t.Fatal(err)
		}
		vbuf = res.Verdicts
		next++
	}
	// Warm-up grows the monitor's batch scratch and the alarm ring.
	for i := 0; i < 32; i++ {
		step()
	}
	allocs := testing.AllocsPerRun(300, step)
	if allocs != 0 {
		t.Fatalf("trained Append allocates %.1f objects per batch, want 0", allocs)
	}
}
