package engine

// Allocation regression gates for the ingest hot path. The serving claim
// rests on Append staying allocation-free per point: feature rows, verdict
// buffers, WAL ops, and scoring scratch are all pooled or reused, so any
// new per-point allocation is a regression that should fail go test, not
// only show up in benchmarks.
//
// AllocsPerRun's result is the integer mean over many runs, so the rare
// amortized slice growth of the append-only series arrays (a handful of
// doublings across hundreds of runs) rounds to zero, while a real per-point
// allocation reads >= 1.

import (
	"context"
	"testing"
	"time"

	"opprentice/internal/core"
	"opprentice/internal/kpigen"
)

func TestAppendUntrainedZeroAllocs(t *testing.T) {
	e := newTestEngine(t)
	if err := e.Create("pv", SeriesConfig{IntervalSeconds: 60, Start: testStart}); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	pts := []Point{{Value: 1}}
	var vbuf []Verdict
	// Warm-up establishes slice capacity and the admission fast path.
	for i := 0; i < 64; i++ {
		if _, err := e.Append(ctx, "pv", pts, vbuf); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(500, func() {
		if _, err := e.Append(ctx, "pv", pts, vbuf); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("untrained Append allocates %.1f objects per batch, want 0", allocs)
	}
}

func TestAppendTrainedZeroAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	e, rest, _ := trainableSeries(t, 9)
	ctx := context.Background()
	// The verdict buffer is recycled from the result like the service layer's
	// sync.Pool does; a fresh nil buffer per call would cost one allocation.
	vbuf := make([]Verdict, 0, 4)
	pts := make([]Point, 1)
	next := 0
	step := func() {
		pts[0].Value = rest[next%len(rest)]
		res, err := e.Append(ctx, "pv", pts, vbuf)
		if err != nil {
			t.Fatal(err)
		}
		vbuf = res.Verdicts
		next++
	}
	// Warm-up grows the monitor's batch scratch and the alarm ring.
	for i := 0; i < 32; i++ {
		step()
	}
	allocs := testing.AllocsPerRun(300, step)
	if allocs != 0 {
		t.Fatalf("trained Append allocates %.1f objects per batch, want 0", allocs)
	}
}

// trainableTypedSeries mirrors trainableSeries but creates the series with
// the given predictor config and labels it with typed windows (derived from
// kpigen's injection schedule), so training fits the anomaly-type head too.
func trainableTypedSeries(t *testing.T, weeks int, scfg SeriesConfig) (*Engine, []float64, int) {
	t.Helper()
	p := kpigen.PV(kpigen.Small)
	p.Interval = time.Hour
	p.Weeks = weeks
	d := kpigen.Generate(p, 91)
	ppw, err := d.Series.PointsPerWeek()
	if err != nil {
		t.Fatal(err)
	}
	e := newTestEngine(t)
	scfg.IntervalSeconds = 3600
	scfg.Start = testStart
	scfg.Trees = 10
	if err := e.Create("pv", scfg); err != nil {
		t.Fatal(err)
	}
	boot := (weeks - 1) * ppw
	pts := make([]Point, boot)
	for i := range pts {
		pts[i] = Point{Value: d.Series.Values[i]}
	}
	if _, err := e.Append(context.Background(), "pv", pts, nil); err != nil {
		t.Fatal(err)
	}
	var windows []Window
	for _, a := range d.Anomalies {
		if a.Window.End <= boot {
			windows = append(windows, Window{
				Start:     a.Window.Start,
				End:       a.Window.End,
				Anomalous: true,
				Type:      core.AnomalyClass(kpigen.ClassOf(a.Type)).Wire(),
			})
		}
	}
	if _, err := e.Label(context.Background(), "pv", windows); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Train(context.Background(), "pv"); err != nil {
		t.Fatal(err)
	}
	return e, d.Series.Values[boot:], boot
}

// TestAppendTrainedEVTZeroAllocs extends the trained-path allocation gate to
// the EVT predictor: the per-point POT threshold update (ObserveScore +
// Predict) is pure arithmetic and must not cost an allocation.
func TestAppendTrainedEVTZeroAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	e, rest, _ := trainableTypedSeries(t, 9, SeriesConfig{CThldPredictor: "evt"})
	ctx := context.Background()
	vbuf := make([]Verdict, 0, 4)
	pts := make([]Point, 1)
	next := 0
	step := func() {
		pts[0].Value = rest[next%len(rest)]
		res, err := e.Append(ctx, "pv", pts, vbuf)
		if err != nil {
			t.Fatal(err)
		}
		vbuf = res.Verdicts
		next++
	}
	for i := 0; i < 32; i++ {
		step()
	}
	allocs := testing.AllocsPerRun(300, step)
	if allocs != 0 {
		t.Fatalf("trained EVT Append allocates %.1f objects per batch, want 0", allocs)
	}
}

// TestAppendTrainedTypedZeroAllocs extends the gate to the anomaly-type head:
// classifying an anomalous point and stamping Verdict.Type / Alarm.Type
// (constant wire strings) must not allocate either.
func TestAppendTrainedTypedZeroAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	e, rest, _ := trainableTypedSeries(t, 9, SeriesConfig{})
	st, err := e.Status(context.Background(), "pv")
	if err != nil {
		t.Fatal(err)
	}
	if !st.TypedModel {
		t.Fatal("typed windows did not produce a type head")
	}
	ctx := context.Background()
	vbuf := make([]Verdict, 0, 4)
	pts := make([]Point, 1)
	next := 0
	step := func() {
		pts[0].Value = rest[next%len(rest)]
		res, err := e.Append(ctx, "pv", pts, vbuf)
		if err != nil {
			t.Fatal(err)
		}
		vbuf = res.Verdicts
		next++
	}
	for i := 0; i < 32; i++ {
		step()
	}
	allocs := testing.AllocsPerRun(300, step)
	if allocs != 0 {
		t.Fatalf("trained typed Append allocates %.1f objects per batch, want 0", allocs)
	}
}
