package engine

import (
	"context"
	"fmt"
)

// SeriesBatch is one series' slice of a bulk append: points destined for the
// series' next slots, in stream order.
type SeriesBatch struct {
	Name   string
	Points []Point
}

// BulkSummary reports an AppendBulk call: totals over the batches that
// applied (on error, the prefix before the failing batch).
type BulkSummary struct {
	// Appended is the number of points committed.
	Appended int
	// Batches is how many batches fully applied.
	Batches int
	// Alarms is how many committed points were judged anomalous by a
	// healthy (non-degraded) scorer.
	Alarms int
}

// AppendBulk applies a group of batches in order with striped admission:
// the group's point count is reserved against each touched shard's
// in-flight budget with one atomic add per shard, instead of one admission
// handshake per batch. It is the fan-in fast path behind streaming ingest,
// where a single flush can carry dozens of single-series batches whose
// per-batch admission and lookup costs would otherwise dominate.
//
// Semantics match a sequence of Append calls with one refinement: lookup
// and validation run for the whole group up front, so a group whose k-th
// batch names an unknown series (or is empty) applies batches 0..k-1 and
// then fails — exactly the "nothing after the failing frame" contract of
// the ingest stream. Admission is all-or-nothing for the admissible prefix:
// an over-budget shard sheds the whole group before any mutation. A
// mid-apply error (context cancellation, rejected timestamps) likewise
// stops the group at the failing batch. The returned error wraps the
// failing series' name and the underlying engine error kind.
//
// vbuf is a reusable verdict scratch buffer (grown as needed); the grown
// buffer is returned for pooling. Verdicts are consumed internally — bulk
// ingest summarizes instead of returning per-point verdicts.
func (e *Engine) AppendBulk(ctx context.Context, batches []SeriesBatch, vbuf []Verdict) (BulkSummary, []Verdict, error) {
	var sum BulkSummary
	if len(batches) == 0 {
		return sum, vbuf, invalidf("no batches")
	}
	if err := ctx.Err(); err != nil {
		return sum, vbuf, err
	}

	// Resolve and validate the applicable prefix: the first empty or
	// unknown batch bounds it, and its error is reported after the prefix
	// applies.
	type resolved struct {
		m  *managed
		sh *shard
	}
	rs := make([]resolved, 0, len(batches))
	var deferred error
	for _, b := range batches {
		if len(b.Points) == 0 {
			deferred = fmt.Errorf("series %q: %w", b.Name, invalidf("no points"))
			break
		}
		sh := e.shardFor(b.Name)
		sh.mu.RLock()
		m := sh.series[b.Name]
		sh.mu.RUnlock()
		if m == nil {
			deferred = fmt.Errorf("series %q: %w", b.Name, notFound(b.Name))
			break
		}
		rs = append(rs, resolved{m: m, sh: sh})
	}

	// Striped admission: one reservation per distinct shard for the whole
	// prefix. Shed the group whole if any shard is over budget.
	tokens := make([]admitToken, 0, 8)
	admitted := make(map[*shard]int, 8)
	for i := range rs {
		admitted[rs[i].sh] += len(batches[i].Points)
	}
	for sh, n := range admitted {
		tok, err := e.admit(sh, n)
		if err != nil {
			for _, t := range tokens {
				t.release()
			}
			return sum, vbuf, err
		}
		tokens = append(tokens, tok)
	}
	defer func() {
		for _, t := range tokens {
			t.release()
		}
	}()

	for i := range rs {
		res, err := e.appendSeries(ctx, rs[i].m, batches[i].Points, vbuf)
		if len(res.Verdicts) > 0 {
			vbuf = res.Verdicts
		}
		if err != nil {
			return sum, vbuf, fmt.Errorf("series %q: %w", batches[i].Name, err)
		}
		sum.Appended += res.Appended
		sum.Batches++
		for _, v := range res.Verdicts {
			if v.Anomalous && !v.Degraded {
				sum.Alarms++
			}
		}
	}
	return sum, vbuf, deferred
}
