package engine

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"opprentice/internal/tsdb"
)

// This file is the engine's overload and stall machinery: per-shard
// admission control, the per-series background WAL writer whose deadline
// misses flip a series into degraded mode, the threshold-only scorer that
// serves verdicts while degraded, and the hysteresis that recovers out of
// it. The training watchdog lives in train.go; together they give the
// engine a defined answer to "what happens when it can't keep up" instead
// of an unbounded stall.

// SetWALDeadline retunes the durable-write budget at runtime (0 disables).
func (e *Engine) SetWALDeadline(d time.Duration) { e.walDeadline.Store(int64(d)) }

// SetTrainDeadline retunes the training/publish watchdog at runtime
// (0 disables).
func (e *Engine) SetTrainDeadline(d time.Duration) { e.trainDeadline.Store(int64(d)) }

// SetDegradedRecovery retunes the degraded-mode recovery hysteresis at
// runtime (0 makes degraded mode sticky).
func (e *Engine) SetDegradedRecovery(d time.Duration) { e.degradedRecovery.Store(int64(d)) }

// supervise runs fn on its own goroutine under the training-watchdog
// deadline: a panic is recovered and counted instead of crashing the
// engine, and a run that outlives the deadline is abandoned with an
// ErrStalled-wrapped error (the goroutine finishes in the background; its
// buffered channel means it never leaks).
func (e *Engine) supervise(op, series string, fn func() error) error {
	deadline := time.Duration(e.trainDeadline.Load())
	done := make(chan error, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				e.counters.workerPanics.Add(1)
				done <- fmt.Errorf("%s panicked: %v", op, r)
			}
		}()
		done <- fn()
	}()
	if deadline <= 0 {
		return <-done
	}
	t := time.NewTimer(deadline)
	defer t.Stop()
	select {
	case err := <-done:
		return err
	case <-t.C:
		e.counters.trainStalls.Add(1)
		return stalledf("%s for %q exceeded its %v deadline", op, series, deadline)
	}
}

// admitToken is a reservation against one shard's in-flight budget. It is a
// value (not a closure) so the per-append admission handshake stays off the
// heap; release must be called exactly once when the append leaves the
// engine. The zero token releases nothing.
type admitToken struct {
	sh *shard
	n  int64
}

func (t admitToken) release() {
	if t.sh != nil {
		t.sh.inflight.Add(-t.n)
	}
}

// admit reserves n points of the shard's in-flight budget, or sheds the
// batch with an ErrOverloaded-wrapped error.
func (e *Engine) admit(sh *shard, n int) (admitToken, error) {
	if e.ingestInflight <= 0 {
		return admitToken{}, nil
	}
	if cur := sh.inflight.Add(int64(n)); cur > e.ingestInflight {
		sh.inflight.Add(int64(-n))
		e.counters.ingestSheds.Add(1)
		return admitToken{}, overloadedf("ingest budget exhausted: %d points in flight, batch of %d over the %d cap",
			cur-int64(n), n, e.ingestInflight)
	}
	return admitToken{sh: sh, n: int64(n)}, nil
}

// enterDegraded flips a series into degraded serving (caller holds m.mu):
// verdicts become threshold-only against the last trained model's cThld,
// appended values accumulate in pending for the recovery replay, and WAL
// ops are buffered in the background writer.
func (e *Engine) enterDegraded(m *managed, reason string) {
	if m.degraded {
		return
	}
	m.degraded = true
	m.degradedSince = time.Now()
	m.degradedCThld = 0.5
	if m.monitor != nil {
		m.degradedCThld = m.monitor.CThld()
	}
	m.scorer.seed(m.series.Values)
	m.pending = m.pending[:0]
	m.lastViolation.Store(time.Now().UnixNano())
	e.counters.degradedEntered.Add(1)
	e.log.Warn("series degraded", "series", m.name, "reason", reason)
}

// maybeRecover leaves degraded mode (caller holds m.mu) once the WAL
// writer has been quiet for the full hysteresis window and its queue has
// drained. The values appended while degraded are replayed through the
// real monitor — their client-facing verdicts were already issued by the
// threshold scorer, so replay verdicts are discarded exactly like the
// retrain replay — which makes the monitor state bit-identical to a run
// that never degraded.
func (e *Engine) maybeRecover(m *managed) {
	if !m.degraded {
		return
	}
	rec := time.Duration(e.degradedRecovery.Load())
	if rec <= 0 {
		return // sticky until restart
	}
	last := time.Unix(0, m.lastViolation.Load())
	if time.Since(last) < rec {
		return
	}
	if m.walw != nil && !m.walw.idle() {
		return
	}
	if m.monitor != nil {
		for _, v := range m.pending {
			m.monitor.Step(v)
		}
	}
	m.pending = nil
	m.degraded = false
	e.counters.degradedRecovered.Add(1)
	e.log.Info("series recovered from degraded mode",
		"series", m.name, "degraded_for", time.Since(m.degradedSince))
}

// degradeScorer is the O(1) fallback classifier used while degraded: an
// exponentially-weighted mean/deviation estimate of the recent signal,
// scoring each point by its normalized distance. It is deterministic in
// the value sequence, so degraded verdicts are reproducible.
type degradeScorer struct {
	mean, dev float64 // EWMA mean and EWMA absolute deviation
	seeded    bool
}

// scorerSeedWindow is how much trailing history seeds the scorer when a
// series enters degraded mode.
const scorerSeedWindow = 64

// seed primes the estimates from trailing history.
func (s *degradeScorer) seed(values []float64) {
	s.mean, s.dev, s.seeded = 0, 0, false
	lo := len(values) - scorerSeedWindow
	if lo < 0 {
		lo = 0
	}
	for _, v := range values[lo:] {
		s.fold(v)
	}
}

// fold updates the estimates with one observation.
func (s *degradeScorer) fold(v float64) {
	const alpha = 1.0 / 16
	if !s.seeded {
		s.mean, s.dev, s.seeded = v, 0, true
		return
	}
	d := math.Abs(v - s.mean)
	s.mean += alpha * (v - s.mean)
	s.dev += alpha * (d - s.dev)
}

// score folds v in and returns an anomaly probability in [0, 1]: the
// normalized deviation, saturating at six deviations.
func (s *degradeScorer) score(v float64) float64 {
	if !s.seeded {
		s.fold(v)
		return 0
	}
	d := math.Abs(v - s.mean)
	scale := 6 * s.dev
	s.fold(v)
	if scale <= 0 || math.IsNaN(d) {
		if d > 0 {
			return 1
		}
		return 0
	}
	p := d / scale
	if p > 1 {
		p = 1
	}
	return p
}

// Readiness is the /v1/readyz view: the node is ready when no series is
// degraded or quarantined. Field tags double as the wire format.
type Readiness struct {
	Ready       bool     `json:"ready"`
	Degraded    []string `json:"degraded,omitempty"`
	Quarantined []string `json:"quarantined,omitempty"`
}

// Ready reports whether every series is serving full-fidelity verdicts,
// naming the ones that are not.
func (e *Engine) Ready() Readiness {
	r := Readiness{Ready: true}
	for i := range e.shards {
		sh := &e.shards[i]
		sh.mu.RLock()
		for name, m := range sh.series {
			m.mu.Lock()
			degraded := m.degraded
			m.mu.Unlock()
			if degraded {
				r.Degraded = append(r.Degraded, name)
			}
			if m.quarantined.Load() {
				r.Quarantined = append(r.Quarantined, name)
			}
		}
		sh.mu.RUnlock()
	}
	sort.Strings(r.Degraded)
	sort.Strings(r.Quarantined)
	r.Ready = len(r.Degraded) == 0 && len(r.Quarantined) == 0
	return r
}

// SyncWAL blocks until every WAL op enqueued for the series before the
// call has been executed (a write barrier), or ctx is done. Tests and the
// simulation harness use it to force the background writer to a known
// point; it is not on any hot path.
func (e *Engine) SyncWAL(ctx context.Context, name string) error {
	m, err := e.lookup(name)
	if err != nil {
		return err
	}
	if m.walw == nil {
		return nil
	}
	done := make(chan error, 1)
	if !m.walw.enqueue(walOp{kind: opBarrier, done: done}) {
		return stalledf("wal writer for %q is saturated or closed", name)
	}
	select {
	case err := <-done:
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// opKind enumerates WAL writer operations.
type opKind int

const (
	opMeta opKind = iota
	opPoints
	opLabel
	opBarrier
)

// walOp is one queued durable write (or a barrier). done, when non-nil,
// receives the store's result exactly once (buffered so an abandoned
// waiter never blocks the writer).
type walOp struct {
	kind      opKind
	meta      tsdb.Meta
	values    []float64
	start     int
	end       int
	anomalous bool
	typed     bool  // the label carries an anomaly class
	class     uint8 // core.AnomalyClass wire code
	done      chan error
}

// TypedLabelStore is the optional store capability for anomaly-class label
// records. *tsdb.Store implements it; a store without it (test fakes,
// older stores) silently degrades typed labels to plain ones in the log —
// the in-memory typed channel is unaffected.
type TypedLabelStore interface {
	AppendTypedLabel(ctx context.Context, name string, start, end int, anomalous bool, class uint8) error
}

var _ TypedLabelStore = (*tsdb.Store)(nil)

// walWriter serializes one series' durable writes on a dedicated
// goroutine. Ops are enqueued under the series mutex, so queue order is
// exactly append order; the healthy ingest path then waits for its op up
// to the WAL deadline, and a miss flips the series degraded while the
// writer keeps draining in the background with bounded buffering.
type walWriter struct {
	series string
	eng    *Engine
	m      *managed

	mu         sync.Mutex
	closed     bool
	pendingOps int // enqueued but not yet executed
	buffered   int // points those ops hold (degraded-mode memory bound)

	ops     chan walOp
	drained chan struct{}
}

// attachWAL wires a background WAL writer to the series. Must be called
// before the series sees traffic.
func (e *Engine) attachWAL(m *managed) {
	if e.store == nil {
		return
	}
	w := &walWriter{
		series:  m.name,
		eng:     e,
		m:       m,
		ops:     make(chan walOp, 4096),
		drained: make(chan struct{}),
	}
	m.walw = w
	go w.run()
}

// enqueue adds one op to the queue. It reports false — without blocking —
// when the writer is closed, the op channel is full, or a points op would
// exceed the buffered-points bound; the caller decides whether that is a
// loss to account.
func (w *walWriter) enqueue(op walOp) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return false
	}
	if op.kind == opPoints && w.eng.walBufferPoints > 0 &&
		w.buffered+len(op.values) > w.eng.walBufferPoints {
		return false
	}
	select {
	case w.ops <- op:
		w.pendingOps++
		w.buffered += len(op.values)
		return true
	default:
		return false
	}
}

// idle reports whether every enqueued op has been executed.
func (w *walWriter) idle() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.pendingOps == 0
}

// run executes ops in order until shutdown closes the queue.
func (w *walWriter) run() {
	defer close(w.drained)
	for op := range w.ops {
		w.exec(op)
	}
}

// exec performs one op against the store, stamps deadline violations and
// errors on the series, and wakes any waiter.
func (w *walWriter) exec(op walOp) {
	deadline := time.Duration(w.eng.walDeadline.Load())
	started := time.Now()
	var err error
	switch op.kind {
	case opMeta:
		err = w.eng.store.CreateSeries(op.meta)
	case opPoints:
		// The queue decouples callers from the store, so there is no caller
		// context to propagate: the op must run to completion regardless —
		// the caller's await has its own deadline.
		err = w.eng.store.AppendPoints(context.Background(), w.series, op.values)
	case opLabel:
		if ts, ok := w.eng.store.(TypedLabelStore); ok && op.typed {
			err = ts.AppendTypedLabel(context.Background(), w.series, op.start, op.end, op.anomalous, op.class)
		} else {
			err = w.eng.store.AppendLabel(context.Background(), w.series, op.start, op.end, op.anomalous)
		}
	case opBarrier:
		// Nothing: completing it is the point.
	}
	if op.kind == opPoints || op.kind == opLabel {
		if err != nil {
			w.eng.counters.walAppendErrors.Add(1)
			w.eng.log.Error("wal append failed", "series", w.series, "err", err)
		} else if deadline > 0 && time.Since(started) > deadline {
			// A write that completed but blew its budget counts as a
			// violation for the recovery hysteresis, not as an error.
			w.m.lastViolation.Store(time.Now().UnixNano())
		}
	}
	w.mu.Lock()
	w.pendingOps--
	w.buffered -= len(op.values)
	w.mu.Unlock()
	if op.done != nil {
		op.done <- err
	}
}

// await waits for an op's result up to the deadline (and ctx). completed
// is false on a deadline or context miss; the op still executes in the
// background and its accounting happens in exec.
func (w *walWriter) await(ctx context.Context, done chan error, deadline time.Duration) (err error, completed bool) {
	var timer <-chan time.Time
	if deadline > 0 {
		t := time.NewTimer(deadline)
		defer t.Stop()
		timer = t.C
	}
	select {
	case err := <-done:
		return err, true
	case <-timer:
		return nil, false
	case <-ctx.Done():
		return ctx.Err(), false
	}
}

// createSeries writes the series' meta record through the queue (ordered
// before any racing points op) and waits for it, so Create keeps its
// synchronous error contract.
func (w *walWriter) createSeries(meta tsdb.Meta) error {
	done := make(chan error, 1)
	if !w.enqueue(walOp{kind: opMeta, meta: meta, done: done}) {
		return stalledf("wal writer for %q is saturated or closed", w.series)
	}
	err, completed := w.await(context.Background(), done, time.Duration(w.eng.walDeadline.Load()))
	if !completed {
		return stalledf("wal create for %q timed out", w.series)
	}
	return err
}

// appendLabel routes one label record through the queue (typed when the
// action carries an anomaly class). Healthy path: wait up to the WAL
// deadline, flipping degraded on a miss. Degraded path: enqueue without
// waiting. Callers hold m.mu.
func (w *walWriter) appendLabel(ctx context.Context, start, end int, anomalous bool, class uint8, typed bool) {
	op := walOp{kind: opLabel, start: start, end: end, anomalous: anomalous, class: class, typed: typed}
	if w.m.degraded {
		if !w.enqueue(op) {
			w.eng.log.Error("wal label dropped: writer saturated", "series", w.series)
		}
		return
	}
	op.done = make(chan error, 1)
	if !w.enqueue(op) {
		w.eng.enterDegraded(w.m, "wal writer saturated")
		w.eng.log.Error("wal label dropped: writer saturated", "series", w.series)
		return
	}
	if _, completed := w.await(ctx, op.done, time.Duration(w.eng.walDeadline.Load())); !completed {
		w.m.lastViolation.Store(time.Now().UnixNano())
		w.eng.enterDegraded(w.m, "wal label write blew its deadline")
	}
}

// shutdown closes the queue (idempotent) and waits up to timeout for the
// writer to drain, reporting whether it did.
func (w *walWriter) shutdown(timeout time.Duration) bool {
	w.mu.Lock()
	if !w.closed {
		w.closed = true
		close(w.ops)
	}
	w.mu.Unlock()
	if timeout <= 0 {
		return true
	}
	select {
	case <-w.drained:
		return true
	case <-time.After(timeout):
		return false
	}
}
