package engine

import (
	"context"
	"sort"
	"time"
)

// Query is one pending label query: a window of points the live forest was
// least certain about (vote fraction within the query band around the
// cThld). Field tags double as the service's wire format. Score is in
// (0, 1]: 1 means a vote fraction exactly at the threshold.
type Query struct {
	Series    string    `json:"series"`
	Start     int       `json:"start"`
	End       int       `json:"end"`
	StartTime time.Time `json:"start_time"`
	EndTime   time.Time `json:"end_time"`
	Points    int       `json:"points"`
	Score     float64   `json:"score"`
}

// Queries returns the pending label queries, most uncertain first (ties by
// series then start). With name == "" it spans every managed series;
// otherwise only the named one (ErrNotFound if it does not exist). A series
// with the query queue disabled simply contributes nothing.
func (e *Engine) Queries(ctx context.Context, name string) ([]Query, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	names := []string{name}
	if name == "" {
		names = e.Names()
	}
	out := []Query{}
	for _, n := range names {
		m, err := e.lookup(n)
		if err != nil {
			if name == "" {
				continue // deleted between Names and here
			}
			return nil, err
		}
		if m.active == nil {
			continue
		}
		m.mu.Lock()
		for _, w := range m.active.Windows(nil) {
			out = append(out, Query{
				Series:    n,
				Start:     w.Start,
				End:       w.End,
				StartTime: m.series.TimeAt(w.Start),
				EndTime:   m.series.TimeAt(w.End),
				Points:    w.Points,
				Score:     w.Score,
			})
		}
		m.mu.Unlock()
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		if out[i].Series != out[j].Series {
			return out[i].Series < out[j].Series
		}
		return out[i].Start < out[j].Start
	})
	return out, nil
}

// AnswerQuery resolves one pending query: the window [start, end) must
// exactly match a queued query for the series (ErrRejected otherwise — the
// query may have been evicted, answered already, or cleared by a retrain),
// the answer is applied as an ordinary label action (durable via the WAL
// like Label), and the query leaves the queue so it is never surfaced
// twice. The labels feed the next training round exactly as operator
// labels do.
func (e *Engine) AnswerQuery(ctx context.Context, name string, start, end int, anomalous bool) (LabelResult, error) {
	if err := ctx.Err(); err != nil {
		return LabelResult{}, err
	}
	m, err := e.lookup(name)
	if err != nil {
		return LabelResult{}, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.active == nil || !m.active.Remove(start, end) {
		return LabelResult{}, rejectedf("no pending query [%d, %d) for series %q", start, end, name)
	}
	for i := start; i < end; i++ {
		m.labels[i] = anomalous
		// Query answers carry no anomaly type; clear any stale class so the
		// typed channel never disagrees with the labels.
		if m.typed != nil {
			m.typed[i] = 0
		}
	}
	if m.walw != nil {
		m.walw.appendLabel(ctx, start, end, anomalous, 0, false)
	}
	e.counters.queriesAnswered.Add(1)
	return LabelResult{
		AnomalousPoints: m.labels.Count(),
		LabeledWindows:  len(m.labels.Windows()),
	}, nil
}
