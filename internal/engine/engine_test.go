package engine

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"sort"
	"sync"
	"testing"
	"time"

	"opprentice/internal/kpigen"
	"opprentice/internal/tsdb"
)

var testStart = time.Date(2015, 1, 5, 0, 0, 0, 0, time.UTC)

func newTestEngine(t *testing.T) *Engine {
	t.Helper()
	e := New(Config{Log: slog.New(slog.NewTextHandler(io.Discard, nil))})
	t.Cleanup(e.Close)
	return e
}

func TestCreateAndLookupErrors(t *testing.T) {
	e := newTestEngine(t)

	if err := e.Create("bad", SeriesConfig{IntervalSeconds: 7, Start: testStart}); !errors.Is(err, ErrInvalid) {
		t.Fatalf("non-divisor interval: got %v, want ErrInvalid", err)
	}
	if err := e.Create("bad", SeriesConfig{IntervalSeconds: 60}); !errors.Is(err, ErrInvalid) {
		t.Fatalf("zero start: got %v, want ErrInvalid", err)
	}
	if err := e.Create("pv", SeriesConfig{IntervalSeconds: 60, Start: testStart}); err != nil {
		t.Fatalf("create: %v", err)
	}
	if err := e.Create("pv", SeriesConfig{IntervalSeconds: 60, Start: testStart}); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate create: got %v, want ErrExists", err)
	}
	if _, err := e.Status(context.Background(), "nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing series: got %v, want ErrNotFound", err)
	}
	if _, err := e.Append(context.Background(), "nope", []Point{{Value: 1}}, nil); !errors.Is(err, ErrNotFound) {
		t.Fatalf("append to missing series: got %v, want ErrNotFound", err)
	}
}

// TestPartialBatchRejectedAtomically is the regression test for the
// partial-append bug: an out-of-order timestamp in the middle of a batch must
// reject the whole batch with nothing appended — the pre-engine service
// appended the points preceding the bad one before answering 422.
func TestPartialBatchRejectedAtomically(t *testing.T) {
	e := newTestEngine(t)
	if err := e.Create("pv", SeriesConfig{IntervalSeconds: 60, Start: testStart}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Append(context.Background(), "pv", []Point{{Value: 1}, {Value: 2}}, nil); err != nil {
		t.Fatal(err)
	}

	// Batch of three: the first timestamp is the correct next slot, the second
	// is stale. Before the fix the first point survived the rejection.
	batch := []Point{
		{Timestamp: testStart.Add(2 * time.Minute), Value: 3},
		{Timestamp: testStart, Value: 4}, // out of order
		{Value: 5},
	}
	_, err := e.Append(context.Background(), "pv", batch, nil)
	if !errors.Is(err, ErrRejected) {
		t.Fatalf("mid-batch out-of-order: got %v, want ErrRejected", err)
	}
	st, err := e.Status(context.Background(), "pv")
	if err != nil {
		t.Fatal(err)
	}
	if st.Points != 2 {
		t.Fatalf("rejected batch mutated the series: %d points, want 2", st.Points)
	}

	// The same batch with the bad point fixed goes through whole.
	batch[1].Timestamp = testStart.Add(3 * time.Minute)
	if res, err := e.Append(context.Background(), "pv", batch, nil); err != nil || res.Appended != 3 || res.Total != 5 {
		t.Fatalf("repaired batch: res=%+v err=%v, want 3 appended / 5 total", res, err)
	}
}

func TestLabelWindowValidation(t *testing.T) {
	e := newTestEngine(t)
	if err := e.Create("pv", SeriesConfig{IntervalSeconds: 60, Start: testStart}); err != nil {
		t.Fatal(err)
	}
	pts := make([]Point, 10)
	if _, err := e.Append(context.Background(), "pv", pts, nil); err != nil {
		t.Fatal(err)
	}
	// One good window, one out of range: nothing applied.
	_, err := e.Label(context.Background(), "pv", []Window{{Start: 0, End: 4, Anomalous: true}, {Start: 8, End: 20, Anomalous: true}})
	if !errors.Is(err, ErrRejected) {
		t.Fatalf("out-of-range window: got %v, want ErrRejected", err)
	}
	st, _ := e.Status(context.Background(), "pv")
	if st.AnomalousPoints != 0 {
		t.Fatalf("rejected label batch mutated labels: %d anomalous points", st.AnomalousPoints)
	}
	res, err := e.Label(context.Background(), "pv", []Window{{Start: 0, End: 4, Anomalous: true}})
	if err != nil || res.AnomalousPoints != 4 || res.LabeledWindows != 1 {
		t.Fatalf("label: res=%+v err=%v", res, err)
	}
}

func TestAlarmRing(t *testing.T) {
	r := alarmRing{max: 4}
	at := func(i int) time.Time { return testStart.Add(time.Duration(i) * time.Minute) }
	for i := 0; i < 10; i++ {
		r.push(Alarm{Time: at(i), Value: float64(i)})
	}
	if r.len() != 4 {
		t.Fatalf("ring len = %d, want 4", r.len())
	}
	got := r.since(time.Time{})
	if len(got) != 4 {
		t.Fatalf("since(zero) returned %d alarms, want 4", len(got))
	}
	for i, a := range got {
		if want := float64(6 + i); a.Value != want {
			t.Fatalf("alarm[%d].Value = %v, want %v (oldest-first after wrap)", i, a.Value, want)
		}
	}
	if got := r.since(at(7)); len(got) != 2 || got[0].Value != 8 {
		t.Fatalf("since(t7) = %+v, want values 8,9", got)
	}
	if got := r.last(2); len(got) != 2 || got[0].Value != 8 || got[1].Value != 9 {
		t.Fatalf("last(2) = %+v, want values 8,9", got)
	}
	empty := alarmRing{}
	empty.push(Alarm{Time: at(0)}) // max==0 must not panic or grow
	if empty.len() != 0 {
		t.Fatalf("zero-max ring retained an alarm")
	}
}

// flakyStore fails AppendPoints/AppendLabel on demand; everything else
// succeeds without persisting anything.
type flakyStore struct {
	mu       sync.Mutex
	fail     bool
	appends  int
	failures int
}

func (f *flakyStore) setFail(v bool) { f.mu.Lock(); f.fail = v; f.mu.Unlock() }

func (f *flakyStore) CreateSeries(tsdb.Meta) error { return nil }

func (f *flakyStore) AppendPoints(context.Context, string, []float64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.appends++
	if f.fail {
		f.failures++
		return fmt.Errorf("disk full")
	}
	return nil
}

func (f *flakyStore) AppendLabel(context.Context, string, int, int, bool) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.fail {
		f.failures++
		return fmt.Errorf("disk full")
	}
	return nil
}

func (f *flakyStore) List() ([]string, error)           { return nil, nil }
func (f *flakyStore) Load(string) (*tsdb.Loaded, error) { return nil, fmt.Errorf("not stored") }
func (f *flakyStore) Quarantine(string) (string, error) { return "", fmt.Errorf("not stored") }

// TestWALAppendFailureSurfaced checks the durability-failure satellite: a
// failing store must not reject the append (points stay live in memory), but
// the result reports Persisted=false and the engine counts the failure.
func TestWALAppendFailureSurfaced(t *testing.T) {
	e := newTestEngine(t)
	store := &flakyStore{}
	e.SetStore(store)
	if err := e.Create("pv", SeriesConfig{IntervalSeconds: 60, Start: testStart}); err != nil {
		t.Fatal(err)
	}

	res, err := e.Append(context.Background(), "pv", []Point{{Value: 1}}, nil)
	if err != nil || !res.Persisted {
		t.Fatalf("healthy store: res=%+v err=%v, want Persisted=true", res, err)
	}

	store.setFail(true)
	res, err = e.Append(context.Background(), "pv", []Point{{Value: 2}, {Value: 3}}, nil)
	if err != nil {
		t.Fatalf("append with failing store must still succeed in memory: %v", err)
	}
	if res.Persisted {
		t.Fatal("Persisted=true despite WAL failure")
	}
	if res.Total != 3 {
		t.Fatalf("points not live in memory: total=%d, want 3", res.Total)
	}
	if got := e.Counters().WALAppendErrors; got != 1 {
		t.Fatalf("WALAppendErrors = %d, want 1", got)
	}
	if _, err := e.Label(context.Background(), "pv", []Window{{Start: 0, End: 1, Anomalous: true}}); err != nil {
		t.Fatalf("label with failing store must still succeed in memory: %v", err)
	}
	if got := e.Counters().WALAppendErrors; got != 2 {
		t.Fatalf("WALAppendErrors after label = %d, want 2", got)
	}

	store.setFail(false)
	if res, _ := e.Append(context.Background(), "pv", []Point{{Value: 4}}, nil); !res.Persisted {
		t.Fatal("store recovered but Persisted still false")
	}
}

// trainableSeries creates a series, feeds it weeks of synthetic PV data with
// labels, and trains it once. It returns the engine, the remaining unfed
// values, and the index of the next point.
func trainableSeries(t *testing.T, weeks int) (*Engine, []float64, int) {
	t.Helper()
	p := kpigen.PV(kpigen.Small)
	p.Interval = time.Hour
	p.Weeks = weeks
	d := kpigen.Generate(p, 91)
	ppw, err := d.Series.PointsPerWeek()
	if err != nil {
		t.Fatal(err)
	}
	e := newTestEngine(t)
	if err := e.Create("pv", SeriesConfig{IntervalSeconds: 3600, Start: testStart, Trees: 10}); err != nil {
		t.Fatal(err)
	}
	boot := (weeks - 1) * ppw
	pts := make([]Point, boot)
	for i := range pts {
		pts[i] = Point{Value: d.Series.Values[i]}
	}
	if _, err := e.Append(context.Background(), "pv", pts, nil); err != nil {
		t.Fatal(err)
	}
	var windows []Window
	for _, w := range d.Labels.Windows() {
		if w.End <= boot {
			windows = append(windows, Window{Start: w.Start, End: w.End, Anomalous: true})
		}
	}
	if _, err := e.Label(context.Background(), "pv", windows); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Train(context.Background(), "pv"); err != nil {
		t.Fatal(err)
	}
	return e, d.Series.Values[boot:], boot
}

// TestConcurrentIngestRetrainNoVerdictLoss is the monitor-swap correctness
// test: while several goroutines ingest and others force retrains, every
// appended point must receive exactly one verdict — the swap protocol replays
// mid-train points into the new monitor but never re-issues their verdicts.
// Run under -race (make engine-race) to also check the locking.
func TestConcurrentIngestRetrainNoVerdictLoss(t *testing.T) {
	e, rest, base := trainableSeries(t, 9)

	const (
		appenders = 4
		batchSize = 16
		batches   = 8 // per appender
		retrains  = 6
	)
	need := appenders * batchSize * batches
	for len(rest) < need {
		rest = append(rest, rest...) // recycle the tail; values don't matter here
	}

	var (
		mu       sync.Mutex
		verdicts []Verdict
		wg       sync.WaitGroup
	)
	chunks := make(chan []float64, appenders*batches)
	for i := 0; i < appenders*batches; i++ {
		chunks <- rest[i*batchSize : (i+1)*batchSize]
	}
	close(chunks)

	for a := 0; a < appenders; a++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for chunk := range chunks {
				pts := make([]Point, len(chunk))
				for i, v := range chunk {
					pts[i] = Point{Value: v}
				}
				res, err := e.Append(context.Background(), "pv", pts, nil)
				if err != nil {
					t.Errorf("append: %v", err)
					return
				}
				if len(res.Verdicts) != len(pts) {
					t.Errorf("batch of %d points got %d verdicts", len(pts), len(res.Verdicts))
				}
				mu.Lock()
				verdicts = append(verdicts, res.Verdicts...)
				mu.Unlock()
			}
		}()
	}
	for r := 0; r < retrains; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := e.Train(context.Background(), "pv"); err != nil {
				t.Errorf("train: %v", err)
			}
		}()
	}
	wg.Wait()

	if len(verdicts) != need {
		t.Fatalf("got %d verdicts for %d appended points", len(verdicts), need)
	}
	idx := make([]int, len(verdicts))
	for i, v := range verdicts {
		idx[i] = v.Index
	}
	sort.Ints(idx)
	for i, got := range idx {
		if want := base + i; got != want {
			t.Fatalf("verdict index %d at position %d, want %d: a point was dropped or double-classified across a monitor swap", got, i, want)
		}
	}
	st, err := e.Status(context.Background(), "pv")
	if err != nil {
		t.Fatal(err)
	}
	if st.Points != base+need {
		t.Fatalf("series length %d, want %d", st.Points, base+need)
	}
}

// TestAutoRetrainAsync checks the scheduler end to end: crossing the
// RetrainEvery watermark arms exactly one background round, the training
// happens off the ingest path, and the swapped monitor advances TrainedAt.
func TestAutoRetrainAsync(t *testing.T) {
	p := kpigen.PV(kpigen.Small)
	p.Interval = time.Hour
	p.Weeks = 10
	d := kpigen.Generate(p, 91)
	ppw, err := d.Series.PointsPerWeek()
	if err != nil {
		t.Fatal(err)
	}
	e := newTestEngine(t)
	if err := e.Create("pv", SeriesConfig{IntervalSeconds: 3600, Start: testStart, Trees: 10, RetrainEvery: ppw}); err != nil {
		t.Fatal(err)
	}
	boot := 9 * ppw
	pts := make([]Point, boot)
	for i := range pts {
		pts[i] = Point{Value: d.Series.Values[i]}
	}
	if _, err := e.Append(context.Background(), "pv", pts, nil); err != nil {
		t.Fatal(err)
	}
	var windows []Window
	for _, w := range d.Labels.Windows() {
		if w.End <= boot {
			windows = append(windows, Window{Start: w.Start, End: w.End, Anomalous: true})
		}
	}
	if _, err := e.Label(context.Background(), "pv", windows); err != nil {
		t.Fatal(err)
	}
	first, err := e.Train(context.Background(), "pv")
	if err != nil {
		t.Fatal(err)
	}

	// The retrain completion edge comes from the TrainDone hook, not from
	// polling: installed after the synchronous boot training (whose hook
	// firing we don't want), before the append that arms the retrain.
	retrained := make(chan TrainResult, 1)
	e.SetHooks(Hooks{TrainDone: func(name string, res TrainResult, err error) {
		if err != nil {
			t.Errorf("background retrain failed: %v", err)
		}
		select {
		case retrained <- res:
		default:
		}
	}})
	week := make([]Point, ppw)
	for i := range week {
		week[i] = Point{Value: d.Series.Values[boot+i]}
	}
	if _, err := e.Append(context.Background(), "pv", week, nil); err != nil {
		t.Fatal(err)
	}
	select {
	case res := <-retrained:
		if !res.TrainedAt.After(first.TrainedAt) {
			t.Fatalf("retrain stamped %v, not after the boot training %v", res.TrainedAt, first.TrainedAt)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("background retrain never completed")
	}
	st, err := e.Status(context.Background(), "pv")
	if err != nil {
		t.Fatal(err)
	}
	if st.TrainedAt.Equal(first.TrainedAt) {
		t.Fatal("background retrain never swapped the monitor")
	}
	if got := e.Counters().TrainingsRun; got < 2 {
		t.Fatalf("TrainingsRun = %d, want >= 2", got)
	}
}

// TestVerdictBufferReuse checks the pooled-buffer contract: Append grows and
// reuses the caller's buffer instead of allocating.
func TestVerdictBufferReuse(t *testing.T) {
	e, rest, _ := trainableSeries(t, 9)
	buf := make([]Verdict, 0, 64)
	pts := make([]Point, 8)
	for i := range pts {
		pts[i] = Point{Value: rest[i%len(rest)]}
	}
	res, err := e.Append(context.Background(), "pv", pts, buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Verdicts) != len(pts) {
		t.Fatalf("got %d verdicts, want %d", len(res.Verdicts), len(pts))
	}
	if &res.Verdicts[0] != &buf[:1][0] {
		t.Fatal("Append allocated a fresh slice instead of reusing the caller's buffer")
	}
}
