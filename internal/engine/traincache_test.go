package engine

// Engine-level test for the incremental feature-extraction cache: retrains
// racing with ingest must keep taking the O(new points) fast path (the
// engine's snapshots are consistent prefixes, so an append-only series never
// invalidates the cache), and a quiescent retrain after the dust settles
// must be purely incremental. Runs under `make engine-race`.

import (
	"context"
	"io"
	"log/slog"
	"sync"
	"testing"
	"time"

	"opprentice/internal/kpigen"
)

func TestRetrainUsesCacheUnderConcurrentIngest(t *testing.T) {
	e, rest, _ := trainableSeries(t, 9)

	// The initial training seeded the cache cold.
	c0 := e.Counters()
	if c0.ExtractPointsCold == 0 {
		t.Fatal("initial training extracted no cold points: cache not wired into the train path")
	}
	if c0.ExtractPointsIncremental != 0 {
		t.Fatalf("initial training counted %d incremental points", c0.ExtractPointsIncremental)
	}
	if c0.ExtractCacheBytes == 0 {
		t.Fatal("cache accounted zero bytes after the seeding extraction")
	}

	const (
		appenders = 3
		batchSize = 16
		batches   = 6 // per appender
		retrains  = 4
	)
	need := appenders * batchSize * batches
	for len(rest) < need {
		rest = append(rest, rest...)
	}
	chunks := make(chan []float64, appenders*batches)
	for i := 0; i < appenders*batches; i++ {
		chunks <- rest[i*batchSize : (i+1)*batchSize]
	}
	close(chunks)

	var wg sync.WaitGroup
	for a := 0; a < appenders; a++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for chunk := range chunks {
				pts := make([]Point, len(chunk))
				for i, v := range chunk {
					pts[i] = Point{Value: v}
				}
				if _, err := e.Append(context.Background(), "pv", pts, nil); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}()
	}
	for r := 0; r < retrains; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := e.Train(context.Background(), "pv"); err != nil {
				t.Errorf("train: %v", err)
			}
		}()
	}
	wg.Wait()

	mid := e.Counters()
	if mid.TrainingsRun != 1+retrains {
		t.Fatalf("TrainingsRun = %d, want %d", mid.TrainingsRun, 1+retrains)
	}
	if mid.ExtractPointsIncremental == 0 {
		t.Fatal("no retrain took the incremental extraction path despite append-only ingest")
	}
	// Append-only ingest with a fixed fit window must never invalidate or
	// re-run cold columns: the cold-point counter stays at its seeded value.
	if mid.ExtractPointsCold != c0.ExtractPointsCold {
		t.Fatalf("cold points grew from %d to %d across append-only retrains",
			c0.ExtractPointsCold, mid.ExtractPointsCold)
	}
	if mid.ExtractCacheInvalidated != 0 {
		t.Fatalf("cache invalidated %d times under append-only ingest", mid.ExtractCacheInvalidated)
	}

	// A quiescent append + retrain is purely incremental, and by exactly the
	// appended tail times the configuration count.
	pts := make([]Point, 8)
	for i := range pts {
		pts[i] = Point{Value: rest[i]}
	}
	if _, err := e.Append(context.Background(), "pv", pts, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Train(context.Background(), "pv"); err != nil {
		t.Fatal(err)
	}
	post := e.Counters()
	if post.ExtractPointsCold != mid.ExtractPointsCold {
		t.Fatalf("quiescent retrain ran cold columns: %d -> %d", mid.ExtractPointsCold, post.ExtractPointsCold)
	}
	grew := post.ExtractPointsIncremental - mid.ExtractPointsIncremental
	if grew <= 0 || grew%int64(len(pts)) != 0 {
		t.Fatalf("quiescent retrain extracted %d incremental points, want a positive multiple of %d", grew, len(pts))
	}
}

// TestEngineCacheDisabled: a negative ExtractCacheMB turns the cache off —
// trainings run cold and export no cache accounting.
func TestEngineCacheDisabled(t *testing.T) {
	e := New(Config{
		Log:            slog.New(slog.NewTextHandler(io.Discard, nil)),
		ExtractCacheMB: -1,
	})
	t.Cleanup(e.Close)

	p := kpigen.PV(kpigen.Small)
	p.Interval = time.Hour
	p.Weeks = 9
	d := kpigen.Generate(p, 91)
	if err := e.Create("pv", SeriesConfig{IntervalSeconds: 3600, Start: testStart, Trees: 10}); err != nil {
		t.Fatal(err)
	}
	boot := 8 * 168
	pts := make([]Point, boot)
	for i := range pts {
		pts[i] = Point{Value: d.Series.Values[i]}
	}
	if _, err := e.Append(context.Background(), "pv", pts, nil); err != nil {
		t.Fatal(err)
	}
	var windows []Window
	for _, w := range d.Labels.Windows() {
		if w.End <= boot {
			windows = append(windows, Window{Start: w.Start, End: w.End, Anomalous: true})
		}
	}
	if _, err := e.Label(context.Background(), "pv", windows); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Train(context.Background(), "pv"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Train(context.Background(), "pv"); err != nil {
		t.Fatal(err)
	}
	c := e.Counters()
	if c.ExtractPointsCold != 0 || c.ExtractPointsIncremental != 0 || c.ExtractCacheBytes != 0 {
		t.Fatalf("disabled cache still accounts cold=%d incremental=%d bytes=%d",
			c.ExtractPointsCold, c.ExtractPointsIncremental, c.ExtractCacheBytes)
	}
}
