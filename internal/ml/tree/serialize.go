package tree

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// Wire DTOs: gob needs exported fields, while the in-memory representations
// keep theirs private.

type nodeDTO struct {
	Feature     int
	Bin         uint8
	Left, Right int32
	Prob        float32
	Leaf        bool
}

// MarshalBinary implements encoding.BinaryMarshaler so trained trees can be
// persisted and reloaded without retraining.
func (t *Tree) MarshalBinary() ([]byte, error) {
	dto := make([]nodeDTO, len(t.nodes))
	for i, n := range t.nodes {
		dto[i] = nodeDTO{Feature: n.feature, Bin: n.bin, Left: n.left, Right: n.right, Prob: n.prob, Leaf: n.leaf}
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(dto); err != nil {
		return nil, fmt.Errorf("tree: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (t *Tree) UnmarshalBinary(data []byte) error {
	var dto []nodeDTO
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&dto); err != nil {
		return fmt.Errorf("tree: decode: %w", err)
	}
	t.nodes = make([]node, len(dto))
	for i, n := range dto {
		if !n.Leaf && (n.Left < 0 || int(n.Left) >= len(dto) || n.Right < 0 || int(n.Right) >= len(dto)) {
			return fmt.Errorf("tree: corrupt node %d: children (%d, %d) out of %d", i, n.Left, n.Right, len(dto))
		}
		t.nodes[i] = node{feature: n.Feature, bin: n.Bin, left: n.Left, right: n.Right, prob: n.Prob, leaf: n.Leaf}
	}
	return nil
}

// MarshalBinary implements encoding.BinaryMarshaler for the feature binner.
func (b *Binner) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(b.edges); err != nil {
		return nil, fmt.Errorf("tree: encode binner: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (b *Binner) UnmarshalBinary(data []byte) error {
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&b.edges); err != nil {
		return fmt.Errorf("tree: decode binner: %w", err)
	}
	return nil
}
