// Package tree implements CART decision trees (gini impurity) over
// quantile-binned features — the base learner of the random forest (§4.4.2)
// and the standalone decision-tree comparison of Fig. 10. Binning features
// into at most 256 quantile buckets turns each split search into a counting
// pass, which keeps fully-grown forests on months of KPI data fast without
// changing which splits are found in practice.
//
// Throughout this package feature matrices are column-major:
// cols[j][i] is feature j of sample i.
package tree

import (
	"fmt"
	"math"
	"sort"
)

// MaxBins is the number of quantile buckets per feature (fits uint8 codes).
const MaxBins = 256

// Binner maps raw feature values to uint8 bucket codes using per-feature
// quantile edges learned from training data.
type Binner struct {
	edges [][]float64 // edges[j] is sorted; code = #edges < ... (see Bin)
}

// NewBinner learns quantile edges (at most maxBins-1 per feature, deduped)
// from the column-major training features. maxBins is clamped to [2, 256].
func NewBinner(cols [][]float64, maxBins int) *Binner {
	if maxBins < 2 {
		maxBins = 2
	}
	if maxBins > MaxBins {
		maxBins = MaxBins
	}
	b := &Binner{edges: make([][]float64, len(cols))}
	for j, col := range cols {
		sorted := make([]float64, 0, len(col))
		for _, v := range col {
			if !math.IsNaN(v) {
				sorted = append(sorted, v)
			}
		}
		sort.Float64s(sorted)
		var edges []float64
		for k := 1; k < maxBins; k++ {
			if len(sorted) == 0 {
				break
			}
			pos := k * len(sorted) / maxBins
			if pos >= len(sorted) {
				pos = len(sorted) - 1
			}
			e := sorted[pos]
			if len(edges) == 0 || e > edges[len(edges)-1] {
				edges = append(edges, e)
			}
		}
		b.edges[j] = edges
	}
	return b
}

// NumFeatures returns the number of features the binner was built for.
func (b *Binner) NumFeatures() int { return len(b.edges) }

// Code returns the bucket of value v for feature j: the number of edges
// strictly below v. NaN maps to bucket 0 (treat missing severities as
// "no evidence of anomaly").
func (b *Binner) Code(j int, v float64) uint8 {
	if math.IsNaN(v) {
		return 0
	}
	e := b.edges[j]
	// First index with edge >= v ⇒ v sits in that bucket.
	return uint8(sort.SearchFloat64s(e, v))
}

// Threshold returns the raw-value upper boundary of bucket code for feature
// j; points with value ≤ Threshold(j, code) go to buckets ≤ code. For the
// last bucket it returns +Inf.
func (b *Binner) Threshold(j int, code uint8) float64 {
	e := b.edges[j]
	if int(code) >= len(e) {
		return math.Inf(1)
	}
	return e[code]
}

// Bin encodes column-major features into column-major uint8 codes.
func (b *Binner) Bin(cols [][]float64) [][]uint8 {
	if len(cols) != len(b.edges) {
		panic(fmt.Sprintf("tree: binner built for %d features, got %d", len(b.edges), len(cols)))
	}
	out := make([][]uint8, len(cols))
	for j, col := range cols {
		codes := make([]uint8, len(col))
		for i, v := range col {
			codes[i] = b.Code(j, v)
		}
		out[j] = codes
	}
	return out
}
