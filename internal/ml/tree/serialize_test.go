package tree

import (
	"math/rand"
	"testing"
)

func TestTreeMarshalRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cols, labels := makeXOR(300, rng)
	tr, binner, binned := trainTree(cols, labels, Config{}, 32)

	data, err := tr.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Tree
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if back.NumNodes() != tr.NumNodes() {
		t.Fatalf("nodes = %d, want %d", back.NumNodes(), tr.NumNodes())
	}
	for i := 0; i < 300; i++ {
		if got, want := back.ProbCols(binned, i), tr.ProbCols(binned, i); got != want {
			t.Fatalf("sample %d: %v vs %v", i, got, want)
		}
	}
	_ = binner
}

func TestTreeUnmarshalRejectsCorruptChildren(t *testing.T) {
	// A node pointing outside the node array must be rejected.
	corrupt := []nodeDTO{{Feature: 0, Bin: 1, Left: 5, Right: 6, Leaf: false}}
	good := &Tree{nodes: []node{{leaf: true, prob: 1}}}
	data, err := good.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	_ = data
	// Build corrupt bytes via a throwaway tree marshal of the DTO shape.
	bad := &Tree{nodes: []node{{feature: 0, bin: 1, left: 5, right: 6, leaf: false}}}
	raw, err := bad.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Tree
	if err := back.UnmarshalBinary(raw); err == nil {
		t.Error("corrupt children accepted")
	}
	_ = corrupt
}

func TestTreeUnmarshalGarbage(t *testing.T) {
	var tr Tree
	if err := tr.UnmarshalBinary([]byte{1, 2, 3}); err == nil {
		t.Error("garbage accepted")
	}
}

func TestBinnerMarshalRoundTrip(t *testing.T) {
	cols := [][]float64{{1, 2, 3, 4, 5, 6, 7, 8}}
	b := NewBinner(cols, 8)
	data, err := b.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Binner
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if back.NumFeatures() != 1 {
		t.Fatalf("features = %d", back.NumFeatures())
	}
	for _, v := range []float64{0.5, 2.5, 5.5, 99} {
		if back.Code(0, v) != b.Code(0, v) {
			t.Fatalf("code(%v) differs after round trip", v)
		}
	}
	if err := back.UnmarshalBinary([]byte("junk")); err == nil {
		t.Error("garbage accepted")
	}
}
