package tree

import (
	"fmt"
	"io"
	"math/rand"
)

// Config controls tree growth.
type Config struct {
	// MaxDepth limits tree depth; 0 grows fully (until pure or MinLeaf),
	// as random forests do (§4.4.2).
	MaxDepth int
	// MinLeaf is the minimum samples per leaf (default 1).
	MinLeaf int
	// FeaturesPerSplit is how many randomly chosen features each split
	// considers; 0 means all (plain CART). Random forests use √d.
	FeaturesPerSplit int
	// Rng drives feature subsampling; required when FeaturesPerSplit > 0.
	Rng *rand.Rand
}

// node is one tree node in the flattened node array.
type node struct {
	feature     int
	bin         uint8 // go left when code ≤ bin
	left, right int32
	prob        float32 // leaf anomaly probability
	leaf        bool
}

// Tree is a trained CART classifier over binned features.
type Tree struct {
	nodes []node
	// importance[j] is feature j's accumulated impurity decrease, weighted
	// by the fraction of training samples reaching each split (gini
	// importance, the preliminary §4.4.2 builds on: features closer to the
	// root separate more data).
	importance []float64
}

// Grow trains a tree on the binned column-major features restricted to the
// sample indices idx (which it reorders in place). labels[i] is the ground
// truth of sample i.
func Grow(binned [][]uint8, labels []bool, idx []int, cfg Config) *Tree {
	if cfg.MinLeaf < 1 {
		cfg.MinLeaf = 1
	}
	if cfg.FeaturesPerSplit > 0 && cfg.Rng == nil {
		panic("tree: FeaturesPerSplit > 0 requires Rng")
	}
	t := &Tree{importance: make([]float64, len(binned))}
	g := grower{binned: binned, labels: labels, cfg: cfg, t: t, total: len(idx)}
	g.featScratch = make([]int, len(binned))
	for j := range g.featScratch {
		g.featScratch[j] = j
	}
	g.grow(idx, 0)
	return t
}

// Importances returns the per-feature gini importances of the tree, summing
// to at most 1 (0 for features never split on).
func (t *Tree) Importances() []float64 {
	return append([]float64(nil), t.importance...)
}

type grower struct {
	binned      [][]uint8
	labels      []bool
	cfg         Config
	t           *Tree
	total       int
	featScratch []int
	hist        [MaxBins][2]int32
}

// grow builds the subtree for samples idx at the given depth and returns its
// node index.
func (g *grower) grow(idx []int, depth int) int32 {
	pos := 0
	for _, i := range idx {
		if g.labels[i] {
			pos++
		}
	}
	n := len(idx)
	prob := float32(pos) / float32(n)
	me := int32(len(g.t.nodes))
	g.t.nodes = append(g.t.nodes, node{leaf: true, prob: prob})
	if pos == 0 || pos == n || n < 2*g.cfg.MinLeaf ||
		(g.cfg.MaxDepth > 0 && depth >= g.cfg.MaxDepth) {
		return me
	}
	feature, bin, gain, ok := g.bestSplit(idx, pos)
	if !ok {
		return me
	}
	// Partition idx in place: codes ≤ bin to the left.
	codes := g.binned[feature]
	lo, hi := 0, n
	for lo < hi {
		if codes[idx[lo]] <= bin {
			lo++
		} else {
			hi--
			idx[lo], idx[hi] = idx[hi], idx[lo]
		}
	}
	if lo == 0 || lo == n {
		return me // degenerate split; keep the leaf
	}
	g.t.nodes[me].leaf = false
	g.t.nodes[me].feature = feature
	g.t.nodes[me].bin = bin
	if g.total > 0 {
		g.t.importance[feature] += gain * float64(n) / float64(g.total)
	}
	left := g.grow(idx[:lo], depth+1)
	right := g.grow(idx[lo:], depth+1)
	g.t.nodes[me].left = left
	g.t.nodes[me].right = right
	return me
}

// bestSplit searches the (possibly subsampled) features for the split with
// the lowest weighted gini impurity, returning the impurity decrease.
func (g *grower) bestSplit(idx []int, pos int) (feature int, bin uint8, bestGain float64, ok bool) {
	n := len(idx)
	total := [2]int32{int32(n - pos), int32(pos)}

	feats := g.featScratch
	k := len(feats)
	if g.cfg.FeaturesPerSplit > 0 && g.cfg.FeaturesPerSplit < k {
		// Partial Fisher-Yates: move k random features to the front.
		k = g.cfg.FeaturesPerSplit
		for i := 0; i < k; i++ {
			j := i + g.cfg.Rng.Intn(len(feats)-i)
			feats[i], feats[j] = feats[j], feats[i]
		}
	}

	parentGini := gini(total)
	bestGain = 1e-12
	ok = false
	for _, f := range feats[:k] {
		codes := g.binned[f]
		maxBin := uint8(0)
		for b := range g.hist {
			g.hist[b][0], g.hist[b][1] = 0, 0
		}
		for _, i := range idx {
			c := codes[i]
			if g.labels[i] {
				g.hist[c][1]++
			} else {
				g.hist[c][0]++
			}
			if c > maxBin {
				maxBin = c
			}
		}
		var left [2]int32
		for b := 0; b < int(maxBin); b++ {
			left[0] += g.hist[b][0]
			left[1] += g.hist[b][1]
			ln := left[0] + left[1]
			rn := int32(n) - ln
			if ln < int32(g.cfg.MinLeaf) || rn < int32(g.cfg.MinLeaf) {
				continue
			}
			right := [2]int32{total[0] - left[0], total[1] - left[1]}
			w := (float64(ln)*gini(left) + float64(rn)*gini(right)) / float64(n)
			if gain := parentGini - w; gain > bestGain {
				bestGain = gain
				feature, bin, ok = f, uint8(b), true
			}
		}
	}
	return feature, bin, bestGain, ok
}

// gini returns the gini impurity of a two-class count.
func gini(c [2]int32) float64 {
	n := float64(c[0] + c[1])
	if n == 0 {
		return 0
	}
	p := float64(c[1]) / n
	return 2 * p * (1 - p)
}

// Prob returns the anomaly probability of the leaf a binned sample reaches.
// at(j) must return the sample's code for feature j.
func (t *Tree) Prob(at func(j int) uint8) float64 {
	i := int32(0)
	for {
		nd := &t.nodes[i]
		if nd.leaf {
			return float64(nd.prob)
		}
		if at(nd.feature) <= nd.bin {
			i = nd.left
		} else {
			i = nd.right
		}
	}
}

// ProbCols classifies sample i of the column-major binned matrix.
func (t *Tree) ProbCols(binned [][]uint8, i int) float64 {
	return t.Prob(func(j int) uint8 { return binned[j][i] })
}

// NumNodes returns the node count (for size assertions and ablations).
func (t *Tree) NumNodes() int { return len(t.nodes) }

// NodeView is the exported description of one tree node, used by ensemble
// code (ml/forest) to flatten many trees into one contiguous node array for
// branch-predictable iterative inference.
type NodeView struct {
	Feature     int
	Bin         uint8 // go left when code ≤ Bin
	Left, Right int32 // child indices within this tree's own node array
	Prob        float32
	Leaf        bool
}

// Node returns the i-th node of the tree's internal (already flattened,
// root-at-0) node array.
func (t *Tree) Node(i int) NodeView {
	nd := &t.nodes[i]
	return NodeView{
		Feature: nd.feature,
		Bin:     nd.bin,
		Left:    nd.left,
		Right:   nd.right,
		Prob:    nd.prob,
		Leaf:    nd.leaf,
	}
}

// Depth returns the maximum depth of the tree (root = 0).
func (t *Tree) Depth() int {
	var walk func(i int32, d int) int
	walk = func(i int32, d int) int {
		nd := &t.nodes[i]
		if nd.leaf {
			return d
		}
		l := walk(nd.left, d+1)
		r := walk(nd.right, d+1)
		if l > r {
			return l
		}
		return r
	}
	if len(t.nodes) == 0 {
		return 0
	}
	return walk(0, 0)
}

// Print writes an indented if-then view of the tree (Fig. 5 style) down to
// maxDepth levels. names give feature names; binner translates bin codes
// back to raw severity thresholds.
func (t *Tree) Print(w io.Writer, names []string, binner *Binner, maxDepth int) {
	var walk func(i int32, depth int, indent string)
	walk = func(i int32, depth int, indent string) {
		nd := &t.nodes[i]
		if nd.leaf || (maxDepth > 0 && depth >= maxDepth) {
			verdict := "Normal"
			if nd.prob >= 0.5 {
				verdict = "Anomaly"
			}
			fmt.Fprintf(w, "%s=> %s (p=%.2f)\n", indent, verdict, nd.prob)
			return
		}
		thr := binner.Threshold(nd.feature, nd.bin)
		fmt.Fprintf(w, "%sif severity[%s] <= %.3g:\n", indent, names[nd.feature], thr)
		walk(nd.left, depth+1, indent+"  ")
		fmt.Fprintf(w, "%selse:\n", indent)
		walk(nd.right, depth+1, indent+"  ")
	}
	if len(t.nodes) > 0 {
		walk(0, 0, "")
	}
}
