package tree

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestBinnerCodesMonotone(t *testing.T) {
	col := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	b := NewBinner([][]float64{col}, 4)
	prev := uint8(0)
	for _, v := range col {
		c := b.Code(0, v)
		if c < prev {
			t.Fatalf("codes not monotone: %v after %v", c, prev)
		}
		prev = c
	}
	if b.Code(0, -100) != 0 {
		t.Error("below-range value should get code 0")
	}
	if got := b.Code(0, 1e9); int(got) > len(colEdges(b, 0)) {
		t.Error("above-range code exceeds bucket count")
	}
}

func colEdges(b *Binner, j int) []float64 { return b.edges[j] }

func TestBinnerNaN(t *testing.T) {
	b := NewBinner([][]float64{{1, 2, math.NaN(), 4}}, 4)
	if b.Code(0, math.NaN()) != 0 {
		t.Error("NaN should map to bucket 0")
	}
}

func TestBinnerThreshold(t *testing.T) {
	b := NewBinner([][]float64{{1, 2, 3, 4}}, 4)
	edges := colEdges(b, 0)
	if len(edges) == 0 {
		t.Fatal("no edges learned")
	}
	if got := b.Threshold(0, 0); got != edges[0] {
		t.Errorf("Threshold(0,0) = %v, want %v", got, edges[0])
	}
	if !math.IsInf(b.Threshold(0, 255), 1) {
		t.Error("last bucket threshold should be +Inf")
	}
}

func TestBinnerCodeRespectsThreshold(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		col := make([]float64, 200)
		for i := range col {
			col[i] = rng.NormFloat64() * 10
		}
		b := NewBinner([][]float64{col}, 32)
		for _, v := range col {
			c := b.Code(0, v)
			// v must be ≤ its bucket's upper boundary and > the previous one.
			if v > b.Threshold(0, c) {
				return false
			}
			if c > 0 && v <= b.Threshold(0, c-1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestBinnerBinPanicsOnShape(t *testing.T) {
	b := NewBinner([][]float64{{1, 2}}, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	b.Bin([][]float64{{1}, {2}})
}

// makeXOR builds a dataset a single linear split cannot solve but a depth-2
// tree can.
func makeXOR(n int, rng *rand.Rand) (cols [][]float64, labels []bool) {
	cols = [][]float64{make([]float64, n), make([]float64, n)}
	labels = make([]bool, n)
	for i := 0; i < n; i++ {
		a, b := rng.Float64(), rng.Float64()
		cols[0][i], cols[1][i] = a, b
		labels[i] = (a > 0.5) != (b > 0.5)
	}
	return cols, labels
}

func trainTree(cols [][]float64, labels []bool, cfg Config, bins int) (*Tree, *Binner, [][]uint8) {
	b := NewBinner(cols, bins)
	binned := b.Bin(cols)
	idx := make([]int, len(labels))
	for i := range idx {
		idx[i] = i
	}
	return Grow(binned, labels, idx, cfg), b, binned
}

func TestTreeSolvesXOR(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cols, labels := makeXOR(600, rng)
	tr, _, binned := trainTree(cols, labels, Config{}, 64)
	correct := 0
	for i := range labels {
		pred := tr.ProbCols(binned, i) >= 0.5
		if pred == labels[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(labels)); acc < 0.97 {
		t.Errorf("XOR training accuracy = %v, want ≥ 0.97", acc)
	}
}

func TestTreePureLeafStopsGrowing(t *testing.T) {
	cols := [][]float64{{1, 2, 3, 4}}
	labels := []bool{true, true, true, true}
	tr, _, _ := trainTree(cols, labels, Config{}, 8)
	if tr.NumNodes() != 1 {
		t.Errorf("pure data should give a single leaf, got %d nodes", tr.NumNodes())
	}
	if p := tr.Prob(func(int) uint8 { return 0 }); p != 1 {
		t.Errorf("pure anomaly leaf prob = %v, want 1", p)
	}
}

func TestTreeMaxDepth(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cols, labels := makeXOR(500, rng)
	tr, _, _ := trainTree(cols, labels, Config{MaxDepth: 1}, 64)
	if d := tr.Depth(); d > 1 {
		t.Errorf("depth = %d, want ≤ 1", d)
	}
}

func TestTreeMinLeaf(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cols, labels := makeXOR(300, rng)
	tr, _, binned := trainTree(cols, labels, Config{MinLeaf: 50}, 64)
	// Count samples per leaf.
	counts := map[float64]int{}
	_ = counts
	// Instead verify no leaf was reached by fewer than MinLeaf training
	// points: approximate by checking the tree is small.
	if tr.NumNodes() > 2*300/50+1 {
		t.Errorf("MinLeaf=50 tree has %d nodes, too many", tr.NumNodes())
	}
	_ = binned
}

func TestTreeFeatureSubsamplingNeedsRng(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	Grow([][]uint8{{0, 1}}, []bool{false, true}, []int{0, 1}, Config{FeaturesPerSplit: 1})
}

func TestTreePrintShowsRulesAndVerdicts(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	cols, labels := makeXOR(400, rng)
	tr, binner, _ := trainTree(cols, labels, Config{}, 64)
	var sb strings.Builder
	tr.Print(&sb, []string{"detA", "detB"}, binner, 2)
	out := sb.String()
	if !strings.Contains(out, "severity[detA]") && !strings.Contains(out, "severity[detB]") {
		t.Errorf("printed tree lacks feature names:\n%s", out)
	}
	if !strings.Contains(out, "Anomaly") && !strings.Contains(out, "Normal") {
		t.Errorf("printed tree lacks verdicts:\n%s", out)
	}
}

func TestTreeDeterministicWithSeed(t *testing.T) {
	rng1 := rand.New(rand.NewSource(5))
	cols, labels := makeXOR(300, rng1)
	grow := func(seed int64) *Tree {
		b := NewBinner(cols, 32)
		binned := b.Bin(cols)
		idx := make([]int, len(labels))
		for i := range idx {
			idx[i] = i
		}
		return Grow(binned, labels, idx, Config{
			FeaturesPerSplit: 1,
			Rng:              rand.New(rand.NewSource(seed)),
		})
	}
	a, b := grow(7), grow(7)
	if a.NumNodes() != b.NumNodes() {
		t.Error("same seed should grow identical trees")
	}
}

// Fully grown trees must perfectly fit any consistent training set (bins
// permitting) — the paper's "fully grown without pruning".
func TestFullyGrownFitsTrainingData(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := 400
	cols := [][]float64{make([]float64, n), make([]float64, n), make([]float64, n)}
	labels := make([]bool, n)
	for i := 0; i < n; i++ {
		for j := range cols {
			cols[j][i] = rng.NormFloat64()
		}
		labels[i] = cols[0][i]+cols[1][i]*cols[2][i] > 0.3
	}
	tr, _, binned := trainTree(cols, labels, Config{}, 256)
	wrong := 0
	for i := range labels {
		if (tr.ProbCols(binned, i) >= 0.5) != labels[i] {
			wrong++
		}
	}
	// A handful of bin-collision errors are acceptable.
	if wrong > n/50 {
		t.Errorf("fully grown tree misfits %d/%d training points", wrong, n)
	}
}
