package bayes

import (
	"math"
	"math/rand"
	"testing"

	"opprentice/internal/stats"
)

func makeGaussians(n int, rng *rand.Rand) (cols [][]float64, labels []bool) {
	cols = [][]float64{make([]float64, n), make([]float64, n)}
	labels = make([]bool, n)
	for i := 0; i < n; i++ {
		anomalous := rng.Intn(10) == 0
		labels[i] = anomalous
		mu := 0.0
		if anomalous {
			mu = 3
		}
		cols[0][i] = mu + rng.NormFloat64()
		cols[1][i] = mu + rng.NormFloat64()
	}
	return cols, labels
}

func TestBayesSeparates(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cols, labels := makeGaussians(3000, rng)
	m := Train(cols, labels)
	testCols, testLabels := makeGaussians(1000, rng)
	if auc := stats.AUCPR(m.ScoreAll(testCols), testLabels); auc < 0.85 {
		t.Errorf("AUCPR = %v, want ≥ 0.85", auc)
	}
}

func TestBayesScoreMatchesScoreAll(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cols, labels := makeGaussians(300, rng)
	m := Train(cols, labels)
	all := m.ScoreAll(cols)
	row := make([]float64, len(cols))
	for i := 0; i < 10; i++ {
		for j := range cols {
			row[j] = cols[j][i]
		}
		if got := m.Score(row); math.Abs(got-all[i]) > 1e-12 {
			t.Fatalf("Score(%d) = %v, ScoreAll = %v", i, got, all[i])
		}
	}
}

func TestBayesPriorReflectsImbalance(t *testing.T) {
	cols := [][]float64{{0, 0, 0, 0, 0, 0, 0, 0, 0, 5}}
	labels := []bool{false, false, false, false, false, false, false, false, false, true}
	m := Train(cols, labels)
	if m.priorLogOdds >= 0 {
		t.Errorf("prior log-odds = %v, want negative for rare anomalies", m.priorLogOdds)
	}
}

func TestBayesPanics(t *testing.T) {
	cases := []func(){
		func() { Train(nil, nil) },
		func() { Train([][]float64{{1, 2}}, []bool{true}) },
		func() { Train([][]float64{{1, 2}}, []bool{true, true}) }, // one class
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: want panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestBayesScorePanicsOnRowShape(t *testing.T) {
	m := Train([][]float64{{0, 1}}, []bool{false, true})
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	m.Score([]float64{1, 2})
}

func TestBayesConstantFeatureFinite(t *testing.T) {
	cols := [][]float64{{3, 3, 3, 3}, {0, 1, 2, 10}}
	labels := []bool{false, false, false, true}
	m := Train(cols, labels)
	s := m.Score([]float64{3, 10})
	if math.IsNaN(s) || math.IsInf(s, 0) {
		t.Errorf("score = %v, want finite", s)
	}
}
