// Package bayes implements the Gaussian naive Bayes classifier that Fig. 10
// compares against random forests: per-feature Gaussians per class under a
// feature-independence assumption. Its log-odds serve as anomaly scores.
package bayes

import (
	"fmt"
	"math"
)

// Model is a trained Gaussian naive Bayes classifier.
type Model struct {
	priorLogOdds float64
	mean         [2][]float64 // [class][feature]
	variance     [2][]float64
}

// Train fits class-conditional Gaussians on column-major features
// (cols[j][i] is feature j of sample i). Both classes must be present.
func Train(cols [][]float64, labels []bool) *Model {
	d := len(cols)
	if d == 0 {
		panic("bayes: no features")
	}
	n := len(cols[0])
	if len(labels) != n || n == 0 {
		panic(fmt.Sprintf("bayes: %d labels for %d samples", len(labels), n))
	}
	var count [2]int
	for _, l := range labels {
		if l {
			count[1]++
		} else {
			count[0]++
		}
	}
	if count[0] == 0 || count[1] == 0 {
		panic("bayes: training set must contain both classes")
	}
	m := &Model{
		priorLogOdds: math.Log(float64(count[1])) - math.Log(float64(count[0])),
	}
	for c := 0; c < 2; c++ {
		m.mean[c] = make([]float64, d)
		m.variance[c] = make([]float64, d)
	}
	for j, col := range cols {
		var sum [2]float64
		for i, v := range col {
			c := classOf(labels[i])
			sum[c] += v
		}
		for c := 0; c < 2; c++ {
			m.mean[c][j] = sum[c] / float64(count[c])
		}
		var ss [2]float64
		for i, v := range col {
			c := classOf(labels[i])
			dv := v - m.mean[c][j]
			ss[c] += dv * dv
		}
		for c := 0; c < 2; c++ {
			m.variance[c][j] = ss[c]/float64(count[c]) + 1e-9
		}
	}
	return m
}

func classOf(anomalous bool) int {
	if anomalous {
		return 1
	}
	return 0
}

// Score returns the anomaly log-odds of one dense feature row.
func (m *Model) Score(row []float64) float64 {
	if len(row) != len(m.mean[0]) {
		panic(fmt.Sprintf("bayes: row has %d features, want %d", len(row), len(m.mean[0])))
	}
	s := m.priorLogOdds
	for j, v := range row {
		s += logGauss(v, m.mean[1][j], m.variance[1][j]) -
			logGauss(v, m.mean[0][j], m.variance[0][j])
	}
	return s
}

// ScoreAll scores every sample of a column-major feature matrix.
func (m *Model) ScoreAll(cols [][]float64) []float64 {
	n := 0
	if len(cols) > 0 {
		n = len(cols[0])
	}
	out := make([]float64, n)
	for i := range out {
		s := m.priorLogOdds
		for j := range cols {
			v := cols[j][i]
			s += logGauss(v, m.mean[1][j], m.variance[1][j]) -
				logGauss(v, m.mean[0][j], m.variance[0][j])
		}
		out[i] = s
	}
	return out
}

func logGauss(x, mu, variance float64) float64 {
	d := x - mu
	return -0.5*math.Log(2*math.Pi*variance) - d*d/(2*variance)
}
