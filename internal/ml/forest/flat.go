package forest

// Flattened ensemble inference. Training grows each tree as its own node
// array (already root-at-0 and contiguous per tree); buildFlat then packs
// ALL trees of the ensemble into one contiguous node slice with absolute
// child indices. Inference walks that single array iteratively — no
// per-tree pointer chase, no closure indirection, no per-call allocation —
// so classifying the week's worth of points each retrain replays (§4.5)
// is branch-predictable and cache-friendly.

// flatNode is one packed node of the cross-tree flat array (16 bytes).
type flatNode struct {
	left, right int32   // absolute indices into Forest.flat (internal nodes)
	prob        float32 // leaf anomaly probability
	feature     uint16  // split feature (internal nodes)
	bin         uint8   // go left when code ≤ bin
	leaf        bool
}

// buildFlat packs every tree's nodes into f.flat and records each tree's
// root index in f.roots. Called once after Train and Load; inference then
// never touches f.trees.
func (f *Forest) buildFlat() {
	total := 0
	for _, t := range f.trees {
		total += t.NumNodes()
	}
	f.flat = make([]flatNode, 0, total)
	f.roots = make([]int32, len(f.trees))
	for ti, t := range f.trees {
		base := int32(len(f.flat))
		f.roots[ti] = base
		for i := 0; i < t.NumNodes(); i++ {
			nd := t.Node(i)
			f.flat = append(f.flat, flatNode{
				left:    base + nd.Left,
				right:   base + nd.Right,
				prob:    nd.Prob,
				feature: uint16(nd.Feature),
				bin:     nd.Bin,
				leaf:    nd.Leaf,
			})
		}
	}
}

// probCodes runs the whole ensemble over one binned sample and combines
// the leaves (mean leaf probability, or vote fraction under MajorityVote).
// Zero allocations; codes[j] is the sample's bin code for feature j.
func (f *Forest) probCodes(codes []uint8) float64 {
	flat := f.flat
	sum := 0.0
	for _, i := range f.roots {
		for {
			nd := &flat[i]
			if nd.leaf {
				if f.majorityVote {
					if nd.prob >= 0.5 {
						sum++
					}
				} else {
					sum += float64(nd.prob)
				}
				break
			}
			if codes[nd.feature] <= nd.bin {
				i = nd.left
			} else {
				i = nd.right
			}
		}
	}
	return sum / float64(len(f.roots))
}

// probColsRange classifies samples [lo, hi) of the column-major binned
// matrix into out, walking the flat array. Zero allocations.
func (f *Forest) probColsRange(binned [][]uint8, out []float64, lo, hi int) {
	flat := f.flat
	div := float64(len(f.roots))
	for s := lo; s < hi; s++ {
		sum := 0.0
		for _, i := range f.roots {
			for {
				nd := &flat[i]
				if nd.leaf {
					if f.majorityVote {
						if nd.prob >= 0.5 {
							sum++
						}
					} else {
						sum += float64(nd.prob)
					}
					break
				}
				if binned[nd.feature][s] <= nd.bin {
					i = nd.left
				} else {
					i = nd.right
				}
			}
		}
		out[s] = sum / div
	}
}
