package forest

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"sort"
)

// MultiClass is a one-vs-rest multi-class head built from binary random
// forests: one forest per class code present in the training labels, sharing
// the 133-severity feature matrix with the verdict forest. Prediction is the
// argmax of the per-class vote fractions, with an abstain floor: when no
// class clears 0.5 the head predicts class 0 ("none").
type MultiClass struct {
	classes []uint8
	heads   []*Forest
}

// multiAbstain is the minimum winning vote fraction: below it the head
// abstains and predicts class 0. One-vs-rest forests are each trained on a
// heavily imbalanced binary problem, so a sub-majority winner means "none of
// the heads recognized this point".
const multiAbstain = 0.5

// headSeedStride decorrelates the per-class forests: head k trains with
// cfg.Seed + k·headSeedStride so no two heads share per-tree RNG streams.
const headSeedStride = 7_777_777

// TrainMulti trains a one-vs-rest multi-class head on column-major features
// and per-row class codes (0 = none). One binary forest is trained per
// non-zero class code that has at least one positive and one negative row;
// codes absent from the labels get no head and can never be predicted. It
// returns nil when no trainable class exists (all rows are class 0, or a
// single class covers every row) — callers treat a nil head as "typing
// unavailable".
func TrainMulti(cols [][]float64, classes []uint8, cfg Config) *MultiClass {
	if len(cols) == 0 || len(classes) != len(cols[0]) {
		panic(fmt.Sprintf("forest: %d class labels for %d rows", len(classes), rowsOf(cols)))
	}
	present := map[uint8]int{}
	for _, c := range classes {
		present[c]++
	}
	codes := make([]uint8, 0, len(present))
	for c, n := range present {
		if c == 0 || n == len(classes) {
			continue // class 0 is the abstain target; a class covering every row has no negatives
		}
		codes = append(codes, c)
	}
	if len(codes) == 0 {
		return nil
	}
	sort.Slice(codes, func(i, j int) bool { return codes[i] < codes[j] })
	mc := &MultiClass{classes: codes, heads: make([]*Forest, len(codes))}
	labels := make([]bool, len(classes))
	for k, code := range codes {
		for i, c := range classes {
			labels[i] = c == code
		}
		hcfg := cfg
		hcfg.Seed = cfg.Seed + int64(k+1)*headSeedStride
		mc.heads[k] = Train(cols, labels, hcfg)
	}
	return mc
}

// rowsOf reports the row count of a column-major matrix (0 when empty).
func rowsOf(cols [][]float64) int {
	if len(cols) == 0 {
		return 0
	}
	return len(cols[0])
}

// PredictRow classifies one feature row: the class whose head votes the
// highest fraction, or 0 when no head clears the abstain floor. It allocates
// nothing (each head's Prob is allocation-free for ≤ 256 features), so it is
// safe on the scoring hot path.
func (mc *MultiClass) PredictRow(row []float64) (uint8, float64) {
	best, bestProb := uint8(0), 0.0
	for k, h := range mc.heads {
		if p := h.Prob(row); p > bestProb {
			best, bestProb = mc.classes[k], p
		}
	}
	if bestProb < multiAbstain {
		return 0, bestProb
	}
	return best, bestProb
}

// Classes returns the class codes with a trained head, ascending.
func (mc *MultiClass) Classes() []uint8 {
	out := make([]uint8, len(mc.classes))
	copy(out, mc.classes)
	return out
}

// multiDTO is the gob wire form of a multi-class head: each per-class forest
// rides as its own Save payload.
type multiDTO struct {
	Version int
	Classes []uint8
	Heads   [][]byte
}

// multiSerializationVersion guards against loading incompatible snapshots.
const multiSerializationVersion = 1

// Save writes the multi-class head to w. Pair with LoadMulti.
func (mc *MultiClass) Save(w io.Writer) error {
	dto := multiDTO{
		Version: multiSerializationVersion,
		Classes: mc.classes,
		Heads:   make([][]byte, len(mc.heads)),
	}
	for k, h := range mc.heads {
		var buf bytes.Buffer
		if err := h.Save(&buf); err != nil {
			return err
		}
		dto.Heads[k] = buf.Bytes()
	}
	return gob.NewEncoder(w).Encode(dto)
}

// LoadMulti reads a multi-class head previously written by Save.
func LoadMulti(r io.Reader) (*MultiClass, error) {
	var dto multiDTO
	if err := gob.NewDecoder(r).Decode(&dto); err != nil {
		return nil, fmt.Errorf("forest: decode multiclass: %w", err)
	}
	if dto.Version != multiSerializationVersion {
		return nil, fmt.Errorf("forest: multiclass snapshot version %d, want %d", dto.Version, multiSerializationVersion)
	}
	if len(dto.Classes) == 0 || len(dto.Classes) != len(dto.Heads) {
		return nil, fmt.Errorf("forest: multiclass snapshot has %d classes for %d heads", len(dto.Classes), len(dto.Heads))
	}
	mc := &MultiClass{classes: dto.Classes, heads: make([]*Forest, len(dto.Heads))}
	for k, b := range dto.Heads {
		h, err := Load(bytes.NewReader(b))
		if err != nil {
			return nil, err
		}
		mc.heads[k] = h
	}
	return mc, nil
}
