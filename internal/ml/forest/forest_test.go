package forest

import (
	"math/rand"
	"testing"

	"opprentice/internal/stats"
)

// makeBlobs builds a 2-feature dataset where anomalies sit in a separable
// region, plus optional noise features.
func makeBlobs(n, noiseFeatures int, rng *rand.Rand) (cols [][]float64, labels []bool) {
	cols = make([][]float64, 2+noiseFeatures)
	for j := range cols {
		cols[j] = make([]float64, n)
	}
	labels = make([]bool, n)
	for i := 0; i < n; i++ {
		anomalous := rng.Intn(10) == 0
		labels[i] = anomalous
		if anomalous {
			cols[0][i] = 4 + rng.NormFloat64()
			cols[1][i] = 4 + rng.NormFloat64()
		} else {
			cols[0][i] = rng.NormFloat64()
			cols[1][i] = rng.NormFloat64()
		}
		for j := 2; j < len(cols); j++ {
			cols[j][i] = rng.NormFloat64()
		}
	}
	return cols, labels
}

func TestForestSeparatesBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cols, labels := makeBlobs(2000, 0, rng)
	f := Train(cols, labels, Config{Trees: 30, Seed: 1})
	testCols, testLabels := makeBlobs(1000, 0, rng)
	scores := f.ProbAll(testCols)
	if auc := stats.AUCPR(scores, testLabels); auc < 0.9 {
		t.Errorf("AUCPR = %v, want ≥ 0.9", auc)
	}
}

// The paper's central ML claim: random forests stay accurate when many
// irrelevant/redundant features are added (Fig. 10).
func TestForestRobustToIrrelevantFeatures(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cols, labels := makeBlobs(2000, 40, rng)
	f := Train(cols, labels, Config{Trees: 40, Seed: 2})
	testCols, testLabels := makeBlobs(1000, 40, rng)
	scores := f.ProbAll(testCols)
	if auc := stats.AUCPR(scores, testLabels); auc < 0.85 {
		t.Errorf("AUCPR with 40 noise features = %v, want ≥ 0.85", auc)
	}
}

func TestForestDeterministicSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cols, labels := makeBlobs(500, 2, rng)
	a := Train(cols, labels, Config{Trees: 10, Seed: 9})
	b := Train(cols, labels, Config{Trees: 10, Seed: 9})
	sa := a.ProbAll(cols)
	sb := b.ProbAll(cols)
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("same seed diverges at sample %d: %v vs %v", i, sa[i], sb[i])
		}
	}
}

func TestForestProbMatchesProbAll(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	cols, labels := makeBlobs(400, 1, rng)
	f := Train(cols, labels, Config{Trees: 15, Seed: 4})
	all := f.ProbAll(cols)
	row := make([]float64, len(cols))
	for i := 0; i < 20; i++ {
		for j := range cols {
			row[j] = cols[j][i]
		}
		if got := f.Prob(row); got != all[i] {
			t.Fatalf("Prob(%d) = %v, ProbAll = %v", i, got, all[i])
		}
	}
}

func TestForestProbabilityIsVoteFraction(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cols, labels := makeBlobs(500, 0, rng)
	f := Train(cols, labels, Config{Trees: 40, Seed: 5, MajorityVote: true})
	if f.NumTrees() != 40 {
		t.Fatalf("NumTrees = %d", f.NumTrees())
	}
	scores := f.ProbAll(cols)
	for i, s := range scores {
		if s < 0 || s > 1 {
			t.Fatalf("score[%d] = %v outside [0,1]", i, s)
		}
		// Vote fractions are multiples of 1/40.
		scaled := s * 40
		if diff := scaled - float64(int(scaled+0.5)); diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("score[%d] = %v is not a /40 vote fraction", i, s)
		}
	}
}

func TestForestPanicsOnBadShapes(t *testing.T) {
	cases := []func(){
		func() { Train(nil, nil, Config{}) },
		func() { Train([][]float64{{1, 2}}, []bool{true}, Config{}) },
		func() { Train([][]float64{{1, 2}, {1}}, []bool{true, false}, Config{}) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: want panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestForestProbPanicsOnRowShape(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	cols, labels := makeBlobs(100, 0, rng)
	f := Train(cols, labels, Config{Trees: 5, Seed: 6})
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	f.Prob([]float64{1})
}

func TestForestSingleClassTrainsAndPredictsThatClass(t *testing.T) {
	cols := [][]float64{{1, 2, 3, 4, 5}}
	labels := []bool{false, false, false, false, false}
	f := Train(cols, labels, Config{Trees: 5, Seed: 7})
	if got := f.Prob([]float64{3}); got != 0 {
		t.Errorf("all-normal training: prob = %v, want 0", got)
	}
}

func TestImportancesIdentifyInformativeFeatures(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	cols, labels := makeBlobs(1500, 10, rng) // features 0,1 informative, 10 noise
	f := Train(cols, labels, Config{Trees: 25, Seed: 31})
	imp := f.Importances()
	if len(imp) != len(cols) {
		t.Fatalf("importances len = %d", len(imp))
	}
	sum := 0.0
	for _, v := range imp {
		sum += v
	}
	if sum < 0.99 || sum > 1.01 {
		t.Errorf("importances sum = %v, want 1", sum)
	}
	informative := imp[0] + imp[1]
	if informative < 0.5 {
		t.Errorf("informative features carry %v of importance, want majority", informative)
	}
}
