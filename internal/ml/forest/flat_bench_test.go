package forest

// Flattened-inference benchmarks. BenchmarkForestProbFlat is the acceptance
// benchmark for the contiguous node array: one dense 133-feature row (the
// paper's configuration count) through a 60-tree forest, 0 allocs/op.

import (
	"math/rand"
	"testing"
)

// Pinned RNG seeds — seed policy (DESIGN.md "Seeds and reproducibility"):
// bench fixtures feeding BENCH_baseline.json use fixed, named seeds so the
// measured forest shape (and therefore ns/op and the alloc count) is stable
// across runs; changing either seed requires regenerating the baseline.
const (
	benchDataSeed   int64 = 11 // feature matrix + probe row
	benchForestSeed int64 = 12 // bootstrap/split sampling inside Train
)

func benchForest(b *testing.B, d, n, trees int) (*Forest, []float64, [][]float64) {
	b.Helper()
	rng := rand.New(rand.NewSource(benchDataSeed))
	cols := make([][]float64, d)
	labels := make([]bool, n)
	for j := range cols {
		cols[j] = make([]float64, n)
		for i := range cols[j] {
			cols[j][i] = rng.NormFloat64()
		}
	}
	for i := range labels {
		labels[i] = cols[0][i]+cols[1][i] > 2
	}
	f := Train(cols, labels, Config{Trees: trees, Seed: benchForestSeed})
	row := make([]float64, d)
	for j := range row {
		row[j] = rng.NormFloat64()
	}
	return f, row, cols
}

func BenchmarkForestProbFlat(b *testing.B) {
	f, row, _ := benchForest(b, 133, 2000, 60)
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = f.Prob(row)
	}
	_ = sink
}

func BenchmarkForestProbAllFlat(b *testing.B) {
	for _, n := range []int{168, 2016} { // one week / twelve weeks of hourly points
		f, _, cols := benchForest(b, 133, n, 60)
		b.Run(map[int]string{168: "week", 2016: "12weeks"}[n], func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f.ProbAll(cols)
			}
		})
	}
}
