package forest

// Tests for the flattened inference path: walking the one contiguous
// cross-tree node array must agree exactly with traversing each tree's own
// node array, and the per-point hot path must not allocate.

import (
	"math"
	"math/rand"
	"testing"
)

// refProb combines the ensemble the slow way — one tree at a time through
// the tree package's own traversal — as the ground truth for the flat walk.
func refProb(f *Forest, row []float64) float64 {
	codes := make([]uint8, len(row))
	for j, v := range row {
		codes[j] = f.binner.Code(j, v)
	}
	sum := 0.0
	for _, t := range f.trees {
		p := t.Prob(func(j int) uint8 { return codes[j] })
		if f.majorityVote {
			if p >= 0.5 {
				sum++
			}
		} else {
			sum += p
		}
	}
	return sum / float64(len(f.trees))
}

func TestFlatMatchesTreeTraversal(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cols, labels := makeBlobs(800, 6, rng)
	for _, mv := range []bool{false, true} {
		f := Train(cols, labels, Config{Trees: 15, Seed: 3, MajorityVote: mv})
		if len(f.flat) == 0 || len(f.roots) != f.NumTrees() {
			t.Fatalf("majorityVote=%v: flat array not built (%d nodes, %d roots)", mv, len(f.flat), len(f.roots))
		}
		row := make([]float64, len(cols))
		for i := 0; i < 200; i++ {
			for j := range row {
				row[j] = 6 * rng.NormFloat64()
			}
			got, want := f.Prob(row), refProb(f, row)
			if got != want {
				t.Fatalf("majorityVote=%v row %d: flat %v, reference %v", mv, i, got, want)
			}
		}
	}
}

// TestProbAllSerialAndParallelAgree exercises both ProbAll paths — the
// serial small-window path and the row-chunked parallel one — against the
// per-row Prob result.
func TestProbAllSerialAndParallelAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	// Large enough to cross probAllSerialThreshold.
	n := 2 * probAllSerialThreshold
	cols, labels := makeBlobs(n, 4, rng)
	f := Train(cols, labels, Config{Trees: 11, Seed: 4})

	check := func(sub [][]float64) {
		t.Helper()
		out := f.ProbAll(sub)
		row := make([]float64, len(sub))
		for i := range out {
			for j := range sub {
				row[j] = sub[j][i]
			}
			if want := f.Prob(row); out[i] != want {
				t.Fatalf("sample %d: ProbAll %v, Prob %v", i, out[i], want)
			}
		}
	}
	check(cols) // parallel path
	small := make([][]float64, len(cols))
	for j := range cols {
		small[j] = cols[j][:probAllSerialThreshold/4]
	}
	check(small) // serial path
}

// TestProbRowsIntoMatchesProb pins the batched row-major path to the
// per-row one: classifying a packed batch must be bit-identical to calling
// Prob on each row, and must not allocate.
func TestProbRowsIntoMatchesProb(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	cols, labels := makeBlobs(600, 7, rng)
	for _, mv := range []bool{false, true} {
		f := Train(cols, labels, Config{Trees: 13, Seed: 5, MajorityVote: mv})
		d := len(cols)
		for _, n := range []int{1, 2, 17, 64} {
			rows := make([]float64, n*d)
			for i := range rows {
				rows[i] = 6 * rng.NormFloat64()
			}
			out := make([]float64, n)
			f.ProbRowsInto(rows, d, out)
			for s := 0; s < n; s++ {
				if want := f.Prob(rows[s*d : (s+1)*d]); out[s] != want {
					t.Fatalf("majorityVote=%v n=%d sample %d: ProbRowsInto %v, Prob %v", mv, n, s, out[s], want)
				}
			}
			if allocs := testing.AllocsPerRun(50, func() { f.ProbRowsInto(rows, d, out) }); allocs != 0 {
				t.Fatalf("ProbRowsInto allocates %.1f objects per call, want 0", allocs)
			}
		}
	}
}

// TestProbZeroAllocs is the acceptance criterion for the flattened hot
// path: classifying one dense row of the paper-scale 133-configuration
// feature vector allocates nothing.
func TestProbZeroAllocs(t *testing.T) {
	const d = 133
	rng := rand.New(rand.NewSource(7))
	cols := make([][]float64, d)
	labels := make([]bool, 600)
	for j := range cols {
		cols[j] = make([]float64, len(labels))
		for i := range cols[j] {
			cols[j][i] = rng.NormFloat64()
		}
	}
	for i := range labels {
		labels[i] = cols[0][i] > 1.2
	}
	f := Train(cols, labels, Config{Trees: 20, Seed: 8})

	row := make([]float64, d)
	for j := range row {
		row[j] = rng.NormFloat64()
	}
	var sink float64
	allocs := testing.AllocsPerRun(200, func() { sink = f.Prob(row) })
	if allocs != 0 {
		t.Fatalf("Prob allocates %.1f objects per call, want 0", allocs)
	}
	if math.IsNaN(sink) {
		t.Fatal("Prob returned NaN")
	}
}
