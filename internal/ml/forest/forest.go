// Package forest implements the random forest classifier Opprentice trains
// on detector severities (§4.4.2): an ensemble of fully grown CART trees,
// each trained on a bootstrap sample and considering a random √d feature
// subset at every split, combined by majority vote. The vote fraction is
// the anomaly probability that the cThld of §4.5 thresholds.
package forest

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"opprentice/internal/ml/tree"
)

// Config controls forest training. The zero value trains the paper-style
// default: 60 fully grown trees with √d features per split.
type Config struct {
	// Trees is the ensemble size (default 60).
	Trees int
	// MajorityVote makes Prob the fraction of trees whose leaf classifies
	// anomalous — the combination rule as §4.4.2 words it. The default
	// (false) averages the trees' leaf probabilities, which is what the
	// paper's scikit-learn implementation computes; it is smoother and
	// stays calibrated across weekly retrains.
	MajorityVote bool
	// FeaturesPerSplit is the per-split feature subset size
	// (default √d rounded up).
	FeaturesPerSplit int
	// MinLeaf is the minimum samples per leaf (default 1: fully grown).
	MinLeaf int
	// MaxDepth limits depth; 0 (default) grows fully.
	MaxDepth int
	// MaxBins is the feature quantization granularity (default 256).
	MaxBins int
	// Seed makes training deterministic.
	Seed int64
	// Workers bounds training parallelism (default GOMAXPROCS).
	Workers int
}

func (c Config) withDefaults(numFeatures int) Config {
	if c.Trees <= 0 {
		c.Trees = 60
	}
	if c.FeaturesPerSplit <= 0 {
		c.FeaturesPerSplit = int(math.Ceil(math.Sqrt(float64(numFeatures))))
	}
	if c.MinLeaf <= 0 {
		c.MinLeaf = 1
	}
	if c.MaxBins <= 0 {
		c.MaxBins = tree.MaxBins
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// Forest is a trained random forest.
type Forest struct {
	trees        []*tree.Tree
	binner       *tree.Binner
	majorityVote bool

	// flat packs every tree's nodes into one contiguous array (roots[t] is
	// tree t's root index), built once after training or loading. All
	// inference walks this array iteratively; trees is kept only for
	// importances, serialization, and introspection.
	flat  []flatNode
	roots []int32
}

// Train fits a forest on column-major features (cols[j][i] is feature j of
// sample i) and point labels. It panics on shape mismatches, which are
// always caller bugs.
func Train(cols [][]float64, labels []bool, cfg Config) *Forest {
	if len(cols) == 0 {
		panic("forest: no features")
	}
	n := len(cols[0])
	for j, col := range cols {
		if len(col) != n {
			panic(fmt.Sprintf("forest: feature %d has %d samples, want %d", j, len(col), n))
		}
	}
	if len(labels) != n {
		panic(fmt.Sprintf("forest: %d labels for %d samples", len(labels), n))
	}
	if n == 0 {
		panic("forest: no samples")
	}
	cfg = cfg.withDefaults(len(cols))

	binner := tree.NewBinner(cols, cfg.MaxBins)
	binned := binner.Bin(cols)
	f := &Forest{trees: make([]*tree.Tree, cfg.Trees), binner: binner, majorityVote: cfg.MajorityVote}

	// Deterministic parallel training: every tree gets its own seeded rng.
	var wg sync.WaitGroup
	sem := make(chan struct{}, cfg.Workers)
	for t := 0; t < cfg.Trees; t++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(t int) {
			defer wg.Done()
			defer func() { <-sem }()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(t)*1_000_003))
			idx := make([]int, n)
			for i := range idx {
				idx[i] = rng.Intn(n) // bootstrap sample
			}
			f.trees[t] = tree.Grow(binned, labels, idx, tree.Config{
				MaxDepth:         cfg.MaxDepth,
				MinLeaf:          cfg.MinLeaf,
				FeaturesPerSplit: cfg.FeaturesPerSplit,
				Rng:              rng,
			})
		}(t)
	}
	wg.Wait()
	f.buildFlat()
	return f
}

// NumTrees returns the ensemble size.
func (f *Forest) NumTrees() int { return len(f.trees) }

// Importances returns the mean gini importance per feature across the
// ensemble, normalized to sum to 1 (all zeros if no tree ever split).
// Features with high importance are the detector configurations the forest
// actually relies on — the automated counterpart of reading Fig 5's tree.
func (f *Forest) Importances() []float64 {
	if len(f.trees) == 0 {
		return nil
	}
	sum := make([]float64, f.binner.NumFeatures())
	for _, t := range f.trees {
		for j, v := range t.Importances() {
			sum[j] += v
		}
	}
	total := 0.0
	for _, v := range sum {
		total += v
	}
	if total > 0 {
		for j := range sum {
			sum[j] /= total
		}
	}
	return sum
}

// Prob returns the anomaly probability of a single sample given as a dense
// feature row: by default the mean of the trees' leaf probabilities, or the
// fraction of anomaly-voting trees under Config.MajorityVote (§4.4.2).
// It allocates nothing for rows up to 256 features (the per-point hot path
// of online classification).
func (f *Forest) Prob(row []float64) float64 {
	if len(row) != f.binner.NumFeatures() {
		panic(fmt.Sprintf("forest: row has %d features, want %d", len(row), f.binner.NumFeatures()))
	}
	// Stack-allocated codes buffer: probCodes does not retain its argument,
	// so buf never escapes for the common d ≤ 256 case.
	var buf [256]uint8
	var codes []uint8
	if len(row) <= len(buf) {
		codes = buf[:len(row)]
	} else {
		codes = make([]uint8, len(row))
	}
	for j, v := range row {
		codes[j] = f.binner.Code(j, v)
	}
	return f.probCodes(codes)
}

// ProbRowsInto classifies n = len(rows)/d samples packed row-major into
// rows (sample s occupies rows[s*d : (s+1)*d]) and writes their anomaly
// probabilities into out[:n]. It is the batched form of Prob — one call per
// ingest batch instead of one per point — and is bit-identical to calling
// Prob on each row in order. Zero allocations for d ≤ 256.
func (f *Forest) ProbRowsInto(rows []float64, d int, out []float64) {
	if d != f.binner.NumFeatures() {
		panic(fmt.Sprintf("forest: rows have %d features, want %d", d, f.binner.NumFeatures()))
	}
	n := len(rows) / d
	if len(rows) != n*d {
		panic(fmt.Sprintf("forest: %d row values not a multiple of %d features", len(rows), d))
	}
	if len(out) < n {
		panic(fmt.Sprintf("forest: out holds %d probabilities, need %d", len(out), n))
	}
	var buf [256]uint8
	var codes []uint8
	if d <= len(buf) {
		codes = buf[:d]
	} else {
		codes = make([]uint8, d)
	}
	for s := 0; s < n; s++ {
		row := rows[s*d : (s+1)*d]
		for j, v := range row {
			codes[j] = f.binner.Code(j, v)
		}
		out[s] = f.probCodes(codes)
	}
}

// probAllSerialThreshold is the sample count below which ProbAll stays on
// the calling goroutine: a sample costs roughly trees × depth node visits
// (~10⁴ ns), so spawning workers for a small replay window (the common
// weekly-retrain case) would cost more in scheduling than it saves.
const probAllSerialThreshold = 512

// ProbAll classifies every sample of a column-major feature matrix,
// returning one vote fraction per sample. Large batches chunk rows across
// GOMAXPROCS workers; small windows run serially to avoid goroutine
// overhead.
func (f *Forest) ProbAll(cols [][]float64) []float64 {
	binned := f.binner.Bin(cols)
	n := 0
	if len(cols) > 0 {
		n = len(cols[0])
	}
	out := make([]float64, n)
	if n <= probAllSerialThreshold {
		f.probColsRange(binned, out, 0, n)
		return out
	}
	workers := runtime.GOMAXPROCS(0)
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	if chunk < 1 {
		chunk = 1
	}
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			f.probColsRange(binned, out, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	return out
}
