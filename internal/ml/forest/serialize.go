package forest

import (
	"encoding/gob"
	"fmt"
	"io"

	"opprentice/internal/ml/tree"
)

// forestDTO is the gob wire form of a trained forest.
type forestDTO struct {
	Version      int
	Trees        [][]byte
	Binner       []byte
	MajorityVote bool
}

// serializationVersion guards against loading incompatible snapshots.
const serializationVersion = 1

// Save writes the trained forest (trees and feature binner) to w, so a
// deployment can restart without retraining.
func (f *Forest) Save(w io.Writer) error {
	dto := forestDTO{Version: serializationVersion, Trees: make([][]byte, len(f.trees)), MajorityVote: f.majorityVote}
	for i, t := range f.trees {
		b, err := t.MarshalBinary()
		if err != nil {
			return err
		}
		dto.Trees[i] = b
	}
	b, err := f.binner.MarshalBinary()
	if err != nil {
		return err
	}
	dto.Binner = b
	return gob.NewEncoder(w).Encode(dto)
}

// Load reads a forest previously written by Save.
func Load(r io.Reader) (*Forest, error) {
	var dto forestDTO
	if err := gob.NewDecoder(r).Decode(&dto); err != nil {
		return nil, fmt.Errorf("forest: decode: %w", err)
	}
	if dto.Version != serializationVersion {
		return nil, fmt.Errorf("forest: snapshot version %d, want %d", dto.Version, serializationVersion)
	}
	if len(dto.Trees) == 0 {
		return nil, fmt.Errorf("forest: snapshot has no trees")
	}
	f := &Forest{trees: make([]*tree.Tree, len(dto.Trees)), binner: new(tree.Binner), majorityVote: dto.MajorityVote}
	for i, b := range dto.Trees {
		t := new(tree.Tree)
		if err := t.UnmarshalBinary(b); err != nil {
			return nil, err
		}
		f.trees[i] = t
	}
	if err := f.binner.UnmarshalBinary(dto.Binner); err != nil {
		return nil, err
	}
	// The flat inference array is derived state: rebuild rather than ship it.
	f.buildFlat()
	return f, nil
}
