package forest

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"testing"
)

func TestForestSaveLoadWithinPackage(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	cols, labels := makeBlobs(500, 2, rng)
	for _, mv := range []bool{false, true} {
		f := Train(cols, labels, Config{Trees: 7, Seed: 1, MajorityVote: mv})
		var buf bytes.Buffer
		if err := f.Save(&buf); err != nil {
			t.Fatal(err)
		}
		g, err := Load(&buf)
		if err != nil {
			t.Fatal(err)
		}
		a, b := f.ProbAll(cols), g.ProbAll(cols)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("majorityVote=%v sample %d: %v vs %v", mv, i, a[i], b[i])
			}
		}
	}
}

func TestForestLoadRejectsEmptyAndVersion(t *testing.T) {
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Error("empty snapshot accepted")
	}
	// A snapshot with no trees must be rejected even if it decodes.
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(forestDTO{Version: serializationVersion}); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&buf); err == nil {
		t.Error("tree-less snapshot accepted")
	}
	// A wrong-version snapshot must be rejected.
	buf.Reset()
	if err := gob.NewEncoder(&buf).Encode(forestDTO{Version: 99, Trees: [][]byte{{1}}}); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&buf); err == nil {
		t.Error("future-version snapshot accepted")
	}
}
