package forest

import (
	"bytes"
	"math/rand"
	"testing"
)

// multiSeed pins the RNG of the multiclass tests (PR 5 seed policy).
const multiSeed int64 = 20260809

// multiFixture builds a 3-feature, 4-class training set with well-separated
// clusters so a small forest can classify it reliably.
func multiFixture(rng *rand.Rand, n int) (cols [][]float64, classes []uint8) {
	cols = make([][]float64, 3)
	for j := range cols {
		cols[j] = make([]float64, n)
	}
	classes = make([]uint8, n)
	for i := 0; i < n; i++ {
		c := uint8(rng.Intn(4)) // 0 = none, 1..3 = types
		classes[i] = c
		base := float64(c) * 10
		for j := range cols {
			cols[j][i] = base + float64(j) + 0.1*rng.NormFloat64()
		}
	}
	return cols, classes
}

func TestMultiClassTrainPredict(t *testing.T) {
	rng := rand.New(rand.NewSource(multiSeed))
	cols, classes := multiFixture(rng, 400)
	mc := TrainMulti(cols, classes, Config{Trees: 20, Seed: multiSeed})
	if mc == nil {
		t.Fatal("TrainMulti returned nil on a trainable set")
	}
	if got := mc.Classes(); len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("Classes() = %v, want [1 2 3]", got)
	}
	correct := 0
	row := make([]float64, 3)
	for i := range classes {
		for j := range row {
			row[j] = cols[j][i]
		}
		if got, _ := mc.PredictRow(row); got == classes[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(classes)); acc < 0.9 {
		t.Fatalf("training-set accuracy %.3f, want ≥ 0.9 on separated clusters", acc)
	}
}

func TestMultiClassUntrainable(t *testing.T) {
	cols := [][]float64{{1, 2, 3, 4}, {5, 6, 7, 8}}
	if mc := TrainMulti(cols, []uint8{0, 0, 0, 0}, Config{Trees: 5, Seed: multiSeed}); mc != nil {
		t.Error("all-none labels should yield a nil head")
	}
	if mc := TrainMulti(cols, []uint8{2, 2, 2, 2}, Config{Trees: 5, Seed: multiSeed}); mc != nil {
		t.Error("a single class covering every row has no negatives; want nil head")
	}
}

func TestMultiClassSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(multiSeed + 1))
	cols, classes := multiFixture(rng, 200)
	mc := TrainMulti(cols, classes, Config{Trees: 10, Seed: multiSeed})
	var buf bytes.Buffer
	if err := mc.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadMulti(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	row := make([]float64, 3)
	for i := range classes {
		for j := range row {
			row[j] = cols[j][i]
		}
		c1, p1 := mc.PredictRow(row)
		c2, p2 := got.PredictRow(row)
		if c1 != c2 || p1 != p2 {
			t.Fatalf("row %d: prediction diverged after round trip: (%d, %v) vs (%d, %v)", i, c1, p1, c2, p2)
		}
	}
}

func TestMultiClassPredictRowZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(multiSeed + 2))
	cols, classes := multiFixture(rng, 200)
	mc := TrainMulti(cols, classes, Config{Trees: 10, Seed: multiSeed})
	row := []float64{10, 11, 12}
	if allocs := testing.AllocsPerRun(100, func() { mc.PredictRow(row) }); allocs != 0 {
		t.Fatalf("PredictRow allocates %.1f/op, want 0", allocs)
	}
}

func TestLoadMultiRejectsDamage(t *testing.T) {
	rng := rand.New(rand.NewSource(multiSeed + 3))
	cols, classes := multiFixture(rng, 100)
	mc := TrainMulti(cols, classes, Config{Trees: 5, Seed: multiSeed})
	var buf bytes.Buffer
	if err := mc.Save(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if _, err := LoadMulti(bytes.NewReader(b[:len(b)/2])); err == nil {
		t.Error("truncated multiclass snapshot loaded without error")
	}
	if _, err := LoadMulti(bytes.NewReader([]byte("not a snapshot"))); err == nil {
		t.Error("garbage multiclass snapshot loaded without error")
	}
}
