// Package featsel implements mRMR feature selection (max-relevance,
// min-redundancy [51]) over detector severities. The paper leaves feature
// selection to future work (§4.4.1) because random forests tolerate
// irrelevant and redundant features on their own; this package makes the
// deferred experiment runnable: select k of the 133 configurations and
// compare accuracy and cost against the full pool.
package featsel

import (
	"fmt"
	"math"
	"sort"

	"opprentice/internal/stats"
)

// Bins is the discretization used for the mutual-information estimates.
const Bins = 16

// MRMR greedily selects k features maximizing relevance to the labels minus
// mean redundancy with already-selected features:
//
//	score(f) = I(f; y) − mean_{s ∈ S} I(f; s)
//
// cols are column-major features (NaN tolerated). The returned indices are
// in selection order (most valuable first).
func MRMR(cols [][]float64, labels []bool, k int) []int {
	d := len(cols)
	if d == 0 || k <= 0 {
		return nil
	}
	if k > d {
		k = d
	}
	relevance := make([]float64, d)
	for j, col := range cols {
		relevance[j] = stats.MutualInformation(col, labels, Bins)
	}
	selected := make([]int, 0, k)
	inSet := make([]bool, d)
	// Cache pairwise redundancy sums incrementally: redSum[j] accumulates
	// Σ_{s ∈ S} I(j; s).
	redSum := make([]float64, d)

	// Seed with the most relevant feature.
	best := argmax(relevance, inSet)
	selected = append(selected, best)
	inSet[best] = true

	for len(selected) < k {
		last := selected[len(selected)-1]
		for j := 0; j < d; j++ {
			if !inSet[j] {
				redSum[j] += featureMI(cols[j], cols[last])
			}
		}
		bestJ, bestScore := -1, math.Inf(-1)
		for j := 0; j < d; j++ {
			if inSet[j] {
				continue
			}
			score := relevance[j] - redSum[j]/float64(len(selected))
			if score > bestScore {
				bestJ, bestScore = j, score
			}
		}
		if bestJ < 0 {
			break
		}
		selected = append(selected, bestJ)
		inSet[bestJ] = true
	}
	return selected
}

// TopRelevance returns the k features with the highest mutual information
// with the labels (the ordering Fig. 10 uses), ignoring redundancy.
func TopRelevance(cols [][]float64, labels []bool, k int) []int {
	d := len(cols)
	if d == 0 || k <= 0 {
		return nil
	}
	if k > d {
		k = d
	}
	type pair struct {
		j  int
		mi float64
	}
	ps := make([]pair, d)
	for j, col := range cols {
		ps[j] = pair{j, stats.MutualInformation(col, labels, Bins)}
	}
	sort.SliceStable(ps, func(a, b int) bool { return ps[a].mi > ps[b].mi })
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = ps[i].j
	}
	return out
}

// Select projects a column-major matrix onto the chosen feature indices
// (shared storage).
func Select(cols [][]float64, idx []int) [][]float64 {
	out := make([][]float64, len(idx))
	for i, j := range idx {
		if j < 0 || j >= len(cols) {
			panic(fmt.Sprintf("featsel: index %d out of %d features", j, len(cols)))
		}
		out[i] = cols[j]
	}
	return out
}

// featureMI estimates I(X; Y) between two continuous features by
// equal-frequency discretization of both into Bins buckets.
func featureMI(x, y []float64) float64 {
	n := len(x)
	if n == 0 || n != len(y) {
		return 0
	}
	bx := discretize(x)
	by := discretize(y)
	var joint [Bins + 1][Bins + 1]float64
	var px, py [Bins + 1]float64
	for i := 0; i < n; i++ {
		joint[bx[i]][by[i]]++
		px[bx[i]]++
		py[by[i]]++
	}
	inv := 1 / float64(n)
	mi := 0.0
	for a := 0; a <= Bins; a++ {
		if px[a] == 0 {
			continue
		}
		for b := 0; b <= Bins; b++ {
			if joint[a][b] == 0 {
				continue
			}
			pxy := joint[a][b] * inv
			mi += pxy * math.Log(pxy/(px[a]*inv*py[b]*inv))
		}
	}
	if mi < 0 {
		return 0
	}
	return mi
}

// discretize maps values to equal-frequency buckets 0..Bins-1, NaN to Bins.
func discretize(x []float64) []int {
	finite := make([]float64, 0, len(x))
	for _, v := range x {
		if !math.IsNaN(v) {
			finite = append(finite, v)
		}
	}
	sort.Float64s(finite)
	edges := make([]float64, 0, Bins-1)
	for b := 1; b < Bins; b++ {
		if len(finite) == 0 {
			break
		}
		pos := b * len(finite) / Bins
		if pos >= len(finite) {
			pos = len(finite) - 1
		}
		e := finite[pos]
		if len(edges) == 0 || e > edges[len(edges)-1] {
			edges = append(edges, e)
		}
	}
	out := make([]int, len(x))
	for i, v := range x {
		if math.IsNaN(v) {
			out[i] = Bins
			continue
		}
		out[i] = sort.SearchFloat64s(edges, v)
	}
	return out
}

func argmax(xs []float64, skip []bool) int {
	best, bestV := 0, math.Inf(-1)
	for i, v := range xs {
		if !skip[i] && v > bestV {
			best, bestV = i, v
		}
	}
	return best
}
