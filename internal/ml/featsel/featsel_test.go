package featsel

import (
	"math/rand"
	"testing"
)

// makeDataset builds: feature 0 = informative, feature 1 = copy of 0
// (redundant), feature 2 = informative about a different aspect,
// features 3+ = noise.
func makeDataset(n int, rng *rand.Rand) (cols [][]float64, labels []bool) {
	cols = make([][]float64, 6)
	for j := range cols {
		cols[j] = make([]float64, n)
	}
	labels = make([]bool, n)
	for i := 0; i < n; i++ {
		a := rng.Intn(6) == 0
		b := rng.Intn(6) == 0
		labels[i] = a || b
		if a {
			cols[0][i] = 4 + rng.NormFloat64()*0.3
		} else {
			cols[0][i] = rng.NormFloat64() * 0.3
		}
		cols[1][i] = cols[0][i]*2 + 1 // pure redundancy
		if b {
			cols[2][i] = 4 + rng.NormFloat64()*0.3
		} else {
			cols[2][i] = rng.NormFloat64() * 0.3
		}
		for j := 3; j < 6; j++ {
			cols[j][i] = rng.NormFloat64()
		}
	}
	return cols, labels
}

func TestMRMRSkipsRedundantFeature(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cols, labels := makeDataset(4000, rng)
	sel := MRMR(cols, labels, 2)
	if len(sel) != 2 {
		t.Fatalf("selected %v", sel)
	}
	first, second := sel[0], sel[1]
	if first != 0 && first != 1 && first != 2 {
		t.Errorf("first pick %d should be informative", first)
	}
	// Second pick must be the *other* informative feature, not the copy.
	if (first == 0 || first == 1) && second != 2 {
		t.Errorf("mRMR picked %v; second choice should be feature 2, not the redundant copy", sel)
	}
	if first == 2 && second != 0 && second != 1 {
		t.Errorf("mRMR picked %v; second choice should be 0 or 1", sel)
	}
}

func TestTopRelevancePicksRedundantPair(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cols, labels := makeDataset(4000, rng)
	sel := TopRelevance(cols, labels, 2)
	// Pure relevance ranks the copy right next to the original — exactly the
	// redundancy mRMR avoids.
	both01 := (sel[0] == 0 && sel[1] == 1) || (sel[0] == 1 && sel[1] == 0)
	if !both01 {
		// Feature 2 can edge out one of them depending on draw; accept any
		// informative pair but flag noise picks.
		for _, j := range sel {
			if j > 2 {
				t.Errorf("TopRelevance picked noise feature %d: %v", j, sel)
			}
		}
	}
}

func TestMRMRBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cols, labels := makeDataset(500, rng)
	if got := MRMR(cols, labels, 0); got != nil {
		t.Errorf("k=0 should select nothing, got %v", got)
	}
	if got := MRMR(nil, nil, 3); got != nil {
		t.Errorf("no features should select nothing, got %v", got)
	}
	all := MRMR(cols, labels, 100)
	if len(all) != len(cols) {
		t.Errorf("k>d should select all %d, got %d", len(cols), len(all))
	}
	seen := map[int]bool{}
	for _, j := range all {
		if seen[j] {
			t.Fatalf("duplicate selection %d in %v", j, all)
		}
		seen[j] = true
	}
}

func TestSelect(t *testing.T) {
	cols := [][]float64{{1}, {2}, {3}}
	out := Select(cols, []int{2, 0})
	if out[0][0] != 3 || out[1][0] != 1 {
		t.Errorf("Select = %v", out)
	}
}

func TestSelectPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	Select([][]float64{{1}}, []int{5})
}

func TestFeatureMISelfExceedsCross(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 2000
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = rng.NormFloat64()
	}
	if self, cross := featureMI(x, x), featureMI(x, y); self <= cross {
		t.Errorf("I(x;x)=%v should exceed I(x;y)=%v", self, cross)
	}
}
