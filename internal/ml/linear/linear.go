// Package linear implements the logistic-regression and linear-SVM
// classifiers that Fig. 10 compares against random forests. Both are
// trained by SGD on z-scored features with class-balanced weighting (the
// anomaly class is tiny, §3.2); their decision values serve as anomaly
// scores for PR-curve evaluation.
package linear

import (
	"fmt"
	"math"
	"math/rand"
)

// Kind selects the loss.
type Kind int

// The two linear models.
const (
	// Logistic trains with the logistic (cross-entropy) loss.
	Logistic Kind = iota
	// SVM trains with the hinge loss (linear support vector machine).
	SVM
)

// String names the kind.
func (k Kind) String() string {
	if k == SVM {
		return "linear_svm"
	}
	return "logistic_regression"
}

// Config controls training. Zero values pick sensible defaults.
type Config struct {
	Kind         Kind
	Epochs       int     // default 40
	LearningRate float64 // default 0.1
	L2           float64 // default 1e-4
	Seed         int64
}

func (c Config) withDefaults() Config {
	if c.Epochs <= 0 {
		c.Epochs = 40
	}
	if c.LearningRate <= 0 {
		c.LearningRate = 0.1
	}
	if c.L2 <= 0 {
		c.L2 = 1e-4
	}
	return c
}

// Model is a trained linear classifier.
type Model struct {
	kind      Kind
	w         []float64
	b         float64
	mean, std []float64
}

// Train fits the model on column-major features (cols[j][i] is feature j of
// sample i).
func Train(cols [][]float64, labels []bool, cfg Config) *Model {
	cfg = cfg.withDefaults()
	d := len(cols)
	if d == 0 {
		panic("linear: no features")
	}
	n := len(cols[0])
	if len(labels) != n || n == 0 {
		panic(fmt.Sprintf("linear: %d labels for %d samples", len(labels), n))
	}
	m := &Model{kind: cfg.Kind, w: make([]float64, d), mean: make([]float64, d), std: make([]float64, d)}
	for j, col := range cols {
		mu, sd := meanStd(col)
		m.mean[j] = mu
		if sd < 1e-12 {
			sd = 1
		}
		m.std[j] = sd
	}
	// Class-balanced weights.
	pos := 0
	for _, l := range labels {
		if l {
			pos++
		}
	}
	wPos, wNeg := 1.0, 1.0
	if pos > 0 && pos < n {
		wPos = float64(n) / (2 * float64(pos))
		wNeg = float64(n) / (2 * float64(n-pos))
	}

	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	order := rng.Perm(n)
	x := make([]float64, d)
	step := 0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(n, func(a, b int) { order[a], order[b] = order[b], order[a] })
		for _, i := range order {
			step++
			lr := cfg.LearningRate / (1 + 1e-4*float64(step))
			for j := 0; j < d; j++ {
				x[j] = (cols[j][i] - m.mean[j]) / m.std[j]
			}
			z := m.b
			for j := 0; j < d; j++ {
				z += m.w[j] * x[j]
			}
			y := -1.0
			cw := wNeg
			if labels[i] {
				y = 1
				cw = wPos
			}
			var g float64 // dLoss/dz
			switch cfg.Kind {
			case SVM:
				if y*z < 1 {
					g = -y
				}
			default: // Logistic with y ∈ {-1, +1}: g = -y σ(-yz)
				g = -y / (1 + math.Exp(y*z))
			}
			if g != 0 {
				for j := 0; j < d; j++ {
					m.w[j] -= lr * (cw*g*x[j] + cfg.L2*m.w[j])
				}
				m.b -= lr * cw * g
			} else if cfg.L2 > 0 {
				for j := 0; j < d; j++ {
					m.w[j] -= lr * cfg.L2 * m.w[j]
				}
			}
		}
	}
	return m
}

// Score returns the decision value of one dense feature row; higher means
// more anomalous.
func (m *Model) Score(row []float64) float64 {
	if len(row) != len(m.w) {
		panic(fmt.Sprintf("linear: row has %d features, want %d", len(row), len(m.w)))
	}
	z := m.b
	for j, v := range row {
		z += m.w[j] * (v - m.mean[j]) / m.std[j]
	}
	return z
}

// ScoreAll scores every sample of a column-major feature matrix.
func (m *Model) ScoreAll(cols [][]float64) []float64 {
	n := 0
	if len(cols) > 0 {
		n = len(cols[0])
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		z := m.b
		for j := range cols {
			z += m.w[j] * (cols[j][i] - m.mean[j]) / m.std[j]
		}
		out[i] = z
	}
	return out
}

func meanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, v := range xs {
		mean += v
	}
	mean /= float64(len(xs))
	ss := 0.0
	for _, v := range xs {
		d := v - mean
		ss += d * d
	}
	return mean, math.Sqrt(ss / float64(len(xs)))
}
