package linear

import (
	"math/rand"
	"testing"

	"opprentice/internal/stats"
)

func makeSeparable(n int, rng *rand.Rand) (cols [][]float64, labels []bool) {
	cols = [][]float64{make([]float64, n), make([]float64, n)}
	labels = make([]bool, n)
	for i := 0; i < n; i++ {
		anomalous := rng.Intn(8) == 0
		labels[i] = anomalous
		shift := 0.0
		if anomalous {
			shift = 3
		}
		cols[0][i] = shift + rng.NormFloat64()*0.5
		cols[1][i] = shift + rng.NormFloat64()*0.5
	}
	return cols, labels
}

func TestLogisticSeparates(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cols, labels := makeSeparable(2000, rng)
	m := Train(cols, labels, Config{Kind: Logistic, Seed: 1})
	testCols, testLabels := makeSeparable(800, rng)
	if auc := stats.AUCPR(m.ScoreAll(testCols), testLabels); auc < 0.95 {
		t.Errorf("logistic AUCPR = %v, want ≥ 0.95", auc)
	}
}

func TestSVMSeparates(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cols, labels := makeSeparable(2000, rng)
	m := Train(cols, labels, Config{Kind: SVM, Seed: 2})
	testCols, testLabels := makeSeparable(800, rng)
	if auc := stats.AUCPR(m.ScoreAll(testCols), testLabels); auc < 0.95 {
		t.Errorf("SVM AUCPR = %v, want ≥ 0.95", auc)
	}
}

func TestScoreMatchesScoreAll(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cols, labels := makeSeparable(300, rng)
	m := Train(cols, labels, Config{Kind: Logistic, Seed: 3})
	all := m.ScoreAll(cols)
	row := make([]float64, len(cols))
	for i := 0; i < 10; i++ {
		for j := range cols {
			row[j] = cols[j][i]
		}
		if got := m.Score(row); got != all[i] {
			t.Fatalf("Score(%d) = %v, ScoreAll = %v", i, got, all[i])
		}
	}
}

func TestConstantFeatureDoesNotBlowUp(t *testing.T) {
	cols := [][]float64{{5, 5, 5, 5, 5, 5}, {0, 1, 0, 1, 0, 6}}
	labels := []bool{false, false, false, false, false, true}
	m := Train(cols, labels, Config{Kind: Logistic, Seed: 4})
	s := m.Score([]float64{5, 6})
	if s != s { // NaN check
		t.Error("score is NaN with constant feature")
	}
}

func TestTrainPanicsOnBadShapes(t *testing.T) {
	cases := []func(){
		func() { Train(nil, nil, Config{}) },
		func() { Train([][]float64{{1, 2}}, []bool{true}, Config{}) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: want panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestScorePanicsOnRowShape(t *testing.T) {
	m := Train([][]float64{{0, 1, 0, 1}}, []bool{false, true, false, true}, Config{Seed: 5})
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	m.Score([]float64{1, 2})
}

func TestKindString(t *testing.T) {
	if Logistic.String() != "logistic_regression" || SVM.String() != "linear_svm" {
		t.Error("kind names wrong")
	}
}

func TestDeterministicSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	cols, labels := makeSeparable(400, rng)
	a := Train(cols, labels, Config{Kind: SVM, Seed: 11})
	b := Train(cols, labels, Config{Kind: SVM, Seed: 11})
	sa, sb := a.ScoreAll(cols), b.ScoreAll(cols)
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatal("same seed diverges")
		}
	}
}
