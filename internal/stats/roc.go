package stats

import (
	"fmt"
	"math"
	"sort"
)

// ROCPoint is one operating point of a detector on the ROC plane.
type ROCPoint struct {
	Threshold float64
	FPR, TPR  float64
}

// ROCCurve plots the true-positive rate against the false-positive rate for
// every threshold, the evaluation technique of [9, 14, 26] that §7 credits.
// The paper prefers PR curves because KPI anomalies are heavily imbalanced
// (footnote 3); both are provided so the claim can be checked. The curve is
// returned in order of decreasing threshold, starting from the implicit
// (0, 0) silent point.
func ROCCurve(scores []float64, truth []bool) []ROCPoint {
	if len(scores) != len(truth) {
		panic(fmt.Sprintf("stats: %d scores vs %d truths", len(scores), len(truth)))
	}
	pos, neg := 0, 0
	for _, t := range truth {
		if t {
			pos++
		} else {
			neg++
		}
	}
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	key := func(i int) float64 {
		if math.IsNaN(scores[i]) {
			return math.Inf(-1)
		}
		return scores[i]
	}
	sort.Slice(idx, func(a, b int) bool { return key(idx[a]) > key(idx[b]) })

	curve := []ROCPoint{{Threshold: math.Inf(1)}}
	tp, fp := 0, 0
	for k := 0; k < len(idx); {
		thr := key(idx[k])
		for k < len(idx) && key(idx[k]) == thr {
			if truth[idx[k]] {
				tp++
			} else {
				fp++
			}
			k++
		}
		pt := ROCPoint{Threshold: thr, TPR: 1, FPR: 1}
		if pos > 0 {
			pt.TPR = float64(tp) / float64(pos)
		}
		if neg > 0 {
			pt.FPR = float64(fp) / float64(neg)
		}
		curve = append(curve, pt)
	}
	return curve
}

// AUROC returns the area under the ROC curve by trapezoidal integration:
// 0.5 for a random scorer, 1 for a perfect one.
func AUROC(scores []float64, truth []bool) float64 {
	curve := ROCCurve(scores, truth)
	area := 0.0
	for i := 1; i < len(curve); i++ {
		dx := curve[i].FPR - curve[i-1].FPR
		area += dx * (curve[i].TPR + curve[i-1].TPR) / 2
	}
	return area
}
