// Package stats implements the accuracy machinery of the paper: precision
// and recall over point labels, precision-recall (PR) curves, the area under
// the PR curve (AUCPR) used in §5.3, the four threshold-selection metrics of
// §4.5 (default cThld, F-Score, SD(1,1) and the paper's PC-Score), mutual
// information for the feature ordering of Fig. 10, and small numeric helpers
// (quantiles, EWMA).
package stats

import (
	"fmt"
	"math"
)

// Confusion holds the point-level confusion counts of a binary detector.
type Confusion struct {
	TP, FP, FN, TN int
}

// Confuse counts the confusion matrix of predictions against the ground
// truth. It panics if the slices differ in length, which is always a caller
// bug.
func Confuse(pred, truth []bool) Confusion {
	if len(pred) != len(truth) {
		panic(fmt.Sprintf("stats: %d predictions vs %d truths", len(pred), len(truth)))
	}
	var c Confusion
	for i, p := range pred {
		switch {
		case p && truth[i]:
			c.TP++
		case p && !truth[i]:
			c.FP++
		case !p && truth[i]:
			c.FN++
		default:
			c.TN++
		}
	}
	return c
}

// Precision returns TP/(TP+FP), or 1 when nothing was flagged: a detector
// that raises no alarm has made no false claim.
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 1
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP/(TP+FN), or 1 when there was nothing to find.
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 1
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// FScore returns the harmonic mean of precision p and recall r
// (the F1 score), 0 if both are 0.
func FScore(r, p float64) float64 {
	if r+p == 0 {
		return 0
	}
	return 2 * r * p / (r + p)
}

// SD11 returns the Euclidean distance of (recall, precision) to the perfect
// corner (1, 1); the SD(1,1) metric selects the point minimizing it.
func SD11(r, p float64) float64 {
	return math.Hypot(1-r, 1-p)
}

// Preference is an operator accuracy preference: "recall ≥ Recall and
// precision ≥ Precision" (§2.2).
type Preference struct {
	Recall, Precision float64
}

// Satisfied reports whether the point (r, p) lies inside the preference box.
func (pref Preference) Satisfied(r, p float64) bool {
	return r >= pref.Recall && p >= pref.Precision
}

// Scale returns the preference with its box scaled up by ratio ≥ 1, i.e.
// both lower bounds moved toward 0 so the box area grows by ratio in each
// dimension from the (1,1) corner (the Fig. 12 line charts).
func (pref Preference) Scale(ratio float64) Preference {
	return Preference{
		Recall:    1 - (1-pref.Recall)*ratio,
		Precision: 1 - (1-pref.Precision)*ratio,
	}
}

// PCScore is the paper's preference-centric score (§4.5.1): the F-Score of
// (r, p), plus an incentive constant of 1 when the point satisfies the
// preference. Points inside the preference box therefore always outrank
// points outside it.
func PCScore(r, p float64, pref Preference) float64 {
	s := FScore(r, p)
	if pref.Satisfied(r, p) {
		s++
	}
	return s
}
