package stats

import (
	"math"
	"sort"
)

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics. It returns NaN on empty input.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

// quantileSorted is Quantile over already-sorted data, allocation free.
func quantileSorted(sorted []float64, q float64) float64 {
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// EWMA is the exponentially weighted moving average used both as a basic
// detector's forecaster and for the cThld prediction of §4.5.2:
// next = alpha*latest + (1-alpha)*previous. The zero value is not ready;
// Update it with the first observation before calling Value.
type EWMA struct {
	Alpha float64
	value float64
	ready bool
}

// Update folds the next observation into the average and returns the new
// value.
func (e *EWMA) Update(x float64) float64 {
	if !e.ready {
		e.value, e.ready = x, true
		return x
	}
	e.value = e.Alpha*x + (1-e.Alpha)*e.value
	return e.value
}

// Value returns the current average and whether any observation was folded
// in yet.
func (e *EWMA) Value() (float64, bool) { return e.value, e.ready }

// MutualInformation estimates I(X; Y) in nats between a continuous feature x
// and binary labels y, by discretizing x into up to bins equal-frequency
// buckets. It is the feature-ordering criterion of Fig. 10. NaN feature
// values go to a dedicated bucket. It returns 0 for degenerate inputs.
func MutualInformation(x []float64, y []bool, bins int) float64 {
	n := len(x)
	if n == 0 || n != len(y) || bins < 2 {
		return 0
	}
	// Build equal-frequency bucket edges from the finite values.
	finite := make([]float64, 0, n)
	for _, v := range x {
		if !math.IsNaN(v) {
			finite = append(finite, v)
		}
	}
	sort.Float64s(finite)
	edges := make([]float64, 0, bins-1)
	for b := 1; b < bins; b++ {
		if len(finite) == 0 {
			break
		}
		e := quantileSorted(finite, float64(b)/float64(bins))
		if len(edges) == 0 || e > edges[len(edges)-1] {
			edges = append(edges, e)
		}
	}
	nb := len(edges) + 2 // buckets + one NaN bucket at the end
	bucket := func(v float64) int {
		if math.IsNaN(v) {
			return nb - 1
		}
		return sort.SearchFloat64s(edges, v)
	}
	joint := make([][2]float64, nb)
	var py [2]float64
	for i, v := range x {
		c := 0
		if y[i] {
			c = 1
		}
		joint[bucket(v)][c]++
		py[c]++
	}
	inv := 1 / float64(n)
	mi := 0.0
	for _, row := range joint {
		px := (row[0] + row[1]) * inv
		if px == 0 {
			continue
		}
		for c := 0; c < 2; c++ {
			pxy := row[c] * inv
			if pxy == 0 {
				continue
			}
			mi += pxy * math.Log(pxy/(px*py[c]*inv))
		}
	}
	if mi < 0 { // guard against floating point jitter
		return 0
	}
	return mi
}
