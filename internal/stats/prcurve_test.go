package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPRCurveSimple(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.7, 0.6}
	truth := []bool{true, false, true, false}
	curve := PRCurve(scores, truth)
	if curve[0].Recall != 0 || curve[0].Precision != 1 || curve[0].Threshold <= 0.9 {
		t.Fatalf("missing flag-nothing point: %+v", curve[0])
	}
	curve = curve[1:]
	want := []PRPoint{
		{0.9, 0.5, 1},
		{0.8, 0.5, 0.5},
		{0.7, 1, 2.0 / 3},
		{0.6, 1, 0.5},
	}
	if len(curve) != len(want) {
		t.Fatalf("curve = %v", curve)
	}
	for i := range want {
		if math.Abs(curve[i].Recall-want[i].Recall) > 1e-12 ||
			math.Abs(curve[i].Precision-want[i].Precision) > 1e-12 ||
			curve[i].Threshold != want[i].Threshold {
			t.Errorf("curve[%d] = %+v, want %+v", i, curve[i], want[i])
		}
	}
}

func TestPRCurveTies(t *testing.T) {
	scores := []float64{1, 1, 0}
	truth := []bool{true, false, false}
	curve := PRCurve(scores, truth)
	if len(curve) != 3 { // flag-nothing + 2 distinct thresholds
		t.Fatalf("tie group should collapse: %v", curve)
	}
	if curve[1].Precision != 0.5 || curve[1].Recall != 1 {
		t.Errorf("curve[1] = %+v", curve[1])
	}
}

func TestPRCurveNaNRanksLast(t *testing.T) {
	scores := []float64{math.NaN(), 1}
	truth := []bool{false, true}
	curve := PRCurve(scores, truth)
	if curve[1].Precision != 1 || curve[1].Recall != 1 {
		t.Errorf("NaN should sort last: %v", curve)
	}
}

func TestAUCPRPerfectAndRandom(t *testing.T) {
	truth := []bool{true, true, false, false, false, false}
	perfect := []float64{6, 5, 4, 3, 2, 1}
	if got := AUCPR(perfect, truth); got != 1 {
		t.Errorf("perfect AUCPR = %v, want 1", got)
	}
	worst := []float64{1, 2, 3, 4, 5, 6}
	got := AUCPR(worst, truth)
	// Worst ranking: anomalies recalled last; AP = (1/2)(1/5) + (1/2)(2/6).
	want := 0.5*(1.0/5) + 0.5*(2.0/6)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("worst AUCPR = %v, want %v", got, want)
	}
}

func TestAUCPRNoPositives(t *testing.T) {
	if got := AUCPR([]float64{1, 2}, []bool{false, false}); got != 0 {
		t.Errorf("AUCPR with no positives = %v, want 0", got)
	}
}

func TestAUCPRBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(100)
		scores := make([]float64, n)
		truth := make([]bool, n)
		anyPos := false
		for i := range scores {
			scores[i] = rng.NormFloat64()
			truth[i] = rng.Intn(5) == 0
			anyPos = anyPos || truth[i]
		}
		if !anyPos {
			truth[0] = true
		}
		a := AUCPR(scores, truth)
		return a >= 0 && a <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBestByPCScorePrefersBox(t *testing.T) {
	curve := []PRPoint{
		{0.9, 0.95, 0.40}, // high recall, low precision, best F outside box
		{0.5, 0.70, 0.70}, // inside the (0.66, 0.66) box
		{0.2, 0.30, 0.90},
	}
	pref := Preference{Recall: 0.66, Precision: 0.66}
	best, ok := BestByPCScore(curve, pref)
	if !ok || best.Recall != 0.70 || best.Precision != 0.70 {
		t.Errorf("BestByPCScore = %+v, ok=%v; want the in-box point", best, ok)
	}
	// The reported threshold centers the equivalence interval (0.2, 0.5].
	if best.Threshold != 0.35 {
		t.Errorf("threshold = %v, want margin midpoint 0.35", best.Threshold)
	}
}

func TestBestByPCScoreMidpointKeepsConfusion(t *testing.T) {
	// The centered threshold must produce the same confusion as the curve
	// point it represents.
	scores := []float64{0.9, 0.85, 0.3, 0.2}
	truth := []bool{true, true, false, false}
	pref := Preference{Recall: 0.66, Precision: 0.66}
	best, ok := BestByPCScore(PRCurve(scores, truth), pref)
	if !ok {
		t.Fatal("perfectly separable week should satisfy")
	}
	if best.Threshold <= 0.3 || best.Threshold > 0.85 {
		t.Errorf("threshold %v should sit inside the (0.3, 0.85] margin", best.Threshold)
	}
	r, p := AtThreshold(scores, truth, best.Threshold)
	if r != best.Recall || p != best.Precision {
		t.Errorf("midpoint threshold changed the confusion: (%v,%v) vs (%v,%v)",
			r, p, best.Recall, best.Precision)
	}
}

func TestBestByPCScoreApproximatesWhenUnreachable(t *testing.T) {
	curve := []PRPoint{{0.9, 0.3, 0.3}, {0.5, 0.5, 0.5}}
	best, ok := BestByPCScore(curve, Preference{Recall: 0.9, Precision: 0.9})
	if ok {
		t.Error("no point satisfies; ok should be false")
	}
	if best.Threshold != 0.5 {
		t.Errorf("should fall back to max F-Score point, got %+v", best)
	}
}

func TestBestByFScoreAndSD11(t *testing.T) {
	curve := []PRPoint{{0.9, 0.2, 0.9}, {0.5, 0.8, 0.7}, {0.1, 1, 0.1}}
	if got := BestByFScore(curve); got.Threshold != 0.5 {
		t.Errorf("BestByFScore = %+v", got)
	}
	if got := BestBySD11(curve); got.Threshold != 0.5 {
		t.Errorf("BestBySD11 = %+v", got)
	}
}

func TestAtThreshold(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.2, math.NaN()}
	truth := []bool{true, false, true, false}
	r, p := AtThreshold(scores, truth, 0.5)
	if r != 0.5 || p != 0.5 {
		t.Errorf("AtThreshold = (%v, %v), want (0.5, 0.5)", r, p)
	}
}

// The PR point at any threshold on the curve must agree with a direct
// evaluation at that threshold.
func TestPRCurveConsistentWithAtThreshold(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 200
	scores := make([]float64, n)
	truth := make([]bool, n)
	for i := range scores {
		scores[i] = rng.Float64()
		truth[i] = rng.Intn(10) == 0
	}
	truth[0] = true
	curve := PRCurve(scores, truth)
	for _, pt := range curve[:10] {
		r, p := AtThreshold(scores, truth, pt.Threshold)
		if math.Abs(r-pt.Recall) > 1e-12 || math.Abs(p-pt.Precision) > 1e-12 {
			t.Fatalf("threshold %v: curve (%v,%v) vs direct (%v,%v)",
				pt.Threshold, pt.Recall, pt.Precision, r, p)
		}
	}
}
