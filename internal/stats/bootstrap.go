package stats

import (
	"math/rand"
	"sort"
)

// Interval is a two-sided confidence interval with its point estimate.
type Interval struct {
	Point    float64
	Lo, Hi   float64
	Level    float64 // e.g. 0.95
	Resample int     // bootstrap iterations used
}

// AUCPRConfidence estimates a bootstrap percentile confidence interval for
// the AUCPR, following the point-estimate-plus-interval practice of Boyd et
// al. [50] that the paper adopts for its AUCPR comparisons. Points are
// resampled with replacement; resamples without any anomalous point are
// redrawn (their AUCPR is undefined). level is the two-sided confidence
// level (default 0.95 when out of range); iterations defaults to 1000.
func AUCPRConfidence(scores []float64, truth []bool, level float64, iterations int, seed int64) Interval {
	if level <= 0 || level >= 1 {
		level = 0.95
	}
	if iterations <= 0 {
		iterations = 1000
	}
	point := AUCPR(scores, truth)
	n := len(scores)
	out := Interval{Point: point, Lo: point, Hi: point, Level: level, Resample: iterations}
	hasPos := false
	for _, t := range truth {
		if t {
			hasPos = true
			break
		}
	}
	if n == 0 || !hasPos {
		return out
	}
	rng := rand.New(rand.NewSource(seed))
	aucs := make([]float64, 0, iterations)
	bs := make([]float64, n)
	bt := make([]bool, n)
	for it := 0; it < iterations; it++ {
		pos := 0
		for attempt := 0; attempt < 20 && pos == 0; attempt++ {
			pos = 0
			for i := 0; i < n; i++ {
				j := rng.Intn(n)
				bs[i] = scores[j]
				bt[i] = truth[j]
				if bt[i] {
					pos++
				}
			}
		}
		if pos == 0 {
			continue // pathologically rare anomalies; skip this resample
		}
		aucs = append(aucs, AUCPR(bs, bt))
	}
	if len(aucs) == 0 {
		return out
	}
	sort.Float64s(aucs)
	alpha := (1 - level) / 2
	out.Lo = quantileSorted(aucs, alpha)
	out.Hi = quantileSorted(aucs, 1-alpha)
	out.Resample = len(aucs)
	return out
}
