package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestROCCurvePerfect(t *testing.T) {
	scores := []float64{4, 3, 2, 1}
	truth := []bool{true, true, false, false}
	curve := ROCCurve(scores, truth)
	if curve[0].FPR != 0 || curve[0].TPR != 0 {
		t.Errorf("curve should start at (0,0): %+v", curve[0])
	}
	last := curve[len(curve)-1]
	if last.FPR != 1 || last.TPR != 1 {
		t.Errorf("curve should end at (1,1): %+v", last)
	}
	if got := AUROC(scores, truth); got != 1 {
		t.Errorf("perfect AUROC = %v, want 1", got)
	}
}

func TestAUROCRandomIsHalf(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 20000
	scores := make([]float64, n)
	truth := make([]bool, n)
	for i := range scores {
		scores[i] = rng.Float64()
		truth[i] = rng.Intn(5) == 0
	}
	if got := AUROC(scores, truth); math.Abs(got-0.5) > 0.02 {
		t.Errorf("random AUROC = %v, want ≈ 0.5", got)
	}
}

func TestAUROCReversedIsZero(t *testing.T) {
	scores := []float64{1, 2, 3, 4}
	truth := []bool{true, true, false, false}
	if got := AUROC(scores, truth); got != 0 {
		t.Errorf("anti-perfect AUROC = %v, want 0", got)
	}
}

func TestROCPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	ROCCurve([]float64{1}, []bool{true, false})
}

// AUROC equals the probability a random positive outranks a random negative
// (the Wilcoxon/Mann-Whitney identity), counting ties as half.
func TestAUROCMatchesPairwiseProbability(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(60)
		scores := make([]float64, n)
		truth := make([]bool, n)
		hasPos, hasNeg := false, false
		for i := range scores {
			scores[i] = float64(rng.Intn(8)) // coarse so ties occur
			truth[i] = rng.Intn(3) == 0
			hasPos = hasPos || truth[i]
			hasNeg = hasNeg || !truth[i]
		}
		if !hasPos || !hasNeg {
			return true
		}
		var wins, pairs float64
		for i := range scores {
			if !truth[i] {
				continue
			}
			for j := range scores {
				if truth[j] {
					continue
				}
				pairs++
				switch {
				case scores[i] > scores[j]:
					wins++
				case scores[i] == scores[j]:
					wins += 0.5
				}
			}
		}
		want := wins / pairs
		got := AUROC(scores, truth)
		return math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// The paper's footnote-3 claim: with heavy class imbalance the ROC looks
// great while the PR curve exposes the false-alarm problem. A mediocre
// scorer on rare anomalies must have AUROC far above AUCPR.
func TestImbalanceMakesROCOptimistic(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 20000
	scores := make([]float64, n)
	truth := make([]bool, n)
	for i := range scores {
		truth[i] = rng.Intn(100) == 0 // 1% anomalies
		if truth[i] {
			scores[i] = 1.5 + rng.NormFloat64()
		} else {
			scores[i] = rng.NormFloat64()
		}
	}
	auroc := AUROC(scores, truth)
	aucpr := AUCPR(scores, truth)
	if auroc < aucpr+0.2 {
		t.Errorf("imbalanced data: AUROC %v should far exceed AUCPR %v", auroc, aucpr)
	}
}
