package stats

import (
	"fmt"
	"math"
	"sort"
)

// PRPoint is one operating point of a detector or classifier: predicting
// "anomaly" for every point whose score is ≥ Threshold yields the given
// recall and precision.
type PRPoint struct {
	Threshold float64
	Recall    float64
	Precision float64
}

// PRCurve plots precision against recall for every possible threshold of the
// anomaly scores (a cThld of the classifier, or an sThld of a basic
// detector). Higher scores must mean "more anomalous". NaN scores are
// treated as the lowest possible severity. The curve is returned in order of
// decreasing threshold, i.e. increasing recall; it contains one point per
// distinct score value.
func PRCurve(scores []float64, truth []bool) []PRPoint {
	if len(scores) != len(truth) {
		panic(fmt.Sprintf("stats: %d scores vs %d truths", len(scores), len(truth)))
	}
	totalPos := 0
	for _, t := range truth {
		if t {
			totalPos++
		}
	}
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	key := func(i int) float64 {
		s := scores[i]
		if math.IsNaN(s) {
			return math.Inf(-1)
		}
		return s
	}
	sort.Slice(idx, func(a, b int) bool { return key(idx[a]) > key(idx[b]) })

	// The "flag nothing" operating point: a threshold just above every
	// score. Without it, weeks with no anomalies would have no satisfying
	// point on the curve even though staying silent is perfect there.
	silentRecall := 0.0
	if totalPos == 0 {
		silentRecall = 1
	}
	silentThr := math.Inf(1)
	if len(idx) > 0 {
		if top := key(idx[0]); !math.IsInf(top, 0) {
			silentThr = math.Nextafter(top, math.Inf(1))
		}
	}
	curve := []PRPoint{{Threshold: silentThr, Recall: silentRecall, Precision: 1}}
	tp, fp := 0, 0
	for k := 0; k < len(idx); {
		thr := key(idx[k])
		// Consume the whole tie group so each threshold appears once.
		for k < len(idx) && key(idx[k]) == thr {
			if truth[idx[k]] {
				tp++
			} else {
				fp++
			}
			k++
		}
		p := float64(tp) / float64(tp+fp)
		r := 1.0
		if totalPos > 0 {
			r = float64(tp) / float64(totalPos)
		}
		curve = append(curve, PRPoint{Threshold: thr, Recall: r, Precision: p})
	}
	return curve
}

// AUCPR returns the area under the PR curve computed as average precision:
// the mean, over all true anomalous points, of the precision at the
// threshold that first recalls that point. It ranges in [0, 1] and equals
// the anomaly base rate for a random scorer. It returns 0 when there are no
// anomalous points.
func AUCPR(scores []float64, truth []bool) float64 {
	if len(scores) != len(truth) {
		panic(fmt.Sprintf("stats: %d scores vs %d truths", len(scores), len(truth)))
	}
	totalPos := 0
	for _, t := range truth {
		if t {
			totalPos++
		}
	}
	if totalPos == 0 {
		return 0
	}
	curve := PRCurve(scores, truth)
	ap := 0.0
	prevRecall := 0.0
	for _, pt := range curve {
		ap += (pt.Recall - prevRecall) * pt.Precision
		prevRecall = pt.Recall
	}
	return ap
}

// BestByPCScore returns the curve point with the largest PC-Score under the
// preference, i.e. the cThld configuration of §4.5.1. The boolean reports
// whether that point actually satisfies the preference.
//
// Any threshold in the half-open interval down to the next curve point
// yields the same confusion, so the returned Threshold is centered in that
// interval: a week with cleanly separated scores then reports a cThld in the
// middle of the margin instead of hugging the lowest anomaly score, which is
// what makes the EWMA-predicted cThld transfer to the following week
// (§4.5.2).
func BestByPCScore(curve []PRPoint, pref Preference) (PRPoint, bool) {
	bestIdx, bestScore := -1, math.Inf(-1)
	for i, pt := range curve {
		if s := PCScore(pt.Recall, pt.Precision, pref); s > bestScore {
			bestIdx, bestScore = i, s
		}
	}
	if bestIdx < 0 {
		return PRPoint{}, false
	}
	best := curve[bestIdx]
	if bestIdx+1 < len(curve) {
		lower := curve[bestIdx+1].Threshold
		if mid := (best.Threshold + lower) / 2; !math.IsNaN(mid) && !math.IsInf(mid, 0) {
			best.Threshold = mid
		}
	}
	return best, pref.Satisfied(best.Recall, best.Precision)
}

// BestByFScore returns the curve point maximizing the F-Score.
func BestByFScore(curve []PRPoint) PRPoint {
	best, bestScore := PRPoint{}, math.Inf(-1)
	for _, pt := range curve {
		if s := FScore(pt.Recall, pt.Precision); s > bestScore {
			best, bestScore = pt, s
		}
	}
	return best
}

// BestBySD11 returns the curve point minimizing the distance to (1, 1).
func BestBySD11(curve []PRPoint) PRPoint {
	best, bestDist := PRPoint{}, math.Inf(1)
	for _, pt := range curve {
		if d := SD11(pt.Recall, pt.Precision); d < bestDist {
			best, bestDist = pt, d
		}
	}
	return best
}

// AtThresholds evaluates recall and precision at every candidate threshold
// in one sorted sweep: candidate c yields the confusion of predicting
// "anomaly" wherever score ≥ c. Candidates must be sorted ascending; the
// result is aligned with them. This is the O((n+k) log n) backbone of the
// 5-fold cThld search, which evaluates 1000 candidates per fold (§4.5.2).
func AtThresholds(scores []float64, truth []bool, candidates []float64) []PRPoint {
	if len(scores) != len(truth) {
		panic(fmt.Sprintf("stats: %d scores vs %d truths", len(scores), len(truth)))
	}
	totalPos := 0
	for _, t := range truth {
		if t {
			totalPos++
		}
	}
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	key := func(i int) float64 {
		s := scores[i]
		if math.IsNaN(s) {
			return math.Inf(-1)
		}
		return s
	}
	sort.Slice(idx, func(a, b int) bool { return key(idx[a]) > key(idx[b]) })

	out := make([]PRPoint, len(candidates))
	// Walk candidates from the highest down, consuming scores ≥ candidate.
	k := 0
	tp, fp := 0, 0
	for c := len(candidates) - 1; c >= 0; c-- {
		thr := candidates[c]
		for k < len(idx) && key(idx[k]) >= thr {
			if truth[idx[k]] {
				tp++
			} else {
				fp++
			}
			k++
		}
		p := 1.0
		if tp+fp > 0 {
			p = float64(tp) / float64(tp+fp)
		}
		r := 1.0
		if totalPos > 0 {
			r = float64(tp) / float64(totalPos)
		}
		out[c] = PRPoint{Threshold: thr, Recall: r, Precision: p}
	}
	return out
}

// AtThreshold evaluates the recall and precision of predicting "anomaly"
// wherever score ≥ thr.
func AtThreshold(scores []float64, truth []bool, thr float64) (recall, precision float64) {
	pred := make([]bool, len(scores))
	for i, s := range scores {
		pred[i] = !math.IsNaN(s) && s >= thr
	}
	c := Confuse(pred, truth)
	return c.Recall(), c.Precision()
}
