package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("Quantile of empty should be NaN")
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Quantile mutated input: %v", xs)
	}
}

func TestQuantileMonotoneQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 1+rng.Intn(50))
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		q1, q2 := rng.Float64(), rng.Float64()
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		return Quantile(xs, q1) <= Quantile(xs, q2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEWMA(t *testing.T) {
	e := EWMA{Alpha: 0.8}
	if _, ok := e.Value(); ok {
		t.Error("zero EWMA should not be ready")
	}
	if got := e.Update(10); got != 10 {
		t.Errorf("first Update = %v, want 10", got)
	}
	if got := e.Update(0); math.Abs(got-2) > 1e-12 {
		t.Errorf("second Update = %v, want 2", got)
	}
	v, ok := e.Value()
	if !ok || math.Abs(v-2) > 1e-12 {
		t.Errorf("Value = %v, %v", v, ok)
	}
}

func TestEWMAAlphaOneTracksLatest(t *testing.T) {
	e := EWMA{Alpha: 1}
	e.Update(5)
	if got := e.Update(7); got != 7 {
		t.Errorf("alpha=1 should track latest, got %v", got)
	}
}

func TestMutualInformationInformativeVsNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 2000
	x := make([]float64, n)
	noise := make([]float64, n)
	y := make([]bool, n)
	for i := range x {
		y[i] = rng.Intn(10) == 0
		if y[i] {
			x[i] = 5 + rng.NormFloat64()
		} else {
			x[i] = rng.NormFloat64()
		}
		noise[i] = rng.NormFloat64()
	}
	miX := MutualInformation(x, y, 16)
	miN := MutualInformation(noise, y, 16)
	if miX <= miN {
		t.Errorf("informative MI %v should exceed noise MI %v", miX, miN)
	}
	if miN > 0.05 {
		t.Errorf("noise MI = %v, should be near 0", miN)
	}
}

func TestMutualInformationDegenerate(t *testing.T) {
	if got := MutualInformation(nil, nil, 8); got != 0 {
		t.Errorf("empty MI = %v", got)
	}
	if got := MutualInformation([]float64{1}, []bool{true, false}, 8); got != 0 {
		t.Errorf("mismatched MI = %v", got)
	}
	if got := MutualInformation([]float64{1, 2}, []bool{true, false}, 1); got != 0 {
		t.Errorf("bins<2 MI = %v", got)
	}
	// Constant feature carries no information.
	x := []float64{3, 3, 3, 3}
	y := []bool{true, false, true, false}
	if got := MutualInformation(x, y, 4); got > 1e-9 {
		t.Errorf("constant feature MI = %v, want 0", got)
	}
}

func TestMutualInformationHandlesNaN(t *testing.T) {
	x := []float64{math.NaN(), 1, 2, math.NaN()}
	y := []bool{true, false, true, false}
	got := MutualInformation(x, y, 4)
	if math.IsNaN(got) || got < 0 {
		t.Errorf("MI with NaNs = %v", got)
	}
}

func TestMutualInformationNonNegativeQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(200)
		x := make([]float64, n)
		y := make([]bool, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.Intn(3) == 0
		}
		return MutualInformation(x, y, 8) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
