package stats

import (
	"math/rand"
	"testing"
)

func TestAUCPRConfidenceBracketsPoint(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 800
	scores := make([]float64, n)
	truth := make([]bool, n)
	for i := range scores {
		truth[i] = rng.Intn(10) == 0
		if truth[i] {
			scores[i] = 2 + rng.NormFloat64()
		} else {
			scores[i] = rng.NormFloat64()
		}
	}
	ci := AUCPRConfidence(scores, truth, 0.95, 400, 7)
	if !(ci.Lo <= ci.Point && ci.Point <= ci.Hi) {
		t.Errorf("interval [%v, %v] does not bracket point %v", ci.Lo, ci.Hi, ci.Point)
	}
	if ci.Hi-ci.Lo <= 0 || ci.Hi-ci.Lo > 0.5 {
		t.Errorf("interval width %v implausible", ci.Hi-ci.Lo)
	}
	if ci.Lo < 0 || ci.Hi > 1 {
		t.Errorf("interval [%v, %v] out of range", ci.Lo, ci.Hi)
	}
}

func TestAUCPRConfidenceWiderLevelWiderInterval(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 400
	scores := make([]float64, n)
	truth := make([]bool, n)
	for i := range scores {
		truth[i] = rng.Intn(8) == 0
		scores[i] = rng.NormFloat64()
		if truth[i] {
			scores[i] += 1.5
		}
	}
	narrow := AUCPRConfidence(scores, truth, 0.5, 500, 3)
	wide := AUCPRConfidence(scores, truth, 0.99, 500, 3)
	if wide.Hi-wide.Lo <= narrow.Hi-narrow.Lo {
		t.Errorf("99%% interval (%v) should be wider than 50%% (%v)",
			wide.Hi-wide.Lo, narrow.Hi-narrow.Lo)
	}
}

func TestAUCPRConfidenceDeterministicSeed(t *testing.T) {
	scores := []float64{5, 4, 3, 2, 1, 0.5, 0.2, 0.1}
	truth := []bool{true, true, false, false, false, true, false, false}
	a := AUCPRConfidence(scores, truth, 0.95, 200, 11)
	b := AUCPRConfidence(scores, truth, 0.95, 200, 11)
	if a != b {
		t.Errorf("same seed gave %+v vs %+v", a, b)
	}
}

func TestAUCPRConfidenceDegenerate(t *testing.T) {
	ci := AUCPRConfidence(nil, nil, 0.95, 100, 1)
	if ci.Lo != ci.Point || ci.Hi != ci.Point {
		t.Errorf("empty input interval = %+v", ci)
	}
	ci = AUCPRConfidence([]float64{1, 2}, []bool{false, false}, 0.95, 100, 1)
	if ci.Point != 0 || ci.Lo != 0 || ci.Hi != 0 {
		t.Errorf("no-positive interval = %+v", ci)
	}
	// Bad level and iterations fall back to defaults without blowing up.
	ci = AUCPRConfidence([]float64{2, 1}, []bool{true, false}, -1, -5, 1)
	if ci.Level != 0.95 {
		t.Errorf("level fallback = %v", ci.Level)
	}
}
