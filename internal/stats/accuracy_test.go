package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConfuse(t *testing.T) {
	pred := []bool{true, true, false, false, true}
	truth := []bool{true, false, true, false, true}
	c := Confuse(pred, truth)
	if c != (Confusion{TP: 2, FP: 1, FN: 1, TN: 1}) {
		t.Errorf("Confuse = %+v", c)
	}
}

func TestConfusePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	Confuse([]bool{true}, []bool{true, false})
}

func TestPrecisionRecall(t *testing.T) {
	c := Confusion{TP: 3, FP: 1, FN: 2, TN: 4}
	if got := c.Precision(); got != 0.75 {
		t.Errorf("Precision = %v, want 0.75", got)
	}
	if got := c.Recall(); got != 0.6 {
		t.Errorf("Recall = %v, want 0.6", got)
	}
	empty := Confusion{TN: 5}
	if empty.Precision() != 1 || empty.Recall() != 1 {
		t.Error("degenerate precision/recall should be 1")
	}
}

func TestFScore(t *testing.T) {
	if got := FScore(0.5, 0.5); got != 0.5 {
		t.Errorf("FScore(.5,.5) = %v", got)
	}
	if got := FScore(0, 0); got != 0 {
		t.Errorf("FScore(0,0) = %v", got)
	}
	if got := FScore(1, 1); got != 1 {
		t.Errorf("FScore(1,1) = %v", got)
	}
}

func TestSD11(t *testing.T) {
	if got := SD11(1, 1); got != 0 {
		t.Errorf("SD11(1,1) = %v", got)
	}
	if got := SD11(0, 1); got != 1 {
		t.Errorf("SD11(0,1) = %v", got)
	}
}

func TestPreferenceSatisfiedAndScale(t *testing.T) {
	pref := Preference{Recall: 0.66, Precision: 0.66}
	if !pref.Satisfied(0.7, 0.66) {
		t.Error("(0.7, 0.66) should satisfy")
	}
	if pref.Satisfied(0.65, 0.9) {
		t.Error("(0.65, 0.9) should not satisfy")
	}
	scaled := pref.Scale(2)
	if math.Abs(scaled.Recall-0.32) > 1e-12 || math.Abs(scaled.Precision-0.32) > 1e-12 {
		t.Errorf("Scale(2) = %+v", scaled)
	}
	if same := pref.Scale(1); same != pref {
		t.Errorf("Scale(1) = %+v, want %+v", same, pref)
	}
}

// PC-Score's incentive constant must make every satisfying point outrank
// every non-satisfying point — the property §4.5.1 relies on.
func TestPCScoreIncentiveDominance(t *testing.T) {
	pref := Preference{Recall: 0.66, Precision: 0.66}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rIn := 0.66 + 0.34*rng.Float64()
		pIn := 0.66 + 0.34*rng.Float64()
		rOut, pOut := rng.Float64(), rng.Float64()
		if pref.Satisfied(rOut, pOut) {
			rOut = 0.65 * rng.Float64()
		}
		return PCScore(rIn, pIn, pref) > PCScore(rOut, pOut, pref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPCScoreEqualsFScoreOutsideBox(t *testing.T) {
	pref := Preference{Recall: 0.8, Precision: 0.8}
	if got, want := PCScore(0.5, 0.5, pref), FScore(0.5, 0.5); got != want {
		t.Errorf("PCScore outside box = %v, want F-Score %v", got, want)
	}
	if got, want := PCScore(0.9, 0.9, pref), FScore(0.9, 0.9)+1; got != want {
		t.Errorf("PCScore inside box = %v, want F-Score+1 %v", got, want)
	}
}
