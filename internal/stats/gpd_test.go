package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// gpdSeed pins the RNG of every randomized GPD/POT property below (PR 5
// seed policy: bench and property seeds are named constants, not literals).
const gpdSeed int64 = 20260808

// sampleExcesses draws n excesses from a seeded tail family: heavy
// (Pareto-like), light (exponential), or uniform.
func sampleExcesses(rng *rand.Rand, n int) []float64 {
	xs := make([]float64, n)
	switch rng.Intn(3) {
	case 0: // heavy tail: Pareto with α ∈ [1.5, 3)
		alpha := 1.5 + 1.5*rng.Float64()
		for i := range xs {
			xs[i] = math.Pow(1-rng.Float64(), -1/alpha) - 1
		}
	case 1: // light tail: exponential
		for i := range xs {
			xs[i] = rng.ExpFloat64()
		}
	default: // bounded tail: uniform
		for i := range xs {
			xs[i] = rng.Float64()
		}
	}
	return xs
}

// TestGPDFitNeverYieldsNaNThreshold: for random heavy-/light-tailed and
// degenerate samples, a successful fit must produce a finite threshold at
// every q, and a failed fit must report ok=false instead of NaN parameters.
func TestGPDFitNeverYieldsNaNThreshold(t *testing.T) {
	rng := rand.New(rand.NewSource(gpdSeed))
	for trial := 0; trial < 500; trial++ {
		n := 2 + rng.Intn(200)
		xs := sampleExcesses(rng, n)
		// Degenerate variants: constant, all-equal-peaks, NaN-holed.
		switch trial % 5 {
		case 1:
			c := rng.Float64()
			for i := range xs {
				xs[i] = c
			}
		case 2:
			for i := range xs {
				if rng.Float64() < 0.3 {
					xs[i] = math.NaN()
				}
			}
		case 3:
			xs = xs[:0]
		}
		for _, fit := range []func([]float64) (GPD, bool){FitGPDMoments, FitGPDPWM, FitGPD} {
			g, ok := fit(xs)
			if !ok {
				continue
			}
			if !g.valid() {
				t.Fatalf("trial %d: fit reported ok with invalid params %+v", trial, g)
			}
			for _, q := range []float64{1e-5, 1e-3, 1e-2, 0.1, 0.5} {
				z := POTThreshold(10, g, 10*n, n, q)
				if math.IsNaN(z) || math.IsInf(z, 0) {
					t.Fatalf("trial %d: POTThreshold(q=%v, %+v) = %v, want finite", trial, q, g, z)
				}
			}
		}
	}
}

// TestPOTThresholdMonotoneInQ: zq must be non-increasing in q for every
// fitted shape — a rarer target event always yields a higher threshold.
func TestPOTThresholdMonotoneInQ(t *testing.T) {
	rng := rand.New(rand.NewSource(gpdSeed + 1))
	f := func(raw int64) bool {
		r := rand.New(rand.NewSource(raw ^ gpdSeed))
		g, ok := FitGPD(sampleExcesses(r, 5+r.Intn(100)))
		if !ok {
			return true
		}
		n, nu := 1000, 1+r.Intn(100)
		prev := math.Inf(1)
		for _, q := range []float64{1e-6, 1e-4, 1e-3, 1e-2, 0.05, 0.2, 0.5, 0.9} {
			z := POTThreshold(0, g, n, nu, q)
			if math.IsNaN(z) || z > prev {
				return false
			}
			prev = z
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// TestGPDFitDeterministic: fitting the same seeded sample twice is bitwise
// identical — the retrain path relies on restore determinism.
func TestGPDFitDeterministic(t *testing.T) {
	xs := sampleExcesses(rand.New(rand.NewSource(gpdSeed+2)), 150)
	g1, ok1 := FitGPD(xs)
	g2, ok2 := FitGPD(xs)
	if ok1 != ok2 ||
		math.Float64bits(g1.Xi) != math.Float64bits(g2.Xi) ||
		math.Float64bits(g1.Sigma) != math.Float64bits(g2.Sigma) {
		t.Fatalf("fit not deterministic: %+v/%v vs %+v/%v", g1, ok1, g2, ok2)
	}
	// The fit must not depend on the order holes appear in: cleaning is
	// positional, so the same multiset with NaNs in different slots fits
	// identically once the holes are dropped.
	holed := append([]float64(nil), xs...)
	holed = append(holed, math.NaN(), math.Inf(1))
	g3, ok3 := FitGPD(holed)
	if ok3 != ok1 || math.Float64bits(g3.Xi) != math.Float64bits(g1.Xi) {
		t.Fatalf("NaN holes changed the fit: %+v vs %+v", g3, g1)
	}
}

// TestPOTThresholdGolden pins the POT quantile formula bitwise to a
// hand-computed numeric example, in the runtime-float style of the PC-Score
// goldens: the expected value is evaluated from the same formula written
// out longhand, so the pin survives FMA-free float evaluation differences
// across architectures while still catching any formula change.
func TestPOTThresholdGolden(t *testing.T) {
	// u=10, σ=2, ξ=0.5, n=1000, Nu=50, q=0.01:
	// zq = 10 + (2/0.5)·((0.01·1000/50)^(−0.5) − 1)
	//    = 10 + 4·(0.2^(−0.5) − 1) = 10 + 4·(√5 − 1) ≈ 14.944
	g := GPD{Xi: 0.5, Sigma: 2}
	got := POTThreshold(10, g, 1000, 50, 0.01)
	want := 10 + 2/0.5*(math.Pow(0.01*1000/50, -0.5)-1)
	if math.Float64bits(got) != math.Float64bits(want) {
		t.Errorf("POTThreshold = %v (%#x), want %v (%#x)",
			got, math.Float64bits(got), want, math.Float64bits(want))
	}
	if got < 14.94 || got > 14.95 {
		t.Errorf("POTThreshold = %v, hand computation says ≈14.944", got)
	}
	// Exponential limit ξ→0: zq = u − σ·ln(q·n/Nu) = 10 − 2·ln(0.2) ≈ 13.22.
	got = POTThreshold(10, GPD{Xi: 0, Sigma: 2}, 1000, 50, 0.01)
	want = 10 - 2*math.Log(0.01*1000/50)
	if math.Float64bits(got) != math.Float64bits(want) {
		t.Errorf("exponential-limit POTThreshold = %v, want %v", got, want)
	}
	if got < 13.21 || got > 13.23 {
		t.Errorf("exponential-limit POTThreshold = %v, hand computation says ≈13.219", got)
	}
}

// TestPOTThresholdRejectsBadInputs: invalid fits and out-of-range q report
// NaN rather than a garbage threshold.
func TestPOTThresholdRejectsBadInputs(t *testing.T) {
	good := GPD{Xi: 0.1, Sigma: 1}
	for name, z := range map[string]float64{
		"zero sigma": POTThreshold(1, GPD{Xi: 0.1}, 100, 10, 0.01),
		"nan xi":     POTThreshold(1, GPD{Xi: math.NaN(), Sigma: 1}, 100, 10, 0.01),
		"q=0":        POTThreshold(1, good, 100, 10, 0),
		"q=1":        POTThreshold(1, good, 100, 10, 1),
		"no peaks":   POTThreshold(1, good, 100, 0, 0.01),
		"no samples": POTThreshold(1, good, 0, 10, 0.01),
		"nan u":      POTThreshold(math.NaN(), good, 100, 10, 0.01),
		"huge shape": POTThreshold(1, GPD{Xi: 50, Sigma: 1}, 100, 10, 0.01),
	} {
		if !math.IsNaN(z) {
			t.Errorf("%s: POTThreshold = %v, want NaN", name, z)
		}
	}
}
