package stats

import (
	"math"
	"testing"
)

// FuzzPRCurve checks structural invariants of the PR machinery on arbitrary
// score/label data: monotone non-increasing thresholds, recall
// non-decreasing, all values in range, and AUCPR within [0, 1].
func FuzzPRCurve(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4}, []byte{1, 0, 1, 0})
	f.Add([]byte{255, 255, 0}, []byte{0, 0, 1})
	f.Add([]byte{}, []byte{})
	f.Fuzz(func(t *testing.T, rawScores, rawTruth []byte) {
		n := len(rawScores)
		if len(rawTruth) < n {
			n = len(rawTruth)
		}
		scores := make([]float64, n)
		truth := make([]bool, n)
		for i := 0; i < n; i++ {
			switch rawScores[i] % 17 {
			case 0:
				scores[i] = math.NaN()
			case 1:
				scores[i] = math.Inf(1)
			case 2:
				scores[i] = math.Inf(-1)
			default:
				scores[i] = float64(rawScores[i]) / 8
			}
			truth[i] = rawTruth[i]%2 == 1
		}
		curve := PRCurve(scores, truth)
		prevRecall := -1.0
		for i, pt := range curve {
			if pt.Recall < 0 || pt.Recall > 1 || pt.Precision < 0 || pt.Precision > 1 {
				t.Fatalf("point %d out of range: %+v", i, pt)
			}
			if pt.Recall+1e-12 < prevRecall {
				t.Fatalf("recall decreased at %d: %v after %v", i, pt.Recall, prevRecall)
			}
			prevRecall = pt.Recall
		}
		if a := AUCPR(scores, truth); a < 0 || a > 1 || math.IsNaN(a) {
			t.Fatalf("AUCPR = %v", a)
		}
		// AtThresholds must agree with AtThreshold on a few candidates.
		candidates := []float64{0, 0.5, 1, 2}
		pts := AtThresholds(scores, truth, candidates)
		for i, c := range candidates {
			r, p := AtThreshold(scores, truth, c)
			if math.Abs(pts[i].Recall-r) > 1e-12 || math.Abs(pts[i].Precision-p) > 1e-12 {
				t.Fatalf("candidate %v: batch (%v,%v) vs direct (%v,%v)",
					c, pts[i].Recall, pts[i].Precision, r, p)
			}
		}
	})
}
