package stats

import (
	"math"
	"sort"
)

// This file implements peaks-over-threshold (POT) dynamic thresholding via
// the generalized Pareto distribution, following the EVT approach the
// Ensemble2 line of work applies to ensembled anomaly scores: excesses over
// a high empirical threshold u are fit to a GPD(ξ, σ), and the zq quantile
//
//	zq = u + σ/ξ · ((q·n/Nu)^(−ξ) − 1)        (ξ ≠ 0)
//	zq = u − σ · ln(q·n/Nu)                   (ξ → 0 exponential limit)
//
// bounds the score exceeded with probability q, where n is the number of
// observations and Nu the number of excesses. Every entry point is total:
// degenerate samples (constant, too few peaks, NaN-holed) fail the fit
// cleanly and the caller falls back to an empirical quantile.

// GPD is a fitted generalized Pareto distribution over threshold excesses.
type GPD struct {
	// Xi is the shape: > 0 heavy tail, < 0 bounded tail, 0 exponential.
	Xi float64
	// Sigma is the scale (> 0 for any valid fit).
	Sigma float64
}

// xiClamp bounds the fitted shape. Method-of-moments and PWM estimates blow
// up on tiny or pathological excess samples; thresholds stay finite and
// numerically sane for |ξ| ≤ 5 at any realistic q.
const xiClamp = 5.0

// valid reports whether the fit is usable for thresholding.
func (g GPD) valid() bool {
	return !math.IsNaN(g.Xi) && !math.IsInf(g.Xi, 0) &&
		g.Sigma > 0 && !math.IsInf(g.Sigma, 0) &&
		math.Abs(g.Xi) <= xiClamp
}

// cleanExcesses drops NaN/Inf/negative values and returns the usable
// excesses (the fit's sufficient statistics tolerate holes in the sample).
func cleanExcesses(excesses []float64) []float64 {
	out := make([]float64, 0, len(excesses))
	for _, x := range excesses {
		if math.IsNaN(x) || math.IsInf(x, 0) || x < 0 {
			continue
		}
		out = append(out, x)
	}
	return out
}

// FitGPDMoments fits a GPD to threshold excesses by the method of moments:
// ξ = (1 − mean²/var)/2, σ = mean·(mean²/var + 1)/2. ok is false when the
// sample is degenerate (fewer than 2 usable excesses, zero variance, or an
// out-of-range shape).
func FitGPDMoments(excesses []float64) (GPD, bool) {
	xs := cleanExcesses(excesses)
	n := float64(len(xs))
	if len(xs) < 2 {
		return GPD{}, false
	}
	var mean float64
	for _, x := range xs {
		mean += x
	}
	mean /= n
	var varsum float64
	for _, x := range xs {
		d := x - mean
		varsum += d * d
	}
	variance := varsum / (n - 1)
	if variance <= 0 || mean <= 0 {
		return GPD{}, false
	}
	r := mean * mean / variance
	g := GPD{Xi: 0.5 * (1 - r), Sigma: 0.5 * mean * (r + 1)}
	if !g.valid() {
		return GPD{}, false
	}
	return g, true
}

// FitGPDPWM fits a GPD to threshold excesses by probability-weighted
// moments (Hosking & Wallis): with ascending order statistics x_(i),
// b0 = mean, b1 = Σ (i/(n−1))·x_(i) / n, then ξ = 2 − b0/(b0 − 2·b1) and
// σ = 2·b0·b1/(b0 − 2·b1). ok is false on degenerate samples.
func FitGPDPWM(excesses []float64) (GPD, bool) {
	xs := cleanExcesses(excesses)
	if len(xs) < 2 {
		return GPD{}, false
	}
	sort.Float64s(xs)
	n := float64(len(xs))
	var b0, b1 float64
	for i, x := range xs {
		b0 += x
		b1 += float64(i) / (n - 1) * x
	}
	b0 /= n
	b1 /= n
	den := b0 - 2*b1
	if b0 <= 0 || den == 0 {
		return GPD{}, false
	}
	g := GPD{Xi: 2 - b0/den, Sigma: 2 * b0 * b1 / den}
	if !g.valid() {
		return GPD{}, false
	}
	return g, true
}

// FitGPD fits a GPD to threshold excesses, preferring the PWM estimate
// (more robust on the small peak sets of a weekly retrain window) and
// falling back to the method of moments. ok is false when both estimators
// reject the sample; the caller should then use an empirical quantile.
func FitGPD(excesses []float64) (GPD, bool) {
	if g, ok := FitGPDPWM(excesses); ok {
		return g, ok
	}
	return FitGPDMoments(excesses)
}

// POTThreshold evaluates the POT quantile zq for a fitted GPD: the level
// exceeded with probability q given n observations of which nu exceeded the
// peaks threshold u. It returns NaN when the inputs cannot produce a finite
// threshold (invalid fit, q outside (0, 1), or no peaks); any non-NaN
// result is finite and ≥ u whenever q·n ≤ nu. The threshold is monotone
// non-increasing in q: dz/dq = −σ·(qn/nu)^(−ξ−1)·(n/nu) < 0 for every ξ.
func POTThreshold(u float64, g GPD, n, nu int, q float64) float64 {
	if !g.valid() || n <= 0 || nu <= 0 || q <= 0 || q >= 1 ||
		math.IsNaN(u) || math.IsInf(u, 0) {
		return math.NaN()
	}
	ratio := q * float64(n) / float64(nu)
	var z float64
	if math.Abs(g.Xi) < 1e-9 {
		z = u - g.Sigma*math.Log(ratio)
	} else {
		z = u + g.Sigma/g.Xi*(math.Pow(ratio, -g.Xi)-1)
	}
	if math.IsNaN(z) || math.IsInf(z, 0) {
		return math.NaN()
	}
	return z
}
