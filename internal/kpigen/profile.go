// Package kpigen synthesizes the three KPI archetypes of the paper's case
// study (Table 1) with exact ground-truth anomaly labels. The proprietary
// search-engine data cannot be redistributed, so each KPI is reproduced by
// its published statistical profile — seasonality strength, dispersion
// (coefficient of variation), sampling interval, length, and anomaly rate —
// plus the anomaly shapes the paper describes (§2.1: jitters, slow
// ramp-ups, sudden spikes and dips, in different severity levels). Those
// properties are what the evaluation actually exercises: they decide which
// detectors win, how severe class imbalance is, and how hard the accuracy
// preference is to satisfy.
package kpigen

import (
	"fmt"
	"time"

	"opprentice/internal/timeseries"
)

// Kind selects the qualitative shape of a KPI.
type Kind int

// The three KPI archetypes of the case study.
const (
	// Volume is page-view-like: strongly seasonal volume whose anomalies
	// are mostly sudden drops, dips and ramp-downs.
	Volume Kind = iota
	// Count is #SR-like: a bursty, heavy-tailed low count whose anomalies
	// are extreme high values and sustained high levels.
	Count
	// Latency is SRT-like: a tight percentile latency whose anomalies are
	// upward shifts.
	Latency
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Volume:
		return "volume"
	case Count:
		return "count"
	case Latency:
		return "latency"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Scale selects how much data a profile generates. The paper's 1-minute
// intervals over ~25 weeks are faithful but slow for CI; shapes are
// scale-stable.
type Scale int

// Scales from unit-test-sized to paper-sized.
const (
	// Small is for unit tests: coarse interval, few weeks.
	Small Scale = iota
	// Medium is the evalbench/bench default.
	Medium
	// Full is the paper-scale configuration of Table 1.
	Full
)

// String names the scale.
func (s Scale) String() string {
	switch s {
	case Small:
		return "small"
	case Medium:
		return "medium"
	case Full:
		return "full"
	default:
		return fmt.Sprintf("Scale(%d)", int(s))
	}
}

// Profile parameterizes one synthetic KPI.
type Profile struct {
	Name        string
	Kind        Kind
	Interval    time.Duration
	Weeks       int
	Base        float64 // normal level (arbitrary units)
	SeasonalAmp float64 // daily seasonal amplitude as a fraction of Base
	WeekendDip  float64 // weekend level reduction fraction (weekly season)
	NoiseFrac   float64 // AR(1) noise std as a fraction of Base
	HeavyTail   float64 // lognormal sigma for Count-like KPIs (0 = Gaussian)
	AnomalyRate float64 // target fraction of anomalous points
	MissingRate float64 // fraction of points lost by collection ("dirty data")
	// NovelFromWeek, when > 0, makes a new anomaly type (jitter, for Volume
	// KPIs) appear only from that 0-based week on — the §3.2 scenario that
	// motivates incremental retraining ("new types of anomalies might
	// emerge in the future").
	NovelFromWeek int
}

// PV returns the page-view profile: strong seasonality, Cv ≈ 0.48,
// 7.8 % anomalous points; 1-minute interval and 25 weeks at Full scale.
func PV(scale Scale) Profile {
	p := Profile{
		Name:        "pv",
		Kind:        Volume,
		Base:        10000,
		SeasonalAmp: 0.65,
		WeekendDip:  0.15,
		NoiseFrac:   0.03,
		AnomalyRate: 0.078,
	}
	switch scale {
	case Small:
		p.Interval, p.Weeks = 30*time.Minute, 12
	case Medium:
		p.Interval, p.Weeks = 10*time.Minute, 18
	default:
		p.Interval, p.Weeks = time.Minute, 25
	}
	return p
}

// SR returns the slow-responses profile: weak seasonality, heavy-tailed
// dispersion Cv ≈ 2.1, 2.8 % anomalous points; 1-minute interval and 19
// weeks at Full scale.
func SR(scale Scale) Profile {
	p := Profile{
		Name:        "sr",
		Kind:        Count,
		Base:        20,
		SeasonalAmp: 0.12,
		WeekendDip:  0.05,
		NoiseFrac:   0.10,
		HeavyTail:   1.25,
		AnomalyRate: 0.028,
	}
	switch scale {
	case Small:
		p.Interval, p.Weeks = 30*time.Minute, 12
	case Medium:
		p.Interval, p.Weeks = 10*time.Minute, 18
	default:
		p.Interval, p.Weeks = time.Minute, 19
	}
	return p
}

// SRT returns the search-response-time profile: moderate seasonality, tight
// dispersion Cv ≈ 0.07, 7.4 % anomalous points; 60-minute interval and 16
// weeks at every scale (the paper's SRT is already coarse).
func SRT(scale Scale) Profile {
	p := Profile{
		Name:        "srt",
		Kind:        Latency,
		Base:        250,
		SeasonalAmp: 0.10,
		WeekendDip:  0.02,
		NoiseFrac:   0.02,
		AnomalyRate: 0.074,
	}
	switch scale {
	case Small:
		p.Interval, p.Weeks = time.Hour, 12
	default:
		p.Interval, p.Weeks = time.Hour, 16
	}
	return p
}

// Profiles returns the three case-study KPIs at the given scale, in the
// paper's order.
func Profiles(scale Scale) []Profile {
	return []Profile{PV(scale), SR(scale), SRT(scale)}
}

// SeasonalStrength measures how seasonal a series is as the fraction of
// variance explained by its mean daily profile: near 1 for PV-like data,
// near 0 for noise. It is the quantitative stand-in for Table 1's
// strong/weak/moderate column.
func SeasonalStrength(s *timeseries.Series) float64 {
	ppd, err := s.PointsPerDay()
	if err != nil || s.Len() < 2*ppd {
		return 0
	}
	profile := make([]float64, ppd)
	counts := make([]int, ppd)
	for i, v := range s.Values {
		profile[i%ppd] += v
		counts[i%ppd]++
	}
	for i := range profile {
		profile[i] /= float64(counts[i])
	}
	mean := s.Mean()
	var total, resid float64
	for i, v := range s.Values {
		d := v - mean
		total += d * d
		r := v - profile[i%ppd]
		resid += r * r
	}
	if total == 0 {
		return 0
	}
	strength := 1 - resid/total
	if strength < 0 {
		return 0
	}
	return strength
}
