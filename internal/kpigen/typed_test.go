package kpigen

import (
	"math/rand"
	"testing"

	"opprentice/internal/core"
)

// typedSeed pins the typed-label derivation tests (PR 5 seed policy).
const typedSeed int64 = 20260810

// TestTypedLabelsExactAtWindowEdges: the derivation is half-open [Start,
// End) with no off-by-one — index Start carries the class, index End (and
// Start−1) do not, for every injected window across seeded profiles.
func TestTypedLabelsExactAtWindowEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(typedSeed))
	for _, p := range Profiles(Small) {
		for trial := 0; trial < 3; trial++ {
			d := Generate(p, typedSeed+rng.Int63n(1000))
			types := TypedLabels(d)
			if len(types) != d.Series.Len() {
				t.Fatalf("%s: %d types for %d points", p.Name, len(types), d.Series.Len())
			}
			for _, a := range d.Anomalies {
				want := ClassOf(a.Type)
				if want == classNone {
					t.Fatalf("%s: anomaly type %v maps to ClassNone", p.Name, a.Type)
				}
				if got := types[a.Window.Start]; got != want {
					t.Errorf("%s: types[Start=%d] = %d, want %d", p.Name, a.Window.Start, got, want)
				}
				if got := types[a.Window.End-1]; got != want {
					t.Errorf("%s: types[End-1=%d] = %d, want %d", p.Name, a.Window.End-1, got, want)
				}
				if a.Window.End < len(types) && types[a.Window.End] == want && !d.Labels[a.Window.End] {
					t.Errorf("%s: types[End=%d] typed beyond the half-open window", p.Name, a.Window.End)
				}
			}
		}
	}
}

// TestTypedLabelsAgreeWithLabels: a point is typed exactly when it is
// labeled anomalous — the class channel never disagrees with ground truth.
func TestTypedLabelsAgreeWithLabels(t *testing.T) {
	for _, p := range Profiles(Small) {
		d := Generate(p, typedSeed+7)
		types := TypedLabels(d)
		for i, typed := range types {
			if (typed != classNone) != bool(d.Labels[i]) {
				t.Fatalf("%s: point %d typed=%d labeled=%v", p.Name, i, typed, d.Labels[i])
			}
		}
	}
}

// TestClassOfCoversAllShapes pins the injected-shape → wire-class mapping.
func TestClassOfCoversAllShapes(t *testing.T) {
	want := map[AnomalyType]uint8{
		SuddenSpike: classSpike,
		SuddenDrop:  classDrop,
		RampDown:    classRamp,
		LevelShift:  classLevelShift,
		Jitter:      classJitter,
	}
	for typ, class := range want {
		if got := ClassOf(typ); got != class {
			t.Errorf("ClassOf(%v) = %v, want %v", typ, got, class)
		}
	}
	if got := ClassOf(AnomalyType(99)); got != classNone {
		t.Errorf("ClassOf(unknown) = %v, want classNone", got)
	}
}

// TestWireCodesMatchCore pins kpigen's restated class codes to core's
// AnomalyClass constants — the two packages cannot import each other in
// non-test code, so this is the guard against drift.
func TestWireCodesMatchCore(t *testing.T) {
	pins := []struct {
		name string
		ours uint8
		core core.AnomalyClass
	}{
		{"none", classNone, core.ClassNone},
		{"spike", classSpike, core.ClassSpike},
		{"drop", classDrop, core.ClassDrop},
		{"ramp", classRamp, core.ClassRamp},
		{"level_shift", classLevelShift, core.ClassLevelShift},
		{"jitter", classJitter, core.ClassJitter},
	}
	for _, p := range pins {
		if p.ours != uint8(p.core) {
			t.Errorf("%s: kpigen code %d != core code %d", p.name, p.ours, uint8(p.core))
		}
	}
}
