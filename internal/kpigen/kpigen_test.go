package kpigen

import (
	"math"
	"testing"
	"time"

	"opprentice/internal/timeseries"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(PV(Small), 1)
	b := Generate(PV(Small), 1)
	if a.Series.Len() != b.Series.Len() {
		t.Fatal("lengths differ")
	}
	for i := range a.Series.Values {
		if a.Series.Values[i] != b.Series.Values[i] {
			t.Fatalf("values diverge at %d", i)
		}
	}
	c := Generate(PV(Small), 2)
	same := true
	for i := range a.Series.Values {
		if a.Series.Values[i] != c.Series.Values[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should differ")
	}
}

func TestGenerateLengthAndAlignment(t *testing.T) {
	for _, p := range Profiles(Small) {
		d := Generate(p, 3)
		ppw, err := d.Series.PointsPerWeek()
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if got, want := d.Series.Len(), p.Weeks*ppw; got != want {
			t.Errorf("%s: len = %d, want %d", p.Name, got, want)
		}
		if len(d.Labels) != d.Series.Len() {
			t.Errorf("%s: labels/series length mismatch", p.Name)
		}
		if d.Series.Start.Weekday() != time.Monday {
			t.Errorf("%s: series should start on Monday", p.Name)
		}
	}
}

func TestAnomalyRatesNearTargets(t *testing.T) {
	for _, p := range Profiles(Medium) {
		d := Generate(p, 7)
		got := d.Labels.Fraction()
		if math.Abs(got-p.AnomalyRate) > 0.25*p.AnomalyRate+0.002 {
			t.Errorf("%s: anomaly fraction %v, want ≈ %v", p.Name, got, p.AnomalyRate)
		}
	}
}

func TestDispersionMatchesTable1(t *testing.T) {
	// Table 1: Cv(PV) ≈ 0.48, Cv(#SR) ≈ 2.1, Cv(SRT) ≈ 0.07.
	// The synthetic KPIs must land in the same dispersion regimes.
	pv := Generate(PV(Medium), 11)
	sr := Generate(SR(Medium), 11)
	srt := Generate(SRT(Medium), 11)
	if cv := pv.Series.Cv(); cv < 0.3 || cv > 0.7 {
		t.Errorf("PV Cv = %v, want ≈ 0.48", cv)
	}
	if cv := sr.Series.Cv(); cv < 1.2 || cv > 3.5 {
		t.Errorf("#SR Cv = %v, want ≈ 2.1", cv)
	}
	if cv := srt.Series.Cv(); cv < 0.03 || cv > 0.15 {
		t.Errorf("SRT Cv = %v, want ≈ 0.07", cv)
	}
	// And the ordering must hold strictly.
	if !(sr.Series.Cv() > pv.Series.Cv() && pv.Series.Cv() > srt.Series.Cv()) {
		t.Error("Cv ordering #SR > PV > SRT violated")
	}
}

func TestSeasonalityOrdering(t *testing.T) {
	// Table 1: PV strong, SRT moderate, #SR weak.
	pv := SeasonalStrength(Generate(PV(Medium), 5).Series)
	sr := SeasonalStrength(Generate(SR(Medium), 5).Series)
	srt := SeasonalStrength(Generate(SRT(Medium), 5).Series)
	if !(pv > srt && srt > sr) {
		t.Errorf("seasonal strength ordering violated: pv=%v srt=%v sr=%v", pv, srt, sr)
	}
	if pv < 0.5 {
		t.Errorf("PV seasonal strength = %v, want strong (> 0.5)", pv)
	}
	if sr > 0.4 {
		t.Errorf("#SR seasonal strength = %v, want weak (< 0.4)", sr)
	}
}

func TestSeasonalStrengthDegenerate(t *testing.T) {
	s := timeseries.New("x", genesis, 7*time.Minute) // doesn't divide a day
	for i := 0; i < 100; i++ {
		s.Append(1)
	}
	if got := SeasonalStrength(s); got != 0 {
		t.Errorf("non-divisible interval strength = %v, want 0", got)
	}
	flat := timeseries.New("flat", genesis, time.Hour)
	for i := 0; i < 72; i++ {
		flat.Append(5)
	}
	if got := SeasonalStrength(flat); got != 0 {
		t.Errorf("constant series strength = %v, want 0", got)
	}
}

func TestAnomalyWindowsMatchLabels(t *testing.T) {
	d := Generate(PV(Small), 9)
	rebuilt := make(timeseries.Labels, d.Series.Len())
	for _, a := range d.Anomalies {
		if a.Window.Start < 0 || a.Window.End > d.Series.Len() || a.Window.Len() < 1 {
			t.Fatalf("bad window %+v", a.Window)
		}
		for i := a.Window.Start; i < a.Window.End; i++ {
			if rebuilt[i] {
				t.Fatalf("overlapping anomaly windows at %d", i)
			}
			rebuilt[i] = true
		}
	}
	for i := range rebuilt {
		if rebuilt[i] != d.Labels[i] {
			t.Fatalf("labels and windows disagree at %d", i)
		}
	}
}

func TestValuesNonNegative(t *testing.T) {
	for _, p := range Profiles(Small) {
		d := Generate(p, 13)
		for i, v := range d.Series.Values {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("%s: bad value %v at %d", p.Name, v, i)
			}
		}
	}
}

func TestVolumeAnomaliesMostlyBelowBaseline(t *testing.T) {
	// PV anomalies are drops: the mean of anomalous points should sit well
	// below the mean of normal points.
	d := Generate(PV(Medium), 17)
	var anomSum, normSum float64
	var anomN, normN int
	for i, v := range d.Series.Values {
		if d.Labels[i] {
			anomSum += v
			anomN++
		} else {
			normSum += v
			normN++
		}
	}
	if anomN == 0 {
		t.Fatal("no anomalies generated")
	}
	if anomSum/float64(anomN) >= 0.95*normSum/float64(normN) {
		t.Errorf("PV anomalous mean %v should sit below normal mean %v",
			anomSum/float64(anomN), normSum/float64(normN))
	}
}

func TestCountAnomaliesExtremeHigh(t *testing.T) {
	// #SR anomalies are extreme values: the anomalous mean should be far
	// above the normal mean — this is what makes simple threshold the best
	// basic detector for #SR in Fig. 9(b).
	d := Generate(SR(Medium), 19)
	var anomSum, normSum float64
	var anomN, normN int
	for i, v := range d.Series.Values {
		if d.Labels[i] {
			anomSum += v
			anomN++
		} else {
			normSum += v
			normN++
		}
	}
	if anomN == 0 {
		t.Fatal("no anomalies generated")
	}
	if anomSum/float64(anomN) < 3*normSum/float64(normN) {
		t.Errorf("#SR anomalous mean %v should dwarf normal mean %v",
			anomSum/float64(anomN), normSum/float64(normN))
	}
}

func TestKindAndScaleStrings(t *testing.T) {
	if Volume.String() != "volume" || Count.String() != "count" || Latency.String() != "latency" {
		t.Error("kind names wrong")
	}
	if Small.String() != "small" || Medium.String() != "medium" || Full.String() != "full" {
		t.Error("scale names wrong")
	}
	if SuddenDrop.String() != "sudden_drop" || Jitter.String() != "jitter" {
		t.Error("anomaly names wrong")
	}
}

func TestFullScaleProfilesMatchTable1(t *testing.T) {
	pv, sr, srt := PV(Full), SR(Full), SRT(Full)
	if pv.Interval != time.Minute || pv.Weeks != 25 {
		t.Errorf("PV full = %v/%d weeks, want 1m/25", pv.Interval, pv.Weeks)
	}
	if sr.Interval != time.Minute || sr.Weeks != 19 {
		t.Errorf("SR full = %v/%d weeks, want 1m/19", sr.Interval, sr.Weeks)
	}
	if srt.Interval != time.Hour || srt.Weeks != 16 {
		t.Errorf("SRT full = %v/%d weeks, want 60m/16", srt.Interval, srt.Weeks)
	}
}

func TestMissingRateInjection(t *testing.T) {
	p := PV(Small)
	p.MissingRate = 0.05
	d := Generate(p, 31)
	if d.Series.Missing == nil {
		t.Fatal("missing mask not created")
	}
	missing := 0
	for i := 1; i < d.Series.Len(); i++ {
		if d.Series.IsMissing(i) {
			missing++
			if d.Series.Values[i] != d.Series.Values[i-1] {
				t.Fatalf("missing point %d not carried forward", i)
			}
		}
	}
	frac := float64(missing) / float64(d.Series.Len())
	if frac < 0.03 || frac > 0.08 {
		t.Errorf("missing fraction = %v, want ≈ 0.05", frac)
	}
	if d.Series.IsMissing(0) {
		t.Error("first point can never be missing (nothing to carry forward)")
	}
}

func TestZeroMissingRateNoMask(t *testing.T) {
	d := Generate(PV(Small), 32)
	if d.Series.Missing != nil {
		t.Error("mask should stay nil at MissingRate 0")
	}
}

func TestNovelFromWeekGatesJitter(t *testing.T) {
	p := PV(Small)
	p.NovelFromWeek = 8
	d := Generate(p, 41)
	ppw, _ := d.Series.PointsPerWeek()
	var before, after int
	for _, a := range d.Anomalies {
		if a.Type != Jitter {
			continue
		}
		if a.Window.Start/ppw < p.NovelFromWeek {
			before++
		} else {
			after++
		}
	}
	if before != 0 {
		t.Errorf("%d jitter anomalies before the switch-over week", before)
	}
	if after == 0 {
		t.Error("no jitter anomalies after the switch-over week")
	}
}
