package kpigen

// Wire anomaly-class codes, mirroring core's AnomalyClass constants. kpigen
// cannot import core (core's own tests generate data with kpigen, which would
// cycle), so the codes are restated here and pinned equal to core's in
// typedwire_test.go. They are wire-stable: never renumber.
const (
	classNone       uint8 = 0
	classSpike      uint8 = 1
	classDrop       uint8 = 2
	classRamp       uint8 = 3
	classLevelShift uint8 = 4
	classJitter     uint8 = 5
)

// ClassOf maps an injected anomaly shape to the wire anomaly-class code the
// multi-class head predicts (core.AnomalyClass values).
func ClassOf(t AnomalyType) uint8 {
	switch t {
	case SuddenSpike:
		return classSpike
	case SuddenDrop:
		return classDrop
	case RampDown:
		return classRamp
	case LevelShift:
		return classLevelShift
	case Jitter:
		return classJitter
	}
	return classNone
}

// TypedLabels derives one anomaly-class code per point from the dataset's
// injected anomaly schedule: points inside a half-open injection window
// [Start, End) carry that anomaly's class, everything else classNone.
// Windows never overlap (injection enforces ≥ 1 point of separation), so the
// derivation is unambiguous and exact at window edges: index Start is typed,
// index End is not.
func TypedLabels(d *Dataset) []uint8 {
	out := make([]uint8, d.Series.Len())
	for _, a := range d.Anomalies {
		c := ClassOf(a.Type)
		for i := a.Window.Start; i < a.Window.End && i < len(out); i++ {
			out[i] = c
		}
	}
	return out
}
