package kpigen

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"opprentice/internal/timeseries"
)

// AnomalyType classifies an injected anomaly, mirroring the unexpected
// patterns §2.1 lists.
type AnomalyType int

// The injected anomaly shapes.
const (
	SuddenDrop AnomalyType = iota
	SuddenSpike
	RampDown
	LevelShift
	Jitter
)

// String names the anomaly type.
func (a AnomalyType) String() string {
	switch a {
	case SuddenDrop:
		return "sudden_drop"
	case SuddenSpike:
		return "sudden_spike"
	case RampDown:
		return "ramp_down"
	case LevelShift:
		return "level_shift"
	case Jitter:
		return "jitter"
	default:
		return fmt.Sprintf("AnomalyType(%d)", int(a))
	}
}

// Anomaly records one injected anomalous window and its ground truth.
type Anomaly struct {
	Type      AnomalyType
	Window    timeseries.Window
	Magnitude float64 // type-specific: depth, multiplier, or shift fraction
}

// Dataset is a generated KPI with exact ground truth.
type Dataset struct {
	Profile   Profile
	Series    *timeseries.Series
	Labels    timeseries.Labels
	Anomalies []Anomaly
}

// genesis anchors all synthetic series at the same Monday midnight so that
// week boundaries align with index arithmetic.
var genesis = time.Date(2015, 1, 5, 0, 0, 0, 0, time.UTC)

// Generate synthesizes the KPI described by p, deterministically for a given
// seed.
func Generate(p Profile, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	ppd := int(timeseries.Day / p.Interval)
	ppw := 7 * ppd
	n := p.Weeks * ppw

	s := timeseries.New(p.Name, genesis, p.Interval)
	s.Values = make([]float64, n)

	// Baseline: daily diurnal shape modulated by a weekend dip, plus AR(1)
	// noise. Count KPIs get a mean-corrected lognormal multiplier for their
	// heavy tail.
	ar := 0.0
	const phi = 0.7
	sigma := p.NoiseFrac * p.Base * math.Sqrt(1-phi*phi)
	for i := 0; i < n; i++ {
		base := p.Base * seasonFactor(p, i, ppd, ppw)
		ar = phi*ar + rng.NormFloat64()*sigma
		v := base + ar
		if p.HeavyTail > 0 {
			v *= math.Exp(p.HeavyTail*rng.NormFloat64() - p.HeavyTail*p.HeavyTail/2)
		}
		if v < 0 {
			v = 0
		}
		s.Values[i] = v
	}

	labels := make(timeseries.Labels, n)
	anomalies := injectAnomalies(p, s, labels, rng)
	if p.MissingRate > 0 {
		injectMissing(s, p.MissingRate, rng)
	}
	return &Dataset{Profile: p, Series: s, Labels: labels, Anomalies: anomalies}
}

// injectMissing simulates collection loss (§6 "dirty data"): each point is
// independently lost with the given probability; lost points carry the
// previous observation forward, as monitoring pipelines typically do, and
// are flagged in the series' Missing mask.
func injectMissing(s *timeseries.Series, rate float64, rng *rand.Rand) {
	s.Missing = make([]bool, s.Len())
	for i := 1; i < s.Len(); i++ {
		if rng.Float64() < rate {
			s.Missing[i] = true
			s.Values[i] = s.Values[i-1]
		}
	}
}

// seasonFactor is the multiplicative seasonal component at point i.
func seasonFactor(p Profile, i, ppd, ppw int) float64 {
	tod := float64(i%ppd) / float64(ppd)
	// Diurnal: night trough, afternoon peak, with a mild second harmonic so
	// the shape is not a pure sinusoid.
	diurnal := -math.Cos(2*math.Pi*tod) + 0.3*math.Sin(4*math.Pi*tod)
	f := 1 + p.SeasonalAmp*diurnal/1.3
	day := (i % ppw) / ppd
	if day >= 5 { // Saturday, Sunday
		f *= 1 - p.WeekendDip
	}
	if f < 0.05 {
		f = 0.05
	}
	return f
}

// injectAnomalies mutates the series in place until roughly
// p.AnomalyRate·len(points) are anomalous, labeling each window. Windows
// never overlap and keep one point of separation so labeled windows match
// injected ones exactly. Placement is stratified round-robin over weeks so
// every week — in particular every test week — sees its share of anomalies,
// as the paper's months of real data do.
func injectAnomalies(p Profile, s *timeseries.Series, labels timeseries.Labels, rng *rand.Rand) []Anomaly {
	n := s.Len()
	target := int(p.AnomalyRate * float64(n))
	var anomalies []Anomaly
	injected := 0
	ppw, err := s.PointsPerWeek()
	weeks := 0
	if err == nil {
		weeks = n / ppw
	}
	weekOrder := rng.Perm(maxI(weeks, 1))
	placed := 0
	perMin := float64(n) / (float64(p.Weeks) * 7 * 24 * 60) // points per minute
	// Guard against pathological profiles that cannot fit the target.
	for attempts := 0; injected < target && attempts < 50*n; attempts++ {
		typ, dur, mag := sampleAnomaly(p.Kind, perMin, rng)
		if dur > target-injected+3 {
			dur = target - injected
			if dur < 1 {
				break
			}
		}
		var start int
		if weeks > 0 && dur < ppw {
			week := weekOrder[placed%len(weekOrder)]
			start = week*ppw + rng.Intn(ppw-dur)
		} else {
			start = rng.Intn(n - dur)
		}
		if !windowFree(labels, start, dur) {
			continue
		}
		if p.NovelFromWeek > 0 && ppw > 0 {
			week := start / ppw
			if week < p.NovelFromWeek && typ == Jitter {
				// The novel type does not exist yet; use a classic one.
				typ = SuddenDrop
			} else if week >= p.NovelFromWeek && typ != Jitter && rng.Float64() < 0.5 {
				// From the switch-over week, half the anomalies are novel.
				typ = Jitter
			}
		}
		placed++
		applyAnomaly(s.Values[start:start+dur], typ, mag, p, rng)
		for i := start; i < start+dur; i++ {
			labels[i] = true
		}
		anomalies = append(anomalies, Anomaly{
			Type:      typ,
			Window:    timeseries.Window{Start: start, End: start + dur},
			Magnitude: mag,
		})
		injected += dur
	}
	return anomalies
}

// windowFree reports whether [start-1, start+dur] is entirely unlabeled, so
// injected windows stay separated by at least one normal point.
func windowFree(labels timeseries.Labels, start, dur int) bool {
	lo, hi := start-1, start+dur+1
	if lo < 0 {
		lo = 0
	}
	if hi > len(labels) {
		hi = len(labels)
	}
	for i := lo; i < hi; i++ {
		if labels[i] {
			return false
		}
	}
	return true
}

// sampleAnomaly draws an anomaly type, duration and magnitude appropriate
// for the KPI kind. Durations are sampled in wall-clock minutes and
// converted with perMin (points per minute) so that a "2-hour level shift"
// spans 2 hours at every sampling interval; each anomaly covers at least one
// point.
func sampleAnomaly(kind Kind, perMin float64, rng *rand.Rand) (typ AnomalyType, dur int, mag float64) {
	points := func(loMin, hiMin int) int {
		minutes := loMin + rng.Intn(hiMin-loMin+1)
		d := int(float64(minutes) * perMin)
		if d < 1 {
			d = 1
		}
		return d
	}
	u := rng.Float64()
	switch kind {
	case Volume:
		switch {
		case u < 0.45: // sudden drop by 20–60 % for 10–120 min
			return SuddenDrop, points(10, 120), 0.2 + 0.4*rng.Float64()
		case u < 0.65: // shallow dip by 12–30 % for 10–45 min
			return SuddenDrop, points(10, 45), 0.12 + 0.18*rng.Float64()
		case u < 0.80: // slow ramp down to 25–55 % over 1–6 h
			return RampDown, points(60, 360), 0.25 + 0.3*rng.Float64()
		case u < 0.90: // jitter for 1–4 h
			return Jitter, points(60, 240), 0.15 + 0.2*rng.Float64()
		default: // spike up by 40–120 % for 10–60 min
			return SuddenSpike, points(10, 60), 0.4 + 0.8*rng.Float64()
		}
	case Count:
		// Count anomalies must clear the heavy lognormal tail of normal
		// data decisively — in the paper the #SR anomalies are extreme
		// enough that a static threshold reaches precision 0.92.
		switch {
		case u < 0.55: // burst: 30–100× the base level for 10–60 min
			return SuddenSpike, points(10, 60), 30 + 70*rng.Float64()
		default: // sustained high level: 15–40× for 2–12 h
			return LevelShift, points(120, 720), 15 + 25*rng.Float64()
		}
	default: // Latency
		switch {
		case u < 0.5: // sustained latency shift up by 12–35 % for 4–24 h
			return LevelShift, points(240, 1440), 0.12 + 0.23*rng.Float64()
		case u < 0.8: // spike up by 20–60 % for 1–4 h
			return SuddenSpike, points(60, 240), 0.2 + 0.4*rng.Float64()
		default: // slow ramp up to 15–35 % over 6–18 h
			return RampDown, points(360, 1080), 0.15 + 0.2*rng.Float64()
		}
	}
}

// applyAnomaly mutates one window of values according to the anomaly type.
// For Volume KPIs magnitudes act downward (drops), for the others upward,
// matching what the operators of each KPI care about.
func applyAnomaly(window []float64, typ AnomalyType, mag float64, p Profile, rng *rand.Rand) {
	up := p.Kind != Volume
	for i := range window {
		switch typ {
		case SuddenDrop:
			window[i] *= 1 - mag
		case SuddenSpike:
			if p.Kind == Count {
				window[i] = p.Base*mag + window[i]
			} else {
				window[i] *= 1 + mag
			}
		case RampDown:
			// Linear ramp to full magnitude at the end of the window.
			frac := float64(i+1) / float64(len(window))
			if up {
				window[i] *= 1 + mag*frac
			} else {
				window[i] *= 1 - mag*frac
			}
		case LevelShift:
			if p.Kind == Count {
				window[i] = p.Base*mag + window[i]*0.5
			} else {
				window[i] *= 1 + mag
			}
		case Jitter:
			sign := float64(1 - 2*(i%2))
			window[i] *= 1 + sign*mag*(0.6+0.4*rng.Float64())
		}
		if window[i] < 0 {
			window[i] = 0
		}
	}
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}
