package registry

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func mustPublishSet(t *testing.T, r *Registry, series string, gen int, kinds ...string) Generation {
	t.Helper()
	payloads := map[string][]byte{
		KindVerdict: []byte(fmt.Sprintf("verdict payload generation %d", gen)),
	}
	for _, k := range kinds {
		payloads[k] = []byte(fmt.Sprintf("%s payload generation %d", k, gen))
	}
	g, err := r.PublishSet(series, Info{
		Fingerprint: 0xfeed,
		Points:      gen * 100,
		CThld:       0.5,
		TrainedAt:   time.Date(2015, 1, gen, 0, 0, 0, 0, time.UTC),
	}, payloads)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestPublishSetLoadSetRoundTrip(t *testing.T) {
	r := openTest(t, 3)
	g := mustPublishSet(t, r, "pv", 1, KindType)
	if len(g.Artifacts) != 2 || g.Artifacts[0].Kind != KindVerdict || g.Artifacts[1].Kind != KindType {
		t.Fatalf("artifacts = %+v, want [verdict atype]", g.Artifacts)
	}
	// The legacy mirror fields must duplicate the verdict artifact.
	if g.File != g.Artifacts[0].File || g.CRC != g.Artifacts[0].CRC || g.Size != g.Artifacts[0].Size {
		t.Fatalf("legacy fields do not mirror the verdict ref: %+v", g)
	}
	set, err := r.LoadSet("pv")
	if err != nil {
		t.Fatal(err)
	}
	if string(set.Payloads[KindVerdict]) != "verdict payload generation 1" {
		t.Fatalf("verdict payload = %q", set.Payloads[KindVerdict])
	}
	if string(set.Payloads[KindType]) != "atype payload generation 1" {
		t.Fatalf("type payload = %q", set.Payloads[KindType])
	}
	if len(set.Unavailable) != 0 {
		t.Fatalf("unavailable = %v, want none", set.Unavailable)
	}
	// Load still serves the verdict artifact alone.
	art, err := r.Load("pv")
	if err != nil {
		t.Fatal(err)
	}
	if string(art.Payload) != "verdict payload generation 1" {
		t.Fatalf("Load payload = %q", art.Payload)
	}
}

func TestPublishSetRequiresVerdict(t *testing.T) {
	r := openTest(t, 3)
	if _, err := r.PublishSet("pv", Info{}, map[string][]byte{KindType: []byte("x")}); err == nil {
		t.Fatal("publish without a verdict payload succeeded")
	}
	if _, err := r.PublishSet("pv", Info{}, map[string][]byte{KindVerdict: []byte("x"), "Bad/Kind": []byte("y")}); err == nil {
		t.Fatal("publish with an invalid kind succeeded")
	}
}

// TestTornTypeArtifactQuarantinesOnlyThatKind: a flipped bit in the type
// artifact costs the type head, not the generation — the verdict still
// serves from the same generation and the damaged file is set aside.
func TestTornTypeArtifactQuarantinesOnlyThatKind(t *testing.T) {
	r := openTest(t, 3)
	g := mustPublishSet(t, r, "pv", 1, KindType)
	dir := filepath.Join(r.dir, "pv")
	tpath := filepath.Join(dir, g.Artifacts[1].File)
	data, err := os.ReadFile(tpath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-3] ^= 0xFF
	if err := os.WriteFile(tpath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	set, err := r.LoadSet("pv")
	if err != nil {
		t.Fatal(err)
	}
	if set.Gen != 1 {
		t.Fatalf("served gen %d, want 1 (verdict must not fall back on the type head's account)", set.Gen)
	}
	if string(set.Payloads[KindVerdict]) != "verdict payload generation 1" {
		t.Fatalf("verdict payload = %q", set.Payloads[KindVerdict])
	}
	if _, ok := set.Payloads[KindType]; ok {
		t.Fatal("damaged type payload was served")
	}
	if len(set.Unavailable) != 1 || set.Unavailable[0] != KindType {
		t.Fatalf("unavailable = %v, want [atype]", set.Unavailable)
	}
	if _, err := os.Stat(tpath + ".corrupt"); err != nil {
		t.Fatalf("damaged type artifact not quarantined: %v", err)
	}
	if got := r.Stats().ChecksumFailures; got != 1 {
		t.Fatalf("ChecksumFailures = %d, want 1", got)
	}
}

// TestTornVerdictFallsBackWholeGeneration: verdict damage still walks back a
// whole generation, and the older generation's full kind set is served.
func TestTornVerdictFallsBackWholeGeneration(t *testing.T) {
	r := openTest(t, 3)
	mustPublishSet(t, r, "pv", 1, KindType)
	g2 := mustPublishSet(t, r, "pv", 2, KindType)
	dir := filepath.Join(r.dir, "pv")
	vpath := filepath.Join(dir, g2.File)
	data, err := os.ReadFile(vpath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-3] ^= 0xFF
	if err := os.WriteFile(vpath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	set, err := r.LoadSet("pv")
	if err != nil {
		t.Fatal(err)
	}
	if set.Gen != 1 {
		t.Fatalf("served gen %d, want fallback to 1", set.Gen)
	}
	if string(set.Payloads[KindType]) != "atype payload generation 1" {
		t.Fatalf("fallback type payload = %q", set.Payloads[KindType])
	}
	man, err := r.Manifest("pv")
	if err != nil {
		t.Fatal(err)
	}
	if man.Current != 1 {
		t.Fatalf("fallback not persisted: current = %d", man.Current)
	}
}

func TestQuarantineKind(t *testing.T) {
	r := openTest(t, 3)
	g := mustPublishSet(t, r, "pv", 1, KindType)
	if err := r.QuarantineKind("pv", g.Gen, KindType); err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(r.dir, "pv")
	if _, err := os.Stat(filepath.Join(dir, g.Artifacts[1].File) + ".corrupt"); err != nil {
		t.Fatalf("type artifact not set aside: %v", err)
	}
	set, err := r.LoadSet("pv")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := set.Payloads[KindType]; ok {
		t.Fatal("quarantined kind still served")
	}
	if err := r.QuarantineKind("pv", g.Gen, "nosuch"); err == nil {
		t.Fatal("quarantining an unknown kind succeeded")
	}
	if err := r.QuarantineKind("pv", 99, KindType); err == nil {
		t.Fatal("quarantining an unknown generation succeeded")
	}
}

// TestQuarantineGenerationSetsAsideAllKinds: whole-generation quarantine
// (a snapshot that decodes but cannot load) discredits every kind.
func TestQuarantineGenerationSetsAsideAllKinds(t *testing.T) {
	r := openTest(t, 3)
	mustPublishSet(t, r, "pv", 1, KindType)
	g2 := mustPublishSet(t, r, "pv", 2, KindType)
	if err := r.Quarantine("pv", g2.Gen); err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(r.dir, "pv")
	for _, ref := range g2.Artifacts {
		if _, err := os.Stat(filepath.Join(dir, ref.File) + ".corrupt"); err != nil {
			t.Fatalf("%s artifact not set aside: %v", ref.Kind, err)
		}
	}
	set, err := r.LoadSet("pv")
	if err != nil {
		t.Fatal(err)
	}
	if set.Gen != 1 {
		t.Fatalf("served gen %d, want fallback to 1", set.Gen)
	}
}

// TestRollbackRestoresFullKindSet: rolling back serves the older
// generation's verdict AND type artifacts bitwise.
func TestRollbackRestoresFullKindSet(t *testing.T) {
	r := openTest(t, 3)
	mustPublishSet(t, r, "pv", 1, KindType)
	mustPublishSet(t, r, "pv", 2, KindType)
	man, err := r.Rollback("pv")
	if err != nil {
		t.Fatal(err)
	}
	if man.Current != 1 {
		t.Fatalf("rollback current = %d, want 1", man.Current)
	}
	set, err := r.LoadSet("pv")
	if err != nil {
		t.Fatal(err)
	}
	if string(set.Payloads[KindVerdict]) != "verdict payload generation 1" ||
		string(set.Payloads[KindType]) != "atype payload generation 1" {
		t.Fatalf("rollback payloads = %q / %q", set.Payloads[KindVerdict], set.Payloads[KindType])
	}
}

// TestRetentionPrunesAllKinds: pruning a generation removes every kind's
// file, not just the verdict's.
func TestRetentionPrunesAllKinds(t *testing.T) {
	r := openTest(t, 2)
	for i := 1; i <= 4; i++ {
		mustPublishSet(t, r, "pv", i, KindType)
	}
	dir := filepath.Join(r.dir, "pv")
	for gen := 1; gen <= 2; gen++ {
		for _, name := range []string{genFileName(uint64(gen)), kindFileName(uint64(gen), KindType)} {
			if _, err := os.Stat(filepath.Join(dir, name)); !errors.Is(err, fs.ErrNotExist) {
				t.Errorf("pruned gen %d file %s still on disk (err=%v)", gen, name, err)
			}
		}
	}
	for gen := 3; gen <= 4; gen++ {
		for _, name := range []string{genFileName(uint64(gen)), kindFileName(uint64(gen), KindType)} {
			if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
				t.Errorf("kept gen %d file %s missing: %v", gen, name, err)
			}
		}
	}
}

// TestLegacyManifestFixture: a committed pre-multi-model series directory
// (manifest without an artifacts list) must parse and serve forever — the
// regression fixture pins the read path against format drift, same pattern
// as the *.wal.migrated fixtures.
func TestLegacyManifestFixture(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join("testdata", "legacy", "pv")
	dst := filepath.Join(dir, "pv")
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	r, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	set, err := r.LoadSet("pv")
	if err != nil {
		t.Fatal(err)
	}
	if string(set.Payloads[KindVerdict]) != "legacy single-model payload generation 1" {
		t.Fatalf("legacy payload = %q", set.Payloads[KindVerdict])
	}
	if set.Gen != 1 || set.Fingerprint != 0xbeef || set.Points != 1200 || set.CThld != 0.62 {
		t.Fatalf("legacy metadata = %+v", set.Generation)
	}
	if got := set.Kinds(); len(got) != 1 || got[0] != KindVerdict {
		t.Fatalf("legacy kinds = %v, want [verdict]", got)
	}
	// Publishing a multi-model generation on top of the legacy series must
	// interoperate: gen numbering continues, both eras stay loadable.
	g := mustPublishSet(t, r, "pv", 2, KindType)
	if g.Gen != 2 {
		t.Fatalf("next gen after legacy = %d, want 2", g.Gen)
	}
	if _, err := r.Rollback("pv"); err != nil {
		t.Fatal(err)
	}
	set, err = r.LoadSet("pv")
	if err != nil {
		t.Fatal(err)
	}
	if set.Gen != 1 || string(set.Payloads[KindVerdict]) != "legacy single-model payload generation 1" {
		t.Fatalf("rollback to legacy gen failed: %+v", set.Generation)
	}
}
