package registry

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
)

// Artifact kinds. A generation publishes one artifact per kind; the verdict
// classifier is mandatory, everything else optional.
const (
	// KindVerdict is the binary anomaly classifier (core.SaveModel).
	KindVerdict = "verdict"
	// KindType is the multi-class anomaly-type head (core.SaveTypeModel).
	KindType = "atype"
)

// ArtifactRef describes one kind-tagged artifact inside a generation.
type ArtifactRef struct {
	// Kind tags the model kind ("verdict", "atype", ...).
	Kind string `json:"kind"`
	// File is the artifact's file name inside the series directory.
	File string `json:"file"`
	// CRC is the CRC32-C of the artifact payload (cross-checks the frame).
	CRC uint32 `json:"crc"`
	// Size is the payload size in bytes.
	Size int64 `json:"size"`
	// Fingerprint is the deployment fingerprint the model was trained under.
	Fingerprint uint64 `json:"fingerprint"`
}

// validKind accepts short lowercase-alphanumeric kind tags — the set that
// embeds safely in both file names and JSON without escaping.
func validKind(kind string) bool {
	if kind == "" || len(kind) > 16 {
		return false
	}
	for _, c := range kind {
		if (c < 'a' || c > 'z') && (c < '0' || c > '9') {
			return false
		}
	}
	return true
}

// kindFileName names a kind's artifact file: the verdict keeps the legacy
// 000000000001.model form (so legacy manifests and new files interoperate);
// secondary kinds are 000000000001.<kind>.model.
func kindFileName(gen uint64, kind string) string {
	if kind == KindVerdict {
		return genFileName(gen)
	}
	return fmt.Sprintf("%012d.%s.model", gen, kind)
}

// refs returns the generation's kind-tagged artifact set, synthesizing the
// verdict-only ref for legacy single-model entries so every reader can treat
// every manifest as multi-model.
func (g *Generation) refs() []ArtifactRef {
	if len(g.Artifacts) > 0 {
		return g.Artifacts
	}
	return []ArtifactRef{{Kind: KindVerdict, File: g.File, CRC: g.CRC, Size: g.Size, Fingerprint: g.Fingerprint}}
}

// Ref returns the generation's artifact of a kind, or nil.
func (g *Generation) Ref(kind string) *ArtifactRef {
	refs := g.refs()
	for i := range refs {
		if refs[i].Kind == kind {
			return &refs[i]
		}
	}
	return nil
}

// Kinds returns the generation's artifact kinds, verdict first then the
// rest ascending.
func (g *Generation) Kinds() []string {
	refs := g.refs()
	out := make([]string, 0, len(refs))
	for _, ref := range refs {
		if ref.Kind != KindVerdict {
			out = append(out, ref.Kind)
		}
	}
	sort.Strings(out)
	return append([]string{KindVerdict}, out...)
}

// LoadedSet is one loaded generation's artifact set: the validated payloads
// by kind plus the manifest entry. The verdict payload is always present;
// secondary kinds that failed validation are listed in Unavailable instead
// (damaged ones were quarantined on the way).
type LoadedSet struct {
	Generation
	// Payloads maps kind → validated payload. KindVerdict is always a key.
	Payloads map[string][]byte
	// Unavailable lists secondary kinds whose artifact was missing or failed
	// validation. The generation still serves: the verdict head never falls
	// back on a secondary kind's account.
	Unavailable []string
}

// PublishSet writes an artifact set as the series' next generation: every
// kind's file first (each temp file → fsync → atomic rename → directory
// fsync), then the single manifest rename that commits the whole set
// atomically. A crash before the manifest rename leaves the previous
// generation current and only stray files behind (swept by a later publish),
// so no generation is ever observable with a partial kind set. payloads must
// include KindVerdict; other kinds are optional.
func (r *Registry) PublishSet(series string, info Info, payloads map[string][]byte) (Generation, error) {
	if len(payloads[KindVerdict]) == 0 {
		return Generation{}, fmt.Errorf("registry: publish %s: missing %s payload", series, KindVerdict)
	}
	kinds := make([]string, 0, len(payloads))
	for kind := range payloads {
		if !validKind(kind) {
			return Generation{}, fmt.Errorf("registry: publish %s: invalid artifact kind %q", series, kind)
		}
		if kind != KindVerdict {
			kinds = append(kinds, kind)
		}
	}
	sort.Strings(kinds)
	kinds = append([]string{KindVerdict}, kinds...)

	l := r.lockFor(series)
	l.Lock()
	defer l.Unlock()

	dir, err := r.seriesDir(series)
	if err != nil {
		return Generation{}, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return Generation{}, fmt.Errorf("registry: %w", err)
	}

	man, err := r.readManifest(series)
	switch {
	case err == nil:
	case errors.Is(err, ErrUnknownSeries):
		man = &Manifest{Series: series}
	case errors.Is(err, ErrCorruptManifest):
		// readManifest already quarantined it; start a fresh index. The old
		// artifacts stay on disk for offline inspection but are orphaned.
		man = &Manifest{Series: series}
	default:
		return Generation{}, err
	}

	gen := nextGen(man, dir)
	r.sweepStray(dir, man)

	g := Generation{
		Gen:       gen,
		Points:    info.Points,
		CThld:     info.CThld,
		TrainedAt: info.TrainedAt.UTC(),
	}
	for _, kind := range kinds {
		payload := payloads[kind]
		ref := ArtifactRef{
			Kind:        kind,
			File:        kindFileName(gen, kind),
			CRC:         crc32.Checksum(payload, crcTable),
			Size:        int64(len(payload)),
			Fingerprint: info.Fingerprint,
		}
		if err := r.writeAtomic(dir, ref.File, frame(payload)); err != nil {
			return Generation{}, fmt.Errorf("registry: publish %s gen %d %s: %w", series, gen, kind, err)
		}
		g.Artifacts = append(g.Artifacts, ref)
	}
	// The top-level fields mirror the verdict artifact (kinds[0]) so legacy
	// readers of the manifest keep working unchanged.
	g.File, g.CRC, g.Size, g.Fingerprint = g.Artifacts[0].File, g.Artifacts[0].CRC, g.Artifacts[0].Size, g.Artifacts[0].Fingerprint

	man.Generations = append(man.Generations, g)
	man.Current = gen
	pruned := pruneManifest(man, r.keep)
	if err := r.writeManifest(dir, man); err != nil {
		return Generation{}, fmt.Errorf("registry: publish %s gen %d manifest: %w", series, gen, err)
	}
	// Only after the manifest is durable do the pruned artifacts go away; a
	// crash in between leaves orphans that the next publish sweeps.
	for _, p := range pruned {
		for _, ref := range p.refs() {
			_ = os.Remove(filepath.Join(dir, ref.File))
		}
	}
	return g, nil
}

// loadArtifact reads and validates one framed artifact against its manifest
// ref, quarantining a damaged file (rename to *.corrupt, checksum-failure
// count). A missing file reports fs.ErrNotExist without quarantine.
func (r *Registry) loadArtifact(dir string, ref ArtifactRef) ([]byte, error) {
	path := filepath.Join(dir, ref.File)
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	payload, crc, err := unframe(data)
	if err == nil && crc != ref.CRC {
		err = fmt.Errorf("frame checksum %08x does not match manifest %08x (%w)", crc, ref.CRC, ErrCorruptArtifact)
	}
	if err != nil {
		r.checksumFailures.Add(1)
		_ = os.Rename(path, path+".corrupt")
		return nil, err
	}
	return payload, nil
}

// LoadSet returns the newest loadable artifact set at or below the series'
// current generation. The fallback walk is driven by the verdict artifact
// alone: a damaged verdict quarantines it and tries the next older
// generation, while a damaged or missing secondary kind is quarantined (when
// damaged) and merely listed in Unavailable — one torn kind costs that kind,
// never the generation. Generations newer than current (rolled back from)
// are not considered.
func (r *Registry) LoadSet(series string) (*LoadedSet, error) {
	l := r.lockFor(series)
	l.Lock()
	defer l.Unlock()

	man, err := r.readManifest(series)
	if err != nil {
		return nil, err
	}
	dir, err := r.seriesDir(series)
	if err != nil {
		return nil, err
	}
	if len(man.Generations) == 0 {
		return nil, fmt.Errorf("registry: %s: %w", series, ErrNoArtifact)
	}

	// Candidates: current first, then strictly older, newest first.
	var candidates []Generation
	for i := len(man.Generations) - 1; i >= 0; i-- {
		if g := man.Generations[i]; g.Gen <= man.Current {
			candidates = append(candidates, g)
		}
	}
	changed := false
	var lastErr error
	for _, g := range candidates {
		vref := g.Ref(KindVerdict)
		if vref == nil {
			lastErr = fmt.Errorf("gen %d: no %s artifact (%w)", g.Gen, KindVerdict, ErrCorruptArtifact)
			continue
		}
		payload, err := r.loadArtifact(dir, *vref)
		if err != nil {
			if errors.Is(err, fs.ErrNotExist) {
				continue
			}
			if errors.Is(err, ErrCorruptArtifact) {
				changed = true
			}
			lastErr = fmt.Errorf("gen %d: %w", g.Gen, err)
			continue
		}
		set := &LoadedSet{Generation: g, Payloads: map[string][]byte{KindVerdict: payload}}
		for _, ref := range g.refs() {
			if ref.Kind == KindVerdict {
				continue
			}
			p, err := r.loadArtifact(dir, ref)
			if err != nil {
				set.Unavailable = append(set.Unavailable, ref.Kind)
				continue
			}
			set.Payloads[ref.Kind] = p
		}
		if changed && g.Gen != man.Current {
			// Persist the fallback so operators see what is actually served.
			man.Current = g.Gen
			_ = r.writeManifest(dir, man)
		}
		return set, nil
	}
	if lastErr != nil {
		return nil, fmt.Errorf("registry: %s: %w (%w)", series, lastErr, ErrNoArtifact)
	}
	return nil, fmt.Errorf("registry: %s: %w", series, ErrNoArtifact)
}

// QuarantineKind sets one kind of one generation aside (renames its file to
// *.corrupt), for callers that discover higher-level damage in a secondary
// artifact — e.g. a type snapshot that decodes but fails its version check.
// The manifest entry is kept so the gap is auditable; the generation's other
// kinds keep serving.
func (r *Registry) QuarantineKind(series string, gen uint64, kind string) error {
	l := r.lockFor(series)
	l.Lock()
	defer l.Unlock()

	man, err := r.readManifest(series)
	if err != nil {
		return err
	}
	dir, err := r.seriesDir(series)
	if err != nil {
		return err
	}
	for _, g := range man.Generations {
		if g.Gen != gen {
			continue
		}
		ref := g.Ref(kind)
		if ref == nil {
			return fmt.Errorf("registry: quarantine %s gen %d: no %q artifact", series, gen, kind)
		}
		path := filepath.Join(dir, ref.File)
		if err := os.Rename(path, path+".corrupt"); err != nil && !errors.Is(err, fs.ErrNotExist) {
			return fmt.Errorf("registry: quarantine %s gen %d %s: %w", series, gen, kind, err)
		}
		r.checksumFailures.Add(1)
		return nil
	}
	return fmt.Errorf("registry: quarantine %s: no generation %d", series, gen)
}
