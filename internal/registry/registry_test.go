package registry

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"opprentice/internal/faultinject"
)

func openTest(t *testing.T, keep int) *Registry {
	t.Helper()
	r, err := Open(Config{Dir: t.TempDir(), Keep: keep})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func mustPublish(t *testing.T, r *Registry, series string, gen int) Generation {
	t.Helper()
	g, err := r.Publish(series, Info{
		Fingerprint: 0xfeed,
		Points:      gen * 100,
		CThld:       0.5,
		TrainedAt:   time.Date(2015, 1, gen, 0, 0, 0, 0, time.UTC),
	}, []byte(fmt.Sprintf("model payload generation %d", gen)))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestPublishLoadRoundTrip(t *testing.T) {
	r := openTest(t, 3)
	g := mustPublish(t, r, "pv", 1)
	if g.Gen != 1 {
		t.Fatalf("first generation = %d, want 1", g.Gen)
	}
	art, err := r.Load("pv")
	if err != nil {
		t.Fatal(err)
	}
	if string(art.Payload) != "model payload generation 1" {
		t.Fatalf("payload = %q", art.Payload)
	}
	if art.Gen != 1 || art.Fingerprint != 0xfeed || art.Points != 100 {
		t.Fatalf("metadata = %+v", art.Generation)
	}

	if _, err := r.Load("nope"); !errors.Is(err, ErrUnknownSeries) {
		t.Fatalf("unknown series: err = %v, want ErrUnknownSeries", err)
	}
}

func TestRetentionKeepsLastN(t *testing.T) {
	r := openTest(t, 2)
	for i := 1; i <= 5; i++ {
		mustPublish(t, r, "pv", i)
	}
	man, err := r.Manifest("pv")
	if err != nil {
		t.Fatal(err)
	}
	if len(man.Generations) != 2 || man.Generations[0].Gen != 4 || man.Generations[1].Gen != 5 {
		t.Fatalf("retained generations = %+v, want [4 5]", man.Generations)
	}
	if man.Current != 5 {
		t.Fatalf("current = %d, want 5", man.Current)
	}
	// Pruned artifact files are gone.
	dir := filepath.Join(r.dir, "pv")
	if _, err := os.Stat(filepath.Join(dir, genFileName(1))); !os.IsNotExist(err) {
		t.Fatalf("gen 1 artifact not pruned: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, genFileName(5))); err != nil {
		t.Fatalf("gen 5 artifact missing: %v", err)
	}
}

func TestRollbackWalksBackwards(t *testing.T) {
	r := openTest(t, 3)
	for i := 1; i <= 3; i++ {
		mustPublish(t, r, "pv", i)
	}
	man, err := r.Rollback("pv")
	if err != nil {
		t.Fatal(err)
	}
	if man.Current != 2 {
		t.Fatalf("current after rollback = %d, want 2", man.Current)
	}
	art, err := r.Load("pv")
	if err != nil {
		t.Fatal(err)
	}
	if art.Gen != 2 {
		t.Fatalf("Load after rollback served gen %d, want 2", art.Gen)
	}
	if man, err = r.Rollback("pv"); err != nil || man.Current != 1 {
		t.Fatalf("second rollback: current=%d err=%v, want 1", man.Current, err)
	}
	if _, err := r.Rollback("pv"); !errors.Is(err, ErrNoArtifact) {
		t.Fatalf("rollback past the oldest generation: err = %v, want ErrNoArtifact", err)
	}
	// A fresh publish supersedes the rollback.
	g := mustPublish(t, r, "pv", 4)
	if art, err := r.Load("pv"); err != nil || art.Gen != g.Gen {
		t.Fatalf("publish after rollback: load gen=%d err=%v, want %d", art.Gen, err, g.Gen)
	}
}

// TestFaultCorruptCurrentFallsBack: flipping a byte in the current artifact
// must quarantine it and serve the previous generation — the previous
// generation always remains loadable.
func TestFaultCorruptCurrentFallsBack(t *testing.T) {
	r := openTest(t, 3)
	mustPublish(t, r, "pv", 1)
	g2 := mustPublish(t, r, "pv", 2)

	path := filepath.Join(r.dir, "pv", g2.File)
	if err := faultinject.FlipByte(path, -3); err != nil {
		t.Fatal(err)
	}
	art, err := r.Load("pv")
	if err != nil {
		t.Fatal(err)
	}
	if art.Gen != 1 || string(art.Payload) != "model payload generation 1" {
		t.Fatalf("fallback served gen %d (%q), want gen 1", art.Gen, art.Payload)
	}
	if r.Stats().ChecksumFailures != 1 {
		t.Fatalf("ChecksumFailures = %d, want 1", r.Stats().ChecksumFailures)
	}
	// The damaged artifact is quarantined, not deleted.
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Fatalf("corrupt artifact not quarantined: %v", err)
	}
	// The fallback is persisted: a second load serves gen 1 directly.
	if art, err := r.Load("pv"); err != nil || art.Gen != 1 {
		t.Fatalf("second load: gen=%d err=%v, want 1", art.Gen, err)
	}
}

// TestFaultShortWrite: a truncated current artifact (crash mid-write after a
// partial flush) falls back to the previous generation.
func TestFaultShortWrite(t *testing.T) {
	r := openTest(t, 3)
	mustPublish(t, r, "pv", 1)
	g2 := mustPublish(t, r, "pv", 2)
	if err := faultinject.TruncateTail(filepath.Join(r.dir, "pv", g2.File), 7); err != nil {
		t.Fatal(err)
	}
	art, err := r.Load("pv")
	if err != nil {
		t.Fatal(err)
	}
	if art.Gen != 1 {
		t.Fatalf("short-written current: served gen %d, want 1", art.Gen)
	}
}

// TestFaultTornTempFile: a stray temp file from a crash mid-publish must not
// confuse Load and must be swept by the next publish.
func TestFaultTornTempFile(t *testing.T) {
	r := openTest(t, 3)
	mustPublish(t, r, "pv", 1)
	torn := filepath.Join(r.dir, "pv", ".tmp-000000000002.model-123")
	if err := os.WriteFile(torn, []byte("half a mo"), 0o644); err != nil {
		t.Fatal(err)
	}
	// And a fully-written but unreferenced artifact (crash between artifact
	// rename and manifest write).
	orphan := filepath.Join(r.dir, "pv", genFileName(2))
	if err := os.WriteFile(orphan, frame([]byte("orphan")), 0o644); err != nil {
		t.Fatal(err)
	}

	if art, err := r.Load("pv"); err != nil || art.Gen != 1 {
		t.Fatalf("load with torn temp present: gen=%d err=%v, want 1", art.Gen, err)
	}
	// Next publish must skip the orphaned gen number and sweep the debris.
	g := mustPublish(t, r, "pv", 3)
	if g.Gen != 3 {
		t.Fatalf("publish after orphaned gen 2 assigned gen %d, want 3", g.Gen)
	}
	if _, err := os.Stat(torn); !os.IsNotExist(err) {
		t.Fatalf("torn temp file not swept: %v", err)
	}
}

// TestFaultRenameFailure: when the atomic rename fails mid-publish, Publish
// errors and the previous generation remains current and loadable.
func TestFaultRenameFailure(t *testing.T) {
	dir := t.TempDir()
	fail := false
	r, err := Open(Config{Dir: dir, Rename: func(oldpath, newpath string) error {
		if fail {
			return fmt.Errorf("faultinject: rename %s: disk on fire", filepath.Base(newpath))
		}
		return os.Rename(oldpath, newpath)
	}})
	if err != nil {
		t.Fatal(err)
	}
	mustPublish(t, r, "pv", 1)

	fail = true
	if _, err := r.Publish("pv", Info{}, []byte("doomed")); err == nil {
		t.Fatal("publish with failing rename succeeded")
	}
	fail = false
	art, err := r.Load("pv")
	if err != nil {
		t.Fatal(err)
	}
	if art.Gen != 1 || string(art.Payload) != "model payload generation 1" {
		t.Fatalf("after failed publish: gen=%d payload=%q, want intact gen 1", art.Gen, art.Payload)
	}
	// And the store still accepts new publishes.
	if g := mustPublish(t, r, "pv", 2); g.Gen < 2 {
		t.Fatalf("post-recovery publish gen = %d, want >= 2", g.Gen)
	}
}

// TestFaultEveryGenerationCorrupt: when every candidate fails its checksum,
// Load reports ErrNoArtifact (the caller's cue to retrain cold).
func TestFaultEveryGenerationCorrupt(t *testing.T) {
	r := openTest(t, 3)
	g1 := mustPublish(t, r, "pv", 1)
	g2 := mustPublish(t, r, "pv", 2)
	for _, g := range []Generation{g1, g2} {
		if err := faultinject.FlipByte(filepath.Join(r.dir, "pv", g.File), -1); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.Load("pv"); !errors.Is(err, ErrNoArtifact) {
		t.Fatalf("all-corrupt load: err = %v, want ErrNoArtifact", err)
	}
	if got := r.Stats().ChecksumFailures; got != 2 {
		t.Fatalf("ChecksumFailures = %d, want 2", got)
	}
}

// TestFaultCorruptManifest: a damaged manifest is quarantined and reported
// as ErrCorruptManifest; a subsequent publish starts a fresh index.
func TestFaultCorruptManifest(t *testing.T) {
	r := openTest(t, 3)
	mustPublish(t, r, "pv", 1)
	path := filepath.Join(r.dir, "pv", manifestName)
	if err := os.WriteFile(path, []byte(`{"series":"pv","current":9,"generations":[{"gen":1,"file":"x"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Load("pv"); !errors.Is(err, ErrCorruptManifest) {
		t.Fatalf("corrupt manifest load: err = %v, want ErrCorruptManifest", err)
	}
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Fatalf("corrupt manifest not quarantined: %v", err)
	}
	if g := mustPublish(t, r, "pv", 2); g.Gen != 2 {
		t.Fatalf("publish after manifest quarantine assigned gen %d, want 2 (fresh index past the stray gen-1 file)", g.Gen)
	}
}

func TestQuarantineGeneration(t *testing.T) {
	r := openTest(t, 3)
	mustPublish(t, r, "pv", 1)
	g2 := mustPublish(t, r, "pv", 2)
	if err := r.Quarantine("pv", g2.Gen); err != nil {
		t.Fatal(err)
	}
	if art, err := r.Load("pv"); err != nil || art.Gen != 1 {
		t.Fatalf("load after quarantine: gen=%d err=%v, want 1", art.Gen, err)
	}
	if err := r.Quarantine("pv", 99); err == nil {
		t.Fatal("quarantining an unknown generation succeeded")
	}
}

func TestListAndManifest(t *testing.T) {
	r := openTest(t, 3)
	mustPublish(t, r, "b", 1)
	mustPublish(t, r, "a", 1)
	names, err := r.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("List = %v, want [a b]", names)
	}
	if _, err := r.Manifest("missing"); !errors.Is(err, ErrUnknownSeries) {
		t.Fatalf("Manifest(missing): err = %v, want ErrUnknownSeries", err)
	}
	if _, err := r.Publish("../evil", Info{}, []byte("x")); err == nil {
		t.Fatal("path-escaping series name accepted")
	}
}

// FuzzParseManifest: manifest parsing must never panic and must either
// return a structurally valid manifest or an ErrCorruptManifest-wrapped
// error.
func FuzzParseManifest(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"series":"pv","current":2,"generations":[{"gen":1,"file":"000000000001.model"},{"gen":2,"file":"000000000002.model"}]}`))
	f.Add([]byte(`{"series":"pv","current":9,"generations":[{"gen":1,"file":"../../etc/passwd"}]}`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`{"generations":[{"gen":2},{"gen":1}]}`))
	valid, _ := json.Marshal(Manifest{Series: "pv", Current: 1, Generations: []Generation{{Gen: 1, File: "000000000001.model"}}})
	f.Add(valid)
	// Multi-model era seeds: a valid kind-tagged set (verdict mirrored into
	// the legacy fields), a duplicate kind, a missing verdict entry, a path
	// escape in a secondary kind, and a broken legacy mirror.
	multi := Manifest{Series: "pv", Current: 1, Generations: []Generation{{
		Gen: 1, File: "000000000001.model", CRC: 7, Size: 3,
		Artifacts: []ArtifactRef{
			{Kind: KindVerdict, File: "000000000001.model", CRC: 7, Size: 3},
			{Kind: KindType, File: "000000000001.atype.model", CRC: 9, Size: 5},
		},
	}}}
	validMulti, _ := json.Marshal(multi)
	f.Add(validMulti)
	f.Add([]byte(`{"current":1,"generations":[{"gen":1,"file":"a","artifacts":[{"kind":"atype","file":"a"},{"kind":"atype","file":"b"}]}]}`))
	f.Add([]byte(`{"current":1,"generations":[{"gen":1,"file":"a","artifacts":[{"kind":"atype","file":"b"}]}]}`))
	f.Add([]byte(`{"current":1,"generations":[{"gen":1,"file":"a","artifacts":[{"kind":"verdict","file":"a"},{"kind":"atype","file":"../x"}]}]}`))
	f.Add([]byte(`{"current":1,"generations":[{"gen":1,"file":"a","crc":1,"artifacts":[{"kind":"verdict","file":"a","crc":2}]}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		man, err := ParseManifest(data)
		if err != nil {
			if !errors.Is(err, ErrCorruptManifest) {
				t.Fatalf("parse error %v does not wrap ErrCorruptManifest", err)
			}
			return
		}
		// A valid manifest must survive a marshal/parse round trip.
		out, err := json.Marshal(man)
		if err != nil {
			t.Fatalf("re-marshal: %v", err)
		}
		again, err := ParseManifest(out)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if man.Current != again.Current || len(man.Generations) != len(again.Generations) {
			t.Fatalf("round trip changed the manifest: %+v vs %+v", man, again)
		}
	})
}

func TestFrameRejectsDamage(t *testing.T) {
	payload := []byte("some model bytes")
	data := frame(payload)
	if got, _, err := unframe(data); err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("round trip: %q err=%v", got, err)
	}
	for name, mutate := range map[string]func([]byte) []byte{
		"truncated header": func(b []byte) []byte { return b[:10] },
		"bad magic":        func(b []byte) []byte { c := append([]byte(nil), b...); c[0] ^= 0xFF; return c },
		"short payload":    func(b []byte) []byte { return b[:len(b)-1] },
		"flipped payload":  func(b []byte) []byte { c := append([]byte(nil), b...); c[len(c)-1] ^= 0x01; return c },
	} {
		if _, _, err := unframe(mutate(data)); !errors.Is(err, ErrCorruptArtifact) {
			t.Errorf("%s: err = %v, want ErrCorruptArtifact", name, err)
		}
	}
}
