// Package registry is the model registry: a per-series, versioned,
// checksummed store for trained model artifacts (core.SaveModel snapshots).
// It is what lets the daemon restart warm — serving from the last published
// classifier instead of retraining every series from scratch — and what
// gives operators explicit rollback when a weekly retrain goes wrong.
//
// # Layout
//
// Each series owns a subdirectory of the registry root:
//
//	<dir>/<series>/
//	    manifest.json            generation index + current pointer
//	    000000000001.model       CRC32-C framed gob snapshot, one per generation
//	    000000000002.model
//	    000000000002.model.corrupt   a quarantined artifact (set aside, kept)
//
// # Durability discipline
//
// Every artifact is framed (magic, length, CRC32-C) and written via
// temp-file → fsync → atomic rename → directory fsync, then the manifest is
// rewritten the same way. A crash at any point leaves either the previous
// manifest (pointing at the previous, intact generation) or the new one; a
// torn temp file is ignored and swept on the next publish. Load walks the
// manifest's generations newest-current-first and quarantines (renames to
// *.corrupt) any artifact whose frame or checksum fails, so one flipped bit
// costs one generation, never the series.
//
// # Generations, retention, rollback
//
// Publish appends a monotonically increasing generation and points `current`
// at it, pruning all but the last Keep generations (the current one is never
// pruned). Rollback moves `current` one loadable generation backwards;
// generations newer than `current` are deliberately skipped by Load until a
// new publish supersedes them.
package registry

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Typed errors. Callers errors.Is against these to pick a fallback rung.
var (
	// ErrCorruptArtifact: an artifact file failed its frame or checksum
	// validation (it has been quarantined).
	ErrCorruptArtifact = errors.New("corrupt model artifact")
	// ErrCorruptManifest: a series' manifest.json failed to parse or
	// validate (it has been quarantined on load).
	ErrCorruptManifest = errors.New("corrupt model manifest")
	// ErrNoArtifact: the series has no loadable generation (never published,
	// or every candidate failed validation).
	ErrNoArtifact = errors.New("no loadable model artifact")
	// ErrUnknownSeries: the registry holds nothing for this series.
	ErrUnknownSeries = errors.New("unknown series")
)

// artifactMagic opens every framed artifact file.
var artifactMagic = [8]byte{'O', 'P', 'P', 'R', 'M', 'D', 'L', '1'}

// crcTable is the Castagnoli polynomial, the usual choice for storage CRCs
// (and the same one the WAL uses).
var crcTable = crc32.MakeTable(crc32.Castagnoli)

const manifestName = "manifest.json"

// Config configures Open.
type Config struct {
	// Dir is the registry root (created if missing).
	Dir string
	// Keep is how many generations to retain per series (default 3; the
	// current generation is always kept regardless).
	Keep int
	// Rename, when non-nil, replaces os.Rename for the atomic-publish step.
	// It exists for fault injection (simulating a rename failure mid-publish)
	// and must behave like os.Rename when it succeeds.
	Rename func(oldpath, newpath string) error
}

// Registry is a versioned model-artifact store rooted at a directory. All
// methods are safe for concurrent use; operations on the same series are
// serialized by a per-series lock.
type Registry struct {
	dir    string
	keep   int
	rename func(oldpath, newpath string) error

	mu    sync.Mutex
	locks map[string]*sync.Mutex

	checksumFailures atomic.Int64 // quarantined artifacts + manifests
}

// Open prepares a registry rooted at cfg.Dir, creating it if needed.
func Open(cfg Config) (*Registry, error) {
	if cfg.Dir == "" {
		return nil, errors.New("registry: directory required")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("registry: %w", err)
	}
	if cfg.Keep <= 0 {
		cfg.Keep = 3
	}
	if cfg.Rename == nil {
		cfg.Rename = os.Rename
	}
	return &Registry{
		dir:    cfg.Dir,
		keep:   cfg.Keep,
		rename: cfg.Rename,
		locks:  make(map[string]*sync.Mutex),
	}, nil
}

// Stats is a point-in-time snapshot of the registry's health counters.
type Stats struct {
	// ChecksumFailures counts artifacts and manifests that failed validation
	// and were quarantined.
	ChecksumFailures int64
}

// Stats returns the registry's health counters.
func (r *Registry) Stats() Stats {
	return Stats{ChecksumFailures: r.checksumFailures.Load()}
}

// Generation describes one published artifact in a series' manifest.
type Generation struct {
	// Gen is the monotonically increasing generation number.
	Gen uint64 `json:"gen"`
	// File is the artifact's file name inside the series directory.
	File string `json:"file"`
	// CRC is the CRC32-C of the artifact payload, duplicated from the frame
	// so the manifest and the file cross-check each other.
	CRC uint32 `json:"crc"`
	// Size is the payload size in bytes.
	Size int64 `json:"size"`
	// Fingerprint is the deployment fingerprint the model was trained under
	// (see core.ModelFingerprint).
	Fingerprint uint64 `json:"fingerprint"`
	// Points is how many series points the model had seen when published.
	Points int `json:"points"`
	// CThld is the classification threshold in force at publish time.
	CThld float64 `json:"cthld"`
	// TrainedAt is when the model finished training.
	TrainedAt time.Time `json:"trained_at"`
	// Artifacts is the multi-model artifact set: one kind-tagged entry per
	// model kind published under this generation (the verdict classifier,
	// the anomaly-type head, ...). Legacy single-model manifests omit it —
	// the top-level File/CRC/Size/Fingerprint fields then describe the
	// verdict artifact alone, and refs() synthesizes the equivalent set. In
	// the multi-model form the top-level fields mirror the verdict entry so
	// legacy readers keep working.
	Artifacts []ArtifactRef `json:"artifacts,omitempty"`
}

// Manifest is a series' generation index. The JSON tags double as the
// service's wire format for GET /v1/models/{series}.
type Manifest struct {
	Series string `json:"series"`
	// Current is the generation Load serves.
	Current     uint64       `json:"current"`
	Generations []Generation `json:"generations"` // ascending by Gen
}

// current returns the Generation Current points at, or nil.
func (m *Manifest) current() *Generation {
	for i := range m.Generations {
		if m.Generations[i].Gen == m.Current {
			return &m.Generations[i]
		}
	}
	return nil
}

// Info carries the publish-time metadata for a new generation.
type Info struct {
	Fingerprint uint64
	Points      int
	CThld       float64
	TrainedAt   time.Time
}

// Artifact is one loaded generation: the validated payload plus its
// manifest entry.
type Artifact struct {
	Generation
	Payload []byte
}

// lockFor returns the per-series mutex, creating it on first use.
func (r *Registry) lockFor(series string) *sync.Mutex {
	r.mu.Lock()
	defer r.mu.Unlock()
	l, ok := r.locks[series]
	if !ok {
		l = &sync.Mutex{}
		r.locks[series] = l
	}
	return l
}

// seriesDir validates the series name and returns its directory path.
func (r *Registry) seriesDir(series string) (string, error) {
	if series == "" || strings.ContainsAny(series, "/\\") || strings.Contains(series, "..") {
		return "", fmt.Errorf("registry: invalid series name %q", series)
	}
	return filepath.Join(r.dir, series), nil
}

func genFileName(gen uint64) string { return fmt.Sprintf("%012d.model", gen) }

// Publish writes payload as the series' next generation: artifact first
// (temp file, fsync, atomic rename, directory fsync), manifest second (same
// discipline). If anything fails before the manifest rename, the previous
// generation remains current and loadable; the orphaned artifact is swept by
// a later publish. Old generations beyond Keep are pruned after the manifest
// is durable. It is PublishSet with a verdict-only artifact set.
func (r *Registry) Publish(series string, info Info, payload []byte) (Generation, error) {
	return r.PublishSet(series, info, map[string][]byte{KindVerdict: payload})
}

// nextGen picks the next generation number: one past both the manifest's
// maximum and any stray artifact files on disk (from a crash between
// artifact rename and manifest write), in either the legacy or the
// kind-tagged file form.
func nextGen(man *Manifest, dir string) uint64 {
	var max uint64
	for _, g := range man.Generations {
		if g.Gen > max {
			max = g.Gen
		}
	}
	entries, err := os.ReadDir(dir)
	if err == nil {
		for _, e := range entries {
			if gen, ok := genOfArtifact(e.Name()); ok && gen > max {
				max = gen
			}
		}
	}
	return max + 1
}

// genOfArtifact parses the generation of an artifact file name, accepting
// the legacy verdict form 000000000001.model and the kind-tagged form
// 000000000001.<kind>.model. Quarantined files (*.corrupt) do not match.
func genOfArtifact(name string) (uint64, bool) {
	base, ok := strings.CutSuffix(name, ".model")
	if !ok {
		return 0, false
	}
	if i := strings.IndexByte(base, '.'); i >= 0 {
		base = base[:i]
	}
	if len(base) != 12 {
		return 0, false
	}
	gen, err := strconv.ParseUint(base, 10, 64)
	if err != nil {
		return 0, false
	}
	return gen, true
}

// sweepStray removes temp files and unreferenced artifact files left behind
// by a crash mid-publish. Quarantined (*.corrupt) files are kept for the
// operator.
func (r *Registry) sweepStray(dir string, man *Manifest) {
	referenced := make(map[string]bool, len(man.Generations))
	for _, g := range man.Generations {
		for _, ref := range g.refs() {
			referenced[ref.File] = true
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasPrefix(name, ".tmp-"):
			_ = os.Remove(filepath.Join(dir, name))
		case strings.HasSuffix(name, ".model") && !referenced[name]:
			_ = os.Remove(filepath.Join(dir, name))
		}
	}
}

// pruneManifest drops all but the newest keep generations (never the current
// one), returning the dropped entries so their files can be removed after
// the manifest is durable.
func pruneManifest(man *Manifest, keep int) []Generation {
	sort.Slice(man.Generations, func(i, j int) bool { return man.Generations[i].Gen < man.Generations[j].Gen })
	if len(man.Generations) <= keep {
		return nil
	}
	cut := len(man.Generations) - keep
	var pruned []Generation
	kept := man.Generations[:0:0]
	for i, g := range man.Generations {
		if i < cut && g.Gen != man.Current {
			pruned = append(pruned, g)
			continue
		}
		kept = append(kept, g)
	}
	man.Generations = kept
	return pruned
}

// frame wraps a payload in the artifact file format:
// magic (8) | payload length (4, BE) | CRC32-C (4, BE) | payload.
func frame(payload []byte) []byte {
	buf := make([]byte, 0, 16+len(payload))
	buf = append(buf, artifactMagic[:]...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.BigEndian.AppendUint32(buf, crc32.Checksum(payload, crcTable))
	buf = append(buf, payload...)
	return buf
}

// unframe validates an artifact file's magic, length, and checksum,
// returning the payload. Every failure wraps ErrCorruptArtifact.
func unframe(data []byte) ([]byte, uint32, error) {
	if len(data) < 16 || string(data[:8]) != string(artifactMagic[:]) {
		return nil, 0, fmt.Errorf("bad magic or truncated header (%w)", ErrCorruptArtifact)
	}
	n := binary.BigEndian.Uint32(data[8:12])
	want := binary.BigEndian.Uint32(data[12:16])
	payload := data[16:]
	if uint32(len(payload)) != n {
		return nil, 0, fmt.Errorf("payload %d bytes, frame says %d (%w)", len(payload), n, ErrCorruptArtifact)
	}
	if got := crc32.Checksum(payload, crcTable); got != want {
		return nil, 0, fmt.Errorf("checksum mismatch: recorded %08x, computed %08x (%w)", want, got, ErrCorruptArtifact)
	}
	return payload, want, nil
}

// writeAtomic writes data to dir/name via temp file + fsync + atomic rename
// + directory fsync.
func (r *Registry) writeAtomic(dir, name string, data []byte) error {
	tmp, err := os.CreateTemp(dir, ".tmp-"+name+"-")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := r.rename(tmpName, filepath.Join(dir, name)); err != nil {
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-renamed entry survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// writeManifest marshals and atomically replaces a series' manifest.
func (r *Registry) writeManifest(dir string, man *Manifest) error {
	sort.Slice(man.Generations, func(i, j int) bool { return man.Generations[i].Gen < man.Generations[j].Gen })
	data, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return err
	}
	return r.writeAtomic(dir, manifestName, append(data, '\n'))
}

// readManifest loads and validates a series' manifest. A corrupt manifest is
// quarantined (renamed to manifest.json.corrupt) and reported as
// ErrCorruptManifest; a missing one as ErrUnknownSeries.
func (r *Registry) readManifest(series string) (*Manifest, error) {
	dir, err := r.seriesDir(series)
	if err != nil {
		return nil, err
	}
	path := filepath.Join(dir, manifestName)
	data, err := os.ReadFile(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, fmt.Errorf("registry: %s: %w", series, ErrUnknownSeries)
		}
		return nil, fmt.Errorf("registry: %w", err)
	}
	man, err := ParseManifest(data)
	if err != nil {
		r.checksumFailures.Add(1)
		_ = os.Rename(path, path+".corrupt")
		return nil, fmt.Errorf("registry: %s: %w", series, err)
	}
	return man, nil
}

// ParseManifest parses and validates manifest JSON. It never panics on
// arbitrary input (fuzzed); every validation failure wraps
// ErrCorruptManifest.
func ParseManifest(data []byte) (*Manifest, error) {
	var man Manifest
	if err := json.Unmarshal(data, &man); err != nil {
		return nil, fmt.Errorf("%v (%w)", err, ErrCorruptManifest)
	}
	seen := make(map[uint64]bool, len(man.Generations))
	var prev uint64
	for i, g := range man.Generations {
		if g.Gen == 0 {
			return nil, fmt.Errorf("generation %d has gen 0 (%w)", i, ErrCorruptManifest)
		}
		if seen[g.Gen] || g.Gen < prev {
			return nil, fmt.Errorf("generations not strictly ascending at gen %d (%w)", g.Gen, ErrCorruptManifest)
		}
		seen[g.Gen] = true
		prev = g.Gen
		if g.File == "" || strings.ContainsAny(g.File, "/\\") || strings.Contains(g.File, "..") {
			return nil, fmt.Errorf("generation %d has invalid file %q (%w)", g.Gen, g.File, ErrCorruptManifest)
		}
		if g.Size < 0 || g.Points < 0 {
			return nil, fmt.Errorf("generation %d has negative size or points (%w)", g.Gen, ErrCorruptManifest)
		}
		// Multi-model entries: validated only when present, so legacy
		// single-model manifests parse forever.
		if len(g.Artifacts) > 0 {
			kinds := make(map[string]bool, len(g.Artifacts))
			var vref *ArtifactRef
			for j := range g.Artifacts {
				ref := &g.Artifacts[j]
				if !validKind(ref.Kind) {
					return nil, fmt.Errorf("generation %d artifact %d has invalid kind %q (%w)", g.Gen, j, ref.Kind, ErrCorruptManifest)
				}
				if kinds[ref.Kind] {
					return nil, fmt.Errorf("generation %d has duplicate %q artifacts (%w)", g.Gen, ref.Kind, ErrCorruptManifest)
				}
				kinds[ref.Kind] = true
				if ref.File == "" || strings.ContainsAny(ref.File, "/\\") || strings.Contains(ref.File, "..") {
					return nil, fmt.Errorf("generation %d artifact %q has invalid file %q (%w)", g.Gen, ref.Kind, ref.File, ErrCorruptManifest)
				}
				if ref.Size < 0 {
					return nil, fmt.Errorf("generation %d artifact %q has negative size (%w)", g.Gen, ref.Kind, ErrCorruptManifest)
				}
				if ref.Kind == KindVerdict {
					vref = ref
				}
			}
			if vref == nil {
				return nil, fmt.Errorf("generation %d has artifacts but no %q entry (%w)", g.Gen, KindVerdict, ErrCorruptManifest)
			}
			if vref.File != g.File || vref.CRC != g.CRC || vref.Size != g.Size || vref.Fingerprint != g.Fingerprint {
				return nil, fmt.Errorf("generation %d verdict artifact does not mirror the legacy fields (%w)", g.Gen, ErrCorruptManifest)
			}
		}
	}
	if len(man.Generations) > 0 && !seen[man.Current] {
		return nil, fmt.Errorf("current gen %d not in generation list (%w)", man.Current, ErrCorruptManifest)
	}
	return &man, nil
}

// Load returns the newest loadable artifact at or below the series' current
// generation: the current one when intact, otherwise the fallback walk
// quarantines each damaged artifact (renames it to *.corrupt, counts a
// checksum failure) and tries the next older generation — a crash or bit
// flip costs one generation, never the series. Generations newer than
// current (rolled back from) are not considered. It is LoadSet reduced to
// the verdict artifact; secondary kinds are still validated (and damaged
// ones quarantined) along the way.
func (r *Registry) Load(series string) (*Artifact, error) {
	set, err := r.LoadSet(series)
	if err != nil {
		return nil, err
	}
	return &Artifact{Generation: set.Generation, Payload: set.Payloads[KindVerdict]}, nil
}

// Manifest returns a copy of the series' manifest.
func (r *Registry) Manifest(series string) (Manifest, error) {
	l := r.lockFor(series)
	l.Lock()
	defer l.Unlock()
	man, err := r.readManifest(series)
	if err != nil {
		return Manifest{}, err
	}
	out := *man
	out.Generations = append([]Generation(nil), man.Generations...)
	return out, nil
}

// List returns the series names with a manifest, sorted.
func (r *Registry) List() ([]string, error) {
	entries, err := os.ReadDir(r.dir)
	if err != nil {
		return nil, fmt.Errorf("registry: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if _, err := os.Stat(filepath.Join(r.dir, e.Name(), manifestName)); err == nil {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// Rollback moves the series' current generation one loadable step backwards
// and returns the updated manifest. The abandoned newer generations stay in
// the manifest (and on disk) until a future publish prunes them, so a
// rollback can itself be inspected and audited. Rolling back with no older
// generation is an error.
func (r *Registry) Rollback(series string) (Manifest, error) {
	l := r.lockFor(series)
	l.Lock()
	defer l.Unlock()

	man, err := r.readManifest(series)
	if err != nil {
		return Manifest{}, err
	}
	dir, err := r.seriesDir(series)
	if err != nil {
		return Manifest{}, err
	}
	for i := len(man.Generations) - 1; i >= 0; i-- {
		g := man.Generations[i]
		if g.Gen >= man.Current {
			continue
		}
		if _, err := os.Stat(filepath.Join(dir, g.File)); err != nil {
			continue // pruned or quarantined; keep walking back
		}
		man.Current = g.Gen
		if err := r.writeManifest(dir, man); err != nil {
			return Manifest{}, fmt.Errorf("registry: rollback %s: %w", series, err)
		}
		out := *man
		out.Generations = append([]Generation(nil), man.Generations...)
		return out, nil
	}
	return Manifest{}, fmt.Errorf("registry: rollback %s: no older generation (%w)", series, ErrNoArtifact)
}

// Quarantine sets one generation's artifact aside (renames it to
// *.corrupt), for callers that discover higher-level damage the frame
// checksum cannot see — e.g. a snapshot that decodes but fails its format
// version check. The manifest entry is kept so the gap is auditable.
func (r *Registry) Quarantine(series string, gen uint64) error {
	l := r.lockFor(series)
	l.Lock()
	defer l.Unlock()

	man, err := r.readManifest(series)
	if err != nil {
		return err
	}
	dir, err := r.seriesDir(series)
	if err != nil {
		return err
	}
	for _, g := range man.Generations {
		if g.Gen != gen {
			continue
		}
		// Every kind of the generation is set aside: damage the frame cannot
		// see (a decodable-but-unloadable snapshot) discredits the whole
		// trained set. A secondary kind already missing is fine; a verdict
		// rename failure is not.
		for _, ref := range g.refs() {
			path := filepath.Join(dir, ref.File)
			if err := os.Rename(path, path+".corrupt"); err != nil {
				if ref.Kind == KindVerdict {
					return fmt.Errorf("registry: quarantine %s gen %d: %w", series, gen, err)
				}
				continue
			}
			r.checksumFailures.Add(1)
		}
		return nil
	}
	return fmt.Errorf("registry: quarantine %s: no generation %d", series, gen)
}
