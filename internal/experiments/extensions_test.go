package experiments

import (
	"strconv"
	"testing"
)

func TestTransferNormalizationHelps(t *testing.T) {
	tabs, err := Transfer(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	tab := tabs[0]
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 target scales", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		norm, _ := strconv.ParseFloat(row[1], 64)
		raw, _ := strconv.ParseFloat(row[2], 64)
		self, _ := strconv.ParseFloat(row[3], 64)
		if row[0] != "10000" && norm < raw {
			t.Errorf("base %s: normalized %v should beat raw %v across scales", row[0], norm, raw)
		}
		if self < 0.3 {
			t.Errorf("base %s: self-trained AUCPR %v suspiciously low", row[0], self)
		}
	}
}

func TestDirtyDataDegradesGracefully(t *testing.T) {
	tabs, err := DirtyData(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	tab := tabs[0]
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 missing levels", len(tab.Rows))
	}
	clean := parseRow(t, tab.Rows[0])
	dirty := parseRow(t, tab.Rows[len(tab.Rows)-1])
	// The forest with 10% missing data should stay usable.
	if dirty[2] < 0.4 {
		t.Errorf("forest AUCPR at 10%% missing = %v, want ≥ 0.4", dirty[2])
	}
	// And it should not collapse relative to clean data.
	if dirty[2] < clean[2]-0.4 {
		t.Errorf("forest collapsed: clean %v vs dirty %v", clean[2], dirty[2])
	}
}

func parseRow(t *testing.T, row []string) [3]float64 {
	t.Helper()
	var out [3]float64
	for i := 0; i < 3; i++ {
		v, err := strconv.ParseFloat(row[i+1], 64)
		if err != nil {
			t.Fatalf("bad cell %q", row[i+1])
		}
		out[i] = v
	}
	return out
}

func TestFeatureSelectionFullPoolNearOptimal(t *testing.T) {
	tabs, err := FeatureSelection(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	tab := tabs[0]
	if len(tab.Rows) != 9 { // 4 sizes × 2 selectors + full pool
		t.Fatalf("rows = %d, want 9", len(tab.Rows))
	}
	full, _ := strconv.ParseFloat(tab.Rows[len(tab.Rows)-1][2], 64)
	if full < 0.5 {
		t.Errorf("full-pool AUCPR = %v, want decent", full)
	}
}

func TestPlugInDoesNotHurt(t *testing.T) {
	tabs, err := PlugIn(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	tab := tabs[0]
	base, _ := strconv.ParseFloat(tab.Rows[0][2], 64)
	ext, _ := strconv.ParseFloat(tab.Rows[1][2], 64)
	if ext < base-0.1 {
		t.Errorf("plugging in detectors hurt: %v -> %v", base, ext)
	}
	if tab.Rows[1][1] != "137" {
		t.Errorf("extended pool size = %s, want 137", tab.Rows[1][1])
	}
}

func TestLabelNoiseRobustness(t *testing.T) {
	tabs, err := LabelNoise(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	tab := tabs[0]
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d, want 5 noise levels", len(tab.Rows))
	}
	exact, _ := strconv.ParseFloat(tab.Rows[0][4], 64)
	mild, _ := strconv.ParseFloat(tab.Rows[1][4], 64)
	if exact < 0.5 {
		t.Errorf("exact-label AUCPR = %v, want decent", exact)
	}
	// §4.2: jitter of ~10% of a window must not collapse accuracy.
	if mild < exact-0.25 {
		t.Errorf("10%%-of-window jitter collapsed accuracy: %v -> %v", exact, mild)
	}
	// Overlap must broadly decrease with noise (first vs last).
	first, _ := strconv.ParseFloat(tab.Rows[0][3], 64)
	last, _ := strconv.ParseFloat(tab.Rows[len(tab.Rows)-1][3], 64)
	if last >= first {
		t.Errorf("overlap did not decrease with noise: %v -> %v", first, last)
	}
}

func TestDriftIncrementalBeatsFrozen(t *testing.T) {
	tabs, err := Drift(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	tab := tabs[0]
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d, want F4/R4/I4", len(tab.Rows))
	}
	byPolicy := map[string][]string{}
	for _, row := range tab.Rows {
		byPolicy[row[0]] = row
	}
	f4Novel, _ := strconv.ParseFloat(byPolicy["F4"][2], 64)
	i4Novel, _ := strconv.ParseFloat(byPolicy["I4"][2], 64)
	if i4Novel <= f4Novel {
		t.Errorf("incremental retraining should beat frozen training on the novel type: I4 %v vs F4 %v", i4Novel, f4Novel)
	}
	if byPolicy["F4"][3] != "0" {
		t.Errorf("F4 training set should contain 0 novel points, got %s", byPolicy["F4"][3])
	}
}

func TestImportanceMatchesKPIWinners(t *testing.T) {
	tabs, err := Importance(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	tab := tabs[0]
	if len(tab.Rows) != 15 { // 3 KPIs × top 5
		t.Fatalf("rows = %d, want 15", len(tab.Rows))
	}
	// Importances are in [0,1] and ranked descending per KPI.
	prevKPI, prev := "", 2.0
	for _, row := range tab.Rows {
		v, _ := strconv.ParseFloat(row[3], 64)
		if v < 0 || v > 1 {
			t.Errorf("importance %v out of range", v)
		}
		if row[0] == prevKPI && v > prev+1e-12 {
			t.Errorf("%s: importance not descending", row[0])
		}
		prevKPI, prev = row[0], v
	}
}
