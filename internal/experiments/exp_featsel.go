package experiments

import (
	"fmt"
	"time"

	"opprentice/internal/core"
	"opprentice/internal/detectors"
	"opprentice/internal/kpigen"
	"opprentice/internal/ml/featsel"
	"opprentice/internal/ml/forest"
	"opprentice/internal/stats"
)

// FeatureSelection runs the experiment §4.4.1 defers to future work: select
// k of the 133 configurations by mRMR (and by plain top-MI, for contrast)
// and compare the forest's accuracy and training cost against the full
// pool. The paper's position — the forest works well without selection —
// is checkable in the last column.
func FeatureSelection(o Options) ([]*Table, error) {
	o = o.withDefaults()
	k, err := prepare(kpigen.PV(o.Scale), o)
	if err != nil {
		return nil, err
	}
	trainHi := core.InitWeeks * k.ppw
	total := (k.feats.NumPoints() / k.ppw) * k.ppw
	trainCols := k.feats.Imputed(0, trainHi)
	testCols := k.feats.Imputed(trainHi, total)
	trainLabels := []bool(k.labels[:trainHi])
	testLabels := []bool(k.labels[trainHi:total])

	t := &Table{
		ID:      "FSEL",
		Title:   "Feature selection (PV): mRMR vs top-MI vs full pool",
		Columns: []string{"features", "selector", "aucpr", "train_ms"},
	}
	evalSubset := func(idx []int, label string) {
		sub := featsel.Select(trainCols, idx)
		subTest := featsel.Select(testCols, idx)
		start := time.Now()
		m := forest.Train(sub, trainLabels, o.forestConfig())
		elapsed := time.Since(start)
		auc := stats.AUCPR(m.ProbAll(subTest), testLabels)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", len(idx)), label, fmtF(auc),
			fmt.Sprintf("%d", elapsed.Milliseconds()),
		})
	}
	for _, n := range []int{5, 10, 20, 40} {
		evalSubset(featsel.MRMR(trainCols, trainLabels, n), "mrmr")
		evalSubset(featsel.TopRelevance(trainCols, trainLabels, n), "top_mi")
	}
	all := make([]int, len(trainCols))
	for i := range all {
		all[i] = i
	}
	evalSubset(all, "none (all 133)")
	t.Notes = "§4.4.1 shape: the full pool is already near-optimal for the forest (selection mostly buys training time); mRMR reaches full accuracy with fewer features than plain top-MI because it skips redundant parameter siblings."
	return []*Table{t}, nil
}

// PlugIn evaluates the §8 claim that emerging detectors plug into Opprentice
// without tuning: the forest is trained once with the Table-3 pool and once
// with the pool plus CUSUM and rate-of-change, on a KPI whose level shifts
// CUSUM is built for.
func PlugIn(o Options) ([]*Table, error) {
	o = o.withDefaults()
	p := kpigen.SRT(o.Scale)
	d := kpigen.Generate(p, o.Seed)
	labels := operatorFor(p.Interval, o.Seed).Label(d.Labels)

	t := &Table{
		ID:      "PLUG",
		Title:   "Plugging in emerging detectors (SRT)",
		Columns: []string{"pool", "configurations", "aucpr"},
	}
	for _, row := range []struct {
		label string
		build func() ([]detectors.Detector, error)
	}{
		{"table-3", func() ([]detectors.Detector, error) { return detectors.Registry(p.Interval) }},
		{"table-3 + cusum + rate_of_change", func() ([]detectors.Detector, error) { return detectors.ExtendedRegistry(p.Interval) }},
	} {
		ds, err := row.build()
		if err != nil {
			return nil, err
		}
		feats, err := core.Extract(d.Series, ds, core.ExtractConfig{})
		if err != nil {
			return nil, err
		}
		ppw, err := d.Series.PointsPerWeek()
		if err != nil {
			return nil, err
		}
		trainHi := core.InitWeeks * ppw
		total := (feats.NumPoints() / ppw) * ppw
		m := forest.Train(feats.Imputed(0, trainHi), labels[:trainHi], o.forestConfig())
		auc := stats.AUCPR(m.ProbAll(feats.Imputed(trainHi, total)), labels[trainHi:total])
		t.Rows = append(t.Rows, []string{row.label, fmt.Sprintf("%d", len(ds)), fmtF(auc)})
	}
	t.Notes = "§8 shape: adding untuned emerging detectors never requires re-engineering and does not hurt — the forest weighs them like any other configuration."
	return []*Table{t}, nil
}
