package experiments

import (
	"fmt"
	"math/rand"

	"opprentice/internal/core"
	"opprentice/internal/kpigen"
	"opprentice/internal/ml/forest"
	"opprentice/internal/stats"
)

// AblationEWMA sweeps the cThld-prediction smoothing constant α on PV: the
// weekly best-cThld sequence is fixed, so each α can be replayed without
// retraining. α = 0.8 is the paper's choice.
func AblationEWMA(o Options) ([]*Table, error) {
	o = o.withDefaults()
	k, err := prepare(kpigen.PV(o.Scale), o)
	if err != nil {
		return nil, err
	}
	res, err := core.Run(k.feats, k.labels, k.ppw, core.Config{
		Preference:   o.Preference,
		Forest:       o.forestConfig(),
		SkipWeeklyCV: true,
	})
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "AblEWMA",
		Title:   "cThld-prediction smoothing constant (PV)",
		Columns: []string{"alpha", "weeks_in_box", "mean_abs_cthld_error"},
	}
	for _, alpha := range []float64{0.1, 0.3, 0.5, 0.8, 1.0} {
		pred := core.NewCThldPredictor(alpha)
		pred.Seed(0.5)
		in := 0
		errSum := 0.0
		for _, w := range res.Weeks {
			thr := pred.Predict()
			r, p := stats.AtThreshold(w.Scores, w.Truth, thr)
			if o.Preference.Satisfied(r, p) {
				in++
			}
			errSum += absF(thr - w.BestCThld)
			pred.Observe(w.BestCThld)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.1f", alpha),
			fmt.Sprintf("%d/%d", in, len(res.Weeks)),
			fmtF(errSum / float64(len(res.Weeks))),
		})
	}
	t.Notes = "The paper uses alpha = 0.8 to quickly catch up with cThld variation."
	return []*Table{t}, nil
}

func absF(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// AblationPC sweeps the PC-Score incentive constant on PV: with constant 0
// the metric degenerates to the F-Score; the paper's constant 1 guarantees
// preference-satisfying points always win.
func AblationPC(o Options) ([]*Table, error) {
	o = o.withDefaults()
	k, err := prepare(kpigen.PV(o.Scale), o)
	if err != nil {
		return nil, err
	}
	res, err := core.Run(k.feats, k.labels, k.ppw, core.Config{
		Preference:   o.Preference,
		Forest:       o.forestConfig(),
		SkipWeeklyCV: true,
	})
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "AblPC",
		Title:   "PC-Score incentive constant (PV)",
		Columns: []string{"incentive", "weeks_in_box"},
	}
	for _, c := range []float64{0, 0.1, 0.5, 1, 2} {
		in := 0
		for _, w := range res.Weeks {
			pt := selectWithIncentive(w.Scores, w.Truth, o.Preference, c)
			if o.Preference.Satisfied(pt.Recall, pt.Precision) {
				in++
			}
		}
		t.Rows = append(t.Rows, []string{fmtF(c), fmt.Sprintf("%d/%d", in, len(res.Weeks))})
	}
	t.Notes = "Any incentive >= 1 dominates (F-Score <= 1); small incentives can still lose to high-F points outside the box; 0 is plain F-Score."
	return []*Table{t}, nil
}

// selectWithIncentive is PC-Score selection with a configurable incentive
// constant.
func selectWithIncentive(scores []float64, truth []bool, pref stats.Preference, incentive float64) stats.PRPoint {
	curve := stats.PRCurve(scores, truth)
	best := stats.PRPoint{}
	bestScore := -1.0
	for _, pt := range curve {
		s := stats.FScore(pt.Recall, pt.Precision)
		if pref.Satisfied(pt.Recall, pt.Precision) {
			s += incentive
		}
		if s > bestScore {
			best, bestScore = pt, s
		}
	}
	return best
}

// AblationPool measures forest accuracy against the size of the
// configuration pool on PV: random subsets of the 133 configurations,
// trained on the first 8 weeks and tested on the rest.
func AblationPool(o Options) ([]*Table, error) {
	o = o.withDefaults()
	k, err := prepare(kpigen.PV(o.Scale), o)
	if err != nil {
		return nil, err
	}
	trainHi := core.InitWeeks * k.ppw
	total := (k.feats.NumPoints() / k.ppw) * k.ppw
	trainCols := k.feats.Imputed(0, trainHi)
	testCols := k.feats.Imputed(trainHi, total)
	trainLabels := []bool(k.labels[:trainHi])
	testLabels := []bool(k.labels[trainHi:total])

	t := &Table{
		ID:      "AblPool",
		Title:   "Forest AUCPR vs number of configurations (PV, random subsets)",
		Columns: []string{"configurations", "aucpr"},
	}
	rng := rand.New(rand.NewSource(o.Seed))
	for _, size := range []int{5, 15, 40, 80, 133} {
		if size > len(trainCols) {
			size = len(trainCols)
		}
		perm := rng.Perm(len(trainCols))[:size]
		subTrain := make([][]float64, size)
		subTest := make([][]float64, size)
		for i, j := range perm {
			subTrain[i] = trainCols[j]
			subTest[i] = testCols[j]
		}
		f := forest.Train(subTrain, trainLabels, o.forestConfig())
		auc := stats.AUCPR(f.ProbAll(subTest), testLabels)
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", size), fmtF(auc)})
		if size == len(trainCols) {
			break
		}
	}
	t.Notes = "Broad pools let the forest find suitable configurations without manual selection (§4.3.2); accuracy should rise then plateau."
	return []*Table{t}, nil
}
