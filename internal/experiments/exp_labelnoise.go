package experiments

import (
	"fmt"

	"opprentice/internal/core"
	"opprentice/internal/kpigen"
	"opprentice/internal/labelsim"
	"opprentice/internal/ml/forest"
	"opprentice/internal/stats"
	"opprentice/internal/timeseries"
)

// LabelNoise quantifies the §4.2 claim that "machine learning is well known
// for being robust to noises" in operator labels: the forest is trained on
// labels with increasing boundary jitter and missed short windows, and
// evaluated against the exact ground truth. The paper asserts real operator
// labels are viable; here the degradation curve is measured.
func LabelNoise(o Options) ([]*Table, error) {
	o = o.withDefaults()
	p := kpigen.PV(o.Scale)
	k, err := prepare(p, o)
	if err != nil {
		return nil, err
	}
	truth := k.dataset.Labels // exact ground truth (injection windows)
	trainHi := core.InitWeeks * k.ppw
	total := (k.feats.NumPoints() / k.ppw) * k.ppw
	trainCols := k.feats.Imputed(0, trainHi)
	testCols := k.feats.Imputed(trainHi, total)
	testTruth := []bool(truth[trainHi:total])

	t := &Table{
		ID:      "AblNoise",
		Title:   "Operator label noise vs forest accuracy (PV, evaluated on exact truth)",
		Columns: []string{"jitter_frac_of_window", "boundary_jitter_pts", "miss_prob", "label_overlap", "aucpr"},
	}
	// Jitter is expressed relative to the typical anomalous-window length,
	// which is what decides whether boundary noise matters: a few minutes of
	// slop on a 40-minute anomaly is harmless at any sampling interval.
	meanDur := meanWindowLen(truth)
	type noiseCase struct {
		frac float64
		op   labelsim.Operator
	}
	cases := []noiseCase{
		{0, labelsim.Operator{}},
		{0.1, labelsim.Operator{Seed: 2}},
		{0.25, labelsim.Operator{Seed: 2}},
		{0.5, labelsim.Operator{MissProb: 0.1, Seed: 2}},
		{1.0, labelsim.Operator{MissProb: 0.25, Seed: 2}},
	}
	for _, c := range cases {
		op := c.op
		op.BoundaryJitter = int(c.frac * meanDur)
		if op.MissProb > 0 {
			op.MissBelow = op.BoundaryJitter
		}
		noisy := op.Label(truth)
		trainLabels := []bool(noisy[:trainHi])
		overlap := labelOverlap(truth[:trainHi], trainLabels)
		m := forest.Train(trainCols, trainLabels, o.forestConfig())
		auc := stats.AUCPR(m.ProbAll(testCols), testTruth)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.2f", c.frac),
			fmt.Sprintf("%d", op.BoundaryJitter),
			fmt.Sprintf("%.2f", op.MissProb),
			fmtF(overlap),
			fmtF(auc),
		})
	}
	t.Notes = "§4.2 shape: boundary extension/narrowing barely moves accuracy (the labels the tool produces are viable for learning); only aggressive misses of whole windows cost recall."
	return []*Table{t}, nil
}

// meanWindowLen returns the mean anomalous-window length in points (1 when
// there are no windows).
func meanWindowLen(labels timeseries.Labels) float64 {
	ws := labels.Windows()
	if len(ws) == 0 {
		return 1
	}
	total := 0
	for _, w := range ws {
		total += w.Len()
	}
	return float64(total) / float64(len(ws))
}

// labelOverlap is the Jaccard index between two label vectors' anomalous
// sets (1 = identical labeling).
func labelOverlap(a, b []bool) float64 {
	inter, union := 0, 0
	for i := range a {
		if a[i] || b[i] {
			union++
		}
		if a[i] && b[i] {
			inter++
		}
	}
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}
