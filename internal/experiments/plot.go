package experiments

import (
	"fmt"
	"math"
	"strings"

	"opprentice/internal/timeseries"
)

// asciiPlot renders a value series as a terminal line plot of the given
// width × height. Points whose label is true are drawn with '#' (anomalies),
// others with '*'. Values are downsampled by bucket means; a bucket is
// anomalous if any point in it is.
func asciiPlot(values []float64, labels timeseries.Labels, width, height int) string {
	if len(values) == 0 || width < 2 || height < 2 {
		return ""
	}
	if width > len(values) {
		width = len(values)
	}
	buckets := make([]float64, width)
	anom := make([]bool, width)
	for b := 0; b < width; b++ {
		lo := b * len(values) / width
		hi := (b + 1) * len(values) / width
		if hi <= lo {
			hi = lo + 1
		}
		sum := 0.0
		for i := lo; i < hi; i++ {
			sum += values[i]
			if labels != nil && labels[i] {
				anom[b] = true
			}
		}
		buckets[b] = sum / float64(hi-lo)
	}
	minV, maxV := math.Inf(1), math.Inf(-1)
	for _, v := range buckets {
		minV = math.Min(minV, v)
		maxV = math.Max(maxV, v)
	}
	if maxV == minV {
		maxV = minV + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for b, v := range buckets {
		row := int((maxV - v) / (maxV - minV) * float64(height-1))
		ch := byte('*')
		if anom[b] {
			ch = '#'
		}
		grid[row][b] = ch
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "max %.4g\n", maxV)
	for _, row := range grid {
		sb.WriteString("|")
		sb.Write(row)
		sb.WriteString("\n")
	}
	fmt.Fprintf(&sb, "min %.4g  ('#' marks anomalous buckets)\n", minV)
	return sb.String()
}
