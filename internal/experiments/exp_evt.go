package experiments

import (
	"fmt"

	"opprentice/internal/core"
	"opprentice/internal/detectors"
	"opprentice/internal/stats"
)

// EVTvsEWMA is the A/B behind the -cthld-predictor flag: the same online
// serving path (core.Monitor — the code the engine ships) is driven twice
// over each case-study KPI, once with the paper's EWMA cThld prediction and
// once with the EVT/POT dynamic predictor, and the aggregate point-wise
// accuracy of the resulting alarms is compared under the operators'
// preference. Both arms boot on the first InitWeeks of operator labels,
// stream the remaining weeks point by point, and retrain at every week
// boundary exactly like the engine's scheduler.
func EVTvsEWMA(o Options) ([]*Table, error) {
	o = o.withDefaults()
	kpis, err := prepareAll(o)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "EVT",
		Title: "Online detection: EVT/POT dynamic cThld vs EWMA prediction (served path A/B)",
		Columns: []string{"kpi", "predictor", "recall", "precision",
			"fscore", "pc_score"},
	}
	wins, arms := 0, []core.PredictorKind{core.PredictEWMA, core.PredictEVT}
	for _, k := range kpis {
		pc := make(map[core.PredictorKind]float64, len(arms))
		for _, kind := range arms {
			c, err := streamOnline(k, kind, o)
			if err != nil {
				return nil, err
			}
			r, p := c.Recall(), c.Precision()
			pc[kind] = stats.PCScore(r, p, o.Preference)
			t.Rows = append(t.Rows, []string{
				k.series.Name, kind.String(),
				fmtF(r), fmtF(p), fmtF(stats.FScore(r, p)), fmtF(pc[kind]),
			})
		}
		if pc[core.PredictEVT] >= pc[core.PredictEWMA] {
			wins++
		}
	}
	t.Notes = fmt.Sprintf(
		"EVT matches or beats the EWMA PC-Score on %d/%d KPIs. At every weekly retrain the POT/GPD tail re-fits on the trailing week's held-out vote fractions (scored by the outgoing model — the distribution actually served), the exceedance risk q auto-calibrates against the week's labels, and the threshold then drifts per point between retrains, where EWMA holds one threshold per week.",
		wins, len(kpis))
	return []*Table{t}, nil
}

// streamOnline drives one predictor arm over one KPI through the real
// Monitor: boot on the first InitWeeks, then Step every remaining point
// (whole weeks only) with a RetrainCached at each week boundary, and
// return the aggregate confusion of the alarms against the operator labels.
func streamOnline(k *kpiData, kind core.PredictorKind, o Options) (stats.Confusion, error) {
	boot := core.InitWeeks * k.ppw
	total := (k.series.Len() / k.ppw) * k.ppw
	if boot >= total {
		return stats.Confusion{}, fmt.Errorf("experiments: %s too short for an online A/B (%d points, boot %d)",
			k.series.Name, total, boot)
	}
	dets, err := detectors.Registry(k.series.Interval)
	if err != nil {
		return stats.Confusion{}, err
	}
	cache := core.NewFeatureCache(nil)
	mon, err := core.NewMonitor(k.series.Slice(0, boot), k.labels[:boot], dets, core.MonitorConfig{
		Preference: o.Preference,
		Forest:     o.forestConfig(),
		Predictor:  kind,
		Cache:      cache,
	})
	if err != nil {
		return stats.Confusion{}, err
	}
	pred := make([]bool, 0, total-boot)
	for i := boot; i < total; i++ {
		pred = append(pred, mon.Step(k.series.Values[i]).Anomalous)
		// Weekly incremental retrain (§3.2): all labeled history up to the
		// stream head, exactly the engine scheduler's cadence. The final
		// boundary coincides with the end of the stream and is skipped.
		if head := i + 1; (head-boot)%k.ppw == 0 && head < total {
			retrainDets, err := detectors.Registry(k.series.Interval)
			if err != nil {
				return stats.Confusion{}, err
			}
			if err := mon.RetrainCached(k.series.Slice(0, head), k.labels[:head], retrainDets, cache); err != nil {
				return stats.Confusion{}, err
			}
		}
	}
	return stats.Confuse(pred, []bool(k.labels.Slice(boot, total))), nil
}
