package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"opprentice/internal/kpigen"
)

// testOptions keeps experiment tests fast: small data, small forests.
func testOptions() Options {
	return Options{Scale: kpigen.Small, Seed: 1, Trees: 12}
}

func TestRegistryIDsUniqueAndFindable(t *testing.T) {
	seen := map[string]bool{}
	for _, m := range Registry() {
		if seen[m.ID] {
			t.Errorf("duplicate experiment id %s", m.ID)
		}
		seen[m.ID] = true
		if m.Run == nil {
			t.Errorf("%s has no runner", m.ID)
		}
		if _, ok := Find(strings.ToLower(m.ID)); !ok {
			t.Errorf("Find(%q) failed", m.ID)
		}
	}
	if _, ok := Find("nope"); ok {
		t.Error("Find should reject unknown ids")
	}
}

func TestTableWriteTo(t *testing.T) {
	tab := &Table{
		ID:      "X",
		Title:   "demo",
		Columns: []string{"a", "long_column"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
		Notes:   "note",
	}
	var buf bytes.Buffer
	if _, err := tab.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"== X: demo ==", "long_column", "333", "note"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestAsciiPlot(t *testing.T) {
	vals := make([]float64, 100)
	labels := make([]bool, 100)
	for i := range vals {
		vals[i] = float64(i % 10)
		labels[i] = i == 50
	}
	out := asciiPlot(vals, labels, 50, 8)
	if !strings.Contains(out, "#") {
		t.Error("plot should mark the anomaly with '#'")
	}
	if !strings.Contains(out, "*") {
		t.Error("plot should draw normal buckets with '*'")
	}
	if asciiPlot(nil, nil, 50, 8) != "" {
		t.Error("empty plot should be empty")
	}
}

func TestTable1ShapesMatchPaper(t *testing.T) {
	tabs, err := Table1(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	tab := tabs[0]
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(tab.Rows))
	}
	// Column order: kpi, interval, weeks, strength, seasonality, cv, frac.
	byName := map[string][]string{}
	for _, r := range tab.Rows {
		byName[r[0]] = r
	}
	if byName["pv"][4] != "strong" {
		t.Errorf("pv seasonality = %s, want strong", byName["pv"][4])
	}
	if byName["sr"][4] != "weak" {
		t.Errorf("sr seasonality = %s, want weak", byName["sr"][4])
	}
	cv := func(name string) float64 {
		v, err := strconv.ParseFloat(byName[name][5], 64)
		if err != nil {
			t.Fatalf("bad cv cell %q", byName[name][5])
		}
		return v
	}
	if !(cv("sr") > cv("pv") && cv("pv") > cv("srt")) {
		t.Errorf("cv ordering wrong: sr=%v pv=%v srt=%v", cv("sr"), cv("pv"), cv("srt"))
	}
}

func TestFig1ProducesPlots(t *testing.T) {
	tabs, err := Fig1(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	notes := tabs[0].Notes
	for _, kpi := range []string{"pv", "sr", "srt"} {
		if !strings.Contains(notes, "--- "+kpi) {
			t.Errorf("missing plot for %s", kpi)
		}
	}
}

func TestTable3Totals133(t *testing.T) {
	tabs, err := Table3(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	last := tabs[0].Rows[len(tabs[0].Rows)-1]
	if last[2] != "133" {
		t.Errorf("total = %s, want 133", last[2])
	}
	if !strings.Contains(tabs[0].Notes, "133") {
		t.Error("registry cross-check missing")
	}
}

func TestFig5PrintsTree(t *testing.T) {
	tabs, err := Fig5(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	notes := tabs[0].Notes
	if !strings.Contains(notes, "severity[") {
		t.Errorf("tree print lacks severity rules:\n%s", notes)
	}
	if !strings.Contains(notes, "full tree:") {
		t.Error("tree stats missing")
	}
}

func TestFig6SelectionsRespectMetrics(t *testing.T) {
	tabs, err := Fig6(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 2 {
		t.Fatalf("tables = %d, want 2 (curve + selections)", len(tabs))
	}
	sel := tabs[1]
	if len(sel.Rows) != 8 { // 2 preferences × 4 metrics
		t.Fatalf("selection rows = %d, want 8", len(sel.Rows))
	}
	for _, row := range sel.Rows {
		if row[1] == "default_cthld" && row[2] != "0.500" {
			t.Errorf("default metric picked threshold %s", row[2])
		}
	}
}

func TestFig7NeighborSimilarity(t *testing.T) {
	tabs, err := Fig7(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	tab := tabs[0]
	if len(tab.Rows) == 0 {
		t.Fatal("no weekly rows")
	}
	if !strings.Contains(tab.Notes, "Δ neighbor") {
		t.Error("neighbor-similarity note missing")
	}
}

func TestFig9RandomForestRanksHigh(t *testing.T) {
	tabs, err := Fig9(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 3 {
		t.Fatalf("tables = %d, want one per KPI", len(tabs))
	}
	for _, tab := range tabs {
		var rfRank, normRank, voteRank int
		for _, row := range tab.Rows {
			rank, _ := strconv.Atoi(strings.SplitN(row[0], "/", 2)[0])
			switch row[1] {
			case nameRF:
				rfRank = rank
			case nameNorm:
				normRank = rank
			case nameVote:
				voteRank = rank
			}
		}
		// Paper shape: RF in the top ranks, static combinations behind it.
		if rfRank == 0 || rfRank > 10 {
			t.Errorf("%s: random forest rank %d, want top 10", tab.Title, rfRank)
		}
		if normRank <= rfRank || voteRank <= rfRank {
			t.Errorf("%s: combos (%d, %d) should rank below RF (%d)",
				tab.Title, normRank, voteRank, rfRank)
		}
	}
}

func TestTable4RandomForestPrecisionHigh(t *testing.T) {
	tabs, err := Table4(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	tab := tabs[0]
	var rfRow []string
	for _, row := range tab.Rows {
		if row[0] == nameRF {
			rfRow = row
		}
	}
	if rfRow == nil {
		t.Fatal("no random forest row")
	}
	for i, cell := range rfRow[1:] {
		v, err := strconv.ParseFloat(cell, 64)
		if err != nil {
			t.Fatalf("bad precision cell %q", cell)
		}
		if v < 0.6 {
			t.Errorf("RF max precision[%d] = %v, want ≥ 0.6 (paper: ≥ 0.83)", i, v)
		}
	}
}

func TestFig10ForestStaysHighWithAllFeatures(t *testing.T) {
	tabs, err := Fig10(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, tab := range tabs {
		last := tab.Rows[len(tab.Rows)-1] // all 133 features
		rf, _ := strconv.ParseFloat(last[len(last)-1], 64)
		if rf < 0.3 {
			t.Errorf("%s: RF AUCPR with all features = %v, want ≥ 0.3", tab.Title, rf)
		}
	}
}

func TestFig11HasMeanRow(t *testing.T) {
	tabs, err := Fig11(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, tab := range tabs {
		last := tab.Rows[len(tab.Rows)-1]
		if last[0] != "mean" {
			t.Errorf("%s: last row %v, want mean", tab.Title, last)
		}
	}
}

func TestFig12PCScoreWinsOnItsPreference(t *testing.T) {
	tabs, err := Fig12(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	tab := tabs[0]
	// For every (kpi, preference) block, the PC-Score row's in-box count at
	// the original preference must be ≥ every other metric's.
	type key struct{ kpi, pref string }
	bestPC := map[key]int{}
	others := map[key]int{}
	for _, row := range tab.Rows {
		k := key{row[0], row[1]}
		v, _ := strconv.Atoi(strings.TrimSuffix(row[3], "%"))
		if row[2] == "pc_score" {
			bestPC[k] = v
		} else if v > others[k] {
			others[k] = v
		}
	}
	for k, pc := range bestPC {
		if pc < others[k] {
			t.Errorf("%v: pc_score %d%% < best other metric %d%%", k, pc, others[k])
		}
	}
}

func TestFig14TotalsReported(t *testing.T) {
	tabs, err := Fig14(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tabs[0].Notes, "Total labeling minutes") {
		t.Error("totals missing")
	}
	if len(tabs[0].Rows) < 6 {
		t.Errorf("rows = %d, want months for 3 KPIs", len(tabs[0].Rows))
	}
}

// TestActiveLabelCostCurve pins the active-learning promise at test scale: a
// one-query-per-week budget labels well under 40% of the windows full
// labeling does, while keeping ≥90% of the full-label PC-Score on every KPI
// (the medium-scale EXPERIMENTS.md run holds ≥95%).
func TestActiveLabelCostCurve(t *testing.T) {
	tabs, err := Active(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	tab := tabs[0]
	var fullWindows, activeWindows int
	for _, row := range tab.Rows {
		kpi, strategy := row[0], row[1]
		windows, err := strconv.Atoi(row[2])
		if err != nil {
			t.Fatalf("bad windows cell %q", row[2])
		}
		ratio, err := strconv.ParseFloat(row[8], 64)
		if err != nil {
			t.Fatalf("bad pc_vs_full cell %q", row[8])
		}
		switch strategy {
		case "full":
			fullWindows += windows
		case "active@1":
			activeWindows += windows
			if ratio < 0.9 {
				t.Errorf("%s active@1 keeps only %.1f%% of the full-label PC-Score", kpi, 100*ratio)
			}
		}
	}
	if fullWindows == 0 {
		t.Fatal("full strategy labeled no windows")
	}
	if frac := float64(activeWindows) / float64(fullWindows); frac > 0.4 {
		t.Errorf("active@1 labeled %.0f%% of the windows, want ≤ 40%%", 100*frac)
	}
}

func TestLagReportsStages(t *testing.T) {
	tabs, err := Lag(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs[0].Rows) != 3 {
		t.Fatalf("rows = %d, want 3 stages", len(tabs[0].Rows))
	}
}

func TestAblationsRun(t *testing.T) {
	for _, run := range []Runner{AblationEWMA, AblationPC, AblationPool} {
		tabs, err := run(testOptions())
		if err != nil {
			t.Fatal(err)
		}
		if len(tabs[0].Rows) == 0 {
			t.Error("ablation produced no rows")
		}
	}
}

func TestAblationPCIncentiveOneDominatesZero(t *testing.T) {
	tabs, err := AblationPC(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	in := map[string]int{}
	for _, row := range tabs[0].Rows {
		v, _ := strconv.Atoi(strings.SplitN(row[1], "/", 2)[0])
		in[row[0]] = v
	}
	if in["1.000"] < in["0.000"] {
		t.Errorf("incentive 1 (%d weeks) should be ≥ incentive 0 (%d weeks)", in["1.000"], in["0.000"])
	}
}

func TestFig13OnlineAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("weekly cross-validation is slow")
	}
	o := testOptions()
	o.Trees = 8
	tabs, err := Fig13(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 3 {
		t.Fatalf("tables = %d, want 3", len(tabs))
	}
	for _, tab := range tabs {
		if len(tab.Rows) == 0 {
			t.Errorf("%s: no windows", tab.Title)
		}
		if !strings.Contains(tab.Notes, "inside preference box") {
			t.Error("summary note missing")
		}
	}
}
