package experiments

import (
	"fmt"

	"opprentice/internal/active"
	"opprentice/internal/core"
	"opprentice/internal/labelsim"
	"opprentice/internal/ml/forest"
	"opprentice/internal/stats"
	"opprentice/internal/timeseries"
)

// activeRun is one strategy's outcome over a KPI's post-bootstrap weeks.
type activeRun struct {
	windows int     // label windows applied after the bootstrap
	minutes float64 // modeled labeling time after the bootstrap (Fig. 14 pricing)
	conf    stats.Confusion
}

// pcScore collapses the summed weekly confusion into the paper's
// preference-centric score.
func (r activeRun) pcScore(pref stats.Preference) float64 {
	return stats.PCScore(r.conf.Recall(), r.conf.Precision(), pref)
}

// Active measures the label cost of the active-learning subsystem
// (internal/active): after the usual 8 fully-labeled bootstrap weeks, the
// "full" strategy keeps labeling every anomalous window weekly, while
// "active@K" answers only the K windows per week the forest is least certain
// about (vote fraction nearest the predicted cThld — the same queue the
// engine serves via /v1/queries). Both are priced with the Fig. 14 time
// model through labelsim.QueryOracle, and both are evaluated against the
// complete operator labels at the online EWMA cThld. The paper's promise is
// that uncertainty sampling buys nearly all of the accuracy for a fraction
// of the labels.
func Active(o Options) ([]*Table, error) {
	o = o.withDefaults()
	kpis, err := prepareAll(o)
	if err != nil {
		return nil, err
	}
	model := labelsim.DefaultTimeModel()
	depths := []int{1, 2, 4, 8}

	t := &Table{
		ID:    "ACTIVE",
		Title: "Active-learning label cost: full weekly labeling vs K uncertainty queries per week",
		Columns: []string{"kpi", "strategy", "windows", "label_frac", "minutes",
			"recall", "precision", "pc_score", "pc_vs_full"},
	}
	// Per-depth aggregates across the KPIs, for the headline note.
	aggFull := 0
	aggWindows := make(map[int]int)
	minRatio := make(map[int]float64)
	for _, depth := range depths {
		minRatio[depth] = 1.0
	}
	for _, k := range kpis {
		full, err := runActiveLoop(k, o, model, -1)
		if err != nil {
			return nil, err
		}
		pcFull := full.pcScore(o.Preference)
		aggFull += full.windows
		addActiveRow(t, k.series.Name, "full", full, full, pcFull, o.Preference)
		for _, depth := range depths {
			run, err := runActiveLoop(k, o, model, depth)
			if err != nil {
				return nil, err
			}
			addActiveRow(t, k.series.Name, fmt.Sprintf("active@%d", depth), run, full, pcFull, o.Preference)
			aggWindows[depth] += run.windows
			if pcFull > 0 {
				if ratio := run.pcScore(o.Preference) / pcFull; ratio < minRatio[depth] {
					minRatio[depth] = ratio
				}
			}
		}
	}
	// The cheapest query budget whose worst KPI still holds ≥95% of full.
	note := "no query budget held ≥95% of the full-label PC-Score on every KPI"
	for _, depth := range depths {
		if minRatio[depth] >= 0.95 && aggFull > 0 {
			note = fmt.Sprintf(
				"cheapest budget holding ≥95%% everywhere is active@%d: %.0f%% of the label windows, worst KPI at %.1f%% of the full-label PC-Score",
				depth, 100*float64(aggWindows[depth])/float64(aggFull), 100*minRatio[depth])
			break
		}
	}
	t.Notes = "Queries are the engine's own uncertainty queue (internal/active) replayed offline; minutes follow Fig. 14 (one sitting per week + one click-and-drag per answered window). Shape: " + note + "."
	return []*Table{t}, nil
}

func addActiveRow(t *Table, kpi, strategy string, run, full activeRun, pcFull float64, pref stats.Preference) {
	frac, ratio := 1.0, 1.0
	if full.windows > 0 {
		frac = float64(run.windows) / float64(full.windows)
	}
	if pcFull > 0 {
		ratio = run.pcScore(pref) / pcFull
	}
	t.Rows = append(t.Rows, []string{
		kpi, strategy,
		fmt.Sprintf("%d", run.windows),
		fmtF(frac),
		fmt.Sprintf("%.1f", run.minutes),
		fmtF(run.conf.Recall()), fmtF(run.conf.Precision()),
		fmtF(run.pcScore(pref)),
		fmtF(ratio),
	})
}

// runActiveLoop replays the weekly online loop of Fig. 3 with a labeling
// strategy: depth < 0 reveals every operator window each week ("full");
// depth >= 1 surfaces at most depth uncertainty queries per week and labels
// only the answered windows. Training uses the labeled pool only — the
// bootstrap weeks plus whatever the strategy labeled afterwards — so an
// unanswered window is unknown, never silently "normal". The EWMA cThld
// predictor likewise only ever sees the labels the strategy actually
// produced; the full ground truth is used for evaluation alone.
func runActiveLoop(k *kpiData, o Options, model labelsim.TimeModel, depth int) (activeRun, error) {
	n := k.feats.NumPoints()
	weeks := n / k.ppw
	if weeks <= core.InitWeeks {
		return activeRun{}, fmt.Errorf("active: %d weeks of data, need more than %d", weeks, core.InitWeeks)
	}
	bootHi := core.InitWeeks * k.ppw

	// The strategy's working view of the labels, plus the indices it has
	// actually labeled (the training pool). Bootstrap weeks are fully
	// labeled; later points join the pool only when the strategy labels them.
	working := make(timeseries.Labels, n)
	copy(working[:bootHi], k.labels[:bootHi])
	labeledIdx := make([]int, bootHi)
	for i := range labeledIdx {
		labeledIdx[i] = i
	}

	oracle := labelsim.NewQueryOracle(k.labels, model, 0, o.Seed)
	pred := core.NewCThldPredictor(0.8)
	pred.Seed(0.5)

	var run activeRun
	for w := core.InitWeeks; w < weeks; w++ {
		trainHi := w * k.ppw
		forestModel := forest.Train(
			gatherRows(k.feats.Imputed(0, trainHi), labeledIdx),
			gatherLabels(working, labeledIdx), o.forestConfig())
		testLo, testHi := trainHi, trainHi+k.ppw
		scores := forestModel.ProbAll(k.feats.Imputed(testLo, testHi))
		cthld := pred.Predict()
		wc := confusionAgainst(scores, k.labels[testLo:testHi], cthld)
		run.conf.TP += wc.TP
		run.conf.FP += wc.FP
		run.conf.FN += wc.FN
		run.conf.TN += wc.TN

		// The operators sit down once per week and label. An answered window
		// copies the operator's precise labels inside its span — the query
		// directs attention, the §4.2 tool still marks the exact anomalous
		// range with the one click-and-drag the time model charges for.
		label := func(start, end int) error {
			anomalous, ok := oracle.Answer(start, end)
			if !ok {
				return fmt.Errorf("active: unlimited oracle refused an answer")
			}
			for i := start; i < end && i < n; i++ {
				if i < 0 {
					continue
				}
				working[i] = anomalous && k.labels[i]
				labeledIdx = append(labeledIdx, i)
			}
			run.windows++
			return nil
		}
		if depth < 0 {
			// Full labeling: every operator window of the week, each priced
			// like an answered query; everything outside them is known-normal.
			weekWindows := windowsIn(k.labels, testLo, testHi)
			if len(weekWindows) > 0 {
				oracle.BeginSitting()
				for _, win := range weekWindows {
					if err := label(win.Start, min(win.End, testHi)); err != nil {
						return activeRun{}, err
					}
				}
				oracle.EndSitting()
			}
			for i := testLo; i < testHi; i++ {
				if !k.labels[i] {
					labeledIdx = append(labeledIdx, i)
				}
			}
		} else {
			// Active labeling: replay the engine's uncertainty queue over the
			// week's verdicts and answer what it surfaces.
			st := active.NewState(active.Config{Band: active.DefaultBand, Depth: depth, DriftThreshold: -1})
			for i, s := range scores {
				st.Observe(testLo+i, s, cthld)
			}
			queries := st.Windows(nil)
			if len(queries) > 0 {
				oracle.BeginSitting()
				for _, q := range queries {
					if err := label(q.Start, q.End); err != nil {
						return activeRun{}, err
					}
				}
				oracle.EndSitting()
			}
		}

		// Fold the week's best cThld — under the labels the strategy actually
		// has — into the predictor, as the engine does after each retrain.
		weekScores, weekTruth := gatherWeek(scores, working, labeledIdx, testLo, testHi)
		if bothLabelClasses(weekTruth) {
			best, _ := stats.BestByPCScore(stats.PRCurve(weekScores, weekTruth), o.Preference)
			pred.Observe(best.Threshold)
		}
	}
	run.minutes = oracle.SpentMinutes()
	return run, nil
}

// gatherRows selects the given row indices out of column-major features.
func gatherRows(cols [][]float64, idx []int) [][]float64 {
	out := make([][]float64, len(cols))
	for j, c := range cols {
		s := make([]float64, len(idx))
		for r, i := range idx {
			s[r] = c[i]
		}
		out[j] = s
	}
	return out
}

// gatherLabels selects the given indices out of the working labels.
func gatherLabels(labels timeseries.Labels, idx []int) []bool {
	out := make([]bool, len(idx))
	for r, i := range idx {
		out[r] = labels[i]
	}
	return out
}

// gatherWeek returns the scores and working labels of the week's labeled
// points only.
func gatherWeek(scores []float64, working timeseries.Labels, labeledIdx []int, testLo, testHi int) ([]float64, []bool) {
	var ws []float64
	var wt []bool
	for _, i := range labeledIdx {
		if i >= testLo && i < testHi {
			ws = append(ws, scores[i-testLo])
			wt = append(wt, working[i])
		}
	}
	return ws, wt
}

// confusionAgainst evaluates "score >= thr" against the full ground truth.
func confusionAgainst(scores []float64, truth timeseries.Labels, thr float64) stats.Confusion {
	pred := make([]bool, len(scores))
	for i, s := range scores {
		pred[i] = s >= thr
	}
	return stats.Confuse(pred, truth)
}

// windowsIn lists the label windows that start inside [lo, hi).
func windowsIn(labels timeseries.Labels, lo, hi int) []timeseries.Window {
	var out []timeseries.Window
	for _, w := range labels.Windows() {
		if w.Start >= lo && w.Start < hi {
			out = append(out, w)
		}
	}
	return out
}

func bothLabelClasses(labels []bool) bool {
	var pos, neg bool
	for _, l := range labels {
		if l {
			pos = true
		} else {
			neg = true
		}
		if pos && neg {
			return true
		}
	}
	return false
}
