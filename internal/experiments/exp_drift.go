package experiments

import (
	"fmt"
	"sort"

	"opprentice/internal/core"
	"opprentice/internal/detectors"
	"opprentice/internal/kpigen"
	"opprentice/internal/ml/forest"
	"opprentice/internal/stats"
)

// Drift tests the §3.2 motivation for incremental retraining: "new types of
// anomalies might emerge in the future... Opprentice is able to catch and
// learn new types that do not show up in the initial training set". A novel
// anomaly type (jitter) appears only after the initial 8 training weeks; F4
// (frozen on the first 8 weeks, which never saw it) is compared against I4
// (all history) and R4 (recent 8 weeks) on the novel type specifically.
func Drift(o Options) ([]*Table, error) {
	o = o.withDefaults()
	p := kpigen.PV(o.Scale)
	p.Weeks += 4                         // enough moving windows for the policies to diverge
	p.NovelFromWeek = core.InitWeeks + 1 // jitter first appears in week 10
	d := kpigen.Generate(p, o.Seed)
	labels := operatorFor(p.Interval, o.Seed).Label(d.Labels)

	ds, err := detectors.Registry(p.Interval)
	if err != nil {
		return nil, err
	}
	feats, err := core.Extract(d.Series, ds, core.ExtractConfig{})
	if err != nil {
		return nil, err
	}
	ppw, err := d.Series.PointsPerWeek()
	if err != nil {
		return nil, err
	}

	// Mark the novel-type points so the evaluation can isolate them.
	novel := make([]bool, d.Series.Len())
	for _, a := range d.Anomalies {
		if a.Type == kpigen.Jitter {
			for i := a.Window.Start; i < a.Window.End; i++ {
				novel[i] = true
			}
		}
	}

	t := &Table{
		ID:    "DRIFT",
		Title: "Novel anomaly type appearing after the initial training set (PV + jitter from week 10)",
		Columns: []string{"policy", "aucpr_all_anomalies", "aucpr_novel_only",
			"novel_points_in_train"},
	}
	n := feats.NumPoints()
	for _, policy := range []core.Policy{core.F4, core.R4, core.I4} {
		var allScores, novelScores []float64
		var allTruth, novelTruth []bool
		trainNovel := 0
		numSplits := policy.NumSplits(ppw, n)
		for k := 0; ; k++ {
			trainLo, trainHi, testLo, testHi, ok := policy.Split(k, ppw, n)
			if !ok {
				break
			}
			model := forest.Train(feats.Imputed(trainLo, trainHi), labels[trainLo:trainHi], o.forestConfig())
			scores := model.ProbAll(feats.Imputed(testLo, testHi))
			// Only the window's leading week is new each step (to avoid
			// double counting) — except the final window, whose whole span
			// is evaluated so the tail weeks are covered too.
			lead := ppw
			if k == numSplits-1 || testHi-testLo < lead {
				lead = testHi - testLo
			}
			for i := 0; i < lead; i++ {
				gi := testLo + i
				allScores = append(allScores, scores[i])
				allTruth = append(allTruth, labels[gi])
				// Novel-only evaluation: novel anomalies vs normal points
				// (classic-type anomalies are excluded so they cannot mask
				// the novel-type recall).
				if novel[gi] || !labels[gi] {
					novelScores = append(novelScores, scores[i])
					novelTruth = append(novelTruth, novel[gi])
				}
			}
			if k == 0 || policy != core.F4 {
				trainNovel = countNovel(novel, trainLo, trainHi)
			}
		}
		t.Rows = append(t.Rows, []string{
			policy.String(),
			fmtF(stats.AUCPR(allScores, allTruth)),
			fmtF(stats.AUCPR(novelScores, novelTruth)),
			fmt.Sprintf("%d", trainNovel),
		})
	}
	t.Notes = "§3.2 shape: F4 never sees the novel type in training and scores it poorly; I4 (incremental retraining) accumulates the new labels and recovers — the reason Opprentice retrains weekly."
	return []*Table{t}, nil
}

func countNovel(novel []bool, lo, hi int) int {
	n := 0
	for i := lo; i < hi && i < len(novel); i++ {
		if novel[i] {
			n++
		}
	}
	return n
}

// Importance reports the forest's gini feature importances per KPI: the
// automated version of reading Fig 5's tree, showing which detector
// configurations each KPI's classifier actually relies on.
func Importance(o Options) ([]*Table, error) {
	o = o.withDefaults()
	kpis, err := prepareAll(o)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "IMP",
		Title:   "Top detector configurations by forest gini importance",
		Columns: []string{"kpi", "rank", "configuration", "importance"},
	}
	for _, k := range kpis {
		trainHi := core.InitWeeks * k.ppw
		model := forest.Train(k.feats.Imputed(0, trainHi), k.labels[:trainHi], o.forestConfig())
		imp := model.Importances()
		type pair struct {
			j int
			v float64
		}
		ps := make([]pair, len(imp))
		for j, v := range imp {
			ps[j] = pair{j, v}
		}
		sort.SliceStable(ps, func(a, b int) bool { return ps[a].v > ps[b].v })
		for r := 0; r < 5 && r < len(ps); r++ {
			t.Rows = append(t.Rows, []string{
				k.series.Name,
				fmt.Sprintf("%d", r+1),
				k.feats.Names[ps[r].j],
				fmtF(ps[r].v),
			})
		}
	}
	t.Notes = "Shape: the important configurations differ per KPI and line up with Fig 9's per-KPI basic-detector winners — the forest discovers them without manual selection."
	return []*Table{t}, nil
}
