// Package experiments regenerates every table and figure of the paper's
// evaluation (§5) from the synthetic KPIs: each experiment returns printable
// tables whose rows are the series the paper plots. The per-experiment index
// in DESIGN.md maps experiment ids to the modules exercised here.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"opprentice/internal/core"
	"opprentice/internal/detectors"
	"opprentice/internal/kpigen"
	"opprentice/internal/labelsim"
	"opprentice/internal/ml/forest"
	"opprentice/internal/stats"
	"opprentice/internal/timeseries"
)

// Options configure an experiment run.
type Options struct {
	// Scale selects the dataset size (default kpigen.Medium).
	Scale kpigen.Scale
	// Seed drives all randomness (default 1).
	Seed int64
	// Trees is the forest size (default 60).
	Trees int
	// Preference is the operators' accuracy preference
	// (default recall ≥ 0.66, precision ≥ 0.66).
	Preference stats.Preference
}

func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Trees == 0 {
		o.Trees = 60
	}
	if o.Preference == (stats.Preference{}) {
		o.Preference = stats.Preference{Recall: 0.66, Precision: 0.66}
	}
	return o
}

func (o Options) forestConfig() forest.Config {
	return forest.Config{Trees: o.Trees, Seed: o.Seed}
}

// Table is one printable result: a titled grid plus free-form notes (used
// for ASCII plots and printed trees).
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   string
}

// WriteTo renders the table with aligned columns.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", t.ID, t.Title)
	if len(t.Columns) > 0 {
		widths := make([]int, len(t.Columns))
		for j, c := range t.Columns {
			widths[j] = len(c)
		}
		for _, row := range t.Rows {
			for j, cell := range row {
				if j < len(widths) && len(cell) > widths[j] {
					widths[j] = len(cell)
				}
			}
		}
		writeRow := func(cells []string) {
			for j, cell := range cells {
				if j > 0 {
					sb.WriteString("  ")
				}
				fmt.Fprintf(&sb, "%-*s", widths[j], cell)
			}
			sb.WriteByte('\n')
		}
		writeRow(t.Columns)
		for j, wd := range widths {
			if j > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(strings.Repeat("-", wd))
		}
		sb.WriteByte('\n')
		for _, row := range t.Rows {
			writeRow(row)
		}
	}
	if t.Notes != "" {
		sb.WriteString(t.Notes)
		if !strings.HasSuffix(t.Notes, "\n") {
			sb.WriteByte('\n')
		}
	}
	sb.WriteByte('\n')
	n, err := io.WriteString(w, sb.String())
	return int64(n), err
}

// kpiData is one prepared KPI: generated, operator-labeled and
// feature-extracted.
type kpiData struct {
	dataset *kpigen.Dataset
	series  *timeseries.Series
	labels  timeseries.Labels // operator labels (noisy) — the ground truth
	feats   *core.Features
	ppw     int
	ppd     int
}

// operatorFor scales the simulated operator's imperfections to the data
// interval: boundary errors of a few wall-clock minutes and occasionally
// missed sub-15-minute blips, as with the real labeling tool. At coarse
// intervals these round to zero points and the operator becomes exact.
func operatorFor(interval time.Duration, seed int64) labelsim.Operator {
	return labelsim.Operator{
		BoundaryJitter: int(5 * time.Minute / interval),
		MissBelow:      int(15 * time.Minute / interval),
		MissProb:       0.1,
		Seed:           seed,
	}
}

// prepare generates the KPI, applies the simulated operator's labeling pass
// and extracts all 133 features.
func prepare(p kpigen.Profile, o Options) (*kpiData, error) {
	d := kpigen.Generate(p, o.Seed)
	labels := operatorFor(p.Interval, o.Seed).Label(d.Labels)

	ds, err := detectors.Registry(p.Interval)
	if err != nil {
		return nil, err
	}
	feats, err := core.Extract(d.Series, ds, core.ExtractConfig{})
	if err != nil {
		return nil, err
	}
	ppw, err := d.Series.PointsPerWeek()
	if err != nil {
		return nil, err
	}
	ppd, err := d.Series.PointsPerDay()
	if err != nil {
		return nil, err
	}
	return &kpiData{
		dataset: d,
		series:  d.Series,
		labels:  labels,
		feats:   feats,
		ppw:     ppw,
		ppd:     ppd,
	}, nil
}

// prepareAll prepares the three case-study KPIs concurrently.
func prepareAll(o Options) ([]*kpiData, error) {
	profiles := kpigen.Profiles(o.Scale)
	out := make([]*kpiData, len(profiles))
	errs := make([]error, len(profiles))
	var wg sync.WaitGroup
	for i, p := range profiles {
		wg.Add(1)
		go func(i int, p kpigen.Profile) {
			defer wg.Done()
			out[i], errs[i] = prepare(p, o)
		}(i, p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Runner is an experiment entry point.
type Runner func(Options) ([]*Table, error)

// Meta describes a registered experiment.
type Meta struct {
	ID, Title string
	Run       Runner
}

// Registry lists every reproducible experiment in paper order.
func Registry() []Meta {
	return []Meta{
		{"T1", "Table 1: three kinds of KPI data", Table1},
		{"F1", "Fig 1: 1-week examples of the three KPIs", Fig1},
		{"T3", "Table 3: basic detectors and sampled parameters", Table3},
		{"F5", "Fig 5: decision tree example (SRT)", Fig5},
		{"F6", "Fig 6: PR curve and cThld selection metrics (PV)", Fig6},
		{"F7", "Fig 7: best cThld of each week", Fig7},
		{"F9", "Fig 9: AUCPR ranking — RF vs configurations vs combinations", Fig9},
		{"T4", "Table 4: maximum precision when recall >= 0.66", Table4},
		{"F10", "Fig 10: AUCPR of learners as features are added", Fig10},
		{"F11", "Fig 11: AUCPR of training-set policies", Fig11},
		{"F12", "Fig 12: offline comparison of cThld metrics", Fig12},
		{"F13", "Fig 13: online detection — EWMA vs 5-fold vs best case", Fig13},
		{"F14", "Fig 14: labeling time vs anomalous windows", Fig14},
		{"LAG", "Sec 5.8: detection lag and training time", Lag},
		{"XFER", "Sec 6 extension: detection across same-type KPIs", Transfer},
		{"FSEL", "Sec 4.4.1 future work: mRMR feature selection", FeatureSelection},
		{"PLUG", "Sec 8: plugging in emerging detectors", PlugIn},
		{"DIRTY", "Sec 6 extension: robustness to missing data", DirtyData},
		{"AblEWMA", "Ablation: EWMA smoothing constant for cThld prediction", AblationEWMA},
		{"AblPC", "Ablation: PC-Score incentive constant", AblationPC},
		{"AblPool", "Ablation: forest accuracy vs configuration-pool size", AblationPool},
		{"AblNoise", "Sec 4.2: robustness to operator labeling noise", LabelNoise},
		{"DRIFT", "Sec 3.2: novel anomaly types and incremental retraining", Drift},
		{"EVT", "EVT/POT dynamic cThld vs EWMA prediction (served path A/B)", EVTvsEWMA},
		{"ACTIVE", "Active learning: label cost of uncertainty queries vs full labeling", Active},
		{"IMP", "Forest feature importances per KPI (automated Fig 5)", Importance},
	}
}

// Find returns the experiment with the given id (case-insensitive).
func Find(id string) (Meta, bool) {
	for _, m := range Registry() {
		if strings.EqualFold(m.ID, id) {
			return m, true
		}
	}
	return Meta{}, false
}

// fmtF renders a float compactly for table cells.
func fmtF(v float64) string { return fmt.Sprintf("%.3f", v) }

// rankOf returns the 1-based rank of the named approach among scores sorted
// descending.
func rankOf(name string, names []string, scores []float64) int {
	type pair struct {
		name  string
		score float64
	}
	ps := make([]pair, len(names))
	for i := range names {
		ps[i] = pair{names[i], scores[i]}
	}
	sort.SliceStable(ps, func(a, b int) bool { return ps[a].score > ps[b].score })
	for i, p := range ps {
		if p.name == name {
			return i + 1
		}
	}
	return -1
}
