package experiments

import (
	"fmt"
	"sort"

	"opprentice/internal/combine"
	"opprentice/internal/core"
	"opprentice/internal/ml/bayes"
	"opprentice/internal/ml/forest"
	"opprentice/internal/ml/linear"
	"opprentice/internal/ml/tree"
	"opprentice/internal/stats"
)

// approachEval holds the anomaly scores of every detection approach over the
// test region (from the 9th week on), ready for AUCPR ranking and PR curves.
type approachEval struct {
	kpi        string
	names      []string             // all approach names, configs included
	aucs       []float64            // aligned with names
	scores     map[string][]float64 // per-approach test scores
	testLabels []bool
}

const (
	nameRF   = "random_forest"
	nameNorm = "normalization_schema"
	nameVote = "majority_vote"
)

// evaluateApproaches scores the random forest (incrementally retrained,
// I1), the two static combinations, and all 133 configurations over the test
// region, as §5.3.1 does.
func evaluateApproaches(k *kpiData, o Options) (*approachEval, error) {
	testLo := core.InitWeeks * k.ppw
	weeks := k.feats.NumPoints() / k.ppw
	testHi := weeks * k.ppw

	res, err := core.Run(k.feats, k.labels, k.ppw, core.Config{
		Preference:   o.Preference,
		Forest:       o.forestConfig(),
		SkipWeeklyCV: true,
	})
	if err != nil {
		return nil, err
	}
	ev := &approachEval{
		kpi:        k.series.Name,
		scores:     make(map[string][]float64),
		testLabels: []bool(k.labels[testLo:testHi]),
	}
	var rfScores []float64
	for _, w := range res.Weeks {
		rfScores = append(rfScores, w.Scores...)
	}
	ev.add(nameRF, rfScores)

	calib := k.feats.Imputed(0, testLo)
	test := k.feats.Imputed(testLo, testHi)
	ev.add(nameNorm, combine.NewNormalization(calib).ScoreAll(test))
	ev.add(nameVote, combine.NewMajorityVote(calib, combine.DefaultVoteQuantile).ScoreAll(test))

	for j, name := range k.feats.Names {
		ev.add(name, k.feats.Cols[j][testLo:testHi])
	}
	return ev, nil
}

func (ev *approachEval) add(name string, scores []float64) {
	ev.names = append(ev.names, name)
	ev.aucs = append(ev.aucs, stats.AUCPR(scores, ev.testLabels))
	ev.scores[name] = scores
}

// topConfigs returns the n basic-detector configurations with the highest
// AUCPR.
func (ev *approachEval) topConfigs(n int) []string {
	type pair struct {
		name string
		auc  float64
	}
	var ps []pair
	for i, name := range ev.names {
		if name == nameRF || name == nameNorm || name == nameVote {
			continue
		}
		ps = append(ps, pair{name, ev.aucs[i]})
	}
	sort.SliceStable(ps, func(a, b int) bool { return ps[a].auc > ps[b].auc })
	if n > len(ps) {
		n = len(ps)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = ps[i].name
	}
	return out
}

func (ev *approachEval) aucOf(name string) float64 {
	for i, n := range ev.names {
		if n == name {
			return ev.aucs[i]
		}
	}
	return 0
}

// Fig9 reproduces Fig. 9: for each KPI the AUCPR ranking of the random
// forest, the two static combination methods and the 133 configurations,
// plus the top-3 basic configurations.
func Fig9(o Options) ([]*Table, error) {
	o = o.withDefaults()
	kpis, err := prepareAll(o)
	if err != nil {
		return nil, err
	}
	var tables []*Table
	for _, k := range kpis {
		ev, err := evaluateApproaches(k, o)
		if err != nil {
			return nil, err
		}
		t := &Table{
			ID:      "F9",
			Title:   fmt.Sprintf("AUCPR ranking — KPI %s", ev.kpi),
			Columns: []string{"rank", "approach", "aucpr"},
		}
		rows := []string{nameRF, nameNorm, nameVote}
		rows = append(rows, ev.topConfigs(3)...)
		for _, name := range rows {
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d/%d", rankOf(name, ev.names, ev.aucs), len(ev.names)),
				name,
				fmtF(ev.aucOf(name)),
			})
		}
		t.Notes = "Paper shape: RF ranks 1st or 2nd on every KPI; both static combinations rank low; the top basic detector differs per KPI."
		tables = append(tables, t)
	}
	return tables, nil
}

// Table4 reproduces Table 4: the maximum precision achievable when recall ≥
// 0.66, per approach and KPI.
func Table4(o Options) ([]*Table, error) {
	o = o.withDefaults()
	kpis, err := prepareAll(o)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "T4",
		Title:   "Maximum precision when recall >= 0.66",
		Columns: []string{"approach", "pv", "sr", "srt"},
	}
	rowNames := []string{nameRF, nameNorm, nameVote, "1st basic detector", "2nd basic detector", "3rd basic detector"}
	cells := make(map[string][]string)
	for _, name := range rowNames {
		cells[name] = []string{name}
	}
	for _, k := range kpis {
		ev, err := evaluateApproaches(k, o)
		if err != nil {
			return nil, err
		}
		top := ev.topConfigs(3)
		get := func(name string) float64 {
			return maxPrecisionAtRecall(ev.scores[name], ev.testLabels, 0.66)
		}
		cells[nameRF] = append(cells[nameRF], fmt.Sprintf("%.2f", get(nameRF)))
		cells[nameNorm] = append(cells[nameNorm], fmt.Sprintf("%.2f", get(nameNorm)))
		cells[nameVote] = append(cells[nameVote], fmt.Sprintf("%.2f", get(nameVote)))
		for i := 0; i < 3; i++ {
			label := fmt.Sprintf("%d%s basic detector", i+1, ordinal(i+1))
			v := "-"
			if i < len(top) {
				v = fmt.Sprintf("%.2f (%s)", get(top[i]), top[i])
			}
			cells[label] = append(cells[label], v)
		}
	}
	for _, name := range rowNames {
		t.Rows = append(t.Rows, cells[name])
	}
	t.Notes = "Paper: RF precision 0.83/0.87/0.89 across PV/#SR/SRT; static combinations ≤ 0.32; best basic detector varies by KPI."
	return []*Table{t}, nil
}

func ordinal(n int) string {
	switch n {
	case 1:
		return "st"
	case 2:
		return "nd"
	case 3:
		return "rd"
	default:
		return "th"
	}
}

// maxPrecisionAtRecall returns the best precision among PR points whose
// recall meets the floor (0 when unreachable).
func maxPrecisionAtRecall(scores []float64, truth []bool, recallFloor float64) float64 {
	best := 0.0
	for _, pt := range stats.PRCurve(scores, truth) {
		if pt.Recall >= recallFloor && pt.Precision > best {
			best = pt.Precision
		}
	}
	return best
}

// learnerAUC trains one Fig-10 learner on train columns and returns its test
// AUCPR.
func learnerAUC(name string, trainCols, testCols [][]float64, trainLabels, testLabels []bool, o Options) float64 {
	switch name {
	case "decision_tree":
		b := tree.NewBinner(trainCols, tree.MaxBins)
		binned := b.Bin(trainCols)
		idx := make([]int, len(trainLabels))
		for i := range idx {
			idx[i] = i
		}
		tr := tree.Grow(binned, trainLabels, idx, tree.Config{})
		testBinned := b.Bin(testCols)
		scores := make([]float64, len(testLabels))
		for i := range scores {
			scores[i] = tr.ProbCols(testBinned, i)
		}
		return stats.AUCPR(scores, testLabels)
	case "naive_bayes":
		m := bayes.Train(trainCols, trainLabels)
		return stats.AUCPR(m.ScoreAll(testCols), testLabels)
	case "logistic_regression":
		m := linear.Train(trainCols, trainLabels, linear.Config{Kind: linear.Logistic, Seed: o.Seed})
		return stats.AUCPR(m.ScoreAll(testCols), testLabels)
	case "linear_svm":
		m := linear.Train(trainCols, trainLabels, linear.Config{Kind: linear.SVM, Seed: o.Seed})
		return stats.AUCPR(m.ScoreAll(testCols), testLabels)
	default: // random_forest
		f := forest.Train(trainCols, trainLabels, o.forestConfig())
		return stats.AUCPR(f.ProbAll(testCols), testLabels)
	}
}

// fig10Learners lists the compared algorithms in the paper's legend order.
func fig10Learners() []string {
	return []string{"decision_tree", "linear_svm", "logistic_regression", "naive_bayes", "random_forest"}
}

// Fig10 reproduces Fig. 10: AUCPR of five learning algorithms as features
// are added in mutual-information order; random forests should stay high
// while the others destabilize.
func Fig10(o Options) ([]*Table, error) {
	o = o.withDefaults()
	kpis, err := prepareAll(o)
	if err != nil {
		return nil, err
	}
	var tables []*Table
	for _, k := range kpis {
		trainHi := core.InitWeeks * k.ppw
		total := (k.feats.NumPoints() / k.ppw) * k.ppw
		trainCols := k.feats.Imputed(0, trainHi)
		testCols := k.feats.Imputed(trainHi, total)
		trainLabels := []bool(k.labels[:trainHi])
		testLabels := []bool(k.labels[trainHi:total])

		// Order features by mutual information with the training labels.
		type mi struct {
			j int
			v float64
		}
		mis := make([]mi, len(trainCols))
		for j, col := range trainCols {
			mis[j] = mi{j, stats.MutualInformation(col, trainLabels, 32)}
		}
		sort.SliceStable(mis, func(a, b int) bool { return mis[a].v > mis[b].v })

		t := &Table{
			ID:      "F10",
			Title:   fmt.Sprintf("AUCPR vs number of features (MI order) — KPI %s", k.series.Name),
			Columns: append([]string{"features"}, fig10Learners()...),
		}
		for _, nf := range []int{1, 5, 13, 33, 67, 100, 133} {
			if nf > len(mis) {
				nf = len(mis)
			}
			subTrain := make([][]float64, nf)
			subTest := make([][]float64, nf)
			for i := 0; i < nf; i++ {
				subTrain[i] = trainCols[mis[i].j]
				subTest[i] = testCols[mis[i].j]
			}
			row := []string{fmt.Sprintf("%d", nf)}
			for _, learner := range fig10Learners() {
				row = append(row, fmtF(learnerAUC(learner, subTrain, subTest, trainLabels, testLabels, o)))
			}
			t.Rows = append(t.Rows, row)
			if nf == len(mis) {
				break
			}
		}
		t.Notes = "Paper shape: random forests stay high and stable as irrelevant/redundant features are added; the other learners degrade or oscillate."
		tables = append(tables, t)
	}
	return tables, nil
}

// Fig11 reproduces Fig. 11: AUCPR of random forests under the three
// training-set policies F4, R4 and I4 over 4-week moving test sets.
func Fig11(o Options) ([]*Table, error) {
	o = o.withDefaults()
	kpis, err := prepareAll(o)
	if err != nil {
		return nil, err
	}
	var tables []*Table
	for _, k := range kpis {
		t := &Table{
			ID:      "F11",
			Title:   fmt.Sprintf("AUCPR of training sets — KPI %s", k.series.Name),
			Columns: []string{"test_window", "F4_first8w", "R4_recent8w", "I4_all_history"},
		}
		var byPolicy [3][]float64
		for i, p := range []core.Policy{core.F4, core.R4, core.I4} {
			aucs, err := core.RunPolicy(k.feats, k.labels, k.ppw, p, o.forestConfig())
			if err != nil {
				return nil, err
			}
			byPolicy[i] = aucs
		}
		var sums [3]float64
		for w := range byPolicy[0] {
			row := []string{fmt.Sprintf("%d", w+1)}
			for i := range byPolicy {
				row = append(row, fmtF(byPolicy[i][w]))
				sums[i] += byPolicy[i][w]
			}
			t.Rows = append(t.Rows, row)
		}
		if n := len(byPolicy[0]); n > 0 {
			t.Rows = append(t.Rows, []string{
				"mean",
				fmtF(sums[0] / float64(n)),
				fmtF(sums[1] / float64(n)),
				fmtF(sums[2] / float64(n)),
			})
		}
		t.Notes = "Paper shape: I4 (incremental retraining) matches or beats R4 and F4 in most windows."
		tables = append(tables, t)
	}
	return tables, nil
}
