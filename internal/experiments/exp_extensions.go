package experiments

import (
	"fmt"

	"opprentice/internal/core"
	"opprentice/internal/detectors"
	"opprentice/internal/kpigen"
	"opprentice/internal/ml/forest"
	"opprentice/internal/stats"
	"opprentice/internal/timeseries"
)

// Transfer evaluates the §6 extension "detection across the same types of
// KPIs": a classifier trained on one PV-like KPI detects on PVs of other
// scales (different ISPs), with and without feature normalization.
func Transfer(o Options) ([]*Table, error) {
	o = o.withDefaults()
	mk := func(base float64, seed int64) (*core.Features, timeseries.Labels, int, error) {
		p := kpigen.PV(o.Scale)
		p.Base = base
		d := kpigen.Generate(p, seed)
		labels := operatorFor(p.Interval, seed).Label(d.Labels)
		ds, err := detectors.Registry(p.Interval)
		if err != nil {
			return nil, nil, 0, err
		}
		f, err := core.Extract(d.Series, ds, core.ExtractConfig{})
		if err != nil {
			return nil, nil, 0, err
		}
		ppw, err := d.Series.PointsPerWeek()
		if err != nil {
			return nil, nil, 0, err
		}
		return f, labels, ppw, nil
	}
	srcF, srcLabels, ppw, err := mk(10000, o.Seed)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "XFER",
		Title: "Cross-KPI detection (train on PV @ base 10000, test on other PVs)",
		Columns: []string{"target_base", "aucpr_normalized", "aucpr_raw",
			"aucpr_self_trained"},
	}
	trainHi := core.InitWeeks * ppw
	srcScaler := core.NewFeatureScaler(srcF.Slice(0, trainHi), core.DefaultScaleQuantile)
	model := forest.Train(srcScaler.Apply(srcF.Slice(0, trainHi)), srcLabels[:trainHi], o.forestConfig())
	rawModel := forest.Train(srcF.Imputed(0, trainHi), srcLabels[:trainHi], o.forestConfig())

	for i, base := range []float64{10000, 1000, 200000} {
		dstF, dstLabels, _, err := mk(base, o.Seed+int64(i)+100)
		if err != nil {
			return nil, err
		}
		n := dstF.NumPoints()
		dstScaler := core.NewFeatureScaler(dstF.Slice(0, trainHi), core.DefaultScaleQuantile)
		testLabels := dstLabels[trainHi:n]

		aucNorm := stats.AUCPR(model.ProbAll(dstScaler.Apply(dstF.Slice(trainHi, n))), testLabels)
		aucRaw := stats.AUCPR(rawModel.ProbAll(dstF.Imputed(trainHi, n)), testLabels)
		self := forest.Train(dstF.Imputed(0, trainHi), dstLabels[:trainHi], o.forestConfig())
		aucSelf := stats.AUCPR(self.ProbAll(dstF.Imputed(trainHi, n)), testLabels)

		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.0f", base), fmtF(aucNorm), fmtF(aucRaw), fmtF(aucSelf),
		})
	}
	t.Notes = "§6 shape: with per-KPI feature normalization, one labeled KPI's classifier carries to same-type KPIs of very different scales, approaching self-trained accuracy; raw severities do not transfer."
	return []*Table{t}, nil
}

// DirtyData evaluates the §6 "dirty data" discussion: the MAD detector
// variants and the forest's many-detector redundancy keep detection usable
// when a fraction of points is missing (carried forward by collection).
func DirtyData(o Options) ([]*Table, error) {
	o = o.withDefaults()
	t := &Table{
		ID:      "DIRTY",
		Title:   "Missing data: detector robustness (PV)",
		Columns: []string{"missing_frac", "tsd_aucpr", "tsd_mad_aucpr", "forest_aucpr"},
	}
	for _, missing := range []float64{0, 0.02, 0.05, 0.10} {
		p := kpigen.PV(o.Scale)
		p.MissingRate = missing
		d := kpigen.Generate(p, o.Seed)
		labels := operatorFor(p.Interval, o.Seed).Label(d.Labels)
		ds, err := detectors.Registry(p.Interval)
		if err != nil {
			return nil, err
		}
		f, err := core.Extract(d.Series, ds, core.ExtractConfig{})
		if err != nil {
			return nil, err
		}
		ppw, err := d.Series.PointsPerWeek()
		if err != nil {
			return nil, err
		}
		trainHi := core.InitWeeks * ppw
		n := f.NumPoints()
		testLabels := labels[trainHi:n]

		tsd, err := f.ColumnByName("tsd(win=2w)")
		if err != nil {
			return nil, err
		}
		tsdMAD, err := f.ColumnByName("tsd_mad(win=2w)")
		if err != nil {
			return nil, err
		}
		model := forest.Train(f.Imputed(0, trainHi), labels[:trainHi], o.forestConfig())
		aucForest := stats.AUCPR(model.ProbAll(f.Imputed(trainHi, n)), testLabels)

		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.0f%%", 100*missing),
			fmtF(stats.AUCPR(tsd[trainHi:n], testLabels)),
			fmtF(stats.AUCPR(tsdMAD[trainHi:n], testLabels)),
			fmtF(aucForest),
		})
	}
	t.Notes = "§6 shape: MAD variants degrade more gracefully than their mean/std counterparts as dirt increases, and the forest, choosing among many detectors, degrades the least."
	return []*Table{t}, nil
}
