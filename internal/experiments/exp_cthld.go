package experiments

import (
	"fmt"
	"math"
	"strings"
	"time"

	"opprentice/internal/core"
	"opprentice/internal/detectors"
	"opprentice/internal/kpigen"
	"opprentice/internal/ml/forest"
	"opprentice/internal/ml/tree"
	"opprentice/internal/stats"
)

// Fig5 reproduces Fig. 5: a compacted decision tree learned from the SRT
// data set, printed as if-then rules over detector severities.
func Fig5(o Options) ([]*Table, error) {
	o = o.withDefaults()
	k, err := prepare(kpigen.SRT(o.Scale), o)
	if err != nil {
		return nil, err
	}
	trainHi := core.InitWeeks * k.ppw
	cols := k.feats.Imputed(0, trainHi)
	labels := []bool(k.labels[:trainHi])

	b := tree.NewBinner(cols, tree.MaxBins)
	binned := b.Bin(cols)
	idx := make([]int, len(labels))
	for i := range idx {
		idx[i] = i
	}
	tr := tree.Grow(binned, labels, idx, tree.Config{})

	var sb strings.Builder
	tr.Print(&sb, k.feats.Names, b, 3)
	return []*Table{{
		ID:    "F5",
		Title: "Decision tree learned from SRT (compacted to depth 3)",
		Notes: sb.String() + fmt.Sprintf("full tree: %d nodes, depth %d\n", tr.NumNodes(), tr.Depth()),
	}}, nil
}

// fig6Preferences are the two assumed preferences of Fig. 6.
func fig6Preferences() []stats.Preference {
	return []stats.Preference{
		{Recall: 0.75, Precision: 0.6},
		{Recall: 0.5, Precision: 0.9},
	}
}

// Fig6 reproduces Fig. 6: the PR curve of a random forest on PV and the
// operating points selected by the four cThld metrics under two assumed
// preferences.
func Fig6(o Options) ([]*Table, error) {
	o = o.withDefaults()
	k, err := prepare(kpigen.PV(o.Scale), o)
	if err != nil {
		return nil, err
	}
	trainHi := core.InitWeeks * k.ppw
	total := (k.feats.NumPoints() / k.ppw) * k.ppw
	model := forest.Train(k.feats.Imputed(0, trainHi), k.labels[:trainHi], o.forestConfig())
	scores := model.ProbAll(k.feats.Imputed(trainHi, total))
	truth := []bool(k.labels[trainHi:total])
	curve := stats.PRCurve(scores, truth)

	curveT := &Table{
		ID:      "F6",
		Title:   "PR curve of a random forest trained and tested on PV",
		Columns: []string{"cthld", "recall", "precision"},
	}
	step := len(curve)/20 + 1
	for i := 0; i < len(curve); i += step {
		pt := curve[i]
		curveT.Rows = append(curveT.Rows, []string{fmtF(pt.Threshold), fmtF(pt.Recall), fmtF(pt.Precision)})
	}

	selT := &Table{
		ID:      "F6",
		Title:   "cThld selections of the four accuracy metrics",
		Columns: []string{"preference", "metric", "cthld", "recall", "precision", "inside_box"},
	}
	for _, pref := range fig6Preferences() {
		prefName := fmt.Sprintf("r>=%.2f,p>=%.2f", pref.Recall, pref.Precision)
		for _, m := range core.Metrics() {
			pt := core.SelectCThld(scores, truth, m, pref)
			selT.Rows = append(selT.Rows, []string{
				prefName, m.String(), fmtF(pt.Threshold), fmtF(pt.Recall), fmtF(pt.Precision),
				fmt.Sprintf("%v", pref.Satisfied(pt.Recall, pt.Precision)),
			})
		}
	}
	selT.Notes = "Paper shape: only PC-Score adapts its point to the preference box; default/F-Score/SD(1,1) pick one fixed point each."
	return []*Table{curveT, selT}, nil
}

// Fig7 reproduces Fig. 7: the best cThld of each 1-week moving test set,
// showing that best cThlds vary across weeks but resemble their neighbors.
func Fig7(o Options) ([]*Table, error) {
	o = o.withDefaults()
	kpis, err := prepareAll(o)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "F7",
		Title:   "Best cThld of each week (test sets from the 9th week)",
		Columns: []string{"week", "pv", "sr", "srt"},
	}
	var series [3][]float64
	maxWeeks := 0
	for i, k := range kpis {
		res, err := core.Run(k.feats, k.labels, k.ppw, core.Config{
			Preference:   o.Preference,
			Forest:       o.forestConfig(),
			SkipWeeklyCV: true,
		})
		if err != nil {
			return nil, err
		}
		for _, w := range res.Weeks {
			// Weeks with no labeled anomalies have a degenerate best cThld
			// (flag nothing); mark them absent, as §5.5 notes anomalies are
			// rare in some weeks.
			if hasAnomaly(w.Truth) {
				series[i] = append(series[i], w.BestCThld)
			} else {
				series[i] = append(series[i], math.NaN())
			}
		}
		if len(series[i]) > maxWeeks {
			maxWeeks = len(series[i])
		}
	}
	for w := 0; w < maxWeeks; w++ {
		row := []string{fmt.Sprintf("%d", w+core.InitWeeks+1)}
		for i := 0; i < 3; i++ {
			if w < len(series[i]) && !math.IsNaN(series[i][w]) {
				row = append(row, fmtF(series[i][w]))
			} else {
				row = append(row, "-")
			}
		}
		t.Rows = append(t.Rows, row)
	}
	var notes strings.Builder
	names := []string{"pv", "sr", "srt"}
	for i, s := range series {
		nd, gd := neighborVsGlobalDeviation(s)
		fmt.Fprintf(&notes, "%s: mean |Δ neighbor| = %.3f vs mean |dev from global mean| = %.3f\n", names[i], nd, gd)
	}
	notes.WriteString("Paper shape: best cThlds differ across weeks but neighboring weeks are more similar than the global average — the case for EWMA prediction.")
	t.Notes = notes.String()
	return []*Table{t}, nil
}

// hasAnomaly reports whether any point is labeled anomalous.
func hasAnomaly(truth []bool) bool {
	for _, t := range truth {
		if t {
			return true
		}
	}
	return false
}

// neighborVsGlobalDeviation returns the mean absolute difference between
// consecutive present values and the mean absolute deviation from the global
// mean, skipping NaN entries (anomaly-free weeks).
func neighborVsGlobalDeviation(xs []float64) (neighbor, global float64) {
	present := make([]float64, 0, len(xs))
	for _, v := range xs {
		if !math.IsNaN(v) {
			present = append(present, v)
		}
	}
	if len(present) < 2 {
		return 0, 0
	}
	mean := 0.0
	for _, v := range present {
		mean += v
	}
	mean /= float64(len(present))
	for i, v := range present {
		global += math.Abs(v - mean)
		if i > 0 {
			neighbor += math.Abs(v - present[i-1])
		}
	}
	return neighbor / float64(len(present)-1), global / float64(len(present))
}

// fig12Preferences are the three operator preferences of Fig. 12.
func fig12Preferences() []struct {
	name string
	pref stats.Preference
} {
	return []struct {
		name string
		pref stats.Preference
	}{
		{"moderate(0.66,0.66)", stats.Preference{Recall: 0.66, Precision: 0.66}},
		{"precision(0.6,0.8)", stats.Preference{Recall: 0.6, Precision: 0.8}},
		{"recall(0.8,0.6)", stats.Preference{Recall: 0.8, Precision: 0.6}},
	}
}

// Fig12 reproduces Fig. 12: for each KPI and preference, the fraction of
// weeks whose (recall, precision) lands inside the (possibly scaled-up)
// preference box, per cThld-selection metric, in the offline/oracle setting.
func Fig12(o Options) ([]*Table, error) {
	o = o.withDefaults()
	kpis, err := prepareAll(o)
	if err != nil {
		return nil, err
	}
	ratios := []float64{1.0, 1.2, 1.4, 1.6, 1.8, 2.0}
	cols := []string{"kpi", "preference", "metric"}
	for _, r := range ratios {
		cols = append(cols, fmt.Sprintf("in_box@%.1fx", r))
	}
	t := &Table{
		ID:      "F12",
		Title:   "Offline cThld metrics: % of weeks inside the preference box",
		Columns: cols,
	}
	for _, k := range kpis {
		res, err := core.Run(k.feats, k.labels, k.ppw, core.Config{
			Preference:   o.Preference,
			Forest:       o.forestConfig(),
			SkipWeeklyCV: true,
		})
		if err != nil {
			return nil, err
		}
		for _, pp := range fig12Preferences() {
			for _, m := range core.Metrics() {
				pts := make([]stats.PRPoint, 0, len(res.Weeks))
				for _, w := range res.Weeks {
					pts = append(pts, core.SelectCThld(w.Scores, w.Truth, m, pp.pref))
				}
				row := []string{k.series.Name, pp.name, m.String()}
				for _, ratio := range ratios {
					scaled := pp.pref.Scale(ratio)
					in := 0
					for _, pt := range pts {
						if scaled.Satisfied(pt.Recall, pt.Precision) {
							in++
						}
					}
					row = append(row, fmt.Sprintf("%.0f%%", 100*float64(in)/float64(len(pts))))
				}
				t.Rows = append(t.Rows, row)
			}
		}
	}
	t.Notes = "Paper shape: PC-Score adapts to each preference and keeps the most weeks inside the box at every scaling ratio."
	return []*Table{t}, nil
}

// Fig13 reproduces Fig. 13: the online accuracy of Opprentice as a whole —
// EWMA-predicted cThlds against 5-fold cross-validation and the offline
// best case, on 4-week moving windows.
func Fig13(o Options) ([]*Table, error) {
	o = o.withDefaults()
	kpis, err := prepareAll(o)
	if err != nil {
		return nil, err
	}
	var tables []*Table
	for _, k := range kpis {
		res, err := core.Run(k.feats, k.labels, k.ppw, core.Config{
			Preference: o.Preference,
			Forest:     o.forestConfig(),
		})
		if err != nil {
			return nil, err
		}
		t := &Table{
			ID:    "F13",
			Title: fmt.Sprintf("Online detection (4-week moving windows) — KPI %s", k.series.Name),
			Columns: []string{"window", "best_recall", "best_precision",
				"ewma_recall", "ewma_precision", "cv5_recall", "cv5_precision"},
		}
		best := core.MovingWindows(res.Weeks, 4, func(w core.WeekResult) stats.Confusion { return w.Best })
		ewma := core.MovingWindows(res.Weeks, 4, func(w core.WeekResult) stats.Confusion { return w.EWMA })
		cv5 := core.MovingWindows(res.Weeks, 4, func(w core.WeekResult) stats.Confusion { return w.CV5 })
		var inBest, inEWMA, inCV5 int
		for i := range best {
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", best[i].ID),
				fmtF(best[i].Recall), fmtF(best[i].Precision),
				fmtF(ewma[i].Recall), fmtF(ewma[i].Precision),
				fmtF(cv5[i].Recall), fmtF(cv5[i].Precision),
			})
			if o.Preference.Satisfied(best[i].Recall, best[i].Precision) {
				inBest++
			}
			if o.Preference.Satisfied(ewma[i].Recall, ewma[i].Precision) {
				inEWMA++
			}
			if o.Preference.Satisfied(cv5[i].Recall, cv5[i].Precision) {
				inCV5++
			}
		}
		t.Notes = fmt.Sprintf(
			"windows inside preference box: best=%d/%d ewma=%d/%d cv5=%d/%d. Paper shape: EWMA lands more windows inside the box than 5-fold (PV +40%%, #SR +23%%, SRT +110%%).",
			inBest, len(best), inEWMA, len(ewma), inCV5, len(cv5))
		tables = append(tables, t)
	}
	return tables, nil
}

// Lag reproduces §5.8: feature-extraction time per point, classification
// time per point and training time per round, on this machine.
func Lag(o Options) ([]*Table, error) {
	o = o.withDefaults()
	p := kpigen.SRT(o.Scale) // coarse interval: cheapest full pipeline
	d := kpigen.Generate(p, o.Seed)
	reg, err := detectors.Registry(p.Interval)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	feats, err := core.Extract(d.Series, reg, core.ExtractConfig{})
	if err != nil {
		return nil, err
	}
	extract := time.Since(start)

	ppw, err := d.Series.PointsPerWeek()
	if err != nil {
		return nil, err
	}
	trainHi := core.InitWeeks * ppw
	start = time.Now()
	model := forest.Train(feats.Imputed(0, trainHi), d.Labels[:trainHi], o.forestConfig())
	trainTime := time.Since(start)

	test := feats.Imputed(trainHi, feats.NumPoints())
	start = time.Now()
	_ = model.ProbAll(test)
	classify := time.Since(start)

	nTest := feats.NumPoints() - trainHi
	t := &Table{
		ID:      "LAG",
		Title:   "Detection lag and training time (this machine)",
		Columns: []string{"stage", "total", "per_point"},
		Rows: [][]string{
			{"feature extraction (133 configs)", extract.String(),
				(extract / time.Duration(feats.NumPoints())).String()},
			{"classification", classify.String(),
				(classify / time.Duration(maxInt(nTest, 1))).String()},
			{"training (one round)", trainTime.String(), "-"},
		},
	}
	t.Notes = "Paper: 0.15 s/point extraction, <0.0001 s/point classification, <5 min/round training on a 2012 Xeon. The requirement is extraction+classification ≪ the data interval."
	return []*Table{t}, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
