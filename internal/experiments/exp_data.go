package experiments

import (
	"fmt"
	"strings"

	"opprentice/internal/detectors"
	"opprentice/internal/kpigen"
	"opprentice/internal/labelsim"
)

// Table1 reproduces Table 1: the basic profile of the three KPIs —
// interval, length, seasonality and dispersion (Cv) — measured on the
// synthetic data rather than asserted.
func Table1(o Options) ([]*Table, error) {
	o = o.withDefaults()
	t := &Table{
		ID:      "T1",
		Title:   "Three kinds of KPI data (measured on synthetic KPIs)",
		Columns: []string{"kpi", "interval(min)", "weeks", "seasonal_strength", "seasonality", "cv", "anomaly_frac"},
	}
	for _, p := range kpigen.Profiles(o.Scale) {
		d := kpigen.Generate(p, o.Seed)
		strength := kpigen.SeasonalStrength(d.Series)
		qual := "weak"
		switch {
		case strength >= 0.5:
			qual = "strong"
		case strength >= 0.2:
			qual = "moderate"
		}
		t.Rows = append(t.Rows, []string{
			p.Name,
			fmt.Sprintf("%d", int(p.Interval.Minutes())),
			fmt.Sprintf("%d", p.Weeks),
			fmtF(strength),
			qual,
			fmt.Sprintf("%.2f", d.Series.Cv()),
			fmtF(d.Labels.Fraction()),
		})
	}
	t.Notes = "Paper: PV strong seasonality Cv=0.48 (7.8% anomalous), #SR weak Cv=2.1 (2.8%), SRT moderate Cv=0.07 (7.4%)."
	return []*Table{t}, nil
}

// Fig1 reproduces Fig. 1: one-week examples of the three KPIs with anomalies
// marked.
func Fig1(o Options) ([]*Table, error) {
	o = o.withDefaults()
	var sb strings.Builder
	for _, p := range kpigen.Profiles(o.Scale) {
		d := kpigen.Generate(p, o.Seed)
		ppw, err := d.Series.PointsPerWeek()
		if err != nil {
			return nil, err
		}
		// Week 9 (the first detection week) if present, else the last week.
		w := 8
		if (w+1)*ppw > d.Series.Len() {
			w = d.Series.Len()/ppw - 1
		}
		lo, hi := w*ppw, (w+1)*ppw
		fmt.Fprintf(&sb, "--- %s (week %d) ---\n", p.Name, w+1)
		sb.WriteString(asciiPlot(d.Series.Values[lo:hi], d.Labels[lo:hi], 100, 12))
	}
	return []*Table{{
		ID:    "F1",
		Title: "1-week examples of three major KPIs (anomalies marked '#')",
		Notes: sb.String(),
	}}, nil
}

// Table3 reproduces Table 3: the detector inventory and its 133
// configurations, cross-checked against the live registry.
func Table3(o Options) ([]*Table, error) {
	o = o.withDefaults()
	t := &Table{
		ID:      "T3",
		Title:   "Basic detectors and sampled parameters",
		Columns: []string{"detector", "sampled parameters", "configurations"},
	}
	total := 0
	for _, spec := range detectors.Table3() {
		t.Rows = append(t.Rows, []string{spec.Detector, spec.Params, fmt.Sprintf("%d", spec.Configs)})
		total += spec.Configs
	}
	t.Rows = append(t.Rows, []string{"total: 14 basic detectors", "", fmt.Sprintf("%d", total)})

	// Cross-check against the registry the pipeline actually builds.
	reg, err := detectors.Registry(kpigen.SRT(o.Scale).Interval)
	if err != nil {
		return nil, err
	}
	t.Notes = fmt.Sprintf("Live registry builds %d configurations (want %d).", len(reg), detectors.NumConfigurations)
	return []*Table{t}, nil
}

// Fig14 reproduces Fig. 14: operators' labeling time against the number of
// anomalous windows per month of data, using the labeling-time model.
func Fig14(o Options) ([]*Table, error) {
	o = o.withDefaults()
	model := labelsim.DefaultTimeModel()
	t := &Table{
		ID:      "F14",
		Title:   "Labeling time vs anomalous windows per month",
		Columns: []string{"kpi", "month", "anomalous_windows", "labeling_minutes"},
	}
	totals := make(map[string]float64)
	for _, p := range kpigen.Profiles(o.Scale) {
		d := kpigen.Generate(p, o.Seed)
		op := labelsim.DefaultOperator()
		op.Seed = o.Seed
		labels := op.Label(d.Labels)
		ppw, err := d.Series.PointsPerWeek()
		if err != nil {
			return nil, err
		}
		for _, ms := range model.Months(labels, ppw) {
			t.Rows = append(t.Rows, []string{
				p.Name,
				fmt.Sprintf("%d", ms.Month),
				fmt.Sprintf("%d", ms.Windows),
				fmt.Sprintf("%.1f", ms.Minutes),
			})
		}
		totals[p.Name] = model.TotalMinutes(labels, ppw)
	}
	t.Notes = fmt.Sprintf(
		"Total labeling minutes: pv=%.0f sr=%.0f srt=%.0f. Paper: 16, 17, 6 minutes; every month under 6 minutes.",
		totals["pv"], totals["sr"], totals["srt"])
	return []*Table{t}, nil
}
