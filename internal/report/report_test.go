package report

import (
	"bytes"
	"strings"
	"testing"

	"opprentice/internal/experiments"
)

func TestHTMLRendersTablesAndSparks(t *testing.T) {
	tables := []*experiments.Table{
		{
			ID:      "F6",
			Title:   "PR curve",
			Columns: []string{"cthld", "recall", "precision"},
			Rows: [][]string{
				{"0.9", "0.2", "1.0"},
				{"0.5", "0.6", "0.8"},
				{"0.1", "0.9", "0.4"},
			},
			Notes: "a note with <angle brackets>",
		},
		{
			ID:      "T3",
			Title:   "inventory",
			Columns: []string{"detector", "configs"},
			Rows:    [][]string{{"ewma", "5"}, {"svd", "15"}},
		},
	}
	var buf bytes.Buffer
	if err := HTML(&buf, "Opprentice results", tables); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"<h1>Opprentice results</h1>",
		"F6: PR curve",
		"<svg",                   // sparkline for numeric columns
		"&lt;angle brackets&gt;", // notes are escaped
		"<td>ewma</td>",          // plain tables render
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	// The detector-name column must not grow a sparkline.
	if strings.Count(out, "<figure>") < 3 {
		t.Errorf("expected sparklines for the 3 numeric F6 columns, got %d figures",
			strings.Count(out, "<figure>"))
	}
}

func TestNumericColumnParsing(t *testing.T) {
	rows := [][]string{{"0.94 (tsd_mad)"}, {"57%"}, {"3/136"}, {"-"}, {""}}
	vals, ok := numericColumn(rows, 0)
	if !ok {
		t.Fatal("annotated numeric cells should parse")
	}
	want := []float64{0.94, 57, 3}
	if len(vals) != len(want) {
		t.Fatalf("vals = %v", vals)
	}
	for i := range want {
		if vals[i] != want[i] {
			t.Errorf("vals[%d] = %v, want %v", i, vals[i], want[i])
		}
	}
	if _, ok := numericColumn([][]string{{"abc"}}, 0); ok {
		t.Error("non-numeric column accepted")
	}
	if _, ok := numericColumn([][]string{{"1"}}, 3); ok {
		t.Error("missing column accepted")
	}
}

func TestSparklineDegenerate(t *testing.T) {
	svg := string(Sparkline([]float64{5, 5, 5}, 100, 30))
	if !strings.Contains(svg, "polyline") {
		t.Error("constant series should still render")
	}
	if Sparkline(nil, 100, 30) != "" {
		t.Error("empty input should render nothing")
	}
}

func TestHTMLOnRealExperiment(t *testing.T) {
	tabs, err := experiments.Table3(experiments.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := HTML(&buf, "T3", tabs); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Holt-Winters") {
		t.Error("real experiment content missing")
	}
}
