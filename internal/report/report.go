// Package report renders experiment results as a self-contained HTML page:
// every table becomes an HTML table with an inline SVG sparkline per numeric
// column, so the shapes the paper plots (PR curves, AUCPR series, weekly
// cThlds) are visible at a glance without external tooling.
package report

import (
	"fmt"
	"html/template"
	"io"
	"strconv"
	"strings"

	"opprentice/internal/experiments"
)

// HTML writes a standalone page for the given tables.
func HTML(w io.Writer, title string, tables []*experiments.Table) error {
	data := page{Title: title}
	for _, t := range tables {
		ht := htmlTable{ID: t.ID, Title: t.Title, Columns: t.Columns, Rows: t.Rows, Notes: t.Notes}
		for j := range t.Columns {
			if vals, ok := numericColumn(t.Rows, j); ok && len(vals) >= 3 {
				ht.Sparks = append(ht.Sparks, spark{
					Column: t.Columns[j],
					SVG:    Sparkline(vals, 260, 48),
				})
			}
		}
		data.Tables = append(data.Tables, ht)
	}
	return pageTemplate.Execute(w, data)
}

type page struct {
	Title  string
	Tables []htmlTable
}

type htmlTable struct {
	ID, Title string
	Columns   []string
	Rows      [][]string
	Notes     string
	Sparks    []spark
}

type spark struct {
	Column string
	SVG    template.HTML
}

// numericColumn extracts column j when every non-empty cell parses as a
// float (ignoring trailing annotations like "%" or "(name)").
func numericColumn(rows [][]string, j int) ([]float64, bool) {
	var vals []float64
	for _, row := range rows {
		if j >= len(row) {
			return nil, false
		}
		cell := strings.TrimSuffix(strings.TrimSpace(row[j]), "%")
		if i := strings.IndexByte(cell, ' '); i > 0 {
			cell = cell[:i]
		}
		if i := strings.IndexByte(cell, '/'); i > 0 {
			cell = cell[:i]
		}
		if cell == "" || cell == "-" {
			continue
		}
		v, err := strconv.ParseFloat(cell, 64)
		if err != nil {
			return nil, false
		}
		vals = append(vals, v)
	}
	return vals, len(vals) > 0
}

// Sparkline renders values as a self-contained SVG polyline, for embedding
// in reports and dashboards. It returns an empty fragment for empty input.
func Sparkline(vals []float64, width, height int) template.HTML {
	if len(vals) == 0 {
		return ""
	}
	return template.HTML(sparkline(vals, width, height))
}

// sparkline renders values as a simple SVG polyline.
func sparkline(vals []float64, width, height int) string {
	minV, maxV := vals[0], vals[0]
	for _, v := range vals {
		if v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
	}
	if maxV == minV {
		maxV = minV + 1
	}
	var pts strings.Builder
	for i, v := range vals {
		x := float64(i) / float64(max(len(vals)-1, 1)) * float64(width-4)
		y := (maxV - v) / (maxV - minV) * float64(height-4)
		fmt.Fprintf(&pts, "%.1f,%.1f ", x+2, y+2)
	}
	return fmt.Sprintf(
		`<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" role="img">`+
			`<polyline fill="none" stroke="#2962a8" stroke-width="1.5" points="%s"/>`+
			`<text x="2" y="10" font-size="9" fill="#777">%.3g..%.3g</text></svg>`,
		width, height, strings.TrimSpace(pts.String()), minV, maxV)
}

var pageTemplate = template.Must(template.New("page").Parse(`<!DOCTYPE html>
<html lang="en"><head><meta charset="utf-8"><title>{{.Title}}</title>
<style>
body { font: 14px/1.4 system-ui, sans-serif; margin: 2rem auto; max-width: 72rem; color: #222; }
h2 { border-bottom: 2px solid #2962a8; padding-bottom: .2rem; }
table { border-collapse: collapse; margin: .6rem 0; }
th, td { border: 1px solid #ccc; padding: .25rem .6rem; text-align: left; font-variant-numeric: tabular-nums; }
th { background: #f0f4fa; }
pre { background: #f7f7f7; padding: .6rem; overflow-x: auto; }
.sparks { display: flex; gap: 1.2rem; flex-wrap: wrap; margin: .4rem 0; }
.sparks figure { margin: 0; }
.sparks figcaption { font-size: 11px; color: #555; }
</style></head><body>
<h1>{{.Title}}</h1>
{{range .Tables}}
<h2>{{.ID}}: {{.Title}}</h2>
{{if .Sparks}}<div class="sparks">{{range .Sparks}}<figure>{{.SVG}}<figcaption>{{.Column}}</figcaption></figure>{{end}}</div>{{end}}
{{if .Columns}}<table><thead><tr>{{range .Columns}}<th>{{.}}</th>{{end}}</tr></thead>
<tbody>{{range .Rows}}<tr>{{range .}}<td>{{.}}</td>{{end}}</tr>{{end}}</tbody></table>{{end}}
{{if .Notes}}<pre>{{.Notes}}</pre>{{end}}
{{end}}
</body></html>
`))
