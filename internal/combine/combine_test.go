package combine

import (
	"math"
	"math/rand"
	"testing"

	"opprentice/internal/stats"
)

// makeConfigs builds severities for nGood accurate configurations (high on
// anomalies) and nBad useless ones (random), plus ground truth.
func makeConfigs(n, nGood, nBad int, rng *rand.Rand) (cols [][]float64, truth []bool) {
	truth = make([]bool, n)
	for i := range truth {
		truth[i] = rng.Intn(12) == 0
	}
	cols = make([][]float64, 0, nGood+nBad)
	for g := 0; g < nGood; g++ {
		col := make([]float64, n)
		for i := range col {
			if truth[i] {
				col[i] = 8 + rng.NormFloat64()
			} else {
				col[i] = math.Abs(rng.NormFloat64())
			}
		}
		cols = append(cols, col)
	}
	for b := 0; b < nBad; b++ {
		col := make([]float64, n)
		for i := range col {
			col[i] = math.Abs(rng.NormFloat64()) * 5
		}
		cols = append(cols, col)
	}
	return cols, truth
}

func TestNormalizationCombinesGoodConfigs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cols, truth := makeConfigs(3000, 5, 0, rng)
	n := NewNormalization(cols)
	scores := n.ScoreAll(cols)
	if auc := stats.AUCPR(scores, truth); auc < 0.9 {
		t.Errorf("all-good normalization AUCPR = %v, want ≥ 0.9", auc)
	}
}

// The paper's point: static combinations degrade when most configurations
// are inaccurate, because every configuration gets equal priority.
func TestStaticCombinationsDegradeWithBadConfigs(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	goodCols, truth := makeConfigs(3000, 5, 0, rng)
	mixed := append([][]float64{}, goodCols...)
	badCols, _ := makeConfigs(3000, 0, 60, rng)
	mixed = append(mixed, badCols...)

	aucGood := stats.AUCPR(NewNormalization(goodCols).ScoreAll(goodCols), truth)
	aucMixed := stats.AUCPR(NewNormalization(mixed).ScoreAll(mixed), truth)
	if aucMixed >= aucGood-0.1 {
		t.Errorf("normalization should degrade: good %v vs mixed %v", aucGood, aucMixed)
	}

	mvGood := stats.AUCPR(NewMajorityVote(goodCols, DefaultVoteQuantile).ScoreAll(goodCols), truth)
	mvMixed := stats.AUCPR(NewMajorityVote(mixed, DefaultVoteQuantile).ScoreAll(mixed), truth)
	if mvMixed >= mvGood-0.1 {
		t.Errorf("majority vote should degrade: good %v vs mixed %v", mvGood, mvMixed)
	}
}

func TestMajorityVoteScoresAreFractions(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cols, _ := makeConfigs(500, 3, 3, rng)
	m := NewMajorityVote(cols, 0.95)
	for i, s := range m.ScoreAll(cols) {
		if s < 0 || s > 1 {
			t.Fatalf("score[%d] = %v outside [0,1]", i, s)
		}
	}
}

func TestNormalizationScoresBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	calib, _ := makeConfigs(500, 2, 2, rng)
	n := NewNormalization(calib)
	// Score wilder data than the calibration range: clamping must hold.
	test, _ := makeConfigs(500, 2, 2, rng)
	for j := range test {
		for i := range test[j] {
			test[j][i] *= 100
		}
	}
	for i, s := range n.ScoreAll(test) {
		if s < 0 || s > 1 {
			t.Fatalf("score[%d] = %v outside [0,1]", i, s)
		}
	}
}

func TestCombineHandlesNaN(t *testing.T) {
	cols := [][]float64{{math.NaN(), 1, 2, 3}, {0, math.NaN(), 2, 9}}
	n := NewNormalization(cols)
	for _, s := range n.ScoreAll(cols) {
		if math.IsNaN(s) {
			t.Error("normalization leaked NaN")
		}
	}
	m := NewMajorityVote(cols, 0.9)
	for _, s := range m.ScoreAll(cols) {
		if math.IsNaN(s) {
			t.Error("majority vote leaked NaN")
		}
	}
}

func TestCombineConstantColumn(t *testing.T) {
	cols := [][]float64{{5, 5, 5, 5}}
	n := NewNormalization(cols)
	for _, s := range n.ScoreAll(cols) {
		if math.IsNaN(s) || s < 0 || s > 1 {
			t.Errorf("constant column score = %v", s)
		}
	}
}

func TestCombinePanics(t *testing.T) {
	n := NewNormalization([][]float64{{1, 2}})
	m := NewMajorityVote([][]float64{{1, 2}}, 0.9)
	cases := []func(){
		func() { n.ScoreAll([][]float64{{1}, {2}}) },
		func() { m.ScoreAll([][]float64{{1}, {2}}) },
		func() { NewMajorityVote(nil, 1.5) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: want panic", i)
				}
			}()
			fn()
		}()
	}
}
