// Package combine implements the two static detector-combination baselines
// Fig. 9 compares Opprentice against: the normalization schema of Shanbhag &
// Wolf [21] and the majority vote of MAWILab [8]. Both treat every
// configuration with the same priority — no training, no weighting — which
// is exactly why inaccurate configurations drag them down in the paper.
//
// Feature matrices are column-major: cols[j][i] is configuration j's
// severity for point i (NaN-free; warm-up points are imputed upstream).
package combine

import (
	"fmt"
	"math"

	"opprentice/internal/stats"
)

// Normalization combines configurations by min-max normalizing each one's
// severity over a calibration set and averaging: every configuration
// contributes equally regardless of its accuracy.
type Normalization struct {
	min, span []float64
}

// NewNormalization calibrates per-configuration ranges on column-major
// severities.
func NewNormalization(calib [][]float64) *Normalization {
	n := &Normalization{
		min:  make([]float64, len(calib)),
		span: make([]float64, len(calib)),
	}
	for j, col := range calib {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range col {
			if math.IsNaN(v) {
				continue
			}
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		if math.IsInf(lo, 1) { // empty or all-NaN column
			lo, hi = 0, 0
		}
		n.min[j] = lo
		span := hi - lo
		if span <= 0 {
			span = 1
		}
		n.span[j] = span
	}
	return n
}

// ScoreAll returns the combined score of every point: the mean of the
// normalized severities, clamped to [0, 1] per configuration.
func (n *Normalization) ScoreAll(cols [][]float64) []float64 {
	if len(cols) != len(n.min) {
		panic(fmt.Sprintf("combine: calibrated for %d configurations, got %d", len(n.min), len(cols)))
	}
	if len(cols) == 0 {
		return nil
	}
	out := make([]float64, len(cols[0]))
	for j, col := range cols {
		lo, span := n.min[j], n.span[j]
		for i, v := range col {
			if math.IsNaN(v) {
				continue
			}
			x := (v - lo) / span
			if x < 0 {
				x = 0
			} else if x > 1 {
				x = 1
			}
			out[i] += x
		}
	}
	inv := 1 / float64(len(cols))
	for i := range out {
		out[i] *= inv
	}
	return out
}

// MajorityVote combines configurations by equal-weight voting: each
// configuration votes "anomaly" when its severity exceeds its own
// calibration quantile, and the combined score is the fraction of votes.
type MajorityVote struct {
	thr []float64
}

// DefaultVoteQuantile is the per-configuration severity quantile above which
// a configuration casts an anomaly vote. Anomalies are rare, so the top 1 %
// of each configuration's severities is a natural default alarm region.
const DefaultVoteQuantile = 0.99

// NewMajorityVote calibrates per-configuration vote thresholds at the given
// severity quantile of the calibration set.
func NewMajorityVote(calib [][]float64, quantile float64) *MajorityVote {
	if quantile <= 0 || quantile >= 1 {
		panic(fmt.Sprintf("combine: vote quantile %v outside (0,1)", quantile))
	}
	m := &MajorityVote{thr: make([]float64, len(calib))}
	for j, col := range calib {
		finite := make([]float64, 0, len(col))
		for _, v := range col {
			if !math.IsNaN(v) {
				finite = append(finite, v)
			}
		}
		if len(finite) == 0 {
			m.thr[j] = math.Inf(1) // never votes
			continue
		}
		m.thr[j] = stats.Quantile(finite, quantile)
	}
	return m
}

// ScoreAll returns, for every point, the fraction of configurations voting
// anomaly. Sweeping a threshold over this fraction reproduces the
// majority-vote PR curve.
func (m *MajorityVote) ScoreAll(cols [][]float64) []float64 {
	if len(cols) != len(m.thr) {
		panic(fmt.Sprintf("combine: calibrated for %d configurations, got %d", len(m.thr), len(cols)))
	}
	if len(cols) == 0 {
		return nil
	}
	out := make([]float64, len(cols[0]))
	for j, col := range cols {
		thr := m.thr[j]
		for i, v := range col {
			if !math.IsNaN(v) && v > thr {
				out[i]++
			}
		}
	}
	inv := 1 / float64(len(cols))
	for i := range out {
		out[i] *= inv
	}
	return out
}
