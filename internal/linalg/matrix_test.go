package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func matFromRows(rows [][]float64) *Matrix {
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		for j, v := range r {
			m.Set(i, j, v)
		}
	}
	return m
}

func TestMatrixAtSet(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 || m.At(0, 0) != 0 {
		t.Error("At/Set broken")
	}
}

func TestNewMatrixPanicsNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	NewMatrix(-1, 2)
}

func TestSVDDiagonal(t *testing.T) {
	a := matFromRows([][]float64{{3, 0}, {0, 2}, {0, 0}})
	d, err := ComputeSVD(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.S[0]-3) > 1e-10 || math.Abs(d.S[1]-2) > 1e-10 {
		t.Errorf("S = %v, want [3 2]", d.S)
	}
}

func TestSVDRejectsWide(t *testing.T) {
	a := NewMatrix(2, 3)
	if _, err := ComputeSVD(a); err == nil {
		t.Error("wide matrix should be rejected")
	}
}

func TestSVDRankDeficient(t *testing.T) {
	// Second column is twice the first: rank 1.
	a := matFromRows([][]float64{{1, 2}, {2, 4}, {3, 6}})
	d, err := ComputeSVD(a)
	if err != nil {
		t.Fatal(err)
	}
	if d.S[1] > 1e-9 {
		t.Errorf("rank-1 matrix should have s2≈0, got %v", d.S)
	}
	rec := d.Reconstruct(1)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			if math.Abs(rec.At(i, j)-a.At(i, j)) > 1e-9 {
				t.Fatalf("rank-1 reconstruction mismatch at (%d,%d): %v vs %v",
					i, j, rec.At(i, j), a.At(i, j))
			}
		}
	}
}

// Property: the full-rank reconstruction reproduces A, U and V have
// orthonormal columns, and singular values are sorted non-increasing.
func TestSVDPropertiesQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 3 + rng.Intn(20)
		n := 1 + rng.Intn(min(m, 7))
		a := NewMatrix(m, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		d, err := ComputeSVD(a)
		if err != nil {
			return false
		}
		for i := 1; i < n; i++ {
			if d.S[i] > d.S[i-1]+1e-12 {
				return false
			}
		}
		// Orthonormal columns of U and V.
		for p := 0; p < n; p++ {
			for q := p; q < n; q++ {
				var du, dv float64
				for i := 0; i < m; i++ {
					du += d.U.At(i, p) * d.U.At(i, q)
				}
				for i := 0; i < n; i++ {
					dv += d.V.At(i, p) * d.V.At(i, q)
				}
				want := 0.0
				if p == q {
					want = 1
				}
				if math.Abs(du-want) > 1e-8 || math.Abs(dv-want) > 1e-8 {
					return false
				}
			}
		}
		rec := d.Reconstruct(n)
		for i := range a.Data {
			if math.Abs(rec.Data[i]-a.Data[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSVDFrobeniusOptimality(t *testing.T) {
	// The rank-1 truncation error must equal sqrt(sum of squared trailing
	// singular values) — Eckart–Young.
	rng := rand.New(rand.NewSource(11))
	a := NewMatrix(10, 4)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	d, err := ComputeSVD(a)
	if err != nil {
		t.Fatal(err)
	}
	rec := d.Reconstruct(1)
	var errSq float64
	for i := range a.Data {
		diff := a.Data[i] - rec.Data[i]
		errSq += diff * diff
	}
	var tail float64
	for _, s := range d.S[1:] {
		tail += s * s
	}
	if math.Abs(errSq-tail) > 1e-8 {
		t.Errorf("truncation error² = %v, want Σ tail s² = %v", errSq, tail)
	}
}

func TestSolveLinear(t *testing.T) {
	a := matFromRows([][]float64{{2, 1}, {1, 3}})
	x, err := SolveLinear(a, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-10 || math.Abs(x[1]-3) > 1e-10 {
		t.Errorf("x = %v, want [1 3]", x)
	}
}

func TestSolveLinearNeedsPivoting(t *testing.T) {
	a := matFromRows([][]float64{{0, 1}, {1, 0}})
	x, err := SolveLinear(a, []float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if x[0] != 3 || x[1] != 2 {
		t.Errorf("x = %v, want [3 2]", x)
	}
}

func TestSolveLinearSingular(t *testing.T) {
	a := matFromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := SolveLinear(a, []float64{1, 2}); err == nil {
		t.Error("singular system should error")
	}
}

func TestSolveLinearShapeError(t *testing.T) {
	if _, err := SolveLinear(NewMatrix(2, 3), []float64{1, 2}); err == nil {
		t.Error("non-square system should error")
	}
}

func TestSolveLinearRandomQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		a := NewMatrix(n, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		// Diagonal dominance guarantees solvability.
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n)+1)
		}
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		b := make([]float64, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				b[i] += a.At(i, j) * want[j]
			}
		}
		got, err := SolveLinear(a, b)
		if err != nil {
			return false
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
