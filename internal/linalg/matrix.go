// Package linalg provides the small dense linear-algebra kernel needed by
// the SVD basic detector (one-sided Jacobi singular value decomposition and
// low-rank reconstruction) and by the ARIMA fitter (a linear system solver).
// Matrices here are small — tens of rows and a handful of columns — so
// clarity wins over blocking or SIMD tricks.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix returns a zeroed rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: negative dimension %d×%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// SVD is a thin singular value decomposition A = U diag(S) Vᵀ with
// U (m×n), S (n), V (n×n), for m ≥ n. Singular values are in
// non-increasing order.
type SVD struct {
	U *Matrix
	S []float64
	V *Matrix
}

// ErrShape is returned when a decomposition's shape precondition fails.
var ErrShape = errors.New("linalg: need rows >= cols for thin SVD")

// ComputeSVD computes the thin SVD of a (rows ≥ cols) via one-sided Jacobi
// rotations: columns of a working copy are orthogonalized pairwise until all
// pairwise inner products are negligible. It is numerically robust and,
// for the ≤50×7 matrices the SVD detector builds, plenty fast.
func ComputeSVD(a *Matrix) (*SVD, error) {
	m, n := a.Rows, a.Cols
	if m < n {
		return nil, ErrShape
	}
	w := a.Clone() // columns become u_k * s_k
	v := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		v.Set(i, i, 1)
	}
	const (
		eps      = 1e-12
		maxSweep = 60
	)
	for sweep := 0; sweep < maxSweep; sweep++ {
		off := 0.0
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				// Gram entries of columns p and q.
				var alpha, beta, gamma float64
				for i := 0; i < m; i++ {
					xp, xq := w.At(i, p), w.At(i, q)
					alpha += xp * xp
					beta += xq * xq
					gamma += xp * xq
				}
				if math.Abs(gamma) <= eps*math.Sqrt(alpha*beta) || gamma == 0 {
					continue
				}
				off += math.Abs(gamma)
				// Jacobi rotation zeroing the (p,q) Gram entry.
				zeta := (beta - alpha) / (2 * gamma)
				t := math.Copysign(1, zeta) / (math.Abs(zeta) + math.Sqrt(1+zeta*zeta))
				c := 1 / math.Sqrt(1+t*t)
				s := c * t
				for i := 0; i < m; i++ {
					xp, xq := w.At(i, p), w.At(i, q)
					w.Set(i, p, c*xp-s*xq)
					w.Set(i, q, s*xp+c*xq)
				}
				for i := 0; i < n; i++ {
					vp, vq := v.At(i, p), v.At(i, q)
					v.Set(i, p, c*vp-s*vq)
					v.Set(i, q, s*vp+c*vq)
				}
			}
		}
		if off == 0 {
			break
		}
	}
	// Extract singular values and normalize U's columns.
	s := make([]float64, n)
	u := NewMatrix(m, n)
	for j := 0; j < n; j++ {
		norm := 0.0
		for i := 0; i < m; i++ {
			norm += w.At(i, j) * w.At(i, j)
		}
		norm = math.Sqrt(norm)
		s[j] = norm
		if norm > 0 {
			for i := 0; i < m; i++ {
				u.Set(i, j, w.At(i, j)/norm)
			}
		}
	}
	// Sort by decreasing singular value (selection sort; n is tiny).
	for i := 0; i < n-1; i++ {
		maxJ := i
		for j := i + 1; j < n; j++ {
			if s[j] > s[maxJ] {
				maxJ = j
			}
		}
		if maxJ != i {
			s[i], s[maxJ] = s[maxJ], s[i]
			swapCols(u, i, maxJ)
			swapCols(v, i, maxJ)
		}
	}
	return &SVD{U: u, S: s, V: v}, nil
}

func swapCols(m *Matrix, a, b int) {
	for i := 0; i < m.Rows; i++ {
		va, vb := m.At(i, a), m.At(i, b)
		m.Set(i, a, vb)
		m.Set(i, b, va)
	}
}

// Reconstruct returns the rank-k approximation U_k diag(S_k) V_kᵀ.
func (d *SVD) Reconstruct(k int) *Matrix {
	m, n := d.U.Rows, d.V.Rows
	if k > len(d.S) {
		k = len(d.S)
	}
	out := NewMatrix(m, n)
	for r := 0; r < k; r++ {
		sr := d.S[r]
		for i := 0; i < m; i++ {
			ui := d.U.At(i, r) * sr
			for j := 0; j < n; j++ {
				out.Data[i*n+j] += ui * d.V.At(j, r)
			}
		}
	}
	return out
}

// SolveLinear solves the n×n system A x = b by Gaussian elimination with
// partial pivoting, overwriting neither input. It returns an error when the
// system is singular to working precision.
func SolveLinear(a *Matrix, b []float64) ([]float64, error) {
	n := a.Rows
	if a.Cols != n || len(b) != n {
		return nil, fmt.Errorf("linalg: SolveLinear needs square system, got %d×%d with %d rhs", a.Rows, a.Cols, len(b))
	}
	aug := a.Clone()
	x := append([]float64(nil), b...)
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(aug.At(r, col)) > math.Abs(aug.At(pivot, col)) {
				pivot = r
			}
		}
		if math.Abs(aug.At(pivot, col)) < 1e-12 {
			return nil, errors.New("linalg: singular system")
		}
		if pivot != col {
			for j := 0; j < n; j++ {
				pj, cj := aug.At(pivot, j), aug.At(col, j)
				aug.Set(pivot, j, cj)
				aug.Set(col, j, pj)
			}
			x[pivot], x[col] = x[col], x[pivot]
		}
		inv := 1 / aug.At(col, col)
		for r := col + 1; r < n; r++ {
			f := aug.At(r, col) * inv
			if f == 0 {
				continue
			}
			for j := col; j < n; j++ {
				aug.Set(r, j, aug.At(r, j)-f*aug.At(col, j))
			}
			x[r] -= f * x[col]
		}
	}
	for col := n - 1; col >= 0; col-- {
		sum := x[col]
		for j := col + 1; j < n; j++ {
			sum -= aug.At(col, j) * x[j]
		}
		x[col] = sum / aug.At(col, col)
	}
	return x, nil
}
