// Package faultinject is the repo's shared fault-injection harness: small,
// deterministic wrappers that make dependencies misbehave on purpose —
// notifiers that fail N times / panic / block, detectors that panic, and
// WAL mutators that truncate or corrupt log files on disk. The fault-
// tolerance layer (core detector sandboxing, the alerting.Pipeline,
// tsdb checksums + quarantine, service restore/shutdown) is exercised with
// these from each package's tests; future chaos tests should build on this
// package instead of re-inventing ad-hoc fakes.
package faultinject

import (
	"context"
	"fmt"
	"os"
	"sync"

	"opprentice/internal/alerting"
)

// FlakyNotifier fails the first FailFirst Notify calls and succeeds
// afterwards, recording everything. It is safe for concurrent use.
type FlakyNotifier struct {
	// FailFirst is how many leading attempts fail.
	FailFirst int
	// Err is the failure returned while failing (default a generic error).
	Err error

	mu        sync.Mutex
	attempts  int
	delivered []alerting.Event
}

// Notify implements alerting.Notifier.
func (n *FlakyNotifier) Notify(_ context.Context, e alerting.Event) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.attempts++
	if n.attempts <= n.FailFirst {
		if n.Err != nil {
			return n.Err
		}
		return fmt.Errorf("faultinject: flaky notifier failing attempt %d/%d", n.attempts, n.FailFirst)
	}
	n.delivered = append(n.delivered, e)
	return nil
}

// Attempts returns how many Notify calls were made.
func (n *FlakyNotifier) Attempts() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.attempts
}

// Delivered returns a copy of the successfully delivered events.
func (n *FlakyNotifier) Delivered() []alerting.Event {
	n.mu.Lock()
	defer n.mu.Unlock()
	return append([]alerting.Event(nil), n.delivered...)
}

// FailingNotifier always fails with Err (or a default error).
type FailingNotifier struct {
	Err error

	mu       sync.Mutex
	attempts int
}

// Notify implements alerting.Notifier.
func (n *FailingNotifier) Notify(context.Context, alerting.Event) error {
	n.mu.Lock()
	n.attempts++
	n.mu.Unlock()
	if n.Err != nil {
		return n.Err
	}
	return fmt.Errorf("faultinject: notifier permanently down")
}

// Attempts returns how many Notify calls were made.
func (n *FailingNotifier) Attempts() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.attempts
}

// PanickingNotifier panics on every Notify — the rudest possible dependency.
type PanickingNotifier struct {
	// Message is the panic value (default "faultinject: notifier panic").
	Message string
}

// Notify implements alerting.Notifier by panicking.
func (n PanickingNotifier) Notify(context.Context, alerting.Event) error {
	msg := n.Message
	if msg == "" {
		msg = "faultinject: notifier panic"
	}
	panic(msg)
}

// BlockingNotifier blocks every Notify until Release is closed (or the
// context is canceled), simulating a hung webhook endpoint.
type BlockingNotifier struct {
	// Release unblocks all in-flight and future calls when closed.
	Release chan struct{}

	started chan struct{}

	mu      sync.Mutex
	blocked int
}

// NewBlockingNotifier returns a notifier whose deliveries hang until
// Unblock.
func NewBlockingNotifier() *BlockingNotifier {
	return &BlockingNotifier{
		Release: make(chan struct{}),
		started: make(chan struct{}, 64),
	}
}

// Notify implements alerting.Notifier.
func (n *BlockingNotifier) Notify(ctx context.Context, _ alerting.Event) error {
	n.mu.Lock()
	n.blocked++
	n.mu.Unlock()
	select {
	case n.started <- struct{}{}:
	default:
	}
	select {
	case <-n.Release:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Started yields one receive per Notify call as it begins blocking, so tests
// can wait for "the worker is stuck inside delivery" without polling.
func (n *BlockingNotifier) Started() <-chan struct{} { return n.started }

// Blocked returns how many Notify calls have started (including finished
// ones).
func (n *BlockingNotifier) Blocked() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.blocked
}

// Unblock releases all current and future deliveries.
func (n *BlockingNotifier) Unblock() { close(n.Release) }

// PanickingDetector implements detectors.Detector and panics on Step after
// PanicAfter successful calls (0 = panic on the very first Step). Reset does
// not clear the call count, so a panicking configuration stays panicky
// across extraction rounds — like a real buggy detector would.
type PanickingDetector struct {
	// ConfigName is returned by Name (default "faulty(panic)").
	ConfigName string
	// PanicAfter is how many Steps succeed before panicking.
	PanicAfter int

	calls int
}

// Name implements detectors.Detector.
func (d *PanickingDetector) Name() string {
	if d.ConfigName == "" {
		return "faulty(panic)"
	}
	return d.ConfigName
}

// Step implements detectors.Detector; it panics once the call budget is
// exhausted.
func (d *PanickingDetector) Step(float64) (float64, bool) {
	d.calls++
	if d.calls > d.PanicAfter {
		panic(fmt.Sprintf("faultinject: detector %s panicking on call %d", d.Name(), d.calls))
	}
	return 0, true
}

// Reset implements detectors.Detector.
func (d *PanickingDetector) Reset() {}

// WAL / file mutators. These operate on paths, not tsdb types, so they work
// on any log-structured file.

// TruncateTail removes the last n bytes of the file (simulating a crash
// mid-write).
func TruncateTail(path string, n int64) error {
	info, err := os.Stat(path)
	if err != nil {
		return err
	}
	size := info.Size() - n
	if size < 0 {
		size = 0
	}
	return os.Truncate(path, size)
}

// FlipByte XOR-flips the byte at offset (negative = from the end), the
// classic single-bit-rot fault.
func FlipByte(path string, offset int64) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	if offset < 0 {
		info, err := f.Stat()
		if err != nil {
			return err
		}
		offset += info.Size()
	}
	b := make([]byte, 1)
	if _, err := f.ReadAt(b, offset); err != nil {
		return err
	}
	b[0] ^= 0xFF
	_, err = f.WriteAt(b, offset)
	return err
}

// CorruptLine XOR-flips a byte in the payload of 1-based line lineNo,
// leaving the line count intact — a targeted mid-log corruption.
func CorruptLine(path string, lineNo int) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	line := 1
	for i, c := range data {
		if line == lineNo && c != '\n' && c != '{' && c != '"' {
			// Flip a benign-looking byte inside the target line; avoiding
			// the structural characters keeps the mutation subtle, which is
			// exactly what a checksum must still catch.
			data[i] ^= 0x01
			return os.WriteFile(path, data, 0o644)
		}
		if c == '\n' {
			line++
			if line > lineNo {
				break
			}
		}
	}
	return fmt.Errorf("faultinject: %s has no corruptible byte on line %d", path, lineNo)
}

// AppendGarbage appends raw bytes (default: a plausible-but-broken record)
// to the file.
func AppendGarbage(path string, garbage []byte) error {
	if garbage == nil {
		garbage = []byte("deadbeef {\"kind\":\"points\",\"values\":[1.0,2\n")
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.Write(garbage)
	return err
}

// StallGate is a reusable block-until-released gate for simulating hung
// dependencies (a disk that stops completing writes, a trainer that never
// returns). Arm blocks every subsequent Wait until Release; a disarmed gate
// costs one mutex acquisition and never blocks. Arm/Release are idempotent
// and the gate can be re-armed after a release.
type StallGate struct {
	mu   sync.Mutex
	gate chan struct{} // non-nil while armed; closed on release
}

// Arm makes Wait block until the next Release.
func (g *StallGate) Arm() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.gate == nil {
		g.gate = make(chan struct{})
	}
}

// Release unblocks every current and future Wait until the next Arm.
func (g *StallGate) Release() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.gate != nil {
		close(g.gate)
		g.gate = nil
	}
}

// Armed reports whether Wait would currently block.
func (g *StallGate) Armed() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.gate != nil
}

// Wait blocks while the gate is armed.
func (g *StallGate) Wait() {
	g.mu.Lock()
	ch := g.gate
	g.mu.Unlock()
	if ch != nil {
		<-ch
	}
}

// StallingDetector implements detectors.Detector by blocking on a StallGate
// at every Step: while the gate is armed, any training round extracting with
// this configuration hangs exactly like a wedged native detector would.
// Disarmed it contributes a constant feature and costs nothing.
type StallingDetector struct {
	// ConfigName is returned by Name (default "faulty(stall)").
	ConfigName string
	// Gate controls the blocking; a nil gate never blocks.
	Gate *StallGate
}

// Name implements detectors.Detector.
func (d *StallingDetector) Name() string {
	if d.ConfigName == "" {
		return "faulty(stall)"
	}
	return d.ConfigName
}

// Step implements detectors.Detector, blocking while the gate is armed.
func (d *StallingDetector) Step(float64) (float64, bool) {
	if d.Gate != nil {
		d.Gate.Wait()
	}
	return 0, true
}

// Reset implements detectors.Detector.
func (d *StallingDetector) Reset() {}
