package tsdb

import (
	"math"
	"math/bits"
)

// Gorilla-style XOR compression for float64 streams (Facebook's in-memory
// TSDB paper, §4.1.2): the first value is stored raw, every later value as
// the XOR with its predecessor — a zero XOR costs one bit, a repeat of the
// previous leading/trailing-zero window costs two bits plus the meaningful
// bits, and a new window costs 13 control bits. Monitoring KPIs are smooth,
// so the meaningful window is usually a fraction of the mantissa and the
// stream lands at a few bits per point.
//
// The chain state (previous value, previous window) persists across frames:
// a one-point append of an existing series costs only its XOR bits, not a
// raw 8-byte restart. Decoders therefore replay a series' frames strictly in
// order, and the appender rebuilds the chain from disk before its first
// post-reopen write to a series.

// xorChain is the shared encoder/decoder state between consecutive values
// of one series.
type xorChain struct {
	started  bool
	value    uint64 // bits of the previous value
	leading  uint8
	trailing uint8
	window   bool // leading/trailing hold a valid window
}

// bitWriter appends bits to a byte slice, MSB first.
type bitWriter struct {
	buf  []byte
	acc  uint64
	nacc uint8 // bits currently buffered in acc
}

func (w *bitWriter) writeBits(v uint64, n uint8) {
	if n == 0 {
		return
	}
	v &= (^uint64(0)) >> (64 - n)
	for n+w.nacc >= 8 {
		take := 8 - w.nacc
		w.acc = w.acc<<take | v>>(n-take)
		w.buf = append(w.buf, byte(w.acc))
		w.acc, w.nacc = 0, 0
		n -= take
		if n == 0 {
			return
		}
		v &= (^uint64(0)) >> (64 - n)
	}
	w.acc = w.acc<<n | v
	w.nacc += n
}

func (w *bitWriter) writeBit(b uint64) { w.writeBits(b, 1) }

// flush pads the tail with zero bits to a byte boundary.
func (w *bitWriter) flush() []byte {
	if w.nacc > 0 {
		w.buf = append(w.buf, byte(w.acc<<(8-w.nacc)))
		w.acc, w.nacc = 0, 0
	}
	return w.buf
}

// bitReader consumes bits from a byte slice, MSB first.
type bitReader struct {
	buf  []byte
	pos  int
	bit  uint8
	fail bool
}

func (r *bitReader) readBits(n uint8) uint64 {
	var v uint64
	for i := uint8(0); i < n; i++ {
		if r.pos >= len(r.buf) {
			r.fail = true
			return 0
		}
		v = v<<1 | uint64(r.buf[r.pos]>>(7-r.bit))&1
		if r.bit++; r.bit == 8 {
			r.bit, r.pos = 0, r.pos+1
		}
	}
	return v
}

// xorWrite appends one value to the stream, updating the chain.
func xorWrite(w *bitWriter, c *xorChain, v float64) {
	b := math.Float64bits(v)
	if !c.started {
		c.started = true
		c.value = b
		w.writeBits(b, 64)
		return
	}
	x := b ^ c.value
	c.value = b
	if x == 0 {
		w.writeBit(0)
		return
	}
	w.writeBit(1)
	lead := uint8(bits.LeadingZeros64(x))
	if lead > 31 {
		lead = 31 // 5-bit field; a narrower window is still correct
	}
	trail := uint8(bits.TrailingZeros64(x))
	if c.window && lead >= c.leading && trail >= c.trailing {
		w.writeBit(0)
		w.writeBits(x>>c.trailing, 64-c.leading-c.trailing)
		return
	}
	c.leading, c.trailing, c.window = lead, trail, true
	sig := 64 - lead - trail
	w.writeBit(1)
	w.writeBits(uint64(lead), 5)
	w.writeBits(uint64(sig-1), 6) // 1..64 meaningful bits, stored as 0..63
	w.writeBits(x>>trail, sig)
}

// xorRead decodes one value from the stream. ok=false means the stream ran
// out of bits (corruption or a short frame).
func xorRead(r *bitReader, c *xorChain) (float64, bool) {
	if !c.started {
		b := r.readBits(64)
		if r.fail {
			return 0, false
		}
		c.started = true
		c.value = b
		return math.Float64frombits(b), true
	}
	if r.readBits(1) == 0 {
		if r.fail {
			return 0, false
		}
		return math.Float64frombits(c.value), true
	}
	if r.readBits(1) == 1 {
		lead := uint8(r.readBits(5))
		sig := uint8(r.readBits(6)) + 1
		if r.fail || lead+sig > 64 {
			r.fail = true
			return 0, false
		}
		c.leading, c.trailing, c.window = lead, 64-lead-sig, true
	} else if !c.window {
		r.fail = true // reused-window op before any window was defined
		return 0, false
	}
	x := r.readBits(64-c.leading-c.trailing) << c.trailing
	if r.fail {
		return 0, false
	}
	c.value ^= x
	return math.Float64frombits(c.value), true
}
