package tsdb

import (
	"testing"
)

func TestTypedLabelRoundTrip(t *testing.T) {
	s := openTemp(t)
	if err := s.CreateSeries(meta); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendPoints(ctx, "pv", []float64{1, 2, 3, 4, 5}); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendTypedLabel(ctx, "pv", 1, 3, true, 2); err != nil {
		t.Fatal(err)
	}
	got, err := s.Load("pv")
	if err != nil {
		t.Fatal(err)
	}
	wantLabels := []bool{false, true, true, false, false}
	wantTypes := []uint8{0, 2, 2, 0, 0}
	if len(got.Types) != len(got.Values) {
		t.Fatalf("types len = %d, want %d", len(got.Types), len(got.Values))
	}
	for i := range wantTypes {
		if got.Labels[i] != wantLabels[i] || got.Types[i] != wantTypes[i] {
			t.Fatalf("replay = %v / %v", got.Labels, got.Types)
		}
	}
	// Points appended after the typed label keep the channels parallel.
	if err := s.AppendPoints(ctx, "pv", []float64{6}); err != nil {
		t.Fatal(err)
	}
	got, err = s.Load("pv")
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Types) != 6 || got.Types[5] != 0 {
		t.Fatalf("types after late append = %v", got.Types)
	}
}

// TestTypedLabelUndoClearsClass: un-labeling a typed range — through either
// the plain or the typed op — zeroes the class channel so Labels and Types
// can never disagree about anomalousness.
func TestTypedLabelUndoClearsClass(t *testing.T) {
	s := openTemp(t)
	if err := s.CreateSeries(meta); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendPoints(ctx, "pv", []float64{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendTypedLabel(ctx, "pv", 0, 4, true, 3); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendLabel(ctx, "pv", 0, 2, false); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendTypedLabel(ctx, "pv", 2, 3, false, 5); err != nil {
		t.Fatal(err)
	}
	got, err := s.Load("pv")
	if err != nil {
		t.Fatal(err)
	}
	wantTypes := []uint8{0, 0, 0, 3}
	for i, want := range wantTypes {
		if got.Types[i] != want {
			t.Fatalf("types = %v, want %v", got.Types, wantTypes)
		}
		if got.Labels[i] != (want != 0) {
			t.Fatalf("labels = %v disagree with types %v", got.Labels, got.Types)
		}
	}
}

// TestUntypedLogLoadsNilTypes: a log written without typed labels — the
// pre-typed format — replays with Types nil, not an all-zero slice, so
// callers can tell "never typed" from "typed none".
func TestUntypedLogLoadsNilTypes(t *testing.T) {
	s := openTemp(t)
	if err := s.CreateSeries(meta); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendPoints(ctx, "pv", []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendLabel(ctx, "pv", 0, 2, true); err != nil {
		t.Fatal(err)
	}
	got, err := s.Load("pv")
	if err != nil {
		t.Fatal(err)
	}
	if got.Types != nil {
		t.Fatalf("untyped log loaded Types = %v, want nil", got.Types)
	}
}

func TestTypedLabelSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CreateSeries(meta); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendPoints(ctx, "pv", []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendTypedLabel(ctx, "pv", 0, 1, true, 4); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s, err = Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	got, err := s.Load("pv")
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Types) != 3 || got.Types[0] != 4 || got.Types[1] != 0 {
		t.Fatalf("types after reopen = %v", got.Types)
	}
}

// TestMetaV2RoundTrip: a series with non-default predictor config persists
// it through the opMetaV2 record and a reopen; a default-config series
// keeps writing the original opMeta byte stream.
func TestMetaV2RoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	evt := meta
	evt.Name = "evt"
	evt.Predictor = 1
	evt.EVTQ = 0.02
	if err := s.CreateSeries(evt); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateSeries(meta); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s, err = Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	got, err := s.Load("evt")
	if err != nil {
		t.Fatal(err)
	}
	if got.Meta != evt {
		t.Fatalf("metaV2 = %+v, want %+v", got.Meta, evt)
	}
	plain, err := s.Load("pv")
	if err != nil {
		t.Fatal(err)
	}
	if plain.Meta.Predictor != 0 || plain.Meta.EVTQ != 0 {
		t.Fatalf("default meta grew predictor config: %+v", plain.Meta)
	}
}

func TestTypedLabelValidation(t *testing.T) {
	s := openTemp(t)
	if err := s.AppendTypedLabel(ctx, "pv", 3, 3, true, 1); err == nil {
		t.Fatal("empty range accepted")
	}
	if err := s.AppendTypedLabel(ctx, "pv", -1, 2, true, 1); err == nil {
		t.Fatal("negative start accepted")
	}
	if err := s.AppendTypedLabel(ctx, "../evil", 0, 1, true, 1); err == nil {
		t.Fatal("invalid name accepted")
	}
}
