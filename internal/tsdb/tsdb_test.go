package tsdb

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var ctx = context.Background()

func openTemp(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

var meta = Meta{
	Name:            "pv",
	Start:           time.Date(2015, 1, 5, 0, 0, 0, 0, time.UTC),
	IntervalSeconds: 60,
	Recall:          0.66,
	Precision:       0.66,
	Trees:           60,
}

func TestRoundTrip(t *testing.T) {
	s := openTemp(t)
	if err := s.CreateSeries(meta); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendPoints(ctx, "pv", []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendPoints(ctx, "pv", []float64{4, 5}); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendLabel(ctx, "pv", 1, 3, true); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendLabel(ctx, "pv", 2, 3, false); err != nil { // partial undo
		t.Fatal(err)
	}
	got, err := s.Load("pv")
	if err != nil {
		t.Fatal(err)
	}
	if got.Meta != meta {
		t.Errorf("meta = %+v", got.Meta)
	}
	wantVals := []float64{1, 2, 3, 4, 5}
	wantLabels := []bool{false, true, false, false, false}
	for i := range wantVals {
		if got.Values[i] != wantVals[i] || got.Labels[i] != wantLabels[i] {
			t.Fatalf("replay = %v / %v", got.Values, got.Labels)
		}
	}
}

func TestLegacyLoadSurvivesTornTail(t *testing.T) {
	s := openTemp(t)
	// A legacy JSON-lines log whose final line was torn by a crash.
	content := `{"kind":"meta","meta":{"name":"pv","interval_seconds":60}}
{"kind":"points","values":[1,2]}
{"kind":"points","values":[9,9`
	if err := os.WriteFile(filepath.Join(s.dir, "pv.wal"), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := s.Load("pv")
	if err != nil {
		t.Fatalf("torn tail should be tolerated: %v", err)
	}
	if len(got.Values) != 2 {
		t.Errorf("values = %v, want the 2 intact points", got.Values)
	}
}

func TestLegacyLoadRejectsMidLogCorruption(t *testing.T) {
	s := openTemp(t)
	path := filepath.Join(s.dir, "bad.wal")
	content := `{"kind":"meta","meta":{"name":"bad","interval_seconds":60}}
not json at all
{"kind":"points","values":[1]}
`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Load("bad"); err == nil {
		t.Error("mid-log corruption accepted")
	}
}

func TestLegacyLoadValidations(t *testing.T) {
	s := openTemp(t)
	cases := map[string]string{
		"nometa":    `{"kind":"points","values":[1]}` + "\n",
		"dupmeta":   `{"kind":"meta","meta":{"name":"x"}}` + "\n" + `{"kind":"meta","meta":{"name":"x"}}` + "\n",
		"badlabel":  `{"kind":"meta","meta":{"name":"x"}}` + "\n" + `{"kind":"label","start":0,"end":5,"anomalous":true}` + "\n",
		"unknown":   `{"kind":"meta","meta":{"name":"x"}}` + "\n" + `{"kind":"zap"}` + "\n",
		"emptymeta": `{"kind":"meta"}` + "\n",
	}
	for name, content := range cases {
		path := filepath.Join(s.dir, name+".wal")
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Load(name); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestInvalidNames(t *testing.T) {
	s := openTemp(t)
	for _, name := range []string{"", "a/b", `a\b`, ".."} {
		if err := s.AppendPoints(ctx, name, []float64{1}); err == nil {
			t.Errorf("name %q accepted", name)
		}
	}
}

func TestListAndRemove(t *testing.T) {
	s := openTemp(t)
	for _, n := range []string{"b", "a"} {
		m := meta
		m.Name = n
		if err := s.CreateSeries(m); err != nil {
			t.Fatal(err)
		}
	}
	names, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("List = %v", names)
	}
	if err := s.Remove("a"); err != nil {
		t.Fatal(err)
	}
	names, _ = s.List()
	if len(names) != 1 || names[0] != "b" {
		t.Errorf("after Remove, List = %v", names)
	}
	if err := s.Remove("a"); err != nil {
		t.Errorf("removing a missing series should be idempotent: %v", err)
	}
}

func TestAppendAfterReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.CreateSeries(meta)
	s.AppendPoints(ctx, "pv", []float64{1})
	s.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if err := s2.AppendPoints(ctx, "pv", []float64{2}); err != nil {
		t.Fatal(err)
	}
	got, err := s2.Load("pv")
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Values) != 2 || got.Values[1] != 2 {
		t.Errorf("reopened replay = %v", got.Values)
	}
}

func TestAppendLabelValidation(t *testing.T) {
	s := openTemp(t)
	if err := s.AppendLabel(ctx, "pv", 3, 3, true); err == nil {
		t.Error("empty range accepted")
	}
	if err := s.AppendLabel(ctx, "pv", -1, 2, true); err == nil {
		t.Error("negative start accepted")
	}
}

func TestAppendPointsEmptyNoop(t *testing.T) {
	s := openTemp(t)
	if err := s.AppendPoints(ctx, "pv", nil); err != nil {
		t.Fatal(err)
	}
	if names, _ := s.List(); len(names) != 0 {
		t.Errorf("empty append created a log: %v", names)
	}
}

func TestCreateDuplicateRejected(t *testing.T) {
	s := openTemp(t)
	if err := s.CreateSeries(meta); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateSeries(meta); err == nil {
		t.Error("duplicate create accepted")
	}
}

func TestAppendContextCanceled(t *testing.T) {
	s := openTemp(t)
	if err := s.CreateSeries(meta); err != nil {
		t.Fatal(err)
	}
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	// Cancellation abandons the wait, not the write: the call must return
	// promptly with either the context error or (if the commit won the
	// race) success — and the write may still be durable.
	err := s.AppendPoints(canceled, "pv", []float64{1})
	if err != nil && err != context.Canceled {
		t.Errorf("err = %v, want nil or context.Canceled", err)
	}
}

func TestClosedStoreRefusesWrites(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := s.AppendPoints(ctx, "pv", []float64{1}); err == nil {
		t.Error("append after Close accepted")
	}
}
