package tsdb

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func segCount(t *testing.T, dir string) int {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "shard-*", "*.seg"))
	if err != nil {
		t.Fatal(err)
	}
	return len(segs)
}

// TestSegmentRotation forces tiny segments and checks that writes roll over
// into new files while every acked point stays replayable.
func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, WithShards(1), WithSegmentBytes(256))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	m := meta
	if err := s.CreateSeries(m); err != nil {
		t.Fatal(err)
	}
	var want []float64
	for i := 0; i < 200; i++ {
		v := float64(i) * 1.5
		want = append(want, v)
		if err := s.AppendPoints(ctx, "pv", []float64{v}); err != nil {
			t.Fatal(err)
		}
	}
	if n := segCount(t, dir); n < 2 {
		t.Fatalf("segments = %d, want rotation to have produced several", n)
	}
	got, err := s.Load("pv")
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Values) != len(want) {
		t.Fatalf("replayed %d values, want %d", len(got.Values), len(want))
	}
	for i := range want {
		if got.Values[i] != want[i] {
			t.Fatalf("value %d = %v, want %v", i, got.Values[i], want[i])
		}
	}
	// And again after a cold reopen, where the scan walks every segment.
	s.Close()
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, err = s2.Load("pv")
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Values) != len(want) || got.Values[199] != want[199] {
		t.Fatalf("post-reopen replay has %d values", len(got.Values))
	}
}

// TestCompactionReclaimsRetiredSegments removes a series and checks that
// sealed segments referencing only it are deleted, while a surviving
// series' segments are untouched.
func TestCompactionReclaimsRetiredSegments(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, WithShards(1), WithSegmentBytes(256))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, name := range []string{"dead", "live"} {
		m := meta
		m.Name = name
		if err := s.CreateSeries(m); err != nil {
			t.Fatal(err)
		}
	}
	// Fill several segments with the doomed series only...
	for i := 0; i < 150; i++ {
		if err := s.AppendPoints(ctx, "dead", []float64{float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// ...then move the active segment past them with the survivor.
	for i := 0; i < 150; i++ {
		if err := s.AppendPoints(ctx, "live", []float64{float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	before := segCount(t, dir)
	if before < 4 {
		t.Fatalf("setup produced only %d segments", before)
	}
	if err := s.Remove("dead"); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	after := segCount(t, dir)
	if after >= before {
		t.Errorf("segments %d -> %d; compaction reclaimed nothing", before, after)
	}
	got, err := s.Load("live")
	if err != nil {
		t.Fatalf("survivor must outlive compaction: %v", err)
	}
	if len(got.Values) != 150 {
		t.Errorf("survivor has %d values, want 150", len(got.Values))
	}
	if _, err := s.Load("dead"); err == nil {
		t.Error("removed series still loads")
	}
}

// TestGroupCommitCoalesces holds the commit window open and checks that
// concurrent appenders land in far fewer frames than requests, and that
// every ack is backed by a durable, replayable write.
func TestGroupCommitCoalesces(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, WithShards(1), WithGroupCommit(5*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const writers, each = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := fmt.Sprintf("kpi-%d", w)
			m := meta
			m.Name = name
			if err := s.CreateSeries(m); err != nil {
				errs <- err
				return
			}
			for i := 0; i < each; i++ {
				if err := s.AppendPoints(ctx, name, []float64{float64(i)}); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for w := 0; w < writers; w++ {
		got, err := s.Load(fmt.Sprintf("kpi-%d", w))
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Values) != each {
			t.Fatalf("writer %d: %d values, want %d", w, len(got.Values), each)
		}
		for i := range got.Values {
			if got.Values[i] != float64(i) {
				t.Fatalf("writer %d value %d = %v", w, i, got.Values[i])
			}
		}
	}
	stats, err := Dump(dir, discard{}, DumpOptions{})
	if err != nil {
		t.Fatal(err)
	}
	total := writers * (each + 1) // appends + creates
	if stats.Frames >= total {
		t.Errorf("frames = %d for %d requests; group commit never batched", stats.Frames, total)
	}
}

// TestShardCountFromDisk checks that a reopen ignores a conflicting
// WithShards and keeps the layout the directory was created with — series
// must hash to the shard that actually holds their frames.
func TestShardCountFromDisk(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	for _, n := range names {
		m := meta
		m.Name = n
		if err := s.CreateSeries(m); err != nil {
			t.Fatal(err)
		}
		if err := s.AppendPoints(ctx, n, []float64{1, 2}); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	s2, err := Open(dir, WithShards(16))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := len(s2.shards); got != 4 {
		t.Fatalf("reopen with conflicting option gave %d shards, want the on-disk 4", got)
	}
	for _, n := range names {
		got, err := s2.Load(n)
		if err != nil {
			t.Fatalf("%s: %v", n, err)
		}
		if len(got.Values) != 2 {
			t.Errorf("%s: %d values", n, len(got.Values))
		}
	}
}

// TestOversizedBatchRoundTrips appends one batch bigger than the
// frame-split threshold: requests are never split across frames, so this
// becomes a single oversized (but still sub-maxFrame) frame that must
// round-trip.
func TestOversizedBatchRoundTrips(t *testing.T) {
	if testing.Short() {
		t.Skip("large allocation")
	}
	s := openTemp(t)
	if err := s.CreateSeries(meta); err != nil {
		t.Fatal(err)
	}
	// Incompressible values: ~8 B/pt, so 2M points ≈ 16 MB > frameSplit.
	values := make([]float64, 2<<20)
	for i := range values {
		values[i] = float64(i) * 1e-7 * float64(i%7+1)
	}
	if err := s.AppendPoints(ctx, "pv", values); err != nil {
		t.Fatal(err)
	}
	got, err := s.Load("pv")
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Values) != len(values) {
		t.Fatalf("replayed %d values, want %d", len(got.Values), len(values))
	}
	for i := 0; i < len(values); i += 99991 {
		if got.Values[i] != values[i] {
			t.Fatalf("value %d = %v, want %v", i, got.Values[i], values[i])
		}
	}
}
