package tsdb

// Fault-injection tests for WAL hardening: checksummed lines must turn bit
// rot into ErrCorrupt (not silently-wrong replays), torn tails must stay
// tolerated, legacy unchecksummed logs must still load, and Quarantine must
// set a damaged log aside so the rest of the store keeps working.

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"opprentice/internal/faultinject"
)

// seedSeries writes a small multi-record log and returns its path.
func seedSeries(t *testing.T, s *Store, name string) string {
	t.Helper()
	m := meta
	m.Name = name
	if err := s.CreateSeries(m); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendPoints(name, []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendPoints(name, []float64{4, 5, 6}); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendLabel(name, 1, 3, true); err != nil {
		t.Fatal(err)
	}
	return filepath.Join(s.dir, name+".wal")
}

func TestFaultLoadDetectsMidLogBitFlip(t *testing.T) {
	s := openTemp(t)
	path := seedSeries(t, s, "pv")
	// Flip one subtle byte inside line 2 (a points batch). Without checksums
	// this could replay as a silently wrong value; with them it must be an
	// ErrCorrupt, because only the torn *last* line is forgivable.
	if err := faultinject.CorruptLine(path, 2); err != nil {
		t.Fatal(err)
	}
	_, err := s.Load("pv")
	if err == nil {
		t.Fatal("bit-flipped mid-log line accepted")
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Errorf("err = %v, want errors.Is(_, ErrCorrupt)", err)
	}
}

func TestFaultLoadToleratesTornTail(t *testing.T) {
	s := openTemp(t)
	path := seedSeries(t, s, "pv")
	// Chop bytes off the final line: a crash mid-write. The intact prefix
	// must still replay.
	if err := faultinject.TruncateTail(path, 5); err != nil {
		t.Fatal(err)
	}
	got, err := s.Load("pv")
	if err != nil {
		t.Fatalf("torn tail should be tolerated: %v", err)
	}
	if len(got.Values) != 6 {
		t.Errorf("values = %v, want the 6 intact points", got.Values)
	}
	// The torn record was the label, so no point should be labeled.
	for i, l := range got.Labels {
		if l {
			t.Errorf("label %d survived a torn label record", i)
		}
	}
}

func TestFaultLoadRejectsGarbageBeforeValidRecord(t *testing.T) {
	s := openTemp(t)
	path := seedSeries(t, s, "pv")
	// Garbage followed by a genuine record: the garbage is now mid-log, so
	// it must be rejected rather than skipped.
	if err := faultinject.AppendGarbage(path, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendPoints("pv", []float64{7}); err != nil {
		t.Fatal(err)
	}
	_, err := s.Load("pv")
	if !errors.Is(err, ErrCorrupt) {
		t.Errorf("err = %v, want errors.Is(_, ErrCorrupt)", err)
	}
}

func TestFaultLoadLegacyUnchecksummedLog(t *testing.T) {
	s := openTemp(t)
	// A log written by the pre-checksum format: bare JSON lines.
	content := `{"kind":"meta","meta":{"name":"old","interval_seconds":60}}
{"kind":"points","values":[1,2,3]}
{"kind":"label","start":0,"end":2,"anomalous":true}
`
	path := filepath.Join(s.dir, "old.wal")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := s.Load("old")
	if err != nil {
		t.Fatalf("legacy log should load: %v", err)
	}
	if len(got.Values) != 3 || !got.Labels[0] || !got.Labels[1] || got.Labels[2] {
		t.Errorf("legacy replay = %v / %v", got.Values, got.Labels)
	}
	// New appends to a legacy log are checksummed; the mixed log must load.
	if err := s.AppendPoints("old", []float64{4}); err != nil {
		t.Fatal(err)
	}
	got, err = s.Load("old")
	if err != nil {
		t.Fatalf("mixed legacy+checksummed log should load: %v", err)
	}
	if len(got.Values) != 4 || got.Values[3] != 4 {
		t.Errorf("mixed replay = %v", got.Values)
	}
}

func TestFaultQuarantineSetsCorruptLogAside(t *testing.T) {
	s := openTemp(t)
	path := seedSeries(t, s, "bad")
	seedSeries(t, s, "good")
	if err := faultinject.FlipByte(path, 20); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Load("bad"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("setup: corrupted log should fail Load, got %v", err)
	}

	dst, err := s.Quarantine("bad")
	if err != nil {
		t.Fatalf("Quarantine: %v", err)
	}
	if !strings.HasSuffix(dst, "bad.wal.corrupt") {
		t.Errorf("quarantine path = %q, want *.wal.corrupt", dst)
	}
	if _, err := os.Stat(dst); err != nil {
		t.Errorf("quarantined file missing: %v", err)
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("original path still present: %v", err)
	}
	// The store keeps serving healthy series, and List hides the corpse.
	names, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "good" {
		t.Errorf("List = %v, want [good]", names)
	}
	if _, err := s.Load("good"); err != nil {
		t.Errorf("healthy series must survive a sibling's quarantine: %v", err)
	}
	// The name is reusable: a fresh series can be created under it.
	m := meta
	m.Name = "bad"
	if err := s.CreateSeries(m); err != nil {
		t.Fatalf("re-create after quarantine: %v", err)
	}
	if got, err := s.Load("bad"); err != nil || len(got.Values) != 0 {
		t.Errorf("re-created series: %v, err %v", got, err)
	}
	// Quarantining a series that has no log is an error, not a silent no-op.
	if _, err := s.Quarantine("ghost"); err == nil {
		t.Error("quarantining a missing series should fail")
	}
}
