package tsdb

// Fault-injection tests for WAL hardening: frame checksums must turn bit
// rot into ErrCorrupt (not silently-wrong replays), torn segment tails must
// stay tolerated and lose only unacknowledged writes, legacy JSON-lines
// logs must still load and migrate, and Quarantine must retire a damaged
// series so the rest of the store keeps working.

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"opprentice/internal/faultinject"
)

// seedSeries writes a small multi-record series through the public API:
// one create, two point batches, one label — four commit frames.
func seedSeries(t *testing.T, s *Store, name string) {
	t.Helper()
	m := meta
	m.Name = name
	if err := s.CreateSeries(m); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendPoints(ctx, name, []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendPoints(ctx, name, []float64{4, 5, 6}); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendLabel(ctx, name, 1, 3, true); err != nil {
		t.Fatal(err)
	}
}

// onlySegment returns the path of the single segment file a one-series
// store has written (segments are created lazily, so exactly one exists).
func onlySegment(t *testing.T, dir string) string {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "shard-*", "*.seg"))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		t.Fatalf("segments = %v, want exactly one", segs)
	}
	return segs[0]
}

func TestFaultLoadDetectsPayloadBitFlip(t *testing.T) {
	s := openTemp(t)
	seedSeries(t, s, "pv")
	// Flip one byte inside a points bitstream. Without checksums this could
	// replay as a silently wrong value; with them it must be ErrCorrupt.
	if err := CorruptPointsFrame(s.dir, "pv"); err != nil {
		t.Fatal(err)
	}
	_, err := s.Load("pv")
	if err == nil {
		t.Fatal("bit-flipped points frame accepted")
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Errorf("err = %v, want errors.Is(_, ErrCorrupt)", err)
	}
}

func TestFaultTornSegmentTailLosesOnlyTail(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	seedSeries(t, s, "pv")
	s.Close()
	// Chop bytes off the newest segment: a crash mid-group-commit. The last
	// frame (the label) is destroyed; every earlier fsync-acknowledged frame
	// must replay intact.
	if err := faultinject.TruncateTail(onlySegment(t, dir), 5); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, err := s2.Load("pv")
	if err != nil {
		t.Fatalf("torn tail should be tolerated: %v", err)
	}
	if len(got.Values) != 6 {
		t.Errorf("values = %v, want the 6 intact points", got.Values)
	}
	// The torn frame was the label, so no point should be labeled.
	for i, l := range got.Labels {
		if l {
			t.Errorf("label %d survived a torn label frame", i)
		}
	}
	// The appender truncates the torn tail before its first write; the
	// store must accept appends and stay consistent afterwards.
	if err := s2.AppendPoints(ctx, "pv", []float64{7}); err != nil {
		t.Fatal(err)
	}
	got, err = s2.Load("pv")
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Values) != 7 || got.Values[6] != 7 {
		t.Errorf("post-recovery replay = %v", got.Values)
	}
}

func TestFaultGarbageTailForgivenAsTorn(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	seedSeries(t, s, "pv")
	s.Close()
	// Garbage after the last complete frame is indistinguishable from a
	// torn write and must be forgiven, losing nothing acknowledged.
	if err := faultinject.AppendGarbage(onlySegment(t, dir), nil); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, err := s2.Load("pv")
	if err != nil {
		t.Fatalf("garbage tail should be forgiven: %v", err)
	}
	if len(got.Values) != 6 || !got.Labels[1] {
		t.Errorf("replay = %v / %v, want all 6 acked points and the label", got.Values, got.Labels)
	}
}

func TestFaultMidLogCorruptionDetectedAfterMoreWrites(t *testing.T) {
	s := openTemp(t)
	seedSeries(t, s, "pv")
	// Corrupt the latest points frame, then keep writing: the damage is now
	// mid-log, behind valid frames, and must still surface as ErrCorrupt.
	if err := CorruptPointsFrame(s.dir, "pv"); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendLabel(ctx, "pv", 0, 1, true); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Load("pv"); !errors.Is(err, ErrCorrupt) {
		t.Errorf("err = %v, want errors.Is(_, ErrCorrupt)", err)
	}
}

func TestFaultLoadLegacyUnchecksummedLog(t *testing.T) {
	s := openTemp(t)
	// A log written by the pre-checksum format: bare JSON lines.
	content := `{"kind":"meta","meta":{"name":"old","interval_seconds":60}}
{"kind":"points","values":[1,2,3]}
{"kind":"label","start":0,"end":2,"anomalous":true}
`
	path := filepath.Join(s.dir, "old.wal")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := s.Load("old")
	if err != nil {
		t.Fatalf("legacy log should load: %v", err)
	}
	if len(got.Values) != 3 || !got.Labels[0] || !got.Labels[1] || got.Labels[2] {
		t.Errorf("legacy replay = %v / %v", got.Values, got.Labels)
	}
	// The first write migrates the log into segments; the combined state
	// must load and the legacy file must be set aside.
	if err := s.AppendPoints(ctx, "old", []float64{4}); err != nil {
		t.Fatal(err)
	}
	got, err = s.Load("old")
	if err != nil {
		t.Fatalf("migrated log should load: %v", err)
	}
	if len(got.Values) != 4 || got.Values[3] != 4 || !got.Labels[0] {
		t.Errorf("migrated replay = %v / %v", got.Values, got.Labels)
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("legacy file still present after migration: %v", err)
	}
	if _, err := os.Stat(path + ".migrated"); err != nil {
		t.Errorf("migrated file missing: %v", err)
	}
}

func TestFaultQuarantineLegacyLogSetAside(t *testing.T) {
	s := openTemp(t)
	content := `{"kind":"meta","meta":{"name":"bad","interval_seconds":60}}
not json at all
{"kind":"points","values":[1]}
`
	path := filepath.Join(s.dir, "bad.wal")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	seedSeries(t, s, "good")
	if _, err := s.Load("bad"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("setup: corrupted log should fail Load, got %v", err)
	}
	dst, err := s.Quarantine("bad")
	if err != nil {
		t.Fatalf("Quarantine: %v", err)
	}
	if !strings.HasSuffix(dst, "bad.wal.corrupt") {
		t.Errorf("quarantine path = %q, want *.wal.corrupt", dst)
	}
	if _, err := os.Stat(dst); err != nil {
		t.Errorf("quarantined file missing: %v", err)
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("original path still present: %v", err)
	}
	names, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "good" {
		t.Errorf("List = %v, want [good]", names)
	}
}

func TestFaultQuarantineTombstonesSegmentSeries(t *testing.T) {
	s := openTemp(t)
	seedSeries(t, s, "bad")
	seedSeries(t, s, "good")
	if err := CorruptPointsFrame(s.dir, "bad"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Load("bad"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("setup: corrupted series should fail Load, got %v", err)
	}

	if _, err := s.Quarantine("bad"); err != nil {
		t.Fatalf("Quarantine: %v", err)
	}
	// The tombstone removes the series from the catalog...
	names, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "good" {
		t.Errorf("List = %v, want [good]", names)
	}
	if _, err := s.Load("bad"); err == nil || errors.Is(err, ErrCorrupt) {
		t.Errorf("Load after quarantine = %v, want a not-found error", err)
	}
	// ...while the damaged frames stay on disk for inspection.
	stats, err := Dump(s.dir, discard{}, DumpOptions{Series: "bad"})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records == 0 {
		t.Error("quarantine dropped the damaged frames from disk")
	}
	if stats.CorruptFrames == 0 {
		t.Error("the corrupt frame is no longer visible to Dump")
	}
	// The store keeps serving healthy series, and the name is reusable.
	if _, err := s.Load("good"); err != nil {
		t.Errorf("healthy series must survive a sibling's quarantine: %v", err)
	}
	m := meta
	m.Name = "bad"
	if err := s.CreateSeries(m); err != nil {
		t.Fatalf("re-create after quarantine: %v", err)
	}
	if err := s.AppendPoints(ctx, "bad", []float64{42}); err != nil {
		t.Fatalf("append to re-created series: %v", err)
	}
	if got, err := s.Load("bad"); err != nil || len(got.Values) != 1 || got.Values[0] != 42 {
		t.Errorf("re-created series = %+v, err %v", got, err)
	}
	// Quarantining a series that has no log is an error, not a silent no-op.
	if _, err := s.Quarantine("ghost"); err == nil {
		t.Error("quarantining a missing series should fail")
	}
}

// discard is an io.Writer black hole for Dump output in assertions.
type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
