package tsdb

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"time"
)

// Per-shard appender: one goroutine owns the shard's active segment file
// and turns concurrent requests into group-commit frames — collect a batch,
// encode it, one write, one fsync, then publish the staged index updates
// and ack every caller. A crash can therefore only lose requests that were
// never acked; everything acked sits in an fsynced frame.

const (
	reqCreate = iota
	reqPoints
	reqLabel
	reqTombstone
	reqImport // legacy-log migration: meta + points + labels in one frame
	reqTypedLabel
)

type request struct {
	op         int
	name       string
	meta       Meta      // reqCreate, reqImport
	values     []float64 // reqPoints, reqImport
	start, end int       // reqLabel, reqTypedLabel
	anomalous  bool      // reqLabel, reqTypedLabel
	class      byte      // reqTypedLabel
	labels     []bool    // reqImport
	resp       chan error
	err        error // per-request rejection inside an otherwise good batch
}

const (
	// maxBatchReqs bounds one group-commit batch.
	maxBatchReqs = 4096
	// frameSplit closes the current frame when it grows past this; requests
	// are never split across frames, so one request may exceed it (bounded
	// by maxFrame).
	frameSplit = 8 << 20
)

// run is the appender loop. It exits when quit closes, after draining
// every request already enqueued (the Store's close barrier guarantees no
// new ones arrive).
func (sh *shard) run() {
	defer sh.wg.Done()
	for {
		select {
		case req := <-sh.reqs:
			sh.commit(sh.gather(req, true))
		case <-sh.quit:
			for {
				select {
				case req := <-sh.reqs:
					sh.commit(sh.gather(req, false))
				default:
					sh.closeActive()
					return
				}
			}
		}
	}
}

// gather builds one batch starting from first. With a group-commit window
// configured (and wait set), the batch is held open for the window so
// concurrent writers share the fsync; otherwise it takes whatever is
// already queued.
func (sh *shard) gather(first *request, wait bool) []*request {
	batch := []*request{first}
	if window := sh.store.opts.groupCommit; window > 0 && wait {
		timer := time.NewTimer(window)
		defer timer.Stop()
		for len(batch) < maxBatchReqs {
			select {
			case req := <-sh.reqs:
				batch = append(batch, req)
			case <-timer.C:
				return batch
			case <-sh.quit:
				return batch
			}
		}
		return batch
	}
	for len(batch) < maxBatchReqs {
		select {
		case req := <-sh.reqs:
			batch = append(batch, req)
		default:
			return batch
		}
	}
	return batch
}

// commit encodes one batch into commit frames, writes and fsyncs them, then
// publishes the staged state and acks. On a write error the partial bytes
// are truncated away so disk and index stay consistent; if even that fails
// the shard is failed sticky.
func (sh *shard) commit(batch []*request) {
	sh.mu.Lock()
	failed := sh.failed
	sh.mu.Unlock()
	if failed == nil {
		failed = sh.ensureActive()
	}
	if failed != nil {
		for _, req := range batch {
			req.resp <- failed
		}
		return
	}

	enc := commitEncoder{sh: sh}
	for _, req := range batch {
		req.err = enc.add(req)
	}
	frames := enc.finish()

	var wrote int64
	var werr error
	for _, fr := range frames {
		if _, err := sh.active.WriteAt(fr.data, sh.activeSize+wrote); err != nil {
			werr = err
			break
		}
		wrote += int64(len(fr.data))
	}
	if werr == nil && wrote > 0 {
		werr = sh.active.Sync()
	}
	if werr != nil {
		werr = fmt.Errorf("tsdb: commit: %w", werr)
		if terr := sh.active.Truncate(sh.activeSize); terr != nil {
			sh.fail(fmt.Errorf("tsdb: truncate after failed commit: %w", terr))
		}
		for _, req := range batch {
			req.resp <- werr
		}
		return
	}

	sh.publish(frames, enc.all)
	for _, req := range batch {
		req.resp <- req.err
	}

	if sh.activeSize >= sh.store.opts.segmentBytes {
		if err := sh.rotate(); err != nil {
			sh.fail(err)
		}
	}
}

// publish applies the staged updates of a successfully fsynced batch to the
// shard index, in commit order: bindings and extents first, then chains and
// tombstone retirements.
func (sh *shard) publish(frames []stagedFrame, all []*pendSeries) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	off := sh.activeSize
	for _, fr := range frames {
		for _, ps := range fr.refs {
			if ps.ser == nil {
				ser := &series{id: ps.id, name: ps.name}
				sh.byID[ps.id] = ser
				sh.byName[ps.name] = ser
				if sh.nextID < ps.id {
					sh.nextID = ps.id
				}
				ps.ser = ser
			}
			sh.noteExtent(ps.ser, extent{seq: sh.activeSeq, off: off, size: int64(len(fr.data))})
		}
		off += int64(len(fr.data))
	}
	for _, ps := range all {
		if ps.ser == nil {
			continue // every sub of the request was rejected
		}
		if ps.wrotePoints || ps.created {
			ps.ser.chain = ps.chain
			ps.ser.chainReady = true
		}
		if ps.tomb {
			sh.retireLocked(ps.ser, sh.activeSeq)
		}
	}
	sh.activeSize = off
	if sg := sh.segState(sh.activeSeq); sg != nil {
		sg.size = off
	}
}

// ensureActive opens (or creates) the active segment for appending. Torn
// tails recorded by the scan are truncated away here — the first write —
// never at Open, so read-only probes cannot mutate a live directory.
func (sh *shard) ensureActive() error {
	if sh.active != nil {
		return nil
	}
	if sh.activeSeq == 0 || sh.rotateFirst {
		return sh.rotate()
	}
	f, err := os.OpenFile(filepath.Join(sh.dir, segFileName(sh.activeSeq)), os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("tsdb: %w", err)
	}
	if sh.torn {
		if sh.activeSize < int64(len(segMagic)) {
			// Torn inside the header: rewrite the segment from scratch.
			if err := f.Truncate(0); err == nil {
				_, err = f.WriteAt([]byte(segMagic), 0)
			}
			if err == nil {
				err = f.Sync()
			}
			if err != nil {
				f.Close()
				return fmt.Errorf("tsdb: %w", err)
			}
			sh.setActiveSize(int64(len(segMagic)))
		} else {
			if err := f.Truncate(sh.activeSize); err != nil {
				f.Close()
				return fmt.Errorf("tsdb: %w", err)
			}
			if err := f.Sync(); err != nil {
				f.Close()
				return fmt.Errorf("tsdb: %w", err)
			}
		}
		sh.torn = false
	}
	sh.active = f
	return nil
}

// rotate seals the current active segment (if any) and starts the next one,
// then lets compaction collect fully retired segments.
func (sh *shard) rotate() error {
	seq := sh.activeSeq + 1
	f, err := os.OpenFile(filepath.Join(sh.dir, segFileName(seq)), os.O_CREATE|os.O_EXCL|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("tsdb: %w", err)
	}
	if _, err := f.WriteAt([]byte(segMagic), 0); err == nil {
		err = f.Sync()
	}
	if err != nil {
		f.Close()
		return fmt.Errorf("tsdb: %w", err)
	}
	if err := syncDir(sh.dir); err != nil {
		f.Close()
		return err
	}
	if sh.active != nil {
		sh.active.Close()
	}
	sh.active = f
	sh.mu.Lock()
	sh.segs = append(sh.segs, &segState{seq: seq, size: int64(len(segMagic))})
	sh.activeSeq = seq
	sh.activeSize = int64(len(segMagic))
	sh.rotateFirst = false
	sh.torn = false
	err = sh.compactLocked()
	sh.mu.Unlock()
	return err
}

func (sh *shard) setActiveSize(n int64) {
	sh.mu.Lock()
	sh.activeSize = n
	if sg := sh.segState(sh.activeSeq); sg != nil {
		sg.size = n
	}
	sh.mu.Unlock()
}

func (sh *shard) closeActive() {
	if sh.active == nil {
		return
	}
	if err := sh.active.Close(); err != nil {
		sh.fail(fmt.Errorf("tsdb: close segment: %w", err))
	}
	sh.active = nil
}

// fail records the shard's first unrecoverable write error; every later
// request is refused with it.
func (sh *shard) fail(err error) {
	sh.mu.Lock()
	if sh.failed == nil {
		sh.failed = err
	}
	sh.mu.Unlock()
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("tsdb: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("tsdb: sync dir: %w", err)
	}
	return nil
}

// pendSeries is the staged, not-yet-published view of one series touched by
// the batch being encoded.
type pendSeries struct {
	ser         *series // nil until published when created this batch
	id          uint64
	name        string
	chain       xorChain
	chainOK     bool
	created     bool
	wrotePoints bool
	tomb        bool
}

// stagedFrame is one encoded commit frame awaiting write: the full frame
// bytes and the distinct series it references, in order.
type stagedFrame struct {
	data []byte
	refs []*pendSeries
}

// commitEncoder turns a batch of requests into commit frames plus the
// staged index updates to publish after the fsync.
type commitEncoder struct {
	sh     *shard
	body   []byte // current frame body (kind byte first); nil when no frame open
	refs   []*pendSeries
	inRef  map[*pendSeries]bool
	frames []stagedFrame
	pend   map[string]*pendSeries // live staged binding per name
	all    []*pendSeries
	nextID uint64 // 0 until first allocation
}

// add encodes one request into the current frame. A returned error rejects
// just this request; the rest of the batch proceeds.
func (e *commitEncoder) add(req *request) error {
	switch req.op {
	case reqCreate, reqImport:
		if ps := e.lookup(req.name); ps != nil {
			return fmt.Errorf("tsdb: series %q already exists", req.name)
		}
		ps := e.intern(req.name)
		scratch := e.internSub(nil, ps)
		metaOp, encMeta := byte(opMeta), appendMeta
		if req.meta.Predictor != 0 || req.meta.EVTQ != 0 {
			metaOp, encMeta = opMetaV2, appendMetaV2
		}
		scratch = e.encodeSub(scratch, metaOp, ps.id, func(b []byte) []byte {
			return encMeta(b, req.meta)
		})
		if req.op == reqImport {
			scratch = e.encodePoints(scratch, ps, req.values)
			run := -1
			for i, anomalous := range req.labels {
				if anomalous && run < 0 {
					run = i
				}
				if !anomalous && run >= 0 {
					scratch = e.encodeLabel(scratch, ps.id, run, i, true)
					run = -1
				}
			}
			if run >= 0 {
				scratch = e.encodeLabel(scratch, ps.id, run, len(req.labels), true)
			}
		}
		if err := e.emit(req.name, ps, scratch); err != nil {
			e.unstage(req.name, ps)
			return err
		}
		return nil
	case reqPoints:
		ps := e.lookup(req.name)
		var scratch []byte
		if ps == nil {
			// Blind append without a create: intern and log it anyway, like
			// the legacy store did; Load will report the missing meta.
			ps = e.intern(req.name)
			scratch = e.internSub(nil, ps)
		}
		if ps.ser != nil && !ps.chainOK {
			if err := e.warmChain(ps); err != nil {
				return err
			}
		}
		saved := ps.chain
		scratch = e.encodePoints(scratch, ps, req.values)
		if err := e.emit(req.name, ps, scratch); err != nil {
			ps.chain = saved
			if ps.created {
				e.unstage(req.name, ps)
			}
			return err
		}
		ps.wrotePoints = true
		return nil
	case reqLabel, reqTypedLabel:
		ps := e.lookup(req.name)
		var scratch []byte
		if ps == nil {
			ps = e.intern(req.name)
			scratch = e.internSub(nil, ps)
		}
		if req.op == reqTypedLabel {
			scratch = e.encodeTypedLabel(scratch, ps.id, req.start, req.end, req.anomalous, req.class)
		} else {
			scratch = e.encodeLabel(scratch, ps.id, req.start, req.end, req.anomalous)
		}
		if err := e.emit(req.name, ps, scratch); err != nil {
			if ps.created {
				e.unstage(req.name, ps)
			}
			return err
		}
		return nil
	case reqTombstone:
		ps := e.lookup(req.name)
		if ps == nil || ps.tomb {
			return nil // already gone; tombstoning is idempotent
		}
		ps.tomb = true
		return e.emit(req.name, ps, e.encodeSub(nil, opTombstone, ps.id, nil))
	}
	return fmt.Errorf("tsdb: unknown request op %d", req.op)
}

// lookup resolves a name against the staged view first, then the committed
// index. The committed read takes sh.mu: Load memoizes chains concurrently.
func (e *commitEncoder) lookup(name string) *pendSeries {
	if ps, ok := e.pend[name]; ok {
		if ps.tomb {
			return nil // retired earlier in this very batch
		}
		return ps
	}
	sh := e.sh
	sh.mu.Lock()
	ser := sh.byName[name]
	var ps *pendSeries
	if ser != nil {
		ps = &pendSeries{ser: ser, id: ser.id, name: name, chain: ser.chain, chainOK: ser.chainReady}
		if ser.corrupt {
			ps.chainOK = false
		}
	}
	sh.mu.Unlock()
	if ps != nil {
		e.stage(name, ps)
	}
	return ps
}

// intern stages a new series under the next free ID.
func (e *commitEncoder) intern(name string) *pendSeries {
	if e.nextID == 0 {
		sh := e.sh
		sh.mu.Lock()
		e.nextID = sh.nextID
		sh.mu.Unlock()
	}
	e.nextID++
	ps := &pendSeries{id: e.nextID, name: name, chainOK: true, created: true}
	e.stage(name, ps)
	return ps
}

// internSub encodes the dictionary-binding sub of a freshly interned
// series. Callers put it first in the request's scratch so the binding and
// the data land in the same frame (requests are frame-atomic).
func (e *commitEncoder) internSub(b []byte, ps *pendSeries) []byte {
	return e.encodeSub(b, opSeries, ps.id, func(b []byte) []byte {
		b = appendUvarint(b, uint64(len(ps.name)))
		return append(b, ps.name...)
	})
}

// unstage drops a freshly interned series whose request was rejected, so
// later requests in the batch cannot reference an unwritten binding.
func (e *commitEncoder) unstage(name string, ps *pendSeries) {
	if e.pend[name] == ps {
		delete(e.pend, name)
	}
	for i, p := range e.all {
		if p == ps {
			e.all = append(e.all[:i], e.all[i+1:]...)
			break
		}
	}
}

func (e *commitEncoder) stage(name string, ps *pendSeries) {
	if e.pend == nil {
		e.pend = make(map[string]*pendSeries)
	}
	e.pend[name] = ps
	e.all = append(e.all, ps)
}

// warmChain rebuilds a series' XOR encoder state from disk — needed for the
// first points append after a reopen, when the in-memory chain is cold. A
// corrupt series cannot be continued (its chain is unrecoverable).
func (e *commitEncoder) warmChain(ps *pendSeries) error {
	sh := e.sh
	sh.mu.Lock()
	if ps.ser.corrupt {
		sh.mu.Unlock()
		return fmt.Errorf("tsdb: %s: damaged segment frame (%w)", ps.name, ErrCorrupt)
	}
	if ps.ser.chainReady {
		ps.chain = ps.ser.chain
		ps.chainOK = true
		sh.mu.Unlock()
		return nil
	}
	extents := append([]extent(nil), ps.ser.extents...)
	sh.mu.Unlock()
	var chain xorChain
	err := sh.readExtents(extents, func(body []byte) error {
		return parseSubs(body[1:len(body)-4], func(sub *subRecord) error {
			if sub.id != ps.id || sub.op != opPoints {
				return nil
			}
			_, err := decodePoints(sub, &chain, nil)
			return err
		})
	})
	if err != nil {
		sh.mu.Lock()
		ps.ser.corrupt = true
		sh.mu.Unlock()
		return err
	}
	ps.chain = chain
	ps.chainOK = true
	return nil
}

// encodeSub appends one sub-record header (+payload via fn) to b.
func (e *commitEncoder) encodeSub(b []byte, op byte, id uint64, fn func([]byte) []byte) []byte {
	b = append(b, op)
	b = appendUvarint(b, id)
	if fn != nil {
		b = fn(b)
	}
	return b
}

func (e *commitEncoder) encodePoints(b []byte, ps *pendSeries, values []float64) []byte {
	w := bitWriter{}
	for _, v := range values {
		xorWrite(&w, &ps.chain, v)
	}
	stream := w.flush()
	return e.encodeSub(b, opPoints, ps.id, func(b []byte) []byte {
		b = appendUvarint(b, uint64(len(values)))
		b = appendUvarint(b, uint64(len(stream)))
		return append(b, stream...)
	})
}

func (e *commitEncoder) encodeLabel(b []byte, id uint64, start, end int, anomalous bool) []byte {
	return e.encodeSub(b, opLabel, id, func(b []byte) []byte {
		b = appendUvarint(b, uint64(start))
		b = appendUvarint(b, uint64(end))
		flag := byte(0)
		if anomalous {
			flag = 1
		}
		return append(b, flag)
	})
}

func (e *commitEncoder) encodeTypedLabel(b []byte, id uint64, start, end int, anomalous bool, class byte) []byte {
	return e.encodeSub(b, opTypedLabel, id, func(b []byte) []byte {
		b = appendUvarint(b, uint64(start))
		b = appendUvarint(b, uint64(end))
		flag := byte(0)
		if anomalous {
			flag = 1
		}
		return append(b, flag, class)
	})
}

// emit appends one request's encoded subs to the current frame, starting a
// new frame first if this one is already past the split threshold. Requests
// are atomic within a frame so an acked request can never be half-durable.
func (e *commitEncoder) emit(name string, ps *pendSeries, scratch []byte) error {
	if len(scratch)+5 > maxFrame {
		return fmt.Errorf("tsdb: %s: batch of %d bytes exceeds the %d-byte frame cap", name, len(scratch), maxFrame)
	}
	e.openFrame(len(scratch))
	e.body = append(e.body, scratch...)
	e.ref(ps)
	return nil
}

// openFrame makes sure a frame is open with room for next more bytes,
// sealing the current one when it is already past the split threshold.
func (e *commitEncoder) openFrame(next int) {
	if e.body != nil && (len(e.body)+next > frameSplit && len(e.body) > 1) {
		e.seal()
	}
	if e.body == nil {
		e.body = []byte{frameCommit}
		e.inRef = make(map[*pendSeries]bool)
	}
}

func (e *commitEncoder) ref(ps *pendSeries) {
	if !e.inRef[ps] {
		e.inRef[ps] = true
		e.refs = append(e.refs, ps)
	}
}

// seal closes the current frame: CRC, length prefix, staged for write.
func (e *commitEncoder) seal() {
	if e.body == nil || len(e.body) <= 1 {
		e.body, e.refs, e.inRef = nil, nil, nil
		return
	}
	body := binary.LittleEndian.AppendUint32(e.body, crc32.Checksum(e.body, castagnoli))
	frame := appendUvarint(make([]byte, 0, len(body)+4), uint64(len(body)))
	frame = append(frame, body...)
	e.frames = append(e.frames, stagedFrame{data: frame, refs: e.refs})
	e.body, e.refs, e.inRef = nil, nil, nil
}

// finish seals the open frame and returns every staged frame.
func (e *commitEncoder) finish() []stagedFrame {
	e.seal()
	return e.frames
}
