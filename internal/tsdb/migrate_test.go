package tsdb

import (
	"io"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

// copyFixtureDir copies the committed pre-refactor data directory (legacy
// JSON-lines logs, checksummed and bare) into a writable temp dir.
func copyFixtureDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		in, err := os.Open(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out, err := os.Create(filepath.Join(dst, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := io.Copy(out, in); err != nil {
			t.Fatal(err)
		}
		in.Close()
		if err := out.Close(); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// TestLegacyFixtureMigration is the cross-version regression gate: a data
// directory written by the pre-segment JSON-lines store must open, list and
// load bit-identically, then migrate transparently on first write with the
// replayed state preserved exactly.
func TestLegacyFixtureMigration(t *testing.T) {
	dir := copyFixtureDir(t, filepath.Join("testdata", "legacy"))
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	names, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(names, []string{"lat", "pv"}) {
		t.Fatalf("List = %v, want [lat pv]", names)
	}

	// The exact state the fixture encodes (pv checksummed, lat bare-JSON
	// with a torn tail line that must be forgiven).
	wantPV := Loaded{
		Meta: Meta{Name: "pv", Start: time.Date(2015, 1, 5, 0, 0, 0, 0, time.UTC),
			IntervalSeconds: 60, Recall: 0.66, Precision: 0.66, Trees: 60},
		Values: []float64{10.5, 11, 11.5, 12, 80, 12.5, 13, 13.5},
		Labels: []bool{false, false, false, false, true, false, false, false},
	}
	wantLat := Loaded{
		Meta: Meta{Name: "lat", Start: time.Date(2015, 2, 1, 0, 0, 0, 0, time.UTC),
			IntervalSeconds: 300, Recall: 0.75, Precision: 0.6, Trees: 40},
		Values: []float64{1, 2, 3, 4},
		Labels: []bool{false, false, false, false},
	}
	checkLoad := func(stage string, s *Store, name string, want Loaded) {
		t.Helper()
		got, err := s.Load(name)
		if err != nil {
			t.Fatalf("%s: Load(%q): %v", stage, name, err)
		}
		if !reflect.DeepEqual(*got, want) {
			t.Errorf("%s: Load(%q) =\n  %+v\nwant\n  %+v", stage, name, *got, want)
		}
	}
	checkLoad("pre-migration", s, "pv", wantPV)
	checkLoad("pre-migration", s, "lat", wantLat)

	// First write migrates pv into segments; lat stays a legacy log.
	if err := s.AppendPoints(ctx, "pv", []float64{14}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "pv.wal")); !os.IsNotExist(err) {
		t.Errorf("pv.wal still present after migration: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "pv.wal.migrated")); err != nil {
		t.Errorf("migrated copy missing: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "lat.wal")); err != nil {
		t.Errorf("untouched legacy log should remain: %v", err)
	}
	wantPV.Values = append(wantPV.Values, 14)
	wantPV.Labels = append(wantPV.Labels, false)
	checkLoad("post-migration", s, "pv", wantPV)
	checkLoad("post-migration", s, "lat", wantLat)

	// A cold reopen sees the mixed directory: pv from segments, lat legacy.
	s.Close()
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	names, err = s2.List()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(names, []string{"lat", "pv"}) {
		t.Fatalf("post-migration List = %v, want [lat pv]", names)
	}
	checkLoad("reopen", s2, "pv", wantPV)
	checkLoad("reopen", s2, "lat", wantLat)
}
