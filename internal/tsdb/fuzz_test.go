package tsdb

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// FuzzSegmentDecode throws arbitrary bytes at the full read path — scan,
// List, Load, Dump — as the contents of a segment file. Whatever the bytes
// (truncations, bit flips, hostile varints), the store must never panic:
// every failure is ErrCorrupt, a clean not-found, or a tolerated torn tail.
func FuzzSegmentDecode(f *testing.F) {
	// Seed with a real segment holding a few frames...
	seedDir := f.TempDir()
	s, err := Open(seedDir, WithShards(1))
	if err != nil {
		f.Fatal(err)
	}
	m := Meta{Name: "pv", IntervalSeconds: 60, Recall: 0.66, Precision: 0.66, Trees: 60}
	if err := s.CreateSeries(m); err != nil {
		f.Fatal(err)
	}
	if err := s.AppendPoints(ctx, "pv", []float64{1, 2, 3}); err != nil {
		f.Fatal(err)
	}
	if err := s.AppendLabel(ctx, "pv", 0, 2, true); err != nil {
		f.Fatal(err)
	}
	if err := s.AppendTypedLabel(ctx, "pv", 1, 2, true, 3); err != nil {
		f.Fatal(err)
	}
	if err := s.Remove("pv"); err != nil {
		f.Fatal(err)
	}
	s.Close()
	seed, err := os.ReadFile(filepath.Join(seedDir, "shard-000", segFileName(1)))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	// ...plus degenerate shapes the mutator should riff on.
	f.Add([]byte(segMagic))
	f.Add([]byte(segMagic + "\x00"))
	f.Add([]byte{})
	f.Add(seed[:len(seed)-3])          // torn tail
	f.Add(append(seed[:0:0], seed...)) // pristine copy for bit flips

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		shardDir := filepath.Join(dir, shardDirName(0))
		if err := os.MkdirAll(shardDir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(shardDir, segFileName(1)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		st, err := Open(dir)
		if err != nil {
			return // a refused open is a valid outcome; a panic is not
		}
		defer st.Close()
		names, err := st.List()
		if err != nil {
			return
		}
		for _, name := range names {
			if _, err := st.Load(name); err != nil && !errors.Is(err, ErrCorrupt) &&
				!errors.Is(err, os.ErrNotExist) {
				// Whatever the damage, the error must be a classified one.
				t.Fatalf("Load(%q): unclassified error %v", name, err)
			}
		}
		if _, err := Dump(dir, discard{}, DumpOptions{}); err != nil {
			t.Fatalf("Dump must tolerate arbitrary segment bytes: %v", err)
		}
	})
}
