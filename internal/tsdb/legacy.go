package tsdb

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
)

// Legacy format support: earlier versions stored one JSON-lines WAL per
// series ("<name>.wal", one checksummed self-describing JSON object per
// line). Those logs stay readable — Load falls back to this reader when a
// name is not in the segment dictionary — and the first write to a legacy
// series imports its replayed state into the segment log as a single
// atomic frame, then renames the file to "<name>.wal.migrated". A crash
// between the import fsync and the rename leaves both behind; the segment
// dictionary wins from then on and the stale file is inert.

const legacySuffix = ".wal"

func (s *Store) legacyPath(name string) string {
	return filepath.Join(s.dir, name+legacySuffix)
}

// legacyRecord is one legacy WAL line.
type legacyRecord struct {
	Kind      string    `json:"kind"` // "meta" | "points" | "label"
	Meta      *Meta     `json:"meta,omitempty"`
	Values    []float64 `json:"values,omitempty"`
	Start     int       `json:"start,omitempty"`
	End       int       `json:"end,omitempty"`
	Anomalous bool      `json:"anomalous,omitempty"`
}

// legacyLoad replays one legacy JSON-lines log. A torn trailing line (crash
// mid-write) is ignored; any other malformed or checksum-failing record is
// an error wrapping ErrCorrupt.
func (s *Store) legacyLoad(name string) (*Loaded, error) {
	f, err := os.Open(s.legacyPath(name))
	if err != nil {
		return nil, fmt.Errorf("tsdb: %w", err)
	}
	defer f.Close()

	var out *Loaded
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 64<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		payload, err := verifyLine(line)
		if err != nil {
			// A torn final line is expected after a crash; anything earlier
			// is corruption.
			if isLastLine(sc) {
				break
			}
			return nil, fmt.Errorf("tsdb: %s line %d: %w", name, lineNo, err)
		}
		var r legacyRecord
		if err := json.Unmarshal(payload, &r); err != nil {
			if isLastLine(sc) {
				break
			}
			return nil, fmt.Errorf("tsdb: %s line %d: %w (%w)", name, lineNo, err, ErrCorrupt)
		}
		switch r.Kind {
		case "meta":
			if out != nil {
				return nil, fmt.Errorf("tsdb: %s line %d: duplicate meta (%w)", name, lineNo, ErrCorrupt)
			}
			if r.Meta == nil {
				return nil, fmt.Errorf("tsdb: %s line %d: empty meta (%w)", name, lineNo, ErrCorrupt)
			}
			out = &Loaded{Meta: *r.Meta}
		case "points":
			if out == nil {
				return nil, fmt.Errorf("tsdb: %s line %d: points before meta (%w)", name, lineNo, ErrCorrupt)
			}
			out.Values = append(out.Values, r.Values...)
			for range r.Values {
				out.Labels = append(out.Labels, false)
			}
		case "label":
			if out == nil {
				return nil, fmt.Errorf("tsdb: %s line %d: label before meta (%w)", name, lineNo, ErrCorrupt)
			}
			if r.End > len(out.Labels) {
				return nil, fmt.Errorf("tsdb: %s line %d: label [%d, %d) beyond %d points (%w)",
					name, lineNo, r.Start, r.End, len(out.Labels), ErrCorrupt)
			}
			for i := r.Start; i < r.End; i++ {
				out.Labels[i] = r.Anomalous
			}
		default:
			return nil, fmt.Errorf("tsdb: %s line %d: unknown record kind %q (%w)", name, lineNo, r.Kind, ErrCorrupt)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("tsdb: %s: %w", name, err)
	}
	if out == nil {
		return nil, fmt.Errorf("tsdb: %s: log has no meta record (%w)", name, ErrCorrupt)
	}
	return out, nil
}

// verifyLine strips and checks a legacy line's checksum prefix
// ("xxxxxxxx {json}"), returning the JSON payload. Lines starting with '{'
// are pre-checksum records and are accepted as-is.
func verifyLine(line []byte) ([]byte, error) {
	if line[0] == '{' {
		return line, nil // legacy unchecksummed record
	}
	if len(line) < 10 || line[8] != ' ' {
		return nil, fmt.Errorf("malformed checksum prefix (%w)", ErrCorrupt)
	}
	want, err := strconv.ParseUint(string(line[:8]), 16, 32)
	if err != nil {
		return nil, fmt.Errorf("malformed checksum prefix: %v (%w)", err, ErrCorrupt)
	}
	payload := line[9:]
	if got := crc32.Checksum(payload, castagnoli); got != uint32(want) {
		return nil, fmt.Errorf("checksum mismatch: recorded %08x, computed %08x (%w)", want, got, ErrCorrupt)
	}
	return payload, nil
}

// isLastLine reports whether the scanner has no further tokens; used to
// distinguish a torn tail from mid-log corruption.
func isLastLine(sc *bufio.Scanner) bool { return !sc.Scan() }

// legacyQuarantine renames a damaged legacy log aside to
// "<name>.wal.corrupt" so List no longer returns it and an operator can
// inspect or repair it offline (it is plain JSON lines).
func (s *Store) legacyQuarantine(name string) (string, error) {
	path := s.legacyPath(name)
	dst := path + ".corrupt"
	if err := os.Rename(path, dst); err != nil {
		return "", fmt.Errorf("tsdb: quarantine %s: %w", name, err)
	}
	return dst, nil
}

// migrateLegacy imports a legacy log into the segment WAL before the first
// write to its series: replay the JSON lines, commit the whole state as one
// frame-atomic import, then rename the file aside. Reads never migrate —
// only writes — so Open and Load stay read-only.
func (s *Store) migrateLegacy(name string) error {
	sh := s.shardFor(name)
	sh.mu.Lock()
	_, ok := sh.byName[name]
	sh.mu.Unlock()
	if ok {
		return nil // already segment-resident; the dictionary wins
	}
	path := s.legacyPath(name)
	if _, err := os.Stat(path); err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil
		}
		return fmt.Errorf("tsdb: %w", err)
	}
	s.migrateMu.Lock()
	defer s.migrateMu.Unlock()
	sh.mu.Lock()
	_, ok = sh.byName[name]
	sh.mu.Unlock()
	if ok {
		return nil // another writer migrated while we waited
	}
	loaded, err := s.legacyLoad(name)
	if err != nil {
		return fmt.Errorf("migrating legacy log: %w", err)
	}
	meta := loaded.Meta
	meta.Name = name
	err = s.send(context.Background(), &request{
		op: reqImport, name: name, meta: meta,
		values: loaded.Values, labels: loaded.Labels,
	})
	if err != nil {
		return fmt.Errorf("migrating legacy log: %w", err)
	}
	if err := os.Rename(path, path+".migrated"); err != nil {
		return fmt.Errorf("migrating legacy log: %w", err)
	}
	return nil
}

// LegacyPointsLineSize returns the byte size of one legacy JSON-lines
// points record carrying values — checksum prefix, JSON payload, newline.
// Benchmarks use it to compare segment bytes/point against what the legacy
// format would have written for the same appends.
func LegacyPointsLineSize(values []float64) int {
	payload, err := json.Marshal(legacyRecord{Kind: "points", Values: values})
	if err != nil {
		return 0
	}
	return 8 + 1 + len(payload) + 1
}
