package tsdb

import (
	"math"
	"math/rand"
	"testing"
)

func xorRoundTrip(t *testing.T, values []float64) {
	t.Helper()
	var enc xorChain
	var w bitWriter
	for _, v := range values {
		xorWrite(&w, &enc, v)
	}
	stream := w.flush()
	var dec xorChain
	r := bitReader{buf: stream}
	for i, want := range values {
		got, ok := xorRead(&r, &dec)
		if !ok {
			t.Fatalf("value %d: stream ran out", i)
		}
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("value %d = %v, want %v", i, got, want)
		}
	}
}

func TestXORRoundTrip(t *testing.T) {
	cases := map[string][]float64{
		"single":    {42.5},
		"repeats":   {7, 7, 7, 7, 7},
		"smooth":    {100, 100.1, 100.2, 100.1, 100.3, 100.25},
		"zero":      {0, 0, 0},
		"negatives": {-1, 1, -2.5, 2.5, -0.0},
		"extremes": {math.MaxFloat64, math.SmallestNonzeroFloat64,
			math.Inf(1), math.Inf(-1), 0},
		"nan": {1, math.NaN(), 2},
	}
	for name, values := range cases {
		t.Run(name, func(t *testing.T) { xorRoundTrip(t, values) })
	}
}

func TestXORRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	values := make([]float64, 4096)
	for i := range values {
		switch rng.Intn(3) {
		case 0: // smooth walk, the common KPI shape
			if i > 0 {
				values[i] = values[i-1] + rng.Float64()
			} else {
				values[i] = rng.Float64() * 100
			}
		case 1: // repeat
			if i > 0 {
				values[i] = values[i-1]
			}
		default: // arbitrary bits
			values[i] = math.Float64frombits(rng.Uint64())
		}
	}
	xorRoundTrip(t, values)
}

// TestXORChainAcrossFrames verifies that splitting one logical stream over
// multiple flush boundaries — as consecutive commit frames do — decodes
// identically as long as the chain state carries over.
func TestXORChainAcrossFrames(t *testing.T) {
	batches := [][]float64{{1, 2, 3}, {3, 3.5}, {1000.25}, {-4, 0}}
	var enc xorChain
	var streams [][]byte
	for _, batch := range batches {
		var w bitWriter
		for _, v := range batch {
			xorWrite(&w, &enc, v)
		}
		streams = append(streams, w.flush())
	}
	var dec xorChain
	for i, batch := range batches {
		r := bitReader{buf: streams[i]}
		for j, want := range batch {
			got, ok := xorRead(&r, &dec)
			if !ok || got != want {
				t.Fatalf("batch %d value %d = %v ok=%v, want %v", i, j, got, ok, want)
			}
		}
	}
}

// TestXORCompressionWins pins the economic claim the format is built on:
// a smooth KPI stream costs a small fraction of raw 8-byte floats.
func TestXORCompressionWins(t *testing.T) {
	var enc xorChain
	var w bitWriter
	n := 10000
	v := 500.0
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < n; i++ {
		xorWrite(&w, &enc, v)
		if rng.Intn(4) > 0 {
			v += float64(rng.Intn(5)) * 0.5
		}
	}
	stream := w.flush()
	if len(stream) > n*4 {
		t.Errorf("smooth stream = %d bytes for %d points; want well under 8 B/pt", len(stream), n)
	}
}
