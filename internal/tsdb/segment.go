package tsdb

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// segEnd classifies how a segment walk terminated.
type segEnd int

const (
	segClean segEnd = iota // parsed to EOF
	segTorn                // incomplete frame (or header) at the tail
	segBad                 // structural damage: bad magic, bad varint, oversize frame
)

// frameInfo describes one complete frame encountered by walkSegment. body
// runs from the kind byte through the trailing CRC and aliases the walk
// buffer — callbacks must not retain it.
type frameInfo struct {
	off   int64 // offset of the frame's length varint in the file
	size  int64 // total frame size including the length varint
	body  []byte
	crcOK bool
}

// walkSegment reads one segment file sequentially and hands every complete
// frame to fn (including frames whose CRC fails — fn sees crcOK). It
// returns the byte length of the structurally valid prefix and how the
// segment ended. A short frame at the tail is segTorn — the crash-recovery
// case — while anything structurally impossible is segBad. fn errors abort
// the walk as segBad.
func walkSegment(path string, fn func(fr *frameInfo) error) (int64, segEnd, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, segBad, fmt.Errorf("tsdb: %w", err)
	}
	if len(data) < len(segMagic) {
		if string(data) == segMagic[:len(data)] {
			return 0, segTorn, nil // crash between create and header fsync
		}
		return 0, segBad, nil
	}
	if string(data[:len(segMagic)]) != segMagic {
		return 0, segBad, nil
	}
	off := int64(len(segMagic))
	for off < int64(len(data)) {
		v, n := binary.Uvarint(data[off:])
		if n == 0 {
			return off, segTorn, nil // ran out of bytes mid-varint
		}
		if n < 0 || v > maxFrame {
			return off, segBad, nil
		}
		if v == 0 {
			// A zero length cannot come from the writer; zero-fill after a
			// crash can. Forgive it as a torn tail.
			return off, segTorn, nil
		}
		end := off + int64(n) + int64(v)
		if end > int64(len(data)) {
			return off, segTorn, nil
		}
		body := data[off+int64(n) : end]
		if len(body) < 5 { // kind byte + CRC is the minimum
			return off, segBad, nil
		}
		crcOK := crc32.Checksum(body[:len(body)-4], castagnoli) ==
			binary.LittleEndian.Uint32(body[len(body)-4:])
		fi := frameInfo{off: off, size: end - off, body: body, crcOK: crcOK}
		if err := fn(&fi); err != nil {
			return off, segBad, err
		}
		off = end
	}
	return off, segClean, nil
}

// frameBody re-validates one frame read back by extent (length varint,
// CRC, kind) and returns its body.
func frameBody(frame []byte) ([]byte, error) {
	v, n := binary.Uvarint(frame)
	if n <= 0 || v < 5 || int64(v)+int64(n) != int64(len(frame)) {
		return nil, fmt.Errorf("tsdb: frame framing mismatch (%w)", ErrCorrupt)
	}
	body := frame[n:]
	if crc32.Checksum(body[:len(body)-4], castagnoli) !=
		binary.LittleEndian.Uint32(body[len(body)-4:]) {
		return nil, fmt.Errorf("tsdb: frame checksum mismatch (%w)", ErrCorrupt)
	}
	if body[0] != frameCommit {
		return nil, fmt.Errorf("tsdb: unknown frame kind %#x (%w)", body[0], ErrCorrupt)
	}
	return body, nil
}

// listSegments returns the ascending segment sequence numbers present in a
// shard directory.
func listSegments(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("tsdb: %w", err)
	}
	var seqs []uint64
	for _, e := range entries {
		name, ok := strings.CutSuffix(e.Name(), ".seg")
		if !ok || !e.Type().IsRegular() {
			continue
		}
		seq, err := strconv.ParseUint(name, 10, 64)
		if err != nil || seq == 0 {
			continue
		}
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// scan builds the shard's in-memory index — name dictionary, per-series
// extents, segment states, corruption flags — with one sequential pass over
// its segments. It never mutates the directory (beyond creating it), so a
// probe Store can safely scan a directory a live Store is writing: torn
// tails and rotations are recorded and handled lazily by the appender
// before its first write.
func (sh *shard) scan() error {
	if err := os.MkdirAll(sh.dir, 0o755); err != nil {
		return fmt.Errorf("tsdb: %w", err)
	}
	seqs, err := listSegments(sh.dir)
	if err != nil {
		return err
	}
	for i, seq := range seqs {
		if err := sh.scanSegment(seq, i == len(seqs)-1); err != nil {
			return err
		}
	}
	if len(seqs) > 0 {
		sh.activeSeq = seqs[len(seqs)-1]
	}
	return nil
}

func (sh *shard) scanSegment(seq uint64, last bool) error {
	sg := &segState{seq: seq}
	sh.segs = append(sh.segs, sg)
	good, end, err := walkSegment(filepath.Join(sh.dir, segFileName(seq)), func(fr *frameInfo) error {
		sh.indexFrame(seq, fr)
		return nil
	})
	if err != nil {
		return err
	}
	sg.size = good
	switch end {
	case segClean:
	case segTorn:
		if last {
			sh.torn = true // the appender truncates before its first write
		} else {
			sh.poison() // a sealed segment must end cleanly
		}
	case segBad:
		sh.poison()
		if last {
			// Keep the damaged bytes on disk as evidence; append elsewhere.
			sh.rotateFirst = true
		}
	}
	if last {
		sh.activeSize = good
	}
	return nil
}

// indexFrame folds one scanned frame into the shard index. Frames with a
// valid CRC replay their bindings and tombstones; frames with a failing CRC
// are attributed best-effort — their structure still parses after a payload
// bit-flip, so exactly the series they name are marked corrupt. Frames too
// damaged to even parse structurally poison the whole shard (conservative:
// an intern record may have been lost, so no series in it can be trusted).
func (sh *shard) indexFrame(seq uint64, fr *frameInfo) {
	if fr.crcOK && fr.body[0] != frameCommit {
		sh.poison() // valid checksum, unknown kind: a future format
		return
	}
	ext := extent{seq: seq, off: fr.off, size: fr.size}
	err := parseSubs(fr.body[1:len(fr.body)-4], func(sub *subRecord) error {
		ser := sh.byID[sub.id]
		if ser == nil {
			ser = &series{id: sub.id}
			if !fr.crcOK || sub.op != opSeries {
				// An ID referenced before (or without) its intern record: the
				// intern may sit in a lost region. Index the frames so they
				// stay pinned, but never trust the series.
				ser.corrupt = true
			}
			sh.byID[sub.id] = ser
		}
		if sh.nextID < sub.id {
			sh.nextID = sub.id
		}
		sh.noteExtent(ser, ext)
		if !fr.crcOK {
			ser.corrupt = true
			return nil // structure only; the content is untrusted
		}
		switch sub.op {
		case opSeries:
			if old := sh.byName[sub.name]; old != nil && old != ser {
				// A duplicate bind; newest wins, the orphan stays pinned.
				old.corrupt = true
			}
			ser.name = sub.name
			sh.byName[sub.name] = ser
		case opTombstone:
			sh.retireLocked(ser, seq)
		}
		return nil
	})
	if err != nil {
		sh.poison()
	}
}

// noteExtent records that a frame references ser, bumping the segment's
// live-reference count on the first reference per (series, segment). Scan
// and commit both visit frames in ascending (segment, offset) order, so
// checking the tail extent suffices for both dedups.
func (sh *shard) noteExtent(ser *series, ext extent) {
	if n := len(ser.extents); n > 0 {
		last := ser.extents[n-1]
		if last.seq == ext.seq && last.off == ext.off {
			return
		}
		if last.seq == ext.seq {
			ser.extents = append(ser.extents, ext)
			return
		}
	}
	ser.extents = append(ser.extents, ext)
	sh.segRef(ext.seq, +1)
}

// poison marks every series indexed so far as corrupt and disables
// compaction for the shard: structural damage means the index may be
// missing bindings, so nothing already seen can be trusted and no segment
// may be deleted. Series interned after the damage point (their frames
// parse cleanly) stay healthy.
func (sh *shard) poison() {
	sh.poisoned = true
	for _, ser := range sh.byID {
		ser.corrupt = true
	}
}
