package tsdb

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// DumpOptions filters Dump output.
type DumpOptions struct {
	// Series limits output to records of one series name (matching every
	// historical binding of the name, including tombstoned generations).
	Series string
	// Since skips segments numbered below it.
	Since uint64
}

// DumpStats summarizes one Dump pass.
type DumpStats struct {
	Segments      int // segment files visited (after the Since filter)
	Frames        int // complete frames decoded, including corrupt ones
	Records       int // sub-records printed (after the Series filter)
	CorruptFrames int // frames whose CRC failed
}

// Dump renders a data directory's segment WAL human-readably onto w: one
// line per frame, one indented line per sub-record, decoding names, metas,
// XOR point streams and labels. It reads the directory directly (no Store
// needed — it works on a live directory or a crashed one) and never
// mutates anything. Corrupt frames are printed with crc=FAIL and their
// payloads left undecoded; the XOR chain of any series touched by one is
// considered broken from that point on.
func Dump(dir string, w io.Writer, opts DumpOptions) (DumpStats, error) {
	var stats DumpStats
	entries, err := os.ReadDir(dir)
	if err != nil {
		return stats, fmt.Errorf("tsdb: %w", err)
	}
	var shards []string
	for _, e := range entries {
		if e.IsDir() && strings.HasPrefix(e.Name(), "shard-") {
			shards = append(shards, e.Name())
		}
	}
	sort.Strings(shards)
	for _, shardName := range shards {
		if err := dumpShard(dir, shardName, w, opts, &stats); err != nil {
			return stats, err
		}
	}
	return stats, nil
}

func dumpShard(dir, shardName string, w io.Writer, opts DumpOptions, stats *DumpStats) error {
	shardDir := filepath.Join(dir, shardName)
	seqs, err := listSegments(shardDir)
	if err != nil {
		return err
	}
	names := make(map[uint64]string) // id → name, historical
	chains := make(map[uint64]*xorChain)
	broken := make(map[uint64]bool) // chain poisoned by a corrupt frame
	for _, seq := range seqs {
		if seq < opts.Since {
			// Bindings and chain state still need the skipped prefix.
			_, _, err := walkSegment(filepath.Join(shardDir, segFileName(seq)), func(fr *frameInfo) error {
				preDecodeFrame(fr, names, chains, broken)
				return nil
			})
			if err != nil {
				return err
			}
			continue
		}
		stats.Segments++
		rel := filepath.Join(shardName, segFileName(seq))
		good, end, err := walkSegment(filepath.Join(shardDir, segFileName(seq)), func(fr *frameInfo) error {
			stats.Frames++
			if !fr.crcOK {
				stats.CorruptFrames++
			}
			return dumpFrame(w, rel, fr, opts, names, chains, broken, stats)
		})
		if err != nil {
			return err
		}
		switch end {
		case segTorn:
			fmt.Fprintf(w, "%s: torn tail at byte %d\n", rel, good)
		case segBad:
			fmt.Fprintf(w, "%s: structural corruption at byte %d\n", rel, good)
		}
	}
	return nil
}

// preDecodeFrame advances the dictionary and chain state across a segment
// skipped by --since, without printing.
func preDecodeFrame(fr *frameInfo, names map[uint64]string, chains map[uint64]*xorChain, broken map[uint64]bool) {
	_ = parseSubs(fr.body[1:len(fr.body)-4], func(sub *subRecord) error {
		if !fr.crcOK {
			broken[sub.id] = true
			return nil
		}
		switch sub.op {
		case opSeries:
			names[sub.id] = sub.name
		case opPoints:
			if !broken[sub.id] {
				c := chains[sub.id]
				if c == nil {
					c = &xorChain{}
					chains[sub.id] = c
				}
				if _, err := decodePoints(sub, c, nil); err != nil {
					broken[sub.id] = true
				}
			}
		}
		return nil
	})
}

func dumpFrame(w io.Writer, rel string, fr *frameInfo, opts DumpOptions,
	names map[uint64]string, chains map[uint64]*xorChain, broken map[uint64]bool, stats *DumpStats) error {

	crc := "ok"
	if !fr.crcOK {
		crc = "FAIL"
	}
	var lines []string
	perr := parseSubs(fr.body[1:len(fr.body)-4], func(sub *subRecord) error {
		if fr.crcOK && sub.op == opSeries {
			names[sub.id] = sub.name
		}
		name := names[sub.id]
		match := opts.Series == "" || name == opts.Series
		line := func(format string, args ...any) {
			if match {
				lines = append(lines, fmt.Sprintf(format, args...))
				stats.Records++
			}
		}
		if !fr.crcOK {
			// Untrusted payload: attribute, never decode.
			broken[sub.id] = true
			line("  %s id=%d %q <payload untrusted>", opName(sub.op), sub.id, name)
			return nil
		}
		switch sub.op {
		case opSeries:
			line("  series id=%d %q", sub.id, sub.name)
		case opMeta, opMetaV2:
			suffix := ""
			if sub.op == opMetaV2 {
				suffix = fmt.Sprintf(" predictor=%d evtq=%g", sub.meta.Predictor, sub.meta.EVTQ)
			}
			line("  meta id=%d %q start=%s interval=%ds trees=%d recall=%g precision=%g retrain=%d%s",
				sub.id, name, sub.meta.Start.Format(time.RFC3339), sub.meta.IntervalSeconds,
				sub.meta.Trees, sub.meta.Recall, sub.meta.Precision, sub.meta.RetrainEvery, suffix)
		case opPoints:
			if broken[sub.id] {
				line("  points id=%d %q count=%d <chain broken upstream>", sub.id, name, sub.count)
				return nil
			}
			c := chains[sub.id]
			if c == nil {
				c = &xorChain{}
				chains[sub.id] = c
			}
			values, err := decodePoints(sub, c, nil)
			if err != nil {
				broken[sub.id] = true
				line("  points id=%d %q count=%d <bitstream truncated>", sub.id, name, sub.count)
				return nil
			}
			line("  points id=%d %q count=%d %v", sub.id, name, sub.count, values)
		case opLabel:
			line("  label id=%d %q [%d,%d) anomalous=%v", sub.id, name, sub.start, sub.end, sub.anomalous)
		case opTypedLabel:
			line("  typedlabel id=%d %q [%d,%d) anomalous=%v class=%d", sub.id, name, sub.start, sub.end, sub.anomalous, sub.class)
		case opTombstone:
			line("  tombstone id=%d %q", sub.id, name)
		}
		return nil
	})
	if perr != nil {
		lines = append(lines, "  <unparseable sub-records>")
	}
	if opts.Series == "" || len(lines) > 0 {
		fmt.Fprintf(w, "%s @%d len=%d crc=%s\n", rel, fr.off, fr.size, crc)
		for _, l := range lines {
			fmt.Fprintln(w, l)
		}
	}
	return nil
}

func opName(op byte) string {
	switch op {
	case opSeries:
		return "series"
	case opMeta:
		return "meta"
	case opPoints:
		return "points"
	case opLabel:
		return "label"
	case opTombstone:
		return "tombstone"
	case opTypedLabel:
		return "typedlabel"
	case opMetaV2:
		return "metav2"
	}
	return fmt.Sprintf("op%#x", op)
}

// CorruptPointsFrame flips one byte inside the XOR bitstream of the last
// points frame of the named series — fault injection for tests and the
// simulation harness. The flip damages only the payload: the frame's length
// varint and sub-record structure stay intact, so a rescan detects a CRC
// failure attributable to exactly this series. (It lives here rather than
// in faultinject because the segment layout knowledge is this package's.)
func CorruptPointsFrame(dir, name string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("tsdb: %w", err)
	}
	shards := 0
	for _, e := range entries {
		if e.IsDir() && strings.HasPrefix(e.Name(), "shard-") {
			shards++
		}
	}
	if shards == 0 {
		return fmt.Errorf("tsdb: no shard directories in %s", dir)
	}
	shardDir := filepath.Join(dir, shardDirName(shardIndex(name, shards)))
	seqs, err := listSegments(shardDir)
	if err != nil {
		return err
	}
	ids := make(map[string]uint64) // live binding per name
	var (
		targetPath string
		targetOff  int64
	)
	for _, seq := range seqs {
		path := filepath.Join(shardDir, segFileName(seq))
		_, _, err := walkSegment(path, func(fr *frameInfo) error {
			if !fr.crcOK {
				return nil // already damaged; aim at healthy frames only
			}
			varintLen := fr.size - int64(len(fr.body))
			return parseSubs(fr.body[1:len(fr.body)-4], func(sub *subRecord) error {
				switch sub.op {
				case opSeries:
					ids[sub.name] = sub.id
				case opPoints:
					if sub.id == ids[name] && sub.id != 0 && len(sub.stream) > 0 {
						targetPath = path
						targetOff = fr.off + varintLen + 1 + int64(sub.streamOff) + int64(len(sub.stream)/2)
					}
				}
				return nil
			})
		})
		if err != nil {
			return err
		}
	}
	if targetPath == "" {
		return fmt.Errorf("tsdb: no points frame found for series %q", name)
	}
	f, err := os.OpenFile(targetPath, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("tsdb: %w", err)
	}
	defer f.Close()
	buf := make([]byte, 1)
	if _, err := f.ReadAt(buf, targetOff); err != nil {
		return fmt.Errorf("tsdb: %w", err)
	}
	buf[0] ^= 0xFF
	if _, err := f.WriteAt(buf, targetOff); err != nil {
		return fmt.Errorf("tsdb: %w", err)
	}
	return f.Sync()
}
